(* Faultline tests: the deterministic fault-injection layer itself
   (counters, rule firing, EINTR storms, short writes, sticky
   fail-stop), the store's graceful degradation to read-only on
   ENOSPC/EIO with recovery once the fault clears, and a randomized
   crash-consistency torture harness: ingest under a seeded fault
   schedule (including fail-stop), reopen, and check the recovered
   answers id-for-id against an oracle over the acknowledged records.
   Every randomized failure reprints its (seed, schedule). *)

module F = Xfault
module T = Xmlcore.Xml_tree
module Gen = QCheck.Gen

let e = T.elt
let v = T.text

(* --- scratch ---------------------------------------------------------------- *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let dir_seq = ref 0

let with_dir f =
  incr dir_seq;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "xfault-test-%d-%d" (Unix.getpid ()) !dir_seq)
  in
  rm_rf dir;
  Fun.protect
    ~finally:(fun () ->
      F.uninstall ();
      rm_rf dir)
    (fun () -> f dir)

let with_tmp_fd f =
  let path = Filename.temp_file "xfault" ".bin" in
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f fd)

(* --- the injector itself ---------------------------------------------------- *)

let test_passthrough () =
  (* No injector: the shim is the raw call. *)
  F.uninstall ();
  with_tmp_fd (fun fd ->
      let n = F.Io.write_substring fd "hello" 0 5 in
      Alcotest.(check int) "write passes through" 5 n;
      ignore (Unix.lseek fd 0 Unix.SEEK_SET : int);
      let buf = Bytes.create 5 in
      Alcotest.(check int) "read passes through" 5 (F.Io.read fd buf 0 5);
      Alcotest.(check string) "bytes round trip" "hello" (Bytes.to_string buf))

let test_counters_and_rules () =
  with_tmp_fd (fun fd ->
      let inj = F.Injector.create [ { F.at = 2; on = F.Write; fault = F.Enospc } ] in
      F.with_injector inj (fun () ->
          ignore (F.Io.write_substring fd "a" 0 1 : int);
          ignore (F.Io.write_substring fd "b" 0 1 : int);
          (match F.Io.write_substring fd "c" 0 1 with
           | _ -> Alcotest.fail "third write should hit ENOSPC"
           | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> ());
          (* The rule fired once; later writes are clean again. *)
          ignore (F.Io.write_substring fd "d" 0 1 : int);
          Alcotest.(check int) "4 writes counted" 4
            (F.Injector.op_count inj F.Write);
          Alcotest.(check int) "1 rule fired" 1 (F.Injector.fired inj);
          (* Other classes have independent counters. *)
          Alcotest.(check int) "no reads counted" 0
            (F.Injector.op_count inj F.Read)))

let test_short_write_clamped () =
  with_tmp_fd (fun fd ->
      let inj = F.Injector.create [ { F.at = 0; on = F.Write; fault = F.Short 2 } ] in
      F.with_injector inj (fun () ->
          Alcotest.(check int) "clamped to 2" 2
            (F.Io.write_substring fd "abcdef" 0 6);
          Alcotest.(check int) "next is full" 4
            (F.Io.write_substring fd "cdef" 0 4)))

let test_eintr_storm () =
  with_tmp_fd (fun fd ->
      let inj = F.Injector.create [ { F.at = 0; on = F.Write; fault = F.Eintr 3 } ] in
      F.with_injector inj (fun () ->
          (* Three consecutive EINTRs, then success: the canonical retry
             loop must absorb the storm. *)
          let eintrs = ref 0 in
          let rec write_all off len =
            if len > 0 then
              match F.Io.write_substring fd "xyz" off len with
              | n -> write_all (off + n) (len - n)
              | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                incr eintrs;
                write_all off len
          in
          write_all 0 3;
          Alcotest.(check int) "three interrupts" 3 !eintrs;
          Alcotest.(check int) "storm + success counted" 4
            (F.Injector.op_count inj F.Write)))

let test_fail_stop_sticky () =
  with_tmp_fd (fun fd ->
      let inj =
        F.Injector.create [ { F.at = 1; on = F.Write; fault = F.Fail_stop } ]
      in
      F.with_injector inj (fun () ->
          ignore (F.Io.write_substring fd "a" 0 1 : int);
          (match F.Io.write_substring fd "b" 0 1 with
           | _ -> Alcotest.fail "second write should crash"
           | exception F.Crashed -> ());
          Alcotest.(check bool) "injector crashed" true (F.Injector.crashed inj);
          (* Every later operation of any class refuses too. *)
          List.iter
            (fun f ->
              match f () with
              | _ -> Alcotest.fail "post-crash I/O must raise Crashed"
              | exception F.Crashed -> ())
            [
              (fun () -> ignore (F.Io.write_substring fd "c" 0 1 : int));
              (fun () -> ignore (F.Io.read fd (Bytes.create 1) 0 1 : int));
              (fun () -> F.Io.fsync fd);
              (fun () -> F.Io.rename "/nonexistent-a" "/nonexistent-b");
            ]))

let test_schedule_replay () =
  (* The same seed yields the same schedule -- the replay contract. *)
  List.iter
    (fun seed ->
      let a = F.random_schedule ~seed ~horizon:100 ~faults:6 () in
      let b = F.random_schedule ~seed ~horizon:100 ~faults:6 () in
      Alcotest.(check string)
        (Printf.sprintf "seed %d replays" seed)
        (F.schedule_to_string a) (F.schedule_to_string b))
    [ 0; 1; 7; 99; 123456 ];
  let distinct =
    List.sort_uniq compare
      (List.map
         (fun seed ->
           F.schedule_to_string (F.random_schedule ~seed ~horizon:100 ~faults:6 ()))
         [ 1; 2; 3; 4; 5 ])
  in
  Alcotest.(check bool) "seeds diversify" true (List.length distinct > 1);
  (* The printed form is the documented one-line format. *)
  Alcotest.(check string) "printed form" "write@17:enospc fsync@3:eio"
    (F.schedule_to_string
       [
         { F.at = 17; on = F.Write; fault = F.Enospc };
         { F.at = 3; on = F.Fsync; fault = F.Eio };
       ]);
  Alcotest.(check string) "empty schedule prints" "(empty)"
    (F.schedule_to_string [])

(* --- graceful degradation --------------------------------------------------- *)

let doc_pool =
  [|
    e "P" [ e "L" [ v "a" ] ];
    e "P" [ e "L" [ e "S" [] ] ];
    e "P" [ e "R" [ e "M" [ v "b" ] ] ];
    e "P" [ e "L" [ e "S" [] ]; e "R" [ v "c" ] ];
    e "P" [ e "D" [ e "U" [ e "N" [ v "gui" ] ] ] ];
    e "P" [];
  |]

let patterns = [ "/P"; "/P/L"; "/P/L/S" ]
let parsed_patterns = List.map Xseq.Xpath.parse patterns

(* matches.(doc).(pat): does pool document [doc] match pattern [pat]?
   The oracle for the per-pattern answer checks below. *)
let matches =
  Array.map
    (fun d ->
      let idx = Xseq.build [| d |] in
      Array.of_list
        (List.map (fun p -> Xseq.query idx p <> []) parsed_patterns))
    doc_pool

let no_probe = infinity (* disable the automatic recovery probe: tests drive it *)

let degrade_check name log =
  match Xlog.insert log doc_pool.(0) with
  | _ -> Alcotest.failf "%s: insert accepted by a degraded store" name
  | exception Xlog.Degraded _ -> ()

let test_enospc_degrades_and_recovers () =
  with_dir (fun dir ->
      let log = Xlog.open_ ~probe_interval:no_probe ~max_segments:1000 dir in
      Fun.protect
        ~finally:(fun () -> Xlog.close log)
        (fun () ->
          let id0 = Xlog.insert log doc_pool.(1) in
          Alcotest.(check int) "first id" 0 id0;
          (* Disk full on the next WAL write. *)
          let inj =
            F.Injector.create [ { F.at = 0; on = F.Write; fault = F.Enospc } ]
          in
          F.install inj;
          degrade_check "enospc" log;
          Alcotest.(check bool) "degraded reason set" true
            (Xlog.degraded_reason log <> None);
          (* Reads keep serving while the store is read-only. *)
          Alcotest.(check (list int)) "queries still answer" [ 0 ]
            (Xlog.query log (Xseq.Xpath.parse "/P/L/S"));
          (* Still degraded on the next write (the rule is spent, but no
             probe ran: writes stay refused until recovery). *)
          degrade_check "still degraded" log;
          (* Fault clears; the probe re-arms the write path. *)
          F.uninstall ();
          Alcotest.(check bool) "recovery succeeds" true (Xlog.try_recover log);
          Alcotest.(check bool) "reason cleared" true
            (Xlog.degraded_reason log = None);
          (* The failed insert consumed no id. *)
          let id1 = Xlog.insert log doc_pool.(0) in
          Alcotest.(check int) "no id leaked by the failed insert" 1 id1;
          Alcotest.(check (list int)) "both docs answer" [ 0; 1 ]
            (Xlog.query log (Xseq.Xpath.parse "/P"))))

let test_fsync_failure_degrades () =
  with_dir (fun dir ->
      let log = Xlog.open_ ~probe_interval:no_probe ~max_segments:1000 dir in
      Fun.protect
        ~finally:(fun () -> Xlog.close log)
        (fun () ->
          ignore (Xlog.insert log doc_pool.(0) : int);
          let inj = F.Injector.create [ { F.at = 0; on = F.Fsync; fault = F.Eio } ] in
          F.install inj;
          degrade_check "fsync EIO" log;
          F.uninstall ();
          Alcotest.(check bool) "recovers" true (Xlog.try_recover log);
          ignore (Xlog.insert log doc_pool.(0) : int);
          Alcotest.(check int) "both live" 2 (Xlog.doc_count log)))

let test_absorbed_faults_do_not_degrade () =
  (* Short writes and EINTR storms are absorbed by the write loops:
     no degradation, and the records replay after reopen. *)
  with_dir (fun dir ->
      let log = Xlog.open_ ~probe_interval:no_probe ~max_segments:1000 dir in
      let inj =
        F.Injector.create
          [
            { F.at = 0; on = F.Write; fault = F.Short 1 };
            { F.at = 2; on = F.Write; fault = F.Eintr 3 };
            { F.at = 7; on = F.Write; fault = F.Short 3 };
            { F.at = 1; on = F.Fsync; fault = F.Eintr 2 };
          ]
      in
      F.install inj;
      for i = 0 to 4 do
        Alcotest.(check int) "acked in order" i (Xlog.insert log doc_pool.(i))
      done;
      F.uninstall ();
      Alcotest.(check bool) "never degraded" true
        (Xlog.degraded_reason log = None);
      Xlog.close log;
      let log2 = Xlog.open_ ~max_segments:1000 dir in
      Fun.protect
        ~finally:(fun () -> Xlog.close log2)
        (fun () ->
          Alcotest.(check int) "all five replay" 5 (Xlog.doc_count log2)))

let test_fail_stop_then_recover () =
  (* Power loss at the k-th write: everything acknowledged before the
     crash point replays on reopen. *)
  with_dir (fun dir ->
      let log = Xlog.open_ ~probe_interval:no_probe ~max_segments:1000 dir in
      let inj =
        F.Injector.create [ { F.at = 6; on = F.Write; fault = F.Fail_stop } ]
      in
      F.install inj;
      let acked = ref [] in
      (try
         for i = 0 to 19 do
           let id = Xlog.insert log doc_pool.(i mod Array.length doc_pool) in
           acked := id :: !acked
         done;
         Alcotest.fail "the schedule should have crashed the run"
       with F.Crashed -> ());
      F.uninstall ();
      Xlog.abandon log;
      Alcotest.(check bool) "some records acked before the crash" true
        (!acked <> []);
      let log2 = Xlog.open_ ~max_segments:1000 dir in
      Fun.protect
        ~finally:(fun () -> Xlog.close log2)
        (fun () ->
          let got = List.sort compare (Xlog.query log2 (Xseq.Xpath.parse "/P")) in
          let want = List.sort compare !acked in
          Alcotest.(check (list int)) "acked records replay exactly" want got))

(* --- shard isolation: one shard's disk fault stays that shard's ------------ *)

(* Seed a 3-shard store with enough documents that every shard holds
   some, and return it.  [probe_interval] is disabled: the tests drive
   recovery explicitly. *)
let open_seeded_shards dir =
  let sh =
    Xshard.open_ ~shards:3 ~probe_interval:no_probe ~max_segments:1000 dir
  in
  for i = 0 to 11 do
    ignore (Xshard.insert sh doc_pool.(i mod Array.length doc_pool) : int)
  done;
  sh

(* Keep inserting until [n] inserts succeeded, tolerating refusals from
   the faulted shard ([allow] decides which exceptions are expected).
   Returns the accepted ids. *)
let insert_despite sh ~n ~allow =
  let got = ref [] in
  let attempts = ref 0 in
  while List.length !got < n do
    incr attempts;
    if !attempts > 50 then
      Alcotest.failf "surviving shards refused writes (%d accepted)"
        (List.length !got);
    match Xshard.insert sh doc_pool.(0) with
    | id -> got := id :: !got
    | exception e -> if not (allow e) then raise e
  done;
  !got

let test_shard_enospc_isolates () =
  with_dir (fun dir ->
      let sh = open_seeded_shards dir in
      Fun.protect
        ~finally:(fun () -> Xshard.close sh)
        (fun () ->
          let n0 = Xshard.doc_count sh in
          (* The routing is deterministic, so the shard the next insert
             will hit — and therefore the shard whose WAL the injected
             ENOSPC lands on — is known in advance. *)
          let target = Xshard.next_route sh in
          F.install
            (F.Injector.create [ { F.at = 0; on = F.Write; fault = F.Enospc } ]);
          (match Xshard.insert sh doc_pool.(0) with
          | _ -> Alcotest.fail "insert accepted by the faulted shard"
          | exception Xlog.Degraded _ -> ());
          F.uninstall ();
          (* Exactly the routed shard degraded; nothing fail-stopped. *)
          Alcotest.(check (list int)) "only the target shard degrades" [ target ]
            (List.map fst (Xshard.degraded_shards sh));
          Alcotest.(check (list int)) "no shard is down" []
            (List.map fst (Xshard.down_shards sh));
          (* A degraded shard is read-only, not gone: answers stay
             complete across all shards. *)
          let d = Xshard.query_detail sh (Xseq.Xpath.parse "/P") in
          Alcotest.(check bool) "answers remain complete" true
            d.Xshard.complete;
          Alcotest.(check int) "every document answers" n0
            (List.length d.Xshard.value);
          (* The surviving shards keep accepting writes; only inserts
             routed to the degraded shard are refused. *)
          let accepted =
            insert_despite sh ~n:2 ~allow:(function
              | Xlog.Degraded _ -> true
              | _ -> false)
          in
          List.iter
            (fun id ->
              if Xshard.shard_of_id id = target then
                Alcotest.fail "the degraded shard acknowledged a write")
            accepted;
          (* Fault cleared: per-shard recovery re-arms the write path. *)
          Alcotest.(check bool) "recovery re-arms" true
            (Xshard.recover_shard sh target);
          Alcotest.(check (list int)) "no shard degraded after recovery" []
            (List.map fst (Xshard.degraded_shards sh));
          Alcotest.(check int) "nothing was lost" (n0 + 2)
            (Xshard.doc_count sh)))

let test_shard_fail_stop_isolates () =
  with_dir (fun dir ->
      let sh = open_seeded_shards dir in
      Fun.protect
        ~finally:(fun () -> Xshard.abandon sh)
        (fun () ->
          let n0 = Xshard.doc_count sh in
          let target = Xshard.next_route sh in
          F.install
            (F.Injector.create [ { F.at = 0; on = F.Write; fault = F.Fail_stop } ]);
          (match Xshard.insert sh doc_pool.(0) with
          | _ -> Alcotest.fail "insert survived a fail-stop"
          | exception F.Crashed -> ());
          (* Fail-stop is sticky process-wide: clear it immediately so
             the surviving shards' I/O runs fault-free. *)
          F.uninstall ();
          Alcotest.(check (list int)) "only the target shard is down" [ target ]
            (List.map fst (Xshard.down_shards sh));
          (* Queries answer from the survivors and declare the gap. *)
          let d = Xshard.query_detail sh (Xseq.Xpath.parse "/P") in
          Alcotest.(check bool) "partial answers flagged" false
            d.Xshard.complete;
          Alcotest.(check (list int)) "the gap names the shard" [ target ]
            (List.map fst d.Xshard.failed_shards);
          List.iter
            (fun id ->
              if Xshard.shard_of_id id = target then
                Alcotest.fail "a down shard's document answered")
            d.Xshard.value;
          (* The survivors keep accepting writes; the down shard refuses
             loudly. *)
          let accepted =
            insert_despite sh ~n:2 ~allow:(function
              | Xshard.Shard_down (i, _) -> i = target
              | _ -> false)
          in
          Alcotest.(check int) "two accepted by survivors" 2
            (List.length accepted);
          (* Re-open the crashed shard from disk: WAL replay brings back
             every acknowledged record and answers are whole again. *)
          Alcotest.(check bool) "shard recovery re-arms" true
            (Xshard.recover_shard sh target);
          let healed = Xshard.query_detail sh (Xseq.Xpath.parse "/P") in
          Alcotest.(check bool) "complete after recovery" true
            healed.Xshard.complete;
          Alcotest.(check int) "every acked record survived" (n0 + 2)
            (List.length healed.Xshard.value)))

(* Randomized shard torture: ingest into a 3-shard store under a fault
   schedule, recover whatever degrades or fail-stops, reopen fault-free
   and diff against the oracle.  Failures print (seed, schedule, shard)
   so any draw replays exactly. *)
let shard_torture_schedule seed =
  F.random_schedule ~seed ~ops:[ F.Write; F.Fsync; F.Rename; F.Open ]
    ~horizon:60 ~faults:3 ()

let shard_torture_run seed =
  let sched = shard_torture_schedule seed in
  let fault_shard = ref (-1) in (* last shard a fault landed on *)
  let ctx msg =
    Printf.sprintf "%s (seed=%d schedule=[%s] shard=%d)" msg seed
      (F.schedule_to_string sched)
      !fault_shard
  in
  with_dir (fun dir ->
      let rng = Random.State.make [| seed; 0x54a2d |] in
      let sh =
        Xshard.open_ ~shards:3 ~probe_interval:no_probe ~max_segments:1000 dir
      in
      let acked = ref [] in
      let removed = ref [] in
      let attempted = ref [] in
      let attempted_removes = ref [] in
      let crashed_once = ref false in
      (* A fault on shard [i]: clear the injector (fail-stop is sticky)
         and re-arm that shard — the rest of the run must be normal. *)
      let on_fault i =
        fault_shard := i;
        F.uninstall ();
        if not (Xshard.recover_shard sh i) then
          Alcotest.fail (ctx "shard recovery failed with the fault cleared");
        (* Only the faulted shard may have been touched. *)
        (match Xshard.degraded_shards sh with
        | [] -> ()
        | l ->
          Alcotest.fail
            (ctx
               (Printf.sprintf "shards {%s} degraded after recovery"
                  (String.concat ","
                     (List.map (fun (j, _) -> string_of_int j) l)))))
      in
      F.install (F.Injector.create sched);
      for _ = 1 to 40 do
        match Random.State.int rng 10 with
        | 0 when !acked <> [] -> (
          let id, _ =
            List.nth !acked (Random.State.int rng (List.length !acked))
          in
          (* As in torture_run: a remove that crashes after its WAL
             append but before the ack may legally recover either way. *)
          attempted_removes := id :: !attempted_removes;
          try
            ignore (Xshard.remove sh id : bool);
            removed := id :: !removed
          with
          | Xlog.Degraded _ ->
            attempted_removes := List.tl !attempted_removes;
            on_fault (Xshard.shard_of_id id)
          | F.Crashed ->
            crashed_once := true;
            on_fault (Xshard.shard_of_id id))
        | 1 -> (
          try Xshard.flush sh with
          | Xlog.Degraded _ -> (
            match Xshard.degraded_shards sh with
            | (i, _) :: _ -> on_fault i
            | [] -> on_fault (-1))
          | F.Crashed -> (
            crashed_once := true;
            match Xshard.down_shards sh with
            | (i, _) :: _ -> on_fault i
            | [] -> on_fault (-1)))
        | _ -> (
          let k = Random.State.int rng (Array.length doc_pool) in
          let target = Xshard.next_route sh in
          let infos = Xshard.shard_infos sh in
          let next_local = infos.(target).Xshard.next_local_id in
          attempted :=
            Xshard.encode_id ~shard:target ~local:next_local :: !attempted;
          try
            let id = Xshard.insert sh doc_pool.(k) in
            if Xshard.shard_of_id id <> target then
              Alcotest.fail (ctx "insert landed on an unpredicted shard");
            acked := (id, k) :: !acked
          with
          | Xlog.Degraded _ -> on_fault target
          | F.Crashed ->
            crashed_once := true;
            on_fault target)
      done;
      F.uninstall ();
      if !crashed_once then Xshard.abandon sh else Xshard.close sh;
      (* Reopen fault-free: per-shard crash recovery replays the WALs. *)
      let sh2 = Xshard.open_ ~max_segments:1000 dir in
      Fun.protect
        ~finally:(fun () -> Xshard.close sh2)
        (fun () ->
          Alcotest.(check int) (ctx "shard count recorded") 3
            (Xshard.shard_count sh2);
          let module IS = Set.Make (Int) in
          let acked_ids = IS.of_list (List.map fst !acked) in
          let removed_ids = IS.of_list !removed in
          let live_acked = IS.diff acked_ids removed_ids in
          let inflight_removes =
            IS.diff (IS.of_list !attempted_removes) removed_ids
          in
          let attempted_ids = IS.of_list !attempted in
          let recovered = IS.of_list (Xshard.query sh2 (Xseq.Xpath.parse "/P")) in
          let must_survive = IS.diff live_acked inflight_removes in
          if not (IS.subset must_survive recovered) then
            Alcotest.fail
              (ctx
                 (Printf.sprintf "acked ids lost: {%s}"
                    (String.concat ","
                       (List.map string_of_int
                          (IS.elements (IS.diff must_survive recovered))))));
          if not (IS.subset recovered attempted_ids) then
            Alcotest.fail (ctx "recovered ids never attempted");
          List.iteri
            (fun pi pat ->
              let ans = IS.of_list (Xshard.query sh2 pat) in
              List.iter
                (fun (id, k) ->
                  if IS.mem id live_acked && IS.mem id recovered then begin
                    let want = matches.(k).(pi) in
                    if IS.mem id ans <> want then
                      Alcotest.fail
                        (ctx
                           (Printf.sprintf
                              "pattern %s disagrees with the oracle on id %d"
                              (List.nth patterns pi) id))
                  end)
                !acked)
            parsed_patterns))

(* --- randomized torture: ingest under faults, reopen, diff vs oracle ------- *)

let torture_schedule seed =
  F.random_schedule ~seed ~ops:[ F.Write; F.Fsync; F.Rename; F.Open ]
    ~horizon:60 ~faults:5 ()

(* One torture run under [seed]'s schedule.  Returns unit; raises (via
   Alcotest) on any oracle violation. *)
let torture_run seed =
  let sched = torture_schedule seed in
  let ctx msg =
    Printf.sprintf "%s (seed=%d schedule=[%s])" msg seed
      (F.schedule_to_string sched)
  in
  with_dir (fun dir ->
      let rng = Random.State.make [| seed; 0x70a7 |] in
      let log = Xlog.open_ ~probe_interval:no_probe ~max_segments:1000 dir in
      let acked = ref [] in          (* (id, pool index) acknowledged inserts *)
      let removed = ref [] in        (* ids of acknowledged removes *)
      let attempted = ref [] in      (* every id an insert may have written *)
      let attempted_removes = ref [] in (* ids a remove may have written *)
      let crashed = ref false in
      let degraded_once = ref false in
      (* First disk fault: the store goes read-only.  Clear the fault
         and recover -- the rest of the run must behave normally. *)
      let on_degraded () =
        degraded_once := true;
        F.uninstall ();
        if not (Xlog.try_recover log) then
          Alcotest.fail (ctx "recovery failed with the fault cleared")
      in
      F.install (F.Injector.create sched);
      (try
         for _ = 1 to 40 do
           match Random.State.int rng 10 with
           | 0 when !acked <> [] ->
             let id, _ =
               List.nth !acked (Random.State.int rng (List.length !acked))
             in
             (* Record the attempt before the call: if the op crashes
                after its WAL append but before the ack, the remove record
                may or may not be on disk — either recovery outcome is
                legal, the same at-most-once indeterminacy the client layer
                documents for unacknowledged mutations. *)
             attempted_removes := id :: !attempted_removes;
             (try
                ignore (Xlog.remove log id : bool);
                removed := id :: !removed
              with Xlog.Degraded _ ->
                (* A degraded remove wrote nothing — keep the oracle sharp. *)
                attempted_removes := List.tl !attempted_removes;
                on_degraded ())
           | 1 -> ( try Xlog.flush log with Xlog.Degraded _ -> on_degraded ())
           | 2 -> (
             try ignore (Xlog.compact ~wait:true log : bool)
             with Xlog.Degraded _ -> on_degraded ())
           | _ ->
             let k = Random.State.int rng (Array.length doc_pool) in
             let next = Xlog.next_id log in
             attempted := next :: !attempted;
             (try
                let id = Xlog.insert log doc_pool.(k) in
                if id <> next then
                  Alcotest.fail (ctx "insert consumed an unexpected id");
                acked := (id, k) :: !acked
              with Xlog.Degraded _ -> on_degraded ())
         done
       with F.Crashed -> crashed := true);
      F.uninstall ();
      if !crashed then Xlog.abandon log else Xlog.close log;
      (* Reopen fault-free: crash recovery replays the WAL. *)
      let log2 = Xlog.open_ ~max_segments:1000 dir in
      Fun.protect
        ~finally:(fun () -> Xlog.close log2)
        (fun () ->
          let module IS = Set.Make (Int) in
          let acked_ids = IS.of_list (List.map fst !acked) in
          let removed_ids = IS.of_list !removed in
          let live_acked = IS.diff acked_ids removed_ids in
          let inflight_removes =
            IS.diff (IS.of_list !attempted_removes) removed_ids
          in
          let attempted_ids = IS.of_list !attempted in
          let recovered = IS.of_list (Xlog.query log2 (Xseq.Xpath.parse "/P")) in
          (* Durability: every acknowledged-live record survived, except
             ids whose remove was in flight at the crash — those may
             legally recover either way. *)
          let must_survive = IS.diff live_acked inflight_removes in
          if not (IS.subset must_survive recovered) then
            Alcotest.fail
              (ctx
                 (Printf.sprintf "acked ids lost: {%s}"
                    (String.concat ","
                       (List.map string_of_int
                          (IS.elements (IS.diff must_survive recovered))))));
          (* No phantoms: nothing the run never wrote. *)
          if not (IS.subset recovered attempted_ids) then
            Alcotest.fail (ctx "recovered ids never attempted");
          (* Per-pattern answers agree with the oracle id-for-id over
             the acknowledged records. *)
          List.iteri
            (fun pi pat ->
              let ans = IS.of_list (Xlog.query log2 pat) in
              List.iter
                (fun (id, k) ->
                  if IS.mem id live_acked && IS.mem id recovered then begin
                    let want = matches.(k).(pi) in
                    if IS.mem id ans <> want then
                      Alcotest.fail
                        (ctx
                           (Printf.sprintf
                              "pattern %s disagrees with the oracle on id %d"
                              (List.nth patterns pi) id))
                  end)
                !acked)
            parsed_patterns;
          ignore !degraded_once))

let chaos_iters =
  match Sys.getenv_opt "XSEQ_CHAOS_ITERS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 40)
  | None -> 40

let qcheck_torture =
  QCheck.Test.make ~count:chaos_iters ~name:"torture: recovery equals oracle"
    (QCheck.make
       ~print:(fun seed ->
         Printf.sprintf "seed=%d schedule=[%s]" seed
           (F.schedule_to_string (torture_schedule seed)))
       Gen.(int_bound 1_000_000))
    (fun seed ->
      torture_run seed;
      true)

(* A few pinned seeds so the suite exercises known-interesting schedules
   (including fail-stop) even when the QCheck draw is unlucky.  394425
   crashes a remove between its WAL append and its ack — the record
   survives recovery unacknowledged (legal at-most-once outcome). *)
let test_pinned_seeds () =
  List.iter torture_run [ 1; 2; 3; 5; 8; 13; 21; 34; 55; 89; 394425 ]

let qcheck_shard_torture =
  QCheck.Test.make
    ~count:(max 10 (chaos_iters / 4))
    ~name:"shard torture: recovery equals oracle"
    (QCheck.make
       ~print:(fun seed ->
         Printf.sprintf "seed=%d schedule=[%s]" seed
           (F.schedule_to_string (shard_torture_schedule seed)))
       Gen.(int_bound 1_000_000))
    (fun seed ->
      shard_torture_run seed;
      true)

let test_shard_pinned_seeds () = List.iter shard_torture_run [ 1; 2; 3; 5; 8 ]

(* --- partition weather ------------------------------------------------------ *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      F.uninstall ();
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

(* The printed form of every partition fault must survive the
   string round trip — it is how a failing chaos run's schedule
   comes back to life (XSEQ_FAULT_SCHEDULE). *)
let test_partition_schedule_roundtrip () =
  let sched =
    [
      { F.at = 3; on = F.Send; fault = F.Black_hole 5 };
      { F.at = 0; on = F.Recv; fault = F.Half_open 2 };
      { F.at = 7; on = F.Connect; fault = F.Slow_link (0.25, 4) };
      { F.at = 11; on = F.Send; fault = F.Conn_reset };
      { F.at = 2; on = F.Send; fault = F.Short 1 };
    ]
  in
  let s = F.schedule_to_string sched in
  (match F.schedule_of_string s with
   | Ok back -> Alcotest.(check bool) "round trips" true (back = sched)
   | Error m -> Alcotest.failf "parse %S: %s" s m);
  (* And the empty schedule. *)
  match F.schedule_of_string (F.schedule_to_string []) with
  | Ok [] -> ()
  | _ -> Alcotest.fail "empty schedule did not round trip"

let test_partition_schedule_replay () =
  for seed = 0 to 19 do
    let a = F.random_partition_schedule ~seed () in
    let b = F.random_partition_schedule ~seed () in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d replays" seed)
      true (a = b);
    List.iter
      (fun r ->
        Alcotest.(check bool) "socket class only" true
          (List.mem r.F.on F.socket_ops);
        match r.F.fault with
        | F.Fail_stop -> Alcotest.fail "partition schedule contains Fail_stop"
        | _ -> ())
      a;
    (* The string form round trips too — chaos scripts pass it through
       the environment. *)
    match F.schedule_of_string (F.schedule_to_string a) with
    | Ok back -> Alcotest.(check bool) "string round trip" true (back = a)
    | Error m -> Alcotest.failf "seed %d: %s" seed m
  done

(* A black-holed send claims success while moving no bytes — the peer
   hears silence, exactly the shape a heartbeat timeout needs. *)
let test_black_hole_socket () =
  with_socketpair (fun a b ->
      F.install (F.Injector.create [ { F.at = 0; on = F.Send; fault = F.Black_hole 2 } ]);
      let payload = Bytes.of_string "hello" in
      let n1 = F.Io.send a payload 0 5 in
      let n2 = F.Io.send a payload 0 5 in
      Alcotest.(check int) "swallowed send claims success" 5 n1;
      Alcotest.(check int) "second swallowed send too" 5 n2;
      Unix.set_nonblock b;
      let buf = Bytes.create 16 in
      (match Unix.recv b buf 0 16 [] with
       | n -> Alcotest.failf "peer received %d black-holed bytes" n
       | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
      Unix.clear_nonblock b;
      (* The burst is over: the third send really moves bytes. *)
      let n3 = F.Io.send a payload 0 5 in
      Alcotest.(check int) "link healed" 5 n3;
      Alcotest.(check int) "peer hears the healed link" 5 (Unix.recv b buf 0 16 []))

let test_half_open_socket () =
  with_socketpair (fun a _b ->
      F.install
        (F.Injector.create [ { F.at = 0; on = F.Recv; fault = F.Half_open 1 } ]);
      let buf = Bytes.create 16 in
      (* The peer "died without a FIN": recv reports clean end of stream
         even though the socket is alive. *)
      Alcotest.(check int) "half-open recv reports EOF" 0 (F.Io.recv a buf 0 16));
  with_socketpair (fun a _b ->
      F.install
        (F.Injector.create
           [ { F.at = 0; on = F.Connect; fault = F.Half_open 1 } ]);
      match F.Io.connect a (Unix.ADDR_UNIX "/nonexistent-xfault-test.sock") with
      | () -> Alcotest.fail "half-open connect succeeded"
      | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ()
      | exception Unix.Unix_error (e, _, _) ->
        Alcotest.failf "want ECONNREFUSED, got %s" (Unix.error_message e))

let test_slow_link_socket () =
  with_socketpair (fun a b ->
      F.install
        (F.Injector.create
           [ { F.at = 0; on = F.Send; fault = F.Slow_link (0.05, 2) } ]);
      let payload = Bytes.of_string "x" in
      let t0 = Unix.gettimeofday () in
      ignore (F.Io.send a payload 0 1 : int);
      ignore (F.Io.send a payload 0 1 : int);
      let dt = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "two slowed sends took %.0f ms" (dt *. 1000.))
        true (dt >= 0.09);
      (* The bytes still arrive — a slow link delays, never drops. *)
      let buf = Bytes.create 4 in
      Alcotest.(check int) "bytes arrive" 2 (Unix.recv b buf 0 4 []))

let () =
  Alcotest.run "xfault"
    [
      ( "partition",
        [
          Alcotest.test_case "schedule string round trip" `Quick
            test_partition_schedule_roundtrip;
          Alcotest.test_case "partition schedules replay from seeds" `Quick
            test_partition_schedule_replay;
          Alcotest.test_case "black hole swallows sends" `Quick
            test_black_hole_socket;
          Alcotest.test_case "half-open peer" `Quick test_half_open_socket;
          Alcotest.test_case "slow link delays" `Quick test_slow_link_socket;
        ] );
      ( "injector",
        [
          Alcotest.test_case "pass-through without injector" `Quick
            test_passthrough;
          Alcotest.test_case "counters and one-shot rules" `Quick
            test_counters_and_rules;
          Alcotest.test_case "short write clamped" `Quick test_short_write_clamped;
          Alcotest.test_case "EINTR storm" `Quick test_eintr_storm;
          Alcotest.test_case "fail-stop is sticky" `Quick test_fail_stop_sticky;
          Alcotest.test_case "schedules replay from seeds" `Quick
            test_schedule_replay;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "ENOSPC degrades, probe recovers" `Quick
            test_enospc_degrades_and_recovers;
          Alcotest.test_case "fsync EIO degrades" `Quick
            test_fsync_failure_degrades;
          Alcotest.test_case "short writes / EINTR absorbed" `Quick
            test_absorbed_faults_do_not_degrade;
          Alcotest.test_case "fail-stop then recover" `Quick
            test_fail_stop_then_recover;
        ] );
      ( "shards",
        [
          Alcotest.test_case "ENOSPC isolates to one shard" `Quick
            test_shard_enospc_isolates;
          Alcotest.test_case "fail-stop isolates to one shard" `Quick
            test_shard_fail_stop_isolates;
        ] );
      ( "torture",
        [
          Alcotest.test_case "pinned seeds" `Quick test_pinned_seeds;
          QCheck_alcotest.to_alcotest qcheck_torture;
          Alcotest.test_case "shard pinned seeds" `Quick test_shard_pinned_seeds;
          QCheck_alcotest.to_alcotest qcheck_shard_torture;
        ] );
    ]
