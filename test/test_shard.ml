(* Sharded-engine tests: the global id encoding, shard-count metadata
   persistence, per-shard failure visibility (partial answers + recovery
   re-arming), and the equivalence oracle at the heart of the design —
   a K-shard engine must answer every pattern with exactly the document
   set of an unsharded store fed the same operation sequence, for
   K ∈ {1, 2, 3, 8} and under insert/delete/flush/compact
   interleavings.  Ids differ across shard counts by construction, so
   answers are compared as sets of {e insertion ordinals} (the i-th
   successful insert), which also proves determinism across K: every
   engine maps back to the same ordinal set.  Randomized runs reprint
   their seed on failure. *)

module T = Xmlcore.Xml_tree
module Matcher = Xquery.Matcher
module Gen = QCheck.Gen

let e = T.elt
let v = T.text

(* --- scratch ---------------------------------------------------------------- *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let dir_seq = ref 0

let fresh_dir () =
  incr dir_seq;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "xshard-test-%d-%d" (Unix.getpid ()) !dir_seq)
  in
  rm_rf dir;
  dir

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* --- id encoding ------------------------------------------------------------ *)

let test_id_encoding () =
  List.iter
    (fun (shard, local) ->
      let id = Xshard.encode_id ~shard ~local in
      Alcotest.(check int) "shard survives" shard (Xshard.shard_of_id id);
      Alcotest.(check int) "local survives" local (Xshard.local_of_id id))
    [
      (0, 0);
      (0, 1);
      (1, 0);
      (7, 123456);
      (Xshard.max_shards - 1, 0);
      (Xshard.max_shards - 1, (1 lsl 52) - 1);
    ];
  (* Shard-major: every id of shard s sorts below every id of s+1, so
     concatenating per-shard sorted answers is already globally sorted. *)
  Alcotest.(check bool) "shard-major order" true
    (Xshard.encode_id ~shard:0 ~local:((1 lsl 52) - 1)
    < Xshard.encode_id ~shard:1 ~local:0);
  (* Shard 0's global ids are the local ids: a 1-shard store is
     id-for-id an Xlog store. *)
  Alcotest.(check int) "shard 0 is transparent" 42
    (Xshard.encode_id ~shard:0 ~local:42)

(* --- documents and patterns -------------------------------------------------- *)

let doc_pool =
  [|
    e "P" [ e "L" [ v "a" ] ];
    e "P" [ e "L" [ e "S" [] ] ];
    e "P" [ e "R" [ e "M" [ v "b" ] ] ];
    e "P" [ e "L" [ e "S" [] ]; e "R" [ v "c" ] ];
    e "P" [ e "D" [ e "U" [ e "N" [ v "gui" ] ] ] ];
    e "P" [];
  |]

let patterns = [ "/P"; "/P/L"; "/P/L/S"; "/P/R" ]
let parsed_patterns = List.map Xseq.Xpath.parse patterns

(* --- meta persistence -------------------------------------------------------- *)

let test_meta_persistence () =
  with_dir (fun dir ->
      let sh = Xshard.open_ ~shards:3 dir in
      ignore (Xshard.insert sh doc_pool.(0) : int);
      Xshard.close sh;
      Alcotest.(check bool) "sharded dir detected" true
        (Xshard.is_sharded_dir dir);
      (* Re-open without an explicit count: the meta file decides. *)
      let sh2 = Xshard.open_ dir in
      Alcotest.(check int) "recorded shard count" 3 (Xshard.shard_count sh2);
      Alcotest.(check int) "document recovered" 1 (Xshard.doc_count sh2);
      Xshard.close sh2;
      (* A conflicting explicit count is an error, not a silent resplit
         (ids of existing documents would decode to the wrong shard). *)
      (match Xshard.open_ ~shards:5 dir with
      | sh3 ->
        Xshard.close sh3;
        Alcotest.fail "conflicting shard count must be rejected"
      | exception Invalid_argument _ -> ()))

(* --- equivalence oracle ------------------------------------------------------ *)

let shard_counts = [ 1; 2; 3; 8 ]

type op = Insert of int | Delete of int | Flush | Compact

(* A reproducible operation script: ordinals name inserts in order, so a
   [Delete k] tombstones whatever document the k-th insert produced —
   the same logical operation whatever ids the engines assigned. *)
let script_of_seed seed =
  let rng = Random.State.make [| seed |] in
  let n = 25 + Random.State.int rng 20 in
  let inserted = ref 0 in
  List.init n (fun _ ->
      let r = Random.State.int rng 100 in
      if r < 60 || !inserted = 0 then begin
        incr inserted;
        Insert (Random.State.int rng (Array.length doc_pool))
      end
      else if r < 80 then Delete (Random.State.int rng !inserted)
      else if r < 90 then Flush
      else Compact)

let script_to_string ops =
  String.concat " "
    (List.map
       (function
         | Insert k -> Printf.sprintf "i%d" k
         | Delete k -> Printf.sprintf "d%d" k
         | Flush -> "f"
         | Compact -> "c")
       ops)

(* Engines under test share one mutation/query face so the script
   applies identically to the unsharded oracle and every K-shard
   engine. *)
type engine = {
  insert : T.t -> int;
  remove : int -> bool;
  flush : unit -> unit;
  compact : unit -> unit;
  query : Matcher.stats -> Xquery.Pattern.t -> int list;
  close : unit -> unit;
}

let xlog_engine dir =
  let log = Xlog.open_ ~memtable_limit:4 ~max_segments:1000 dir in
  {
    insert = Xlog.insert log;
    remove = Xlog.remove log;
    flush = (fun () -> Xlog.flush log);
    compact = (fun () -> ignore (Xlog.compact ~wait:true log : bool));
    query = (fun stats p -> Xlog.query ~stats log p);
    close = (fun () -> Xlog.close log);
  }

let xshard_engine ~shards dir =
  let sh = Xshard.open_ ~shards ~memtable_limit:4 ~max_segments:1000 dir in
  {
    insert = Xshard.insert sh;
    remove = Xshard.remove sh;
    flush = (fun () -> Xshard.flush sh);
    compact = (fun () -> ignore (Xshard.compact ~wait:true sh : bool));
    query = (fun stats p -> Xshard.query ~stats sh p);
    close = (fun () -> Xshard.close sh);
  }

(* Run the script, returning ordinal→id.  Every mutation must be
   accepted (no faults are injected here): disagreement on [remove]'s
   result is itself an oracle violation, caught by the caller comparing
   the returned tables. *)
let run_script eng ops =
  let ids = ref [] in
  let n = ref 0 in
  List.iter
    (fun op ->
      match op with
      | Insert k ->
        ids := eng.insert doc_pool.(k) :: !ids;
        incr n
      | Delete ord -> ignore (eng.remove (List.nth !ids (!n - 1 - ord)) : bool)
      | Flush -> eng.flush ()
      | Compact -> eng.compact ())
    ops;
  Array.of_list (List.rev !ids)

let ordinals_of_answer ids_by_ordinal answer =
  let rev = Hashtbl.create 64 in
  Array.iteri (fun ord id -> Hashtbl.replace rev id ord) ids_by_ordinal;
  List.map
    (fun id ->
      match Hashtbl.find_opt rev id with
      | Some ord -> ord
      | None -> Alcotest.failf "answer id %d was never handed out" id)
    answer

let check_sorted name ids =
  ignore
    (List.fold_left
       (fun prev id ->
         if id <= prev then
           Alcotest.failf "%s: answer not strictly ascending at %d" name id;
         id)
       min_int ids
      : int)

(* Per-pattern answer-ordinal snapshot of an engine.  The matcher stats
   are exercised but not compared across engines: [Matcher.matches]
   counts complete query-sequence matches in the {e index} — distinct
   structural paths per segment — so it depends on how documents
   cluster into segments, which sharding changes by design.  The
   document-level match counts (answer cardinalities) are what must be
   invariant, and they are checked exactly. *)
let snapshot ids_by_ordinal eng =
  List.map
    (fun p ->
      let stats = Matcher.create_stats () in
      let ids = eng.query stats p in
      check_sorted (Xquery.Pattern.to_string p) ids;
      (List.sort compare (ordinals_of_answer ids_by_ordinal ids), List.length ids))
    parsed_patterns

(* One equivalence run: the script against the unsharded oracle and
   every K-shard engine.  Answer ordinal sets and per-pattern match
   counts must agree on the raw post-script state — whatever mix of
   memtables, segments and pending tombstones each engine happens to
   hold — and again after flushing + compacting both sides, which
   exercises seal and tombstone-purge equivalence too. *)
let equivalence_run seed =
  let ops = script_of_seed seed in
  with_dir (fun oracle_dir ->
      let oracle = xlog_engine oracle_dir in
      let oracle_ids = run_script oracle ops in
      let oracle_raw = snapshot oracle_ids oracle in
      oracle.flush ();
      oracle.compact ();
      let oracle_compacted = snapshot oracle_ids oracle in
      List.iter
        (fun shards ->
          with_dir (fun dir ->
              let eng = xshard_engine ~shards dir in
              Fun.protect
                ~finally:(fun () -> eng.close ())
                (fun () ->
                  let ids_tbl = run_script eng ops in
                  let raw = snapshot ids_tbl eng in
                  eng.flush ();
                  eng.compact ();
                  let compacted = snapshot ids_tbl eng in
                  let check_round round want got =
                    List.iteri
                      (fun i pat ->
                        let want_ordinals, want_matches = List.nth want i in
                        let got_ordinals, got_matches = List.nth got i in
                        Alcotest.(check (list int))
                          (Printf.sprintf
                             "seed %d K=%d pattern %s (%s): answer ordinals"
                             seed shards
                             (Xquery.Pattern.to_string pat)
                             round)
                          want_ordinals got_ordinals;
                        Alcotest.(check int)
                          (Printf.sprintf
                             "seed %d K=%d pattern %s (%s): match count" seed
                             shards
                             (Xquery.Pattern.to_string pat)
                             round)
                          want_matches got_matches)
                      parsed_patterns
                  in
                  check_round "raw" oracle_raw raw;
                  check_round "compacted" oracle_compacted compacted)))
        shard_counts;
      oracle.close ())

let shard_iters =
  match Sys.getenv_opt "XSEQ_SHARD_ITERS" with
  | Some s -> (try max 1 (int_of_string s) with Failure _ -> 12)
  | None -> 12

let qcheck_equivalence =
  QCheck.Test.make ~count:shard_iters
    ~name:"equivalence: K shards = unsharded oracle"
    (QCheck.make
       ~print:(fun seed ->
         Printf.sprintf "seed %d (script %s)" seed
           (script_to_string (script_of_seed seed)))
       Gen.(0 -- 1_000_000))
    (fun seed ->
      equivalence_run seed;
      true)

let test_equivalence_pinned () =
  (* Replayable regression anchors, independent of the QCheck RNG. *)
  List.iter equivalence_run [ 1; 7; 42; 1234 ]

(* --- recovery keeps the equivalence ----------------------------------------- *)

let test_reopen_equivalence () =
  (* Close every engine mid-life, reopen from disk (checkpoint + WAL
     replay across every shard), and re-check one pattern: recovery must
     not bend the answers either. *)
  let ops = script_of_seed 99 in
  with_dir (fun oracle_dir ->
      with_dir (fun dir ->
          let oracle = xlog_engine oracle_dir in
          let oracle_ids = run_script oracle ops in
          let eng = xshard_engine ~shards:3 dir in
          let ids_tbl = run_script eng ops in
          oracle.close ();
          eng.close ();
          let oracle2 = xlog_engine oracle_dir in
          let eng2 = xshard_engine ~shards:3 dir in
          Fun.protect
            ~finally:(fun () ->
              oracle2.close ();
              eng2.close ())
            (fun () ->
              List.iter
                (fun pat ->
                  let want =
                    List.sort compare
                      (ordinals_of_answer oracle_ids
                         (oracle2.query (Matcher.create_stats ()) pat))
                  in
                  let got =
                    List.sort compare
                      (ordinals_of_answer ids_tbl
                         (eng2.query (Matcher.create_stats ()) pat))
                  in
                  Alcotest.(check (list int)) "answers survive reopen" want got)
                parsed_patterns)))

(* --- batched scatter-gather -------------------------------------------------- *)

let test_query_batch_matches_query () =
  with_dir (fun dir ->
      let sh = Xshard.open_ ~shards:3 ~memtable_limit:4 dir in
      Fun.protect
        ~finally:(fun () -> Xshard.close sh)
        (fun () ->
          for i = 0 to 29 do
            ignore (Xshard.insert sh doc_pool.(i mod Array.length doc_pool) : int)
          done;
          let pats = Array.of_list parsed_patterns in
          let merged = Matcher.create_stats () in
          let batch = Xshard.query_batch ~stats:merged sh pats in
          let singles = Array.map (Xshard.query sh) pats in
          Array.iteri
            (fun i ids ->
              Alcotest.(check (list int)) "batch = singles" singles.(i) ids)
            batch;
          (* The merged stats carry every shard's counters: the batch
             found as many matches as the single-pattern runs did. *)
          let single_matches =
            Array.fold_left
              (fun acc p ->
                let s = Matcher.create_stats () in
                ignore (Xshard.query ~stats:s sh p : int list);
                acc + s.Matcher.matches)
              0 pats
          in
          Alcotest.(check int) "merged match count" single_matches
            merged.Matcher.matches))

(* --- per-shard failure visibility -------------------------------------------- *)

let test_down_shard_partial_answers () =
  with_dir (fun dir ->
      let sh = Xshard.open_ ~shards:3 ~memtable_limit:4 dir in
      Fun.protect
        ~finally:(fun () -> Xshard.abandon sh)
        (fun () ->
          let ids =
            Array.init 30 (fun _ -> Xshard.insert sh doc_pool.(0))
          in
          let p = Xseq.Xpath.parse "/P" in
          let before = Xshard.query_detail sh p in
          Alcotest.(check bool) "complete before the failure" true
            before.Xshard.complete;
          (* Declare shard 1 fail-stopped (the engine does this itself
             when a shard operation raises Crashed — test_fault drives
             that path with a real injector). *)
          Xshard.mark_down sh 1 "test fail-stop";
          let after = Xshard.query_detail sh p in
          Alcotest.(check bool) "incomplete with a shard down" false
            after.Xshard.complete;
          Alcotest.(check (list int)) "the gap names the shard" [ 1 ]
            (List.map fst after.Xshard.failed_shards);
          let survivors =
            List.filter (fun id -> Xshard.shard_of_id id <> 1)
              (Array.to_list ids)
          in
          Alcotest.(check (list int)) "survivors still answer"
            (List.sort compare survivors)
            after.Xshard.value;
          (* Writes routed to the down shard are refused loudly... *)
          (match
             Array.exists
               (fun id ->
                 Xshard.shard_of_id id = 1
                 &&
                 match Xshard.remove sh id with
                 | _ -> false
                 | exception Xshard.Shard_down (1, _) -> true)
               ids
           with
          | true -> ()
          | false -> Alcotest.fail "no remove hit the down shard");
          (* ...while the survivors keep accepting them. *)
          (match List.rev survivors with
          | last :: _ ->
            Alcotest.(check bool) "live shards accept writes" true
              (Xshard.remove sh last)
          | [] -> Alcotest.fail "no surviving documents");
          (* Recovery re-opens the shard from disk: every synced record
             replays and the answers are whole again. *)
          Alcotest.(check bool) "recovery re-arms" true (Xshard.recover_shard sh 1);
          let healed = Xshard.query_detail sh p in
          Alcotest.(check bool) "complete after recovery" true
            healed.Xshard.complete;
          Alcotest.(check int) "every document back" 29
            (List.length healed.Xshard.value)))

(* --- suite ------------------------------------------------------------------- *)

let () =
  Alcotest.run "xshard"
    [
      ( "encoding",
        [
          Alcotest.test_case "id encode/decode" `Quick test_id_encoding;
          Alcotest.test_case "meta persistence" `Quick test_meta_persistence;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "pinned seeds" `Quick test_equivalence_pinned;
          QCheck_alcotest.to_alcotest qcheck_equivalence;
          Alcotest.test_case "reopen equivalence" `Quick test_reopen_equivalence;
        ] );
      ( "scatter-gather",
        [
          Alcotest.test_case "batch = singles + stats merge" `Quick
            test_query_batch_matches_query;
          Alcotest.test_case "down shard: partial answers, recovery" `Quick
            test_down_shard_partial_answers;
        ] );
    ]
