(* Unit tests for the server's prepared-plan LRU cache, using plain
   strings as plans (the cache is polymorphic precisely so its eviction
   logic is testable without building indexes).

   Covered: LRU eviction order under capacity pressure, the disabled
   capacity-0 cache, recency refresh on re-insert and on lookup,
   generation-stamp invalidation, and counter bookkeeping. *)

module C = Xserver.Plan_cache

let find c key = C.find c ~generation:1 key
let add c key v = C.add c ~generation:1 key v

let test_basic () =
  let c = C.create ~capacity:4 in
  Alcotest.(check int) "capacity" 4 (C.capacity c);
  Alcotest.(check (option string)) "empty miss" None (find c "a");
  add c "a" "A";
  Alcotest.(check (option string)) "hit" (Some "A") (find c "a");
  Alcotest.(check int) "length" 1 (C.length c);
  Alcotest.(check int) "hits" 1 (C.hits c);
  Alcotest.(check int) "misses" 1 (C.misses c)

(* Filling past capacity evicts in least-recently-used order. *)
let test_lru_eviction_order () =
  let c = C.create ~capacity:3 in
  add c "a" "A";
  add c "b" "B";
  add c "c" "C";
  (* Touch "a" so "b" becomes the LRU entry. *)
  Alcotest.(check (option string)) "touch a" (Some "A") (find c "a");
  add c "d" "D";
  Alcotest.(check int) "still at capacity" 3 (C.length c);
  Alcotest.(check (option string)) "b evicted" None (find c "b");
  Alcotest.(check (option string)) "a survives" (Some "A") (find c "a");
  Alcotest.(check (option string)) "c survives" (Some "C") (find c "c");
  Alcotest.(check (option string)) "d cached" (Some "D") (find c "d");
  (* Those three lookups re-ranked recency to a < c < d, so the next
     insert evicts "a" — lookups are touches too. *)
  add c "e" "E";
  Alcotest.(check (option string)) "a evicted next" None (find c "a");
  Alcotest.(check (option string)) "c still in" (Some "C") (find c "c");
  Alcotest.(check (option string)) "d still in" (Some "D") (find c "d")

(* Re-inserting an existing key refreshes both its value and its
   recency: it must become the most-recently-used entry. *)
let test_reinsert_refreshes_recency () =
  let c = C.create ~capacity:3 in
  add c "a" "A";
  add c "b" "B";
  add c "c" "C";
  (* Re-insert the oldest key with a new value. *)
  add c "a" "A2";
  Alcotest.(check int) "no growth on re-insert" 3 (C.length c);
  add c "d" "D";
  (* "b" was the LRU (a was refreshed), so it goes first. *)
  Alcotest.(check (option string)) "b evicted" None (find c "b");
  Alcotest.(check (option string)) "refreshed value" (Some "A2") (find c "a");
  add c "e" "E";
  Alcotest.(check (option string)) "c evicted" None (find c "c");
  Alcotest.(check (option string)) "a outlives both" (Some "A2") (find c "a")

(* capacity <= 0 is the --no-plan-cache server: every lookup misses,
   every insert is dropped, and the counters still count. *)
let test_capacity_zero () =
  let c = C.create ~capacity:0 in
  Alcotest.(check int) "capacity" 0 (C.capacity c);
  add c "a" "A";
  Alcotest.(check int) "nothing stored" 0 (C.length c);
  Alcotest.(check (option string)) "always a miss" None (find c "a");
  add c "a" "A";
  add c "b" "B";
  Alcotest.(check int) "still nothing" 0 (C.length c);
  Alcotest.(check int) "hits" 0 (C.hits c);
  Alcotest.(check int) "misses counted" 1 (C.misses c);
  (* Negative capacity behaves identically. *)
  let c = C.create ~capacity:(-3) in
  add c "x" "X";
  Alcotest.(check (option string)) "negative = disabled" None (find c "x")

(* A generation mismatch is a miss that also drops the stale entry. *)
let test_generation_invalidation () =
  let c = C.create ~capacity:4 in
  C.add c ~generation:1 "q" "old-plan";
  Alcotest.(check (option string))
    "same generation hits" (Some "old-plan")
    (C.find c ~generation:1 "q");
  Alcotest.(check (option string))
    "new generation misses" None
    (C.find c ~generation:2 "q");
  Alcotest.(check int) "stale entry dropped" 0 (C.length c);
  (* Re-cached under the new generation. *)
  C.add c ~generation:2 "q" "new-plan";
  Alcotest.(check (option string))
    "fresh plan hits" (Some "new-plan")
    (C.find c ~generation:2 "q")

let test_clear () =
  let c = C.create ~capacity:4 in
  add c "a" "A";
  add c "b" "B";
  ignore (find c "a" : string option);
  let hits0 = C.hits c and misses0 = C.misses c in
  C.clear c;
  Alcotest.(check int) "empty after clear" 0 (C.length c);
  Alcotest.(check (option string)) "entries gone" None (find c "a");
  Alcotest.(check int) "hit counter kept" hits0 (C.hits c);
  Alcotest.(check bool) "miss counter kept (and counting)" true
    (C.misses c > misses0)

(* A capacity-1 cache degenerates to "remember the last plan". *)
let test_capacity_one () =
  let c = C.create ~capacity:1 in
  add c "a" "A";
  add c "b" "B";
  Alcotest.(check (option string)) "a evicted" None (find c "a");
  Alcotest.(check (option string)) "b kept" (Some "B") (find c "b")

let () =
  Alcotest.run "xserver plan cache"
    [
      ( "lru",
        [
          Alcotest.test_case "basic hit/miss" `Quick test_basic;
          Alcotest.test_case "eviction follows recency" `Quick
            test_lru_eviction_order;
          Alcotest.test_case "re-insert refreshes recency" `Quick
            test_reinsert_refreshes_recency;
          Alcotest.test_case "capacity one" `Quick test_capacity_one;
        ] );
      ( "edges",
        [
          Alcotest.test_case "capacity zero disables" `Quick test_capacity_zero;
          Alcotest.test_case "generation invalidates" `Quick
            test_generation_invalidation;
          Alcotest.test_case "clear" `Quick test_clear;
        ] );
    ]
