(* Determinism and oracle properties for the domain-parallel paths:

   - [Xseq.build ~domains] must produce an index byte-identical (in its
     portable form: labels, links, layout, document table) to the
     sequential build, for every sequencing strategy;
   - [Xseq.query_batch] must agree with the sequential [Xseq.query] and
     with the brute-force embedding oracle under 1, 2 and 8 domains;
   - merged per-worker matcher stats and pager totals must equal the
     sequential totals (no lost or double-counted work).

   Worker domains are shared across properties: spawning is the expensive
   part, so the 2- and 8-domain pools are created lazily once and shut
   down at exit. *)

module Pool = Xutil.Domain_pool
module Syn = Xdatagen.Synthetic
module Qgen = Xdatagen.Query_gen

let pool2 = lazy (Pool.create ~domains:2 ())
let pool8 = lazy (Pool.create ~domains:8 ())

let () =
  at_exit (fun () ->
      List.iter
        (fun p -> if Lazy.is_val p then Pool.shutdown (Lazy.force p))
        [ pool2; pool8 ])

(* The full portable form covers pre/post labels, node paths, horizontal
   links (entries, up-pointers, page bases) and the document table, so
   fingerprint equality is label-and-link identity, not just equal
   sizes. *)
let fingerprint index =
  Marshal.to_string (Xindex.Labeled.to_portable (Xseq.labeled index)) []

(* --- parallel build = sequential build, per strategy ---------------------- *)

let build_configs =
  [
    ("probability", Xseq.default_config);
    ( "probability sampled",
      { Xseq.default_config with sample_fraction = 0.4; sample_seed = 5 } );
    ( "depth-first canonical",
      { Xseq.default_config with sequencing = Xseq.Depth_first { canonical = true } } );
    ( "breadth-first canonical",
      { Xseq.default_config with
        sequencing = Xseq.Breadth_first { canonical = true }
      } );
    ( "depth-first raw",
      { Xseq.default_config with sequencing = Xseq.Depth_first { canonical = false } } );
    ( "text mode",
      { Xseq.default_config with value_mode = Sequencing.Encoder.Text } );
    ( "text canonical",
      { Xseq.default_config with
        sequencing = Xseq.Depth_first { canonical = true };
        value_mode = Sequencing.Encoder.Text
      } );
    ( "random",
      { Xseq.default_config with sequencing = Xseq.Random 11 } );
    ( "incremental insert",
      { Xseq.default_config with bulk = false } );
  ]

let small_corpus seed =
  let params = { Syn.l = 3; f = 3; a = 15; i = 30; p = 40 } in
  Syn.dataset ~schema_seed:7 ~data_seed:seed params 25

let prop_parallel_build_identical =
  QCheck.Test.make ~name:"parallel build = sequential build (all strategies)"
    ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let docs = small_corpus seed in
      List.for_all
        (fun (name, config) ->
          let seq = Xseq.build ~config docs in
          let par2 = Xseq.build ~pool:(Lazy.force pool2) ~config docs in
          let par8 = Xseq.build ~pool:(Lazy.force pool8) ~config docs in
          let fp = fingerprint seq in
          let ok =
            Xseq.node_count seq = Xseq.node_count par2
            && Xseq.node_count seq = Xseq.node_count par8
            && String.equal fp (fingerprint par2)
            && String.equal fp (fingerprint par8)
          in
          if not ok then
            QCheck.Test.fail_reportf "config %S diverges (seed %d)" name seed;
          ok)
        build_configs)

let prop_parallel_build_identical_xmark =
  QCheck.Test.make
    ~name:"parallel build = sequential build (XMark-like corpora)" ~count:15
    QCheck.(pair (int_range 0 10_000) bool)
    (fun (seed, identical_siblings) ->
      let docs = Xdatagen.Xmark_gen.generate ~seed ~identical_siblings 30 in
      List.for_all
        (fun (name, config) ->
          let seq = Xseq.build ~config docs in
          let par = Xseq.build ~pool:(Lazy.force pool8) ~config docs in
          let ok =
            Xseq.node_count seq = Xseq.node_count par
            && String.equal (fingerprint seq) (fingerprint par)
          in
          if not ok then
            QCheck.Test.fail_reportf "config %S diverges on xmark (seed %d)"
              name seed;
          ok)
        [
          ("probability", Xseq.default_config);
          ( "depth-first canonical",
            { Xseq.default_config with
              sequencing = Xseq.Depth_first { canonical = true }
            } );
          ( "text mode",
            { Xseq.default_config with value_mode = Sequencing.Encoder.Text } );
        ])

let prop_parallel_build_same_answers =
  QCheck.Test.make ~name:"parallel build answers queries like sequential"
    ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let docs = small_corpus seed in
      let seq = Xseq.build docs in
      let par = Xseq.build ~domains:2 docs in
      let opts = { Qgen.default_opts with size = 4; value_prob = 0.5 } in
      List.for_all
        (fun q -> Xseq.query seq q = Xseq.query par q)
        (Qgen.generate ~seed ~opts docs 5))

(* --- query_batch vs sequential query vs oracle ----------------------------- *)

(* One shared ≥200-document corpus and index; properties vary the query
   workload.  [i = 30] gives identical siblings, the regime where the
   constraint check actually rejects candidates. *)
let corpus =
  lazy
    (Syn.dataset ~schema_seed:3 ~data_seed:4
       { Syn.l = 3; f = 3; a = 20; i = 30; p = 40 }
       240)

let corpus_index = lazy (Xseq.build (Lazy.force corpus))

let workload seed =
  let docs = Lazy.force corpus in
  let opts =
    {
      Qgen.size = 4 + (seed mod 3);
      star_prob = 0.15;
      desc_prob = 0.2;
      value_prob = 0.5;
      wide = false;
    }
  in
  Array.of_list (Qgen.generate ~seed ~opts docs 8)

let prop_query_batch_oracle =
  QCheck.Test.make
    ~name:"query_batch = sequential query = oracle (1/2/8 domains)"
    ~count:100
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let docs = Lazy.force corpus in
      let index = Lazy.force corpus_index in
      let patterns = workload seed in
      let sequential = Array.map (fun q -> Xseq.query index q) patterns in
      let oracle =
        Array.map (fun q -> Xquery.Embedding.filter q docs) patterns
      in
      if sequential <> oracle then
        QCheck.Test.fail_reportf "engine disagrees with oracle (seed %d)" seed;
      List.for_all
        (fun run ->
          let got = run index patterns in
          if got <> sequential then
            QCheck.Test.fail_reportf "batch diverges (seed %d)" seed
          else true)
        [
          (fun i p -> Xseq.query_batch ~domains:1 i p);
          (fun i p -> Xseq.query_batch ~pool:(Lazy.force pool2) i p);
          (fun i p -> Xseq.query_batch ~pool:(Lazy.force pool8) i p);
        ])

let prop_batch_stats_totals =
  QCheck.Test.make
    ~name:"merged batch stats = sequential stats totals" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let index = Lazy.force corpus_index in
      let patterns = workload seed in
      let seq_stats = Xquery.Matcher.create_stats () in
      Array.iter
        (fun q -> ignore (Xseq.query ~stats:seq_stats index q))
        patterns;
      List.for_all
        (fun run ->
          let stats = Xquery.Matcher.create_stats () in
          ignore (run ~stats index patterns : int list array);
          stats.Xquery.Matcher.probes = seq_stats.Xquery.Matcher.probes
          && stats.Xquery.Matcher.candidates
             = seq_stats.Xquery.Matcher.candidates
          && stats.Xquery.Matcher.rejected = seq_stats.Xquery.Matcher.rejected
          && stats.Xquery.Matcher.matches = seq_stats.Xquery.Matcher.matches)
        [
          (fun ~stats i p -> Xseq.query_batch ~domains:1 ~stats i p);
          (fun ~stats i p ->
            Xseq.query_batch ~pool:(Lazy.force pool2) ~stats i p);
          (fun ~stats i p ->
            Xseq.query_batch ~pool:(Lazy.force pool8) ~stats i p);
        ])

let prop_batch_io_totals =
  QCheck.Test.make
    ~name:"batch I/O totals are domain-count independent" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let index = Lazy.force corpus_index in
      let patterns = workload seed in
      (* Sequential reference: one pager, per-query accounting summed by
         hand.  [buffer_pages = 0] makes every per-query count
         assignment-independent. *)
      let pager = Xstorage.Pager.create () in
      let seq_pages = ref 0 and seq_misses = ref 0 in
      Array.iter
        (fun q ->
          Xstorage.Pager.begin_query pager;
          ignore (Xseq.query ~pager index q);
          seq_pages := !seq_pages + Xstorage.Pager.pages_touched pager;
          seq_misses := !seq_misses + Xstorage.Pager.misses pager)
        patterns;
      let seq_accesses = Xstorage.Pager.total_accesses pager in
      let results, _ = Xseq.query_batch_io ~domains:1 index patterns in
      let sequential = Array.map (fun q -> Xseq.query index q) patterns in
      if results <> sequential then
        QCheck.Test.fail_reportf "query_batch_io changes answers (seed %d)"
          seed;
      List.for_all
        (fun run ->
          let _, (io : Xseq.batch_io) = run index patterns in
          io.Xseq.io_pages_touched = !seq_pages
          && io.Xseq.io_misses = !seq_misses
          && io.Xseq.io_accesses = seq_accesses)
        [
          (fun i p -> Xseq.query_batch_io ~domains:1 i p);
          (fun i p -> Xseq.query_batch_io ~pool:(Lazy.force pool2) i p);
          (fun i p -> Xseq.query_batch_io ~pool:(Lazy.force pool8) i p);
        ])

(* Regression: N copies of one query run concurrently must count exactly
   N times the single-query work — a shared mutable stats record (the old
   [no_stats] default) or a shared pager would double-count or lose
   updates under domains. *)
let test_no_double_count () =
  let index = Lazy.force corpus_index in
  let q = (workload 77).(0) in
  let single = Xquery.Matcher.create_stats () in
  ignore (Xseq.query ~stats:single index q);
  let n = 32 in
  let stats = Xquery.Matcher.create_stats () in
  let results =
    Xseq.query_batch ~pool:(Lazy.force pool8) ~stats index (Array.make n q)
  in
  Array.iter
    (fun ids ->
      Alcotest.(check (list int)) "same answer" (Xseq.query index q) ids)
    results;
  Alcotest.(check int) "probes scale exactly"
    (n * single.Xquery.Matcher.probes)
    stats.Xquery.Matcher.probes;
  Alcotest.(check int) "matches scale exactly"
    (n * single.Xquery.Matcher.matches)
    stats.Xquery.Matcher.matches

(* Regression for the Stats memo fallback on the batched-query hot path:
   pricing a never-indexed path during query compilation used to take
   the memo mutex once per query of every batch; the cache is now an
   immutable map read with one atomic load and published by CAS.  A
   compile-heavy batch full of unseen paths — every lookup a fallback,
   every domain racing to publish — must agree with the sequential
   answers on a cold cache and again on a warm one, and mixing in seen
   patterns must not perturb their answers. *)
let test_memo_fallback_batch () =
  let index = Lazy.force corpus_index in
  let runs =
    [
      ("1 domain", fun i p -> Xseq.query_batch ~domains:1 i p);
      ("2 domains", fun i p -> Xseq.query_batch ~pool:(Lazy.force pool2) i p);
      ("8 domains", fun i p -> Xseq.query_batch ~pool:(Lazy.force pool8) i p);
    ]
  in
  List.iteri
    (fun r (name, run) ->
      (* Fresh ghost tags per run: each run starts with its own cold
         slice of the memo, whatever the previous runs published. *)
      let patterns =
        Array.init 48 (fun i ->
            if i mod 3 = 0 then (workload 5).(i mod 8)
            else
              Xseq.Xpath.parse
                (Printf.sprintf "/ghost%d_%d/phantom%d/wraith%d" r i (i * 7)
                   (i * 13)))
      in
      let sequential = Array.map (fun q -> Xseq.query index q) patterns in
      let cold = run index patterns in
      let warm = run index patterns in
      Alcotest.(check bool)
        (Printf.sprintf "%s: cold cache agrees" name)
        true (cold = sequential);
      Alcotest.(check bool)
        (Printf.sprintf "%s: warm cache agrees" name)
        true (warm = sequential))
    runs

let test_merge_stats () =
  let a = Xquery.Matcher.create_stats () in
  a.Xquery.Matcher.probes <- 3;
  a.Xquery.Matcher.matches <- 1;
  let b = Xquery.Matcher.create_stats () in
  b.Xquery.Matcher.probes <- 4;
  b.Xquery.Matcher.candidates <- 2;
  Xquery.Matcher.merge_stats ~into:a b;
  Alcotest.(check int) "probes" 7 a.Xquery.Matcher.probes;
  Alcotest.(check int) "candidates" 2 a.Xquery.Matcher.candidates;
  Alcotest.(check int) "matches" 1 a.Xquery.Matcher.matches;
  Alcotest.(check int) "source unchanged" 4 b.Xquery.Matcher.probes

let test_dynamic_parallel () =
  (* A Dynamic accumulator with parallel rebuilds answers exactly like a
     sequential one. *)
  let docs = Lazy.force corpus in
  let slice = Array.sub docs 0 60 in
  let d1 = Xseq.Dynamic.create ~rebuild_threshold:16 [||] in
  let d2 = Xseq.Dynamic.create ~domains:2 ~rebuild_threshold:16 [||] in
  Array.iter
    (fun doc ->
      ignore (Xseq.Dynamic.add d1 doc);
      ignore (Xseq.Dynamic.add d2 doc))
    slice;
  let opts = { Qgen.default_opts with size = 4; value_prob = 0.5 } in
  List.iter
    (fun q ->
      Alcotest.(check (list int))
        (Xquery.Pattern.to_string q)
        (Xseq.Dynamic.query d1 q) (Xseq.Dynamic.query d2 q))
    (Qgen.generate ~seed:21 ~opts slice 6);
  Alcotest.(check int) "snapshot identical" (Xseq.node_count (Xseq.Dynamic.snapshot d1))
    (Xseq.node_count (Xseq.Dynamic.snapshot d2))

let () =
  Alcotest.run "parallel"
    [
      ( "build determinism",
        [
          QCheck_alcotest.to_alcotest prop_parallel_build_identical;
          QCheck_alcotest.to_alcotest prop_parallel_build_identical_xmark;
          QCheck_alcotest.to_alcotest prop_parallel_build_same_answers;
        ] );
      ( "batched queries",
        [
          QCheck_alcotest.to_alcotest prop_query_batch_oracle;
          QCheck_alcotest.to_alcotest prop_batch_stats_totals;
          QCheck_alcotest.to_alcotest prop_batch_io_totals;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "no double counting" `Quick test_no_double_count;
          Alcotest.test_case "memo fallback off the hot path" `Quick
            test_memo_fallback_batch;
          Alcotest.test_case "merge_stats" `Quick test_merge_stats;
        ] );
      ( "dynamic",
        [ Alcotest.test_case "parallel rebuilds" `Quick test_dynamic_parallel ] );
    ]
