(* Property-based equivalence of every query path against the brute-force
   embedding oracle, plus unit tests for the XPath parser and matcher
   internals.  Trees use a tiny alphabet so identical siblings and deep
   sharing occur constantly — the regime where naive matching fails. *)

module T = Xmlcore.Xml_tree
module Gen = QCheck.Gen
module Pattern = Xquery.Pattern

let tags = [| "a"; "b"; "c"; "d" |]
let vals = [| "v0"; "v1"; "v2" |]

let doc_gen : T.t Gen.t =
  let open Gen in
  let rec tree depth st =
    let fanout = if depth >= 4 then 0 else int_bound (4 - depth) st in
    let kids =
      List.init fanout (fun _ ->
          if depth >= 1 && int_bound 3 st = 0 then T.text (oneofa vals st)
          else tree (depth + 1) st)
    in
    T.elt (oneofa tags st) kids
  in
  tree 0

let corpus_gen = Gen.(list_size (int_range 1 15) doc_gen)

(* A test case: a corpus plus a seed from which queries are derived. *)
let case_gen = Gen.pair corpus_gen (Gen.int_bound 10_000)

let case_print (docs, seed) =
  Printf.sprintf "seed=%d docs=[%s]" seed
    (String.concat "; " (List.map (Format.asprintf "%a" T.pp) docs))

let queries_of ~seed docs =
  let opts =
    {
      Xdatagen.Query_gen.size = 5;
      star_prob = 0.2;
      desc_prob = 0.2;
      value_prob = 0.5;
      wide = false;
    }
  in
  Xdatagen.Query_gen.generate ~seed ~opts docs 6

let mk_prop name ~count f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count (QCheck.make ~print:case_print case_gen) f)

let oracle pattern docs = Xquery.Embedding.filter pattern docs

let prop_engine_vs_oracle config_name config (docs, seed) =
  let docs = Array.of_list docs in
  let index = Xseq.build ~config docs in
  List.for_all
    (fun q ->
      let got = Xseq.query index q in
      let want = oracle q docs in
      if got <> want then
        QCheck.Test.fail_reportf "%s: query %s: got [%s] want [%s]" config_name
          (Pattern.to_string q)
          (String.concat "," (List.map string_of_int got))
          (String.concat "," (List.map string_of_int want))
      else true)
    (queries_of ~seed docs)

let engine_prop name config =
  mk_prop ("engine = oracle: " ^ name) ~count:120 (prop_engine_vs_oracle name config)

(* Naive matching may only ADD results (false alarms), never lose any. *)
let prop_naive_superset (docs, seed) =
  let docs = Array.of_list docs in
  let index = Xseq.build docs in
  let labeled = Xseq.labeled index in
  List.for_all
    (fun q ->
      match
        Xquery.Engine.compile ~strategy:(Xseq.strategy index)
          ~value_mode:(Xseq.value_mode index) labeled q
      with
      | exception Xquery.Instantiate.Too_many _ -> true (* fallback path *)
      | compiled ->
        let naive =
          Xquery.Matcher.run_collect ~mode:Xquery.Matcher.Naive labeled compiled
        in
        let exact =
          Xquery.Matcher.run_collect ~mode:Xquery.Matcher.Constraint labeled
            compiled
        in
        List.for_all (fun d -> List.mem d naive) exact)
    (queries_of ~seed docs)

(* Persistence: a saved-and-reloaded index answers every query as the
   original. *)
let prop_save_load (docs, seed) =
  let docs = Array.of_list docs in
  let index = Xseq.build docs in
  let path = Filename.temp_file "xseq_prop" ".idx" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Xseq.save index path;
      let restored = Xseq.load path in
      List.for_all
        (fun q -> Xseq.query index q = Xseq.query restored q)
        (queries_of ~seed docs))

(* Page accounting: the link regions and the document table are
   page-aligned and disjoint, so their per-query page counts partition the
   total. *)
let prop_pager_partition (docs, seed) =
  let docs = Array.of_list docs in
  let index = Xseq.build docs in
  let labeled = Xseq.labeled index in
  let doc_base = Xindex.Labeled.doc_table_base labeled in
  let doc_end = max (doc_base + 1) (Xindex.Labeled.layout_bytes labeled) in
  let pager = Xstorage.Pager.create ~page_size:256 () in
  List.for_all
    (fun q ->
      Xstorage.Pager.begin_query pager;
      ignore (Xseq.query ~pager index q);
      let total = Xstorage.Pager.pages_touched pager in
      let links = Xstorage.Pager.pages_touched_between pager ~lo:0 ~hi:doc_base in
      let docs_io =
        Xstorage.Pager.pages_touched_between pager ~lo:doc_base ~hi:doc_end
      in
      total = links + docs_io)
    (queries_of ~seed docs)

let prop_baseline name build query (docs, seed) =
  let docs = Array.of_list docs in
  let b = build docs in
  List.for_all
    (fun q ->
      let got = query b q in
      let want = oracle q docs in
      if got <> want then
        QCheck.Test.fail_reportf "%s: query %s: got [%s] want [%s]" name
          (Pattern.to_string q)
          (String.concat "," (List.map string_of_int got))
          (String.concat "," (List.map string_of_int want))
      else true)
    (queries_of ~seed docs)

(* --- unit tests -------------------------------------------------------- *)

let e = T.elt

let test_xpath_parser () =
  let check s expected =
    Alcotest.(check string) s expected (Pattern.to_string (Xquery.Xpath_parser.parse s))
  in
  check "/a/b/c" "/a/b/c";
  check "//a" "//a";
  check "/a//b" "/a//b";
  check "/a/*/c" "/a/*/c";
  check "/site//item[location='United States']/mail/date[text='07/05/2000']"
    "/site//item[/location/text()=\"United States\"][/mail/date/text()=\"07/05/2000\"]";
  check "//closed_auction[seller/person='person11304']/date[text='12/15/1999']"
    "//closed_auction[/seller/person/text()=\"person11304\"][/date/text()=\"12/15/1999\"]"

let test_xpath_parser_errors () =
  let fails s =
    match Xquery.Xpath_parser.parse s with
    | exception Xquery.Xpath_parser.Syntax_error _ -> ()
    | _ -> Alcotest.failf "expected syntax error for %s" s
  in
  fails "";
  fails "a/b";
  fails "/a[";
  fails "/a]";
  fails "/a/b extra"

let test_pattern_size () =
  let p = Xquery.Xpath_parser.parse "/a[b='x']/c" in
  Alcotest.(check int) "size" 4 (Pattern.size p)

let test_embedding_injective () =
  (* One document node cannot serve two identical query siblings. *)
  let doc = e "P" [ e "D" [ e "M" []; e "L" [] ] ] in
  let q_two_d =
    Pattern.(elt "P" [ elt "D" [ elt "M" [] ]; elt "D" [ elt "L" [] ] ])
  in
  Alcotest.(check bool) "injective" false (Xquery.Embedding.matches q_two_d doc);
  let doc2 = e "P" [ e "D" [ e "M" [] ]; e "D" [ e "L" [] ] ] in
  Alcotest.(check bool) "two Ds" true (Xquery.Embedding.matches q_two_d doc2);
  (* Unordered: sibling order is irrelevant. *)
  let doc3 = e "P" [ e "D" [ e "L" [] ]; e "D" [ e "M" [] ] ] in
  Alcotest.(check bool) "unordered" true (Xquery.Embedding.matches q_two_d doc3)

let test_naive_false_alarm () =
  (* Figure 4 at matcher level: naive mode reports the false alarm that
     constraint mode rejects. *)
  let d = e "P" [ e "L" [ e "S" [] ]; e "L" [ e "B" [] ] ] in
  let index = Xseq.build (Array.of_list [ d ]) in
  let labeled = Xseq.labeled index in
  let strategy = Xseq.strategy index in
  let pattern = Pattern.(elt "P" [ elt "L" [ elt "S" []; elt "B" [] ] ]) in
  let compiled =
    Xquery.Engine.compile ~strategy ~value_mode:(Xseq.value_mode index) labeled pattern
  in
  let naive = Xquery.Matcher.run_collect ~mode:Xquery.Matcher.Naive labeled compiled in
  let exact = Xquery.Matcher.run_collect ~mode:Xquery.Matcher.Constraint labeled compiled in
  Alcotest.(check (list int)) "naive false alarm" [ 0 ] naive;
  Alcotest.(check (list int)) "constraint rejects" [] exact

let test_matcher_stats () =
  let d = e "P" [ e "L" [ e "S" [] ]; e "L" [ e "B" [] ] ] in
  let index = Xseq.build (Array.of_list [ d; d ]) in
  let stats = Xquery.Matcher.create_stats () in
  let _ = Xseq.query_xpath ~stats index "/P/L/S" in
  Alcotest.(check bool) "probes counted" true (stats.probes > 0);
  Alcotest.(check bool) "candidates counted" true (stats.candidates > 0);
  Alcotest.(check bool) "matches counted" true (stats.matches > 0)

let test_instantiate_star () =
  let d = e "P" [ e "R" [ e "M" [] ]; e "D" [ e "M" [] ] ] in
  let index = Xseq.build (Array.of_list [ d ]) in
  let mem p = Option.is_some (Xindex.Labeled.link (Xseq.labeled index) p) in
  let pattern = Pattern.(elt "P" [ star [ elt "M" [] ] ]) in
  let cnodes =
    Xquery.Instantiate.run ~mem ~value_mode:Sequencing.Encoder.Hashed pattern
  in
  Alcotest.(check int) "star instantiates to R and D" 2 (List.length cnodes)

let test_instantiate_descendant () =
  let d = e "a" [ e "b" [ e "c" [ e "d" [] ] ] ] in
  let index = Xseq.build (Array.of_list [ d ]) in
  let mem p = Option.is_some (Xindex.Labeled.link (Xseq.labeled index) p) in
  let pattern = Pattern.(elt "a" [ elt ~axis:Descendant "d" [] ]) in
  let cnodes =
    Xquery.Instantiate.run ~mem ~value_mode:Sequencing.Encoder.Hashed pattern
  in
  Alcotest.(check int) "one concrete d" 1 (List.length cnodes);
  (* no zero-depth // self match: the only 'a' path is the root itself *)
  let p2 = Pattern.(elt "a" [ elt ~axis:Descendant "a" [] ]) in
  let c2 = Xquery.Instantiate.run ~mem ~value_mode:Sequencing.Encoder.Hashed p2 in
  Alcotest.(check int) "no self match" 0 (List.length c2)

let test_query_seq_permutations () =
  let d = e "P" [ e "L" [ e "S" [] ]; e "L" [ e "B" [] ] ] in
  let index = Xseq.build (Array.of_list [ d ]) in
  let mem p = Option.is_some (Xindex.Labeled.link (Xseq.labeled index) p) in
  let pattern =
    Pattern.(elt "P" [ elt "L" [ elt "S" [] ]; elt "L" [ elt "B" [] ] ])
  in
  let cnodes =
    Xquery.Instantiate.run ~mem ~value_mode:Sequencing.Encoder.Hashed pattern
  in
  let compiled =
    List.concat_map (Xquery.Query_seq.compile ~strategy:(Xseq.strategy index)) cnodes
  in
  (* Two identical L siblings: both subtree orders must be generated. *)
  Alcotest.(check int) "two permutations" 2 (List.length compiled)

(* Regression: a query branch reaching *through* a duplicated path (here
   d.c) must be tried both inside the same d.c block as its sibling branch
   and in a different one (junction normalisation + set partitions).
   Found by the oracle-equivalence property. *)
let test_regression_junction_blocks () =
  let doc =
    e "d"
      [
        e "c" [ e "c" [ e "c" [ e "d" [] ] ]; e "d" [ e "a" [ e "d" [] ]; e "c" [] ] ];
        e "c" [ e "a" [ e "c" [] ] ];
      ]
  in
  let index = Xseq.build [| doc |] in
  (* //d needs the d under the FIRST c, while c/a needs the SECOND c. *)
  Alcotest.(check (list int)) "cross-block match" [ 0 ]
    (Xseq.query_xpath index "/d[//d][/c/a]")

(* Regression: identical-sibling permutations must survive sequencing —
   equal paths need equal scheduler priority so the rank tie-break can
   realise both orders (dense lexicographic ranks).  Found by the
   oracle-equivalence property on the depth-first configuration. *)
let test_regression_permutation_ranks () =
  let doc =
    e "b"
      [
        e "b" [];
        e "d" [];
        e "d" [ T.text "v0"; e "a" [ e "d" [ e "c" [] ]; T.text "v1" ]; e "c" [ e "a" [] ] ];
      ]
  in
  let config =
    { Xseq.default_config with sequencing = Xseq.Depth_first { canonical = true } }
  in
  let index = Xseq.build ~config [| doc |] in
  let q = Pattern.(star [ elt "b" []; elt "d" []; elt "d" [ text "v0" ] ]) in
  Alcotest.(check (list int)) "bare d + d(v0)" [ 0 ] (Xseq.query index q)

let test_explain () =
  let d = e "P" [ e "R" [ e "M" [] ]; e "D" [ e "M" [] ] ] in
  let index = Xseq.build (Array.of_list [ d; d ]) in
  let ex = Xseq.explain index Pattern.(elt "P" [ star [ elt "M" [] ] ]) in
  Alcotest.(check int) "instantiations" 2 ex.Xquery.Engine.instantiations;
  Alcotest.(check int) "sequences" 2 ex.sequences;
  Alcotest.(check int) "results" 2 ex.results;
  Alcotest.(check bool) "probes" true (ex.stats.Xquery.Matcher.probes > 0);
  Alcotest.(check int) "texts" 2 (List.length ex.sequence_texts)

let test_parents_across_descendant () =
  let d = e "a" [ e "b" [ e "c" [ e "d" [] ] ] ] in
  let index = Xseq.build (Array.of_list [ d ]) in
  Alcotest.(check (list int)) "a//d" [ 0 ] (Xseq.query_xpath index "/a//d");
  Alcotest.(check (list int)) "a//c/d" [ 0 ] (Xseq.query_xpath index "/a//c/d");
  Alcotest.(check (list int)) "a//b//d" [ 0 ] (Xseq.query_xpath index "/a//b//d")

(* --- assembling -------------------------------------------------------- *)

let () =
  let cfg sequencing = { Xseq.default_config with sequencing } in
  Alcotest.run "query"
    [
      ( "unit",
        [
          Alcotest.test_case "xpath parser" `Quick test_xpath_parser;
          Alcotest.test_case "xpath errors" `Quick test_xpath_parser_errors;
          Alcotest.test_case "pattern size" `Quick test_pattern_size;
          Alcotest.test_case "embedding injective" `Quick test_embedding_injective;
          Alcotest.test_case "naive false alarm" `Quick test_naive_false_alarm;
          Alcotest.test_case "matcher stats" `Quick test_matcher_stats;
          Alcotest.test_case "instantiate star" `Quick test_instantiate_star;
          Alcotest.test_case "instantiate descendant" `Quick test_instantiate_descendant;
          Alcotest.test_case "query permutations" `Quick test_query_seq_permutations;
          Alcotest.test_case "// parent pointers" `Quick test_parents_across_descendant;
          Alcotest.test_case "regression: junction blocks" `Quick
            test_regression_junction_blocks;
          Alcotest.test_case "regression: permutation ranks" `Quick
            test_regression_permutation_ranks;
          Alcotest.test_case "explain" `Quick test_explain;
        ] );
      ( "oracle-equivalence",
        [
          engine_prop "probability" Xseq.default_config;
          engine_prop "depth-first" (cfg (Xseq.Depth_first { canonical = true }));
          engine_prop "breadth-first" (cfg (Xseq.Breadth_first { canonical = true }));
          engine_prop "text-mode"
            { Xseq.default_config with value_mode = Sequencing.Encoder.Text };
          engine_prop "incremental insert" { Xseq.default_config with bulk = false };
          mk_prop "dataguide = oracle" ~count:80
            (prop_baseline "dataguide" Xbaseline.Dataguide.build (fun b q ->
                 Xbaseline.Dataguide.query b q));
          mk_prop "xiss = oracle" ~count:80
            (prop_baseline "xiss" Xbaseline.Xiss.build (fun b q ->
                 Xbaseline.Xiss.query b q));
          mk_prop "vist = oracle" ~count:80
            (prop_baseline "vist" Xbaseline.Vist.build (fun b q ->
                 Xbaseline.Vist.query b q));
          mk_prop "naive superset of constraint" ~count:80 prop_naive_superset;
          mk_prop "save/load preserves answers" ~count:50 prop_save_load;
          mk_prop "pager accounting partitions" ~count:50 prop_pager_partition;
        ] );
    ]
