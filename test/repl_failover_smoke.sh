#!/bin/sh
# Kill -9 failover smoke, driven through the installed CLI as separate
# OS processes (the in-process suite in test_repl.ml cannot model a
# SIGKILL'd primary — the whole point here is that the primary gets no
# chance to clean up).
#
# Topology: primary + follower over Unix sockets, semi-sync
# (--sync-replicas 1), one record per ingest invocation so the shell
# can count *acknowledged* writes from exit codes.  Then:
#
#   1. kill -9 the primary;
#   2. reads via the multi-endpoint client must keep answering during
#      the dead-primary window (never stall on the corpse);
#   3. a mutation against the dead group must fail, not hang;
#   4. promote the follower, ingest more records there;
#   5. every acknowledged record must be present on the survivor —
#      semi-sync means an acked write was durable on the follower
#      before the client saw the ack, so kill -9 loses nothing acked.
#
# Exit 0 on success, 1 with a message on any violation.
set -u

XSEQ=${XSEQ:-_build/default/bin/xseq_cli.exe}
N_BEFORE=${N_BEFORE:-12}
N_AFTER=${N_AFTER:-6}

work=$(mktemp -d /tmp/xseq_failover.XXXXXX)
p_pid=""
f_pid=""

cleanup() {
  [ -n "$p_pid" ] && kill -9 "$p_pid" 2>/dev/null
  [ -n "$f_pid" ] && kill -9 "$f_pid" 2>/dev/null
  wait 2>/dev/null
  rm -rf "$work"
}
trap cleanup EXIT INT TERM

fail() {
  echo "FAIL: $*" >&2
  echo "--- primary log ---" >&2
  cat "$work/primary.log" >&2 2>/dev/null
  echo "--- follower log ---" >&2
  cat "$work/follower.log" >&2 2>/dev/null
  exit 1
}

wait_sock() {
  for _ in $(seq 1 100); do
    [ -S "$1" ] && return 0
    sleep 0.1
  done
  fail "socket $1 never appeared"
}

# Follower's applied-id watermark, scraped from repl-status.
next_id() {
  "$XSEQ" repl-status "$1" 2>/dev/null | grep -o 'next id [0-9]*' \
    | awk '{print $3}'
}

P="unix:$work/p.sock"
F="unix:$work/f.sock"

for i in $(seq 1 $((N_BEFORE + N_AFTER))); do
  "$XSEQ" gen --kind dblp -n 1 --seed "$i" -o "$work/rec$i.xml" 2>/dev/null \
    || fail "gen rec$i"
done

"$XSEQ" serve --live "$work/primary" --socket "$work/p.sock" \
  --advertise "$P" --sync-replicas 1 --ack-timeout-ms 4000 \
  >"$work/primary.log" 2>&1 &
p_pid=$!
wait_sock "$work/p.sock"

"$XSEQ" serve --live "$work/follower" --socket "$work/f.sock" \
  --advertise "$F" --follow "$P" \
  >"$work/follower.log" 2>&1 &
f_pid=$!
wait_sock "$work/f.sock"

# --- acked writes under semi-sync ------------------------------------------
acked=0
i=1
while [ "$i" -le "$N_BEFORE" ]; do
  if "$XSEQ" ingest --connect "$P" "$work/rec$i.xml" >/dev/null 2>&1; then
    acked=$((acked + 1))
  fi
  i=$((i + 1))
done
[ "$acked" -ge 1 ] || fail "no write was ever acknowledged"

# --- kill -9 the primary ----------------------------------------------------
kill -9 "$p_pid" || fail "could not kill the primary"
p_pid=""

# Reads must keep answering off the follower while the primary is a corpse.
"$XSEQ" query --endpoints "$P,$F" --timeout-ms 5000 '//author' >/dev/null 2>&1 \
  || fail "reads stalled during the dead-primary window"

# A mutation against the headless group must fail promptly, not hang.
if "$XSEQ" ingest --connect "$P" "$work/rec1.xml" >/dev/null 2>&1; then
  fail "ingest against the killed primary succeeded"
fi

# --- promote the survivor ---------------------------------------------------
"$XSEQ" promote "$F" >/dev/null 2>&1 || fail "promote failed"

got=$(next_id "$F")
[ -n "$got" ] || fail "repl-status unreadable after promotion"
[ "$got" -ge "$acked" ] \
  || fail "acked write lost: follower has $got records, $acked were acked"

# The new primary takes writes again.
i=$((N_BEFORE + 1))
while [ "$i" -le $((N_BEFORE + N_AFTER)) ]; do
  "$XSEQ" ingest --connect "$F" "$work/rec$i.xml" >/dev/null 2>&1 \
    || fail "new primary rejected rec$i after promotion"
  i=$((i + 1))
done

# Bounded reads work against the single-member group.
"$XSEQ" query --endpoints "$F" --max-staleness 0 --timeout-ms 5000 \
  '//author' >/dev/null 2>&1 \
  || fail "bounded read against the new primary failed"

final=$(next_id "$F")
want=$((acked + N_AFTER))
[ "$final" -ge "$want" ] \
  || fail "post-promotion count short: have $final, want >= $want"

echo "failover smoke OK: $acked acked before kill -9, none lost," \
  "$N_AFTER ingested after promotion (survivor at $final records)"
