(* XML data model and parser/printer tests. *)

module T = Xmlcore.Xml_tree
module D = Xmlcore.Designator
module P = Xmlcore.Xml_parser
module Pr = Xmlcore.Xml_printer
module Gen = QCheck.Gen

let e = T.elt
let v = T.text

(* --- designators -------------------------------------------------------- *)

let test_designator_identity () =
  Alcotest.(check bool) "same tag same id" true
    (D.equal (D.tag "project") (D.tag "project"));
  Alcotest.(check bool) "tag <> value" false
    (D.equal (D.tag "boston") (D.value "boston"));
  Alcotest.(check bool) "value is value" true (D.is_value (D.value "x"));
  Alcotest.(check bool) "tag is not value" false (D.is_value (D.tag "x"));
  Alcotest.(check string) "name round trip" "boston" (D.name (D.value "boston"));
  Alcotest.(check bool) "char value" true (D.is_value (D.char_value 'q'));
  Alcotest.(check string) "char name" "q" (D.name (D.char_value 'q'))

(* --- tree operations ----------------------------------------------------- *)

let sample = e "P" [ v "xml"; e "R" [ e "L" [ v "boston" ] ]; e "D" [] ]

let test_tree_measures () =
  Alcotest.(check int) "node count" 6 (T.node_count sample);
  Alcotest.(check int) "depth" 4 (T.depth sample);
  Alcotest.(check int) "fanout" 3 (T.max_fanout sample);
  Alcotest.(check bool) "no identical sibs" false (T.has_identical_siblings sample);
  let dup = e "P" [ e "D" []; e "D" [] ] in
  Alcotest.(check bool) "identical sibs" true (T.has_identical_siblings dup)

let test_isomorphism () =
  let a = e "P" [ e "L" [ e "S" [] ]; e "L" [ e "B" [] ] ] in
  let b = e "P" [ e "L" [ e "B" [] ]; e "L" [ e "S" [] ] ] in
  Alcotest.(check bool) "isomorphic" true (T.isomorphic a b);
  Alcotest.(check bool) "not equal" false (T.equal a b);
  let c = e "P" [ e "L" [ e "S" []; e "B" [] ] ] in
  Alcotest.(check bool) "different shape" false (T.isomorphic a c)

let test_sort_by_tag_stable () =
  (* Equal tags keep document order; subtree contents must not matter. *)
  let t = e "P" [ e "L" [ e "Z" [] ]; e "L" [ e "A" [] ] ] in
  match T.sort_by_tag t with
  | T.Element
      (_, [ T.Element (_, [ T.Element (z, _) ]); T.Element (_, [ T.Element (a, _) ]) ])
    ->
    Alcotest.(check string) "first kept" "Z" (D.name z);
    Alcotest.(check string) "second kept" "A" (D.name a)
  | _ -> Alcotest.fail "unexpected shape"

(* --- parser -------------------------------------------------------------- *)

let test_parse_basic () =
  let t = P.parse_string "<P><R><L>boston</L></R><D/></P>" in
  Alcotest.(check bool) "structure" true
    (T.equal t (e "P" [ e "R" [ e "L" [ v "boston" ] ]; e "D" [] ]))

let test_parse_attributes () =
  let t = P.parse_string {|<item id="42" loc="US"><name>lamp</name></item>|} in
  Alcotest.(check bool) "attrs become @-children" true
    (T.equal t
       (e "item" [ T.attr "id" "42"; T.attr "loc" "US"; e "name" [ v "lamp" ] ]))

let test_parse_entities () =
  let t = P.parse_string "<a>x &lt;&amp;&gt; &quot;y&quot; &#65;&#x42;</a>" in
  match t with
  | T.Element (_, [ T.Value s ]) ->
    Alcotest.(check string) "decoded" "x <&> \"y\" AB" s
  | _ -> Alcotest.fail "unexpected shape"

let test_parse_cdata_comment_pi () =
  let t =
    P.parse_string
      "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a ANY>]><a><!-- hi \
       --><![CDATA[1 < 2 & 3]]><?target data?></a>"
  in
  match t with
  | T.Element (_, [ T.Value s ]) -> Alcotest.(check string) "cdata" "1 < 2 & 3" s
  | _ -> Alcotest.fail "unexpected shape"

let test_parse_whitespace () =
  let t = P.parse_string "<a>\n  <b/>\n  <c/>\n</a>" in
  Alcotest.(check int) "whitespace dropped" 3 (T.node_count t);
  let t2 = P.parse_string ~keep_whitespace:true "<a>\n  <b/>\n</a>" in
  Alcotest.(check bool) "whitespace kept" true (T.node_count t2 > 2)

let test_parse_errors () =
  let fails s =
    match P.parse_string s with
    | exception P.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %s" s
  in
  fails "";
  fails "<a>";
  fails "<a></b>";
  fails "<a><b></a></b>";
  fails "<a>&unknown;</a>";
  fails "<a attr=unquoted></a>";
  fails "<a/><b/>";
  fails "text only"

let test_parse_error_position () =
  match P.parse_string "<a>\n<b>\n</c>\n</a>" with
  | exception P.Parse_error { line; _ } -> Alcotest.(check int) "line" 3 line
  | _ -> Alcotest.fail "expected parse error"

let test_fragments () =
  let ts = P.parse_fragments "<a/><b>x</b> <c/>" in
  Alcotest.(check int) "three roots" 3 (List.length ts)

(* --- printer ------------------------------------------------------------- *)

let test_print_roundtrip () =
  let t =
    e "item"
      [ T.attr "id" "1&2"; e "name" [ v "a <lamp>" ]; e "empty" []; v "tail" ]
  in
  let s = Pr.to_string t in
  Alcotest.(check bool) "roundtrip" true (T.equal (P.parse_string s) t)

let test_escapes () =
  Alcotest.(check string) "text" "a&amp;b&lt;c&gt;d" (Pr.escape_text "a&b<c>d");
  Alcotest.(check string) "attr" "&quot;x&quot;" (Pr.escape_attr "\"x\"")

(* --- properties ---------------------------------------------------------- *)

let tag_gen = Gen.oneofa [| "a"; "b"; "cc"; "dd-e"; "f_g" |]
let text_gen = Gen.oneofa [| "x"; "a&b"; "1 < 2"; "\"quoted\""; "plain text" |]

let tree_gen : T.t Gen.t =
  let open Gen in
  let rec node depth st =
    let fanout = if depth >= 3 then 0 else int_bound (3 - depth) st in
    let kids =
      List.init fanout (fun _ ->
          if int_bound 3 st = 0 then T.Value (text_gen st) else node (depth + 1) st)
    in
    T.elt (tag_gen st) kids
  in
  node 0

let arb_tree = QCheck.make ~print:(Format.asprintf "%a" T.pp) tree_gen

(* Adjacent text nodes are indistinguishable after serialisation, so the
   round-trip is up to merging them. *)
let rec merge_adjacent_text t =
  match t with
  | T.Value _ -> t
  | T.Element (d, cs) ->
    let rec merge = function
      | T.Value a :: T.Value b :: rest -> merge (T.Value (a ^ b) :: rest)
      | c :: rest -> merge_adjacent_text c :: merge rest
      | [] -> []
    in
    T.Element (d, merge cs)

let prop_print_parse =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:300 arb_tree (fun t ->
      let t = merge_adjacent_text t in
      T.equal (P.parse_string (Pr.to_string t)) t)

let prop_print_parse_indent =
  (* Indented output adds whitespace; with values stripped the structure
     must survive exactly. *)
  QCheck.Test.make ~name:"indented roundtrip (no values)" ~count:200 arb_tree
    (fun t ->
      let rec strip = function
        | T.Element (d, cs) ->
          T.Element
            ( d,
              List.filter_map
                (fun c -> match c with T.Value _ -> None | e -> Some (strip e))
                cs )
        | leaf -> leaf
      in
      let t = strip t in
      T.equal (P.parse_string ~keep_whitespace:false (Pr.to_string ~indent:true t)) t)

let prop_canonical_sort_isomorphic =
  QCheck.Test.make ~name:"canonical_sort is isomorphic" ~count:300 arb_tree
    (fun t -> T.isomorphic t (T.canonical_sort t))

let prop_sort_by_tag_isomorphic =
  QCheck.Test.make ~name:"sort_by_tag is isomorphic" ~count:300 arb_tree (fun t ->
      T.isomorphic t (T.sort_by_tag t))

let prop_fold_counts =
  QCheck.Test.make ~name:"fold visits every node" ~count:300 arb_tree (fun t ->
      T.fold (fun n _ -> n + 1) 0 t = T.node_count t)

let () =
  Alcotest.run "xmlcore"
    [
      ("designator", [ Alcotest.test_case "identity" `Quick test_designator_identity ]);
      ( "tree",
        [
          Alcotest.test_case "measures" `Quick test_tree_measures;
          Alcotest.test_case "isomorphism" `Quick test_isomorphism;
          Alcotest.test_case "sort_by_tag stable" `Quick test_sort_by_tag_stable;
        ] );
      ( "parser",
        [
          Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "attributes" `Quick test_parse_attributes;
          Alcotest.test_case "entities" `Quick test_parse_entities;
          Alcotest.test_case "cdata/comment/pi" `Quick test_parse_cdata_comment_pi;
          Alcotest.test_case "whitespace" `Quick test_parse_whitespace;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error position" `Quick test_parse_error_position;
          Alcotest.test_case "fragments" `Quick test_fragments;
        ] );
      ( "printer",
        [
          Alcotest.test_case "roundtrip" `Quick test_print_roundtrip;
          Alcotest.test_case "escapes" `Quick test_escapes;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_print_parse;
            prop_print_parse_indent;
            prop_canonical_sort_isomorphic;
            prop_sort_by_tag_isomorphic;
            prop_fold_counts;
          ] );
    ]
