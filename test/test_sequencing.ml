(* Paths, constraints, strategies, encoder/decoder, Prüfer codes. *)

module T = Xmlcore.Xml_tree
module D = Xmlcore.Designator
module Path = Sequencing.Path
module C = Sequencing.Seq_constraint
module Enc = Sequencing.Encoder
module Dec = Sequencing.Decoder
module S = Sequencing.Strategy
module Gen = QCheck.Gen

let e = T.elt
let v = T.text

let p_of names = Path.of_list (List.map D.tag names)

(* --- paths --------------------------------------------------------------- *)

let test_path_intern () =
  let a = p_of [ "P"; "D"; "L" ] in
  let b = p_of [ "P"; "D"; "L" ] in
  Alcotest.(check bool) "hash-consed" true (Path.equal a b);
  Alcotest.(check int) "depth" 3 (Path.depth a);
  Alcotest.(check string) "tag" "L" (D.name (Path.tag a));
  Alcotest.(check bool) "parent" true (Path.equal (Path.parent a) (p_of [ "P"; "D" ]));
  Alcotest.(check int) "epsilon depth" 0 (Path.depth Path.epsilon)

let test_path_prefix () =
  let pd = p_of [ "P"; "D" ] and pdl = p_of [ "P"; "D"; "L" ] in
  let pr = p_of [ "P"; "R" ] in
  Alcotest.(check bool) "prefix" true (Path.is_prefix pd pdl);
  Alcotest.(check bool) "strict" true (Path.is_strict_prefix pd pdl);
  Alcotest.(check bool) "not self-strict" false (Path.is_strict_prefix pd pd);
  Alcotest.(check bool) "self prefix" true (Path.is_prefix pd pd);
  Alcotest.(check bool) "not prefix" false (Path.is_prefix pr pdl);
  Alcotest.(check bool) "ancestor at depth" true
    (Path.equal (Path.ancestor_at_depth pdl 1) (p_of [ "P" ]));
  Alcotest.(check bool) "epsilon prefix of all" true (Path.is_prefix Path.epsilon pdl)

let test_path_roundtrip () =
  let ds = [ D.tag "P"; D.tag "D"; D.value "boston" ] in
  Alcotest.(check bool) "of_list/to_list" true
    (List.equal D.equal ds (Path.to_list (Path.of_list ds)))

let test_lex_compare () =
  let cmp a b = Path.lex_compare (p_of a) (p_of b) in
  Alcotest.(check bool) "prefix first" true (cmp [ "P" ] [ "P"; "D" ] < 0);
  Alcotest.(check bool) "equal" true (cmp [ "P"; "D" ] [ "P"; "D" ] = 0);
  (* first differing designator decides; intern zz and aa fresh in order *)
  let t1 = D.tag "lex_first" and t2 = D.tag "lex_second" in
  let a = Path.child (p_of [ "P" ]) t1 and b = Path.child (p_of [ "P" ]) t2 in
  Alcotest.(check bool) "by designator id" true (Path.lex_compare a b < 0);
  Alcotest.(check bool) "deep vs shallow divergence" true
    (Path.lex_compare (Path.child a (D.tag "x")) b < 0)

let test_element_children () =
  let parent = p_of [ "EC" ] in
  let c1 = Path.child parent (D.tag "ec_a") in
  let _v = Path.child parent (D.value "ec_val") in
  let kids = Path.element_children parent in
  Alcotest.(check bool) "element child listed" true
    (List.exists (Path.equal c1) kids);
  Alcotest.(check bool) "value child excluded" true
    (List.for_all (fun k -> not (D.is_value (Path.tag k))) kids);
  Alcotest.(check bool) "find_child" true
    (match Path.find_child parent (D.tag "ec_a") with
     | Some p -> Path.equal p c1
     | None -> false);
  Alcotest.(check bool) "find_child misses" true
    (Path.find_child parent (D.tag "ec_nonexistent") = None)

(* --- constraints --------------------------------------------------------- *)

(* The paper's forward-prefix example (Section 2.3): in
   <P, PD, PDL, PDLv1, PD, PDM, PDMv3>, the second PD (index 4) is the
   forward prefix of PDM (index 5), not the first PD (index 1). *)
let fp_example =
  [|
    p_of [ "P" ];
    p_of [ "P"; "D" ];
    p_of [ "P"; "D"; "L" ];
    Path.child (p_of [ "P"; "D"; "L" ]) (D.value "v1");
    p_of [ "P"; "D" ];
    p_of [ "P"; "D"; "M" ];
    Path.child (p_of [ "P"; "D"; "M" ]) (D.value "v3");
  |]

let test_forward_prefix () =
  Alcotest.(check (option int)) "PDM's fp is 2nd PD" (Some 4)
    (C.forward_prefix fp_example 5);
  Alcotest.(check (option int)) "PDL's fp is 1st PD" (Some 1)
    (C.forward_prefix fp_example 2);
  Alcotest.(check (option int)) "root has none" None (C.forward_prefix fp_example 0)

let test_constraint_holds () =
  Alcotest.(check bool) "f2: 2nd PD ancestor of PDM" true (C.holds C.F2 fp_example 4 5);
  Alcotest.(check bool) "f2: 1st PD not ancestor of PDM" false
    (C.holds C.F2 fp_example 1 5);
  Alcotest.(check bool) "f1 can't tell them apart" true (C.holds C.F1 fp_example 1 5)

let test_is_valid () =
  Alcotest.(check bool) "example valid" true (C.is_valid fp_example);
  Alcotest.(check bool) "empty invalid" false (C.is_valid [||]);
  Alcotest.(check bool) "orphan invalid" false
    (C.is_valid [| p_of [ "P" ]; p_of [ "P"; "D"; "L" ] |]);
  Alcotest.(check bool) "deep first invalid" false
    (C.is_valid [| p_of [ "P"; "D" ] |])

(* --- encoder: paper's Table 1 -------------------------------------------- *)

(* Figure 3(b): P(xml, D(L(boston)), D(M(johnson))) depth-first. *)
let fig3b =
  e "P" [ v "xml"; e "D" [ e "L" [ v "boston" ] ]; e "D" [ e "M" [ v "johnson" ] ] ]

let fig3c =
  e "P" [ v "xml"; e "D" []; e "D" [ e "L" [ v "boston" ]; e "M" [ v "johnson" ] ] ]

let path_strings seq = List.map Path.to_string (Array.to_list seq)

let test_table1_depth_first () =
  Alcotest.(check (list string)) "fig 3(b)"
    [
      "P"; "P.v(xml)"; "P.D"; "P.D.L"; "P.D.L.v(boston)"; "P.D"; "P.D.M";
      "P.D.M.v(johnson)";
    ]
    (path_strings (Enc.encode ~strategy:S.Depth_first fig3b));
  Alcotest.(check (list string)) "fig 3(c)"
    [
      "P"; "P.v(xml)"; "P.D"; "P.D"; "P.D.L"; "P.D.L.v(boston)"; "P.D.M";
      "P.D.M.v(johnson)";
    ]
    (path_strings (Enc.encode ~strategy:S.Depth_first fig3c))

let test_breadth_first () =
  let t = e "P" [ e "R" [ e "M" [] ]; e "D" [ e "U" [] ] ] in
  Alcotest.(check (list string)) "level order"
    [ "P"; "P.R"; "P.D"; "P.R.M"; "P.D.U" ]
    (path_strings (Enc.encode ~strategy:S.Breadth_first t))

let test_probability_order () =
  (* Higher p' comes out earlier regardless of document order. *)
  let t = e "P" [ e "Rare" [] ; e "Common" [] ] in
  let prio p = if D.name (Path.tag p) = "Common" then 0.9 else 0.1 in
  Alcotest.(check (list string)) "by probability"
    [ "P"; "P.Common"; "P.Rare" ]
    (path_strings (Enc.encode ~strategy:(S.Probability prio) t))

let test_identical_sibling_recursion () =
  (* With identical siblings, the first selected sibling's whole subtree is
     emitted before the second sibling, even when a deep child has a low
     priority (Algorithm 2). *)
  let t =
    e "P" [ e "D" [ e "Low" [] ]; e "D" [ e "High" [] ]; e "Mid" [] ]
  in
  let prio p =
    match D.name (Path.tag p) with
    | "D" -> 0.8
    | "Mid" -> 0.5
    | "High" -> 0.4
    | "Low" -> 0.1
    | _ -> 1.0
  in
  Alcotest.(check (list string)) "subtree contiguity"
    [ "P"; "P.D"; "P.D.Low"; "P.D"; "P.D.High"; "P.Mid" ]
    (path_strings (Enc.encode ~strategy:(S.Probability prio) t))

let test_ident_flag_extends () =
  (* The global flag forces contiguity even without local duplicates. *)
  let t = e "P" [ e "D" [ e "Low" [] ]; e "Mid" [] ] in
  let prio p =
    match D.name (Path.tag p) with
    | "D" -> 0.8
    | "Mid" -> 0.5
    | "Low" -> 0.1
    | _ -> 1.0
  in
  let flagged = p_of [ "P"; "D" ] in
  Alcotest.(check (list string)) "flag-triggered contiguity"
    [ "P"; "P.D"; "P.D.Low"; "P.Mid" ]
    (path_strings
       (Enc.encode ~ident:(Path.equal flagged) ~strategy:(S.Probability prio) t));
  Alcotest.(check (list string)) "without flag, priority order"
    [ "P"; "P.D"; "P.Mid"; "P.D.Low" ]
    (path_strings (Enc.encode ~strategy:(S.Probability prio) t))

let test_multiple_paths () =
  let ps = Enc.multiple_paths fig3c in
  Alcotest.(check (list string)) "duplicated paths" [ "P.D" ]
    (List.map Path.to_string ps)

let test_text_mode () =
  let t = e "L" [ v "ab" ] in
  Alcotest.(check (list string)) "char chain"
    [ "L"; "L.v(a)"; "L.v(a).v(b)"; "L.v(a).v(b).v(\x00end)" ]
    (path_strings (Enc.encode ~value_mode:Enc.Text ~strategy:S.Depth_first t))

(* --- decoder ------------------------------------------------------------- *)

let test_decode_exact_df () =
  let seq = Enc.encode ~strategy:S.Depth_first fig3b in
  Alcotest.(check bool) "df round trip is exact" true (T.equal (Dec.decode seq) fig3b)

let test_decode_invalid () =
  (match Dec.decode [||] with
   | exception Dec.Invalid_sequence _ -> ()
   | _ -> Alcotest.fail "empty must fail");
  match Dec.decode [| p_of [ "P" ]; p_of [ "Q" ] |] with
  | exception Dec.Invalid_sequence _ -> ()
  | _ -> Alcotest.fail "two roots must fail"

(* --- properties ---------------------------------------------------------- *)

let tags = [| "a"; "b"; "c" |]
let vals = [| "v0"; "v1" |]

let tree_gen : T.t Gen.t =
  let open Gen in
  let rec node depth st =
    let fanout = if depth >= 4 then 0 else int_bound (4 - depth) st in
    let kids =
      List.init fanout (fun _ ->
          if int_bound 3 st = 0 then T.Value (oneofa vals st) else node (depth + 1) st)
    in
    T.elt (oneofa tags st) kids
  in
  node 0

let arb_tree = QCheck.make ~print:(Format.asprintf "%a" T.pp) tree_gen

let strategies =
  [
    ("df", S.Depth_first);
    ("bf", S.Breadth_first);
    ("random", S.Random 1234);
    ( "prob",
      S.Probability (fun p -> 1.0 /. float_of_int (1 + (Path.to_int p mod 17))) );
  ]

let prop_valid name strategy =
  QCheck.Test.make
    ~name:(Printf.sprintf "encode %s yields valid constraint sequence" name)
    ~count:300 arb_tree (fun t ->
      C.is_valid (Enc.encode ~strategy t))

let prop_roundtrip name strategy =
  QCheck.Test.make
    ~name:(Printf.sprintf "decode (encode %s) isomorphic" name)
    ~count:300 arb_tree (fun t ->
      T.isomorphic t (Dec.decode (Enc.encode ~strategy t)))

let prop_multiset name strategy =
  QCheck.Test.make
    ~name:(Printf.sprintf "encode %s preserves path multiset" name)
    ~count:300 arb_tree (fun t ->
      let sorted a =
        let l = Array.to_list a in
        List.sort Path.compare l
      in
      sorted (Enc.encode ~strategy t) = sorted (Enc.paths_of_tree t))

let prop_ident_still_valid =
  QCheck.Test.make ~name:"global ident flag keeps sequences valid" ~count:300
    arb_tree (fun t ->
      let seq =
        Enc.encode ~ident:(fun p -> Path.to_int p mod 2 = 0)
          ~strategy:S.Breadth_first t
      in
      C.is_valid seq && T.isomorphic t (Dec.decode seq))

let prop_text_mode_roundtrip =
  QCheck.Test.make ~name:"text mode sequences valid" ~count:200 arb_tree (fun t ->
      C.is_valid (Enc.encode ~value_mode:Enc.Text ~strategy:S.Depth_first t))

(* --- Prüfer -------------------------------------------------------------- *)

let test_prufer_example () =
  (* A 6-node tree: the code has length 5 and mentions only internal
     nodes. *)
  let t = e "P" [ e "R" []; e "D" [ e "L" [] ]; e "D" [ e "M" [] ] ] in
  let code = Sequencing.Prufer.encode t in
  Alcotest.(check int) "length n-1" 5 (Array.length code.parents);
  Alcotest.(check int) "tags" 6 (Array.length code.tags);
  Alcotest.(check bool) "roundtrip" true
    (T.equal (Sequencing.Prufer.decode code) t);
  Alcotest.(check bool) "to_string shape" true
    (String.length (Sequencing.Prufer.to_string code) > 2)

let test_prufer_single () =
  let t = e "P" [] in
  let code = Sequencing.Prufer.encode t in
  Alcotest.(check int) "empty code" 0 (Array.length code.parents);
  Alcotest.(check bool) "roundtrip" true (T.equal (Sequencing.Prufer.decode code) t)

let prop_prufer_roundtrip =
  QCheck.Test.make ~name:"prüfer roundtrip is exact" ~count:300 arb_tree (fun t ->
      T.equal (Sequencing.Prufer.decode (Sequencing.Prufer.encode t)) t)

let () =
  Alcotest.run "sequencing"
    [
      ( "paths",
        [
          Alcotest.test_case "intern" `Quick test_path_intern;
          Alcotest.test_case "prefix" `Quick test_path_prefix;
          Alcotest.test_case "roundtrip" `Quick test_path_roundtrip;
          Alcotest.test_case "lex compare" `Quick test_lex_compare;
          Alcotest.test_case "element children" `Quick test_element_children;
        ] );
      ( "constraints",
        [
          Alcotest.test_case "forward prefix" `Quick test_forward_prefix;
          Alcotest.test_case "holds" `Quick test_constraint_holds;
          Alcotest.test_case "is_valid" `Quick test_is_valid;
        ] );
      ( "encoder",
        [
          Alcotest.test_case "table 1 depth-first" `Quick test_table1_depth_first;
          Alcotest.test_case "breadth-first" `Quick test_breadth_first;
          Alcotest.test_case "probability order" `Quick test_probability_order;
          Alcotest.test_case "identical sibling recursion" `Quick
            test_identical_sibling_recursion;
          Alcotest.test_case "global ident flag" `Quick test_ident_flag_extends;
          Alcotest.test_case "multiple paths" `Quick test_multiple_paths;
          Alcotest.test_case "text mode" `Quick test_text_mode;
        ] );
      ( "decoder",
        [
          Alcotest.test_case "df exact" `Quick test_decode_exact_df;
          Alcotest.test_case "invalid input" `Quick test_decode_invalid;
        ] );
      ( "prüfer",
        [
          Alcotest.test_case "example" `Quick test_prufer_example;
          Alcotest.test_case "single node" `Quick test_prufer_single;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          (List.concat_map
             (fun (name, s) ->
               [ prop_valid name s; prop_roundtrip name s; prop_multiset name s ])
             strategies
          @ [ prop_ident_still_valid; prop_text_mode_roundtrip; prop_prufer_roundtrip ])
      );
    ]
