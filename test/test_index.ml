(* Trie construction, labelling invariants, path links, document table. *)

module T = Xmlcore.Xml_tree
module D = Xmlcore.Designator
module Path = Sequencing.Path
module Enc = Sequencing.Encoder
module S = Sequencing.Strategy
module Trie = Xindex.Trie
module Labeled = Xindex.Labeled
module Gen = QCheck.Gen

let e = T.elt

let p_of names = Path.of_list (List.map D.tag names)

let seq_of names_list = Array.of_list (List.map p_of names_list)

(* --- trie ---------------------------------------------------------------- *)

let test_trie_sharing () =
  let t = Trie.create () in
  Trie.insert t (seq_of [ [ "a" ]; [ "a"; "b" ]; [ "a"; "b"; "c" ] ]) ~doc:0;
  Trie.insert t (seq_of [ [ "a" ]; [ "a"; "b" ]; [ "a"; "b"; "d" ] ]) ~doc:1;
  (* shared prefix a, a.b; two leaves *)
  Alcotest.(check int) "nodes" 4 (Trie.node_count t);
  Alcotest.(check int) "docs" 2 (Trie.doc_count t);
  Trie.insert t (seq_of [ [ "a" ]; [ "a"; "b" ] ]) ~doc:2;
  Alcotest.(check int) "prefix reuses nodes" 4 (Trie.node_count t)

let test_trie_empty_rejected () =
  let t = Trie.create () in
  Alcotest.check_raises "empty" (Invalid_argument "Trie.insert: empty sequence")
    (fun () -> Trie.insert t [||] ~doc:0)

(* --- labelling ----------------------------------------------------------- *)

let doc_corpus =
  [|
    e "P" [ e "L" [ e "S" [] ]; e "L" [ e "B" [] ] ];
    e "P" [ e "L" [ e "S" []; e "B" [] ] ];
    e "P" [ e "D" [ e "L" [] ] ];
  |]

let labeled_of docs =
  let t = Trie.create () in
  Array.iteri
    (fun i d -> Trie.insert t (Enc.encode ~strategy:S.Depth_first d) ~doc:i)
    docs;
  Labeled.of_trie t

let test_labeled_basic () =
  let l = labeled_of doc_corpus in
  Alcotest.(check int) "doc count" 3 (Labeled.doc_count l);
  Alcotest.(check int) "root pre" 0 (Labeled.root_pre l);
  Alcotest.(check int) "root post covers all" (Labeled.node_count l)
    (Labeled.root_post l);
  Alcotest.(check int) "size formula" ((4 * 3) + (8 * Labeled.node_count l))
    (Labeled.size_bytes l ~record_count:3);
  Alcotest.(check bool) "layout allocated" true (Labeled.layout_bytes l > 0)

let test_link_lookup () =
  let l = labeled_of doc_corpus in
  (match Labeled.link l (p_of [ "P" ]) with
   | Some link ->
     Alcotest.(check int) "one shared root node" 1 (Labeled.link_length link)
   | None -> Alcotest.fail "link P missing");
  (match Labeled.link l (p_of [ "P"; "L"; "S" ]) with
   | Some link -> Alcotest.(check bool) "PLS entries" true (Labeled.link_length link >= 1)
   | None -> Alcotest.fail "link P.L.S missing");
  Alcotest.(check bool) "missing link" true
    (Labeled.link l (p_of [ "Q" ]) = None)

let test_path_multiple () =
  let l = labeled_of doc_corpus in
  Alcotest.(check bool) "P.L duplicated in doc 0" true
    (Labeled.path_multiple l (p_of [ "P"; "L" ]));
  Alcotest.(check bool) "P.D unique" false
    (Labeled.path_multiple l (p_of [ "P"; "D" ]));
  Alcotest.(check bool) "memoised second call" true
    (Labeled.path_multiple l (p_of [ "P"; "L" ]))

(* --- randomised invariants ------------------------------------------------ *)

let tags = [| "a"; "b"; "c" |]

let tree_gen : T.t Gen.t =
  let open Gen in
  let rec node depth st =
    let fanout = if depth >= 4 then 0 else int_bound (4 - depth) st in
    let kids = List.init fanout (fun _ -> node (depth + 1) st) in
    T.elt (oneofa tags st) kids
  in
  node 0

let corpus_gen = Gen.(list_size (int_range 1 12) tree_gen)

let corpus_print docs =
  String.concat ";" (List.map (Format.asprintf "%a" T.pp) docs)

let arb_corpus = QCheck.make ~print:corpus_print corpus_gen

let with_labeled docs f =
  let docs = Array.of_list docs in
  f docs (labeled_of docs)

(* every link: ascending pres, post >= pre, up pointers point at the
   nearest same-path ancestor (verified against a quadratic recomputation) *)
let prop_link_invariants =
  QCheck.Test.make ~name:"link invariants" ~count:150 arb_corpus (fun docs ->
      with_labeled docs (fun docs l ->
          ignore docs;
          (* Collect all links through every path of every doc. *)
          let seen = Hashtbl.create 64 in
          Array.iter
            (fun d ->
              Array.iter
                (fun p -> Hashtbl.replace seen p ())
                (Enc.paths_of_tree d))
            docs;
          Hashtbl.fold
            (fun p () ok ->
              ok
              &&
              match Labeled.link l p with
              | None -> false
              | Some link ->
                let n = Labeled.link_length link in
                let ok = ref true in
                for i = 0 to n - 1 do
                  let pre = Labeled.link_pre link i in
                  let post = Labeled.link_post link i in
                  if post < pre then ok := false;
                  if i > 0 && Labeled.link_pre link (i - 1) >= pre then ok := false;
                  (* up = nearest j < i whose range contains pre *)
                  let expected_up = ref (-1) in
                  for j = 0 to i - 1 do
                    if
                      Labeled.link_pre link j < pre
                      && Labeled.link_post link j >= pre
                    then expected_up := j
                  done;
                  if Labeled.link_up link i <> !expected_up then ok := false;
                  (* same_desc matches brute force *)
                  let has_desc = ref false in
                  for j = i + 1 to n - 1 do
                    if Labeled.link_pre link j <= post then has_desc := true
                  done;
                  if Labeled.link_same_desc link i <> !has_desc then ok := false
                done;
                !ok)
            seen true))

let prop_nearest_in_link =
  QCheck.Test.make ~name:"nearest_in_link = deepest containing entry" ~count:150
    arb_corpus (fun docs ->
      with_labeled docs (fun _docs l ->
          let ok = ref true in
          let paths = Hashtbl.create 64 in
          Array.iter
            (fun d ->
              Array.iter (fun p -> Hashtbl.replace paths p ()) (Enc.paths_of_tree d))
            _docs;
          Hashtbl.iter
            (fun p () ->
              match Labeled.link l p with
              | None -> ok := false
              | Some link ->
                for x = 0 to Labeled.root_post l do
                  let got = Labeled.nearest_in_link link x in
                  let expected = ref (-1) in
                  for j = 0 to Labeled.link_length link - 1 do
                    if Labeled.link_pre link j <= x && Labeled.link_post link j >= x
                    then expected := j
                  done;
                  if got <> !expected then ok := false
                done)
            paths;
          !ok))

let prop_bulk_equals_incremental =
  QCheck.Test.make ~name:"bulk load = incremental build" ~count:150 arb_corpus
    (fun docs ->
      let docs = Array.of_list docs in
      let seqs =
        Array.mapi (fun i d -> (Enc.encode ~strategy:S.Depth_first d, i)) docs
      in
      let t1 = Trie.create () in
      Array.iter (fun (s, i) -> Trie.insert t1 s ~doc:i) seqs;
      let t2 = Trie.create () in
      Trie.bulk_load t2 (Array.copy seqs);
      let l1 = Labeled.of_trie t1 and l2 = Labeled.of_trie t2 in
      (* Same node count and identical link shapes per path. *)
      Labeled.node_count l1 = Labeled.node_count l2
      && Array.for_all
           (fun (s, _) ->
             Array.for_all
               (fun p ->
                 match Labeled.link l1 p, Labeled.link l2 p with
                 | Some a, Some b ->
                   Labeled.link_length a = Labeled.link_length b
                   && List.init (Labeled.link_length a) (fun i ->
                          (Labeled.link_pre a i, Labeled.link_post a i))
                      = List.init (Labeled.link_length b) (fun i ->
                            (Labeled.link_pre b i, Labeled.link_post b i))
                 | _ -> false)
               s)
           seqs)

let prop_docs_in_range =
  QCheck.Test.make ~name:"docs_in_range over full range = all docs" ~count:150
    arb_corpus (fun docs ->
      with_labeled docs (fun docs l ->
          let acc = ref [] in
          Labeled.docs_in_range l ~lo:0 ~hi:(Labeled.root_post l) ~f:(fun d ->
              acc := d :: !acc);
          List.sort_uniq Stdlib.compare !acc
          = List.init (Array.length docs) (fun i -> i)))

let () =
  Alcotest.run "index"
    [
      ( "trie",
        [
          Alcotest.test_case "sharing" `Quick test_trie_sharing;
          Alcotest.test_case "empty rejected" `Quick test_trie_empty_rejected;
        ] );
      ( "labeled",
        [
          Alcotest.test_case "basic" `Quick test_labeled_basic;
          Alcotest.test_case "link lookup" `Quick test_link_lookup;
          Alcotest.test_case "path_multiple" `Quick test_path_multiple;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_link_invariants;
            prop_nearest_in_link;
            prop_bulk_equals_incremental;
            prop_docs_in_range;
          ] );
    ]
