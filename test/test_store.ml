(* The columnar storage engine: write/open round trips, exhaustive
   corruption detection, the paged buffer pool, and the backend-equivalence
   oracle — heap arrays, flat buffers, and disk pages must answer every
   query identically, counter for counter. *)

module Store = Xstorage.Store
module Labeled = Xindex.Labeled
module T = Xmlcore.Xml_tree
module Gen = QCheck.Gen
module Pattern = Xquery.Pattern

let with_temp name f =
  let path = Filename.temp_file name ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_all path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc s)

let tiny_store () =
  let s = Store.memory () in
  Store.add_ints s "col" (Store.heap [| 1; 2; 3; 42; 1000; -7; max_int |]);
  Store.add_ints s "flat" (Store.flat_of_array [| 9; 8; 7 |]);
  Store.add_blob s "blob" "hello, store";
  s

(* A store that stresses the compressed codecs: full-range ints (delta
   wrap-around across min_int/max_int), a multi-block column, and a
   blob with enough repetition for LZ to bite. *)
let extremes = [| 0; 1; -1; 42; -1000; max_int; min_int; max_int; 17 |]
let spread = Array.init 400 (fun i -> (i * 7919 mod 2003) - 1001)

let tiny_store2 () =
  let s = Store.memory () in
  Store.add_ints s "col" (Store.heap (Array.copy extremes));
  Store.add_ints s "flat" (Store.flat_of_array (Array.copy spread));
  Store.add_blob s "blob"
    (String.concat ";" (List.init 60 (fun i -> Printf.sprintf "entry-%d" i)));
  s

(* --- round trips --------------------------------------------------------- *)

let test_roundtrip_resident () =
  with_temp "store_rt" (fun path ->
      Store.write ~page_size:16 (tiny_store ()) path;
      let s = Store.open_file path in
      let col = Store.ints s "col" in
      Alcotest.(check (list int))
        "int column survives"
        [ 1; 2; 3; 42; 1000; -7; max_int ]
        (Array.to_list (Store.to_array col));
      Alcotest.(check (list int))
        "flat column survives" [ 9; 8; 7 ]
        (Array.to_list (Store.to_array (Store.ints s "flat")));
      Alcotest.(check string) "blob survives" "hello, store"
        (Store.blob s "blob");
      Alcotest.(check bool) "resident columns are not paged" false
        (Store.is_paged col);
      Alcotest.(check int)
        "file_bytes matches the file" (String.length (read_all path))
        (Store.file_bytes s);
      (* A memory store predicts the size write would produce at the
         default page size. *)
      with_temp "store_rt_default" (fun path2 ->
          Store.write (tiny_store ()) path2;
          Alcotest.(check int)
            "memory store predicts the same size"
            (String.length (read_all path2))
            (Store.file_bytes (tiny_store ())));
      let names = List.map (fun r -> r.Store.r_name) (Store.regions s) in
      Alcotest.(check (list string))
        "TOC order = registration order" [ "col"; "flat"; "blob" ] names;
      Store.close s)

let test_roundtrip_paged () =
  with_temp "store_paged" (fun path ->
      Store.write ~page_size:16 (tiny_store ()) path;
      let s = Store.open_file ~mode:Store.Paged ~pool_pages:2 path in
      let col = Store.ints s "col" in
      Alcotest.(check bool) "paged column" true (Store.is_paged col);
      Alcotest.(check int) "length" 7 (Store.length col);
      for i = 0 to 6 do
        Alcotest.(check int)
          (Printf.sprintf "element %d" i)
          [| 1; 2; 3; 42; 1000; -7; max_int |].(i)
          (Store.get col i)
      done;
      Alcotest.(check bool) "pages were read" true (Store.page_reads s > 0);
      let reads = Store.page_reads s in
      (* Rereading inside a 2-page pool: element 0 must be a hit. *)
      ignore (Store.get col 0);
      ignore (Store.get col 0);
      Alcotest.(check bool) "pool hits recorded" true (Store.page_hits s > 0);
      Alcotest.(check bool)
        "tiny pool evicts and refetches" true
        (Store.page_reads s >= reads);
      Alcotest.(check (list int))
        "to_array materialises" [ 9; 8; 7 ]
        (Array.to_list (Store.to_array (Store.ints s "flat")));
      Alcotest.(check string) "blobs are always resident" "hello, store"
        (Store.blob s "blob");
      Store.close s;
      (* Paged reads after close must raise, never crash. *)
      match Store.get col 3 with
      | _ -> Alcotest.fail "read after close succeeded"
      | exception Invalid_argument _ -> ())

(* Compressed (xseqcol2) round trip: packed int columns and LZ blobs
   survive resident and paged reopening, element for element, including
   full-range values whose deltas wrap. *)
let test_roundtrip_compressed () =
  with_temp "store_c2" (fun path ->
      Store.write ~page_size:16 ~format:Store.Col2 (tiny_store2 ()) path;
      Alcotest.(check string)
        "compressed magic" "xseqcol2"
        (String.sub (read_all path) 0 8);
      List.iter
        (fun (what, mode, pool_pages) ->
          let s = Store.open_file ~mode ~pool_pages path in
          Alcotest.(check bool)
            (what ^ " reports Col2") true
            (Store.file_format s = Store.Col2);
          let col = Store.ints s "col" in
          Alcotest.(check (list int))
            (what ^ " extremes to_array")
            (Array.to_list extremes)
            (Array.to_list (Store.to_array col));
          Array.iteri
            (fun i want ->
              Alcotest.(check int)
                (Printf.sprintf "%s extreme element %d" what i)
                want (Store.get col i))
            extremes;
          let flat = Store.ints s "flat" in
          (* Random probes — the paged reader must assemble block bytes
             across page boundaries. *)
          List.iter
            (fun i ->
              Alcotest.(check int)
                (Printf.sprintf "%s spread element %d" what i)
                spread.(i) (Store.get flat i))
            [ 0; 1; 127; 128; 129; 255; 256; 399 ];
          Alcotest.(check (list int))
            (what ^ " spread to_array")
            (Array.to_list spread)
            (Array.to_list (Store.to_array flat));
          Alcotest.(check string)
            (what ^ " blob") (Store.blob (tiny_store2 ()) "blob" |> Fun.id)
            (Store.blob s "blob");
          (* Compression must actually have happened somewhere. *)
          let logical, stored =
            List.fold_left
              (fun (l, st) r -> (l + r.Store.r_bytes, st + r.Store.r_stored))
              (0, 0) (Store.regions s)
          in
          Alcotest.(check bool)
            (what ^ " stored < logical") true (stored < logical);
          (match mode with
          | Store.Paged ->
            Alcotest.(check bool)
              (what ^ " pages were read") true
              (Store.page_reads s > 0)
          | Store.Resident -> ());
          Store.close s;
          match mode with
          | Store.Paged -> (
            match Store.get flat 200 with
            | _ -> Alcotest.fail (what ^ ": read after close succeeded")
            | exception Invalid_argument _ -> ())
          | Store.Resident -> ())
        [
          ("resident", Store.Resident, 256);
          ("paged", Store.Paged, 2);
          ("paged-big-pool", Store.Paged, 64);
        ])

let test_api_errors () =
  let s = Store.memory () in
  Store.add_ints s "dup" (Store.heap [| 1 |]);
  (match Store.add_ints s "dup" (Store.heap [| 2 |]) with
  | () -> Alcotest.fail "duplicate region accepted"
  | exception Invalid_argument _ -> ());
  (match Store.add_blob s (String.make 40 'x') "b" with
  | () -> Alcotest.fail "oversized region name accepted"
  | exception Invalid_argument _ -> ());
  (match Store.ints s "missing" with
  | _ -> Alcotest.fail "missing region found"
  | exception Invalid_argument _ -> ());
  with_temp "store_badpage" (fun path ->
      match Store.write ~page_size:12 s path with
      | () -> Alcotest.fail "page size 12 accepted"
      | exception Invalid_argument _ -> ())

(* --- corruption ---------------------------------------------------------- *)

(* Both formats run the same batteries: the plain store and the
   compressed one whose regions go through the xsuccinct codecs. *)
let battery_write format path =
  let store =
    match format with Store.Col1 -> tiny_store () | Store.Col2 -> tiny_store2 ()
  in
  Store.write ~page_size:16 ~format store path

(* Every byte of the file is covered by a checksum (header + per-region),
   so flipping any single bit anywhere must be rejected at open. *)
let test_bitflip_every_byte format () =
  with_temp "store_flip" (fun path ->
      battery_write format path;
      let pristine = read_all path in
      let n = String.length pristine in
      with_temp "store_flip_mut" (fun mut ->
          for i = 0 to n - 1 do
            let b = Bytes.of_string pristine in
            Bytes.set b i
              (Char.chr (Char.code pristine.[i] lxor (1 lsl (i mod 8))));
            write_all mut (Bytes.to_string b);
            match Store.open_file mut with
            | s ->
              Store.close s;
              Alcotest.failf "%s: bit flip at byte %d went undetected"
                (Store.format_name format) i
            | exception Invalid_argument _ -> ()
          done))

let test_truncations format () =
  with_temp "store_trunc" (fun path ->
      battery_write format path;
      let pristine = read_all path in
      let n = String.length pristine in
      with_temp "store_trunc_mut" (fun mut ->
          let lens = List.init ((n + 6) / 7) (fun k -> k * 7) in
          List.iter
            (fun len ->
              write_all mut (String.sub pristine 0 len);
              match Store.open_file mut with
              | s ->
                Store.close s;
                Alcotest.failf "%s: truncation to %d bytes went undetected"
                  (Store.format_name format) len
              | exception Invalid_argument _ -> ())
            (lens @ [ n - 1 ])))

let check_diagnostic format name mutate expect =
  with_temp ("store_" ^ name) (fun path ->
      battery_write format path;
      let b = Bytes.of_string (read_all path) in
      mutate b;
      write_all path (Bytes.to_string b);
      match Store.open_file path with
      | s ->
        Store.close s;
        Alcotest.failf "%s not rejected" name
      | exception Invalid_argument msg ->
        if
          not
            (List.exists
               (fun needle ->
                 let rec find i =
                   i + String.length needle <= String.length msg
                   && (String.sub msg i (String.length needle) = needle
                      || find (i + 1))
                 in
                 find 0)
               expect)
        then Alcotest.failf "%s: diagnostic %S names none of %s" name msg
               (String.concat "/" expect))

let test_diagnostics format () =
  check_diagnostic format "bad magic"
    (fun b -> Bytes.set b 0 'Z')
    [ "magic" ];
  check_diagnostic format "wrong version"
    (fun b -> Bytes.set_int32_le b 8 99l)
    [ "version" ];
  check_diagnostic format "flipped region byte"
    (fun b -> Bytes.set b (Bytes.length b - 1) '\xff')
    [ "checksum" ]

(* --- xsuccinct codecs ----------------------------------------------------- *)

module Varint = Xsuccinct.Varint
module Packed = Xsuccinct.Packed
module Frontcode = Xsuccinct.Frontcode
module Lz = Xsuccinct.Lz

let fetch_of s off len =
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "fetch out of range"
  else String.sub s off len

let test_varint_extremes () =
  List.iter
    (fun v ->
      let buf = Buffer.create 16 in
      Varint.add_uvarint buf (Varint.zigzag v);
      let s = Buffer.contents buf in
      let pos = ref 0 in
      let got =
        Varint.unzigzag
          (Varint.uvarint ~name:"t" s ~pos ~limit:(String.length s))
      in
      Alcotest.(check int) (string_of_int v) v got;
      Alcotest.(check int) "consumed exactly" (String.length s) !pos)
    [ 0; 1; -1; 63; 64; -64; -65; 8191; max_int; min_int; min_int + 1 ];
  match Varint.uvarint ~name:"t" "\xff" ~pos:(ref 0) ~limit:1 with
  | _ -> Alcotest.fail "truncated varint accepted"
  | exception Invalid_argument _ -> ()

let test_packed_unit () =
  let xs = Array.append extremes (Array.init 300 (fun i -> (i * i) - 7)) in
  let s = Packed.encode ~block:16 xs in
  let p =
    Packed.parse ~name:"t" ~fetch:(fetch_of s) ~length:(String.length s)
  in
  Alcotest.(check int) "count" (Array.length xs) (Packed.count p);
  Alcotest.(check (list int))
    "decode_all inverts encode" (Array.to_list xs)
    (Array.to_list (Packed.decode_all p ~fetch:(fetch_of s)));
  (* Skip pointers answer block-first probes from the resident table. *)
  for b = 0 to Packed.nblocks p - 1 do
    Alcotest.(check int)
      (Printf.sprintf "first of block %d" b)
      xs.(b * 16) (Packed.first p b)
  done;
  match
    Packed.parse ~name:"t"
      ~fetch:(fetch_of (String.sub s 0 (String.length s - 1)))
      ~length:(String.length s - 1)
  with
  | _ -> Alcotest.fail "truncated packed column accepted"
  | exception Invalid_argument _ -> ()

let test_frontcode_unit () =
  let names = [| ""; "a"; "ab"; "ab"; "abc"; "abd"; "b" |] in
  let s = Frontcode.encode names in
  Alcotest.(check (array string))
    "decode inverts encode" names
    (Frontcode.decode ~name:"t" s);
  (match Frontcode.encode [| "b"; "a" |] with
  | _ -> Alcotest.fail "unsorted input accepted"
  | exception Invalid_argument _ -> ());
  match Frontcode.decode ~name:"t" (String.sub s 0 (String.length s - 1)) with
  | _ -> Alcotest.fail "truncated frontcode accepted"
  | exception Invalid_argument _ -> ()

let test_lz_unit () =
  List.iter
    (fun s ->
      Alcotest.(check string)
        (Printf.sprintf "round trip (%d bytes)" (String.length s))
        s
        (Lz.decompress ~name:"t" (Lz.compress s)))
    [
      "";
      "a";
      String.make 10_000 'x';
      String.concat "" (List.init 200 (fun i -> Printf.sprintf "<e%d>" (i mod 7)));
      String.init 997 (fun i -> Char.chr (i * 131 mod 256));
    ];
  (* raw_len promises 5 bytes but no tokens follow. *)
  match Lz.decompress ~name:"t" "\x05\x00\x00\x00" with
  | _ -> Alcotest.fail "truncated lz stream accepted"
  | exception Invalid_argument _ -> ()

let prop_packed_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"packed: decode_all inverts encode"
       (QCheck.make
          Gen.(pair (array_size (int_range 0 400) int) (int_range 1 50)))
       (fun (xs, block) ->
         let s = Packed.encode ~block xs in
         let p =
           Packed.parse ~name:"q" ~fetch:(fetch_of s)
             ~length:(String.length s)
         in
         Packed.decode_all p ~fetch:(fetch_of s) = xs))

let prop_frontcode_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"frontcode: decode inverts encode"
       (QCheck.make
          Gen.(
            array_size (int_range 0 60)
              (string_size ~gen:printable (int_range 0 10))))
       (fun names ->
         Array.sort compare names;
         Frontcode.decode ~name:"q" (Frontcode.encode names) = names))

let prop_lz_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"lz: decompress inverts compress"
       (QCheck.make
          Gen.(
            string_size
              ~gen:(map Char.chr (int_range 97 101))
              (int_range 0 2000)))
       (fun s -> Lz.decompress ~name:"q" (Lz.compress s) = s))

(* --- backend-equivalence oracle ------------------------------------------ *)

let tags = [| "a"; "b"; "c"; "d" |]
let vals = [| "v0"; "v1"; "v2" |]

let doc_gen : T.t Gen.t =
  let open Gen in
  let rec tree depth st =
    let fanout = if depth >= 4 then 0 else int_bound (4 - depth) st in
    let kids =
      List.init fanout (fun _ ->
          if depth >= 1 && int_bound 3 st = 0 then T.text (oneofa vals st)
          else tree (depth + 1) st)
    in
    T.elt (oneofa tags st) kids
  in
  tree 0

let case_gen = Gen.pair Gen.(list_size (int_range 1 12) doc_gen) (Gen.int_bound 10_000)

let case_print (docs, seed) =
  Printf.sprintf "seed=%d docs=[%s]" seed
    (String.concat "; " (List.map (Format.asprintf "%a" T.pp) docs))

let queries_of ~seed docs =
  let opts =
    {
      Xdatagen.Query_gen.size = 5;
      star_prob = 0.2;
      desc_prob = 0.2;
      value_prob = 0.5;
      wide = false;
    }
  in
  Xdatagen.Query_gen.generate ~seed ~opts docs 6

type probe_trace = {
  ids : int list;
  probes : int;
  candidates : int;
  rejected : int;
  matches : int;
  pages : int;
}

let run_variant labeled ~strategy ~value_mode q =
  match Xquery.Engine.compile ~strategy ~value_mode labeled q with
  | exception Xquery.Instantiate.Too_many _ -> None
  | compiled ->
    let stats = Xquery.Matcher.create_stats () in
    let pager = Xstorage.Pager.create ~page_size:256 () in
    Xstorage.Pager.begin_query pager;
    let ids = Xquery.Matcher.run_collect ~pager ~stats labeled compiled in
    Some
      {
        ids;
        probes = stats.Xquery.Matcher.probes;
        candidates = stats.Xquery.Matcher.candidates;
        rejected = stats.Xquery.Matcher.rejected;
        matches = stats.Xquery.Matcher.matches;
        pages = Xstorage.Pager.pages_touched pager;
      }

(* Every physical backend — heap arrays, flat buffers, a reloaded resident
   snapshot, a paged snapshot read through the buffer pool, and the
   compressed (xseqcol2) snapshot both resident and paged — must produce
   identical ids, identical matcher counters and identical simulated page
   counts; and the ids must agree with the brute-force embedding oracle. *)
let prop_backend_oracle (docs, seed) =
  let docs = Array.of_list docs in
  let index = Xseq.build docs in
  let path = Filename.temp_file "xseq_oracle" ".idx" in
  let zpath = Filename.temp_file "xseq_oracle" ".idxz" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; zpath ])
    (fun () ->
      Xseq.save index path;
      Xseq.save ~format:Store.Col2 index zpath;
      let resident = Xseq.load path in
      let paged = Xseq.load ~mode:Store.Paged ~pool_pages:4 path in
      let zresident = Xseq.load zpath in
      let zpaged = Xseq.load ~mode:Store.Paged ~pool_pages:4 zpath in
      let variants =
        [
          ( "heap",
            Labeled.remap ~backend:Labeled.Heap_arrays (Xseq.labeled index),
            Xseq.strategy index, Xseq.value_mode index );
          ("columnar", Xseq.labeled index, Xseq.strategy index,
           Xseq.value_mode index);
          ("resident", Xseq.labeled resident, Xseq.strategy resident,
           Xseq.value_mode resident);
          ("paged", Xseq.labeled paged, Xseq.strategy paged,
           Xseq.value_mode paged);
          ("compressed", Xseq.labeled zresident, Xseq.strategy zresident,
           Xseq.value_mode zresident);
          ("compressed-paged", Xseq.labeled zpaged, Xseq.strategy zpaged,
           Xseq.value_mode zpaged);
        ]
      in
      List.for_all
        (fun q ->
          let runs =
            List.map
              (fun (name, labeled, strategy, value_mode) ->
                (name, run_variant labeled ~strategy ~value_mode q))
              variants
          in
          match runs with
          | (_, reference) :: rest ->
            let agree =
              List.for_all (fun (_, r) -> r = reference) rest
              &&
              match reference with
              | None -> true
              | Some t -> t.ids = Xquery.Embedding.filter q docs
            in
            if not agree then
              QCheck.Test.fail_reportf "backends diverged on %s: %s"
                (Pattern.to_string q)
                (String.concat "; "
                   (List.map
                      (fun (name, r) ->
                        match r with
                        | None -> name ^ "=<too many>"
                        | Some t ->
                          Printf.sprintf
                            "%s={ids=[%s] probes=%d cand=%d rej=%d match=%d \
                             pages=%d}"
                            name
                            (String.concat ","
                               (List.map string_of_int t.ids))
                            t.probes t.candidates t.rejected t.matches
                            t.pages)
                      runs))
            else true
          | [] -> true)
        (queries_of ~seed docs))

(* Snapshot round trip across both value modes and both file formats: a
   reloaded index — resident or paged, plain or compressed — answers
   exactly like the one that was saved. *)
let test_roundtrip_value_modes () =
  let docs = Xdatagen.Dblp_gen.generate 60 in
  List.iter
    (fun (name, value_mode, format) ->
      let index =
        Xseq.build ~config:{ Xseq.default_config with value_mode } docs
      in
      let queries = queries_of ~seed:17 docs in
      with_temp ("xseq_vm_" ^ name) (fun path ->
          Xseq.save ~format index path;
          let resident = Xseq.load path in
          let paged = Xseq.load ~mode:Store.Paged ~pool_pages:16 path in
          List.iter
            (fun q ->
              let want = Xseq.query index q in
              Alcotest.(check (list int))
                (Printf.sprintf "%s resident %s" name (Pattern.to_string q))
                want (Xseq.query resident q);
              Alcotest.(check (list int))
                (Printf.sprintf "%s paged %s" name (Pattern.to_string q))
                want (Xseq.query paged q))
            queries;
          match Xseq.backing_store paged with
          | Some store ->
            Alcotest.(check bool)
              "paged index actually read pages" true
              (Store.page_reads store > 0)
          | None -> Alcotest.fail "paged index lost its store"))
    [
      ("hashed", Sequencing.Encoder.Hashed, Store.Col1);
      ("text", Sequencing.Encoder.Text, Store.Col1);
      ("hashed-z", Sequencing.Encoder.Hashed, Store.Col2);
      ("text-z", Sequencing.Encoder.Text, Store.Col2);
    ]

(* Loading rejects snapshots whose regions disagree with each other even
   when every checksum is valid. *)
let test_inconsistent_snapshot () =
  let docs = Xdatagen.Dblp_gen.generate 10 in
  let index = Xseq.build docs in
  with_temp "xseq_inconsistent" (fun path ->
      (* Rebuild the snapshot with a lying node count. *)
      let s = Store.memory () in
      let tmp = Filename.temp_file "xseq_src" ".idx" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
        (fun () ->
          Xseq.save index tmp;
          let src = Store.open_file tmp in
          List.iter
            (fun r ->
              match (r.Store.r_name, r.Store.r_kind) with
              | "meta", _ ->
                let m = Store.to_array (Store.ints src "meta") in
                m.(0) <- m.(0) + 1;
                Store.add_ints s "meta" (Store.heap m)
              | name, `Ints -> Store.add_ints s name (Store.ints src name)
              | name, `Blob -> Store.add_blob s name (Store.blob src name))
            (Store.regions src);
          Store.write s path;
          Store.close src);
      match Xseq.load path with
      | _ -> Alcotest.fail "inconsistent snapshot accepted"
      | exception Invalid_argument msg ->
        Alcotest.(check bool)
          "diagnostic names the inconsistency" true
          (String.length msg > 0))

(* The compact dictionary's cross-region invariants: a designator id
   pointing outside the name table must be rejected even though every
   checksum is valid. *)
let test_inconsistent_compact_dict () =
  let docs = Xdatagen.Dblp_gen.generate 10 in
  let index = Xseq.build docs in
  with_temp "xseq_bad_dict" (fun path ->
      let tmp = Filename.temp_file "xseq_src2" ".idx" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
        (fun () ->
          Xseq.save ~format:Store.Col2 index tmp;
          let src = Store.open_file tmp in
          let s = Store.memory () in
          List.iter
            (fun r ->
              match (r.Store.r_name, r.Store.r_kind) with
              | "dict_desig", _ ->
                let m = Store.to_array (Store.ints src "dict_desig") in
                Alcotest.(check bool)
                  "compact dictionary present" true (Array.length m > 1);
                m.(1) <- 1_000_000;
                Store.add_ints s "dict_desig" (Store.heap m)
              | name, `Ints -> Store.add_ints s name (Store.ints src name)
              | name, `Blob -> Store.add_blob s name (Store.blob src name))
            (Store.regions src);
          Store.write ~format:Store.Col2 s path;
          Store.close src);
      match Xseq.load path with
      | _ -> Alcotest.fail "tampered compact dictionary accepted"
      | exception Invalid_argument _ -> ())

(* Compressed saves under fault injection: hard faults (ENOSPC, EIO)
   escape and the partial file is rejected with a diagnostic on load;
   absorbed faults (short writes, EINTR storms) leave a perfect file. *)
let test_compressed_save_faults () =
  let docs = Xdatagen.Dblp_gen.generate 20 in
  let index = Xseq.build docs in
  let q = List.hd (queries_of ~seed:3 docs) in
  let want = Xseq.query index q in
  with_temp "xseq_c2_fault" (fun path ->
      (match
         Xfault.with_injector
           (Xfault.Injector.create
              [ { Xfault.at = 3; on = Xfault.Write; fault = Xfault.Enospc } ])
           (fun () -> Xseq.save ~format:Store.Col2 index path)
       with
      | () -> Alcotest.fail "ENOSPC mid-save did not escape"
      | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> ());
      (match Xseq.load path with
      | _ -> Alcotest.fail "partial compressed snapshot accepted"
      | exception Invalid_argument _ -> ());
      Xfault.with_injector
        (Xfault.Injector.create
           [
             { Xfault.at = 0; on = Xfault.Write; fault = Xfault.Short 3 };
             { Xfault.at = 2; on = Xfault.Write; fault = Xfault.Eintr 2 };
             { Xfault.at = 5; on = Xfault.Write; fault = Xfault.Short 1 };
           ])
        (fun () -> Xseq.save ~format:Store.Col2 index path);
      let loaded = Xseq.load path in
      Alcotest.(check (list int))
        "absorbed faults round trip" want (Xseq.query loaded q);
      match
        Xfault.with_injector
          (Xfault.Injector.create
             [ { Xfault.at = 0; on = Xfault.Open; fault = Xfault.Eio } ])
          (fun () -> Xseq.load path)
      with
      | _ -> Alcotest.fail "open EIO swallowed"
      | exception Unix.Unix_error (Unix.EIO, _, _) -> ())

let mk_prop name ~count f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count (QCheck.make ~print:case_print case_gen) f)

let () =
  Alcotest.run "store"
    [
      ( "format",
        [
          Alcotest.test_case "resident round trip" `Quick
            test_roundtrip_resident;
          Alcotest.test_case "paged round trip" `Quick test_roundtrip_paged;
          Alcotest.test_case "compressed round trip" `Quick
            test_roundtrip_compressed;
          Alcotest.test_case "api errors" `Quick test_api_errors;
        ] );
      ( "codecs",
        [
          Alcotest.test_case "varint extremes" `Quick test_varint_extremes;
          Alcotest.test_case "packed unit" `Quick test_packed_unit;
          Alcotest.test_case "frontcode unit" `Quick test_frontcode_unit;
          Alcotest.test_case "lz unit" `Quick test_lz_unit;
          prop_packed_roundtrip;
          prop_frontcode_roundtrip;
          prop_lz_roundtrip;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "bit flip in every byte (xseqcol1)" `Quick
            (test_bitflip_every_byte Store.Col1);
          Alcotest.test_case "bit flip in every byte (xseqcol2)" `Quick
            (test_bitflip_every_byte Store.Col2);
          Alcotest.test_case "truncations (xseqcol1)" `Quick
            (test_truncations Store.Col1);
          Alcotest.test_case "truncations (xseqcol2)" `Quick
            (test_truncations Store.Col2);
          Alcotest.test_case "diagnostics name the failure (xseqcol1)" `Quick
            (test_diagnostics Store.Col1);
          Alcotest.test_case "diagnostics name the failure (xseqcol2)" `Quick
            (test_diagnostics Store.Col2);
          Alcotest.test_case "inconsistent regions" `Quick
            test_inconsistent_snapshot;
          Alcotest.test_case "inconsistent compact dictionary" `Quick
            test_inconsistent_compact_dict;
          Alcotest.test_case "compressed save under fault injection" `Quick
            test_compressed_save_faults;
        ] );
      ( "oracle",
        [
          mk_prop
            "heap = columnar = resident = paged = compressed (ids, \
             counters, pages)"
            ~count:60 prop_backend_oracle;
          Alcotest.test_case "value-mode round trips" `Quick
            test_roundtrip_value_modes;
        ] );
    ]
