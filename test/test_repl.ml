(* Replication end-to-end tests: an in-process primary/follower pair
   over real Unix sockets.

   Covers the acceptance surface of the replication subsystem: a plain
   (role-less) server answers [Unsupported] — not a dropped connection
   — on every replication opcode; a follower catches up from an empty
   store, mirrors live traffic, serves reads, and guards bounded reads
   by its document watermark; mutations on a follower answer
   [Not_primary] with the leader hint; manual promotion bumps the
   epoch and a Subscribe carrying the higher epoch fences the old
   primary down; the Cluster client chases the leader for mutations
   and fans reads; and semi-sync mutations release on follower acks or
   answer [Timeout] once the followers are gone. *)

module T = Xmlcore.Xml_tree
module P = Xserver.Protocol
module Server = Xserver.Server
module Client = Xserver.Client
module Cluster = Xserver.Cluster
module Node = Xrepl.Node

let () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

(* --- scaffolding ----------------------------------------------------------- *)

let tmp_path suffix =
  let path = Filename.temp_file "xseq_repl" suffix in
  Sys.remove path;
  path

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let doc i =
  Printf.sprintf "<article><author>writer%d</author><id>%d</id></article>" i i

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i =
    if i + n > h then false
    else String.sub hay i n = needle || go (i + 1)
  in
  n = 0 || go 0

(* Poll until [cond ()] or fail after [timeout] seconds. *)
let wait_for ?(timeout = 10.) what cond =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if cond () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail (Printf.sprintf "timed out waiting for %s" what)
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

type member = {
  ep : string;
  sock : string;
  dir : string;
  log : Xlog.t;
  node : Node.t;
  srv : Server.t;
}

let start_member ?(sync_replicas = 0) ?(ack_timeout_ms = 5000) ~follow () =
  let sock = tmp_path ".sock" in
  let dir = tmp_path ".store" in
  let ep = "unix:" ^ sock in
  let log = Xlog.open_ ~sync_every:1 dir in
  let node =
    Node.create
      {
        Node.default_config with
        advertise = ep;
        follow;
        sync_replicas;
        ack_timeout_ms;
      }
      log
  in
  let config =
    { Server.default_config with workers = 1; repl = Some (Node.hooks node) }
  in
  let srv = Server.create ~config (Server.Live log) in
  Server.start srv [ Server.Unix_sock sock ];
  Node.start node;
  { ep; sock; dir; log; node; srv }

let stop_member m =
  Node.stop m.node;
  Server.stop m.srv;
  Xlog.close m.log;
  (try Sys.remove m.sock with Sys_error _ -> ());
  rm_rf m.dir

let with_pair ?sync_replicas ?ack_timeout_ms f =
  let p = start_member ?sync_replicas ?ack_timeout_ms ~follow:None () in
  let q = start_member ~follow:(Some p.ep) () in
  Fun.protect
    ~finally:(fun () ->
      stop_member q;
      stop_member p)
    (fun () -> f p q)

let with_client ep f =
  match Server.addr_of_string ep with
  | Error m -> Alcotest.fail m
  | Ok addr ->
    let c = Client.connect addr in
    Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let follower_next_id ep =
  with_client ep (fun c -> (Client.repl_status c).Client.repl_next_id)

(* --- plain servers and old clients ---------------------------------------- *)

(* The regression the wire protocol must hold: a server built without a
   replication role answers [Unsupported] on every replication opcode
   and keeps the connection alive — an old server never hangs up on a
   newer client, and vice versa. *)
let test_plain_server_unsupported () =
  let docs = [| T.elt "article" [ T.elt "author" [ T.text "writer" ] ] |] in
  let sock = tmp_path ".sock" in
  let srv = Server.create (Server.Static (Xseq.build docs)) in
  Server.start srv [ Server.Unix_sock sock ];
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      try Sys.remove sock with Sys_error _ -> ())
    (fun () ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let pos = { Xlog.Wal.file = 0; off = 8 } in
          let repl_ops =
            [
              ("subscribe", P.Subscribe { epoch = 0; pos });
              ("wal_ack", P.Wal_ack { pos });
              ("promote", P.Promote);
              ("repl_status", P.Repl_status);
              ( "query_bounded",
                P.Query_bounded { xpath = "//author"; timeout_ms = 0; min_gen = 1 }
              );
            ]
          in
          List.iter
            (fun (name, req) ->
              P.write_frame fd (P.encode_request req);
              match P.read_frame fd with
              | Error _ ->
                Alcotest.fail
                  (Printf.sprintf "%s: connection dropped instead of answering"
                     name)
              | Ok frame -> (
                match P.decode_response frame with
                | Ok (P.Error { code = P.Unsupported; _ }) -> ()
                | Ok r ->
                  Alcotest.fail
                    (Printf.sprintf "%s: want Unsupported, got %s" name
                       (match r with
                        | P.Error { code; _ } -> P.error_code_to_string code
                        | _ -> "a success response"))
                | Error m -> Alcotest.fail (name ^ ": " ^ m)))
            repl_ops;
          (* The connection must still serve ordinary traffic. *)
          P.write_frame fd (P.encode_request P.Ping);
          match P.read_frame fd with
          | Ok frame ->
            Alcotest.(check bool)
              "ping still answers after repl opcodes" true
              (P.decode_response frame = Ok P.Pong)
          | Error _ -> Alcotest.fail "connection dead after repl opcodes"))

(* --- catch-up, follower reads, staleness guard ----------------------------- *)

let test_catchup_and_follower_reads () =
  with_pair (fun p q ->
      let n = 20 in
      with_client p.ep (fun c ->
          for i = 0 to n - 1 do
            ignore (Client.insert c (doc i) : int)
          done);
      wait_for "follower catch-up" (fun () -> follower_next_id q.ep = n);
      (* Plain reads answer from the follower's own store. *)
      with_client q.ep (fun c ->
          Alcotest.(check int)
            "follower serves all replicated records" n
            (List.length (Client.query c "//author"));
          (* A bounded read the follower satisfies... *)
          let _, ids = Client.query_bounded ~min_gen:n c "//author" in
          Alcotest.(check int) "bounded read within watermark" n
            (List.length ids);
          (* ...and one demanding documents it cannot have yet. *)
          (match Client.query_bounded ~min_gen:(n + 5) c "//author" with
           | _ -> Alcotest.fail "want Not_primary for an unmet min_gen"
           | exception Client.Server_error (P.Not_primary, hint) ->
             Alcotest.(check string)
               "staleness rejection carries the leader hint" p.ep hint);
          (* Mutations on a follower answer [Not_primary] + hint. *)
          match Client.insert c (doc 999) with
          | _ -> Alcotest.fail "follower accepted a mutation"
          | exception Client.Server_error (P.Not_primary, hint) ->
            Alcotest.(check string) "mutation rejection carries the hint" p.ep
              hint);
      (* Live traffic keeps streaming after catch-up. *)
      with_client p.ep (fun c -> ignore (Client.insert c (doc n) : int));
      wait_for "live record replicates" (fun () ->
          follower_next_id q.ep = n + 1))

(* --- promotion and fencing ------------------------------------------------- *)

let test_promote_and_fence () =
  with_pair (fun p q ->
      with_client p.ep (fun c ->
          for i = 0 to 4 do
            ignore (Client.insert c (doc i) : int)
          done);
      wait_for "follower catch-up" (fun () -> follower_next_id q.ep = 5);
      (* Manual promotion: epoch bumps, mutations land on the new
         primary. *)
      let epoch = with_client q.ep (fun c -> Client.promote c) in
      Alcotest.(check int) "promotion bumps the epoch" 1 epoch;
      with_client q.ep (fun c ->
          Alcotest.(check int)
            "promotion is idempotent" 1 (Client.promote c);
          ignore (Client.insert c (doc 5) : int);
          Alcotest.(check int)
            "new primary serves its own write" 6
            (List.length (Client.query c "//author")));
      (* Fencing: the deposed primary steps down the moment it observes
         the higher epoch (here: via a Subscribe announcing it). *)
      (match Server.addr_of_string p.ep with
       | Error m -> Alcotest.fail m
       | Ok addr ->
         let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
         (match addr with
          | Server.Unix_sock path -> Unix.connect fd (Unix.ADDR_UNIX path)
          | Server.Tcp _ -> Alcotest.fail "tests use unix sockets");
         Fun.protect
           ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
           (fun () ->
             P.write_frame fd
               (P.encode_request
                  (P.Subscribe
                     { epoch; pos = { Xlog.Wal.file = 0; off = 8 } }));
             match P.read_frame fd with
             | Ok frame -> (
               match P.decode_response frame with
               | Ok (P.Error { code = P.Not_primary; _ }) -> ()
               | Ok _ -> Alcotest.fail "deposed primary accepted a subscriber"
               | Error m -> Alcotest.fail m)
             | Error _ -> Alcotest.fail "no answer from the deposed primary"));
      wait_for "old primary steps down" (fun () ->
          with_client p.ep (fun c ->
              let st = Client.repl_status c in
              st.Client.role = `Follower && st.Client.epoch = epoch));
      (* A mutation on the deposed node now answers Not_primary. *)
      with_client p.ep (fun c ->
          match Client.insert c (doc 6) with
          | _ -> Alcotest.fail "deposed primary accepted a mutation"
          | exception Client.Server_error (P.Not_primary, _) -> ()))

(* --- cluster client -------------------------------------------------------- *)

let test_cluster_chases_leader () =
  with_pair (fun p q ->
      (* Endpoints deliberately follower-first: every mutation has to
         chase the [Not_primary] hint to land. *)
      match Cluster.create [ q.ep; p.ep ] with
      | Error m -> Alcotest.fail m
      | Ok cl ->
        Fun.protect
          ~finally:(fun () -> Cluster.close cl)
          (fun () ->
            for i = 0 to 9 do
              ignore (Cluster.insert cl (doc i) : int)
            done;
            Alcotest.(check (option string))
              "the cluster learned the leader" (Some p.ep) (Cluster.leader cl);
            wait_for "follower catch-up" (fun () -> follower_next_id q.ep = 10);
            (* Unbounded reads answer from whoever gets them; bounded
               reads pin the primary's watermark. *)
            Alcotest.(check int)
              "fan-out read" 10
              (List.length (Cluster.query cl "//author"));
            Alcotest.(check int)
              "bounded read at staleness 0" 10
              (List.length (Cluster.query ~max_staleness:0 cl "//author"));
            let statuses = Cluster.statuses cl in
            Alcotest.(check int) "both members answer status" 2
              (List.length
                 (List.filter (fun (_, r) -> Result.is_ok r) statuses))))

(* --- semi-sync ------------------------------------------------------------- *)

let test_semi_sync () =
  with_pair ~sync_replicas:1 ~ack_timeout_ms:600 (fun p q ->
      (* With a live follower the parked mutation releases on its ack. *)
      with_client p.ep (fun c ->
          for i = 0 to 4 do
            ignore (Client.insert c (doc i) : int)
          done);
      wait_for "follower holds the acknowledged writes" (fun () ->
          follower_next_id q.ep = 5);
      (* Stop the follower: acknowledgements stop, so a mutation must
         answer [Timeout] after the ack bound — applied locally,
         replication indeterminate. *)
      Node.stop q.node;
      wait_for "subscription torn down" (fun () ->
          with_client p.ep (fun c ->
              contains (Client.stats c) "\"subscribers\": 0"));
      let t0 = Unix.gettimeofday () in
      with_client p.ep (fun c ->
          match Client.insert ~timeout_ms:5000 c (doc 99) with
          | _ -> Alcotest.fail "unreplicated write was acknowledged"
          | exception Client.Server_error (P.Timeout, msg) ->
            let dt = Unix.gettimeofday () -. t0 in
            Alcotest.(check bool)
              "timeout mentions replication" true (contains msg "replica");
            Alcotest.(check bool)
              (Printf.sprintf "timeout near the ack bound (%.0f ms)"
                 (dt *. 1000.))
              true
              (dt >= 0.45 && dt < 4.0));
      (* The write did apply locally. *)
      with_client p.ep (fun c ->
          Alcotest.(check int)
            "parked write is visible locally" 6
            (List.length (Client.query c "//author"))))

let () =
  Alcotest.run "xrepl"
    [
      ( "compatibility",
        [
          Alcotest.test_case "plain server answers Unsupported" `Quick
            test_plain_server_unsupported;
        ] );
      ( "pair",
        [
          Alcotest.test_case "catch-up, follower reads, staleness guard"
            `Quick test_catchup_and_follower_reads;
          Alcotest.test_case "promotion and epoch fencing" `Quick
            test_promote_and_fence;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "mutations chase the leader" `Quick
            test_cluster_chases_leader;
        ] );
      ( "semi-sync",
        [ Alcotest.test_case "ack release and timeout" `Quick test_semi_sync ] );
    ]
