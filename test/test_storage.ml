(* The simulated pager: layout, access accounting, LRU buffering. *)

module Pager = Xstorage.Pager

let test_alloc_alignment () =
  let p = Pager.create ~page_size:4096 () in
  let a = Pager.alloc p ~bytes:10 in
  let b = Pager.alloc p ~bytes:5000 in
  let c = Pager.alloc p ~bytes:1 in
  Alcotest.(check int) "first at 0" 0 a;
  Alcotest.(check int) "page aligned" 4096 b;
  Alcotest.(check int) "two pages" (4096 * 3) c;
  (* zero-byte regions still take a page so they never share *)
  let d = Pager.alloc p ~bytes:0 in
  Alcotest.(check int) "empty region" (4096 * 4) d

let test_touch_counting () =
  let p = Pager.create ~page_size:100 () in
  Pager.begin_query p;
  Pager.touch p 5;
  Pager.touch p 50;
  Pager.touch p 150;
  Alcotest.(check int) "two distinct pages" 2 (Pager.pages_touched p);
  Alcotest.(check int) "three accesses" 3 (Pager.total_accesses p);
  Alcotest.(check int) "misses = pages without buffer" 2 (Pager.misses p);
  Pager.begin_query p;
  Alcotest.(check int) "reset" 0 (Pager.pages_touched p);
  Alcotest.(check int) "accesses persist" 3 (Pager.total_accesses p)

let test_touch_range () =
  let p = Pager.create ~page_size:100 () in
  Pager.begin_query p;
  Pager.touch_range p 50 250;
  Alcotest.(check int) "three pages" 3 (Pager.pages_touched p)

(* Regression: touch_range and pages_touched_between share one half-open
   [lo, hi) convention, so a range ending exactly on a page boundary must
   not leak a touch of the next page. *)
let test_range_boundaries () =
  let p = Pager.create ~page_size:100 () in
  Pager.begin_query p;
  Pager.touch_range p 100 200;
  Alcotest.(check int) "[100,200) is one page" 1 (Pager.pages_touched p);
  Alcotest.(check int) "accounted inside [100,200)" 1
    (Pager.pages_touched_between p ~lo:100 ~hi:200);
  Alcotest.(check int) "nothing in [200,300)" 0
    (Pager.pages_touched_between p ~lo:200 ~hi:300);
  Alcotest.(check int) "nothing in [0,100)" 0
    (Pager.pages_touched_between p ~lo:0 ~hi:100);
  Pager.begin_query p;
  Pager.touch_range p 100 201;
  Alcotest.(check int) "[100,201) spills into the next page" 2
    (Pager.pages_touched p);
  Pager.begin_query p;
  Pager.touch_range p 150 150;
  Alcotest.(check int) "empty range touches nothing" 0 (Pager.pages_touched p);
  Alcotest.(check int) "empty accounting range" 0
    (Pager.pages_touched_between p ~lo:150 ~hi:150)

(* Property: for any [lo, hi), touch_range touches exactly the pages the
   accounting reports for the same range — the two sides can never
   disagree at a boundary again. *)
let prop_range_convention =
  QCheck.Test.make ~name:"touch_range matches pages_touched_between"
    ~count:500
    QCheck.(pair (int_bound 5_000) (int_bound 5_000))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let p = Pager.create ~page_size:128 () in
      Pager.begin_query p;
      Pager.touch_range p lo hi;
      let expected =
        if hi > lo then ((hi - 1) / 128) - (lo / 128) + 1 else 0
      in
      Pager.pages_touched p = expected
      && Pager.pages_touched_between p ~lo ~hi = Pager.pages_touched p)

let test_lru_on_evict () =
  let evicted = ref [] in
  let l = Pager.Lru.create ~on_evict:(fun pg -> evicted := pg :: !evicted) 2 in
  ignore (Pager.Lru.access l 1);
  ignore (Pager.Lru.access l 2);
  ignore (Pager.Lru.access l 3);
  (* capacity 2: page 1 is the LRU victim *)
  Alcotest.(check (list int)) "evicted LRU page" [ 1 ] !evicted;
  Alcotest.(check bool) "new page resident" true (Pager.Lru.mem l 3);
  Alcotest.(check bool) "victim gone" false (Pager.Lru.mem l 1);
  Alcotest.(check int) "size at capacity" 2 (Pager.Lru.size l)

let test_lru_hits () =
  let p = Pager.create ~page_size:100 ~buffer_pages:2 () in
  Pager.begin_query p;
  Pager.touch p 0;
  (* page 0: miss *)
  Pager.touch p 0;
  (* hit *)
  Alcotest.(check int) "one miss" 1 (Pager.misses p);
  Pager.begin_query p;
  Pager.touch p 0;
  (* still resident: hit *)
  Alcotest.(check int) "cross-query hit" 0 (Pager.misses p)

let test_lru_eviction () =
  let p = Pager.create ~page_size:100 ~buffer_pages:2 () in
  Pager.begin_query p;
  Pager.touch p 0;
  (* page 0 *)
  Pager.touch p 100;
  (* page 1 *)
  Pager.touch p 200;
  (* page 2 evicts page 0 (LRU) *)
  Pager.touch p 0;
  (* page 0: miss again *)
  Alcotest.(check int) "four misses" 4 (Pager.misses p);
  (* page 2 was recently used: hit *)
  Pager.touch p 200;
  Alcotest.(check int) "still four" 4 (Pager.misses p)

let test_lru_recency_update () =
  let p = Pager.create ~page_size:100 ~buffer_pages:2 () in
  Pager.begin_query p;
  Pager.touch p 0;
  Pager.touch p 100;
  Pager.touch p 0;
  (* refresh page 0; page 1 is now LRU *)
  Pager.touch p 200;
  (* evicts page 1 *)
  Pager.touch p 0;
  (* hit *)
  Pager.touch p 100;
  (* miss: was evicted *)
  Alcotest.(check int) "misses" 4 (Pager.misses p)

let test_reset_pool () =
  let p = Pager.create ~page_size:100 ~buffer_pages:4 () in
  Pager.begin_query p;
  Pager.touch p 0;
  Pager.reset_pool p;
  Pager.begin_query p;
  Pager.touch p 0;
  Alcotest.(check int) "cold again" 1 (Pager.misses p)

(* Property: for any access trace, pages_touched <= misses-without-buffer,
   and misses with an infinite buffer across one query equals distinct
   pages. *)
let prop_accounting =
  QCheck.Test.make ~name:"accounting invariants" ~count:200
    QCheck.(list (int_bound 10_000))
    (fun offsets ->
      let unbuffered = Pager.create ~page_size:128 () in
      let buffered = Pager.create ~page_size:128 ~buffer_pages:1_000_000 () in
      Pager.begin_query unbuffered;
      Pager.begin_query buffered;
      List.iter
        (fun o ->
          Pager.touch unbuffered o;
          Pager.touch buffered o)
        offsets;
      let distinct =
        List.sort_uniq Stdlib.compare (List.map (fun o -> o / 128) offsets)
      in
      Pager.pages_touched unbuffered = List.length distinct
      && Pager.misses unbuffered = List.length distinct
      && Pager.misses buffered = List.length distinct)

let () =
  Alcotest.run "storage"
    [
      ( "pager",
        [
          Alcotest.test_case "alloc alignment" `Quick test_alloc_alignment;
          Alcotest.test_case "touch counting" `Quick test_touch_counting;
          Alcotest.test_case "touch range" `Quick test_touch_range;
          Alcotest.test_case "range boundaries" `Quick test_range_boundaries;
          Alcotest.test_case "lru on_evict" `Quick test_lru_on_evict;
          Alcotest.test_case "lru hits" `Quick test_lru_hits;
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
          Alcotest.test_case "lru recency" `Quick test_lru_recency_update;
          Alcotest.test_case "reset pool" `Quick test_reset_pool;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_accounting;
          QCheck_alcotest.to_alcotest prop_range_convention;
        ] );
    ]
