(* The simulated pager: layout, access accounting, LRU buffering. *)

module Pager = Xstorage.Pager

let test_alloc_alignment () =
  let p = Pager.create ~page_size:4096 () in
  let a = Pager.alloc p ~bytes:10 in
  let b = Pager.alloc p ~bytes:5000 in
  let c = Pager.alloc p ~bytes:1 in
  Alcotest.(check int) "first at 0" 0 a;
  Alcotest.(check int) "page aligned" 4096 b;
  Alcotest.(check int) "two pages" (4096 * 3) c;
  (* zero-byte regions still take a page so they never share *)
  let d = Pager.alloc p ~bytes:0 in
  Alcotest.(check int) "empty region" (4096 * 4) d

let test_touch_counting () =
  let p = Pager.create ~page_size:100 () in
  Pager.begin_query p;
  Pager.touch p 5;
  Pager.touch p 50;
  Pager.touch p 150;
  Alcotest.(check int) "two distinct pages" 2 (Pager.pages_touched p);
  Alcotest.(check int) "three accesses" 3 (Pager.total_accesses p);
  Alcotest.(check int) "misses = pages without buffer" 2 (Pager.misses p);
  Pager.begin_query p;
  Alcotest.(check int) "reset" 0 (Pager.pages_touched p);
  Alcotest.(check int) "accesses persist" 3 (Pager.total_accesses p)

let test_touch_range () =
  let p = Pager.create ~page_size:100 () in
  Pager.begin_query p;
  Pager.touch_range p 50 250;
  Alcotest.(check int) "three pages" 3 (Pager.pages_touched p)

let test_lru_hits () =
  let p = Pager.create ~page_size:100 ~buffer_pages:2 () in
  Pager.begin_query p;
  Pager.touch p 0;
  (* page 0: miss *)
  Pager.touch p 0;
  (* hit *)
  Alcotest.(check int) "one miss" 1 (Pager.misses p);
  Pager.begin_query p;
  Pager.touch p 0;
  (* still resident: hit *)
  Alcotest.(check int) "cross-query hit" 0 (Pager.misses p)

let test_lru_eviction () =
  let p = Pager.create ~page_size:100 ~buffer_pages:2 () in
  Pager.begin_query p;
  Pager.touch p 0;
  (* page 0 *)
  Pager.touch p 100;
  (* page 1 *)
  Pager.touch p 200;
  (* page 2 evicts page 0 (LRU) *)
  Pager.touch p 0;
  (* page 0: miss again *)
  Alcotest.(check int) "four misses" 4 (Pager.misses p);
  (* page 2 was recently used: hit *)
  Pager.touch p 200;
  Alcotest.(check int) "still four" 4 (Pager.misses p)

let test_lru_recency_update () =
  let p = Pager.create ~page_size:100 ~buffer_pages:2 () in
  Pager.begin_query p;
  Pager.touch p 0;
  Pager.touch p 100;
  Pager.touch p 0;
  (* refresh page 0; page 1 is now LRU *)
  Pager.touch p 200;
  (* evicts page 1 *)
  Pager.touch p 0;
  (* hit *)
  Pager.touch p 100;
  (* miss: was evicted *)
  Alcotest.(check int) "misses" 4 (Pager.misses p)

let test_reset_pool () =
  let p = Pager.create ~page_size:100 ~buffer_pages:4 () in
  Pager.begin_query p;
  Pager.touch p 0;
  Pager.reset_pool p;
  Pager.begin_query p;
  Pager.touch p 0;
  Alcotest.(check int) "cold again" 1 (Pager.misses p)

(* Property: for any access trace, pages_touched <= misses-without-buffer,
   and misses with an infinite buffer across one query equals distinct
   pages. *)
let prop_accounting =
  QCheck.Test.make ~name:"accounting invariants" ~count:200
    QCheck.(list (int_bound 10_000))
    (fun offsets ->
      let unbuffered = Pager.create ~page_size:128 () in
      let buffered = Pager.create ~page_size:128 ~buffer_pages:1_000_000 () in
      Pager.begin_query unbuffered;
      Pager.begin_query buffered;
      List.iter
        (fun o ->
          Pager.touch unbuffered o;
          Pager.touch buffered o)
        offsets;
      let distinct =
        List.sort_uniq Stdlib.compare (List.map (fun o -> o / 128) offsets)
      in
      Pager.pages_touched unbuffered = List.length distinct
      && Pager.misses unbuffered = List.length distinct
      && Pager.misses buffered = List.length distinct)

let () =
  Alcotest.run "storage"
    [
      ( "pager",
        [
          Alcotest.test_case "alloc alignment" `Quick test_alloc_alignment;
          Alcotest.test_case "touch counting" `Quick test_touch_counting;
          Alcotest.test_case "touch range" `Quick test_touch_range;
          Alcotest.test_case "lru hits" `Quick test_lru_hits;
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
          Alcotest.test_case "lru recency" `Quick test_lru_recency_update;
          Alcotest.test_case "reset pool" `Quick test_reset_pool;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_accounting ]);
    ]
