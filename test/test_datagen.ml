(* Generators: parameter conformance, determinism, query answerability. *)

module T = Xmlcore.Xml_tree
module Syn = Xdatagen.Synthetic
module Dblp = Xdatagen.Dblp_gen
module Xmark = Xdatagen.Xmark_gen
module Qgen = Xdatagen.Query_gen

let corpus_equal a b = Array.for_all2 T.equal a b

(* --- synthetic ------------------------------------------------------------ *)

let params = { Syn.l = 3; f = 5; a = 25; i = 0; p = 40 }

let test_name_roundtrip () =
  Alcotest.(check string) "name" "L3F5A25I0P40" (Syn.name params);
  let p = Syn.parse_name "L5F3A40I10P5" in
  Alcotest.(check string) "roundtrip" "L5F3A40I10P5" (Syn.name p);
  Alcotest.check_raises "malformed" (Invalid_argument "Synthetic.parse_name: bogus")
    (fun () -> ignore (Syn.parse_name "bogus"))

let test_synthetic_deterministic () =
  let a = Syn.dataset params 50 in
  let b = Syn.dataset params 50 in
  Alcotest.(check bool) "same docs" true (corpus_equal a b);
  let c = Syn.dataset ~data_seed:99 params 50 in
  Alcotest.(check bool) "seed changes docs" false (corpus_equal a c)

let test_synthetic_depth_bound () =
  let docs = Syn.dataset { params with l = 3 } 200 in
  (* element depth <= l, plus one level for value leaves *)
  Alcotest.(check bool) "depth bounded" true
    (Array.for_all (fun d -> T.depth d <= 4) docs)

let test_synthetic_identical_siblings () =
  let no_ident = Syn.dataset { params with i = 0 } 200 in
  let all_ident = Syn.dataset { params with i = 100; a = 0 } 200 in
  let frac docs =
    let n = Array.length docs in
    let k =
      Array.fold_left
        (fun k d -> if T.has_identical_siblings d then k + 1 else k)
        0 docs
    in
    float_of_int k /. float_of_int n
  in
  Alcotest.(check bool) "I=100 often has them" true (frac all_ident > 0.3);
  Alcotest.(check bool) "I=0 less than I=100" true (frac no_ident < frac all_ident)

let test_synthetic_occurrence () =
  (* With P=100 every schema node always occurs: all docs of one schema
     share the element structure (value leaves differ, so strip them). *)
  let rec strip = function
    | T.Element (d, cs) ->
      T.Element
        ( d,
          List.filter_map
            (fun c -> match c with T.Value _ -> None | e -> Some (strip e))
            cs )
    | leaf -> leaf
  in
  let docs = Syn.dataset { params with p = 100; a = 0 } 20 in
  let shape d = T.canonical_sort (strip d) in
  Alcotest.(check bool) "all same shape" true
    (Array.for_all (fun d -> T.equal (shape d) (shape docs.(0))) docs)

(* --- dblp ------------------------------------------------------------------ *)

let test_dblp_shapes () =
  let docs = Dblp.generate 300 in
  Alcotest.(check int) "count" 300 (Array.length docs);
  Alcotest.(check bool) "deterministic" true (corpus_equal docs (Dblp.generate 300));
  let kinds = Hashtbl.create 4 in
  Array.iter
    (fun d ->
      let k = Xmlcore.Designator.name (T.tag d) in
      Hashtbl.replace kinds k ();
      (* every record has key, title, author and year *)
      let child_names =
        List.filter_map
          (fun c -> match c with T.Element (t, _) -> Some (Xmlcore.Designator.name t) | _ -> None)
          (T.children d)
      in
      List.iter
        (fun f ->
          if not (List.mem f child_names) then
            Alcotest.failf "record lacks %s" f)
        [ "key"; "title"; "author"; "year" ])
    docs;
  Alcotest.(check bool) "several kinds" true (Hashtbl.length kinds >= 3)

let test_dblp_queries_answerable () =
  let docs = Dblp.generate 800 in
  let ask s = Xquery.Embedding.filter (Xquery.Xpath_parser.parse s) docs in
  Alcotest.(check bool) "inproceedings/title" true (ask "/inproceedings/title" <> []);
  Alcotest.(check bool) "book key Maier" true (ask "/book[key='Maier']/author" <> []);
  Alcotest.(check bool) "author David X" true
    (ask "/*/author[text='David Maier']" <> [])

(* --- xmark ------------------------------------------------------------------ *)

let test_xmark_shapes () =
  let docs = Xmark.generate ~identical_siblings:true 400 in
  Alcotest.(check bool) "deterministic" true
    (corpus_equal docs (Xmark.generate ~identical_siblings:true 400));
  Alcotest.(check bool) "all rooted at site" true
    (Array.for_all (fun d -> Xmlcore.Designator.name (T.tag d) = "site") docs);
  let with_ident =
    Array.exists T.has_identical_siblings docs
  in
  Alcotest.(check bool) "identical siblings present" true with_ident;
  let flat = Xmark.generate ~identical_siblings:false 400 in
  Alcotest.(check bool) "flat mode avoids them" true
    (not (Array.exists T.has_identical_siblings flat))

let test_xmark_queries_answerable () =
  let n = 1500 in
  let docs = Xmark.generate ~identical_siblings:true n in
  let ask s = Xquery.Embedding.filter (Xquery.Xpath_parser.parse s) docs in
  let q1 =
    Printf.sprintf
      "/site//item[location='United States']/mail/date[text='%s']" Xmark.q1_date
  in
  let q2 = "/site//person/*/age[text='32']" in
  let q3 =
    Printf.sprintf "//closed_auction[seller/person='%s']/date" (Xmark.a_person_id n)
  in
  Alcotest.(check bool) "q1 answerable" true (ask q1 <> []);
  Alcotest.(check bool) "q2 answerable" true (ask q2 <> []);
  Alcotest.(check bool) "q3 person exists" true (ask q3 <> [])

(* --- query generator --------------------------------------------------------- *)

let test_query_gen_matches_source () =
  let docs = Syn.dataset { params with i = 20 } 60 in
  let opts =
    { Qgen.size = 6; star_prob = 0.0; desc_prob = 0.0; value_prob = 1.0; wide = false }
  in
  let queries = Qgen.generate ~seed:5 ~opts docs 25 in
  Alcotest.(check int) "count" 25 (List.length queries);
  (* exact sub-patterns must match at least their source document *)
  List.iter
    (fun q ->
      if Xquery.Embedding.filter q docs = [] then
        Alcotest.failf "query %s has no answer" (Xquery.Pattern.to_string q))
    queries

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
  m = 0 || loop 0

let test_query_gen_generalized () =
  let docs = Syn.dataset { params with i = 20 } 60 in
  let opts =
    { Qgen.size = 6; star_prob = 0.5; desc_prob = 0.5; value_prob = 0.5; wide = false }
  in
  let queries = Qgen.generate ~seed:7 ~opts docs 25 in
  (* generalisation only widens the answer set *)
  List.iter
    (fun q ->
      if Xquery.Embedding.filter q docs = [] then
        Alcotest.failf "generalized query %s has no answer" (Xquery.Pattern.to_string q))
    queries;
  Alcotest.(check bool) "some wildcards appear" true
    (List.exists
       (fun q ->
         let s = Xquery.Pattern.to_string q in
         String.contains s '*' || contains_sub s "//")
       queries)

let () =
  Alcotest.run "datagen"
    [
      ( "synthetic",
        [
          Alcotest.test_case "name roundtrip" `Quick test_name_roundtrip;
          Alcotest.test_case "deterministic" `Quick test_synthetic_deterministic;
          Alcotest.test_case "depth bound" `Quick test_synthetic_depth_bound;
          Alcotest.test_case "identical siblings" `Quick
            test_synthetic_identical_siblings;
          Alcotest.test_case "occurrence" `Quick test_synthetic_occurrence;
        ] );
      ( "dblp",
        [
          Alcotest.test_case "shapes" `Quick test_dblp_shapes;
          Alcotest.test_case "table 8 queries" `Quick test_dblp_queries_answerable;
        ] );
      ( "xmark",
        [
          Alcotest.test_case "shapes" `Quick test_xmark_shapes;
          Alcotest.test_case "table 4 queries" `Quick test_xmark_queries_answerable;
        ] );
      ( "query-gen",
        [
          Alcotest.test_case "matches source" `Quick test_query_gen_matches_source;
          Alcotest.test_case "generalized" `Quick test_query_gen_generalized;
        ] );
    ]
