(* Durable-ingestion tests: the WAL codec under QCheck round trips,
   truncation at every byte and bit flips (no input may raise); the
   store's merged base+delta+tombstone answers checked id-for-id against
   a from-scratch [Xseq.build] oracle across randomized
   insert/delete/flush/compact schedules; kill-at-a-random-point crash
   recovery (simulated by truncating the WAL at arbitrary byte offsets)
   against the oracle over the prefix of acknowledged operations; and
   compaction racing live queries. *)

module T = Xmlcore.Xml_tree
module Wal = Xlog.Wal
module Gen = QCheck.Gen

let e = T.elt
let v = T.text

(* --- scratch directories --------------------------------------------------- *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let dir_seq = ref 0

let with_dir f =
  incr dir_seq;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "xlog-test-%d-%d" (Unix.getpid ()) !dir_seq)
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* --- document / op generators ---------------------------------------------- *)

let gen_label = Gen.oneofl [ "L"; "S"; "B"; "M" ]

let gen_subtree =
  Gen.(
    sized_size (int_bound 10)
      (fix (fun self n ->
           if n <= 0 then
             oneof
               [
                 map (fun l -> e l []) gen_label;
                 map (fun s -> v s) (oneofl [ "x"; "y" ]);
               ]
           else
             map2
               (fun l kids -> e l kids)
               gen_label
               (list_size (int_bound 3) (self (n / 2))))))

(* Documents: an element root (mostly "P" so the /P patterns bite). *)
let gen_doc =
  Gen.(
    map2
      (fun root kids -> e root kids)
      (frequency [ (4, return "P"); (1, return "Q") ])
      (list_size (int_bound 4) gen_subtree))

let gen_wal_op =
  Gen.(
    frequency
      [
        (4, map2 (fun id d -> Wal.Insert (id, d)) (int_bound 1_000_000) gen_doc);
        (1, map (fun id -> Wal.Remove id) (int_bound 1_000_000));
      ])

let arb_wal_op =
  QCheck.make ~print:(fun o -> String.escaped (Wal.encode_op o)) gen_wal_op

let arb_wal_ops =
  QCheck.make
    ~print:(fun ops ->
      String.concat "|" (List.map (fun o -> String.escaped (Wal.encode_op o)) ops))
    Gen.(list_size (int_bound 12) gen_wal_op)

let wal_bytes ops = Wal.magic ^ String.concat "" (List.map Wal.encode_record ops)

(* End offset of each record in [wal_bytes ops]. *)
let record_ends ops =
  let off = ref (String.length Wal.magic) in
  List.map
    (fun o ->
      off := !off + String.length (Wal.encode_record o);
      !off)
    ops

(* --- WAL codec: round trips ------------------------------------------------ *)

let qcheck_op_roundtrip =
  QCheck.Test.make ~count:500 ~name:"op payload round trip" arb_wal_op
    (fun op -> Wal.decode_op (Wal.encode_op op) = Ok op)

let qcheck_scan_roundtrip =
  QCheck.Test.make ~count:300 ~name:"scan round trip" arb_wal_ops (fun ops ->
      let s = wal_bytes ops in
      match Wal.scan_string s with
      | Ok { Wal.ops = got; good_bytes; torn } ->
        got = ops && good_bytes = String.length s && torn = None
      | Error _ -> false)

(* --- WAL codec: rejection --------------------------------------------------- *)

let sample_ops =
  [
    Wal.Insert (0, e "P" [ e "L" [ v "x" ] ]);
    Wal.Remove 0;
    Wal.Insert (1, e "P" []);
    Wal.Insert (2, e "Q" [ e "S" []; e "B" [ v "y" ]; v "t" ]);
    Wal.Remove 999;
  ]

(* Truncation at every byte: never raises; the scan keeps exactly the
   records that fit, reports a torn tail iff the cut is mid-record. *)
let test_truncation_everywhere () =
  let file = wal_bytes sample_ops in
  let ends = record_ends sample_ops in
  for k = 0 to String.length file - 1 do
    let cut = String.sub file 0 k in
    if k < String.length Wal.magic then
      match Wal.scan_string cut with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "cut %d: truncated magic accepted" k
    else
      match Wal.scan_string cut with
      | Error m -> Alcotest.failf "cut %d: rejected outright (%s)" k m
      | Ok { Wal.ops; good_bytes; torn } ->
        let want =
          List.filteri (fun i _ -> List.nth ends i <= k) sample_ops
        in
        if ops <> want then Alcotest.failf "cut %d: wrong op prefix" k;
        let boundary = k = String.length Wal.magic || List.mem k ends in
        Alcotest.(check bool)
          (Printf.sprintf "cut %d torn iff mid-record" k)
          (not boundary) (torn <> None);
        Alcotest.(check bool)
          (Printf.sprintf "cut %d good_bytes at a boundary" k)
          true
          (good_bytes = String.length Wal.magic || List.mem good_bytes ends)
  done

(* Bit flips anywhere after the magic: never raise, and whatever
   survives is a prefix of the original op sequence. *)
let qcheck_bit_flips =
  QCheck.Test.make ~count:600 ~name:"bit flips yield a clean prefix"
    QCheck.(pair arb_wal_ops (pair small_nat small_nat))
    (fun (ops, (pos, bit)) ->
      QCheck.assume (ops <> []);
      let file = Bytes.of_string (wal_bytes ops) in
      let m = String.length Wal.magic in
      let pos = m + (pos mod (Bytes.length file - m)) in
      let b = Char.code (Bytes.get file pos) in
      Bytes.set file pos (Char.chr (b lxor (1 lsl (bit mod 8))));
      match Wal.scan_string (Bytes.to_string file) with
      | Error _ -> true (* never for a good magic, but never raises *)
      | Ok { Wal.ops = got; _ } ->
        let rec is_prefix a b =
          match (a, b) with
          | [], _ -> true
          | x :: a', y :: b' -> x = y && is_prefix a' b'
          | _ :: _, [] -> false
        in
        is_prefix got ops)

let qcheck_garbage_never_raises =
  QCheck.Test.make ~count:1000 ~name:"garbage never raises"
    QCheck.(string_gen Gen.char)
    (fun junk ->
      (match Wal.scan_string (Wal.magic ^ junk) with Ok _ | Error _ -> ());
      (match Wal.scan_string junk with Ok _ | Error _ -> ());
      (match Wal.decode_op junk with Ok _ | Error _ -> ());
      true)

(* --- WAL writer ------------------------------------------------------------- *)

let test_writer_roundtrip () =
  with_dir (fun dir ->
      let path = Filename.concat dir "w.log" in
      Unix.mkdir dir 0o755;
      let w = Wal.create ~sync_every:2 path in
      List.iter (Wal.append w) sample_ops;
      Wal.close w;
      (match Wal.scan_file path with
       | Ok { Wal.ops; torn = None; _ } ->
         Alcotest.(check bool) "all records back" true (ops = sample_ops)
       | _ -> Alcotest.fail "scan failed");
      (* Re-opening appends after the existing records. *)
      let w = Wal.create path in
      Wal.append w (Wal.Remove 1);
      Wal.close w;
      (match Wal.scan_file path with
       | Ok { Wal.ops; _ } ->
         Alcotest.(check int) "appended" (List.length sample_ops + 1)
           (List.length ops)
       | Error m -> Alcotest.fail m);
      (* A foreign file is refused. *)
      let alien = Filename.concat dir "alien.log" in
      let oc = open_out_bin alien in
      output_string oc "not a wal at all";
      close_out oc;
      match Wal.create alien with
      | exception Invalid_argument _ -> ()
      | w ->
        Wal.close w;
        Alcotest.fail "foreign file accepted")

(* --- store vs from-scratch oracle ------------------------------------------ *)

let patterns =
  List.map Xseq.Xpath.parse
    [ "/P/L"; "//S"; "/P//B"; "/P/*/S"; "//L[M='x']"; "//Q" ]

(* The model: acknowledged live documents in id order. *)
let expected_answers live pat =
  match live with
  | [] -> []
  | _ ->
    let ids = Array.of_list (List.map fst live) in
    let oracle = Xseq.build (Array.of_list (List.map snd live)) in
    List.map (fun i -> ids.(i)) (Xseq.query oracle pat)

let check_against_oracle what log live =
  List.iter
    (fun pat ->
      let got = Xlog.query log pat in
      let want = expected_answers live pat in
      if got <> want then
        Alcotest.failf "%s: answers diverge from oracle (got [%s], want [%s])"
          what
          (String.concat ";" (List.map string_of_int got))
          (String.concat ";" (List.map string_of_int want)))
    patterns;
  Alcotest.(check int)
    (what ^ ": doc_count")
    (List.length live) (Xlog.doc_count log)

let test_basic_store () =
  with_dir (fun dir ->
      let log = Xlog.open_ ~memtable_limit:3 dir in
      let d0 = e "P" [ e "L" [ e "S" [] ] ] in
      let d1 = e "P" [ e "B" [ v "x" ] ] in
      let d2 = e "Q" [ e "L" [] ] in
      Alcotest.(check int) "first id" 0 (Xlog.insert log d0);
      Alcotest.(check int) "second id" 1 (Xlog.insert log d1);
      Alcotest.(check int) "third id" 2 (Xlog.insert log d2);
      check_against_oracle "pending only" log [ (0, d0); (1, d1); (2, d2) ];
      (* Seal + tombstone. *)
      Xlog.flush log;
      Alcotest.(check bool) "remove live" true (Xlog.remove log 1);
      Alcotest.(check bool) "double remove" false (Xlog.remove log 1);
      Alcotest.(check bool) "remove unknown" false (Xlog.remove log 99);
      check_against_oracle "sealed + tombstone" log [ (0, d0); (2, d2) ];
      (* Compaction reclaims the tombstone, answers are unchanged. *)
      Alcotest.(check bool) "compact ran" true (Xlog.compact ~wait:true log);
      Alcotest.(check int) "tombstones reclaimed" 0 (Xlog.tombstones log);
      check_against_oracle "compacted" log [ (0, d0); (2, d2) ];
      (* Ids are never reused. *)
      let d3 = e "P" [ e "S" [] ] in
      Alcotest.(check int) "id after compaction" 3 (Xlog.insert log d3);
      check_against_oracle "post-compaction insert" log
        [ (0, d0); (2, d2); (3, d3) ];
      Xlog.close log;
      (* Recovery: everything back, ids stable. *)
      let log = Xlog.open_ dir in
      check_against_oracle "reopened" log [ (0, d0); (2, d2); (3, d3) ];
      Xlog.close log)

(* Randomized schedules of insert / remove / flush / compact, each
   checked against the oracle mid-run and after a close/reopen. *)
type sched_op = S_insert of T.t | S_remove of int | S_flush | S_compact

let gen_schedule =
  Gen.(
    list_size (int_bound 35)
      (frequency
         [
           (6, map (fun d -> S_insert d) gen_doc);
           (2, map (fun k -> S_remove k) (int_bound 64));
           (1, return S_flush);
           (1, return S_compact);
         ]))

let arb_schedule =
  QCheck.make
    ~print:(fun s ->
      String.concat ","
        (List.map
           (function
             | S_insert _ -> "I"
             | S_remove k -> Printf.sprintf "R%d" k
             | S_flush -> "F"
             | S_compact -> "C")
           s))
    gen_schedule

let qcheck_schedules_match_oracle =
  QCheck.Test.make ~count:30 ~name:"schedules match a from-scratch build"
    arb_schedule (fun sched ->
      with_dir (fun dir ->
          let log =
            Xlog.open_ ~sync_every:1 ~memtable_limit:4 ~max_segments:3 dir
          in
          let live = ref [] in
          let next = ref 0 in
          let step = ref 0 in
          List.iter
            (fun op ->
              (match op with
               | S_insert d ->
                 let id = Xlog.insert log d in
                 if id <> !next then
                   Alcotest.failf "id %d, want %d" id !next;
                 incr next;
                 live := !live @ [ (id, d) ]
               | S_remove k ->
                 let id = if !next = 0 then k else k mod !next in
                 let want = List.mem_assoc id !live in
                 let got = Xlog.remove log id in
                 if got <> want then
                   Alcotest.failf "remove %d acknowledged %b, want %b" id got
                     want;
                 live := List.remove_assoc id !live
               | S_flush -> Xlog.flush log
               | S_compact -> ignore (Xlog.compact ~wait:true log : bool));
              incr step;
              (* Oracle-check every few steps (a full build per step is
                 too slow, and the final + reopened checks cover the
                 end state). *)
              if !step mod 7 = 0 then
                check_against_oracle
                  (Printf.sprintf "step %d" !step)
                  log !live)
            sched;
          check_against_oracle "final" log !live;
          Xlog.close log;
          let log = Xlog.open_ ~memtable_limit:4 dir in
          check_against_oracle "reopened" log !live;
          Xlog.close log;
          true))

(* --- kill-at-a-random-point crash recovery ---------------------------------- *)

(* One ingest workload, fully synced, with the WAL offset recorded after
   every acknowledged operation.  "Killing the process" at byte [c] is
   simulated by truncating a copy of the WAL to [c] bytes: everything
   the WAL held at that point survives, the torn tail does not —
   exactly what kill -9 leaves behind with sync_every 1. *)
let crash_workload () =
  let rand = Random.State.make [| 42 |] in
  let doc i =
    e "P"
      [
        e "L" [ v (if i mod 3 = 0 then "x" else "y") ];
        (if i mod 2 = 0 then e "S" [] else e "B" [ e "M" [ v "x" ] ]);
      ]
  in
  with_dir (fun dir ->
      let log = Xlog.open_ ~sync_every:1 ~memtable_limit:1024 dir in
      let model = ref [] in
      (* (wal offset after op, live set after op) in op order *)
      let steps = ref [] in
      for i = 0 to 39 do
        let d = doc i in
        let id = Xlog.insert log d in
        model := !model @ [ (id, d) ];
        steps := (Xlog.wal_offset log, !model) :: !steps;
        if i mod 5 = 4 then begin
          let victim = Random.State.int rand (id + 1) in
          ignore (Xlog.remove log victim : bool);
          model := List.remove_assoc victim !model;
          steps := (Xlog.wal_offset log, !model) :: !steps
        end
      done;
      Xlog.close log;
      let wal = Filename.concat dir "wal-000000.log" in
      let ic = open_in_bin wal in
      let bytes = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (bytes, List.rev !steps))

let live_at_cut steps cut =
  List.fold_left
    (fun acc (off, live) -> if off <= cut then live else acc)
    [] steps

let reopen_and_check what bytes expected_live =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let oc = open_out_bin (Filename.concat dir "wal-000000.log") in
      output_string oc bytes;
      close_out oc;
      let log = Xlog.open_ ~memtable_limit:1024 dir in
      check_against_oracle what log expected_live;
      let r = Xlog.recovery log in
      Xlog.close log;
      r)

let test_kill_at_random_point () =
  let bytes, steps = crash_workload () in
  let n = String.length bytes in
  let rand = Random.State.make [| 7 |] in
  (* Every record boundary plus a spread of arbitrary byte offsets. *)
  let cuts =
    (0 :: 3 :: List.map fst steps)
    @ List.init 60 (fun _ -> Random.State.int rand (n + 1))
  in
  List.iter
    (fun cut ->
      let cut = min cut n in
      let expected = live_at_cut steps cut in
      let r =
        reopen_and_check
          (Printf.sprintf "cut at %d/%d" cut n)
          (String.sub bytes 0 cut) expected
      in
      (* A mid-record cut must be reported as a torn tail. *)
      let boundary =
        cut = 0 || cut = String.length Wal.magic
        || List.exists (fun (off, _) -> off = cut) steps
      in
      if (not boundary) && r.Xlog.torn = [] then
        Alcotest.failf "cut at %d: torn tail not diagnosed" cut)
    cuts

(* A flipped byte in the middle of the log must cost only the records
   from the flipped one onward — recovery keeps the clean prefix. *)
let test_corrupt_record_recovery () =
  let bytes, steps = crash_workload () in
  let offsets = List.map fst steps in
  let rand = Random.State.make [| 19 |] in
  for _ = 1 to 25 do
    let r = Random.State.int rand (List.length offsets) in
    let rec_start =
      if r = 0 then String.length Wal.magic else List.nth offsets (r - 1)
    in
    let rec_end = List.nth offsets r in
    let pos = rec_start + Random.State.int rand (rec_end - rec_start) in
    let b = Bytes.of_string bytes in
    Bytes.set b pos
      (Char.chr (Char.code (Bytes.get b pos) lxor (1 + Random.State.int rand 255)));
    let expected = if r = 0 then [] else snd (List.nth steps (r - 1)) in
    let rcv =
      reopen_and_check
        (Printf.sprintf "flip in record %d at byte %d" r pos)
        (Bytes.to_string b) expected
    in
    if rcv.Xlog.torn = [] then
      Alcotest.failf "flip at %d: corruption not diagnosed" pos
  done

(* A corrupt checkpoint is refused loudly (it is the commit record —
   silently ignoring it could serve an index missing acknowledged
   writes that compaction already pruned from the WAL). *)
let test_corrupt_checkpoint_refused () =
  with_dir (fun dir ->
      let log = Xlog.open_ dir in
      for i = 0 to 9 do
        ignore (Xlog.insert log (e "P" [ e "L" [ v (string_of_int i) ] ]) : int)
      done;
      ignore (Xlog.compact ~wait:true log : bool);
      Xlog.close log;
      let ckp = Filename.concat dir "checkpoint" in
      let ic = open_in_bin ckp in
      let s = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
      close_in ic;
      Bytes.set s (Bytes.length s - 3)
        (Char.chr (Char.code (Bytes.get s (Bytes.length s - 3)) lxor 0x40));
      let oc = open_out_bin ckp in
      output_string oc (Bytes.to_string s);
      close_out oc;
      match Xlog.open_ dir with
      | exception Invalid_argument _ -> ()
      | log ->
        Xlog.close log;
        Alcotest.fail "corrupt checkpoint accepted")

(* --- WAL tail cursor + replication mirror ----------------------------------- *)

(* Drain the WAL of [src] (a store directory) into the follower store
   [dst] by tailing from the follower's own log end — the resume
   contract replication relies on. *)
let catch_up ?(max_bytes = 4096) ~src dst =
  let rec go guard =
    if guard = 0 then Alcotest.fail "catch_up: no progress";
    let pos = Xlog.wal_position dst in
    match Wal.tail ~dir:src ~max_bytes pos with
    | Error e -> Alcotest.failf "tail %s: %s" (Wal.position_to_string pos)
                   (Wal.tail_error_to_string e)
    | Ok b ->
      if Wal.position_compare b.Wal.b_next pos = 0 then ()
      else begin
        (match
           Xlog.replica_apply dst ~from:pos ~next:b.Wal.b_next b.Wal.b_records
         with
        | Ok _ -> ()
        | Error m -> Alcotest.failf "replica_apply: %s" m);
        go (guard - 1)
      end
  in
  go 10_000

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The mirror contract, literally: identical WAL file sequences, modulo
   the torn garbage a dead primary file may carry past the follower's
   copy (never the case in these tests). *)
let check_wal_mirror primary_dir follower_dir =
  let p = Wal.list_files primary_dir and f = Wal.list_files follower_dir in
  Alcotest.(check (list int)) "same WAL file sequence" (List.map fst p)
    (List.map fst f);
  List.iter2
    (fun (i, pp) (_, fp) ->
      if not (String.equal (read_whole pp) (read_whole fp)) then
        Alcotest.failf "wal-%06d.log diverges between primary and follower" i)
    p f

let test_tail_basic () =
  with_dir (fun dir ->
      let log = Xlog.open_ ~sync_every:1 ~memtable_limit:1024 dir in
      let docs = List.init 20 (fun i -> e "P" [ e "L" [ v (string_of_int i) ] ]) in
      List.iter (fun d -> ignore (Xlog.insert log d : int)) docs;
      (* Tail from the start: every record comes back, checksum-valid. *)
      let rec drain pos acc =
        match Wal.tail ~dir pos with
        | Error e -> Alcotest.failf "tail: %s" (Wal.tail_error_to_string e)
        | Ok b ->
          if Wal.position_compare b.Wal.b_next pos = 0 then (pos, acc)
          else begin
            (match Wal.scan_records b.Wal.b_records with
            | Ok ops -> drain b.Wal.b_next (acc @ ops)
            | Error m -> Alcotest.failf "scan_records: %s" m)
          end
      in
      let final, ops = drain Wal.start_position [] in
      Alcotest.(check int) "all records shipped" 20 (List.length ops);
      Alcotest.(check int) "cursor at the log end" 0
        (Wal.position_compare final (Xlog.wal_position log));
      (* Caught up: an empty batch that stays put. *)
      (match Wal.tail ~dir final with
      | Ok { Wal.b_count = 0; b_next; _ } when Wal.position_compare b_next final = 0
        -> ()
      | Ok _ -> Alcotest.fail "expected an empty caught-up batch"
      | Error e -> Alcotest.failf "tail: %s" (Wal.tail_error_to_string e));
      (* A position beyond the end of the log is a typed error. *)
      (match Wal.tail ~dir { Wal.file = 99; off = 8 } with
      | Error (Wal.Tail_error _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "position beyond the log accepted");
      (* Rotation: compaction rotates, new records land in the new file,
         and the cursor follows across the boundary.  (Retention holds
         the old file for our live cursor, as a serving primary would.) *)
      Xlog.set_wal_retention log (fun () -> Some final.Wal.file);
      ignore (Xlog.compact ~wait:true log : bool);
      ignore (Xlog.insert log (e "P" [ e "S" [] ]) : int);
      let final2, ops2 = drain final [] in
      Alcotest.(check int) "post-rotation record shipped" 1 (List.length ops2);
      Alcotest.(check int) "cursor followed the rotation" 0
        (Wal.position_compare final2 (Xlog.wal_position log));
      Alcotest.(check bool) "cursor is in a later file" true
        (final2.Wal.file > final.Wal.file);
      Xlog.close log)

(* Edges of the tail contract: a WAL with no records yet answers a
   caught-up empty batch at the start position, not an error. *)
let test_tail_empty_wal () =
  with_dir (fun dir ->
      let log = Xlog.open_ ~sync_every:1 dir in
      (match Wal.tail ~dir Wal.start_position with
      | Ok { Wal.b_count = 0; b_records = ""; b_next; _ } ->
        Alcotest.(check int) "cursor stays at the start" 0
          (Wal.position_compare b_next Wal.start_position)
      | Ok b ->
        Alcotest.failf "empty WAL shipped %d records" b.Wal.b_count
      | Error err ->
        Alcotest.failf "empty WAL: %s" (Wal.tail_error_to_string err));
      Xlog.close log)

(* A cursor parked exactly at the end of a rotated-away file: the next
   tail must step into the successor file, not report a tear or stall. *)
let test_tail_at_rotation_boundary () =
  with_dir (fun dir ->
      let log = Xlog.open_ ~sync_every:1 dir in
      for i = 0 to 4 do
        ignore (Xlog.insert log (e "P" [ e "L" [ v (string_of_int i) ] ]) : int)
      done;
      let boundary = Xlog.wal_position log in
      (* Hold every file, rotate, append past the boundary. *)
      Xlog.set_wal_retention log (fun () -> Some 0);
      ignore (Xlog.compact ~wait:true log : bool);
      ignore (Xlog.insert log (e "P" [ e "S" [] ]) : int);
      (* The step across the boundary may be its own (empty) batch;
         drain until the cursor stops moving. *)
      let rec drain pos count =
        match Wal.tail ~dir pos with
        | Error err ->
          Alcotest.failf "boundary cursor: %s" (Wal.tail_error_to_string err)
        | Ok b ->
          if Wal.position_compare b.Wal.b_next pos = 0 then (pos, count)
          else drain b.Wal.b_next (count + b.Wal.b_count)
      in
      let final, count = drain boundary 0 in
      Alcotest.(check bool) "stepped into the next file" true
        (final.Wal.file > boundary.Wal.file);
      Alcotest.(check int) "the post-rotation record shipped" 1 count;
      Alcotest.(check int) "cursor reached the log end" 0
        (Wal.position_compare final (Xlog.wal_position log));
      Xlog.close log)

(* A cursor strictly inside a file the checkpoint pruned: still the
   typed [Position_pruned], not a phantom batch from the successor. *)
let test_tail_mid_pruned_file () =
  with_dir (fun dir ->
      let log = Xlog.open_ ~sync_every:1 dir in
      for i = 0 to 9 do
        ignore (Xlog.insert log (e "P" [ e "L" [ v (string_of_int i) ] ]) : int)
      done;
      (* A cursor a few records into wal-000000.log. *)
      let mid =
        match Wal.tail ~dir ~max_bytes:64 Wal.start_position with
        | Ok b -> b.Wal.b_next
        | Error err -> Alcotest.failf "tail: %s" (Wal.tail_error_to_string err)
      in
      Alcotest.(check int) "cursor still in the first file" 0 mid.Wal.file;
      ignore (Xlog.compact ~wait:true log : bool);
      Alcotest.(check bool) "first file pruned" false
        (Sys.file_exists (Filename.concat dir "wal-000000.log"));
      (match Wal.tail ~dir mid with
      | Error (Wal.Position_pruned { earliest }) ->
        Alcotest.(check bool) "earliest names a survivor" true
          (earliest.Wal.file > mid.Wal.file)
      | Ok _ -> Alcotest.fail "mid-pruned-file cursor answered a batch"
      | Error (Wal.Tail_error m) ->
        Alcotest.failf "mid-pruned-file cursor was not typed: %s" m);
      Xlog.close log)

(* The satellite contract: a pruned position is a typed error naming the
   earliest retained file — never a Sys_error. *)
let test_tail_pruned_position () =
  with_dir (fun dir ->
      let log = Xlog.open_ ~sync_every:1 dir in
      for i = 0 to 9 do
        ignore (Xlog.insert log (e "P" [ e "L" [ v (string_of_int i) ] ]) : int)
      done;
      (* Compaction rotates and prunes wal-000000.log. *)
      ignore (Xlog.compact ~wait:true log : bool);
      Alcotest.(check bool) "old WAL actually pruned" false
        (Sys.file_exists (Filename.concat dir "wal-000000.log"));
      (match Wal.tail ~dir Wal.start_position with
      | Error (Wal.Position_pruned { earliest }) ->
        Alcotest.(check bool) "earliest is past the pruned file" true
          (earliest.Wal.file > 0)
      | Ok _ -> Alcotest.fail "pruned position answered a batch"
      | Error (Wal.Tail_error m) ->
        Alcotest.failf "pruned position was not typed: %s" m);
      (* The retention hook holds pruning back. *)
      Xlog.set_wal_retention log (fun () -> Some 0);
      ignore (Xlog.insert log (e "P" []) : int);
      ignore (Xlog.compact ~wait:true log : bool);
      let kept = List.map fst (Wal.list_files dir) in
      Alcotest.(check bool) "retention kept the old files" true
        (List.length kept >= 2);
      Xlog.close log)

let test_replica_mirror () =
  with_dir (fun pdir ->
      with_dir (fun fdir ->
          let primary = Xlog.open_ ~sync_every:1 ~memtable_limit:8 pdir in
          let follower = Xlog.open_ ~sync_every:1 ~memtable_limit:8 fdir in
          (* What a serving primary does for its live subscriptions: hold
             WAL files back from pruning up to the follower's cursor. *)
          Xlog.set_wal_retention primary (fun () ->
              Some (Xlog.wal_position follower).Wal.file);
          let docs =
            List.init 30 (fun i ->
                e "P"
                  [
                    e "L" [ v (if i mod 2 = 0 then "x" else "y") ];
                    (if i mod 3 = 0 then e "S" [] else e "B" []);
                  ])
          in
          let live = ref [] in
          List.iteri
            (fun i d ->
              let id = Xlog.insert primary d in
              live := !live @ [ (id, d) ];
              if i mod 7 = 6 then begin
                ignore (Xlog.remove primary (id - 2) : bool);
                live := List.remove_assoc (id - 2) !live
              end;
              (* Ship continuously, including across the rotation below. *)
              catch_up ~src:pdir follower)
            docs;
          (* A rotation mid-stream: the follower must mirror it. *)
          ignore (Xlog.compact ~wait:true primary : bool);
          ignore (Xlog.insert primary (e "P" [ e "M" [ v "x" ] ]) : int);
          live := !live @ [ (Xlog.next_id primary - 1, e "P" [ e "M" [ v "x" ] ]) ];
          catch_up ~src:pdir follower;
          Alcotest.(check int) "same next_id" (Xlog.next_id primary)
            (Xlog.next_id follower);
          Alcotest.(check int) "cursor equality" 0
            (Wal.position_compare
               (Xlog.wal_position primary)
               (Xlog.wal_position follower));
          check_against_oracle "follower answers" follower !live;
          check_wal_mirror pdir fdir;
          (* Restart the follower: its own log end is the resume cursor,
             and the stream continues seamlessly. *)
          Xlog.close follower;
          let follower = Xlog.open_ ~sync_every:1 ~memtable_limit:8 fdir in
          ignore (Xlog.insert primary (e "Q" [ e "L" [] ]) : int);
          live := !live @ [ (Xlog.next_id primary - 1, e "Q" [ e "L" [] ]) ];
          catch_up ~src:pdir follower;
          check_against_oracle "follower after restart" follower !live;
          (* A continuity violation is an Error, not corruption: applying
             the same batch twice is refused. *)
          let pos = Xlog.wal_position follower in
          ignore (Xlog.insert primary (e "Q" []) : int);
          (match Wal.tail ~dir:pdir pos with
          | Ok b ->
            (match
               Xlog.replica_apply follower ~from:pos ~next:b.Wal.b_next
                 b.Wal.b_records
             with
            | Ok _ -> ()
            | Error m -> Alcotest.failf "first apply refused: %s" m);
            (match
               Xlog.replica_apply follower ~from:pos ~next:b.Wal.b_next
                 b.Wal.b_records
             with
            | Ok _ -> Alcotest.fail "duplicate batch accepted"
            | Error _ -> ())
          | Error e -> Alcotest.failf "tail: %s" (Wal.tail_error_to_string e));
          Xlog.close primary;
          Xlog.close follower))

(* Follower-side compaction must not rotate — the file sequence keeps
   mirroring the primary's — and its mid-file checkpoint must recover. *)
let test_replica_compaction_no_rotate () =
  with_dir (fun pdir ->
      with_dir (fun fdir ->
          let primary = Xlog.open_ ~sync_every:1 ~memtable_limit:4 pdir in
          let follower =
            Xlog.open_ ~sync_every:1 ~memtable_limit:4 ~max_segments:2 fdir
          in
          let live = ref [] in
          for i = 0 to 39 do
            let d = e "P" [ e "L" [ v (string_of_int i) ] ] in
            let id = Xlog.insert primary d in
            live := !live @ [ (id, d) ];
            catch_up ~src:pdir follower
          done;
          (* The follower sealed and auto-compacted along the way (its
             max_segments is small); none of that may rotate its WAL. *)
          let rec wait_bg n =
            if n = 0 then ()
            else if Xlog.segments follower > 2 then begin
              Thread.delay 0.01;
              wait_bg (n - 1)
            end
          in
          wait_bg 200;
          ignore (Xlog.compact ~wait:true ~rotate:false follower : bool);
          Alcotest.(check int) "no invented rotation" 0
            (Wal.position_compare
               (Xlog.wal_position primary)
               (Xlog.wal_position follower));
          check_wal_mirror pdir fdir;
          check_against_oracle "follower post-compaction" follower !live;
          (* Mid-file checkpoint recovers: close, reopen, stream on. *)
          Xlog.close follower;
          let follower = Xlog.open_ ~sync_every:1 ~memtable_limit:4 fdir in
          check_against_oracle "follower reopened on mid-file checkpoint"
            follower !live;
          ignore (Xlog.insert primary (e "Q" []) : int);
          live := !live @ [ (Xlog.next_id primary - 1, e "Q" []) ];
          catch_up ~src:pdir follower;
          check_against_oracle "stream resumed" follower !live;
          (* Promotion is free at this layer: the mirror's writer already
             sits at the log end with the right next id. *)
          Xlog.close primary;
          let d = e "P" [ e "S" [] ] in
          let id = Xlog.insert follower d in
          Alcotest.(check int) "promoted id continues the sequence" 41 id;
          live := !live @ [ (id, d) ];
          check_against_oracle "promoted follower serves writes" follower !live;
          Xlog.close follower))

(* --- prepared plans ---------------------------------------------------------- *)

let test_prepared_stamps () =
  with_dir (fun dir ->
      let log = Xlog.open_ ~memtable_limit:100 dir in
      let d = e "P" [ e "L" [ e "S" [] ] ] in
      ignore (Xlog.insert log d : int);
      let pat = Xseq.Xpath.parse "/P/L/S" in
      let plan = Xlog.prepare log pat in
      Alcotest.(check (list int)) "prepared answers" [ 0 ]
        (Xlog.run_prepared log plan);
      (* Inserts and removes do not invalidate the plan — and the run
         sees them. *)
      ignore (Xlog.insert log d : int);
      Alcotest.(check (list int)) "sees the new doc" [ 0; 1 ]
        (Xlog.run_prepared log plan);
      Alcotest.(check bool) "tombstone" true (Xlog.remove log 0);
      Alcotest.(check (list int)) "sees the tombstone" [ 1 ]
        (Xlog.run_prepared log plan);
      (* Sealing changes the structure: the stamp must trip. *)
      Xlog.flush log;
      (match Xlog.run_prepared log plan with
       | _ -> Alcotest.fail "stale plan ran after a seal"
       | exception Invalid_argument _ -> ());
      let plan = Xlog.prepare log pat in
      Alcotest.(check (list int)) "re-prepared" [ 1 ]
        (Xlog.run_prepared log plan);
      ignore (Xlog.compact ~wait:true log : bool);
      (match Xlog.run_prepared log plan with
       | _ -> Alcotest.fail "stale plan ran after a compaction"
       | exception Invalid_argument _ -> ());
      Xlog.close log)

(* --- compaction racing live queries ------------------------------------------ *)

let test_compaction_race () =
  with_dir (fun dir ->
      let log = Xlog.open_ ~memtable_limit:8 dir in
      let docs =
        Array.init 64 (fun i ->
            e "P"
              [
                e "L" [ v (if i mod 2 = 0 then "x" else "y") ];
                (if i mod 3 = 0 then e "S" [] else e "B" []);
              ])
      in
      Array.iter (fun d -> ignore (Xlog.insert log d : int)) docs;
      for i = 0 to 15 do
        ignore (Xlog.remove log (i * 4) : bool)
      done;
      let live =
        List.filter
          (fun (i, _) -> i mod 4 <> 0)
          (List.mapi (fun i d -> (i, d)) (Array.to_list docs))
      in
      let wants = List.map (fun p -> expected_answers live p) patterns in
      let failures = ref 0 in
      let fm = Mutex.create () in
      let stop = Atomic.make false in
      let querier () =
        while not (Atomic.get stop) do
          List.iter2
            (fun pat want ->
              let got = Xlog.query log pat in
              if got <> want then begin
                Mutex.lock fm;
                incr failures;
                Mutex.unlock fm
              end)
            patterns wants
        done
      in
      let threads = List.init 3 (fun _ -> Thread.create querier ()) in
      (* Several background compactions while the queriers hammer.  The
         churn document has a label no pattern mentions, so every
         intermediate state answers identically. *)
      for _ = 1 to 3 do
        ignore (Xlog.compact ~wait:false log : bool);
        while Xlog.segments log > 0 || Xlog.tombstones log > 0 do
          ignore (Xlog.compact ~wait:false log : bool);
          Thread.delay 0.001
        done;
        ignore (Xlog.insert log (e "Z" []) : int);
        ignore (Xlog.remove log (Xlog.next_id log - 1) : bool);
        Xlog.flush log
      done;
      Atomic.set stop true;
      List.iter Thread.join threads;
      Alcotest.(check int) "no inconsistent answer observed" 0 !failures;
      check_against_oracle "after the dust settles" log live;
      Xlog.close log)

let () =
  Alcotest.run "xlog"
    [
      ( "wal codec",
        [
          QCheck_alcotest.to_alcotest qcheck_op_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_scan_roundtrip;
          Alcotest.test_case "truncation at every byte" `Quick
            test_truncation_everywhere;
          QCheck_alcotest.to_alcotest qcheck_bit_flips;
          QCheck_alcotest.to_alcotest qcheck_garbage_never_raises;
          Alcotest.test_case "writer round trip" `Quick test_writer_roundtrip;
        ] );
      ( "store oracle",
        [
          Alcotest.test_case "insert/remove/flush/compact/reopen" `Quick
            test_basic_store;
          QCheck_alcotest.to_alcotest qcheck_schedules_match_oracle;
        ] );
      ( "replication",
        [
          Alcotest.test_case "tail cursor" `Quick test_tail_basic;
          Alcotest.test_case "tail of an empty WAL" `Quick test_tail_empty_wal;
          Alcotest.test_case "tail at a rotation boundary" `Quick
            test_tail_at_rotation_boundary;
          Alcotest.test_case "tail inside a pruned file" `Quick
            test_tail_mid_pruned_file;
          Alcotest.test_case "pruned position is typed" `Quick
            test_tail_pruned_position;
          Alcotest.test_case "replica mirror" `Quick test_replica_mirror;
          Alcotest.test_case "replica compaction keeps the mirror" `Quick
            test_replica_compaction_no_rotate;
        ] );
      ( "crash recovery",
        [
          Alcotest.test_case "kill at a random point" `Quick
            test_kill_at_random_point;
          Alcotest.test_case "corrupt mid-log record" `Quick
            test_corrupt_record_recovery;
          Alcotest.test_case "corrupt checkpoint refused" `Quick
            test_corrupt_checkpoint_refused;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "prepared plans stamp out seals" `Quick
            test_prepared_stamps;
          Alcotest.test_case "compaction races queries" `Quick
            test_compaction_race;
        ] );
    ]
