(* Wire-protocol codec tests: QCheck round trips of every frame kind,
   plus exhaustive rejection — truncation at every byte boundary, bad
   magic/version, oversized or lying length fields, unknown opcodes,
   trailing bytes — mirroring test_store.ml's corruption style.  The
   invariant under attack: no input of any shape makes the codec raise;
   malformed frames decode to [Error _]. *)

module P = Xserver.Protocol
module Gen = QCheck.Gen

(* --- generators ---------------------------------------------------------- *)

let gen_string = Gen.(string_size ~gen:printable (int_bound 40))
let gen_small_int = Gen.int_bound 1_000_000

let gen_pos =
  Gen.map2
    (fun file off -> { Xlog.Wal.file; off })
    (Gen.int_bound 1000) gen_small_int

let gen_request =
  Gen.oneof
    [
      Gen.return P.Ping;
      Gen.map2
        (fun xpath timeout_ms -> P.Query { xpath; timeout_ms })
        gen_string gen_small_int;
      Gen.map2
        (fun xs timeout_ms ->
          P.Query_batch { xpaths = Array.of_list xs; timeout_ms })
        Gen.(list_size (int_bound 8) gen_string)
        gen_small_int;
      Gen.return P.Stats;
      Gen.map (fun p -> P.Reload p) (Gen.opt gen_string);
      Gen.map (fun xml -> P.Insert { xml }) gen_string;
      Gen.map (fun id -> P.Delete { id }) gen_small_int;
      Gen.return P.Flush;
      Gen.return P.Health;
      Gen.map2 (fun epoch pos -> P.Subscribe { epoch; pos }) gen_small_int gen_pos;
      Gen.map (fun pos -> P.Wal_ack { pos }) gen_pos;
      Gen.return P.Promote;
      Gen.return P.Repl_status;
      Gen.map3
        (fun xpath timeout_ms min_gen ->
          P.Query_bounded { xpath; timeout_ms; min_gen })
        gen_string gen_small_int gen_small_int;
      Gen.map2
        (fun token cursor -> P.Fetch_snapshot { token; cursor })
        gen_string gen_small_int;
      (* Opcodes this build does not know: 0x0f..0x7f are all currently
         unassigned on the request side. *)
      Gen.map (fun op -> P.Unknown { op }) (Gen.int_range 0x0f 0x7f);
    ]

let gen_ids = Gen.(list_size (int_bound 20) gen_small_int)

let gen_response =
  Gen.oneof
    [
      Gen.return P.Pong;
      Gen.map2
        (fun generation ids -> P.Result { generation; ids })
        gen_small_int gen_ids;
      Gen.map2
        (fun generation ids ->
          P.Batch_result { generation; ids = Array.of_list ids })
        gen_small_int
        Gen.(list_size (int_bound 6) gen_ids);
      Gen.map (fun s -> P.Stats_json s) gen_string;
      Gen.map (fun generation -> P.Reloaded { generation }) gen_small_int;
      Gen.map (fun id -> P.Inserted { id }) gen_small_int;
      Gen.map (fun existed -> P.Deleted { existed }) Gen.bool;
      Gen.map (fun generation -> P.Flushed { generation }) gen_small_int;
      Gen.map2
        (fun code message -> P.Error { code; message })
        (Gen.oneofl
           [
             P.Bad_request;
             P.Overloaded;
             P.Timeout;
             P.Server_error;
             P.Degraded;
             P.Unsupported;
             P.Not_primary;
             P.Pruned;
           ])
        gen_string;
      Gen.map2
        (fun (degraded, reason) (generation, doc_count) ->
          P.Health_status { degraded; reason; generation; doc_count })
        Gen.(pair bool gen_string)
        Gen.(pair gen_small_int gen_small_int);
      Gen.map3
        (fun epoch (from, next) (count, records) ->
          (* the decoder insists each record costs >= 13 bytes *)
          P.Wal_batch
            { epoch; from; next;
              count = min count (String.length records / 13); records })
        gen_small_int
        Gen.(pair gen_pos gen_pos)
        Gen.(pair (int_bound 100) gen_string);
      Gen.map3
        (fun epoch durable next_id -> P.Repl_heartbeat { epoch; durable; next_id })
        gen_small_int gen_pos gen_small_int;
      Gen.map (fun epoch -> P.Promoted { epoch }) gen_small_int;
      Gen.map3
        (fun (role, epoch) durable ((next_id, leader_hint), (lr, lb)) ->
          P.Repl_state
            {
              role;
              epoch;
              durable;
              next_id;
              leader_hint;
              lag_records = lr;
              lag_bytes = lb;
            })
        Gen.(pair (oneofl [ `Primary; `Follower ]) gen_small_int)
        gen_pos
        Gen.(
          pair
            (pair gen_small_int gen_string)
            (pair gen_small_int gen_small_int));
      Gen.map3
        (fun token (total, offset) (last, data) ->
          (* keep the chunk inside the announced stream — the decoder
             rejects overruns (tested separately below) *)
          let dlen = String.length data in
          let total = offset + dlen + (total mod 64) in
          P.Snapshot_chunk
            {
              token;
              total;
              offset;
              last;
              crc = Int64.of_int (Hashtbl.hash data);
              data;
            })
        gen_string
        Gen.(pair gen_small_int gen_small_int)
        Gen.(pair bool gen_string);
    ]

let arb_request = QCheck.make ~print:(fun r -> P.encode_request r |> String.escaped) gen_request
let arb_response = QCheck.make ~print:(fun r -> P.encode_response r |> String.escaped) gen_response

(* --- round trips --------------------------------------------------------- *)

let qcheck_roundtrip_request =
  QCheck.Test.make ~count:500 ~name:"request round trip" arb_request (fun r ->
      P.decode_request (P.encode_request r) = Ok r)

let qcheck_roundtrip_response =
  QCheck.Test.make ~count:500 ~name:"response round trip" arb_response
    (fun r -> P.decode_response (P.encode_response r) = Ok r)

let sample_requests =
  [
    P.Ping;
    P.Query { xpath = "//author[text='X']"; timeout_ms = 0 };
    P.Query { xpath = ""; timeout_ms = 250 };
    P.Query_batch { xpaths = [||]; timeout_ms = 0 };
    P.Query_batch { xpaths = [| "//a"; "/b/c"; "" |]; timeout_ms = 9 };
    P.Stats;
    P.Reload None;
    P.Reload (Some "/tmp/snapshot.xseq");
    P.Insert { xml = "<article><author>X</author></article>" };
    P.Insert { xml = "" };
    P.Delete { id = 0 };
    P.Delete { id = 123456 };
    P.Flush;
    P.Health;
    P.Subscribe { epoch = 0; pos = { Xlog.Wal.file = 0; off = 8 } };
    P.Subscribe { epoch = 7; pos = { Xlog.Wal.file = 12; off = 987654 } };
    P.Wal_ack { pos = { Xlog.Wal.file = 3; off = 4096 } };
    P.Promote;
    P.Repl_status;
    P.Query_bounded { xpath = "//author"; timeout_ms = 250; min_gen = 42 };
    P.Query_bounded { xpath = ""; timeout_ms = 0; min_gen = 0 };
    P.Fetch_snapshot { token = ""; cursor = 0 };
    P.Fetch_snapshot { token = "00deadbeef00cafe"; cursor = 1 lsl 20 };
    P.Unknown { op = 0x42 };
  ]

let sample_responses =
  [
    P.Pong;
    P.Result { generation = 3; ids = [] };
    P.Result { generation = 0; ids = [ 0; 1; 17; 123456 ] };
    P.Batch_result { generation = 1; ids = [||] };
    P.Batch_result { generation = 7; ids = [| [ 1 ]; []; [ 2; 3 ] |] };
    P.Stats_json "{\"requests_total\": 0}";
    P.Reloaded { generation = 12 };
    P.Inserted { id = 42 };
    P.Deleted { existed = true };
    P.Deleted { existed = false };
    P.Flushed { generation = 9 };
    P.Error { code = P.Bad_request; message = "no" };
    P.Error { code = P.Overloaded; message = "" };
    P.Error { code = P.Timeout; message = "deadline" };
    P.Error { code = P.Server_error; message = "boom" };
    P.Error { code = P.Degraded; message = "wal append: No space left on device" };
    P.Error { code = P.Unsupported; message = "opcode 0x42" };
    P.Error { code = P.Not_primary; message = "unix:/tmp/primary.sock" };
    P.Error { code = P.Pruned; message = "earliest retained is (4, 8)" };
    P.Health_status
      { degraded = false; reason = ""; generation = 4; doc_count = 100 };
    P.Health_status
      {
        degraded = true;
        reason = "wal append: I/O error";
        generation = 9;
        doc_count = 3;
      };
    P.Wal_batch
      {
        epoch = 2;
        from = { Xlog.Wal.file = 0; off = 8 };
        next = { Xlog.Wal.file = 0; off = 275 };
        count = 3;
        records = String.init 267 (fun i -> Char.chr (i land 0xff));
      };
    P.Wal_batch
      {
        epoch = 0;
        from = { Xlog.Wal.file = 5; off = 13738 };
        next = { Xlog.Wal.file = 6; off = 8 };
        count = 0;
        records = "";
      };
    P.Repl_heartbeat
      { epoch = 3; durable = { Xlog.Wal.file = 1; off = 999 }; next_id = 57 };
    P.Promoted { epoch = 4 };
    P.Repl_state
      {
        role = `Primary;
        epoch = 9;
        durable = { Xlog.Wal.file = 2; off = 512 };
        next_id = 1000;
        leader_hint = "";
        lag_records = 0;
        lag_bytes = 0;
      };
    P.Repl_state
      {
        role = `Follower;
        epoch = 1;
        durable = { Xlog.Wal.file = 0; off = 8 };
        next_id = 0;
        leader_hint = "unix:/tmp/primary.sock";
        lag_records = 37;
        lag_bytes = 98304;
      };
    P.Snapshot_chunk
      {
        token = "0123456789abcdef";
        total = 1024;
        offset = 0;
        last = false;
        crc = 0xdeadbeefL;
        data = String.make 512 '\x7f';
      };
    P.Snapshot_chunk
      {
        token = "empty";
        total = 12;
        offset = 12;
        last = true;
        crc = Int64.minus_one;
        data = "";
      };
  ]

let test_roundtrip_exhaustive () =
  List.iter
    (fun r ->
      Alcotest.(check bool)
        "request round trips" true
        (P.decode_request (P.encode_request r) = Ok r))
    sample_requests;
  List.iter
    (fun r ->
      Alcotest.(check bool)
        "response round trips" true
        (P.decode_response (P.encode_response r) = Ok r))
    sample_responses

(* --- rejection ----------------------------------------------------------- *)

let is_error = function Error _ -> true | Ok _ -> false

(* Truncation at every byte boundary must be rejected, never raise. *)
let test_truncation_everywhere () =
  List.iter
    (fun r ->
      let frame = P.encode_request r in
      for k = 0 to String.length frame - 1 do
        let cut = String.sub frame 0 k in
        Alcotest.(check bool)
          (Printf.sprintf "request cut at %d rejected" k)
          true
          (is_error (P.decode_request cut))
      done)
    sample_requests;
  List.iter
    (fun r ->
      let frame = P.encode_response r in
      for k = 0 to String.length frame - 1 do
        let cut = String.sub frame 0 k in
        Alcotest.(check bool)
          (Printf.sprintf "response cut at %d rejected" k)
          true
          (is_error (P.decode_response cut))
      done)
    sample_responses

(* Flip one byte of the header in every position/value class. *)
let test_bad_header () =
  let frame = P.encode_request (P.Query { xpath = "//a"; timeout_ms = 0 }) in
  let with_byte i c =
    let b = Bytes.of_string frame in
    Bytes.set b i c;
    Bytes.to_string b
  in
  Alcotest.(check bool) "bad magic byte 0" true
    (is_error (P.decode_request (with_byte 0 'Z')));
  Alcotest.(check bool) "bad magic byte 1" true
    (is_error (P.decode_request (with_byte 1 'z')));
  Alcotest.(check bool) "bad version" true
    (is_error (P.decode_request (with_byte 2 '\x07')));
  (* An unknown request opcode in a well-formed frame is forward
     compatibility, not corruption: it decodes to [Unknown] so the
     server can answer [Unsupported] and keep the connection. *)
  Alcotest.(check bool) "unknown request opcode decodes as Unknown" true
    (P.decode_request (with_byte 3 '\x7f') = Ok (P.Unknown { op = 0x7f }));
  Alcotest.(check bool) "response opcode in a request" true
    (is_error (P.decode_request (P.encode_response P.Pong)));
  Alcotest.(check bool) "request opcode in a response" true
    (is_error (P.decode_response frame));
  (* Trailing garbage after a well-formed frame. *)
  Alcotest.(check bool) "appended bytes rejected" true
    (is_error (P.decode_request (frame ^ "x")))

let test_length_lies () =
  (* A header announcing more payload than the cap. *)
  let huge = Bytes.create P.header_size in
  Bytes.blit_string P.magic 0 huge 0 2;
  Bytes.set huge 2 (Char.chr P.version);
  Bytes.set huge 3 '\x01' (* Query *);
  Bytes.set_int32_le huge 4 (Int32.of_int (P.max_payload + 1));
  Alcotest.(check bool) "length above the cap rejected" true
    (is_error (P.decode_request (Bytes.to_string huge)));
  (* A negative length field. *)
  Bytes.set_int32_le huge 4 (-1l);
  Alcotest.(check bool) "negative length rejected" true
    (is_error (P.decode_request (Bytes.to_string huge)));
  (* A length field disagreeing with the actual payload. *)
  let frame = P.encode_request (P.Query { xpath = "//a"; timeout_ms = 0 }) in
  let b = Bytes.of_string frame in
  Bytes.set_int32_le b 4 (Int32.of_int (String.length frame));
  Alcotest.(check bool) "length/payload disagreement rejected" true
    (is_error (P.decode_request (Bytes.to_string b)));
  (* An inner count lying about how many items follow. *)
  let batch = P.encode_request (P.Query_batch { xpaths = [| "a" |]; timeout_ms = 0 }) in
  let b = Bytes.of_string batch in
  (* count sits after header (8) + timeout (4) *)
  Bytes.set_int32_le b 12 1000l;
  Alcotest.(check bool) "lying batch count rejected" true
    (is_error (P.decode_request (Bytes.to_string b)));
  let result = P.encode_response (P.Result { generation = 1; ids = [ 1; 2 ] }) in
  let b = Bytes.of_string result in
  (* id count sits after header (8) + generation (4) *)
  Bytes.set_int32_le b 12 1_000_000l;
  Alcotest.(check bool) "lying id count rejected" true
    (is_error (P.decode_response (Bytes.to_string b)))

(* A snapshot chunk whose data overruns the announced stream total is
   corruption, not forward compatibility — the receiver would write
   past the staging bounds. *)
let test_chunk_overrun_rejected () =
  let frame =
    P.encode_response
      (P.Snapshot_chunk
         {
           token = "t";
           total = 10;
           offset = 8;
           last = true;
           crc = 0L;
           data = "abc";
         })
  in
  Alcotest.(check bool) "chunk overrunning its stream rejected" true
    (is_error (P.decode_response frame))

(* No byte string of any shape may make the decoder raise. *)
let qcheck_never_raises =
  QCheck.Test.make ~count:2000 ~name:"garbage never raises"
    QCheck.(string_gen Gen.char)
    (fun junk ->
      (match P.decode_request junk with Ok _ | Error _ -> ());
      (match P.decode_response junk with Ok _ | Error _ -> ());
      true)

(* Single-byte mutations of valid frames either decode or reject — never
   raise (checksum-free format: some mutations inside string payloads
   legitimately still parse). *)
let qcheck_mutations_never_raise =
  QCheck.Test.make ~count:800 ~name:"bit flips never raise"
    QCheck.(pair arb_request (pair small_nat small_nat))
    (fun (r, (pos, byte)) ->
      let frame = Bytes.of_string (P.encode_request r) in
      let pos = pos mod Bytes.length frame in
      Bytes.set frame pos (Char.chr (byte mod 256));
      (match P.decode_request (Bytes.to_string frame) with
       | Ok _ | Error _ -> ());
      true)

(* --- incremental decoder -------------------------------------------------- *)

(* Drain everything the decoder can currently produce.  Returns the
   decoded frames in order plus the corruption verdict, if any. *)
let drain dec =
  let rec go acc =
    match P.Decoder.next dec with
    | P.Decoder.Frame f -> go (f :: acc)
    | P.Decoder.Need_more -> (List.rev acc, None)
    | P.Decoder.Corrupt why -> (List.rev acc, Some why)
  in
  go []

let sample_stream =
  String.concat "" (List.map P.encode_request sample_requests)

(* Feeding one byte at a time must produce exactly the frames that were
   encoded, byte for byte, in order — and each one must agree with the
   one-shot decoder. *)
let test_decoder_byte_at_a_time () =
  let dec = P.Decoder.create () in
  let out = ref [] in
  String.iteri
    (fun i _ ->
      P.Decoder.feed_string dec sample_stream i 1;
      let frames, corrupt = drain dec in
      Alcotest.(check bool) "no corruption in a valid stream" true
        (corrupt = None);
      out := !out @ frames)
    sample_stream;
  Alcotest.(check int) "nothing left buffered" 0 (P.Decoder.buffered dec);
  let want = List.map P.encode_request sample_requests in
  Alcotest.(check (list string)) "frames byte-for-byte" want !out;
  List.iter2
    (fun frame req ->
      Alcotest.(check bool) "agrees with one-shot decoder" true
        (P.decode_request frame = Ok req))
    !out sample_requests

(* Every proper prefix of a valid frame is Need_more — never a frame,
   never corruption — and the byte count is accounted exactly. *)
let test_decoder_truncation_everywhere () =
  List.iter
    (fun r ->
      let frame = P.encode_request r in
      for k = 0 to String.length frame - 1 do
        let dec = P.Decoder.create () in
        P.Decoder.feed_string dec frame 0 k;
        (match P.Decoder.next dec with
         | P.Decoder.Need_more -> ()
         | P.Decoder.Frame _ ->
           Alcotest.fail (Printf.sprintf "frame from a %d-byte prefix" k)
         | P.Decoder.Corrupt why ->
           Alcotest.fail
             (Printf.sprintf "corrupt from a %d-byte prefix: %s" k why));
        Alcotest.(check int) "buffered = bytes fed" k (P.Decoder.buffered dec)
      done)
    sample_requests

(* A hostile header is reported as Corrupt as soon as it is complete,
   and the verdict is sticky: feeding more bytes never revives the
   connection's stream. *)
let test_decoder_corrupt_sticky () =
  let dec = P.Decoder.create () in
  P.Decoder.feed_string dec "GARBAGE!" 0 8;
  (match P.Decoder.next dec with
   | P.Decoder.Corrupt _ -> ()
   | _ -> Alcotest.fail "want Corrupt for a garbage header");
  P.Decoder.feed_string dec sample_stream 0 (String.length sample_stream);
  match P.Decoder.next dec with
  | P.Decoder.Corrupt _ -> ()
  | _ -> Alcotest.fail "Corrupt must be sticky"

(* Random chunking: however a pipelined byte stream is sliced by the
   kernel, the decoded frames are identical. *)
let qcheck_decoder_chunking =
  QCheck.Test.make ~count:300 ~name:"random chunks decode identically"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 8) arb_request)
        (list_of_size Gen.(int_range 0 40) (int_range 1 64)))
    (fun (reqs, cuts) ->
      QCheck.assume (reqs <> []);
      let stream = String.concat "" (List.map P.encode_request reqs) in
      let dec = P.Decoder.create () in
      let out = ref [] in
      let pos = ref 0 in
      let cuts = ref (cuts @ [ String.length stream ]) in
      while !pos < String.length stream do
        let step =
          match !cuts with
          | c :: rest ->
            cuts := rest;
            min c (String.length stream - !pos)
          | [] -> String.length stream - !pos
        in
        P.Decoder.feed_string dec stream !pos step;
        pos := !pos + step;
        let frames, corrupt = drain dec in
        if corrupt <> None then QCheck.Test.fail_report "corrupt valid stream";
        out := !out @ frames
      done;
      !out = List.map P.encode_request reqs)

(* Bit flips anywhere in the stream: the decoder may report frames (a
   flip inside a string payload can still parse) or Corrupt, but it
   never raises and never loops. *)
let qcheck_decoder_bitflip_never_raises =
  QCheck.Test.make ~count:500 ~name:"bit flips never make the decoder raise"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 5) arb_request)
        (pair small_nat small_nat))
    (fun (reqs, (pos, byte)) ->
      let stream =
        Bytes.of_string (String.concat "" (List.map P.encode_request reqs))
      in
      Bytes.set stream
        (pos mod Bytes.length stream)
        (Char.chr (byte mod 256));
      let dec = P.Decoder.create () in
      P.Decoder.feed dec stream 0 (Bytes.length stream);
      (* Bounded by construction: every Frame consumes >= header_size
         bytes, Need_more/Corrupt terminate. *)
      ignore (drain dec);
      true)

(* The iovec encoder is the same bytes as the contiguous one. *)
let qcheck_iov_concat =
  QCheck.Test.make ~count:500 ~name:"iov concat = contiguous encoding"
    arb_response (fun r ->
      String.concat "" (P.encode_response_iov r) = P.encode_response r)

let test_iov_concat_exhaustive () =
  List.iter
    (fun r ->
      Alcotest.(check string)
        "iov concat = encode_response"
        (P.encode_response r)
        (String.concat "" (P.encode_response_iov r)))
    sample_responses

(* --- framed I/O over a real socketpair ----------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_read_frame () =
  (* A valid frame round-trips through the fd layer. *)
  with_socketpair (fun a b ->
      let frame = P.encode_request (P.Query { xpath = "//x"; timeout_ms = 1 }) in
      P.write_frame a frame;
      (match P.read_frame b with
       | Ok got -> Alcotest.(check string) "frame survives the fd" frame got
       | Error _ -> Alcotest.fail "valid frame rejected"));
  (* EOF before any byte. *)
  with_socketpair (fun a b ->
      Unix.close a;
      match P.read_frame b with
      | Error P.Eof -> ()
      | _ -> Alcotest.fail "want Eof");
  (* EOF inside the header and inside the payload. *)
  with_socketpair (fun a b ->
      let frame = P.encode_request (P.Query { xpath = "//x"; timeout_ms = 1 }) in
      ignore (Unix.write_substring a frame 0 5);
      Unix.close a;
      match P.read_frame b with
      | Error P.Truncated -> ()
      | _ -> Alcotest.fail "want Truncated (header)");
  with_socketpair (fun a b ->
      let frame = P.encode_request (P.Query { xpath = "//xyz"; timeout_ms = 1 }) in
      ignore (Unix.write_substring a frame 0 (String.length frame - 2));
      Unix.close a;
      match P.read_frame b with
      | Error P.Truncated -> ()
      | _ -> Alcotest.fail "want Truncated (payload)");
  (* Garbage magic is rejected from the header alone. *)
  with_socketpair (fun a b ->
      ignore (Unix.write_substring a "GARBAGE!" 0 8);
      Unix.close a;
      match P.read_frame b with
      | Error (P.Bad_header _) -> ()
      | _ -> Alcotest.fail "want Bad_header");
  (* A hostile length field is rejected before any payload allocation. *)
  with_socketpair (fun a b ->
      let h = Bytes.create P.header_size in
      Bytes.blit_string P.magic 0 h 0 2;
      Bytes.set h 2 (Char.chr P.version);
      Bytes.set h 3 '\x01';
      Bytes.set_int32_le h 4 0x7fffffffl;
      ignore (Unix.write a h 0 P.header_size);
      match P.read_frame b with
      | Error (P.Bad_header _) -> ()
      | _ -> Alcotest.fail "want Bad_header for oversized length")

let () =
  Alcotest.run "xserver protocol"
    [
      ( "codec",
        [
          Alcotest.test_case "exhaustive round trips" `Quick
            test_roundtrip_exhaustive;
          QCheck_alcotest.to_alcotest qcheck_roundtrip_request;
          QCheck_alcotest.to_alcotest qcheck_roundtrip_response;
        ] );
      ( "rejection",
        [
          Alcotest.test_case "truncation at every boundary" `Quick
            test_truncation_everywhere;
          Alcotest.test_case "bad magic/version/opcode" `Quick test_bad_header;
          Alcotest.test_case "length field lies" `Quick test_length_lies;
          Alcotest.test_case "snapshot chunk overrun" `Quick
            test_chunk_overrun_rejected;
          QCheck_alcotest.to_alcotest qcheck_never_raises;
          QCheck_alcotest.to_alcotest qcheck_mutations_never_raise;
        ] );
      ( "incremental decoder",
        [
          Alcotest.test_case "byte at a time" `Quick
            test_decoder_byte_at_a_time;
          Alcotest.test_case "truncation at every byte" `Quick
            test_decoder_truncation_everywhere;
          Alcotest.test_case "corrupt is sticky" `Quick
            test_decoder_corrupt_sticky;
          QCheck_alcotest.to_alcotest qcheck_decoder_chunking;
          QCheck_alcotest.to_alcotest qcheck_decoder_bitflip_never_raises;
          Alcotest.test_case "iov exhaustive" `Quick test_iov_concat_exhaustive;
          QCheck_alcotest.to_alcotest qcheck_iov_concat;
        ] );
      ("framed io", [ Alcotest.test_case "read_frame" `Quick test_read_frame ]);
    ]
