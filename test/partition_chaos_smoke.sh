#!/bin/sh
# Partition chaos smoke: a deterministic network partition against a
# live semi-sync pair, driven through the installed CLI as separate OS
# processes.
#
#   1. primary + auto-promoting follower, semi-sync (--sync-replicas 1);
#   2. a deterministic client-side black hole (XSEQ_FAULT_SCHEDULE) on
#      the first connect: the multi-endpoint client must rotate past the
#      black-holed endpoint and still answer;
#   3. black-hole the primary itself (SIGSTOP: the socket stays open,
#      nothing flows — a partition, not a crash), wait out the
#      heartbeat timeout: the follower must auto-promote on a bumped
#      epoch and take writes;
#   4. heal the partition (SIGCONT): the old primary has no follower
#      left, so a semi-sync mutation against it must FAIL (no
#      split-brain ack), not land;
#   5. re-seat the old primary as a follower of the new one (the
#      operator drill for a deposed node): it converges and answers
#      mutations with Not_primary (exit 5) — fenced.
#
# Exit 0 on success, 1 with a message on any violation.  The fault
# schedule in play is printed on every failure so the run replays.
set -u

XSEQ=${XSEQ:-_build/default/bin/xseq_cli.exe}
N_BEFORE=${N_BEFORE:-8}
N_AFTER=${N_AFTER:-4}
SCHEDULE=${SCHEDULE:-connect@0:black_hole:1}

work=$(mktemp -d /tmp/xseq_partition.XXXXXX)
p_pid=""
f_pid=""

cleanup() {
  [ -n "$p_pid" ] && kill -9 "$p_pid" 2>/dev/null
  [ -n "$f_pid" ] && kill -9 "$f_pid" 2>/dev/null
  wait 2>/dev/null
  rm -rf "$work"
}
trap cleanup EXIT INT TERM

fail() {
  echo "FAIL: $* (schedule: $SCHEDULE)" >&2
  echo "--- primary log ---" >&2
  cat "$work/primary.log" >&2 2>/dev/null
  echo "--- follower log ---" >&2
  cat "$work/follower.log" >&2 2>/dev/null
  exit 1
}

wait_sock() {
  for _ in $(seq 1 100); do
    [ -S "$1" ] && return 0
    sleep 0.1
  done
  fail "socket $1 never appeared"
}

next_id() {
  "$XSEQ" repl-status "$1" 2>/dev/null | grep -o 'next id [0-9]*' \
    | awk '{print $3}'
}

role_of() {
  "$XSEQ" repl-status "$1" 2>/dev/null | awk '{print $2}'
}

epoch_of() {
  "$XSEQ" repl-status "$1" 2>/dev/null | grep -o 'epoch [0-9]*' \
    | awk '{print $2}'
}

P="unix:$work/p.sock"
F="unix:$work/f.sock"

for i in $(seq 1 $((N_BEFORE + N_AFTER))); do
  "$XSEQ" gen --kind dblp -n 1 --seed "$i" -o "$work/rec$i.xml" 2>/dev/null \
    || fail "gen rec$i"
done

"$XSEQ" serve --live "$work/primary" --socket "$work/p.sock" \
  --advertise "$P" --peers "$F" --sync-replicas 1 --ack-timeout-ms 2000 \
  >"$work/primary.log" 2>&1 &
p_pid=$!
wait_sock "$work/p.sock"

"$XSEQ" serve --live "$work/follower" --socket "$work/f.sock" \
  --advertise "$F" --follow "$P" --peers "$P" \
  --auto-promote --heartbeat-timeout-ms 1000 \
  >"$work/follower.log" 2>&1 &
f_pid=$!
wait_sock "$work/f.sock"

# --- converge the pair -------------------------------------------------------
i=1
while [ "$i" -le "$N_BEFORE" ]; do
  "$XSEQ" ingest --connect "$P" "$work/rec$i.xml" >/dev/null 2>&1 \
    || fail "semi-sync ingest rec$i"
  i=$((i + 1))
done
for _ in $(seq 1 100); do
  got=$(next_id "$F")
  [ -n "$got" ] && [ "$got" -eq "$N_BEFORE" ] && break
  sleep 0.1
done
[ "$(next_id "$F")" -eq "$N_BEFORE" ] || fail "follower never caught up"

# --- a deterministic client-side black hole ----------------------------------
# The armed schedule times out the client's first connect (the primary
# endpoint); the rotation must land the read on the follower anyway.
XSEQ_FAULT_SCHEDULE="$SCHEDULE" \
  "$XSEQ" query --endpoints "$P,$F" --timeout-ms 8000 '//author' \
  >/dev/null 2>&1 \
  || fail "client did not rotate past the black-holed endpoint"

# --- partition the primary ---------------------------------------------------
kill -STOP "$p_pid" || fail "could not SIGSTOP the primary"

# Heartbeat timeout -> election -> self-promotion on a bumped epoch.
promoted=""
for _ in $(seq 1 150); do
  if [ "$(role_of "$F")" = "primary" ]; then promoted=1; break; fi
  sleep 0.1
done
[ -n "$promoted" ] || fail "follower never auto-promoted behind the partition"
new_epoch=$(epoch_of "$F")
[ "${new_epoch:-0}" -ge 1 ] || fail "promotion did not bump the epoch"

# The new primary takes writes.
i=$((N_BEFORE + 1))
while [ "$i" -le $((N_BEFORE + N_AFTER)) ]; do
  "$XSEQ" ingest --connect "$F" "$work/rec$i.xml" >/dev/null 2>&1 \
    || fail "new primary rejected rec$i after auto-promotion"
  i=$((i + 1))
done

# --- heal the partition ------------------------------------------------------
kill -CONT "$p_pid" || fail "could not SIGCONT the primary"

# The deposed primary has no follower: a semi-sync mutation against it
# must fail (timeout, never a split-brain ack).
if "$XSEQ" ingest --connect "$P" "$work/rec1.xml" >/dev/null 2>&1; then
  fail "deposed primary acknowledged a write after the heal (split brain)"
fi

# --- re-seat the old primary under the new one -------------------------------
kill -9 "$p_pid" 2>/dev/null
p_pid=""
rm -f "$work/p.sock"
rm -rf "$work/primary"

"$XSEQ" serve --live "$work/primary" --socket "$work/p.sock" \
  --advertise "$P" --follow "$F" >"$work/primary.log" 2>&1 &
p_pid=$!
wait_sock "$work/p.sock"

want=$(next_id "$F")
for _ in $(seq 1 100); do
  got=$(next_id "$P")
  [ -n "$got" ] && [ "$got" -eq "$want" ] && break
  sleep 0.1
done
[ "$(next_id "$P")" -eq "$want" ] || fail "re-seated node never converged"
[ "$(role_of "$P")" = "follower" ] || fail "re-seated node is not a follower"

# Fenced: mutations against it answer Not_primary (exit 5).
"$XSEQ" ingest --connect "$P" "$work/rec1.xml" >/dev/null 2>&1
rc=$?
[ "$rc" -eq 5 ] || fail "fenced node answered a mutation with exit $rc, want 5"

echo "partition chaos smoke OK: black-holed client rotated, follower" \
  "auto-promoted to epoch $new_epoch, deposed primary refused writes and" \
  "re-seated as a fenced follower at watermark $want"
