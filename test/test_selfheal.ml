(* Self-healing cluster, offline half: the snapshot transfer codec
   (manifest -> chunked stream -> staged install) survives chunking at
   awkward sizes, abandonment mid-stage and kill-9-shaped restarts; a
   committed install is idempotent and equals the primary at the cut;
   [Xlog.reseed] swaps a live handle onto the installed snapshot; and
   the anti-entropy scrubber detects every seeded bit flip, quarantines
   the store (mutations refused, reads still served) and counts the
   repair when a clean pass follows.  Violations print the (seed, file,
   offset) triple so a failure replays. *)

module T = Xmlcore.Xml_tree
module Wal = Xlog.Wal
module Transfer = Xlog.Transfer
module Scrub = Xlog.Scrub

let e = T.elt
let v = T.text

(* --- scratch directories --------------------------------------------------- *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let dir_seq = ref 0

let with_dir f =
  incr dir_seq;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "selfheal-test-%d-%d" (Unix.getpid ()) !dir_seq)
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* --- shared helpers --------------------------------------------------------- *)

let doc i =
  e "P"
    [
      e "L" [ v (string_of_int i) ];
      (if i mod 3 = 0 then e "S" [] else e "B" [ v "y" ]);
    ]

let xpaths = [ "/P/L"; "//S"; "/P//B"; "//Q" ]

let check_same_answers what a b =
  List.iter
    (fun xp ->
      let ga = Xlog.query_xpath a xp and gb = Xlog.query_xpath b xp in
      if ga <> gb then
        Alcotest.failf "%s: %s diverges ([%s] vs [%s])" what xp
          (String.concat ";" (List.map string_of_int ga))
          (String.concat ";" (List.map string_of_int gb)))
    xpaths;
  Alcotest.(check int) (what ^ ": doc_count") (Xlog.doc_count a)
    (Xlog.doc_count b);
  Alcotest.(check int) (what ^ ": next_id") (Xlog.next_id a) (Xlog.next_id b)

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_wal_mirror what primary_dir follower_dir =
  let p = Wal.list_files primary_dir and f = Wal.list_files follower_dir in
  Alcotest.(check (list int))
    (what ^ ": same WAL file sequence")
    (List.map fst p) (List.map fst f);
  List.iter2
    (fun (i, pp) (_, fp) ->
      if not (String.equal (read_whole pp) (read_whole fp)) then
        Alcotest.failf "%s: wal-%06d.log diverges" what i)
    p f

(* Drain the primary's WAL into the follower from the follower's own
   log end — what the replication thread does after a reseed. *)
let catch_up ~src dst =
  let rec go guard =
    if guard = 0 then Alcotest.fail "catch_up: no progress";
    let pos = Xlog.wal_position dst in
    match Wal.tail ~dir:src ~max_bytes:4096 pos with
    | Error err ->
      Alcotest.failf "tail %s: %s"
        (Wal.position_to_string pos)
        (Wal.tail_error_to_string err)
    | Ok b ->
      if Wal.position_compare b.Wal.b_next pos = 0 then ()
      else begin
        (match
           Xlog.replica_apply dst ~from:pos ~next:b.Wal.b_next b.Wal.b_records
         with
        | Ok _ -> ()
        | Error m -> Alcotest.failf "replica_apply: %s" m);
        go (guard - 1)
      end
  in
  go 10_000

(* A primary with a checkpoint (compact) plus a WAL suffix past the
   cut, so the transfer carries all three stream shapes: checkpoint,
   base snapshot, WAL prefix. *)
let build_primary dir =
  let log = Xlog.open_ ~sync_every:1 ~memtable_limit:8 dir in
  for i = 0 to 24 do
    ignore (Xlog.insert log (doc i) : int)
  done;
  ignore (Xlog.remove log 3 : bool);
  ignore (Xlog.compact ~wait:true log : bool);
  for i = 25 to 31 do
    ignore (Xlog.insert log (doc i) : int)
  done;
  Xlog.sync log;
  log

(* Stream [mf] from [src] into [dst]'s staging dir in [chunk]-byte
   pieces, starting at the receiver's resume cursor. *)
let stream ~chunk src mf recv =
  let rec go () =
    let off = Transfer.recv_got recv in
    if off < mf.Transfer.x_total then begin
      (match Transfer.read_slice src mf ~off ~len:chunk with
      | Error m -> Alcotest.failf "read_slice at %d: %s" off m
      | Ok piece -> (
        match Transfer.recv_write recv piece with
        | Ok () -> ()
        | Error m -> Alcotest.failf "recv_write at %d: %s" off m));
      go ()
    end
  in
  go ()

(* --- snapshot transfer ------------------------------------------------------ *)

(* The full pipeline at several chunk sizes, including one that never
   aligns with file boundaries: stage, commit, install, open — the
   follower equals the primary at the cut, then converges byte-for-byte
   once it tails the suffix. *)
let test_transfer_roundtrip () =
  List.iter
    (fun chunk ->
      with_dir (fun pdir ->
          with_dir (fun fdir ->
              let primary = build_primary pdir in
              let mf =
                match Transfer.manifest_of_dir pdir with
                | Ok m -> m
                | Error m -> Alcotest.failf "manifest: %s" m
              in
              Alcotest.(check bool) "token is the checkpoint checksum" false
                (String.equal mf.Transfer.x_token "empty");
              let recv = Transfer.recv_create fdir in
              stream ~chunk pdir mf recv;
              (match Transfer.recv_finish recv with
              | Ok () -> ()
              | Error m -> Alcotest.failf "recv_finish: %s" m);
              Alcotest.(check bool) "install commits" true
                (Transfer.install_ready fdir);
              Alcotest.(check bool) "second install is a no-op" false
                (Transfer.install_ready fdir);
              let follower = Xlog.open_ ~sync_every:1 ~memtable_limit:8 fdir in
              (* At the cut: behind the primary by the WAL suffix. *)
              Alcotest.(check bool) "follower is at the cut" true
                (Xlog.next_id follower < Xlog.next_id primary);
              catch_up ~src:pdir follower;
              check_same_answers
                (Printf.sprintf "chunk %d" chunk)
                primary follower;
              check_wal_mirror
                (Printf.sprintf "chunk %d" chunk)
                pdir fdir;
              Xlog.close follower;
              Xlog.close primary)))
    [ 777; 64 * 1024; max_int ]

(* Kill -9 shapes: an abandoned staging dir is invisible to [open_]; a
   committed [xfer.ready] is installed by the next [open_] without any
   explicit install call. *)
let test_transfer_crash_safe () =
  with_dir (fun pdir ->
      with_dir (fun fdir ->
          let primary = build_primary pdir in
          let mf =
            match Transfer.manifest_of_dir pdir with
            | Ok m -> m
            | Error m -> Alcotest.failf "manifest: %s" m
          in
          (* Crash mid-stage: half the stream lands, then the process
             dies (we just stop calling).  The store opens empty. *)
          let recv = Transfer.recv_create fdir in
          (match
             Transfer.read_slice pdir mf ~off:0 ~len:(mf.Transfer.x_total / 2)
           with
          | Ok piece -> (
            match Transfer.recv_write recv piece with
            | Ok () -> ()
            | Error m -> Alcotest.failf "recv_write: %s" m)
          | Error m -> Alcotest.failf "read_slice: %s" m);
          let ghost = Xlog.open_ fdir in
          Alcotest.(check int) "abandoned stage leaves an empty store" 0
            (Xlog.doc_count ghost);
          Xlog.close ghost;
          (* Restart the transfer from scratch (a new receiver discards
             the stale staging dir), commit, but crash before the
             install: [open_] completes it. *)
          let recv = Transfer.recv_create fdir in
          stream ~chunk:8192 pdir mf recv;
          (match Transfer.recv_finish recv with
          | Ok () -> ()
          | Error m -> Alcotest.failf "recv_finish: %s" m);
          Alcotest.(check bool) "xfer.ready is committed" true
            (Sys.file_exists (Filename.concat fdir "xfer.ready"));
          let follower = Xlog.open_ ~sync_every:1 fdir in
          Alcotest.(check bool) "open installed the committed snapshot" true
            (Xlog.doc_count follower > 0);
          catch_up ~src:pdir follower;
          check_same_answers "post-crash install" primary follower;
          Xlog.close follower;
          Xlog.close primary))

(* A corrupted stream must be refused at commit time, never installed:
   flip one bit mid-stream and recv_finish fails. *)
let test_transfer_rejects_corruption () =
  with_dir (fun pdir ->
      with_dir (fun fdir ->
          let primary = build_primary pdir in
          let mf =
            match Transfer.manifest_of_dir pdir with
            | Ok m -> m
            | Error m -> Alcotest.failf "manifest: %s" m
          in
          let whole =
            match Transfer.read_slice pdir mf ~off:0 ~len:mf.Transfer.x_total with
            | Ok s -> s
            | Error m -> Alcotest.failf "read_slice: %s" m
          in
          (* Flip a bit well past the header, inside file payload. *)
          let bytes = Bytes.of_string whole in
          let at = String.length mf.Transfer.x_header + (Bytes.length bytes / 2) in
          let at = min at (Bytes.length bytes - 1) in
          Bytes.set bytes at (Char.chr (Char.code (Bytes.get bytes at) lxor 0x10));
          let recv = Transfer.recv_create fdir in
          (match Transfer.recv_write recv (Bytes.to_string bytes) with
          | Ok () -> (
            match Transfer.recv_finish recv with
            | Ok () -> Alcotest.failf "corrupt stream committed (flip at %d)" at
            | Error _ -> ())
          | Error _ -> (* refused even earlier: also fine *) ());
          Alcotest.(check bool) "nothing was committed" false
            (Sys.file_exists (Filename.concat fdir "xfer.ready"));
          let ghost = Xlog.open_ fdir in
          Alcotest.(check int) "store is still empty" 0 (Xlog.doc_count ghost);
          Xlog.close ghost;
          Xlog.close primary))

(* [Xlog.reseed]: the live-handle install a running follower uses.  The
   handle keeps serving, lands on the snapshot cut, and tails the
   suffix to convergence. *)
let test_reseed_live_handle () =
  with_dir (fun pdir ->
      with_dir (fun fdir ->
          let primary = build_primary pdir in
          let follower = Xlog.open_ ~sync_every:1 ~memtable_limit:8 fdir in
          (* Nothing staged yet: reseed must refuse, not wipe. *)
          (match Xlog.reseed follower with
          | Error _ -> ()
          | Ok () -> Alcotest.fail "reseed with nothing staged succeeded");
          let mf =
            match Transfer.manifest_of_dir pdir with
            | Ok m -> m
            | Error m -> Alcotest.failf "manifest: %s" m
          in
          let recv = Transfer.recv_create fdir in
          stream ~chunk:4096 pdir mf recv;
          (match Transfer.recv_finish recv with
          | Ok () -> ()
          | Error m -> Alcotest.failf "recv_finish: %s" m);
          (match Xlog.reseed follower with
          | Ok () -> ()
          | Error m -> Alcotest.failf "reseed: %s" m);
          Alcotest.(check bool) "handle landed on the cut" true
            (Xlog.doc_count follower > 0);
          catch_up ~src:pdir follower;
          check_same_answers "after live reseed" primary follower;
          check_wal_mirror "after live reseed" pdir fdir;
          Xlog.close follower;
          Xlog.close primary))

(* An empty primary (no checkpoint yet) answers token "empty" and an
   entry-less stream; installing it converges an empty follower. *)
let test_transfer_empty_primary () =
  with_dir (fun pdir ->
      with_dir (fun fdir ->
          let primary = Xlog.open_ pdir in
          let mf =
            match Transfer.manifest_of_dir pdir with
            | Ok m -> m
            | Error m -> Alcotest.failf "manifest: %s" m
          in
          Alcotest.(check string) "empty token" "empty" mf.Transfer.x_token;
          let recv = Transfer.recv_create fdir in
          stream ~chunk:4096 pdir mf recv;
          (match Transfer.recv_finish recv with
          | Ok () -> ()
          | Error m -> Alcotest.failf "recv_finish: %s" m);
          ignore (Transfer.install_ready fdir : bool);
          let follower = Xlog.open_ fdir in
          Alcotest.(check int) "both empty" 0 (Xlog.doc_count follower);
          catch_up ~src:pdir follower;
          check_same_answers "empty primary" primary follower;
          Xlog.close follower;
          Xlog.close primary))

(* --- anti-entropy scrub ----------------------------------------------------- *)

(* Flip bit [bit] of byte [off] in [path]; returns the undo closure. *)
let flip_bit path ~off ~bit =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      ignore (Unix.lseek fd off Unix.SEEK_SET : int);
      let b = Bytes.create 1 in
      ignore (Unix.read fd b 0 1 : int);
      let orig = Bytes.get b 0 in
      Bytes.set b 0 (Char.chr (Char.code orig lxor (1 lsl bit)));
      ignore (Unix.lseek fd off Unix.SEEK_SET : int);
      ignore (Unix.write fd b 0 1 : int);
      fun () ->
        let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            ignore (Unix.lseek fd off Unix.SEEK_SET : int);
            let b = Bytes.make 1 orig in
            ignore (Unix.write fd b 0 1 : int)))

let file_size path = (Unix.stat path).Unix.st_size

(* Every file the scrubber covers in [dir]: checkpoint, base snapshots,
   WAL logs. *)
let scrubbable_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         f = "checkpoint"
         || Filename.check_suffix f ".xseq"
         || (String.length f > 4 && String.sub f 0 4 = "wal-"))
  |> List.sort compare

(* Seeded torture: for each seed, flip one random bit in one random
   scrubbable file; the offline scrub must name that file, and the
   restored store must scrub clean again.  The fsync frontier covers
   the newest WAL file, so flips there are errors too — 100% detection.
   A miss prints the (seed, file, offset, bit) tuple for replay. *)
let test_scrub_detects_flips () =
  with_dir (fun dir ->
      let log = Xlog.open_ ~sync_every:1 ~memtable_limit:8 dir in
      (* Keep every WAL file so the corpus has pruned-era files too. *)
      Xlog.set_wal_retention log (fun () -> Some 0);
      for i = 0 to 24 do
        ignore (Xlog.insert log (doc i) : int)
      done;
      ignore (Xlog.compact ~wait:true log : bool);
      for i = 25 to 34 do
        ignore (Xlog.insert log (doc i) : int)
      done;
      Xlog.sync log;
      let durable = Xlog.wal_durable_position log in
      Xlog.close log;
      let files = scrubbable_files dir in
      Alcotest.(check bool) "corpus has checkpoint+base+wals" true
        (List.length files >= 4);
      let durable = (durable.Wal.file, durable.Wal.off) in
      (match Scrub.scrub_dir ~durable dir with
      | { Scrub.errors = []; _ } -> ()
      | { Scrub.errors = (f, m) :: _; _ } ->
        Alcotest.failf "pristine store scrubs dirty: %s: %s" f m);
      List.iter
        (fun seed ->
          let st = Random.State.make [| seed; 0x5cab |] in
          let name = List.nth files (Random.State.int st (List.length files)) in
          let path = Filename.concat dir name in
          let size = file_size path in
          (* Skip degenerate empty files (none expected). *)
          if size > 0 then begin
            let off = Random.State.int st size in
            let bit = Random.State.int st 8 in
            let undo = flip_bit path ~off ~bit in
            let report = Scrub.scrub_dir ~durable dir in
            let hit = List.exists (fun (f, _) -> f = name) report.Scrub.errors in
            if not hit then
              Alcotest.failf
                "missed flip: seed=%d file=%s off=%d bit=%d (errors: %s)" seed
                name off bit
                (String.concat "; "
                   (List.map
                      (fun (f, m) -> f ^ ": " ^ m)
                      report.Scrub.errors));
            undo ();
            match Scrub.scrub_dir ~durable dir with
            | { Scrub.errors = []; _ } -> ()
            | { Scrub.errors = (f, m) :: _; _ } ->
              Alcotest.failf
                "restore did not heal: seed=%d file=%s off=%d bit=%d: %s: %s"
                seed name off bit f m
          end)
        (List.init 40 Fun.id))

(* The live quarantine state machine: a dirty pass quarantines (inserts
   refused, queries answered, repair hook fired); restoring the bytes
   and passing clean lifts the quarantine and counts a repair. *)
let test_scrub_quarantine_and_repair () =
  with_dir (fun dir ->
      let log = Xlog.open_ ~sync_every:1 ~memtable_limit:8 dir in
      for i = 0 to 24 do
        ignore (Xlog.insert log (doc i) : int)
      done;
      ignore (Xlog.compact ~wait:true log : bool);
      let base =
        match
          List.filter
            (fun f -> Filename.check_suffix f ".xseq")
            (Array.to_list (Sys.readdir dir))
        with
        | f :: _ -> Filename.concat dir f
        | [] -> Alcotest.fail "no base snapshot after compact"
      in
      let repairs_requested = ref [] in
      let sc = Scrub.create ~interval:3600. ~rate_mb_s:0. log in
      Scrub.set_repair sc (fun diag ->
          repairs_requested := diag :: !repairs_requested);
      (* Clean store: clean pass, no quarantine. *)
      let r0 = Scrub.run_once sc in
      Alcotest.(check int) "pristine pass is clean" 0
        (List.length r0.Scrub.errors);
      (* Corrupt a base region on disk. *)
      let undo = flip_bit base ~off:(file_size base / 2) ~bit:3 in
      let r1 = Scrub.run_once sc in
      Alcotest.(check bool) "dirty pass reports the flip" true
        (r1.Scrub.errors <> []);
      let s1 = Scrub.stats sc in
      Alcotest.(check bool) "quarantined" true s1.Scrub.quarantined;
      Alcotest.(check bool) "errors counted" true (s1.Scrub.errors_found > 0);
      Alcotest.(check bool) "repair hook fired" true (!repairs_requested <> []);
      Alcotest.(check bool) "diagnosis is sticky" true
        (s1.Scrub.last_error <> "");
      (* Quarantine semantics: mutations refused, reads still served. *)
      (match Xlog.insert log (doc 99) with
      | exception Xlog.Degraded _ -> ()
      | _ -> Alcotest.fail "insert accepted while quarantined");
      Alcotest.(check bool) "queries still answer under quarantine" true
        (Xlog.query_xpath log "/P/L" <> []);
      (* Heal the bytes (what a snapshot re-fetch does) and pass again:
         quarantine lifts, the repair is counted, writes resume. *)
      undo ();
      let r2 = Scrub.run_once sc in
      Alcotest.(check int) "healed pass is clean" 0
        (List.length r2.Scrub.errors);
      let s2 = Scrub.stats sc in
      Alcotest.(check bool) "quarantine lifted" false s2.Scrub.quarantined;
      Alcotest.(check bool) "repair counted" true (s2.Scrub.repairs > 0);
      ignore (Xlog.insert log (doc 100) : int);
      Xlog.close log)

(* The periodic thread end to end: start, let it pass at a short
   interval, stop; the pass counter moved and nothing was flagged. *)
let test_scrubber_thread () =
  with_dir (fun dir ->
      let log = Xlog.open_ ~sync_every:1 dir in
      for i = 0 to 9 do
        ignore (Xlog.insert log (doc i) : int)
      done;
      ignore (Xlog.compact ~wait:true log : bool);
      let sc = Scrub.create ~interval:0.05 ~rate_mb_s:0. log in
      Scrub.start sc;
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec wait () =
        if (Scrub.stats sc).Scrub.passes >= 2 then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "scrubber thread made no passes in 5s"
        else begin
          Thread.delay 0.02;
          wait ()
        end
      in
      wait ();
      Scrub.stop sc;
      let s = Scrub.stats sc in
      Alcotest.(check bool) "passes accumulated" true (s.Scrub.passes >= 2);
      Alcotest.(check int) "clean store, no errors" 0 s.Scrub.errors_found;
      Alcotest.(check bool) "bytes were actually read" true (s.Scrub.bytes > 0);
      Xlog.close log)

(* Offline scrub has no fsync frontier, so a tear on the newest WAL
   file normally reads as a recoverable torn tail — but not behind the
   checkpoint's covered offset, which proves those bytes were once
   durable.  A mid-file checkpoint (compact ~rotate:false) makes the
   checkpoint file the newest file: a flip behind the cut must surface
   with no [~durable] passed, while one past the cut stays lenient. *)
let test_scrub_offline_checkpoint_frontier () =
  with_dir (fun dir ->
      let log = Xlog.open_ ~sync_every:1 ~memtable_limit:8 dir in
      for i = 0 to 24 do
        ignore (Xlog.insert log (doc i) : int)
      done;
      ignore (Xlog.compact ~wait:true ~rotate:false log : bool);
      let cut = Xlog.wal_durable_position log in
      for i = 25 to 29 do
        ignore (Xlog.insert log (doc i) : int)
      done;
      Xlog.sync log;
      Xlog.close log;
      let wal = Filename.concat dir (Printf.sprintf "wal-%06d.log" cut.file) in
      let r0 = Scrub.scrub_dir dir in
      Alcotest.(check int) "pristine dir is clean" 0
        (List.length r0.Scrub.errors);
      (* Behind the checkpoint cut: once-durable bytes, must surface. *)
      let undo = flip_bit wal ~off:(cut.off / 2) ~bit:5 in
      let r1 = Scrub.scrub_dir dir in
      Alcotest.(check bool) "flip behind the checkpoint cut detected" true
        (List.exists
           (fun (name, _) -> String.equal name (Filename.basename wal))
           r1.Scrub.errors);
      undo ();
      (* Past the cut: indistinguishable from a crash mid-write. *)
      let tail_off = (cut.off + file_size wal) / 2 in
      let undo2 = flip_bit wal ~off:tail_off ~bit:5 in
      let r2 = Scrub.scrub_dir dir in
      Alcotest.(check int) "tear past the cut stays a recoverable tail" 0
        (List.length r2.Scrub.errors);
      undo2 ();
      let r3 = Scrub.scrub_dir dir in
      Alcotest.(check int) "restored dir is clean" 0
        (List.length r3.Scrub.errors))

let () =
  Alcotest.run "selfheal"
    [
      ( "transfer",
        [
          Alcotest.test_case "chunked round trip" `Quick test_transfer_roundtrip;
          Alcotest.test_case "crash-safe staging and install" `Quick
            test_transfer_crash_safe;
          Alcotest.test_case "corrupt stream refused" `Quick
            test_transfer_rejects_corruption;
          Alcotest.test_case "live reseed" `Quick test_reseed_live_handle;
          Alcotest.test_case "empty primary" `Quick test_transfer_empty_primary;
        ] );
      ( "scrub",
        [
          Alcotest.test_case "seeded flips all detected" `Quick
            test_scrub_detects_flips;
          Alcotest.test_case "quarantine and repair" `Quick
            test_scrub_quarantine_and_repair;
          Alcotest.test_case "periodic thread" `Quick test_scrubber_thread;
          Alcotest.test_case "offline checkpoint frontier" `Quick
            test_scrub_offline_checkpoint_frontier;
        ] );
    ]
