(* The utility layer: growable vectors, binary searches and the domain
   pool. *)

module Ivec = Xutil.Ivec
module Bs = Xutil.Binsearch
module Pool = Xutil.Domain_pool

let test_ivec_basics () =
  let v = Ivec.create () in
  Alcotest.(check int) "empty" 0 (Ivec.length v);
  for i = 0 to 99 do
    Ivec.push v (i * 2)
  done;
  Alcotest.(check int) "length" 100 (Ivec.length v);
  Alcotest.(check int) "get" 84 (Ivec.get v 42);
  Ivec.set v 42 7;
  Alcotest.(check int) "set" 7 (Ivec.get v 42);
  Alcotest.(check int) "to_array" 100 (Array.length (Ivec.to_array v));
  Alcotest.(check bool) "backing array big enough" true
    (Array.length (Ivec.unsafe_data v) >= 100)

let test_ivec_bounds () =
  let v = Ivec.create ~capacity:2 () in
  Ivec.push v 1;
  Alcotest.check_raises "get oob" (Invalid_argument "Ivec.get") (fun () ->
      ignore (Ivec.get v 1));
  Alcotest.check_raises "set oob" (Invalid_argument "Ivec.set") (fun () ->
      Ivec.set v (-1) 0)

let test_binsearch () =
  let a = [| 1; 3; 3; 3; 7; 9 |] in
  let len = Array.length a in
  Alcotest.(check int) "lower_bound hit" 1 (Bs.lower_bound a ~len 3);
  Alcotest.(check int) "lower_bound miss" 4 (Bs.lower_bound a ~len 4);
  Alcotest.(check int) "lower_bound before" 0 (Bs.lower_bound a ~len 0);
  Alcotest.(check int) "lower_bound after" 6 (Bs.lower_bound a ~len 100);
  Alcotest.(check int) "upper_bound hit" 4 (Bs.upper_bound a ~len 3);
  Alcotest.(check int) "upper_bound after" 6 (Bs.upper_bound a ~len 9);
  Alcotest.(check int) "floor hit" 3 (Bs.floor_index a ~len 3);
  Alcotest.(check int) "floor miss" 3 (Bs.floor_index a ~len 6);
  Alcotest.(check int) "floor before" (-1) (Bs.floor_index a ~len 0);
  (* len smaller than the physical array restricts the view *)
  Alcotest.(check int) "restricted len" 2 (Bs.upper_bound a ~len:2 5)

let prop_bounds =
  QCheck.Test.make ~name:"bounds agree with linear scans" ~count:500
    QCheck.(pair (list small_nat) small_nat)
    (fun (l, x) ->
      let a = Array.of_list (List.sort Stdlib.compare l) in
      let len = Array.length a in
      let lb = ref len and ub = ref len in
      (try
         for i = 0 to len - 1 do
           if a.(i) >= x then begin
             lb := i;
             raise Exit
           end
         done
       with Exit -> ());
      (try
         for i = 0 to len - 1 do
           if a.(i) > x then begin
             ub := i;
             raise Exit
           end
         done
       with Exit -> ());
      Xutil.Binsearch.lower_bound a ~len x = !lb
      && Xutil.Binsearch.upper_bound a ~len x = !ub
      && Xutil.Binsearch.floor_index a ~len x = !ub - 1)

(* --- domain pool ----------------------------------------------------------- *)

exception Boom of int

let test_pool_ordering () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          Alcotest.(check int) "size" domains (Pool.size p);
          let thunks = Array.init 37 (fun i () -> i * i) in
          Alcotest.(check (array int))
            (Printf.sprintf "run order (%d domains)" domains)
            (Array.init 37 (fun i -> i * i))
            (Pool.run p thunks);
          (* several batches on the same pool *)
          Alcotest.(check (array int))
            "second batch"
            (Array.init 5 (fun i -> i + 1))
            (Pool.run p (Array.init 5 (fun i () -> i + 1)))))
    [ 1; 2; 4 ]

let test_pool_map_matches_sequential () =
  let arr = Array.init 101 (fun i -> i - 50) in
  let f x = (x * 3) + 1 in
  let expect = Array.map f arr in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          Alcotest.(check (array int)) "map" expect (Pool.map p f arr);
          Alcotest.(check (array int))
            "map, 3 chunks" expect
            (Pool.map ~chunks:3 p f arr);
          Alcotest.(check (array int))
            "mapi"
            (Array.mapi (fun i x -> i + x) arr)
            (Pool.mapi p (fun i x -> i + x) arr);
          Alcotest.(check (array int)) "empty" [||] (Pool.map p f [||])))
    [ 1; 2; 4 ]

let test_pool_iter () =
  Pool.with_pool ~domains:3 (fun p ->
      let hits = Array.make 20 0 in
      (* Distinct slots per element: no two domains write the same cell. *)
      Pool.iter p (fun i -> hits.(i) <- hits.(i) + 1) (Array.init 20 Fun.id);
      Alcotest.(check (array int)) "each exactly once" (Array.make 20 1) hits)

let test_pool_exception_lowest_index () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          let thunks =
            Array.init 16 (fun i () ->
                if i mod 5 = 3 then raise (Boom i) else i)
          in
          (* Failing tasks are 3, 8, 13; the lowest index must win
             regardless of completion order. *)
          match Pool.run p thunks with
          | _ -> Alcotest.fail "expected Boom"
          | exception Boom i ->
            Alcotest.(check int)
              (Printf.sprintf "lowest failing index (%d domains)" domains)
              3 i))
    [ 1; 2; 4 ]

let test_pool_shutdown () =
  let p = Pool.create ~domains:2 () in
  Alcotest.(check (array int)) "works" [| 1 |] (Pool.run p [| (fun () -> 1) |]);
  Pool.shutdown p;
  Pool.shutdown p;
  (* idempotent *)
  Alcotest.check_raises "closed" (Invalid_argument "Domain_pool.run: pool is shut down")
    (fun () -> ignore (Pool.run p [| (fun () -> 1); (fun () -> 2) |]));
  Alcotest.check_raises "bad size" (Invalid_argument "Domain_pool.create: domains < 1")
    (fun () -> ignore (Pool.create ~domains:0 ()))

let prop_pool_map =
  QCheck.Test.make ~name:"pool map agrees with Array.map" ~count:60
    QCheck.(pair (list small_int) (int_range 1 4))
    (fun (l, domains) ->
      let arr = Array.of_list l in
      let f x = (x * 7) mod 13 in
      Pool.with_pool ~domains (fun p -> Pool.map p f arr = Array.map f arr))

(* --- event loop ------------------------------------------------------------ *)

module Ev = Xutil.Evloop

(* One battery run against both backends: readiness semantics must be
   identical whether the kernel offers epoll or only select. *)
let evloop_battery ~force_select () =
  let ev = Ev.create ~force_select () in
  Fun.protect
    ~finally:(fun () -> Ev.close ev)
    (fun () ->
      if force_select then
        Alcotest.(check string) "forced backend" "select" (Ev.backend_name ev);
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close a with Unix.Unix_error _ -> ());
          try Unix.close b with Unix.Unix_error _ -> ())
        (fun () ->
          Ev.add ev a ~read:true ~write:false;
          (* Nothing buffered: a bounded wait returns no events. *)
          Alcotest.(check int) "idle wait is empty" 0
            (List.length (Ev.wait ev ~timeout_ms:10));
          (* A byte lands: the fd reports readable. *)
          ignore (Unix.write_substring b "x" 0 1);
          (match Ev.wait ev ~timeout_ms:1000 with
           | [ { Ev.fd; readable = true; _ } ] when fd = a -> ()
           | evs -> Alcotest.failf "want [a readable], got %d events"
                      (List.length evs));
          ignore (Unix.read a (Bytes.create 8) 0 8);
          (* Interest flips to write-only: a socket with buffer space is
             immediately writable, and the pending-read edge is gone. *)
          Ev.modify ev a ~read:false ~write:true;
          (match Ev.wait ev ~timeout_ms:1000 with
           | [ { Ev.fd; writable = true; _ } ] when fd = a -> ()
           | _ -> Alcotest.fail "want [a writable]");
          (* Removed: silence, even with data pending. *)
          ignore (Unix.write_substring b "y" 0 1);
          Ev.remove ev a;
          Alcotest.(check int) "removed fd is silent" 0
            (List.length (Ev.wait ev ~timeout_ms:10));
          (* Removing twice (or an unknown fd) is a no-op, not an error. *)
          Ev.remove ev a;
          (* EOF surfaces as readable (read will not block: it returns 0). *)
          Ev.add ev a ~read:true ~write:false;
          Unix.close b;
          (match Ev.wait ev ~timeout_ms:1000 with
           | { Ev.fd; readable = true; _ } :: _ when fd = a -> ()
           | _ -> Alcotest.fail "want EOF readability");
          Ev.remove ev a);
      (* Wakeup from another thread interrupts a long wait promptly, is
         drained internally, and coalesces. *)
      let t0 = Unix.gettimeofday () in
      let waker =
        Thread.create
          (fun () ->
            Thread.delay 0.05;
            Ev.wakeup ev;
            Ev.wakeup ev)
          ()
      in
      let evs = Ev.wait ev ~timeout_ms:5000 in
      let dt = Unix.gettimeofday () -. t0 in
      Thread.join waker;
      Alcotest.(check int) "wakeup surfaces no event" 0 (List.length evs);
      Alcotest.(check bool) "wakeup was prompt" true (dt < 2.0);
      (* Both wakeups were coalesced and drained: the next wait times
         out instead of spinning on a stale wakeup byte. *)
      Alcotest.(check int) "wakeup drained" 0
        (List.length (Ev.wait ev ~timeout_ms:10)))

let test_evloop_native () = evloop_battery ~force_select:false ()
let test_evloop_select () = evloop_battery ~force_select:true ()

let test_evloop_writev () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      (* Scattered slices — including offsets and a zero-length one —
         land as one contiguous byte stream. *)
      let slices =
        [|
          (Bytes.of_string "xxhello", 2, 5);
          (Bytes.of_string " ", 0, 1);
          (Bytes.of_string "", 0, 0);
          (Bytes.of_string "worldyy", 0, 5);
        |]
      in
      let n = Ev.writev a slices in
      Alcotest.(check int) "all bytes taken" 11 n;
      let buf = Bytes.create 32 in
      let got = Unix.read b buf 0 32 in
      Alcotest.(check string) "stream order preserved" "hello world"
        (Bytes.sub_string buf 0 got);
      Alcotest.(check bool) "iov_max sane" true (Ev.iov_max >= 1))

let () =
  Alcotest.run "xutil"
    [
      ( "ivec",
        [
          Alcotest.test_case "basics" `Quick test_ivec_basics;
          Alcotest.test_case "bounds" `Quick test_ivec_bounds;
        ] );
      ("binsearch", [ Alcotest.test_case "cases" `Quick test_binsearch ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_bounds ]);
      ( "domain pool",
        [
          Alcotest.test_case "ordering" `Quick test_pool_ordering;
          Alcotest.test_case "map matches sequential" `Quick
            test_pool_map_matches_sequential;
          Alcotest.test_case "iter" `Quick test_pool_iter;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception_lowest_index;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown;
          QCheck_alcotest.to_alcotest prop_pool_map;
        ] );
      ( "evloop",
        [
          Alcotest.test_case "native backend" `Quick test_evloop_native;
          Alcotest.test_case "select backend" `Quick test_evloop_select;
          Alcotest.test_case "writev" `Quick test_evloop_writev;
        ] );
    ]
