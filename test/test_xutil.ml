(* The utility layer: growable vectors and binary searches. *)

module Ivec = Xutil.Ivec
module Bs = Xutil.Binsearch

let test_ivec_basics () =
  let v = Ivec.create () in
  Alcotest.(check int) "empty" 0 (Ivec.length v);
  for i = 0 to 99 do
    Ivec.push v (i * 2)
  done;
  Alcotest.(check int) "length" 100 (Ivec.length v);
  Alcotest.(check int) "get" 84 (Ivec.get v 42);
  Ivec.set v 42 7;
  Alcotest.(check int) "set" 7 (Ivec.get v 42);
  Alcotest.(check int) "to_array" 100 (Array.length (Ivec.to_array v));
  Alcotest.(check bool) "backing array big enough" true
    (Array.length (Ivec.unsafe_data v) >= 100)

let test_ivec_bounds () =
  let v = Ivec.create ~capacity:2 () in
  Ivec.push v 1;
  Alcotest.check_raises "get oob" (Invalid_argument "Ivec.get") (fun () ->
      ignore (Ivec.get v 1));
  Alcotest.check_raises "set oob" (Invalid_argument "Ivec.set") (fun () ->
      Ivec.set v (-1) 0)

let test_binsearch () =
  let a = [| 1; 3; 3; 3; 7; 9 |] in
  let len = Array.length a in
  Alcotest.(check int) "lower_bound hit" 1 (Bs.lower_bound a ~len 3);
  Alcotest.(check int) "lower_bound miss" 4 (Bs.lower_bound a ~len 4);
  Alcotest.(check int) "lower_bound before" 0 (Bs.lower_bound a ~len 0);
  Alcotest.(check int) "lower_bound after" 6 (Bs.lower_bound a ~len 100);
  Alcotest.(check int) "upper_bound hit" 4 (Bs.upper_bound a ~len 3);
  Alcotest.(check int) "upper_bound after" 6 (Bs.upper_bound a ~len 9);
  Alcotest.(check int) "floor hit" 3 (Bs.floor_index a ~len 3);
  Alcotest.(check int) "floor miss" 3 (Bs.floor_index a ~len 6);
  Alcotest.(check int) "floor before" (-1) (Bs.floor_index a ~len 0);
  (* len smaller than the physical array restricts the view *)
  Alcotest.(check int) "restricted len" 2 (Bs.upper_bound a ~len:2 5)

let prop_bounds =
  QCheck.Test.make ~name:"bounds agree with linear scans" ~count:500
    QCheck.(pair (list small_nat) small_nat)
    (fun (l, x) ->
      let a = Array.of_list (List.sort Stdlib.compare l) in
      let len = Array.length a in
      let lb = ref len and ub = ref len in
      (try
         for i = 0 to len - 1 do
           if a.(i) >= x then begin
             lb := i;
             raise Exit
           end
         done
       with Exit -> ());
      (try
         for i = 0 to len - 1 do
           if a.(i) > x then begin
             ub := i;
             raise Exit
           end
         done
       with Exit -> ());
      Xutil.Binsearch.lower_bound a ~len x = !lb
      && Xutil.Binsearch.upper_bound a ~len x = !ub
      && Xutil.Binsearch.floor_index a ~len x = !ub - 1)

let () =
  Alcotest.run "xutil"
    [
      ( "ivec",
        [
          Alcotest.test_case "basics" `Quick test_ivec_basics;
          Alcotest.test_case "bounds" `Quick test_ivec_bounds;
        ] );
      ("binsearch", [ Alcotest.test_case "cases" `Quick test_binsearch ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_bounds ]);
    ]
