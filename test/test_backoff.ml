(* Deterministic tests of the client's decorrelated-jitter backoff:
   fixed seeds yield fixed schedules, every sleep stays within
   [base, cap], growth is bounded by [factor], and the exported
   [schedule] preview equals what repeated [next] calls produce. *)

module B = Xserver.Backoff

let default = B.default

let test_determinism () =
  (* The same seed must produce byte-identical schedules -- that is
     what lets a failing client run be replayed exactly. *)
  List.iter
    (fun seed ->
      let a = B.schedule default ~seed 16 in
      let b = B.schedule default ~seed 16 in
      Alcotest.(check (list int))
        (Printf.sprintf "seed %d replays" seed)
        a b)
    [ 0; 1; 7; 42; 123456 ];
  (* And different seeds should not all collapse onto one schedule. *)
  let distinct =
    List.sort_uniq compare
      (List.map (fun seed -> B.schedule default ~seed 8) [ 1; 2; 3; 4; 5 ])
  in
  Alcotest.(check bool) "seeds diversify" true (List.length distinct > 1)

let test_bounds () =
  List.iter
    (fun seed ->
      let sleeps = B.schedule default ~seed 64 in
      List.iter
        (fun s ->
          if s < default.B.base_ms || s > default.B.cap_ms then
            Alcotest.failf "sleep %dms escapes [%d, %d] (seed %d)" s
              default.B.base_ms default.B.cap_ms seed)
        sleeps)
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]

let test_growth_bounded_by_factor () =
  (* Each sleep is drawn from [base, prev * factor] clamped to cap:
     verify the upper bound pairwise on many seeded schedules. *)
  List.iter
    (fun seed ->
      let sleeps = B.schedule default ~seed 32 in
      let rec walk prev = function
        | [] -> ()
        | s :: rest ->
          let hi =
            min default.B.cap_ms
              (int_of_float (float_of_int (max default.B.base_ms prev) *. default.B.factor))
          in
          if s > hi then
            Alcotest.failf "sleep %dms exceeds prev %dms x factor (seed %d)" s
              prev seed;
          walk s rest
      in
      walk 0 sleeps)
    [ 11; 12; 13; 14; 15 ]

let test_schedule_matches_next () =
  (* [schedule] is a pure preview of the [next] iteration. *)
  let seed = 77 in
  let st = Random.State.make [| seed; 0xb4c0 |] in
  let rec by_next prev k acc =
    if k = 0 then List.rev acc
    else
      let s = B.next default st ~prev_ms:prev in
      by_next s (k - 1) (s :: acc)
  in
  Alcotest.(check (list int))
    "schedule = iterated next" (by_next 0 12 [])
    (B.schedule default ~seed 12)

let test_degenerate_policies () =
  (* factor 1.0 pins every sleep to base; cap below base clamps to a
     constant; zero-length schedules are empty. *)
  let flat = { B.base_ms = 10; cap_ms = 10_000; factor = 1.0 } in
  List.iter
    (fun s -> Alcotest.(check int) "factor 1.0 is constant" 10 s)
    (B.schedule flat ~seed:3 20);
  let clamped = { B.base_ms = 50; cap_ms = 20; factor = 3.0 } in
  List.iter
    (fun s -> Alcotest.(check int) "cap<base clamps to base" 50 s)
    (B.schedule clamped ~seed:3 20);
  Alcotest.(check (list int)) "empty schedule" [] (B.schedule default ~seed:1 0);
  Alcotest.(check (list int))
    "negative length is empty" []
    (B.schedule default ~seed:1 (-3))

let test_total () =
  Alcotest.(check int) "total of empty" 0 (B.total_ms []);
  Alcotest.(check int) "total sums" 60 (B.total_ms [ 10; 20; 30 ]);
  (* The worst case for the default policy over 4 retries is bounded by
     4 x cap -- the capacity-planning number the client docs cite. *)
  List.iter
    (fun seed ->
      let t = B.total_ms (B.schedule default ~seed 4) in
      Alcotest.(check bool)
        "4 retries sleep at most 4 x cap" true
        (t <= 4 * default.B.cap_ms))
    [ 1; 2; 3 ]

let () =
  Alcotest.run "backoff"
    [
      ( "decorrelated jitter",
        [
          Alcotest.test_case "seeded schedules replay" `Quick test_determinism;
          Alcotest.test_case "sleeps within [base, cap]" `Quick test_bounds;
          Alcotest.test_case "growth bounded by factor" `Quick
            test_growth_bounded_by_factor;
          Alcotest.test_case "schedule = iterated next" `Quick
            test_schedule_matches_next;
          Alcotest.test_case "degenerate policies" `Quick
            test_degenerate_policies;
          Alcotest.test_case "totals" `Quick test_total;
        ] );
    ]
