(* Schema probability trees (Figures 12–13, Eq. 6) and sampled statistics. *)

module T = Xmlcore.Xml_tree
module D = Xmlcore.Designator
module Path = Sequencing.Path
module Schema = Xschema.Schema
module Stats = Xschema.Stats
module Gen = QCheck.Gen

let e = T.elt
let v = T.text

(* Figure 12's tree: P(1.0) with children v1(0.001), R(0.9);
   R has children U(0.8), L(0.4); U has M(0.8) with value v2(0.001/0.8);
   L has value v3(0.1-ish).  We check the Figure 13 products. *)
let fig12 =
  Schema.node "P"
    ~value:{ Schema.cardinality = 1000; known = [ ("v1", 0.001) ] }
    [
      Schema.node ~exist:0.9 "R"
        [
          Schema.node ~exist:0.8 "U"
            [
              Schema.node ~exist:0.8 "M"
                ~value:{ Schema.cardinality = 1000; known = [ ("v2", 0.001) ] }
                [];
            ];
          Schema.node ~exist:0.4 "L"
            ~value:{ Schema.cardinality = 10; known = [ ("v3", 0.1) ] }
            [];
        ];
    ]

let path_of names = Path.of_list (List.map D.tag names)

let test_fig13_products () =
  let probs = Schema.p_root fig12 in
  let lookup names =
    let p = path_of names in
    List.assoc p probs
  in
  let close a b = abs_float (a -. b) < 1e-9 in
  Alcotest.(check bool) "p(P|root)=1" true (close (lookup [ "P" ]) 1.0);
  Alcotest.(check bool) "p(R|root)=0.9" true (close (lookup [ "P"; "R" ]) 0.9);
  (* The paper: p(L|root) = p(L|R) × p(R|root) = 0.4 × 0.9 = 0.36 *)
  Alcotest.(check bool) "p(L|root)=0.36" true (close (lookup [ "P"; "R"; "L" ]) 0.36);
  Alcotest.(check bool) "p(U|root)=0.72" true (close (lookup [ "P"; "R"; "U" ]) 0.72);
  Alcotest.(check bool) "p(M|root)=0.576" true
    (close (lookup [ "P"; "R"; "U"; "M" ]) 0.576);
  (* known value: p(v3|root) = 0.36 × 0.1 = 0.036 (Figure 13) *)
  let v3 = Path.child (path_of [ "P"; "R"; "L" ]) (D.value "v3") in
  Alcotest.(check bool) "p(v3|root)=0.036" true (close (List.assoc v3 probs) 0.036)

let test_priority_weights () =
  (* Eq 6: p' = p × w.  Weighting L by 3 lifts it above U. *)
  let weighted =
    Schema.node "P"
      [
        Schema.node ~exist:0.8 "U" [];
        Schema.node ~exist:0.4 ~weight:3.0 "L" [];
      ]
  in
  let prio = Schema.to_priority weighted in
  Alcotest.(check bool) "weighted up" true
    (prio (path_of [ "P"; "L" ]) > prio (path_of [ "P"; "U" ]))

let test_priority_fallbacks () =
  let prio = Schema.to_priority fig12 in
  (* Anonymous values under a slot share p(slot)/cardinality. *)
  let anon = Path.child (path_of [ "P"; "R"; "L" ]) (D.value "someval") in
  Alcotest.(check bool) "anon value positive" true (prio anon > 0.);
  Alcotest.(check bool) "anon below element" true
    (prio anon < prio (path_of [ "P"; "R"; "L" ]));
  (* Paths outside the schema decay from their longest known prefix. *)
  let unknown = path_of [ "P"; "R"; "Zzz" ] in
  Alcotest.(check bool) "unknown decays" true
    (prio unknown < prio (path_of [ "P"; "R" ]) && prio unknown > 0.)

let test_strategy_wrapper () =
  match Schema.strategy fig12 with
  | Sequencing.Strategy.Probability _ -> ()
  | _ -> Alcotest.fail "expected a Probability strategy"

(* --- Stats --------------------------------------------------------------- *)

let corpus =
  [
    e "P" [ e "R" [ e "L" [ v "boston" ] ] ];
    e "P" [ e "R" [] ];
    e "P" [ e "D" [] ];
    e "P" [ e "R" [ e "L" [ v "boston" ] ]; e "D" [] ];
  ]

let test_stats_frequencies () =
  let s = Stats.of_documents corpus in
  Alcotest.(check int) "doc count" 4 (Stats.doc_count s);
  let close a b = abs_float (a -. b) < 1e-9 in
  Alcotest.(check bool) "p(P)=1" true (close (Stats.p_root s (path_of [ "P" ])) 1.0);
  Alcotest.(check bool) "p(R)=0.75" true
    (close (Stats.p_root s (path_of [ "P"; "R" ])) 0.75);
  Alcotest.(check bool) "p(D)=0.5" true
    (close (Stats.p_root s (path_of [ "P"; "D" ])) 0.5);
  Alcotest.(check bool) "p(L)=0.5" true
    (close (Stats.p_root s (path_of [ "P"; "R"; "L" ])) 0.5);
  (* conditional: p(L|R) = 0.5 / 0.75 *)
  Alcotest.(check bool) "p(L|R)" true
    (close (Stats.p_parent s (path_of [ "P"; "R"; "L" ])) (0.5 /. 0.75));
  Alcotest.(check bool) "distinct paths" true (Stats.distinct_paths s >= 5)

let test_stats_weights () =
  let s = Stats.of_documents corpus in
  let l = path_of [ "P"; "R"; "L" ] in
  let before = Stats.priority s l in
  Stats.set_weight s l 10.0;
  Alcotest.(check bool) "weight multiplies" true
    (abs_float (Stats.priority s l -. (before *. 10.0)) < 1e-9);
  Stats.set_tag_weight s (D.tag "D") 5.0;
  Alcotest.(check bool) "tag weight" true
    (abs_float (Stats.priority s (path_of [ "P"; "D" ]) -. 2.5) < 1e-9)

let test_stats_sample_deterministic () =
  let docs = Array.of_list corpus in
  let a = Stats.sample ~fraction:0.5 ~seed:3 docs in
  let b = Stats.sample ~fraction:0.5 ~seed:3 docs in
  Alcotest.(check int) "same sample size" (Stats.doc_count a) (Stats.doc_count b);
  Alcotest.(check bool) "nonempty" true (Stats.doc_count a >= 1)

(* Property: parent estimate never smaller than child estimate — the
   invariant the ancestor-first sequencing procedure relies on. *)
let tags = [| "a"; "b"; "c" |]

let tree_gen : T.t Gen.t =
  let open Gen in
  let rec node depth st =
    let fanout = if depth >= 3 then 0 else int_bound (3 - depth) st in
    let kids = List.init fanout (fun _ -> node (depth + 1) st) in
    T.elt (oneofa tags st) kids
  in
  node 0

let prop_parent_monotone =
  QCheck.Test.make ~name:"p(parent) >= p(child)" ~count:200
    (QCheck.make
       ~print:(fun l -> String.concat ";" (List.map (Format.asprintf "%a" T.pp) l))
       Gen.(list_size (int_range 1 10) tree_gen))
    (fun docs ->
      let s = Stats.of_documents docs in
      List.for_all
        (fun d ->
          Array.for_all
            (fun p ->
              Path.depth p < 2
              || Stats.p_root s (Path.parent p) >= Stats.p_root s p -. 1e-12)
            (Sequencing.Encoder.paths_of_tree d))
        docs)

let () =
  Alcotest.run "schema"
    [
      ( "schema",
        [
          Alcotest.test_case "figure 13 products" `Quick test_fig13_products;
          Alcotest.test_case "eq 6 weights" `Quick test_priority_weights;
          Alcotest.test_case "priority fallbacks" `Quick test_priority_fallbacks;
          Alcotest.test_case "strategy wrapper" `Quick test_strategy_wrapper;
        ] );
      ( "stats",
        [
          Alcotest.test_case "frequencies" `Quick test_stats_frequencies;
          Alcotest.test_case "weights" `Quick test_stats_weights;
          Alcotest.test_case "sampling deterministic" `Quick
            test_stats_sample_deterministic;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_parent_monotone ] );
    ]
