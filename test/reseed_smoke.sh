#!/bin/sh
# Rebuild-a-dead-follower smoke, driven through the installed CLI as
# separate OS processes.  Two ways a follower can be unable to replay
# history and must stream a snapshot instead:
#
#   A. wipe-and-reseed: a brand-new empty data dir joins with --follow
#      a primary whose early WAL is already pruned;
#   B. prune-and-reseed: an existing follower falls behind, the primary
#      checkpoints and prunes past its cursor, the follower rejoins.
#
# Both must converge to the primary: same applied watermark, identical
# query answers, WAL files byte-for-byte equal, zero reported lag, and
# no staging residue (xfer.tmp / xfer.ready) left behind.  Finally the
# follower's store must pass an offline scrub — and a deliberately
# flipped byte must fail it with exit 4.
#
# Exit 0 on success, 1 with a message on any violation.
set -u

XSEQ=${XSEQ:-_build/default/bin/xseq_cli.exe}
N_SEED=${N_SEED:-24}
N_LIVE=${N_LIVE:-8}
N_MORE=${N_MORE:-8}

work=$(mktemp -d /tmp/xseq_reseed.XXXXXX)
p_pid=""
f_pid=""

cleanup() {
  [ -n "$p_pid" ] && kill -9 "$p_pid" 2>/dev/null
  [ -n "$f_pid" ] && kill -9 "$f_pid" 2>/dev/null
  wait 2>/dev/null
  rm -rf "$work"
}
trap cleanup EXIT INT TERM

fail() {
  echo "FAIL: $*" >&2
  echo "--- primary log ---" >&2
  cat "$work/primary.log" >&2 2>/dev/null
  echo "--- follower log ---" >&2
  cat "$work/follower.log" >&2 2>/dev/null
  exit 1
}

wait_sock() {
  for _ in $(seq 1 100); do
    [ -S "$1" ] && return 0
    sleep 0.1
  done
  fail "socket $1 never appeared"
}

next_id() {
  "$XSEQ" repl-status "$1" 2>/dev/null | grep -o 'next id [0-9]*' \
    | awk '{print $3}'
}

P="unix:$work/p.sock"
F="unix:$work/f.sock"

for i in $(seq 1 $((N_SEED + N_LIVE + N_MORE))); do
  "$XSEQ" gen --kind dblp -n 1 --seed "$i" -o "$work/rec$i.xml" 2>/dev/null \
    || fail "gen rec$i"
done

# --- a primary whose early history is gone ----------------------------------
# Build the store offline and compact: the checkpoint prunes the first
# WAL file, so a from-scratch subscriber gets Pruned, not a replay.
seed_files=""
for i in $(seq 1 "$N_SEED"); do seed_files="$seed_files $work/rec$i.xml"; done
# shellcheck disable=SC2086
"$XSEQ" ingest --live "$work/primary" $seed_files --compact \
  >/dev/null 2>&1 || fail "offline seed ingest"
[ -e "$work/primary/wal-000000.log" ] \
  && fail "compaction did not prune the first WAL file"

"$XSEQ" serve --live "$work/primary" --socket "$work/p.sock" \
  --advertise "$P" >"$work/primary.log" 2>&1 &
p_pid=$!
wait_sock "$work/p.sock"

# A WAL suffix past the snapshot cut, so the reseed has to tail too.
for i in $(seq $((N_SEED + 1)) $((N_SEED + N_LIVE))); do
  "$XSEQ" ingest --connect "$P" "$work/rec$i.xml" >/dev/null 2>&1 \
    || fail "live ingest rec$i"
done
want=$(next_id "$P")
[ -n "$want" ] || fail "primary repl-status unreadable"

# --- A: wipe-and-reseed ------------------------------------------------------
"$XSEQ" serve --live "$work/follower" --socket "$work/f.sock" \
  --advertise "$F" --follow "$P" >"$work/follower.log" 2>&1 &
f_pid=$!
wait_sock "$work/f.sock"

converged() {
  got=$(next_id "$F")
  [ -n "$got" ] && [ "$got" -eq "$1" ]
}

wait_converged() {
  for _ in $(seq 1 100); do
    converged "$1" && return 0
    sleep 0.1
  done
  fail "$2 (want watermark $1, have $(next_id "$F"))"
}

check_identical() {
  # Same answers, byte for byte.
  "$XSEQ" query --endpoints "$P" '//author' 2>/dev/null | grep '^ids:' \
    >"$work/p.ids" || fail "$1: query primary"
  "$XSEQ" query --endpoints "$F" '//author' 2>/dev/null | grep '^ids:' \
    >"$work/f.ids" || fail "$1: query follower"
  cmp -s "$work/p.ids" "$work/f.ids" || fail "$1: query answers diverge"
  # Zero reported lag once converged.
  lag=$("$XSEQ" repl-status "$F" 2>/dev/null | grep -o 'lag [0-9]*' \
    | awk '{print $2}')
  [ "${lag:-0}" -eq 0 ] || fail "$1: follower still reports lag $lag"
  # The mirror contract: every WAL file the follower holds is
  # byte-identical to the primary's file of the same name.
  for w in "$work"/follower/wal-*.log; do
    [ -e "$w" ] || fail "$1: follower has no WAL files"
    b=$(basename "$w")
    cmp -s "$w" "$work/primary/$b" \
      || fail "$1: $b diverges between primary and follower"
  done
  # No staging residue survives a completed transfer.
  [ -e "$work/follower/xfer.tmp" ] && fail "$1: stale xfer.tmp left behind"
  [ -e "$work/follower/xfer.ready" ] && fail "$1: stale xfer.ready left behind"
}

wait_converged "$want" "wipe-and-reseed never converged"
check_identical "wipe-and-reseed"

# --- B: prune-and-reseed -----------------------------------------------------
# Take the follower down, advance and compact the primary past the
# follower's cursor, then let it rejoin with its now-pruned position.
kill -9 "$f_pid" 2>/dev/null
f_pid=""
kill -9 "$p_pid" 2>/dev/null
p_pid=""
# kill -9 leaves the socket files behind; clear them so wait_sock sees
# the restarted servers, not the corpses'.
rm -f "$work/p.sock" "$work/f.sock"

more_files=""
for i in $(seq $((N_SEED + N_LIVE + 1)) $((N_SEED + N_LIVE + N_MORE))); do
  more_files="$more_files $work/rec$i.xml"
done
# shellcheck disable=SC2086
"$XSEQ" ingest --live "$work/primary" $more_files --compact \
  >/dev/null 2>&1 || fail "offline advance ingest"

"$XSEQ" serve --live "$work/primary" --socket "$work/p.sock" \
  --advertise "$P" >"$work/primary.log" 2>&1 &
p_pid=$!
wait_sock "$work/p.sock"

"$XSEQ" serve --live "$work/follower" --socket "$work/f.sock" \
  --advertise "$F" --follow "$P" >"$work/follower.log" 2>&1 &
f_pid=$!
wait_sock "$work/f.sock"

want=$(next_id "$P")
[ -n "$want" ] || fail "primary repl-status unreadable after restart"
wait_converged "$want" "prune-and-reseed never converged"
check_identical "prune-and-reseed"

# --- the rebuilt store passes an offline scrub -------------------------------
kill -9 "$f_pid" 2>/dev/null
f_pid=""
"$XSEQ" scrub "$work/follower" >/dev/null 2>&1 \
  || fail "rebuilt follower store fails the scrub"

# ...and a flipped byte fails it with the degraded exit code.
victim=$(ls "$work"/follower/base-*.xseq 2>/dev/null | head -n 1)
[ -n "$victim" ] || fail "no base snapshot in the rebuilt follower"
orig=$(dd if="$victim" bs=1 skip=100 count=1 2>/dev/null | od -An -tu1 | tr -d ' ')
flipped=$(( (orig + 1) % 256 ))
# shellcheck disable=SC2059
printf "$(printf '\\%03o' "$flipped")" \
  | dd of="$victim" bs=1 seek=100 conv=notrunc 2>/dev/null
"$XSEQ" scrub "$work/follower" >/dev/null 2>&1
rc=$?
[ "$rc" -eq 4 ] || fail "scrub of a corrupted store exited $rc, want 4"

echo "reseed smoke OK: wipe-and-reseed and prune-and-reseed both" \
  "converged byte-identically (watermark $want); scrub catches corruption"
