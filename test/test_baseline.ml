(* Baseline-specific behaviour: index shapes, work counters, and the
   false-alarm/verification interplay their designs imply. *)

module T = Xmlcore.Xml_tree
module Pattern = Xquery.Pattern

let e = T.elt
let v = T.text

let corpus =
  [|
    e "P" [ e "L" [ e "S" [] ]; e "L" [ e "B" [] ] ];
    e "P" [ e "L" [ e "S" []; e "B" [] ] ];
    e "P" [ e "R" [ e "L" [ v "boston" ] ] ];
    e "P" [ e "R" [ e "L" [ v "newyork" ] ]; e "D" [] ];
  |]

(* The Figure 4 conjunctive query: only doc 1 matches. *)
let fig4_query = Pattern.(elt "P" [ elt "L" [ elt "S" []; elt "B" [] ] ])

let test_dataguide_shape () =
  let dg = Xbaseline.Dataguide.build corpus in
  Alcotest.(check bool) "paths counted" true (Xbaseline.Dataguide.distinct_paths dg >= 8);
  Alcotest.(check bool) "postings counted" true
    (Xbaseline.Dataguide.entry_count dg > Xbaseline.Dataguide.distinct_paths dg / 2)

let test_dataguide_verifies_false_alarms () =
  let dg = Xbaseline.Dataguide.build corpus in
  let stats = Xbaseline.Dataguide.create_stats () in
  let r = Xbaseline.Dataguide.query ~stats dg fig4_query in
  Alcotest.(check (list int)) "exact result" [ 1 ] r;
  (* The path index cannot see branching: doc 0 has both P.L.S and P.L.B
     paths, so it must appear as a candidate and be verified away. *)
  Alcotest.(check bool) "verified more than answered" true (stats.verified >= 2);
  Alcotest.(check bool) "lookups counted" true (stats.lookups >= 2);
  Alcotest.(check bool) "scans counted" true (stats.scanned > 0)

let test_xiss_shape () =
  let xi = Xbaseline.Xiss.build corpus in
  let total_nodes = Array.fold_left (fun a d -> a + T.node_count d) 0 corpus in
  Alcotest.(check int) "one posting per node" total_nodes
    (Xbaseline.Xiss.element_count xi);
  Alcotest.(check bool) "designators" true (Xbaseline.Xiss.distinct_designators xi >= 6)

let test_xiss_joins_and_verifies () =
  let xi = Xbaseline.Xiss.build corpus in
  let stats = Xbaseline.Xiss.create_stats () in
  (* Two *distinct* L siblings: binary joins cannot enforce distinctness —
     doc 1's single L(S,B) satisfies both semijoins, so it survives as a
     candidate and verification must reject it. *)
  let split = Pattern.(elt "P" [ elt "L" [ elt "S" [] ]; elt "L" [ elt "B" [] ] ]) in
  let r = Xbaseline.Xiss.query ~stats xi split in
  Alcotest.(check (list int)) "exact result" [ 0 ] r;
  Alcotest.(check bool) "join work counted" true (stats.scanned > 0 && stats.joined > 0);
  Alcotest.(check bool) "verification rejected a candidate" true (stats.verified >= 2)

let test_xiss_star_and_prefix () =
  let xi = Xbaseline.Xiss.build corpus in
  Alcotest.(check (list int)) "star" [ 2; 3 ]
    (Xbaseline.Xiss.query xi Pattern.(elt "P" [ star [ elt "L" [] ] ]));
  Alcotest.(check (list int)) "value prefix scan" [ 2 ]
    (Xbaseline.Xiss.query xi Pattern.(elt "P" [ elt "R" [ elt "L" [ text_prefix "bos" ] ] ]))

let test_vist_false_alarm_costs () =
  let vist = Xbaseline.Vist.build corpus in
  let stats = Xbaseline.Vist.create_stats () in
  let r = Xbaseline.Vist.query ~stats vist fig4_query in
  Alcotest.(check (list int)) "exact result" [ 1 ] r;
  (* ViST verifies every naive candidate — whether the Figure 4 false
     alarm fires depends on designator interning order, so only the
     invariant is asserted here; the false alarm itself is pinned down in
     test_query's "naive false alarm" case. *)
  Alcotest.(check bool) "verified all candidates" true
    (stats.verified = stats.candidates && stats.candidates >= 1);
  Alcotest.(check bool) "node count sane" true (Xbaseline.Vist.node_count vist > 0)

let test_vist_wildcards () =
  let vist = Xbaseline.Vist.build corpus in
  Alcotest.(check (list int)) "value query" [ 2 ]
    (Xbaseline.Vist.query vist
       Pattern.(elt "P" [ elt "R" [ elt "L" [ text "boston" ] ] ]));
  Alcotest.(check (list int)) "descendant L with S child" [ 0; 1 ]
    (Xbaseline.Vist.query vist Pattern.(elt ~axis:Descendant "L" [ elt "S" [] ]))

let () =
  Alcotest.run "baseline"
    [
      ( "dataguide",
        [
          Alcotest.test_case "shape" `Quick test_dataguide_shape;
          Alcotest.test_case "verification" `Quick test_dataguide_verifies_false_alarms;
        ] );
      ( "xiss",
        [
          Alcotest.test_case "shape" `Quick test_xiss_shape;
          Alcotest.test_case "joins + verification" `Quick test_xiss_joins_and_verifies;
          Alcotest.test_case "star and prefix" `Quick test_xiss_star_and_prefix;
        ] );
      ( "vist",
        [
          Alcotest.test_case "false alarm costs" `Quick test_vist_false_alarm_costs;
          Alcotest.test_case "values and wildcards" `Quick test_vist_wildcards;
        ] );
    ]
