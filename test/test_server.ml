(* End-to-end tests of the query server: an in-process daemon on a
   temp Unix socket, exercised by real clients over the wire.

   Covers the full acceptance surface: wire answers equal offline
   [Xseq.query]; concurrent clients (including a slow writer/reader and
   a garbage sender) never crash the accept loop; metrics reconcile
   against the requests actually sent; overload answers [Overloaded]
   frames while the server stays up; deadlines answer [Timeout]; and
   [Reload] hot swap yields only old-consistent or new-consistent
   answers. *)

module T = Xmlcore.Xml_tree
module P = Xserver.Protocol
module Server = Xserver.Server
module Client = Xserver.Client
module Plan_cache = Xserver.Plan_cache

let e = T.elt
let v = T.text

(* The fault-tolerance tests write into sockets whose peer has already
   hung up; that must be EPIPE, not a process-killing signal. *)
let () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let docs_a =
  [|
    e "P"
      [
        v "xml";
        e "R" [ e "M" [ v "tom" ]; e "L" [ v "newyork" ] ];
        e "D"
          [
            e "M" [ v "johnson" ];
            e "U" [ e "M" [ v "mary" ]; e "N" [ v "GUI" ] ];
            e "U" [ e "N" [ v "engine" ] ];
            e "L" [ v "boston" ];
          ];
      ];
    e "P" [ e "L" [ e "S" [] ]; e "L" [ e "B" [] ] ];
    e "P" [ e "L" [ e "S" []; e "B" [] ] ];
    e "P" [ e "R" [ e "L" [ v "boston" ] ] ];
  |]

let extra_doc = e "P" [ e "L" [ e "S" [] ] ]

let xpaths =
  [ "/P/R/L"; "/P//N"; "/P/L/S"; "/P/R[L='newyork']"; "//U[M='mary']"; "/P/*/L" ]

let index_a = Xseq.build docs_a
let expected = List.map (fun q -> (q, Xseq.query_xpath index_a q)) xpaths

(* --- scaffolding ----------------------------------------------------------- *)

let tmp_sock () =
  let path = Filename.temp_file "xseq_srv" ".sock" in
  Sys.remove path;
  path

let with_server ?config source f =
  let path = tmp_sock () in
  let srv = Server.create ?config source in
  Server.start srv [ Server.Unix_sock path ];
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f srv (Server.Unix_sock path))

let raw_connect (addr : Server.addr) =
  match addr with
  | Server.Unix_sock path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd
  | Server.Tcp _ -> Alcotest.fail "tests use unix sockets"

let send_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

(* JSON scraping, enough for the flat integers the stats op emits.
   [key] must be the bare field name; matches the first occurrence. *)
let index_of hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i =
    if i + n > h then None
    else if String.sub hay i n = needle then Some i
    else go (i + 1)
  in
  go 0

let find_int_opt json key =
  let pat = Printf.sprintf "\"%s\":" key in
  match index_of json pat with
  | None -> None
  | Some i ->
    let j = ref (i + String.length pat) in
    while !j < String.length json && json.[!j] = ' ' do
      incr j
    done;
    let k = ref !j in
    while
      !k < String.length json
      && (match json.[!k] with '0' .. '9' | '-' -> true | _ -> false)
    do
      incr k
    done;
    if !k = !j then None else Some (int_of_string (String.sub json !j (!k - !j)))

let find_int json key =
  match find_int_opt json key with
  | Some n -> n
  | None -> Alcotest.failf "stats JSON lacks %S:\n%s" key json

(* --- basic round trips ----------------------------------------------------- *)

let test_roundtrip () =
  with_server (Server.Static index_a) (fun srv addr ->
      Client.with_connection addr (fun c ->
          Client.ping c;
          List.iter
            (fun (q, want) ->
              Alcotest.(check (list int)) q want (Client.query c q))
            expected;
          let gen, ids = Client.query_full c "/P/L/S" in
          Alcotest.(check int) "generation" (Server.generation srv) gen;
          Alcotest.(check (list int)) "query_full ids" [ 1; 2 ] ids;
          let batch = Client.query_batch c (Array.of_list xpaths) in
          Array.iteri
            (fun i ids ->
              Alcotest.(check (list int))
                ("batch " ^ List.nth xpaths i)
                (List.assoc (List.nth xpaths i) expected)
                ids)
            batch;
          let json = Client.stats c in
          Alcotest.(check bool) "stats json shaped" true
            (String.length json > 2 && json.[0] = '{'
            && json.[String.length json - 1] = '}')))

let test_bad_xpath () =
  with_server (Server.Static index_a) (fun _srv addr ->
      Client.with_connection addr (fun c ->
          (match Client.query c "/P[unclosed" with
           | _ -> Alcotest.fail "expected Bad_request"
           | exception Client.Server_error (P.Bad_request, _) -> ());
          (* the connection survives an application-level error *)
          Client.ping c;
          Alcotest.(check (list int)) "still correct"
            (List.assoc "/P/L/S" expected)
            (Client.query c "/P/L/S")))

(* --- concurrency and hostile peers ----------------------------------------- *)

let test_concurrent_and_hostile () =
  with_server (Server.Static index_a) (fun _srv addr ->
      let failures = ref [] in
      let fm = Mutex.create () in
      let fail_msg m =
        Mutex.lock fm;
        failures := m :: !failures;
        Mutex.unlock fm
      in
      let querier k () =
        try
          Client.with_connection addr (fun c ->
              for i = 0 to 24 do
                let q = List.nth xpaths ((i + k) mod List.length xpaths) in
                if Client.query c q <> List.assoc q expected then
                  fail_msg (Printf.sprintf "thread %d: %s wrong" k q);
                if i mod 5 = 0 then begin
                  let arr = Array.of_list xpaths in
                  let got = Client.query_batch c arr in
                  Array.iteri
                    (fun j ids ->
                      if ids <> List.assoc arr.(j) expected then
                        fail_msg
                          (Printf.sprintf "thread %d: batch %s wrong" k arr.(j)))
                    got
                end
              done)
        with ex -> fail_msg (Printf.sprintf "thread %d: %s" k (Printexc.to_string ex))
      in
      let slow_peer () =
        (* Dribbles a valid Query frame one byte at a time, then dawdles
           before reading the response. *)
        try
          let fd = raw_connect addr in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              let frame =
                P.encode_request (P.Query { xpath = "/P/L/S"; timeout_ms = 0 })
              in
              String.iter
                (fun ch ->
                  send_all fd (String.make 1 ch);
                  Thread.delay 0.001)
                frame;
              Thread.delay 0.05;
              match P.read_frame fd with
              | Ok f ->
                (match P.decode_response f with
                 | Ok (P.Result { ids; _ }) ->
                   if ids <> List.assoc "/P/L/S" expected then
                     fail_msg "slow peer: wrong ids"
                 | _ -> fail_msg "slow peer: unexpected response")
              | Error _ -> fail_msg "slow peer: no response")
        with ex -> fail_msg ("slow peer: " ^ Printexc.to_string ex)
      in
      let garbage_peer () =
        (* Exactly [header_size] bytes of garbage: the server must answer
           a Bad_request frame and close — never crash. *)
        try
          let fd = raw_connect addr in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              send_all fd "BADBYTES";
              (match P.read_frame fd with
               | Ok f ->
                 (match P.decode_response f with
                  | Ok (P.Error { code = P.Bad_request; _ }) -> ()
                  | _ -> fail_msg "garbage peer: expected Bad_request frame")
               | Error _ -> fail_msg "garbage peer: expected an error frame");
              match P.read_frame fd with
              | Error P.Eof -> ()
              | _ -> fail_msg "garbage peer: connection should be closed")
        with ex -> fail_msg ("garbage peer: " ^ Printexc.to_string ex)
      in
      let oversized_peer () =
        (* A header announcing a 4 GiB payload must be rejected before
           any allocation. *)
        try
          let fd = raw_connect addr in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              let b = Bytes.create 8 in
              Bytes.blit_string P.magic 0 b 0 2;
              Bytes.set b 2 (Char.chr P.version);
              Bytes.set b 3 '\x00';
              Bytes.set_int32_le b 4 0xFFFFFF0l;
              send_all fd (Bytes.to_string b);
              match P.read_frame fd with
              | Ok f ->
                (match P.decode_response f with
                 | Ok (P.Error { code = P.Bad_request; _ }) -> ()
                 | _ -> fail_msg "oversized peer: expected Bad_request")
              | Error _ -> fail_msg "oversized peer: expected an error frame")
        with ex -> fail_msg ("oversized peer: " ^ Printexc.to_string ex)
      in
      let truncated_peer () =
        (* Dies mid-frame; the server must shrug it off. *)
        try
          let fd = raw_connect addr in
          let frame = P.encode_request P.Ping in
          send_all fd (String.sub frame 0 5);
          Unix.close fd
        with ex -> fail_msg ("truncated peer: " ^ Printexc.to_string ex)
      in
      let threads =
        List.map
          (fun job -> Thread.create job ())
          ([ slow_peer; garbage_peer; oversized_peer; truncated_peer ]
          @ List.init 4 (fun k -> querier k))
      in
      List.iter Thread.join threads;
      Alcotest.(check (list string)) "no failures" [] !failures;
      (* the accept loop is still alive *)
      Client.with_connection addr (fun c ->
          Client.ping c;
          Alcotest.(check (list int)) "still correct"
            (List.assoc "/P/R/L" expected)
            (Client.query c "/P/R/L")))

(* --- metrics reconciliation ------------------------------------------------ *)

let test_metrics_reconcile () =
  with_server (Server.Static index_a) (fun _srv addr ->
      Client.with_connection addr (fun c ->
          for _ = 1 to 3 do
            Client.ping c
          done;
          for i = 1 to 5 do
            ignore (Client.query c (List.nth xpaths (i mod List.length xpaths)))
          done;
          for _ = 1 to 2 do
            ignore (Client.query_batch c [| "/P/R/L"; "/P/L/S" |])
          done;
          (match Client.query c "/P[oops" with
           | _ -> Alcotest.fail "expected Bad_request"
           | exception Client.Server_error (P.Bad_request, _) -> ());
          let json = Client.stats c in
          Alcotest.(check int) "ping count" 3 (find_int json "ping");
          Alcotest.(check int) "query count" 6 (find_int json "query");
          Alcotest.(check int) "batch count" 2 (find_int json "query_batch");
          (* the stats response is generated before it is recorded, so the
             first stats call does not count itself *)
          Alcotest.(check (option int)) "stats not self-counted"
            None (find_int_opt json "stats");
          Alcotest.(check int) "errors_total" 1 (find_int json "errors_total");
          Alcotest.(check int) "bad_request errors" 1
            (find_int json "bad_request");
          Alcotest.(check bool) "bytes received > 0" true
            (find_int json "bytes_received" > 0);
          Alcotest.(check bool) "bytes sent > 0" true
            (find_int json "bytes_sent" > 0);
          Alcotest.(check bool) "connections opened" true
            (find_int json "connections_opened" >= 1);
          Alcotest.(check bool) "matcher probes counted" true
            (find_int json "probes" > 0);
          let json2 = Client.stats c in
          Alcotest.(check int) "second stats sees the first" 1
            (find_int json2 "stats");
          Alcotest.(check int) "requests_total" (3 + 6 + 2 + 1)
            (find_int json2 "requests_total")))

(* --- plan cache ------------------------------------------------------------ *)

let test_plan_cache () =
  with_server (Server.Static index_a) (fun srv addr ->
      Client.with_connection addr (fun c ->
          for _ = 1 to 5 do
            ignore (Client.query c "/P/D[L='boston']/U[N='GUI']")
          done;
          let cache = Server.plan_cache srv in
          Alcotest.(check int) "one compilation" 1 (Plan_cache.misses cache);
          Alcotest.(check int) "four hits" 4 (Plan_cache.hits cache);
          let json = Client.stats c in
          Alcotest.(check int) "hits surface in stats" 4 (find_int json "hits")))

let test_plan_cache_invalidated_by_reload () =
  let path = Filename.temp_file "xseq_snap" ".idx" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Xseq.save index_a path;
      with_server (Server.Snapshot path) (fun srv addr ->
          Client.with_connection addr (fun c ->
              let q = "/P/D[L='boston']/U[N='GUI']" in
              ignore (Client.query c q);
              ignore (Client.query c q);
              let cache = Server.plan_cache srv in
              Alcotest.(check int) "warm" 1 (Plan_cache.hits cache);
              let gen0 = Server.generation srv in
              let gen1 = Client.reload c in
              Alcotest.(check bool) "fresh generation" true (gen1 <> gen0);
              (* the cached plan is stamped with the old generation: the
                 next lookup drops it and recompiles *)
              Alcotest.(check (list int)) "still correct" [ 0 ]
                (Client.query c q);
              Alcotest.(check int) "recompiled" 2 (Plan_cache.misses cache))))

(* --- admission control ----------------------------------------------------- *)

let test_overload () =
  let config =
    { Server.default_config with max_pending = 2; debug_delay_ms = 300 }
  in
  with_server ~config (Server.Static index_a) (fun srv addr ->
      let ok = Atomic.make 0
      and overloaded = Atomic.make 0
      and other = Atomic.make 0 in
      let worker () =
        match
          Client.with_connection addr (fun c -> Client.query c "/P/L/S")
        with
        | ids when ids = List.assoc "/P/L/S" expected -> Atomic.incr ok
        | _ -> Atomic.incr other
        | exception Client.Server_error (P.Overloaded, _) ->
          Atomic.incr overloaded
        | exception _ -> Atomic.incr other
      in
      let threads = List.init 8 (fun _ -> Thread.create worker ()) in
      List.iter Thread.join threads;
      Alcotest.(check int) "no stray outcomes" 0 (Atomic.get other);
      Alcotest.(check int) "all accounted for" 8
        (Atomic.get ok + Atomic.get overloaded);
      Alcotest.(check bool) "some served" true (Atomic.get ok >= 1);
      Alcotest.(check bool) "some shed" true (Atomic.get overloaded >= 1);
      (* the server survived the storm *)
      Client.with_connection addr (fun c -> Client.ping c);
      Alcotest.(check int) "nothing stuck in flight" 0 (Server.pending srv))

let test_timeout () =
  let config = { Server.default_config with debug_delay_ms = 80 } in
  with_server ~config (Server.Static index_a) (fun _srv addr ->
      (* The server's own deadline: a raw frame carrying a 20ms budget
         (and no client-side deadline racing it) answers a Timeout
         error frame. *)
      let fd = raw_connect addr in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          P.write_frame fd
            (P.encode_request (P.Query { xpath = "/P/L/S"; timeout_ms = 20 }));
          match P.read_frame fd with
          | Ok r -> (
            match P.decode_response r with
            | Ok (P.Error { code = P.Timeout; _ }) -> ()
            | Ok _ -> Alcotest.fail "expected a Timeout error frame"
            | Error m -> Alcotest.failf "bad response: %s" m)
          | Error _ -> Alcotest.fail "no response to the deadlined query");
      Client.with_connection addr (fun c ->
          (* Through the client, [timeout_ms] also bounds the call
             locally: one side fires — the server's answer or the
             client's own deadline — and both surface as a timeout. *)
          (match Client.query ~timeout_ms:20 c "/P/L/S" with
           | _ -> Alcotest.fail "expected Timeout"
           | exception Client.Server_error (P.Timeout, _) -> ()
           | exception Client.Timeout _ -> ());
          (* no deadline: the same query succeeds despite the delay *)
          Alcotest.(check (list int)) "no deadline"
            (List.assoc "/P/L/S" expected)
            (Client.query c "/P/L/S")))

(* --- hot swap --------------------------------------------------------------- *)

let test_reload_hot_swap () =
  let path_a = Filename.temp_file "xseq_snap_a" ".idx" in
  let path_b = Filename.temp_file "xseq_snap_b" ".idx" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path_a; path_b ])
    (fun () ->
      let q = "/P/L/S" in
      Xseq.save index_a path_a;
      let index_b = Xseq.build (Array.append docs_a [| extra_doc |]) in
      Xseq.save index_b path_b;
      let want_a = Xseq.query_xpath index_a q in
      let want_b = Xseq.query_xpath index_b q in
      Alcotest.(check bool) "answers differ across swap" true (want_a <> want_b);
      with_server (Server.Snapshot path_a) (fun srv addr ->
          let gen_a = Server.generation srv in
          let obs = ref [] in
          let om = Mutex.create () in
          let stop_at = Unix.gettimeofday () +. 0.45 in
          let querier () =
            try
              Client.with_connection addr (fun c ->
                  while Unix.gettimeofday () < stop_at do
                    let o = Client.query_full c q in
                    Mutex.lock om;
                    obs := o :: !obs;
                    Mutex.unlock om
                  done)
            with ex ->
              Mutex.lock om;
              obs := (-1, [ -1 ]) :: !obs;
              Mutex.unlock om;
              ignore ex
          in
          let threads = List.init 3 (fun _ -> Thread.create querier ()) in
          Thread.delay 0.15;
          let gen_b = Client.with_connection addr (fun c -> Client.reload ~path:path_b c) in
          Alcotest.(check bool) "new generation" true (gen_b <> gen_a);
          List.iter Thread.join threads;
          Alcotest.(check bool) "observed something" true (!obs <> []);
          List.iter
            (fun (gen, ids) ->
              if not
                   ((gen = gen_a && ids = want_a) || (gen = gen_b && ids = want_b))
              then
                Alcotest.failf
                  "torn observation: generation %d with ids [%s]" gen
                  (String.concat ";" (List.map string_of_int ids)))
            !obs;
          (* post-swap queries answer against the new index *)
          Client.with_connection addr (fun c ->
              let gen, ids = Client.query_full c q in
              Alcotest.(check int) "serving b" gen_b gen;
              Alcotest.(check (list int)) "b's answer" want_b ids)))

let test_dynamic_reload () =
  let dyn = Xseq.Dynamic.create ~rebuild_threshold:1000 docs_a in
  with_server (Server.Dynamic dyn) (fun srv addr ->
      Client.with_connection addr (fun c ->
          Alcotest.(check (list int)) "initial" [ 1; 2 ] (Client.query c "/P/L/S");
          let id = Xseq.Dynamic.add dyn extra_doc in
          Alcotest.(check int) "appended id" 4 id;
          (* the server keeps answering against its snapshot... *)
          Alcotest.(check (list int)) "snapshot isolation" [ 1; 2 ]
            (Client.query c "/P/L/S");
          (* ...until a reload folds the tail in *)
          let gen0 = Server.generation srv in
          let gen1 = Client.reload c in
          Alcotest.(check bool) "generation advanced" true (gen1 <> gen0);
          Alcotest.(check (list int)) "tail visible" [ 1; 2; 4 ]
            (Client.query c "/P/L/S")))

(* --- live ingestion ---------------------------------------------------------- *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_live_server ?config ?(memtable_limit = 256) ?(probe_interval = 1.0) f =
  let dir = Filename.temp_file "xseq_live" ".store" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let log = Xlog.open_ ~memtable_limit ~probe_interval dir in
      Fun.protect
        ~finally:(fun () -> Xlog.close log)
        (fun () ->
          with_server ?config (Server.Live log) (fun srv addr ->
              f srv addr log)))

let xml_of = Xmlcore.Xml_printer.to_string

(* The full wire surface of a live store: insert, query (equal to the
   offline oracle), delete, flush, stats gauges. *)
let test_live_wire_ops () =
  with_live_server (fun srv addr _log ->
      Client.with_connection addr (fun c ->
          let ids = Array.map (fun d -> Client.insert c (xml_of d)) docs_a in
          Alcotest.(check (list int)) "dense ids" [ 0; 1; 2; 3 ]
            (Array.to_list ids);
          (* Answers equal offline Xseq over the same documents —
             including the unindexed memtable. *)
          List.iter
            (fun (q, want) ->
              Alcotest.(check (list int)) ("live " ^ q) want (Client.query c q))
            expected;
          (* Batch goes through the same path. *)
          let batch = Client.query_batch c (Array.of_list xpaths) in
          List.iteri
            (fun i (q, want) ->
              Alcotest.(check (list int)) ("batch " ^ q) want batch.(i))
            expected;
          (* Tombstone one document: answers drop exactly that id. *)
          Alcotest.(check bool) "delete" true (Client.delete c 1);
          Alcotest.(check bool) "delete again" false (Client.delete c 1);
          Alcotest.(check (list int)) "tombstone visible" [ 2 ]
            (Client.query c "/P/L/S");
          (* Flush seals the memtable: the structure generation advances
             and answers are unchanged. *)
          let gen0 = Server.generation srv in
          let gen1 = Client.flush c in
          Alcotest.(check bool) "flush advances generation" true (gen1 <> gen0);
          Alcotest.(check (list int)) "sealed answers" [ 2 ]
            (Client.query c "/P/L/S");
          (* The stats JSON carries the live gauges. *)
          let json = Client.stats c in
          Alcotest.(check int) "doc_count gauge" 3 (find_int json "doc_count");
          Alcotest.(check int) "tombstones gauge" 1
            (find_int json "tombstones")))

(* Mutation ops against a frozen backend answer Bad_request (and a
   malformed document is the client's fault, not a server crash). *)
let test_live_ops_rejected () =
  with_server (Server.Static index_a) (fun _srv addr ->
      Client.with_connection addr (fun c ->
          let check_bad what f =
            match f () with
            | _ -> Alcotest.failf "%s accepted by a static server" what
            | exception Client.Server_error (P.Bad_request, _) -> ()
          in
          check_bad "insert" (fun () -> Client.insert c "<a/>");
          check_bad "delete" (fun () -> ignore (Client.delete c 0 : bool));
          check_bad "flush" (fun () -> ignore (Client.flush c : int));
          (* the server is still fine *)
          Client.ping c));
  with_live_server (fun _srv addr _log ->
      Client.with_connection addr (fun c ->
          (match Client.insert c "<open><unclosed>" with
           | _ -> Alcotest.fail "malformed XML accepted"
           | exception Client.Server_error (P.Bad_request, _) -> ());
          (* parse errors poison nothing *)
          Alcotest.(check int) "still ingesting" 0 (Client.insert c "<P/>")))

(* Reload against a live source flushes and compacts in place while
   queries keep answering — every observation must be the oracle's
   answer, before, during and after. *)
let test_live_reload_compacts () =
  with_live_server ~memtable_limit:4 (fun srv addr log ->
      Client.with_connection addr (fun c ->
          Array.iter (fun d -> ignore (Client.insert c (xml_of d) : int)) docs_a;
          let q = "/P/L/S" in
          let want = List.assoc q expected in
          let stop = Atomic.make false in
          let failures = ref [] in
          let fm = Mutex.create () in
          let querier () =
            try
              Client.with_connection addr (fun c ->
                  while not (Atomic.get stop) do
                    let ids = Client.query c q in
                    if ids <> want then begin
                      Mutex.lock fm;
                      failures :=
                        Printf.sprintf "saw [%s]"
                          (String.concat ";" (List.map string_of_int ids))
                        :: !failures;
                      Mutex.unlock fm
                    end
                  done)
            with ex ->
              Mutex.lock fm;
              failures := Printexc.to_string ex :: !failures;
              Mutex.unlock fm
          in
          let threads = List.init 3 (fun _ -> Thread.create querier ()) in
          let gen0 = Server.generation srv in
          let gen1 = Client.reload c in
          Atomic.set stop true;
          List.iter Thread.join threads;
          (match !failures with
           | [] -> ()
           | f :: _ -> Alcotest.failf "inconsistent observation: %s" f);
          Alcotest.(check bool) "generation advanced" true (gen1 <> gen0);
          Alcotest.(check int) "compacted away" 0 (Xlog.segments log);
          Alcotest.(check (list int)) "post-compaction answer" want
            (Client.query c q)))

(* --- pipelining -------------------------------------------------------------- *)

(* N requests written on one connection before any response is read:
   the responses come back strictly in request order, each one the
   oracle's answer for its position.  Raw fd on purpose — no client
   machinery between the test and the wire contract. *)
let test_pipeline_in_order () =
  with_server (Server.Static index_a) (fun _srv addr ->
      let fd = raw_connect addr in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let n = 40 in
          let reqs =
            List.init n (fun i ->
                if i mod 7 = 3 then P.Ping
                else
                  P.Query
                    {
                      xpath = List.nth xpaths (i mod List.length xpaths);
                      timeout_ms = 0;
                    })
          in
          (* One burst: every frame hits the socket before the first
             response is read. *)
          send_all fd (String.concat "" (List.map P.encode_request reqs));
          List.iteri
            (fun i req ->
              match P.read_frame fd with
              | Error _ -> Alcotest.failf "no response %d" i
              | Ok frame -> (
                match (req, P.decode_response frame) with
                | P.Ping, Ok P.Pong -> ()
                | P.Query { xpath; _ }, Ok (P.Result { ids; _ }) ->
                  Alcotest.(check (list int))
                    (Printf.sprintf "response %d (%s)" i xpath)
                    (List.assoc xpath expected)
                    ids
                | _, Ok _ ->
                  Alcotest.failf "response %d out of order or wrong kind" i
                | _, Error m -> Alcotest.failf "response %d malformed: %s" i m))
            reqs);
      (* The client-side pipelining API sees the same contract. *)
      Client.with_connection addr (fun c ->
          let qs = List.concat [ xpaths; List.rev xpaths; xpaths ] in
          let got = Client.query_pipeline c qs in
          List.iter2
            (fun q ids ->
              Alcotest.(check (list int)) ("pipelined " ^ q)
                (List.assoc q expected)
                ids)
            qs got))

(* A hostile peer pipelines a burst whose responses far exceed the
   write-side backpressure mark, reading nothing until the whole burst
   is sent.  The server must pause the connection instead of buffering
   without bound, then — once the peer finally drains its socket —
   resume from the write path: every response arrives in order and the
   connection still answers new requests afterwards (a stranded pause
   would hang the final ping). *)
let test_backpressure_resume () =
  let big_index =
    Xseq.build (Array.init 3000 (fun _ -> e "P" [ e "L" [ e "S" [] ] ]))
  in
  let q = "/P/L/S" in
  let want = Xseq.query_xpath big_index q in
  (* The whole burst is admitted at decode time, before any worker gets
     to run: max_pending must cover it or the tail answers Overloaded. *)
  let config = { Server.default_config with max_pending = 128 } in
  with_server ~config (Server.Static big_index) (fun _srv addr ->
      let fd = raw_connect addr in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* A stranded server means reads block forever; fail instead. *)
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.0;
          let n = 100 in
          (* ~24 KB of ids per response: the burst owes ~2.4 MB, well
             past the 1 MiB high-water mark plus the socket buffers.
             The requests themselves are a few KB, so this send cannot
             deadlock against the paused server. *)
          let req = P.encode_request (P.Query { xpath = q; timeout_ms = 0 }) in
          send_all fd (String.concat "" (List.init n (fun _ -> req)));
          for i = 0 to n - 1 do
            match P.read_frame fd with
            | Error _ -> Alcotest.failf "no response %d" i
            | Ok frame -> (
              match P.decode_response frame with
              | Ok (P.Result { ids; _ }) ->
                if ids <> want then
                  Alcotest.failf "response %d has wrong ids (%d of them)" i
                    (List.length ids)
              | Ok _ -> Alcotest.failf "response %d is not a Result" i
              | Error m -> Alcotest.failf "response %d malformed: %s" i m)
          done;
          (* The peer has drained everything: reading must have resumed. *)
          send_all fd (P.encode_request P.Ping);
          match P.read_frame fd with
          | Error _ -> Alcotest.fail "no pong after backpressure"
          | Ok frame -> (
            match P.decode_response frame with
            | Ok P.Pong -> ()
            | _ -> Alcotest.fail "expected Pong after backpressure")))

(* A single request whose result cannot fit a response frame (a batch
   matching > max_payload bytes of ids) answers a [Server_error] frame
   instead of stranding the client, and the connection stays usable for
   the requests pipelined behind it. *)
let test_oversized_result () =
  let big_index =
    Xseq.build (Array.init 3000 (fun _ -> e "P" [ e "L" [ e "S" [] ] ]))
  in
  let q = "/P/L/S" in
  let want = Xseq.query_xpath big_index q in
  with_server (Server.Static big_index) (fun _srv addr ->
      Client.with_connection addr (fun c ->
          (* 800 sub-queries x 3000 ids x 8 bytes ≈ 19 MB > the 16 MiB
             payload cap. *)
          (match Client.query_batch c (Array.make 800 q) with
           | _ -> Alcotest.fail "expected Server_error for oversized result"
           | exception Client.Server_error (P.Server_error, msg) ->
             Alcotest.(check bool) "message names the cap" true
               (String.length msg > 0));
          (* The connection survives: the slot was answered, not leaked. *)
          Client.ping c;
          Alcotest.(check (list int)) "normal query still answers" want
            (Client.query c q)))

(* A hot swap in the middle of a pipelined burst: every query answer is
   old-consistent or new-consistent — never torn — and the burst's
   responses still arrive in request order. *)
let test_pipeline_hot_swap () =
  let path_a = Filename.temp_file "xseq_pipe_a" ".idx" in
  let path_b = Filename.temp_file "xseq_pipe_b" ".idx" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path_a; path_b ])
    (fun () ->
      let q = "/P/L/S" in
      Xseq.save index_a path_a;
      let index_b = Xseq.build (Array.append docs_a [| extra_doc |]) in
      Xseq.save index_b path_b;
      let want_a = Xseq.query_xpath index_a q in
      let want_b = Xseq.query_xpath index_b q in
      with_server (Server.Snapshot path_a) (fun srv addr ->
          let gen_a = Server.generation srv in
          Client.with_connection addr (fun c ->
              let query = P.Query { xpath = q; timeout_ms = 0 } in
              let burst =
                [ query; query; P.Reload (Some path_b); query; query; query ]
              in
              let resps = Client.pipeline c burst in
              Alcotest.(check int) "one response per request"
                (List.length burst) (List.length resps);
              let gen_b = ref (-1) in
              List.iteri
                (fun i (req, resp) ->
                  match (req, resp) with
                  | P.Reload _, P.Reloaded { generation } ->
                    Alcotest.(check bool) "swap advanced the generation" true
                      (generation <> gen_a);
                    gen_b := generation
                  | P.Query _, P.Result { generation; ids } ->
                    if
                      not
                        ((generation = gen_a && ids = want_a)
                        || (generation <> gen_a && ids = want_b))
                    then
                      Alcotest.failf
                        "torn mid-pipeline observation at %d: generation %d \
                         with ids [%s]"
                        i generation
                        (String.concat ";" (List.map string_of_int ids))
                  | _ ->
                    Alcotest.failf "response %d out of order or wrong kind" i)
                (List.combine burst resps);
              (* After the burst the swap is complete: a synchronous query
                 answers against the new index. *)
              let gen, ids = Client.query_full c q in
              Alcotest.(check int) "serving the new index" !gen_b gen;
              Alcotest.(check (list int)) "new answer" want_b ids)))

(* The store flips to degraded in the middle of a burst: the mutating
   requests answer [Degraded] error frames *as values*, the queries
   around them keep answering the oracle, and the response order still
   matches the request order.  One connection, one write, no retries. *)
let test_pipeline_degraded_flip () =
  with_live_server ~probe_interval:infinity (fun _srv addr _log ->
      Client.with_connection addr (fun c ->
          Array.iter (fun d -> ignore (Client.insert c (xml_of d) : int)) docs_a;
          let q = "/P/L/S" in
          let want = List.assoc q expected in
          let rules =
            List.init 10 (fun i ->
                { Xfault.at = i; on = Xfault.Write; fault = Xfault.Enospc })
            @ List.init 5 (fun i ->
                  { Xfault.at = i; on = Xfault.Fsync; fault = Xfault.Enospc })
            @ List.init 5 (fun i ->
                  { Xfault.at = i; on = Xfault.Open; fault = Xfault.Enospc })
          in
          Xfault.install (Xfault.Injector.create rules);
          Fun.protect ~finally:Xfault.uninstall (fun () ->
              let query = P.Query { xpath = q; timeout_ms = 0 } in
              let burst =
                [
                  query;
                  P.Insert { xml = "<P/>" };
                  query;
                  P.Delete { id = 0 };
                  query;
                ]
              in
              match Client.pipeline c burst with
              | [
               P.Result { ids = r1; _ };
               P.Error { code = c1; _ };
               P.Result { ids = r2; _ };
               P.Error { code = c2; _ };
               P.Result { ids = r3; _ };
              ] ->
                List.iter
                  (fun ids ->
                    Alcotest.(check (list int)) "query answers through the flip"
                      want ids)
                  [ r1; r2; r3 ];
                Alcotest.(check bool) "insert refused as Degraded" true
                  (c1 = P.Degraded);
                Alcotest.(check bool) "delete refused as Degraded" true
                  (c2 = P.Degraded)
              | resps ->
                Alcotest.failf "unexpected response sequence (%d frames)"
                  (List.length resps));
          (* Fault cleared: the health probe re-arms the write path and
             the refused insert consumed no id. *)
          let h = Client.health c in
          Alcotest.(check bool) "recovered" false h.Client.degraded;
          Alcotest.(check int) "no id leaked by the refused insert"
            (Array.length docs_a)
            (Client.insert c "<P/>")))

(* Several accept shards over a shared Unix-domain listener: every loop
   owns its own readiness set and connections spread across them; the
   answers and the configuration gauge are unchanged. *)
let test_accept_shards_serving () =
  let config = { Server.default_config with accept_shards = 3 } in
  with_server ~config (Server.Static index_a) (fun srv addr ->
      let failures = ref [] in
      let fm = Mutex.create () in
      let querier k () =
        try
          Client.with_connection addr (fun c ->
              for i = 0 to 19 do
                let q = List.nth xpaths ((i + k) mod List.length xpaths) in
                if Client.query c q <> List.assoc q expected then begin
                  Mutex.lock fm;
                  failures := Printf.sprintf "thread %d: %s wrong" k q :: !failures;
                  Mutex.unlock fm
                end
              done)
        with ex ->
          Mutex.lock fm;
          failures := Printexc.to_string ex :: !failures;
          Mutex.unlock fm
      in
      let threads = List.init 6 (fun k -> Thread.create (querier k) ()) in
      List.iter Thread.join threads;
      Alcotest.(check (list string)) "no failures" [] !failures;
      let json = Server.stats_json srv in
      Alcotest.(check int) "accept_shards gauge" 3
        (find_int json "accept_shards"))

(* SIGTERM triggers the same orderly shutdown as [stop]: listeners
   close, the Unix socket file is unlinked, and [wait] returns. *)
let test_sigterm_shutdown () =
  let path = tmp_sock () in
  let srv = Server.create (Server.Static index_a) in
  Server.start srv [ Server.Unix_sock path ];
  Client.with_connection (Server.Unix_sock path) (fun c -> Client.ping c);
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  Server.wait srv;
  Alcotest.(check bool) "socket unlinked on SIGTERM" false
    (Sys.file_exists path);
  (* stop after the signal-driven shutdown is a harmless no-op *)
  Server.stop srv

(* --- health, degradation, fault tolerance ----------------------------------- *)

(* The Health op round-trips: a static backend is never degraded and
   reports its true generation and document count. *)
let test_health_roundtrip () =
  with_server (Server.Static index_a) (fun srv addr ->
      Client.with_connection addr (fun c ->
          let h = Client.health c in
          Alcotest.(check bool) "not degraded" false h.Client.degraded;
          Alcotest.(check string) "no reason" "" h.Client.reason;
          Alcotest.(check int) "doc count" (Array.length docs_a)
            h.Client.doc_count;
          Alcotest.(check int) "generation" (Server.generation srv)
            h.Client.generation))

(* Disk full under a live server: writes answer [Degraded] frames,
   queries keep serving the exact oracle answers, Health and the stats
   JSON expose the state, and once the fault clears the health probe
   re-arms the write path — all over the wire. *)
let test_degraded_serving () =
  with_live_server ~probe_interval:infinity (fun _srv addr log ->
      Client.with_connection addr (fun c ->
          Array.iter (fun d -> ignore (Client.insert c (xml_of d) : int)) docs_a;
          (* The disk goes bad: every file write / fsync / open refuses
             with ENOSPC (sockets are a separate fault class, so the
             wire stays healthy). *)
          let rules =
            List.init 10 (fun i ->
                { Xfault.at = i; on = Xfault.Write; fault = Xfault.Enospc })
            @ List.init 5 (fun i ->
                  { Xfault.at = i; on = Xfault.Fsync; fault = Xfault.Enospc })
            @ List.init 5 (fun i ->
                  { Xfault.at = i; on = Xfault.Open; fault = Xfault.Enospc })
          in
          Xfault.install (Xfault.Injector.create rules);
          Fun.protect ~finally:Xfault.uninstall (fun () ->
              (match Client.insert c "<P/>" with
               | _ -> Alcotest.fail "insert accepted on a full disk"
               | exception Client.Server_error (P.Degraded, _) -> ());
              (* Queries keep answering, and correctly. *)
              List.iter
                (fun (q, want) ->
                  Alcotest.(check (list int)) ("degraded " ^ q) want
                    (Client.query c q))
                expected;
              (* Health reports the state (its in-handler recovery probe
                 fails while the disk is still refusing). *)
              let h = Client.health c in
              Alcotest.(check bool) "reported degraded" true h.Client.degraded;
              Alcotest.(check bool) "reason present" true (h.Client.reason <> "");
              Alcotest.(check bool) "stats gauge" true
                (index_of (Client.stats c) "\"degraded\": true" <> None);
              (match Client.delete c 0 with
               | _ -> Alcotest.fail "delete accepted on a full disk"
               | exception Client.Server_error (P.Degraded, _) -> ()));
          (* Space freed: the next health probe recovers the store. *)
          let h = Client.health c in
          Alcotest.(check bool) "recovered" false h.Client.degraded;
          Alcotest.(check bool) "store healthy" true
            (Xlog.degraded_reason log = None);
          (* Ingestion resumes, and the refused insert consumed no id. *)
          Alcotest.(check int) "ingestion resumed, no id leaked"
            (Array.length docs_a)
            (Client.insert c "<P><L><S/></L></P>");
          Alcotest.(check (list int)) "new doc answers" [ 1; 2; 4 ]
            (Client.query c "/P/L/S")))

(* An unknown request opcode answers [Unsupported] without dropping the
   connection: old servers survive new clients. *)
let test_unknown_op_keeps_connection () =
  with_server (Server.Static index_a) (fun _srv addr ->
      let fd = raw_connect addr in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          P.write_frame fd (P.encode_request (P.Unknown { op = 0x42 }));
          (match P.read_frame fd with
           | Ok r -> (
             match P.decode_response r with
             | Ok (P.Error { code = P.Unsupported; _ }) -> ()
             | Ok _ -> Alcotest.fail "expected an Unsupported error frame"
             | Error m -> Alcotest.failf "bad response: %s" m)
           | Error _ -> Alcotest.fail "no response to the unknown op");
          (* The same connection still answers. *)
          P.write_frame fd (P.encode_request P.Ping);
          match P.read_frame fd with
          | Ok r -> (
            match P.decode_response r with
            | Ok P.Pong -> ()
            | _ -> Alcotest.fail "expected Pong after the unknown op")
          | Error _ -> Alcotest.fail "connection dropped after the unknown op"))

let quick_policy =
  {
    Client.default_policy with
    Client.attempts = 6;
    backoff = { Xserver.Backoff.base_ms = 1; cap_ms = 10; factor = 2.0 };
  }

(* The self-healing client rides through a full server restart: the
   connection dies, the client reconnects and replays the (idempotent)
   query against the new instance. *)
let test_client_rides_restart () =
  let path = tmp_sock () in
  let srv1 = Server.create (Server.Static index_a) in
  Server.start srv1 [ Server.Unix_sock path ];
  let c = Client.connect ~policy:quick_policy ~seed:7 (Server.Unix_sock path) in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      let q = "/P/R/L" in
      let want = List.assoc q expected in
      Alcotest.(check (list int)) "before restart" want (Client.query c q);
      Server.stop srv1;
      let srv2 = Server.create (Server.Static index_a) in
      Server.start srv2 [ Server.Unix_sock path ];
      Fun.protect
        ~finally:(fun () ->
          Server.stop srv2;
          try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          (* The old fd is dead; the query must transparently reconnect. *)
          Alcotest.(check (list int)) "after restart" want (Client.query c q);
          Client.ping c))

(* At-most-once for mutations: a server that dies after reading the
   request must see an Insert exactly once (the client refuses to
   replay it), while a Query is replayed on a fresh connection. *)
let test_at_most_once_mutations () =
  let path = tmp_sock () in
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX path);
  Unix.listen listener 8;
  let frames = Atomic.make 0 in
  let stop = Atomic.make false in
  let acceptor =
    Thread.create
      (fun () ->
        let rec loop () =
          match Unix.accept listener with
          | fd, _ ->
            (* Read one frame, count it, slam the door: the worst kind
               of peer — it may have applied the request. *)
            (match P.read_frame fd with
             | Ok _ -> Atomic.incr frames
             | Error _ -> ());
            (try Unix.close fd with Unix.Unix_error _ -> ());
            if not (Atomic.get stop) then loop ()
          | exception Unix.Unix_error _ -> ()
        in
        loop ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      (* Wake the acceptor with a throwaway connection, then reap it. *)
      (try
         let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
         (try Unix.connect fd (Unix.ADDR_UNIX path)
          with Unix.Unix_error _ -> ());
         Unix.close fd
       with Unix.Unix_error _ -> ());
      Thread.join acceptor;
      (try Unix.close listener with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let c = Client.connect ~policy:quick_policy ~seed:11 (Server.Unix_sock path) in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (match Client.insert c "<P/>" with
           | _ -> Alcotest.fail "insert cannot succeed against this peer"
           | exception Client.Protocol_error _ -> ());
          Alcotest.(check int) "insert sent exactly once" 1 (Atomic.get frames);
          (match Client.query c "/P" with
           | _ -> Alcotest.fail "query cannot succeed against this peer"
           | exception Client.Protocol_error _ -> ());
          Alcotest.(check bool) "query was replayed" true
            (Atomic.get frames - 1 >= 2)))

(* --- lifecycle -------------------------------------------------------------- *)

let test_clean_shutdown () =
  let path = tmp_sock () in
  let srv = Server.create (Server.Static index_a) in
  Server.start srv [ Server.Unix_sock path ];
  Client.with_connection (Server.Unix_sock path) (fun c ->
      Client.ping c;
      ignore (Client.query c "/P/R/L"));
  Server.stop srv;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists path)

let test_addr_parse () =
  let check s want =
    match Server.addr_of_string s with
    | Ok got -> Alcotest.(check string) s want (Server.addr_to_string got)
    | Error m -> Alcotest.failf "%s: %s" s m
  in
  check "unix:/tmp/x.sock" "unix:/tmp/x.sock";
  check "/tmp/x.sock" "unix:/tmp/x.sock";
  check "localhost:7070" "localhost:7070";
  check ":7070" "127.0.0.1:7070";
  List.iter
    (fun s ->
      match Server.addr_of_string s with
      | Ok _ -> Alcotest.failf "%s should not parse" s
      | Error _ -> ())
    [ "nonsense"; "host:notaport"; "host:0"; "host:99999" ]

let () =
  Alcotest.run "xserver"
    [
      ( "round trips",
        [
          Alcotest.test_case "wire = offline" `Quick test_roundtrip;
          Alcotest.test_case "bad xpath" `Quick test_bad_xpath;
          Alcotest.test_case "address parsing" `Quick test_addr_parse;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "clients + hostile peers" `Quick
            test_concurrent_and_hostile;
          Alcotest.test_case "overload sheds, stays up" `Quick test_overload;
          Alcotest.test_case "deadline answers Timeout" `Quick test_timeout;
        ] );
      ( "observability",
        [
          Alcotest.test_case "metrics reconcile" `Quick test_metrics_reconcile;
          Alcotest.test_case "plan cache hits" `Quick test_plan_cache;
          Alcotest.test_case "reload invalidates plans" `Quick
            test_plan_cache_invalidated_by_reload;
        ] );
      ( "hot swap",
        [
          Alcotest.test_case "snapshot swap is consistent" `Quick
            test_reload_hot_swap;
          Alcotest.test_case "dynamic source reload" `Quick test_dynamic_reload;
        ] );
      ( "pipelining",
        [
          Alcotest.test_case "responses in request order" `Quick
            test_pipeline_in_order;
          Alcotest.test_case "hot swap mid-pipeline" `Quick
            test_pipeline_hot_swap;
          Alcotest.test_case "degraded flip mid-pipeline" `Quick
            test_pipeline_degraded_flip;
          Alcotest.test_case "backpressure pauses and resumes" `Quick
            test_backpressure_resume;
          Alcotest.test_case "oversized result answers Server_error" `Quick
            test_oversized_result;
          Alcotest.test_case "accept shards serve correctly" `Quick
            test_accept_shards_serving;
          Alcotest.test_case "SIGTERM unlinks and stops" `Quick
            test_sigterm_shutdown;
        ] );
      ( "live ingestion",
        [
          Alcotest.test_case "wire ops mutate the store" `Quick
            test_live_wire_ops;
          Alcotest.test_case "mutations rejected when not live" `Quick
            test_live_ops_rejected;
          Alcotest.test_case "reload compacts under queries" `Quick
            test_live_reload_compacts;
        ] );
      ( "fault tolerance",
        [
          Alcotest.test_case "health round trip" `Quick test_health_roundtrip;
          Alcotest.test_case "disk full serves read-only" `Quick
            test_degraded_serving;
          Alcotest.test_case "unknown op keeps the connection" `Quick
            test_unknown_op_keeps_connection;
          Alcotest.test_case "client rides a server restart" `Quick
            test_client_rides_restart;
          Alcotest.test_case "mutations are at-most-once" `Quick
            test_at_most_once_mutations;
        ] );
      ( "lifecycle",
        [ Alcotest.test_case "clean shutdown" `Quick test_clean_shutdown ] );
    ]
