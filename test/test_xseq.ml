(* End-to-end tests of the Xseq facade, including the paper's worked
   examples (Figures 1–5). *)

module T = Xmlcore.Xml_tree

let e = T.elt
let v = T.text

(* Figure 1's project document. *)
let project_doc =
  e "P"
    [
      v "xml";
      e "R" [ e "M" [ v "tom" ]; e "L" [ v "newyork" ] ];
      e "D"
        [
          e "M" [ v "johnson" ];
          e "U" [ e "M" [ v "mary" ]; e "N" [ v "GUI" ] ];
          e "U" [ e "N" [ v "engine" ] ];
          e "L" [ v "boston" ];
        ];
    ]

(* Figure 4: D = P(L(S), L(B)) must NOT match Q = P(L(S,B)). *)
let fig4_doc = e "P" [ e "L" [ e "S" [] ]; e "L" [ e "B" [] ] ]
let fig4_doc_conj = e "P" [ e "L" [ e "S" []; e "B" [] ] ]

let build ?config docs = Xseq.build ?config (Array.of_list docs)

let check_query ?(msg = "query") index xpath expected =
  Alcotest.(check (list int)) msg expected (Xseq.query_xpath index xpath)

let test_false_alarm () =
  (* Index both documents; the conjunctive query must only return the
     document where one L has both S and B. *)
  let index = build [ fig4_doc; fig4_doc_conj ] in
  let q = Xseq.Pattern.(elt "P" [ elt "L" [ elt "S" []; elt "B" [] ] ]) in
  Alcotest.(check (list int)) "no false alarm" [ 1 ] (Xseq.query index q);
  (* The split query P(L(S), L(B)) requires two distinct L siblings. *)
  let q2 = Xseq.Pattern.(elt "P" [ elt "L" [ elt "S" [] ]; elt "L" [ elt "B" [] ] ]) in
  Alcotest.(check (list int)) "identical siblings" [ 0 ] (Xseq.query index q2)

let test_false_dismissal () =
  (* Figure 5: isomorphic forms must both be found. *)
  let d1 = e "P" [ e "L" [ e "S" [] ]; e "L" [ e "B" [] ] ] in
  let d2 = e "P" [ e "L" [ e "B" [] ]; e "L" [ e "S" [] ] ] in
  let index = build [ d1; d2 ] in
  let q = Xseq.Pattern.(elt "P" [ elt "L" [ elt "S" [] ]; elt "L" [ elt "B" [] ] ]) in
  Alcotest.(check (list int)) "both isomorphic forms" [ 0; 1 ] (Xseq.query index q)

let test_project_queries () =
  let index = build [ project_doc ] in
  check_query index "/P/R/L" [ 0 ];
  check_query index "/P/D/U/N" [ 0 ];
  check_query index "/P//N" [ 0 ];
  check_query index "/P/*/L" [ 0 ];
  check_query index "/P/R[L='newyork']" [ 0 ];
  check_query index "/P/R[L='boston']" [];
  check_query index "/P/D[L='boston']/U[N='GUI']" [ 0 ];
  check_query index "//U[M='mary']" [ 0 ];
  check_query index "//U[M='tom']" [];
  (* The paper's Section 3.1 example: branching query with two value
     predicates. *)
  check_query index "/P[R/L='newyork']/D[L='boston']" [ 0 ];
  check_query index "/P[R/L='boston']/D[L='newyork']" []

let test_wildcard_star_descendant () =
  let index = build [ project_doc ] in
  check_query index "/P/*[N='engine']" [];
  (* U is two levels below P *)
  check_query index "/P//*[N='engine']" [ 0 ];
  check_query index "/P/D/*[N='engine']" [ 0 ]

let test_two_identical_units () =
  (* The document has two U units under D; ask for both in one query. *)
  let index = build [ project_doc ] in
  check_query index "/P/D[U/N='GUI'][U/N='engine']" [ 0 ];
  (* A single U with both names does not exist. *)
  let q =
    Xseq.Pattern.(
      elt "P" [ elt "D" [ elt "U" [ elt "N" [ text "GUI" ]; elt "N" [ text "engine" ] ] ] ])
  in
  Alcotest.(check (list int)) "conjunctive unit" [] (Xseq.query index q)

let test_multi_doc () =
  let docs =
    [
      e "P" [ e "R" [ e "L" [ v "boston" ] ] ];
      e "P" [ e "R" [ e "L" [ v "newyork" ] ] ];
      e "P" [ e "D" [ e "L" [ v "boston" ] ] ];
      e "P" [ e "R" [ e "L" [ v "boston" ] ]; e "D" [ e "L" [ v "boston" ] ] ];
    ]
  in
  let index = build docs in
  check_query index "/P/R[L='boston']" [ 0; 3 ];
  check_query index "/P/D[L='boston']" [ 2; 3 ];
  check_query index "/P[R/L='boston']/D[L='boston']" [ 3 ];
  check_query index "//L[text='boston']" [ 0; 2; 3 ];
  check_query index "/P/R" [ 0; 1; 3 ]

let test_strategies_agree () =
  (* All queryable sequencing strategies must return identical answers. *)
  let docs =
    [
      project_doc;
      fig4_doc;
      fig4_doc_conj;
      e "P" [ e "R" [ e "M" [ v "tom" ] ]; e "D" [ e "L" [ v "boston" ] ] ];
    ]
  in
  let queries =
    [ "/P//L"; "/P/D[L='boston']"; "/P[L/S]"; "//M[text='tom']"; "/P/L/B" ]
  in
  let configs =
    [
      ("probability", Xseq.default_config);
      ( "depth-first",
        { Xseq.default_config with sequencing = Xseq.Depth_first { canonical = true } } );
      ( "breadth-first",
        { Xseq.default_config with sequencing = Xseq.Breadth_first { canonical = true } } );
      ( "text-mode",
        { Xseq.default_config with value_mode = Sequencing.Encoder.Text } );
    ]
  in
  let reference = build docs in
  List.iter
    (fun (name, config) ->
      let index = build ~config docs in
      List.iter
        (fun q ->
          Alcotest.(check (list int))
            (Printf.sprintf "%s: %s" name q)
            (Xseq.query_xpath reference q) (Xseq.query_xpath index q))
        queries)
    configs

let test_text_prefix () =
  let config = { Xseq.default_config with value_mode = Sequencing.Encoder.Text } in
  let docs =
    [
      e "P" [ e "L" [ v "boston" ] ];
      e "P" [ e "L" [ v "bost" ] ];
      e "P" [ e "L" [ v "b" ] ];
      e "P" [ e "L" [ v "newyork" ] ];
    ]
  in
  let index = build ~config docs in
  check_query index "/P[L='boston']" [ 0 ];
  check_query index "/P[L='bost']" [ 1 ];
  check_query index "/P[L^='bost']" [ 0; 1 ];
  check_query index "/P[L^='b']" [ 0; 1; 2 ];
  check_query index "/P[L^='x']" []

let test_size_accessors () =
  let index = build [ project_doc; fig4_doc ] in
  Alcotest.(check int) "doc count" 2 (Xseq.doc_count index);
  Alcotest.(check bool) "nodes > 0" true (Xseq.node_count index > 0);
  Alcotest.(check bool) "size formula" true
    (Xseq.size_bytes index = (4 * 2) + (8 * Xseq.node_count index));
  Alcotest.(check bool) "avg seq len" true (Xseq.average_sequence_length index > 0.);
  Alcotest.(check bool) "paths > 0" true (Xseq.distinct_paths index > 0);
  Alcotest.(check bool) "layout > 0" true (Xseq.layout_bytes index > 0)

let test_document_roundtrip () =
  let index = build [ project_doc ] in
  Alcotest.(check bool) "kept document" true
    (T.equal (Xseq.document index 0) project_doc);
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Xseq.document: unknown id") (fun () ->
      ignore (Xseq.document index 7))

(* --- persistence ---------------------------------------------------------- *)

let with_temp_file f =
  let path = Filename.temp_file "xseq_test" ".idx" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let save_load_roundtrip config docs queries () =
  with_temp_file (fun path ->
      let original = build ~config docs in
      Xseq.save original path;
      let restored = Xseq.load path in
      Alcotest.(check int) "doc count" (Xseq.doc_count original)
        (Xseq.doc_count restored);
      Alcotest.(check int) "node count" (Xseq.node_count original)
        (Xseq.node_count restored);
      Alcotest.(check bool) "documents kept" true
        (T.equal (Xseq.document restored 0) (Xseq.document original 0));
      List.iter
        (fun q ->
          Alcotest.(check (list int)) q (Xseq.query_xpath original q)
            (Xseq.query_xpath restored q))
        queries)

let roundtrip_docs = [ project_doc; fig4_doc; fig4_doc_conj ]

let roundtrip_queries =
  [ "/P//L"; "/P/D[L='boston']"; "/P[L/S]"; "//M[text='tom']"; "/P/D/U/N" ]

let test_save_load_default =
  save_load_roundtrip Xseq.default_config roundtrip_docs roundtrip_queries

let test_save_load_df =
  save_load_roundtrip
    { Xseq.default_config with sequencing = Xseq.Depth_first { canonical = true } }
    roundtrip_docs roundtrip_queries

let test_save_load_text =
  save_load_roundtrip
    { Xseq.default_config with value_mode = Sequencing.Encoder.Text }
    roundtrip_docs roundtrip_queries

let test_save_load_sampled =
  save_load_roundtrip
    { Xseq.default_config with sample_fraction = 0.5; sample_seed = 9 }
    roundtrip_docs roundtrip_queries

let test_save_rejects () =
  let index =
    build ~config:{ Xseq.default_config with keep_documents = false } [ project_doc ]
  in
  Alcotest.check_raises "no docs"
    (Invalid_argument "Xseq.save: index was built with keep_documents = false")
    (fun () -> Xseq.save index "/tmp/never-written.idx");
  let custom =
    build
      ~config:
        {
          Xseq.default_config with
          sequencing = Xseq.Custom Sequencing.Strategy.Depth_first;
        }
      [ project_doc ]
  in
  Alcotest.check_raises "custom strategy"
    (Invalid_argument "Xseq.save: custom strategies cannot be persisted")
    (fun () -> Xseq.save custom "/tmp/never-written.idx")

let test_load_rejects_garbage () =
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      Marshal.to_channel oc (1, "not an index") [];
      close_out oc;
      match Xseq.load path with
      | _ -> Alcotest.fail "expected failure"
      | exception _ -> ())

(* --- invariances ----------------------------------------------------------- *)

let test_weights_do_not_change_results () =
  (* Eq. 6 weights reorder sequences but must never change answers. *)
  let docs = Array.of_list [ project_doc; fig4_doc; fig4_doc_conj ] in
  let weighted =
    Xseq.build
      ~config:
        {
          Xseq.default_config with
          sequencing =
            Xseq.Probability_weighted
              (fun p -> 1.0 +. float_of_int (Sequencing.Path.to_int p mod 7));
        }
      docs
  in
  let plain = Xseq.build docs in
  List.iter
    (fun q ->
      Alcotest.(check (list int)) q (Xseq.query_xpath plain q)
        (Xseq.query_xpath weighted q))
    roundtrip_queries

let test_random_index_rejects_queries () =
  let index =
    build ~config:{ Xseq.default_config with sequencing = Xseq.Random 3 } [ project_doc ]
  in
  (match Xseq.query_xpath index "/P/R" with
   | _ -> Alcotest.fail "expected Unsupported_strategy"
   | exception Xquery.Query_seq.Unsupported_strategy _ -> ());
  (* Batched execution must reject identically — the whole batch fails
     with the same exception a sequential loop would hit first, for any
     number of domains. *)
  let patterns = Array.map Xseq.Xpath.parse [| "/P/R"; "/P//L" |] in
  List.iter
    (fun domains ->
      match Xseq.query_batch ~domains index patterns with
      | _ -> Alcotest.failf "expected Unsupported_strategy (%d domains)" domains
      | exception Xquery.Query_seq.Unsupported_strategy _ -> ())
    [ 1; 2 ]

let test_empty_corpus () =
  let index = Xseq.build [||] in
  Alcotest.(check int) "no docs" 0 (Xseq.doc_count index);
  Alcotest.(check (list int)) "no results" [] (Xseq.query_xpath index "/P/R")

let test_prepared_queries () =
  let index = build [ project_doc; fig4_doc; fig4_doc_conj ] in
  List.iter
    (fun q ->
      let pattern = Xseq.Xpath.parse q in
      let prepared = Xseq.prepare index pattern in
      Alcotest.(check (list int)) q (Xseq.query index pattern)
        (Xseq.run_prepared index prepared);
      (* prepared queries are reusable *)
      Alcotest.(check (list int)) (q ^ " (again)") (Xseq.query index pattern)
        (Xseq.run_prepared index prepared))
    [ "/P//L"; "/P/D[L='boston']"; "/P[L/S]"; "/P/*/M" ]

let test_generation_stamp () =
  (* Every index gets a distinct generation; prepared queries are pinned
     to the index they were compiled against. *)
  let a = build [ project_doc ] in
  let b = build [ project_doc ] in
  Alcotest.(check bool) "generations distinct" true
    (Xseq.generation a <> Xseq.generation b);
  let p = Xseq.prepare a (Xseq.Xpath.parse "/P/R/L") in
  Alcotest.(check (list int)) "runs on its own index" [ 0 ]
    (Xseq.run_prepared a p);
  (match Xseq.run_prepared b p with
   | _ -> Alcotest.fail "expected Invalid_argument"
   | exception Invalid_argument msg ->
     (* "Xseq.run_prepared: prepared query belongs to index generation
        %d, not %d" *)
     Alcotest.(check bool) "message names the mismatch" true
       (String.length msg >= 17
        && String.sub msg 0 17 = "Xseq.run_prepared"));
  (* load produces a fresh generation too *)
  with_temp_file (fun path ->
      Xseq.save a path;
      let restored = Xseq.load path in
      Alcotest.(check bool) "load gets fresh generation" true
        (Xseq.generation restored <> Xseq.generation a);
      match Xseq.run_prepared restored p with
      | _ -> Alcotest.fail "expected Invalid_argument after load"
      | exception Invalid_argument _ -> ())

let test_contains () =
  let index = build [ project_doc; fig4_doc ] in
  let p = Xseq.Xpath.parse "/P/L/S" in
  Alcotest.(check bool) "doc 1 matches" true (Xseq.contains index p 1);
  Alcotest.(check bool) "doc 0 does not" false (Xseq.contains index p 0)

(* --- dynamic index ---------------------------------------------------------- *)

let test_dynamic_basics () =
  let d = Xseq.Dynamic.create ~rebuild_threshold:3 [| project_doc |] in
  Alcotest.(check int) "initial count" 1 (Xseq.Dynamic.doc_count d);
  let id1 = Xseq.Dynamic.add d fig4_doc in
  let id2 = Xseq.Dynamic.add d fig4_doc_conj in
  Alcotest.(check int) "id1" 1 id1;
  Alcotest.(check int) "id2" 2 id2;
  Alcotest.(check int) "pending" 2 (Xseq.Dynamic.pending d);
  (* queries see base + tail, with correct ids *)
  Alcotest.(check (list int)) "tail visible" [ 1; 2 ]
    (Xseq.Dynamic.query_xpath d "/P/L/S");
  Alcotest.(check (list int)) "base visible" [ 0 ]
    (Xseq.Dynamic.query_xpath d "/P/D[L='boston']");
  (* the third add crosses the threshold and triggers a rebuild *)
  let id3 = Xseq.Dynamic.add d (T.elt "P" [ T.elt "L" [ T.elt "S" [] ] ]) in
  Alcotest.(check int) "id3" 3 id3;
  Alcotest.(check int) "flushed" 0 (Xseq.Dynamic.pending d);
  Alcotest.(check (list int)) "after rebuild" [ 1; 2; 3 ]
    (Xseq.Dynamic.query_xpath d "/P/L/S")

let test_dynamic_matches_batch () =
  (* Incrementally built answers = batch-built answers at every step. *)
  let docs = Xdatagen.Synthetic.dataset { Xdatagen.Synthetic.l = 3; f = 4; a = 25; i = 20; p = 40 } 40 in
  let d = Xseq.Dynamic.create ~rebuild_threshold:7 [||] in
  Array.iteri
    (fun k doc ->
      ignore (Xseq.Dynamic.add d doc);
      if k mod 13 = 0 then begin
        let batch = Xseq.build (Array.sub docs 0 (k + 1)) in
        let opts =
          { Xdatagen.Query_gen.default_opts with size = 4; value_prob = 0.5 }
        in
        List.iter
          (fun q ->
            Alcotest.(check (list int))
              (Xquery.Pattern.to_string q)
              (Xseq.query batch q) (Xseq.Dynamic.query d q))
          (Xdatagen.Query_gen.generate ~seed:k ~opts (Array.sub docs 0 (k + 1)) 4)
      end)
    docs;
  let snap = Xseq.Dynamic.snapshot d in
  Alcotest.(check int) "snapshot complete" 40 (Xseq.doc_count snap);
  Alcotest.(check int) "nothing pending" 0 (Xseq.Dynamic.pending d)

let () =
  Alcotest.run "xseq"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "fig4 false alarm" `Quick test_false_alarm;
          Alcotest.test_case "fig5 false dismissal" `Quick test_false_dismissal;
          Alcotest.test_case "project queries" `Quick test_project_queries;
          Alcotest.test_case "wildcards" `Quick test_wildcard_star_descendant;
          Alcotest.test_case "identical units" `Quick test_two_identical_units;
          Alcotest.test_case "multi doc" `Quick test_multi_doc;
          Alcotest.test_case "strategies agree" `Quick test_strategies_agree;
          Alcotest.test_case "text prefix" `Quick test_text_prefix;
          Alcotest.test_case "size accessors" `Quick test_size_accessors;
          Alcotest.test_case "document roundtrip" `Quick test_document_roundtrip;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "save/load default" `Quick test_save_load_default;
          Alcotest.test_case "save/load depth-first" `Quick test_save_load_df;
          Alcotest.test_case "save/load text mode" `Quick test_save_load_text;
          Alcotest.test_case "save/load sampled" `Quick test_save_load_sampled;
          Alcotest.test_case "save rejections" `Quick test_save_rejects;
          Alcotest.test_case "load rejects garbage" `Quick test_load_rejects_garbage;
        ] );
      ( "invariances",
        [
          Alcotest.test_case "weights preserve results" `Quick
            test_weights_do_not_change_results;
          Alcotest.test_case "random index rejects queries" `Quick
            test_random_index_rejects_queries;
          Alcotest.test_case "empty corpus" `Quick test_empty_corpus;
          Alcotest.test_case "prepared queries" `Quick test_prepared_queries;
          Alcotest.test_case "generation stamp" `Quick test_generation_stamp;
          Alcotest.test_case "contains" `Quick test_contains;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "basics" `Quick test_dynamic_basics;
          Alcotest.test_case "matches batch build" `Quick test_dynamic_matches_batch;
        ] );
    ]
