(* xseq command-line tool.

   Examples:
     xseq gen --kind dblp -n 1000 -o records.xml
     xseq stats records.xml
     xseq sequence records.xml --strategy depth-first --limit 3
     xseq query records.xml "//author[text='David Maier']" --show 2 --io *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* An input is either a saved index (columnar store magic, plain or
   compressed) or an XML record file. *)
let is_index_file path =
  match open_in_bin path with
  | ic ->
    let ok =
      try
        let m = really_input_string ic 8 in
        m = "xseqcol1" || m = "xseqcol2"
      with End_of_file -> false
    in
    close_in ic;
    ok
  | exception Sys_error _ -> false

let load_documents path =
  match Xmlcore.Xml_parser.parse_fragments (read_file path) with
  | docs -> Array.of_list docs
  | exception Xmlcore.Xml_parser.Parse_error { line; msg; _ } ->
    Printf.eprintf "%s:%d: parse error: %s\n" path line msg;
    exit 1

let strategy_conv =
  let parse = function
    | "probability" | "prob" -> Ok `Probability
    | "depth-first" | "df" -> Ok `Depth_first
    | "breadth-first" | "bf" -> Ok `Breadth_first
    | s -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  let print ppf s =
    Format.pp_print_string ppf
      (match s with
       | `Probability -> "probability"
       | `Depth_first -> "depth-first"
       | `Breadth_first -> "breadth-first")
  in
  Arg.conv (parse, print)

(* Load a saved index, or build one from XML records. *)
let load_or_build path config =
  if is_index_file path then Xseq.load path
  else Xseq.build ~config (load_documents path)

let config_of_strategy = function
  | `Probability -> Xseq.default_config
  | `Depth_first ->
    { Xseq.default_config with sequencing = Xseq.Depth_first { canonical = true } }
  | `Breadth_first ->
    { Xseq.default_config with sequencing = Xseq.Breadth_first { canonical = true } }

let strategy_arg =
  Arg.(
    value
    & opt strategy_conv `Probability
    & info [ "strategy" ] ~docv:"STRATEGY"
        ~doc:
          "Sequencing strategy: $(b,probability) (the paper's gbest, \
           default), $(b,depth-first) or $(b,breadth-first).")

let input_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"XML file containing one record per root element.")

(* --- gen ---------------------------------------------------------------- *)

let gen_cmd =
  let kind =
    Arg.(
      value
      & opt (enum [ ("synthetic", `Synthetic); ("dblp", `Dblp); ("xmark", `Xmark) ]) `Synthetic
      & info [ "kind" ] ~doc:"Generator: $(b,synthetic), $(b,dblp) or $(b,xmark).")
  in
  let params =
    Arg.(
      value
      & opt string "L3F5A25I0P40"
      & info [ "params" ] ~docv:"LxFxAxIxPx"
          ~doc:"Synthetic dataset parameters, e.g. $(b,L3F5A25I0P40).")
  in
  let n =
    Arg.(value & opt int 1000 & info [ "n" ] ~doc:"Number of records to generate.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Random seed.") in
  let ident =
    Arg.(
      value & flag
      & info [ "identical-siblings" ]
          ~doc:"XMark only: allow repeating children (identical siblings).")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).")
  in
  let run kind params n seed ident output =
    let docs =
      match kind with
      | `Synthetic ->
        let p =
          try Xdatagen.Synthetic.parse_name params
          with Invalid_argument m ->
            Printf.eprintf "%s\n" m;
            exit 1
        in
        Xdatagen.Synthetic.dataset ~schema_seed:seed ~data_seed:(seed + 1) p n
      | `Dblp -> Xdatagen.Dblp_gen.generate ~seed n
      | `Xmark -> Xdatagen.Xmark_gen.generate ~seed ~identical_siblings:ident n
    in
    let out = match output with None -> stdout | Some f -> open_out f in
    Array.iter
      (fun d -> output_string out (Xmlcore.Xml_printer.to_string d ^ "\n"))
      docs;
    if output <> None then close_out out;
    Printf.eprintf "wrote %d records\n" (Array.length docs)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic, DBLP-like or XMark-like dataset.")
    Term.(const run $ kind $ params $ n $ seed $ ident $ output)

(* --- stats -------------------------------------------------------------- *)

let stats_cmd =
  let run input strategy =
    let t0 = Unix.gettimeofday () in
    let index = load_or_build input (config_of_strategy strategy) in
    let dt = Unix.gettimeofday () -. t0 in
    Printf.printf "records:              %d\n" (Xseq.doc_count index);
    Printf.printf "trie nodes:           %d\n" (Xseq.node_count index);
    Printf.printf "distinct paths:       %d\n" (Xseq.distinct_paths index);
    Printf.printf "avg sequence length:  %.1f\n" (Xseq.average_sequence_length index);
    Printf.printf "size estimate (4n+cN): %d bytes\n" (Xseq.size_bytes index);
    Printf.printf "page layout:          %d bytes\n" (Xseq.layout_bytes index);
    Printf.printf "build time:           %.0f ms\n" (dt *. 1000.)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Build an index over the records and print its statistics.")
    Term.(const run $ input_arg $ strategy_arg)

(* --- sequence ------------------------------------------------------------ *)

let sequence_cmd =
  let limit =
    Arg.(value & opt int 5 & info [ "limit" ] ~doc:"Records to show (default 5).")
  in
  let run input strategy limit =
    let docs = load_documents input in
    let config = config_of_strategy strategy in
    let index = Xseq.build ~config docs in
    let strategy = Xseq.strategy index in
    Array.iteri
      (fun i doc ->
        if i < limit then begin
          let seq = Sequencing.Encoder.encode ~strategy doc in
          Printf.printf "record %d: %s\n" i
            (String.concat " "
               (List.map Sequencing.Path.to_string (Array.to_list seq)))
        end)
      docs
  in
  Cmd.v
    (Cmd.info "sequence"
       ~doc:"Print the constraint-sequence representation of the first records.")
    Term.(const run $ input_arg $ strategy_arg $ limit)

(* --- query --------------------------------------------------------------- *)

let parse_xpath_or_exit q =
  try Xseq.Xpath.parse q
  with Xquery.Xpath_parser.Syntax_error { pos; msg } ->
    Printf.eprintf "query:%d: %s\n" pos msg;
    exit 1

(* Network-facing commands exit with distinct codes so scripts and the
   CI chaos harness can tell failure modes apart without scraping
   stderr:

     0  success
     1  usage / server application error (bad query, unknown snapshot, ...)
     2  cannot reach the server, or the transport/protocol broke
     3  the request deadline expired
     4  the server is up but degraded (read-only store refused a write)
     5  the server is a replication follower and refused the operation
        (the message carries the primary's endpoint)

   Documented in each command's EXIT STATUS man section and in the
   README. *)
let exit_unreachable = 2
let exit_timeout = 3
let exit_degraded = 4
let exit_not_primary = 5

let remote_exits =
  Cmd.Exit.info ~doc:"on success." 0
  :: Cmd.Exit.info
       ~doc:
         "on usage errors and server application errors (bad query, \
          unknown snapshot, unsupported operation)."
       1
  :: Cmd.Exit.info
       ~doc:
         "when the server is unreachable (connection refused, no such \
          socket) or the connection/protocol broke beyond the client's \
          retries."
       exit_unreachable
  :: Cmd.Exit.info ~doc:"when the request deadline expired." exit_timeout
  :: Cmd.Exit.info
       ~doc:
         "when the server answered $(b,degraded): its store is \
          read-only after a disk fault and refused the write.  Probe \
          with $(b,xseq query --connect ADDR --health)."
       exit_degraded
  :: Cmd.Exit.info
       ~doc:
         "when the server answered $(b,not primary): it is a \
          replication follower and the operation belongs on the \
          primary.  The error message names the primary's endpoint \
          (retry there, or use $(b,--endpoints) to chase it \
          automatically)."
       exit_not_primary
  :: Cmd.Exit.defaults

(* Map a failed client call onto the exit-code scheme above.  Wraps
   every remote operation in both [query --connect] and [ingest
   --connect]. *)
let handle_client_errors f =
  try f () with
  | Xserver.Client.Server_error (Xserver.Protocol.Degraded, msg) ->
    Printf.eprintf "server degraded (store is read-only): %s\n" msg;
    exit exit_degraded
  | Xserver.Client.Server_error (Xserver.Protocol.Timeout, msg) ->
    Printf.eprintf "server timeout: %s\n" msg;
    exit exit_timeout
  | Xserver.Client.Server_error (Xserver.Protocol.Not_primary, hint) ->
    Printf.eprintf "server is a follower%s\n"
      (if hint = "" then " (primary unknown)"
       else Printf.sprintf "; the primary is %s" hint);
    exit exit_not_primary
  | Xserver.Client.Server_error (code, msg) ->
    Printf.eprintf "server error (%s): %s\n"
      (Xserver.Protocol.error_code_to_string code)
      msg;
    exit 1
  | Xserver.Client.Timeout msg ->
    Printf.eprintf "timeout: %s\n" msg;
    exit exit_timeout
  | Xserver.Client.Protocol_error msg ->
    Printf.eprintf "protocol error: %s\n" msg;
    exit exit_unreachable
  | Unix.Unix_error (e, _, _) ->
    Printf.eprintf "connection error: %s\n" (Unix.error_message e);
    exit exit_unreachable

let connect_or_exit addr_s =
  match Xserver.Server.addr_of_string addr_s with
  | Error msg ->
    Printf.eprintf "--connect: %s\n" msg;
    exit 1
  | Ok addr ->
    (try Xserver.Client.connect addr with
     | Unix.Unix_error (e, _, _) ->
       Printf.eprintf "cannot connect to %s: %s\n"
         (Xserver.Server.addr_to_string addr)
         (Unix.error_message e);
       exit exit_unreachable
     | Xserver.Client.Timeout msg ->
       Printf.eprintf "cannot connect to %s: %s\n"
         (Xserver.Server.addr_to_string addr)
         msg;
       exit exit_timeout)

(* Queries against a live server over the wire protocol. *)
let run_remote addr_s queries verbose server_stats reload timeout_ms health =
  let client = connect_or_exit addr_s in
  Fun.protect
    ~finally:(fun () -> Xserver.Client.close client)
    (fun () ->
      let handle_server_errors = handle_client_errors in
      if health then
        handle_server_errors (fun () ->
            let h = Xserver.Client.health client in
            Printf.printf "status:     %s\n"
              (if h.Xserver.Client.degraded then "degraded (read-only)"
               else "healthy");
            if h.Xserver.Client.reason <> "" then
              Printf.printf "reason:     %s\n" h.Xserver.Client.reason;
            Printf.printf "generation: %d\n" h.Xserver.Client.generation;
            Printf.printf "documents:  %d\n" h.Xserver.Client.doc_count;
            if queries = [] && not server_stats && reload = None then
              exit (if h.Xserver.Client.degraded then exit_degraded else 0));
      (match reload with
       | Some path ->
         handle_server_errors (fun () ->
             let path = if path = "" then None else Some path in
             let gen = Xserver.Client.reload ?path client in
             Printf.printf "reloaded; serving generation %d\n" gen)
       | None -> ());
      if server_stats then
        handle_server_errors (fun () ->
            print_endline (Xserver.Client.stats client));
      if queries = [] && not server_stats && reload = None then begin
        Printf.eprintf "no query given (and neither --server-stats nor --reload)\n";
        exit 1
      end;
      List.iter
        (fun q ->
          handle_server_errors (fun () ->
              let t0 = Unix.gettimeofday () in
              let gen, ids = Xserver.Client.query_full ~timeout_ms client q in
              let dt = Unix.gettimeofday () -. t0 in
              if verbose || List.length queries > 1 then
                Printf.printf "%-48s %6d matches (%.2f ms, generation %d)\n" q
                  (List.length ids) (dt *. 1000.) gen
              else
                Printf.printf "%d matching records (%.2f ms)\n"
                  (List.length ids) (dt *. 1000.);
              if not verbose || List.length queries = 1 then
                Printf.printf "ids: %s\n"
                  (String.concat " " (List.map string_of_int ids))))
        queries)

(* Several patterns against one locally built index: compile each once
   ([prepare]) and execute the compiled plan, instead of re-running the
   whole pipeline per pattern the way repeated [query] calls would. *)
let run_local_multi index queries verbose =
  let patterns = List.map parse_xpath_or_exit queries in
  let stats = Xquery.Matcher.create_stats () in
  let t0 = Unix.gettimeofday () in
  let rows =
    List.map2
      (fun q pattern ->
        let c0 = Unix.gettimeofday () in
        let prep =
          try Some (Xseq.prepare index pattern)
          with Xquery.Instantiate.Too_many _ -> None
        in
        let c1 = Unix.gettimeofday () in
        let ids =
          match prep with
          | Some p -> Xseq.run_prepared ~stats index p
          | None -> Xseq.query ~stats index pattern (* exact-scan fallback *)
        in
        (q, ids, c1 -. c0, Unix.gettimeofday () -. c1))
      queries patterns
  in
  let dt = Unix.gettimeofday () -. t0 in
  List.iter
    (fun (q, ids, t_prep, t_run) ->
      if verbose then
        Printf.printf "%-48s %6d matches (prepare %.2f ms, run %.2f ms)\n" q
          (List.length ids) (t_prep *. 1000.) (t_run *. 1000.)
      else Printf.printf "%-48s %6d matches\n" q (List.length ids))
    rows;
  Printf.printf "%d queries in %.2f ms; link probes: %d, candidates: %d\n"
    (List.length rows) (dt *. 1000.) stats.Xquery.Matcher.probes
    stats.Xquery.Matcher.candidates

let run_local_single index q show io paged =
  let pattern = parse_xpath_or_exit q in
  let pager = if io then Some (Xstorage.Pager.create ()) else None in
  let t0 = Unix.gettimeofday () in
  let ids = Xseq.query ?pager index pattern in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "%d matching records (%.2f ms)%s\n" (List.length ids)
    (dt *. 1000.)
    (match pager with
     | Some p -> Printf.sprintf ", %d disk accesses" (Xstorage.Pager.pages_touched p)
     | None -> "");
  (match (paged, Xseq.backing_store index) with
   | true, Some store ->
     Printf.printf "buffer pool: %d page reads, %d hits\n"
       (Xstorage.Store.page_reads store)
       (Xstorage.Store.page_hits store)
   | _ -> ());
  List.iteri
    (fun k id ->
      if k < show then
        Printf.printf "--- record %d ---\n%s\n" id
          (Xmlcore.Xml_printer.to_string ~indent:true (Xseq.document index id))
      else if k = show && show > 0 then print_endline "...")
    ids;
  if show = 0 then
    Printf.printf "ids: %s\n" (String.concat " " (List.map string_of_int ids))

let recovery_suffix (r : Xlog.recovery) =
  String.concat ""
    (List.map (fun (f, d) -> Printf.sprintf "; torn %s (%s)" f d) r.Xlog.torn)

let report_log_recovery cmd log =
  let r = Xlog.recovery log in
  if r.Xlog.replayed > 0 || r.Xlog.torn <> [] then
    Printf.eprintf "xseq %s: recovered %d WAL records%s\n" cmd r.Xlog.replayed
      (recovery_suffix r)

let report_shard_recovery cmd sh =
  List.iter
    (fun (i, r) ->
      if r.Xlog.replayed > 0 || r.Xlog.torn <> [] then
        Printf.eprintf "xseq %s: shard %d recovered %d WAL records%s\n" cmd i
          r.Xlog.replayed (recovery_suffix r))
    (Xshard.recovery sh)

(* Queries answered directly from a durable store directory
   (crash-recovering it first) — the offline twin of [serve --live].
   A directory carrying an xshard.meta opens as the sharded engine. *)
let run_live_queries dir strategy queries =
  if queries = [] then begin
    Printf.eprintf "missing XPATH query\n";
    exit 1
  end;
  let answer_all query_one =
    List.iter
      (fun q ->
        let pattern = parse_xpath_or_exit q in
        let t0 = Unix.gettimeofday () in
        let ids = query_one pattern in
        let dt = Unix.gettimeofday () -. t0 in
        Printf.printf "%d matching records (%.2f ms)\n" (List.length ids)
          (dt *. 1000.);
        Printf.printf "ids: %s\n"
          (String.concat " " (List.map string_of_int ids)))
      queries
  in
  if Xshard.is_sharded_dir dir then begin
    let sh =
      try Xshard.open_ ~config:(config_of_strategy strategy) dir
      with Invalid_argument msg ->
        Printf.eprintf "query: cannot open sharded store %s: %s\n" dir msg;
        exit 1
    in
    Fun.protect
      ~finally:(fun () -> Xshard.close sh)
      (fun () ->
        report_shard_recovery "query" sh;
        answer_all (fun pattern -> Xshard.query sh pattern))
  end
  else begin
    let log =
      try Xlog.open_ ~config:(config_of_strategy strategy) dir
      with Invalid_argument msg ->
        Printf.eprintf "query: cannot open live store %s: %s\n" dir msg;
        exit 1
    in
    Fun.protect
      ~finally:(fun () -> Xlog.close log)
      (fun () ->
        report_log_recovery "query" log;
        answer_all (fun pattern -> Xlog.query log pattern))
  end

(* Queries against a replicated group: fan reads over the endpoint list
   with failover, optionally bounded-staleness via the primary's
   watermark.  Cluster's [Failure] means every endpoint failed. *)
let run_cluster eps queries max_staleness timeout_ms verbose =
  if queries = [] then begin
    Printf.eprintf "missing XPATH query\n";
    exit 1
  end;
  match Xserver.Cluster.create eps with
  | Error msg ->
    Printf.eprintf "--endpoints: %s\n" msg;
    exit 1
  | Ok cluster ->
    Fun.protect
      ~finally:(fun () -> Xserver.Cluster.close cluster)
      (fun () ->
        List.iter
          (fun q ->
            handle_client_errors (fun () ->
                try
                  let t0 = Unix.gettimeofday () in
                  let ids =
                    Xserver.Cluster.query ~timeout_ms ?max_staleness cluster q
                  in
                  let dt = Unix.gettimeofday () -. t0 in
                  if verbose || List.length queries > 1 then
                    Printf.printf "%-48s %6d matches (%.2f ms)\n" q
                      (List.length ids) (dt *. 1000.)
                  else
                    Printf.printf "%d matching records (%.2f ms)\n"
                      (List.length ids) (dt *. 1000.);
                  if not verbose || List.length queries = 1 then
                    Printf.printf "ids: %s\n"
                      (String.concat " " (List.map string_of_int ids))
                with Failure msg ->
                  Printf.eprintf "%s\n" msg;
                  exit exit_unreachable))
          queries)

let query_cmd =
  let args =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FILE XPATH..."
          ~doc:
            "The records (or saved index) followed by one or more queries; \
             with $(b,--connect), every positional argument is a query.")
  in
  let show =
    Arg.(
      value & opt int 0
      & info [ "show" ] ~doc:"Print the first N matching records as XML.")
  in
  let io =
    Arg.(
      value & flag
      & info [ "io" ] ~doc:"Report simulated disk accesses for the query.")
  in
  let paged =
    Arg.(
      value & flag
      & info [ "paged" ]
          ~doc:
            "When FILE is a saved index, leave its columns on disk and \
             answer through the buffer pool; reports real page reads.")
  in
  let pool_pages =
    Arg.(
      value & opt int 256
      & info [ "pool-pages" ] ~docv:"N"
          ~doc:
            "With $(b,--paged): buffer-pool capacity in pages (default \
             256).  Smaller pools model smaller RAM; evictions show up \
             as extra page reads.")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Send the queries to a running $(b,xseq serve) instead of \
             indexing locally.  ADDR is $(b,unix:PATH) or $(b,HOST:PORT).")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose" ] ~doc:"Print per-query compile/run timing.")
  in
  let server_stats =
    Arg.(
      value & flag
      & info [ "server-stats" ]
          ~doc:"With $(b,--connect): print the server's metrics JSON.")
  in
  let reload =
    Arg.(
      value
      & opt ~vopt:(Some "") (some string) None
      & info [ "reload" ] ~docv:"SNAPSHOT"
          ~doc:
            "With $(b,--connect): hot-swap the served index — to the given \
             snapshot file, or (with no value) by refreshing the server's \
             own source.")
  in
  let timeout =
    Arg.(
      value & opt int 0
      & info [ "timeout-ms" ]
          ~doc:"With $(b,--connect): per-request deadline (0 = none).")
  in
  let health =
    Arg.(
      value & flag
      & info [ "health" ]
          ~doc:
            "With $(b,--connect): print the server's health — degraded \
             or not, the reason, its generation and document count.  \
             Alone (no queries), the exit status reflects the state: 0 \
             healthy, 4 degraded.")
  in
  let live =
    Arg.(
      value
      & opt (some string) None
      & info [ "live" ] ~docv:"DIR"
          ~doc:
            "Answer the queries directly from the durable Xlog store in \
             DIR (crash-recovering it first); every positional argument \
             is a query.")
  in
  let endpoints =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "endpoints" ] ~docv:"ADDR,ADDR,..."
          ~doc:
            "Fan the queries over a replicated group: each read goes to \
             whichever endpoint answers (round-robin with failover), \
             and $(b,Not_primary) redirects are chased.  Every \
             positional argument is a query.")
  in
  let max_staleness =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-staleness" ] ~docv:"N"
          ~doc:
            "With $(b,--endpoints): bound follower staleness — the \
             answering replica must hold all but the last N documents \
             of the primary's current watermark (0 = exactly caught \
             up).")
  in
  let run args strategy show io paged pool_pages connect verbose server_stats
      reload timeout health live endpoints max_staleness =
    (match endpoints with
     | Some eps ->
       if connect <> None || live <> None then begin
         Printf.eprintf "--endpoints is mutually exclusive with --connect/--live\n";
         exit 1
       end;
       if show > 0 || io || paged || server_stats || reload <> None || health
       then begin
         Printf.eprintf
           "--show/--io/--paged/--server-stats/--reload/--health do not \
            apply with --endpoints\n";
         exit 1
       end;
       run_cluster eps args max_staleness timeout verbose;
       exit 0
     | None ->
       if max_staleness <> None then begin
         Printf.eprintf "--max-staleness requires --endpoints\n";
         exit 1
       end);
    match (live, connect) with
    | Some _, Some _ ->
      Printf.eprintf "--live and --connect are mutually exclusive\n";
      exit 1
    | Some dir, None ->
      if show > 0 || io || paged || server_stats || reload <> None || health
      then begin
        Printf.eprintf
          "--show/--io/--paged/--server-stats/--reload/--health do not \
           apply with --live\n";
        exit 1
      end;
      run_live_queries dir strategy args
    | None, Some addr ->
      if show > 0 || io || paged then begin
        Printf.eprintf "--show/--io/--paged do not apply with --connect\n";
        exit 1
      end;
      run_remote addr args verbose server_stats reload timeout health
    | None, None ->
      if health then begin
        Printf.eprintf "--health requires --connect\n";
        exit 1
      end;
      (match args with
       | [] ->
         Printf.eprintf "missing FILE (and at least one XPATH)\n";
         exit 1
       | input :: queries ->
         if queries = [] then begin
           Printf.eprintf "missing XPATH query\n";
           exit 1
         end;
         if not (Sys.file_exists input) then begin
           Printf.eprintf "%s: no such file\n" input;
           exit 1
         end;
         let index =
           if is_index_file input then
             Xseq.load
               ~mode:
                 (if paged then Xstorage.Store.Paged else Xstorage.Store.Resident)
               ~pool_pages input
           else begin
             if paged then begin
               Printf.eprintf "--paged requires a saved index file\n";
               exit 1
             end;
             Xseq.build ~config:(config_of_strategy strategy)
               (load_documents input)
           end
         in
         (match queries with
          | [ q ] -> run_local_single index q show io paged
          | _ ->
            if show > 0 || io then begin
              Printf.eprintf "--show/--io apply to a single query only\n";
              exit 1
            end;
            run_local_multi index queries verbose))
  in
  Cmd.v
    (Cmd.info "query" ~exits:remote_exits
       ~doc:
         "Answer tree-pattern queries — against a locally built index, or \
          against a running server with $(b,--connect).  Several queries \
          share one index and are compiled once each.")
    Term.(
      const run $ args $ strategy_arg $ show $ io $ paged $ pool_pages
      $ connect $ verbose $ server_stats $ reload $ timeout $ health $ live
      $ endpoints $ max_staleness)

(* --- serve ---------------------------------------------------------------- *)

let serve_cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Listen on a Unix-domain socket.")
  in
  let port =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT" ~doc:"Listen on TCP.")
  in
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Interface for $(b,--port).")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains executing queries (default 2).")
  in
  let accept_shards =
    Arg.(
      value & opt int 1
      & info [ "accept-shards" ] ~docv:"N"
          ~doc:
            "Event-loop threads accepting and serving connections \
             (default 1).  With $(b,--port), each loop gets its own \
             $(b,SO_REUSEPORT) listener so the kernel spreads incoming \
             flows across loops; Unix-domain sockets are shared by all \
             loops.  Pair with $(b,--workers) on multi-core hosts.")
  in
  let max_pending =
    Arg.(
      value & opt int 64
      & info [ "max-pending" ] ~docv:"N"
          ~doc:
            "Admission bound: requests in flight beyond this answer an \
             $(b,overloaded) error frame (default 64).")
  in
  let plan_cache =
    Arg.(
      value & opt int 256
      & info [ "plan-cache" ] ~docv:"N"
          ~doc:"Prepared-plan LRU capacity (default 256).")
  in
  let no_plan_cache =
    Arg.(
      value & flag
      & info [ "no-plan-cache" ]
          ~doc:"Disable the prepared-plan cache (every query recompiles).")
  in
  let timeout_ms =
    Arg.(
      value & opt int 0
      & info [ "timeout-ms" ]
          ~doc:"Default per-request deadline for requests carrying none (0 = none).")
  in
  let metrics_interval =
    Arg.(
      value & opt float 0.
      & info [ "metrics-interval" ] ~docv:"SECONDS"
          ~doc:"Dump the metrics JSON to stderr every SECONDS (0 = never).")
  in
  let paged =
    Arg.(
      value & flag
      & info [ "paged" ]
          ~doc:
            "Serve the snapshot off disk through the buffer pool instead \
             of materialising it in RAM (FILE must be a saved index).  \
             $(b,Stats) then reports page reads, hits and pool size.")
  in
  let pool_pages =
    Arg.(
      value & opt int 256
      & info [ "pool-pages" ] ~docv:"N"
          ~doc:
            "With $(b,--paged): buffer-pool capacity in pages (default \
             256).  Bounds the resident column-data footprint.")
  in
  let dynamic =
    Arg.(
      value
      & opt (some int) None
      & info [ "dynamic" ] ~docv:"THRESHOLD"
          ~doc:
            "Serve a base-plus-delta Dynamic index with this rebuild \
             threshold; $(b,--reload) (the Reload op) then flushes and \
             hot-swaps the rebuilt snapshot.  Deprecated: prefer \
             $(b,--live).")
  in
  let live =
    Arg.(
      value
      & opt (some string) None
      & info [ "live" ] ~docv:"DIR"
          ~doc:
            "Serve a durable Xlog store living in DIR (created and \
             crash-recovered on open).  The Insert/Delete/Flush wire ops \
             — $(b,xseq ingest --connect) — mutate it; queries answer \
             over base + deltas minus tombstones.  If FILE is also given \
             and the store is empty, FILE's records seed it.")
  in
  let sync_every =
    Arg.(
      value & opt int 1
      & info [ "sync-every" ] ~docv:"N"
          ~doc:
            "With $(b,--live): fsync the WAL after every Nth record (1 = \
             every record, 0 = never).")
  in
  let memtable_limit =
    Arg.(
      value & opt int 256
      & info [ "memtable-limit" ] ~docv:"N"
          ~doc:
            "With $(b,--live): seal the unindexed memtable into a delta \
             segment once it holds N documents (default 256).")
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "With $(b,--live): serve an N-shard store — each shard an \
             independent WAL + delta-segment store, inserts hash-routed, \
             queries scatter-gathered.  N is fixed at creation and \
             recorded in the directory; re-opening an existing sharded \
             directory picks its count up automatically (a conflicting \
             explicit N is an error).")
  in
  let serve_input =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "XML records or a saved index to serve (optional with \
             $(b,--live)).")
  in
  let follow =
    Arg.(
      value
      & opt (some string) None
      & info [ "follow" ] ~docv:"ADDR"
          ~doc:
            "Run as a replication follower of the primary at ADDR \
             ($(b,unix:PATH) or $(b,HOST:PORT)): subscribe to its WAL, \
             mirror every record into the local $(b,--live) store, and \
             serve reads from it.  Mutations answer $(b,not primary) \
             with the leader's endpoint.")
  in
  let advertise =
    Arg.(
      value & opt string ""
      & info [ "advertise" ] ~docv:"ADDR"
          ~doc:
            "How peers and clients reach this node — the leader hint it \
             hands out when promoted, and its identity in elections.")
  in
  let peers =
    Arg.(
      value
      & opt (list string) []
      & info [ "peers" ] ~docv:"ADDR,ADDR,..."
          ~doc:
            "The other replicas' endpoints — the electorate consulted \
             by $(b,--auto-promote) before a follower promotes itself.")
  in
  let sync_replicas =
    Arg.(
      value & opt int 0
      & info [ "sync-replicas" ] ~docv:"N"
          ~doc:
            "Primary: acknowledge a mutation only once N subscribed \
             followers durably hold it (0 = asynchronous replication).  \
             Pair with $(b,--sync-every 1).")
  in
  let ack_timeout_ms =
    Arg.(
      value & opt int 5000
      & info [ "ack-timeout-ms" ] ~docv:"MS"
          ~doc:
            "With $(b,--sync-replicas): how long a mutation may wait \
             for follower acknowledgements before answering a timeout \
             (the write is applied locally; its replication is \
             indeterminate).")
  in
  let heartbeat_timeout_ms =
    Arg.(
      value & opt int 3000
      & info [ "heartbeat-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Follower: presume the primary dead after this much silence \
             (no batch, no heartbeat) and reconnect — or, with \
             $(b,--auto-promote), run an election.")
  in
  let auto_promote =
    Arg.(
      value & flag
      & info [ "auto-promote" ]
          ~doc:
            "Follower: on primary silence, probe $(b,--peers) and \
             promote self if no primary answers and no peer holds a \
             higher durable WAL position.")
  in
  let scrub_interval =
    Arg.(
      value & opt float 0.
      & info [ "scrub-interval" ] ~docv:"SECONDS"
          ~doc:
            "With $(b,--live): anti-entropy scrub — a background pass \
             re-verifying every at-rest checksum (checkpoint, base \
             snapshot regions, WAL record CRCs) every SECONDS (0 = \
             off).  Silent corruption quarantines the store (degraded, \
             read-only) instead of waiting for a query to trip over \
             it; on a follower the quarantine also triggers a snapshot \
             re-seed from the primary, and a clean pass afterwards \
             lifts it.  Counters appear under $(b,scrub) in \
             $(b,query --server-stats).")
  in
  let scrub_rate =
    Arg.(
      value & opt float 32.
      & info [ "scrub-rate-mb-s" ] ~docv:"MB"
          ~doc:
            "With $(b,--scrub-interval): scrub read-bandwidth cap in \
             MiB/s, so the scrubber never starves serving I/O \
             (default 32).")
  in
  let run input strategy socket port host workers accept_shards max_pending
      plan_cache no_plan_cache timeout_ms metrics_interval paged pool_pages
      dynamic live sync_every memtable_limit shards follow advertise peers
      sync_replicas ack_timeout_ms heartbeat_timeout_ms auto_promote
      scrub_interval scrub_rate =
    let addrs =
      (match socket with Some p -> [ Xserver.Server.Unix_sock p ] | None -> [])
      @ (match port with Some p -> [ Xserver.Server.Tcp (host, p) ] | None -> [])
    in
    if addrs = [] then begin
      Printf.eprintf "serve: need --socket PATH and/or --port N\n";
      exit 1
    end;
    if shards <> None && live = None then begin
      Printf.eprintf "serve: --shards applies to --live only\n";
      exit 1
    end;
    if
      paged
      && (live <> None || dynamic <> None
         ||
         match input with
         | Some f -> not (is_index_file f)
         | None -> true)
    then begin
      Printf.eprintf "serve: --paged requires a saved index snapshot FILE\n";
      exit 1
    end;
    let repl_wanted =
      follow <> None || advertise <> "" || peers <> [] || sync_replicas > 0
      || auto_promote
    in
    (match (repl_wanted, live) with
     | true, None ->
       Printf.eprintf
         "serve: --follow/--advertise/--peers/--sync-replicas/\
          --auto-promote require --live DIR (replication ships the \
          store's WAL)\n";
       exit 1
     | true, Some dir when shards <> None || Xshard.is_sharded_dir dir ->
       Printf.eprintf "serve: replication does not support --shards yet\n";
       exit 1
     | _ -> ());
    let log_store = ref None in
    let shard_store = ref None in
    let source =
      match live with
      | Some dir when shards <> None || Xshard.is_sharded_dir dir ->
        let sh =
          try
            Xshard.open_ ?shards ~sync_every ~memtable_limit
              ~config:(config_of_strategy strategy)
              dir
          with Invalid_argument msg ->
            Printf.eprintf "serve: cannot open sharded store %s: %s\n" dir msg;
            exit 1
        in
        shard_store := Some sh;
        report_shard_recovery "serve" sh;
        (match input with
         | Some file when Xshard.doc_count sh = 0 ->
           let docs = load_documents file in
           ignore (Xshard.insert_batch sh docs : int array);
           Xshard.flush sh;
           Printf.eprintf
             "xseq serve: seeded %d-shard store with %d records\n"
             (Xshard.shard_count sh) (Array.length docs)
         | _ -> ());
        Xserver.Server.Sharded sh
      | Some dir ->
        let log =
          try
            Xlog.open_ ~sync_every ~memtable_limit
              ~config:(config_of_strategy strategy)
              dir
          with Invalid_argument msg ->
            Printf.eprintf "serve: cannot open live store %s: %s\n" dir msg;
            exit 1
        in
        log_store := Some log;
        report_log_recovery "serve" log;
        (match input with
         | Some file when Xlog.next_id log = 0 ->
           let docs = load_documents file in
           Array.iter (fun d -> ignore (Xlog.insert log d : int)) docs;
           Xlog.flush log;
           Printf.eprintf "xseq serve: seeded live store with %d records\n"
             (Array.length docs)
         | _ -> ());
        Xserver.Server.Live log
      | None ->
        let input =
          match input with
          | Some f -> f
          | None ->
            Printf.eprintf "serve: need FILE (or --live DIR)\n";
            exit 1
        in
        if is_index_file input then Xserver.Server.Snapshot input
        else begin
          let docs = load_documents input in
          let config = config_of_strategy strategy in
          match dynamic with
          | Some threshold ->
            Xserver.Server.Dynamic
              (Xseq.Dynamic.create ~config ~rebuild_threshold:threshold docs)
          | None -> Xserver.Server.Static (Xseq.build ~config docs)
        end
    in
    let repl_node =
      if not repl_wanted then None
      else
        match !log_store with
        | None -> assert false (* repl_wanted implies an unsharded --live *)
        | Some log ->
          Some
            (Xrepl.Node.create
               {
                 Xrepl.Node.default_config with
                 advertise;
                 follow;
                 peers;
                 sync_replicas;
                 ack_timeout_ms;
                 heartbeat_timeout_ms;
                 auto_promote;
               }
               log)
    in
    let scrubber =
      if scrub_interval <= 0. then None
      else
        match !log_store with
        | None ->
          Printf.eprintf
            "serve: --scrub-interval requires an unsharded --live DIR\n";
          exit 1
        | Some log ->
          let sc =
            Xlog.Scrub.create ~interval:scrub_interval ~rate_mb_s:scrub_rate
              ~log:(fun m -> Printf.eprintf "xseq serve: scrub: %s\n%!" m)
              log
          in
          (match repl_node with
           | Some node ->
             (* peer-connected repair: a quarantined follower re-seeds
                itself from the primary's snapshot; the next clean pass
                lifts the quarantine and counts the repair *)
             Xlog.Scrub.set_repair sc (fun _diag ->
                 Xrepl.Node.request_reseed node)
           | None -> ());
          Some sc
    in
    let config =
      {
        Xserver.Server.default_config with
        workers;
        accept_shards = max 1 accept_shards;
        max_pending;
        plan_cache_capacity = (if no_plan_cache then 0 else plan_cache);
        default_timeout_ms = timeout_ms;
        snapshot_mode =
          (if paged then Xstorage.Store.Paged else Xstorage.Store.Resident);
        snapshot_pool_pages = pool_pages;
        repl = Option.map Xrepl.Node.hooks repl_node;
        scrub = scrubber;
      }
    in
    let server = Xserver.Server.create ~config source in
    Xserver.Server.start server addrs;
    (match scrubber with
     | Some sc ->
       Xlog.Scrub.start sc;
       Printf.eprintf "xseq serve: scrubbing every %.0fs (%.0f MiB/s cap)\n%!"
         scrub_interval scrub_rate
     | None -> ());
    (match repl_node with
     | Some node ->
       Xrepl.Node.start node;
       Printf.eprintf "xseq serve: replication %s, epoch %d%s\n%!"
         (match Xrepl.Node.role node with
          | `Primary -> "primary"
          | `Follower -> "follower")
         (Xrepl.Node.epoch node)
         (match follow with
          | Some ep -> Printf.sprintf ", following %s" ep
          | None -> "")
     | None -> ());
    Printf.eprintf
      "xseq serve: generation %d on %s (%d workers, %d accept shards, %d \
       max pending, plan cache %d)\n\
       %!"
      (Xserver.Server.generation server)
      (String.concat ", " (List.map Xserver.Server.addr_to_string addrs))
      workers (max 1 accept_shards) max_pending
      (if no_plan_cache then 0 else plan_cache);
    let stop _ = Xserver.Server.request_stop server in
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    if metrics_interval > 0. then
      ignore
        (Thread.create
           (fun () ->
             let rec loop () =
               Thread.delay metrics_interval;
               prerr_endline (Xserver.Server.stats_json server);
               loop ()
             in
             loop ())
           ());
    Xserver.Server.wait server;
    (match scrubber with Some sc -> Xlog.Scrub.stop sc | None -> ());
    (match repl_node with Some node -> Xrepl.Node.stop node | None -> ());
    (match !log_store with Some log -> Xlog.close log | None -> ());
    (match !shard_store with Some sh -> Xshard.close sh | None -> ());
    Printf.eprintf "xseq serve: stopped cleanly\n"
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve queries over the xseq wire protocol from a long-lived \
          process: index once, answer many — with a prepared-plan cache, \
          admission control, live metrics and hot index swap ($(b,query \
          --connect) is the matching client).")
    Term.(
      const run $ serve_input $ strategy_arg $ socket $ port $ host $ workers
      $ accept_shards $ max_pending $ plan_cache $ no_plan_cache $ timeout_ms
      $ metrics_interval $ paged $ pool_pages $ dynamic $ live $ sync_every
      $ memtable_limit
      $ shards $ follow $ advertise $ peers $ sync_replicas $ ack_timeout_ms
      $ heartbeat_timeout_ms $ auto_promote $ scrub_interval $ scrub_rate)

(* --- ingest ---------------------------------------------------------------- *)

let ingest_cmd =
  let files =
    Arg.(
      value & pos_all file []
      & info [] ~docv:"FILES"
          ~doc:"XML record files to ingest (one record per root element).")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Send the records to a running $(b,xseq serve --live) over the \
             wire protocol.  ADDR is $(b,unix:PATH) or $(b,HOST:PORT).")
  in
  let live =
    Arg.(
      value
      & opt (some string) None
      & info [ "live" ] ~docv:"DIR"
          ~doc:"Write directly into the durable Xlog store in DIR.")
  in
  let sync_every =
    Arg.(
      value & opt int 1
      & info [ "sync-every" ] ~docv:"N"
          ~doc:
            "With $(b,--live): fsync the WAL after every Nth record (1 = \
             every record, 0 = never).")
  in
  let throttle_ms =
    Arg.(
      value & opt int 0
      & info [ "throttle-ms" ] ~docv:"MS"
          ~doc:
            "Sleep MS milliseconds between records — ingestion pacing; \
             the CI crash-recovery test uses it to widen its kill \
             window.")
  in
  let do_flush =
    Arg.(
      value & flag
      & info [ "flush" ]
          ~doc:
            "After ingesting, seal the memtable into a delta segment and \
             fsync the WAL (over the wire this is the Flush op).")
  in
  let do_compact =
    Arg.(
      value & flag
      & info [ "compact" ]
          ~doc:
            "With $(b,--live): after ingesting, rebuild base and deltas \
             into a fresh snapshot and truncate the WAL (a server does \
             this on the Reload op).")
  in
  let deletes =
    Arg.(
      value
      & opt (list int) []
      & info [ "delete" ] ~docv:"IDS"
          ~doc:"Comma-separated document ids to tombstone after the inserts.")
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "With $(b,--live): create (or open) the store as an N-shard \
             engine; inserts hash-route across the shards.  An existing \
             sharded directory is detected without this flag.")
  in
  let run files strategy connect live sync_every throttle_ms do_flush
      do_compact deletes shards =
    let throttle () =
      if throttle_ms > 0 then Unix.sleepf (float_of_int throttle_ms /. 1000.)
    in
    let docs =
      List.concat_map (fun f -> Array.to_list (load_documents f)) files
    in
    if docs = [] && deletes = [] && (not do_flush) && not do_compact then begin
      Printf.eprintf "nothing to do: no FILES, --delete, --flush or --compact\n";
      exit 1
    end;
    (* [range] claims a dense id interval — only true for an unsharded
       store, where ids are contiguous.  A sharded server hands out
       shard-tagged ids (shard in the high bits), so the wire path
       reports first/last without implying density. *)
    let report ?(range = false) n first last dt =
      if n > 0 then
        Printf.printf
          (if range then
             "ingested %d records in %.2f ms (%.0f records/s), ids %d..%d\n"
           else
             "ingested %d records in %.2f ms (%.0f records/s), first id %d, \
              last id %d\n")
          n (dt *. 1000.)
          (if dt > 0. then float_of_int n /. dt else 0.)
          first last
    in
    match (connect, live) with
    | Some _, Some _ ->
      Printf.eprintf "--connect and --live are mutually exclusive\n";
      exit 1
    | None, None ->
      Printf.eprintf "ingest: need --connect ADDR or --live DIR\n";
      exit 1
    | Some addr, None ->
      if do_compact then begin
        Printf.eprintf
          "--compact applies to --live only (a live server compacts on the \
           Reload op)\n";
        exit 1
      end;
      let client = connect_or_exit addr in
      Fun.protect
        ~finally:(fun () -> Xserver.Client.close client)
        (fun () ->
          handle_client_errors (fun () ->
            let t0 = Unix.gettimeofday () in
            let first = ref (-1) and last = ref (-1) and n = ref 0 in
            List.iter
              (fun d ->
                let id =
                  Xserver.Client.insert client (Xmlcore.Xml_printer.to_string d)
                in
                if !first < 0 then first := id;
                last := id;
                incr n;
                throttle ())
              docs;
            report !n !first !last (Unix.gettimeofday () -. t0);
            List.iter
              (fun id ->
                let existed = Xserver.Client.delete client id in
                Printf.printf "delete %d: %s\n" id
                  (if existed then "ok" else "absent"))
              deletes;
            if do_flush then begin
              let gen = Xserver.Client.flush client in
              Printf.printf "flushed; structure generation %d\n" gen
            end))
    | None, Some dir when shards <> None || Xshard.is_sharded_dir dir ->
      let sh =
        try
          Xshard.open_ ?shards ~sync_every
            ~config:(config_of_strategy strategy)
            dir
        with Invalid_argument msg ->
          Printf.eprintf "ingest: cannot open sharded store %s: %s\n" dir msg;
          exit 1
      in
      Fun.protect
        ~finally:(fun () -> Xshard.close sh)
        (fun () ->
          report_shard_recovery "ingest" sh;
          let t0 = Unix.gettimeofday () in
          let n = ref 0 in
          List.iter
            (fun d ->
              ignore (Xshard.insert sh d : int);
              incr n;
              throttle ())
            docs;
          (* Shard-tagged ids are not contiguous (the shard number lives
             in the high bits), so a first..last range would be
             misleading here; report the routing fan-out instead. *)
          (let dt = Unix.gettimeofday () -. t0 in
           if !n > 0 then
             Printf.printf
               "ingested %d records in %.2f ms (%.0f records/s) across %d \
                shards\n"
               !n (dt *. 1000.)
               (if dt > 0. then float_of_int !n /. dt else 0.)
               (Xshard.shard_count sh));
          List.iter
            (fun id ->
              let existed = Xshard.remove sh id in
              Printf.printf "delete %d: %s\n" id
                (if existed then "ok" else "absent"))
            deletes;
          if do_flush then Xshard.flush sh;
          if do_compact then begin
            ignore (Xshard.compact ~wait:true sh : bool);
            Printf.printf "compacted; structure generation %d\n"
              (Xshard.generation sh)
          end;
          let infos = Xshard.shard_infos sh in
          Printf.printf "store: %d shards, %d live documents\n"
            (Xshard.shard_count sh) (Xshard.doc_count sh);
          Array.iter
            (fun (i : Xshard.shard_info) ->
              Printf.printf
                "  shard %d: %d live documents, %d segments, %d pending, \
                 %d tombstones\n"
                i.Xshard.shard i.Xshard.docs i.Xshard.segments
                i.Xshard.pending i.Xshard.tombstones)
            infos)
    | None, Some dir ->
      let log =
        try
          Xlog.open_ ~sync_every ~config:(config_of_strategy strategy) dir
        with Invalid_argument msg ->
          Printf.eprintf "ingest: cannot open live store %s: %s\n" dir msg;
          exit 1
      in
      Fun.protect
        ~finally:(fun () -> Xlog.close log)
        (fun () ->
          report_log_recovery "ingest" log;
          let t0 = Unix.gettimeofday () in
          let first = ref (-1) and last = ref (-1) and n = ref 0 in
          List.iter
            (fun d ->
              let id = Xlog.insert log d in
              if !first < 0 then first := id;
              last := id;
              incr n;
              throttle ())
            docs;
          report ~range:true !n !first !last (Unix.gettimeofday () -. t0);
          List.iter
            (fun id ->
              let existed = Xlog.remove log id in
              Printf.printf "delete %d: %s\n" id
                (if existed then "ok" else "absent"))
            deletes;
          if do_flush then Xlog.flush log;
          if do_compact then begin
            ignore (Xlog.compact ~wait:true log : bool);
            Printf.printf "compacted; structure generation %d\n"
              (Xlog.generation log)
          end;
          Printf.printf
            "store: %d live documents, %d segments, %d pending, %d \
             tombstones\n"
            (Xlog.doc_count log) (Xlog.segments log) (Xlog.pending log)
            (Xlog.tombstones log))
  in
  Cmd.v
    (Cmd.info "ingest" ~exits:remote_exits
       ~doc:
         "Append records to a durable live store — directly into an Xlog \
          directory with $(b,--live), or over the wire protocol to a \
          running $(b,xseq serve --live) with $(b,--connect).  Every \
          record is WAL-logged before it is acknowledged; $(b,--delete) \
          tombstones ids and $(b,--flush)/$(b,--compact) drive the \
          maintenance ops by hand.")
    Term.(
      const run $ files $ strategy_arg $ connect $ live $ sync_every
      $ throttle_ms $ do_flush $ do_compact $ deletes $ shards)

(* --- promote / repl-status ------------------------------------------------ *)

let promote_cmd =
  let addr =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ADDR"
          ~doc:
            "The replica to promote ($(b,unix:PATH) or $(b,HOST:PORT)).")
  in
  let timeout =
    Arg.(
      value & opt int 10_000
      & info [ "timeout-ms" ] ~doc:"Request deadline (default 10s).")
  in
  let run addr timeout =
    let client = connect_or_exit addr in
    Fun.protect
      ~finally:(fun () -> Xserver.Client.close client)
      (fun () ->
        handle_client_errors (fun () ->
            let epoch = Xserver.Client.promote ~timeout_ms:timeout client in
            Printf.printf "promoted; epoch %d\n" epoch))
  in
  Cmd.v
    (Cmd.info "promote" ~exits:remote_exits
       ~doc:
         "Promote a replica to primary: it bumps the replication epoch, \
          starts accepting mutations, and fences the old primary (whose \
          stale-epoch stream followers now refuse).  Point clients at \
          it, or let $(b,--endpoints) readers chase the new leader \
          hint.")
    Term.(const run $ addr $ timeout)

let repl_status_cmd =
  let addrs =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"ADDR..."
          ~doc:"Replica endpoints to probe ($(b,unix:PATH) or $(b,HOST:PORT)).")
  in
  let run addrs =
    List.iter
      (fun addr_s ->
        match Xserver.Server.addr_of_string addr_s with
        | Error msg -> Printf.printf "%-28s bad address: %s\n" addr_s msg
        | Ok addr -> (
          match Xserver.Client.connect addr with
          | exception e ->
            Printf.printf "%-28s unreachable: %s\n" addr_s
              (match e with
               | Unix.Unix_error (er, _, _) -> Unix.error_message er
               | Xserver.Client.Timeout m -> m
               | e -> Printexc.to_string e)
          | client ->
            Fun.protect
              ~finally:(fun () -> Xserver.Client.close client)
              (fun () ->
                match Xserver.Client.repl_status ~timeout_ms:5000 client with
                | st ->
                  Printf.printf
                    "%-28s %-8s epoch %-4d durable %06d:%d  next id %d%s%s\n"
                    addr_s
                    (match st.Xserver.Client.role with
                     | `Primary -> "primary"
                     | `Follower -> "follower")
                    st.Xserver.Client.epoch
                    st.Xserver.Client.durable.Xlog.Wal.file
                    st.Xserver.Client.durable.Xlog.Wal.off
                    st.Xserver.Client.repl_next_id
                    (if st.Xserver.Client.role = `Follower then
                       Printf.sprintf "  lag %d records (%d bytes)"
                         st.Xserver.Client.lag_records
                         st.Xserver.Client.lag_bytes
                     else "")
                    (if st.Xserver.Client.leader_hint = "" then ""
                     else
                       Printf.sprintf "  (primary: %s)"
                         st.Xserver.Client.leader_hint)
                | exception Xserver.Client.Server_error (code, msg) ->
                  Printf.printf "%-28s error (%s): %s\n" addr_s
                    (Xserver.Protocol.error_code_to_string code)
                    msg
                | exception e ->
                  Printf.printf "%-28s %s\n" addr_s (Printexc.to_string e))))
      addrs
  in
  Cmd.v
    (Cmd.info "repl-status"
       ~doc:
         "Print each replica's role, epoch, durable WAL position, \
          document watermark and — for followers — replication lag in \
          records and bytes; one line per endpoint, unreachable ones \
          reported inline (the command itself always exits 0 unless an \
          address is malformed).")
    Term.(const run $ addrs)

(* --- scrub ----------------------------------------------------------------- *)

let scrub_cmd =
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR|SNAPSHOT"
          ~doc:
            "A live-store directory (checkpoint + base snapshot + WAL \
             files) or a single saved index snapshot.")
  in
  let rate =
    Arg.(
      value & opt float 0.
      & info [ "rate-mb-s" ] ~docv:"MB"
          ~doc:
            "Read-bandwidth cap in MiB/s (0 = unlimited).  A running \
             server scrubs itself with $(b,serve --scrub-interval); \
             this command is the offline twin.")
  in
  let scrub_exits =
    Cmd.Exit.info ~doc:"when every checksum verified." 0
    :: Cmd.Exit.info ~doc:"on usage errors (no such file or directory)." 1
    :: Cmd.Exit.info
         ~doc:
           "when corruption was found; every bad region is listed on \
            stdout."
         exit_degraded
    :: Cmd.Exit.defaults
  in
  let run target rate =
    if not (Sys.file_exists target) then begin
      Printf.eprintf "scrub: %s: no such file or directory\n" target;
      exit 1
    end;
    if Sys.is_directory target then begin
      let r = Xlog.Scrub.scrub_dir ~rate_mb_s:rate target in
      Printf.printf "scrubbed %d files, %d bytes\n" r.Xlog.Scrub.files_scanned
        r.Xlog.Scrub.bytes_scanned;
      if r.Xlog.Scrub.errors = [] then print_endline "clean"
      else begin
        List.iter
          (fun (f, diag) -> Printf.printf "CORRUPT %s: %s\n" f diag)
          r.Xlog.Scrub.errors;
        exit exit_degraded
      end
    end
    else begin
      (* A single snapshot: opening paged with verification walks every
         region checksum without materialising the index. *)
      match
        Xstorage.Store.open_file ~mode:Xstorage.Store.Paged ~pool_pages:16
          ~verify:true target
      with
      | store ->
        let bytes = Xstorage.Store.file_bytes store in
        Xstorage.Store.close store;
        Printf.printf "scrubbed 1 file, %d bytes\nclean\n" bytes
      | exception e ->
        Printf.printf "CORRUPT %s: %s\n" target (Printexc.to_string e);
        exit exit_degraded
    end
  in
  Cmd.v
    (Cmd.info "scrub" ~exits:scrub_exits
       ~doc:
         "Re-verify every at-rest checksum of a store directory (or a \
          single saved snapshot) — checkpoint header, base snapshot \
          regions, WAL record CRCs — and list what is corrupt.  Exits \
          4 when anything failed, so cron jobs and CI can gate on \
          silent corruption.")
    Term.(const run $ target $ rate)

(* --- query-batch ---------------------------------------------------------- *)

let query_batch_cmd =
  let queries_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"QUERIES"
          ~doc:
            "File with one XPath query per line; blank lines and lines \
             starting with $(b,#) are skipped.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"Worker domains for the batch (default 1 = sequential).")
  in
  let io =
    Arg.(
      value & flag
      & info [ "io" ] ~doc:"Report summed simulated disk accesses for the batch.")
  in
  let ids_flag =
    Arg.(value & flag & info [ "ids" ] ~doc:"Print matching ids per query.")
  in
  let run input strategy queries_file domains io ids_flag =
    if domains < 1 then begin
      Printf.eprintf "--domains must be at least 1\n";
      exit 1
    end;
    let index =
      if is_index_file input then Xseq.load input
      else
        Xseq.build ~domains
          ~config:(config_of_strategy strategy)
          (load_documents input)
    in
    let lines = String.split_on_char '\n' (read_file queries_file) in
    let texts =
      List.filter
        (fun l ->
          String.trim l <> "" && not (String.length l > 0 && l.[0] = '#'))
        (List.map String.trim lines)
    in
    let patterns =
      Array.of_list
        (List.map
           (fun q ->
             try Xseq.Xpath.parse q
             with Xquery.Xpath_parser.Syntax_error { pos; msg } ->
               Printf.eprintf "%S:%d: %s\n" q pos msg;
               exit 1)
           texts)
    in
    let stats = Xquery.Matcher.create_stats () in
    let t0 = Unix.gettimeofday () in
    let results, batch_io =
      if io then
        let results, bio = Xseq.query_batch_io ~domains ~stats index patterns in
        (results, Some bio)
      else (Xseq.query_batch ~domains ~stats index patterns, None)
    in
    let dt = Unix.gettimeofday () -. t0 in
    Array.iteri
      (fun i ids ->
        Printf.printf "[%d] %-48s %6d matches%s\n" i (List.nth texts i)
          (List.length ids)
          (if ids_flag then
             ": " ^ String.concat " " (List.map string_of_int ids)
           else ""))
      results;
    Printf.printf "%d queries on %d domains in %.2f ms (%.0f queries/s)\n"
      (Array.length patterns) domains (dt *. 1000.)
      (if dt > 0. then float_of_int (Array.length patterns) /. dt else 0.);
    Printf.printf "link probes: %d, candidates: %d, rejected: %d\n"
      stats.Xquery.Matcher.probes stats.Xquery.Matcher.candidates
      stats.Xquery.Matcher.rejected;
    match batch_io with
    | Some b ->
      Printf.printf "pages touched: %d, entry accesses: %d\n"
        b.Xseq.io_pages_touched b.Xseq.io_accesses
    | None -> ()
  in
  Cmd.v
    (Cmd.info "query-batch"
       ~doc:
         "Answer a file of queries concurrently over one shared index. \
          Results are identical to running $(b,query) once per line, for \
          any $(b,--domains).")
    Term.(
      const run $ input_arg $ strategy_arg $ queries_arg $ domains $ io
      $ ids_flag)

(* --- paths ----------------------------------------------------------------- *)

let paths_cmd =
  let top =
    Arg.(value & opt int 20 & info [ "top" ] ~doc:"How many paths to list (default 20).")
  in
  let run input strategy top =
    let index = load_or_build input (config_of_strategy strategy) in
    match Xseq.stats index with
    | None ->
      Printf.eprintf "path statistics require the probability strategy\n";
      exit 1
    | Some stats ->
      (* Enumerate the index's element paths with their estimates. *)
      let labeled = Xseq.labeled index in
      let rec walk acc p =
        List.fold_left
          (fun acc c ->
            if Option.is_some (Xindex.Labeled.link labeled c) then
              walk ((c, Xschema.Stats.p_root stats c) :: acc) c
            else acc)
          acc
          (Sequencing.Path.element_children p)
      in
      let all = walk [] Sequencing.Path.epsilon in
      let sorted = List.sort (fun (_, a) (_, b) -> Stdlib.compare b a) all in
      Printf.printf "%-44s %10s %10s\n" "path" "p(C|root)" "duplicated";
      List.iteri
        (fun i (p, prob) ->
          if i < top then
            Printf.printf "%-44s %10.4f %10b\n" (Sequencing.Path.to_string p) prob
              (Xindex.Labeled.path_multiple labeled p))
        sorted
  in
  Cmd.v
    (Cmd.info "paths"
       ~doc:"List the most frequent element paths with their occurrence \
             probabilities — the quantities that drive gbest sequencing.")
    Term.(const run $ input_arg $ strategy_arg $ top)

(* --- explain --------------------------------------------------------------- *)

let explain_cmd =
  let query_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"XPATH" ~doc:"Query in the supported XPath fragment.")
  in
  let run input strategy q =
    let index = load_or_build input (config_of_strategy strategy) in
    let pattern = Xseq.Xpath.parse q in
    let e = Xseq.explain index pattern in
    Printf.printf "pattern:          %s\n" e.Xquery.Engine.pattern;
    Printf.printf "instantiations:   %d\n" e.instantiations;
    Printf.printf "query sequences:  %d\n" e.sequences;
    List.iteri (fun i s -> Printf.printf "  [%d] %s\n" i s) e.sequence_texts;
    Printf.printf "link probes:      %d\n" e.stats.Xquery.Matcher.probes;
    Printf.printf "candidates:       %d\n" e.stats.Xquery.Matcher.candidates;
    Printf.printf "rejected:         %d (forward-prefix check)\n"
      e.stats.Xquery.Matcher.rejected;
    Printf.printf "results:          %d\n" e.results
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show how a query is instantiated, sequenced and matched.")
    Term.(const run $ input_arg $ strategy_arg $ query_arg)

(* --- info (on-disk snapshot TOC) ----------------------------------------- *)

let info_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"SNAPSHOT"
          ~doc:
            "A saved index written by $(b,xseq index) (xseqcol1 or \
             compressed xseqcol2 format).")
  in
  let run input =
    if not (is_index_file input) then begin
      Printf.eprintf "%s: not an xseq index snapshot (bad magic)\n" input;
      exit 1
    end;
    let module Store = Xstorage.Store in
    let store = Store.open_file input in
    (* Counts straight from the regions — no document re-interning. *)
    let xmeta = Store.to_array (Store.ints store "xseq_meta") in
    let imeta = Store.to_array (Store.ints store "meta") in
    let regions = Store.regions store in
    let logical = List.fold_left (fun a r -> a + r.Store.r_bytes) 0 regions in
    let stored = List.fold_left (fun a r -> a + r.Store.r_stored) 0 regions in
    let compressed = Store.file_format store = Store.Col2 in
    Printf.printf "file:            %s\n" input;
    Printf.printf "format:          %s v1, %d-byte pages, %d bytes\n"
      (Store.format_name (Store.file_format store))
      (Store.page_size store) (Store.file_bytes store);
    Printf.printf "records:         %d\n" xmeta.(8);
    Printf.printf "trie nodes:      %d\n" imeta.(0);
    Printf.printf "distinct paths:  %d\n"
      (Store.length (Store.ints store "link_off"));
    Printf.printf "doc entries:     %d\n"
      (Store.length (Store.ints store "doc_pre"));
    Printf.printf "query layout:    %d bytes (links + doc table, simulated)\n"
      imeta.(2);
    if compressed then
      Printf.printf "column bytes:    %d stored / %d logical (%.2fx compression)\n"
        stored logical
        (if stored > 0 then float_of_int logical /. float_of_int stored else 0.)
    else Printf.printf "column bytes:    %d\n" logical;
    Printf.printf "\n%-16s %-5s %12s %12s %12s %8s %12s\n" "region" "kind"
      "elements" "bytes" "stored" "pages" "offset";
    List.iter
      (fun r ->
        Printf.printf "%-16s %-5s %12d %12d %12d %8d %12d\n" r.Store.r_name
          (match r.Store.r_kind with `Ints -> "ints" | `Blob -> "blob")
          r.Store.r_count r.Store.r_bytes r.Store.r_stored r.Store.r_pages
          r.Store.r_offset)
      regions;
    Store.close store
  in
  Cmd.v
    (Cmd.info "info"
       ~doc:"Print a saved index's on-disk table of contents: every region \
             with its element count, logical and stored byte sizes, page \
             count and file offset — plus the whole-file compression ratio \
             for xseqcol2 snapshots.")
    Term.(const run $ input)

(* --- index (build + save) ------------------------------------------------ *)

let index_cmd =
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Where to write the index.")
  in
  let compress =
    Arg.(
      value & flag
      & info [ "compress" ]
          ~doc:
            "Write the compressed $(b,xseqcol2) format: delta-packed \
             label columns, dictionary-coded designators and \
             front-coded trie edges — typically 4-10x smaller, loadable \
             by every reader (plain or $(b,--paged)).")
  in
  let run input strategy output compress =
    let docs = load_documents input in
    let t0 = Unix.gettimeofday () in
    let index = Xseq.build ~config:(config_of_strategy strategy) docs in
    let format =
      if compress then Xstorage.Store.Col2 else Xstorage.Store.Col1
    in
    Xseq.save ~format index output;
    Printf.printf "indexed %d records into %d trie nodes; saved to %s (%.0f ms)\n"
      (Xseq.doc_count index) (Xseq.node_count index) output
      ((Unix.gettimeofday () -. t0) *. 1000.)
  in
  Cmd.v
    (Cmd.info "index"
       ~doc:"Build an index over the records and save it to disk; $(b,query) \
             and $(b,stats) accept the saved file in place of the XML input.")
    Term.(const run $ input_arg $ strategy_arg $ output $ compress)

(* Deterministic fault injection for chaos harnesses: a schedule in the
   environment (as printed by a failing torture run, or built by the
   partition-chaos smoke) arms the I/O shim before any subsystem runs —
   the whole process, sockets included, then lives under that weather. *)
let install_fault_schedule_from_env () =
  match Sys.getenv_opt "XSEQ_FAULT_SCHEDULE" with
  | None | Some "" -> ()
  | Some s -> (
    match Xfault.schedule_of_string s with
    | Ok schedule ->
      Xfault.install (Xfault.Injector.create schedule);
      Printf.eprintf "xseq: fault schedule armed: %s\n%!"
        (Xfault.schedule_to_string schedule)
    | Error msg ->
      Printf.eprintf "XSEQ_FAULT_SCHEDULE: %s\n" msg;
      exit 1)

let () =
  install_fault_schedule_from_env ();
  let doc = "sequence-based XML indexing with constraint sequences (ICDE 2005)" in
  let info = Cmd.info "xseq" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
       [ gen_cmd; index_cmd; info_cmd; stats_cmd; paths_cmd; sequence_cmd;
         query_cmd; query_batch_cmd; explain_cmd; serve_cmd; ingest_cmd;
         promote_cmd; repl_status_cmd; scrub_cmd ]))
