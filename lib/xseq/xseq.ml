module Pattern = Xquery.Pattern
module Xpath = Xquery.Xpath_parser
module T = Xmlcore.Xml_tree
module Strategy = Sequencing.Strategy
module Encoder = Sequencing.Encoder
module Domain_pool = Xutil.Domain_pool
module Pager = Xstorage.Pager

type sequencing =
  | Depth_first of { canonical : bool }
  | Breadth_first of { canonical : bool }
  | Random of int
  | Probability
  | Probability_weighted of (Sequencing.Path.t -> float)
  | Custom of Strategy.t

type config = {
  sequencing : sequencing;
  value_mode : Encoder.value_mode;
  sample_fraction : float;
  sample_seed : int;
  bulk : bool;
  keep_documents : bool;
}

let default_config =
  {
    sequencing = Probability;
    value_mode = Encoder.Hashed;
    sample_fraction = 1.0;
    sample_seed = 42;
    bulk = true;
    keep_documents = true;
  }

type t = {
  labeled : Xindex.Labeled.t;
  strategy : Strategy.t;
  value_mode : Encoder.value_mode;
  docs : T.t array option;
  ndocs : int;
  total_seq_len : int;
  stats : Xschema.Stats.t option;
  built_config : config; (* for persistence: how the strategy was derived *)
  generation : int; (* process-unique stamp; see [generation] in the mli *)
}

(* Every index constructed in this process — built, loaded, or rebuilt by
   [Dynamic] — gets a distinct generation, so a prepared query can prove
   it belongs to the index it is run against.  The counter is atomic
   because [Dynamic] rebuilds may race with concurrent builds (e.g. a
   server hot-swapping snapshots while another domain builds). *)
let generation_counter = Atomic.make 1
let next_generation () = Atomic.fetch_and_add generation_counter 1

let resolve_strategy config docs =
  match config.sequencing with
  | Depth_first _ -> (Strategy.Depth_first, None)
  | Breadth_first _ -> (Strategy.Breadth_first, None)
  | Random seed -> (Strategy.Random seed, None)
  | Custom s -> (s, None)
  | Probability | Probability_weighted _ ->
    let stats =
      if config.sample_fraction >= 1.0 then
        Xschema.Stats.of_documents_array ~value_mode:config.value_mode docs
      else
        Xschema.Stats.sample ~value_mode:config.value_mode
          ~fraction:config.sample_fraction ~seed:config.sample_seed docs
    in
    let base = Xschema.Stats.priority stats in
    let prio =
      match config.sequencing with
      | Probability_weighted w -> fun p -> base p *. w p
      | _ -> base
    in
    (Strategy.Probability prio, Some stats)

let canonicalize config doc =
  match config.sequencing with
  | Depth_first { canonical = true } | Breadth_first { canonical = true } ->
    T.sort_by_tag doc
  | Depth_first { canonical = false }
  | Breadth_first { canonical = false }
  | Random _ | Probability | Probability_weighted _ | Custom _ -> doc

(* Runs [f] with the caller's pool when one is supplied, otherwise with a
   transient pool of [domains] workers (default 1 = inline, no domains
   spawned — the exact sequential code path). *)
let with_pool_opt ?domains ?pool f =
  match pool with
  | Some p -> f p
  | None ->
    let domains = match domains with Some d -> d | None -> 1 in
    Domain_pool.with_pool ~domains f

let build ?domains ?pool ?(config = default_config) docs =
  (* Deterministic phase discipline (DESIGN.md): the global designator and
     path intern tables are unsynchronised, so every phase that can intern
     runs sequentially first — in exactly the order the pure sequential
     build interns — and the parallel phase below performs only read-only
     lookups.  That makes the parallel build both safe and label-identical
     to the sequential one. *)
  (* Phase 1 (sequential, interns): probability statistics. *)
  let strategy, stats = resolve_strategy config docs in
  (* Phase 2 (sequential, interns): global identical-sibling flags, in
     document order.  Paths occurring twice in any document must be
     sequenced subtree-contiguously everywhere, or query sequences cannot
     align with data sequences (see Encoder.encode).  As a side effect
     this pass interns every designator and path the encoder will touch —
     [multiple_paths] and [encode] expand and flatten the same tree. *)
  let ident_set = Hashtbl.create 256 in
  Array.iter
    (fun doc ->
      List.iter
        (fun p -> Hashtbl.replace ident_set p ())
        (Encoder.multiple_paths ~value_mode:config.value_mode doc))
    docs;
  let ident p = Hashtbl.mem ident_set p in
  (* Phase 3 (sequential, interns): canonicalisation.  Tag-sorting
     interns whole-string value designators — new ones under the Text
     value mode, whose encoder only interns per-character designators —
     so it too must stay sequential and in document order. *)
  let canon =
    match config.sequencing with
    | Depth_first { canonical = true } | Breadth_first { canonical = true } ->
      Array.map (canonicalize config) docs
    | Depth_first _ | Breadth_first _ | Random _ | Probability
    | Probability_weighted _ | Custom _ ->
      docs
  in
  (* Phase 4 (parallel, read-only): encoding.  Pure per document — it
     reads the now-frozen intern tables, ident set and statistics. *)
  let seqs =
    with_pool_opt ?domains ?pool (fun p ->
        Domain_pool.map p
          (Encoder.encode ~value_mode:config.value_mode ~ident ~strategy)
          canon)
  in
  let total_seq_len = Array.fold_left (fun n s -> n + Array.length s) 0 seqs in
  (* Phase 5 (sequential): loading.  [bulk_load] sorts the sequences, so
     it is insertion-order-independent; the non-bulk path replays the
     sequential insertion order exactly. *)
  let trie = Xindex.Trie.create () in
  if config.bulk then
    Xindex.Trie.bulk_load trie (Array.mapi (fun i seq -> (seq, i)) seqs)
  else Array.iteri (fun i seq -> Xindex.Trie.insert trie seq ~doc:i) seqs;
  let labeled = Xindex.Labeled.of_trie trie in
  {
    labeled;
    strategy;
    value_mode = config.value_mode;
    docs = (if config.keep_documents then Some docs else None);
    ndocs = Array.length docs;
    total_seq_len;
    stats;
    built_config = config;
    generation = next_generation ();
  }

let query ?pager ?stats t pattern =
  match
    Xquery.Engine.query ?pager ?stats ~strategy:t.strategy
      ~value_mode:t.value_mode t.labeled pattern
  with
  | ids -> ids
  | exception Xquery.Instantiate.Too_many _ ->
    (* Pathological wildcard/expansion blow-up: degrade to an exact
       linear scan rather than failing, when the records are at hand. *)
    (match t.docs with
     | Some docs -> Xquery.Embedding.filter pattern docs
     | None -> raise (Xquery.Instantiate.Too_many 0))

let query_xpath ?pager ?stats t s = query ?pager ?stats t (Xpath.parse s)
let contains t pattern doc = List.mem doc (query t pattern)

(* --- batched execution ---------------------------------------------------- *)

type batch_io = {
  io_pages_touched : int;
  io_misses : int;
  io_accesses : int;
}

(* Contiguous ranges of [n] items split into at most [chunks] pieces. *)
let chunk_ranges n chunks =
  let chunks = max 1 (min n chunks) in
  Array.init chunks (fun c ->
      let lo = c * n / chunks and hi = (c + 1) * n / chunks in
      (lo, hi - lo))

let query_batch ?domains ?pool ?stats t patterns =
  let n = Array.length patterns in
  let chunked =
    with_pool_opt ?domains ?pool (fun p ->
        (* One worker-private stats record per chunk: the matcher's
           counters are unsynchronised, so concurrent queries must never
           share one (see Xquery.Matcher's thread-safety note). *)
        let ranges = chunk_ranges n (4 * Domain_pool.size p) in
        Domain_pool.run p
          (Array.map
             (fun (lo, len) () ->
               let s = Xquery.Matcher.create_stats () in
               let ids =
                 Array.init len (fun k -> query ~stats:s t patterns.(lo + k))
               in
               (ids, s))
             ranges))
  in
  (match stats with
   | Some into ->
     Array.iter
       (fun (_, s) -> Xquery.Matcher.merge_stats ~into s)
       chunked
   | None -> ());
  Array.concat (Array.to_list (Array.map fst chunked))

let query_batch_io ?domains ?pool ?stats ?page_size ?(buffer_pages = 0) t
    patterns =
  let n = Array.length patterns in
  let chunked =
    with_pool_opt ?domains ?pool (fun p ->
        (* Each worker owns a private pager; per-query counts are summed
           afterwards.  With the default [buffer_pages = 0] every page
           that a query touches is a miss, so the totals are independent
           of how queries were assigned to chunks. *)
        let ranges = chunk_ranges n (4 * Domain_pool.size p) in
        Domain_pool.run p
          (Array.map
             (fun (lo, len) () ->
               let pager = Pager.create ?page_size ~buffer_pages () in
               let s = Xquery.Matcher.create_stats () in
               let ids =
                 Array.init len (fun k ->
                     Pager.begin_query pager;
                     let ids = query ~pager ~stats:s t patterns.(lo + k) in
                     let io =
                       {
                         io_pages_touched = Pager.pages_touched pager;
                         io_misses = Pager.misses pager;
                         io_accesses = 0;
                       }
                     in
                     (ids, io))
               in
               (ids, s, Pager.total_accesses pager))
             ranges))
  in
  (match stats with
   | Some into ->
     Array.iter (fun (_, s, _) -> Xquery.Matcher.merge_stats ~into s) chunked
   | None -> ());
  let per_query =
    Array.concat (Array.to_list (Array.map (fun (ids, _, _) -> ids) chunked))
  in
  let io =
    Array.fold_left
      (fun acc (qs, _, accesses) ->
        Array.fold_left
          (fun acc (_, io) ->
            {
              io_pages_touched = acc.io_pages_touched + io.io_pages_touched;
              io_misses = acc.io_misses + io.io_misses;
              io_accesses = acc.io_accesses;
            })
          { acc with io_accesses = acc.io_accesses + accesses }
          qs)
      { io_pages_touched = 0; io_misses = 0; io_accesses = 0 }
      chunked
  in
  (Array.map fst per_query, io)

type prepared = {
  plans : Xquery.Query_seq.compiled list;
  prepared_gen : int; (* generation of the index this was compiled for *)
}

let prepare t pattern =
  {
    plans =
      Xquery.Engine.compile ~strategy:t.strategy ~value_mode:t.value_mode
        t.labeled pattern;
    prepared_gen = t.generation;
  }

let run_prepared ?pager ?stats t prepared =
  (* Compiled sequences embed label ranges of one specific index; running
     them elsewhere would silently return garbage ids.  The generation
     stamp turns that into a checked error — the server's plan cache
     relies on this to invalidate entries across [Reload] hot swaps. *)
  if prepared.prepared_gen <> t.generation then
    invalid_arg
      (Printf.sprintf
         "Xseq.run_prepared: prepared query belongs to index generation %d, \
          not %d"
         prepared.prepared_gen t.generation);
  Xquery.Matcher.run_collect ?pager ?stats t.labeled prepared.plans

let explain t pattern =
  Xquery.Engine.explain ~strategy:t.strategy ~value_mode:t.value_mode t.labeled
    pattern

let document t i =
  match t.docs with
  | Some docs when i >= 0 && i < Array.length docs -> docs.(i)
  | Some _ -> invalid_arg "Xseq.document: unknown id"
  | None -> invalid_arg "Xseq.document: documents were not kept"

let doc_count t = t.ndocs
let node_count t = Xindex.Labeled.node_count t.labeled
let distinct_paths t = Xindex.Labeled.distinct_paths t.labeled
let size_bytes t = Xindex.Labeled.size_bytes t.labeled ~record_count:t.ndocs
let layout_bytes t = Xindex.Labeled.layout_bytes t.labeled
let strategy t = t.strategy
let value_mode t = t.value_mode
let labeled t = t.labeled
let generation t = t.generation

let average_sequence_length t =
  if t.ndocs = 0 then 0.
  else float_of_int t.total_seq_len /. float_of_int t.ndocs

let stats t = t.stats

(* --- persistence ---------------------------------------------------------- *)

module Store = Xstorage.Store

(* Snapshots are columnar {!Xstorage.Store} files: the labelled index as
   flat int-column regions (see Xindex.Labeled.add_to_store), the
   original records as a structural blob, and a small [xseq_meta] region
   recording how the strategy was derived.  Nothing is marshalled — every
   byte is decoded through bounds-checked readers, so a foreign or
   damaged file is rejected with a diagnostic, never interpreted. *)

let snapshot_version = 1

(* Documents serialise as a pre-order walk with explicit child counts:
   u8 kind (0 = element, 1 = value), u32 LE name/text length, bytes, and
   for elements a u32 LE child count.  Designators are stored as their
   source strings, never as process-specific interned ids. *)
let encode_docs docs =
  let b = Buffer.create 4096 in
  let add_str s =
    Buffer.add_int32_le b (Int32.of_int (String.length s));
    Buffer.add_string b s
  in
  let rec node = function
    | T.Element (d, cs) ->
      Buffer.add_uint8 b 0;
      add_str (Xmlcore.Designator.name d);
      Buffer.add_int32_le b (Int32.of_int (List.length cs));
      List.iter node cs
    | T.Value s ->
      Buffer.add_uint8 b 1;
      add_str s
  in
  Array.iter node docs;
  Buffer.contents b

let decode_docs blob ndocs =
  let corrupt () = invalid_arg "Xseq.load: corrupt document region" in
  let len = String.length blob in
  if ndocs < 0 || ndocs > len then corrupt ();
  let pos = ref 0 in
  let u8 () =
    if !pos >= len then corrupt ();
    let v = Char.code blob.[!pos] in
    incr pos;
    v
  in
  let u32 () =
    if !pos + 4 > len then corrupt ();
    let v = Int32.to_int (String.get_int32_le blob !pos) in
    pos := !pos + 4;
    if v < 0 || v > len then corrupt ();
    v
  in
  let str () =
    let n = u32 () in
    if !pos + n > len then corrupt ();
    let s = String.sub blob !pos n in
    pos := !pos + n;
    s
  in
  let rec node () =
    match u8 () with
    | 0 ->
      let name = str () in
      let n = u32 () in
      T.Element (Xmlcore.Designator.tag name, children n [])
    | 1 -> T.Value (str ())
    | _ -> corrupt ()
  and children n acc =
    (* Every child consumes at least one byte, so a lying count runs out
       of input and fails the bounds checks above. *)
    if n = 0 then List.rev acc else children (n - 1) (node () :: acc)
  in
  let docs = Array.init ndocs (fun _ -> node ()) in
  if !pos <> len then corrupt ();
  docs

let save ?(format = Store.Col1) t path =
  let docs =
    match t.docs with
    | Some docs -> docs
    | None ->
      invalid_arg "Xseq.save: index was built with keep_documents = false"
  in
  (* Only strategies that can be deterministically recomputed from the
     records survive a round trip. *)
  let seq_tag, seq_arg =
    match t.built_config.sequencing with
    | Depth_first { canonical } -> (0, Bool.to_int canonical)
    | Breadth_first { canonical } -> (1, Bool.to_int canonical)
    | Random seed -> (2, seed)
    | Probability -> (3, 0)
    | Probability_weighted _ | Custom _ ->
      invalid_arg "Xseq.save: custom strategies cannot be persisted"
  in
  let vm = match t.value_mode with Encoder.Hashed -> 0 | Encoder.Text -> 1 in
  (* The sampling fraction must survive bit-exactly, or the reloaded
     probability model could diverge from the stored labels. *)
  let bits = Int64.bits_of_float t.built_config.sample_fraction in
  let frac_lo = Int64.to_int (Int64.logand bits 0xFFFFFFFFL) in
  let frac_hi = Int64.to_int (Int64.shift_right_logical bits 32) in
  let store = Store.memory () in
  Store.add_ints store "xseq_meta"
    (Store.heap
       [|
         snapshot_version;
         seq_tag;
         seq_arg;
         vm;
         frac_lo;
         frac_hi;
         t.built_config.sample_seed;
         t.total_seq_len;
         t.ndocs;
       |]);
  Store.add_blob store "docs" (encode_docs docs);
  Xindex.Labeled.add_to_store ~compact:(format = Store.Col2) t.labeled store;
  (* Compressed regions are small; 4 KiB alignment would waste a large
     fraction of the file (and of the buffer pool) on padding. *)
  let page_size = match format with Store.Col1 -> 4096 | Store.Col2 -> 1024 in
  Store.write ~page_size ~format store path

let load ?mode ?pool_pages ?verify path =
  let store = Store.open_file ?mode ?pool_pages ?verify path in
  let bad msg = invalid_arg ("Xseq.load: " ^ msg) in
  if not (Store.mem store "xseq_meta" && Store.mem store "docs") then
    bad "not an xseq index snapshot (missing xseq_meta/docs regions)";
  let meta = Store.to_array (Store.ints store "xseq_meta") in
  if Array.length meta <> 9 then bad "malformed xseq_meta region";
  if meta.(0) <> snapshot_version then
    bad (Printf.sprintf "unsupported snapshot version %d" meta.(0));
  let sequencing =
    match (meta.(1), meta.(2)) with
    | 0, c -> Depth_first { canonical = c <> 0 }
    | 1, c -> Breadth_first { canonical = c <> 0 }
    | 2, seed -> Random seed
    | 3, _ -> Probability
    | _ -> bad "unknown sequencing strategy tag"
  in
  let value_mode =
    match meta.(3) with
    | 0 -> Encoder.Hashed
    | 1 -> Encoder.Text
    | _ -> bad "unknown value mode"
  in
  let sample_fraction =
    Int64.float_of_bits
      (Int64.logor
         (Int64.logand (Int64.of_int meta.(4)) 0xFFFFFFFFL)
         (Int64.shift_left (Int64.of_int meta.(5)) 32))
  in
  (* Documents are decoded first: record parsing interns designators in
     exactly the order [build] would, before the index dictionary
     re-interns the paths. *)
  let docs = decode_docs (Store.blob store "docs") meta.(8) in
  let labeled = Xindex.Labeled.of_store store in
  let config =
    {
      default_config with
      sequencing;
      value_mode;
      sample_fraction;
      sample_seed = meta.(6);
    }
  in
  (* Recompute the strategy exactly as [build] derived it. *)
  let strategy, stats = resolve_strategy config docs in
  {
    labeled;
    strategy;
    value_mode;
    docs = Some docs;
    ndocs = Array.length docs;
    total_seq_len = meta.(7);
    stats;
    built_config = config;
    generation = next_generation ();
  }

let backing_store t = Xindex.Labeled.backing_store t.labeled

(* --- incremental indexing -------------------------------------------------- *)

module Dynamic = struct
  type dyn = {
    mutable base : t;
    mutable tail : T.t list; (* newest first; ids continue after base *)
    mutable tail_len : int;
    mutable tail_index : t option;
        (* memoised index over the current tail (ids are tail positions);
           invalidated by [add]/[flush], rebuilt lazily at query time once
           the tail is big enough for indexing to beat scanning *)
    threshold : int;
    dconfig : config;
    ddomains : int;
  }

  (* Below this many tail documents an exact scan is cheaper than
     building even a small index. *)
  let index_tail_from = 32

  let create ?(domains = 1) ?(config = default_config)
      ?(rebuild_threshold = 1024) docs =
    let config = { config with keep_documents = true } in
    {
      base = build ~domains ~config docs;
      tail = [];
      tail_len = 0;
      tail_index = None;
      threshold = max 1 rebuild_threshold;
      dconfig = config;
      ddomains = domains;
    }

  let all_docs d =
    let base_docs =
      match d.base.docs with Some a -> a | None -> assert false
    in
    Array.append base_docs (Array.of_list (List.rev d.tail))

  let flush d =
    if d.tail_len > 0 then begin
      d.base <- build ~domains:d.ddomains ~config:d.dconfig (all_docs d);
      d.tail <- [];
      d.tail_len <- 0;
      d.tail_index <- None
    end

  let add d doc =
    let id = d.base.ndocs + d.tail_len in
    d.tail <- doc :: d.tail;
    d.tail_len <- d.tail_len + 1;
    d.tail_index <- None;
    if d.tail_len >= d.threshold then flush d;
    id

  let query d pattern =
    let base_hits = query d.base pattern in
    let tail_hits =
      if d.tail_len = 0 then []
      else if d.tail_len < index_tail_from then begin
        (* Small tail: exact scan, no sequence re-encoding at all. *)
        let hits = ref [] in
        List.iteri
          (fun k doc ->
            if Xquery.Embedding.matches pattern doc then
              (* [tail] is newest-first: position k from the end. *)
              hits := (d.base.ndocs + d.tail_len - 1 - k) :: !hits)
          d.tail;
        List.sort Stdlib.compare !hits
      end
      else begin
        (* Big tail: index it once and reuse across queries, instead of
           re-encoding every tail document on every query. *)
        let ti =
          match d.tail_index with
          | Some ti -> ti
          | None ->
            let ti =
              build ~domains:d.ddomains ~config:d.dconfig
                (Array.of_list (List.rev d.tail))
            in
            d.tail_index <- Some ti;
            ti
        in
        List.map (fun i -> d.base.ndocs + i) (query ti pattern)
      end
    in
    base_hits @ tail_hits

  let query_xpath d s = query d (Xpath.parse s)
  let doc_count d = d.base.ndocs + d.tail_len
  let pending d = d.tail_len

  let snapshot d =
    flush d;
    d.base
end
