module Pattern = Xquery.Pattern
module Xpath = Xquery.Xpath_parser
module T = Xmlcore.Xml_tree
module Strategy = Sequencing.Strategy
module Encoder = Sequencing.Encoder

type sequencing =
  | Depth_first of { canonical : bool }
  | Breadth_first of { canonical : bool }
  | Random of int
  | Probability
  | Probability_weighted of (Sequencing.Path.t -> float)
  | Custom of Strategy.t

type config = {
  sequencing : sequencing;
  value_mode : Encoder.value_mode;
  sample_fraction : float;
  sample_seed : int;
  bulk : bool;
  keep_documents : bool;
}

let default_config =
  {
    sequencing = Probability;
    value_mode = Encoder.Hashed;
    sample_fraction = 1.0;
    sample_seed = 42;
    bulk = true;
    keep_documents = true;
  }

type t = {
  labeled : Xindex.Labeled.t;
  strategy : Strategy.t;
  value_mode : Encoder.value_mode;
  docs : T.t array option;
  ndocs : int;
  total_seq_len : int;
  stats : Xschema.Stats.t option;
  built_config : config; (* for persistence: how the strategy was derived *)
}

let resolve_strategy config docs =
  match config.sequencing with
  | Depth_first _ -> (Strategy.Depth_first, None)
  | Breadth_first _ -> (Strategy.Breadth_first, None)
  | Random seed -> (Strategy.Random seed, None)
  | Custom s -> (s, None)
  | Probability | Probability_weighted _ ->
    let stats =
      if config.sample_fraction >= 1.0 then
        Xschema.Stats.of_documents_array ~value_mode:config.value_mode docs
      else
        Xschema.Stats.sample ~value_mode:config.value_mode
          ~fraction:config.sample_fraction ~seed:config.sample_seed docs
    in
    let base = Xschema.Stats.priority stats in
    let prio =
      match config.sequencing with
      | Probability_weighted w -> fun p -> base p *. w p
      | _ -> base
    in
    (Strategy.Probability prio, Some stats)

let canonicalize config doc =
  match config.sequencing with
  | Depth_first { canonical = true } | Breadth_first { canonical = true } ->
    T.sort_by_tag doc
  | Depth_first { canonical = false }
  | Breadth_first { canonical = false }
  | Random _ | Probability | Probability_weighted _ | Custom _ -> doc

let build ?(config = default_config) docs =
  let strategy, stats = resolve_strategy config docs in
  (* Global identical-sibling flags: paths occurring twice in any
     document must be sequenced subtree-contiguously everywhere, or query
     sequences cannot align with data sequences (see Encoder.encode). *)
  let ident_set = Hashtbl.create 256 in
  Array.iter
    (fun doc ->
      List.iter
        (fun p -> Hashtbl.replace ident_set p ())
        (Encoder.multiple_paths ~value_mode:config.value_mode doc))
    docs;
  let ident p = Hashtbl.mem ident_set p in
  let trie = Xindex.Trie.create () in
  let total_seq_len = ref 0 in
  let encode i doc =
    let seq =
      Encoder.encode ~value_mode:config.value_mode ~ident ~strategy
        (canonicalize config doc)
    in
    total_seq_len := !total_seq_len + Array.length seq;
    (seq, i)
  in
  if config.bulk then
    Xindex.Trie.bulk_load trie (Array.mapi encode docs)
  else
    Array.iteri
      (fun i doc ->
        let seq, _ = encode i doc in
        Xindex.Trie.insert trie seq ~doc:i)
      docs;
  let labeled = Xindex.Labeled.of_trie trie in
  {
    labeled;
    strategy;
    value_mode = config.value_mode;
    docs = (if config.keep_documents then Some docs else None);
    ndocs = Array.length docs;
    total_seq_len = !total_seq_len;
    stats;
    built_config = config;
  }

let query ?pager ?stats t pattern =
  match
    Xquery.Engine.query ?pager ?stats ~strategy:t.strategy
      ~value_mode:t.value_mode t.labeled pattern
  with
  | ids -> ids
  | exception Xquery.Instantiate.Too_many _ ->
    (* Pathological wildcard/expansion blow-up: degrade to an exact
       linear scan rather than failing, when the records are at hand. *)
    (match t.docs with
     | Some docs -> Xquery.Embedding.filter pattern docs
     | None -> raise (Xquery.Instantiate.Too_many 0))

let query_xpath ?pager ?stats t s = query ?pager ?stats t (Xpath.parse s)
let contains t pattern doc = List.mem doc (query t pattern)

type prepared = Xquery.Query_seq.compiled list

let prepare t pattern =
  Xquery.Engine.compile ~strategy:t.strategy ~value_mode:t.value_mode t.labeled
    pattern

let run_prepared ?pager ?stats t prepared =
  Xquery.Matcher.run_collect ?pager ?stats t.labeled prepared

let explain t pattern =
  Xquery.Engine.explain ~strategy:t.strategy ~value_mode:t.value_mode t.labeled
    pattern

let document t i =
  match t.docs with
  | Some docs when i >= 0 && i < Array.length docs -> docs.(i)
  | Some _ -> invalid_arg "Xseq.document: unknown id"
  | None -> invalid_arg "Xseq.document: documents were not kept"

let doc_count t = t.ndocs
let node_count t = Xindex.Labeled.node_count t.labeled
let distinct_paths t = Xindex.Labeled.distinct_paths t.labeled
let size_bytes t = Xindex.Labeled.size_bytes t.labeled ~record_count:t.ndocs
let layout_bytes t = Xindex.Labeled.layout_bytes t.labeled
let strategy t = t.strategy
let value_mode t = t.value_mode
let labeled t = t.labeled

let average_sequence_length t =
  if t.ndocs = 0 then 0.
  else float_of_int t.total_seq_len /. float_of_int t.ndocs

let stats t = t.stats

(* --- persistence ---------------------------------------------------------- *)

type saved_sequencing =
  | S_depth_first of bool
  | S_breadth_first of bool
  | S_random of int
  | S_probability

(* Marshal-safe document form: designators are stored as strings, never
   as process-specific interned ids. *)
type ptree = P_elt of string * ptree list | P_val of string

let rec to_ptree = function
  | T.Element (d, cs) -> P_elt (Xmlcore.Designator.name d, List.map to_ptree cs)
  | T.Value s -> P_val s

let rec of_ptree = function
  | P_elt (name, cs) -> T.Element (Xmlcore.Designator.tag name, List.map of_ptree cs)
  | P_val s -> T.Value s

type saved = {
  sequencing : saved_sequencing;
  s_value_mode : Encoder.value_mode;
  sample_fraction : float;
  sample_seed : int;
  saved_docs : ptree array;
  portable : Xindex.Labeled.portable;
  s_total_seq_len : int;
}

let file_magic = "xseq-index-v1"

let save t path =
  let docs =
    match t.docs with
    | Some docs -> docs
    | None ->
      invalid_arg "Xseq.save: index was built with keep_documents = false"
  in
  let sequencing =
    (* Only strategies that can be deterministically recomputed from the
       records survive a round trip. *)
    match t.built_config.sequencing with
    | Depth_first { canonical } -> S_depth_first canonical
    | Breadth_first { canonical } -> S_breadth_first canonical
    | Random seed -> S_random seed
    | Probability -> S_probability
    | Probability_weighted _ | Custom _ ->
      invalid_arg "Xseq.save: custom strategies cannot be persisted"
  in
  let saved =
    {
      sequencing;
      s_value_mode = t.value_mode;
      sample_fraction = t.built_config.sample_fraction;
      sample_seed = t.built_config.sample_seed;
      saved_docs = Array.map to_ptree docs;
      portable = Xindex.Labeled.to_portable t.labeled;
      s_total_seq_len = t.total_seq_len;
    }
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      (* The magic prefix is checked *before* unmarshalling, so a foreign
         file is rejected without ever interpreting untrusted bytes. *)
      output_string oc file_magic;
      Marshal.to_channel oc saved [])

let load path =
  let ic = open_in_bin path in
  let saved : saved =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let prefix =
          try really_input_string ic (String.length file_magic)
          with End_of_file -> ""
        in
        if prefix <> file_magic then
          invalid_arg "Xseq.load: not an xseq index file";
        match Marshal.from_channel ic with
        | s -> s
        | exception (Failure _ | End_of_file) ->
          invalid_arg "Xseq.load: corrupt index file")
  in
  let docs = Array.map of_ptree saved.saved_docs in
  let labeled = Xindex.Labeled.of_portable saved.portable in
  let sequencing =
    match saved.sequencing with
    | S_depth_first canonical -> Depth_first { canonical }
    | S_breadth_first canonical -> Breadth_first { canonical }
    | S_random seed -> Random seed
    | S_probability -> Probability
  in
  let config =
    {
      default_config with
      sequencing;
      value_mode = saved.s_value_mode;
      sample_fraction = saved.sample_fraction;
      sample_seed = saved.sample_seed;
    }
  in
  (* Recompute the strategy exactly as [build] derived it. *)
  let strategy, stats = resolve_strategy config docs in
  {
    labeled;
    strategy;
    value_mode = saved.s_value_mode;
    docs = Some docs;
    ndocs = Array.length docs;
    total_seq_len = saved.s_total_seq_len;
    stats;
    built_config = config;
  }

(* --- incremental indexing -------------------------------------------------- *)

module Dynamic = struct
  type dyn = {
    mutable base : t;
    mutable tail : T.t list; (* newest first; ids continue after base *)
    mutable tail_len : int;
    threshold : int;
    dconfig : config;
  }

  let create ?(config = default_config) ?(rebuild_threshold = 1024) docs =
    let config = { config with keep_documents = true } in
    {
      base = build ~config docs;
      tail = [];
      tail_len = 0;
      threshold = max 1 rebuild_threshold;
      dconfig = config;
    }

  let all_docs d =
    let base_docs =
      match d.base.docs with Some a -> a | None -> assert false
    in
    Array.append base_docs (Array.of_list (List.rev d.tail))

  let flush d =
    if d.tail_len > 0 then begin
      d.base <- build ~config:d.dconfig (all_docs d);
      d.tail <- [];
      d.tail_len <- 0
    end

  let add d doc =
    let id = d.base.ndocs + d.tail_len in
    d.tail <- doc :: d.tail;
    d.tail_len <- d.tail_len + 1;
    if d.tail_len >= d.threshold then flush d;
    id

  let query d pattern =
    let base_hits = query d.base pattern in
    (* The unindexed tail is scanned directly — it is bounded by the
       rebuild threshold. *)
    let tail_hits = ref [] in
    List.iteri
      (fun k doc ->
        if Xquery.Embedding.matches pattern doc then
          (* [tail] is newest-first: position k from the end. *)
          tail_hits := (d.base.ndocs + d.tail_len - 1 - k) :: !tail_hits)
      d.tail;
    base_hits @ List.sort Stdlib.compare !tail_hits

  let query_xpath d s = query d (Xpath.parse s)
  let doc_count d = d.base.ndocs + d.tail_len
  let pending d = d.tail_len

  let snapshot d =
    flush d;
    d.base
end
