(** xseq — sequence-based XML indexing with performance-oriented
    constraint sequencing (Wang & Meng, ICDE 2005).

    Quickstart:
    {[
      let docs = Array.map Xmlcore.Xml_parser.parse_string raw_documents in
      let index = Xseq.build docs in
      let ids = Xseq.query_xpath index "/site//item[location='US']" in
      ...
    ]}

    [build] sequences every document with the probability-based strategy
    [gbest] (estimated by sampling the documents themselves), bulk-loads
    the sequences into a labelled trie, and answers tree-pattern queries
    holistically through constraint subsequence matching — no structural
    joins, no per-document post-processing, no false alarms. *)

module Pattern = Xquery.Pattern
module Xpath = Xquery.Xpath_parser

type sequencing =
  | Depth_first of { canonical : bool }
      (** Pre-order.  With [canonical = true] (required for querying)
          documents are tag-sorted first; [false] is the paper-faithful
          document order used in the index-size experiments. *)
  | Breadth_first of { canonical : bool }
  | Random of int  (** seed; size experiments only — queries raise *)
  | Probability
      (** [gbest] with probabilities sampled from the indexed documents
          (the default). *)
  | Probability_weighted of (Sequencing.Path.t -> float)
      (** [gbest] with explicit weights [w(C)] (Eq. 6) multiplied into the
          sampled probabilities. *)
  | Custom of Sequencing.Strategy.t
      (** Caller-supplied strategy, used as-is for both documents and
          queries. *)

type config = {
  sequencing : sequencing;
  value_mode : Sequencing.Encoder.value_mode;
  sample_fraction : float;
      (** fraction of documents sampled for probability estimation
          (default 1.0) *)
  sample_seed : int;
  bulk : bool;  (** sort sequences before insertion (default true) *)
  keep_documents : bool;
      (** retain the parsed documents for retrieval / verification
          (default true) *)
}

val default_config : config

type t

val build :
  ?domains:int ->
  ?pool:Xutil.Domain_pool.t ->
  ?config:config ->
  Xmlcore.Xml_tree.t array ->
  t
(** Builds an index over the documents; ids are array indices.

    With [~domains:n] (or an existing [~pool]) the per-document encoding
    phase is chunked across [n] worker domains.  The result is {e
    label-identical} to the sequential build for every sequencing
    strategy: all interning phases (statistics, identical-sibling
    pre-pass, canonicalisation) run sequentially first, the parallel
    phase only reads, and the trie bulk load is insertion-order
    independent — see DESIGN.md, "Parallel construction".  The default
    [domains = 1] spawns no domains and is the sequential code path. *)

val query : ?pager:Xstorage.Pager.t -> ?stats:Xquery.Matcher.stats -> t -> Pattern.t -> int list
(** Ids of the documents containing the pattern, sorted.  Queries whose
    wildcard instantiation or isomorphism expansion would explode fall
    back to an exact linear scan of the kept documents (so answers are
    never wrong and never lost); with [keep_documents = false] such
    queries raise {!Xquery.Instantiate.Too_many} instead.
    @raise Xquery.Query_seq.Unsupported_strategy for a {!Random} index. *)

val query_xpath : ?pager:Xstorage.Pager.t -> ?stats:Xquery.Matcher.stats -> t -> string -> int list
(** Parses the XPath fragment and runs {!query}. *)

val contains : t -> Pattern.t -> int -> bool
(** Whether one particular document matches (via the index). *)

(** {1 Batched execution}

    Many queries against one frozen index, executed concurrently.  The
    labelled index is strictly read-only after construction and query
    compilation never writes the global intern tables (value lookups use
    {!Xmlcore.Designator.find_value}), so workers share [t] directly;
    each worker owns a private {!Xquery.Matcher.stats} record and
    {!Xstorage.Pager.t} which are merged once the batch completes. *)

val query_batch :
  ?domains:int ->
  ?pool:Xutil.Domain_pool.t ->
  ?stats:Xquery.Matcher.stats ->
  t ->
  Pattern.t array ->
  int list array
(** [query_batch ~domains t patterns] answers every pattern, with the
    patterns chunked across [domains] worker domains (default 1 =
    sequential; pass [~pool] to reuse a pool).  Result [i] is exactly
    [query t patterns.(i)] — same ids, same order, same fallback
    behaviour — for any number of domains.  When [stats] is supplied the
    per-worker counters are {!Xquery.Matcher.merge_stats}'d into it, so
    totals match a sequential run over the same patterns.
    @raise Xquery.Query_seq.Unsupported_strategy for a {!Random} index
    (the whole batch fails, like the equivalent sequential loop). *)

type batch_io = {
  io_pages_touched : int;  (** sum over queries of distinct pages touched *)
  io_misses : int;  (** sum over queries of buffer misses *)
  io_accesses : int;  (** entry-level accesses across the whole batch *)
}

val query_batch_io :
  ?domains:int ->
  ?pool:Xutil.Domain_pool.t ->
  ?stats:Xquery.Matcher.stats ->
  ?page_size:int ->
  ?buffer_pages:int ->
  t ->
  Pattern.t array ->
  int list array * batch_io
(** Like {!query_batch} but charges every probe to a per-worker
    {!Xstorage.Pager} and returns the summed I/O accounting.  With the
    default [buffer_pages = 0] each query's page count is independent of
    how queries were assigned to workers, so the totals are deterministic
    across domain counts; with a warm LRU ([buffer_pages > 0]) miss
    counts depend on the per-worker access interleaving and only
    [io_pages_touched] stays assignment-independent. *)

type prepared
(** A compiled query: wildcard instantiation and sequence expansion done
    once, reusable across executions (and what the benchmarks amortise).
    A prepared query is stamped with the {!generation} of the index it
    was compiled for. *)

val prepare : t -> Pattern.t -> prepared
(** Compiles the pattern against this index.
    @raise Xquery.Instantiate.Too_many when expansion explodes —
    {!query}'s scan fallback does not apply to prepared queries. *)

val run_prepared : ?pager:Xstorage.Pager.t -> ?stats:Xquery.Matcher.stats -> t -> prepared -> int list
(** Executes a prepared query.  The index must be the one it was prepared
    against: the compiled sequences embed that index's label ranges, so
    [run_prepared] checks the generation stamp and raises
    [Invalid_argument] on a mismatch instead of returning garbage ids.
    [Xserver]'s plan cache leans on this check to invalidate cached plans
    across [Reload] hot swaps. *)

val generation : t -> int
(** A process-unique stamp distinguishing this index from every other
    index constructed (built, loaded or rebuilt) in the same process.
    Monotonically increasing; never reused. *)

val next_generation : unit -> int
(** Allocates a stamp from the same process-wide sequence as index
    generations.  [Xlog] stamps its merged base+delta views with these,
    so one namespace covers every plan-cache key regardless of whether
    the plan was compiled against a frozen index or a live store. *)

val explain : t -> Pattern.t -> Xquery.Engine.explanation
(** Runs the query and reports the pipeline's work: wildcard
    instantiations, sequence expansions, matcher counters
    (see {!Xquery.Engine.explain}). *)

val document : t -> int -> Xmlcore.Xml_tree.t
(** The original document (requires [keep_documents]).
    @raise Invalid_argument otherwise or for an unknown id. *)

val doc_count : t -> int

val node_count : t -> int
(** Index trie nodes — the quantity plotted in Figure 14. *)

val distinct_paths : t -> int

val size_bytes : t -> int
(** The paper's [4n + cN] disk-size estimate (Section 6.2). *)

val layout_bytes : t -> int
(** Bytes of the simulated page layout (links + document table). *)

val strategy : t -> Sequencing.Strategy.t
val value_mode : t -> Sequencing.Encoder.value_mode
val labeled : t -> Xindex.Labeled.t
(** The underlying labelled index, for low-level experimentation. *)

val average_sequence_length : t -> float

val stats : t -> Xschema.Stats.t option
(** The sampled statistics (present for [Probability*] sequencing). *)

(** {1 Persistence}

    An index saves to a columnar {!Xstorage.Store} snapshot: the labelled
    trie as flat int-column regions, the original records as a structural
    blob, and a small metadata region recording how the probability model
    was derived (so the strategy is deterministically recomputed on
    load).  Nothing is marshalled — every region is checksummed and
    decoded through bounds-checked readers, so a corrupt, truncated or
    foreign file is rejected with a diagnostic naming the failure.

    A snapshot opened with [~mode:Paged] answers queries straight off
    disk: index columns stay in the file and are read page by page
    through the store's buffer pool. *)

val save : ?format:Xstorage.Store.file_format -> t -> string -> unit
(** [save t path] writes the index to [path] in the
    {!Xstorage.Store} file format.  [format] (default
    {!Xstorage.Store.Col1}) selects the container:
    {!Xstorage.Store.Col2} writes the compressed form — delta+varint
    label columns, LZ document blob, compact front-coded path
    dictionary — typically several times smaller and loadable by the
    same {!load} (which dispatches on the file's magic).
    @raise Invalid_argument for indexes built with [keep_documents =
    false] or with a [Custom]/[Probability_weighted] strategy (closures
    cannot be persisted). *)

val load :
  ?mode:Xstorage.Store.mode -> ?pool_pages:int -> ?verify:bool -> string -> t
(** [load path] restores a saved index; queries answer exactly as on the
    original.  [mode] (default [Resident]) materialises every column in
    memory (compressed snapshots stay compressed, decoding blocks on
    probe); [Paged] leaves the index columns on disk behind a buffer
    pool of [pool_pages] pages (default 256).  [verify] (default
    [true]) checks every region checksum up front.
    @raise Invalid_argument on a corrupt or incompatible file, naming
    the failing part (magic, version, checksum, region). *)

val backing_store : t -> Xstorage.Store.t option
(** The open snapshot behind an index restored with [~mode:Paged] —
    exposes buffer-pool statistics ({!Xstorage.Store.page_reads} /
    {!Xstorage.Store.page_hits}); [None] for in-memory indexes. *)

(** {1 Incremental indexing}

    {b Deprecated} in favour of the [Xlog] subsystem, which is this idea
    grown up: durable (write-ahead logged, crash-recoverable), with
    deletes (tombstones), delta {e segments} instead of one unindexed
    tail, and non-blocking background compaction instead of a blocking
    full rebuild.  [Dynamic] is kept as a volatile in-process
    accumulator for existing callers; new code should use
    [Xlog.open_]/[insert]/[query].

    The labelled index is rebuilt wholesale (labels are dense pre/post
    ranges), so {!Dynamic} batches insertions: new records accumulate in
    a tail, and once the tail exceeds a threshold the whole index is
    rebuilt — the classic base-plus-delta pattern.  A small tail is
    scanned exactly; a larger one is indexed once and the tail index
    memoised across queries (it used to be re-encoded per query).
    Results are always exact. *)

module Dynamic : sig
  type dyn

  val create :
    ?domains:int ->
    ?config:config ->
    ?rebuild_threshold:int ->
    Xmlcore.Xml_tree.t array ->
    dyn
  (** [rebuild_threshold] (default 1024) bounds the unindexed tail.
      [config.keep_documents] is forced on (rebuilds need the records).
      [domains] (default 1) is passed to every {!Xseq.build} the
      accumulator performs, including threshold-triggered rebuilds. *)

  val add : dyn -> Xmlcore.Xml_tree.t -> int
  (** Inserts a record and returns its id (ids are stable across
      rebuilds). *)

  val query : dyn -> Pattern.t -> int list
  val query_xpath : dyn -> string -> int list

  val doc_count : dyn -> int

  val pending : dyn -> int
  (** Records currently in the unindexed tail. *)

  val flush : dyn -> unit
  (** Forces a rebuild so that {!pending} becomes 0. *)

  val snapshot : dyn -> t
  (** The underlying index after a {!flush}. *)
end
