(** Topology-aware client for a replicated xseq deployment.

    A {!t} holds the endpoint list of a primary/follower group and
    routes each operation to the right member:

    - {b Reads} ({!query}) fan out over the endpoints round-robin and
      fail over: an endpoint that cannot be reached (connect failure,
      transport error, timeout) is skipped and the next one tried.
      With [~max_staleness] the read becomes bounded: the client pins
      the primary's current id watermark, asks followers with
      [Query_bounded { min_gen = watermark - max_staleness }], and
      chases [Not_primary] redirects — so the answer is never more than
      [max_staleness] documents behind the primary at call time.
    - {b Mutations} ({!insert}, {!delete}, {!flush}) chase the leader:
      a [Not_primary] answer carries the leader endpoint hint, and the
      client re-issues the request there (learning endpoints it was
      never configured with).  At-most-once is preserved across
      promotion: the only failover trigger is a {e served} [Not_primary]
      answer — proof the mutation did not execute — or a connect-stage
      failure before anything was sent.  A transport failure after the
      request may have reached a server propagates as indeterminate,
      exactly like {!Client}.
    - During a failover window (old primary dead, new one not yet
      promoted) mutations poll the group, sleeping between rounds per
      the policy's {!Backoff} schedule (decorrelated jitter, reset on
      the first round that lands) until the deadline expires — so a
      fleet of writers spreads out instead of hammering the survivors
      in lockstep.  Reads never stall on promotion, they just prefer
      whoever answers.  [?seed] fixes the jitter stream for tests.

    Not thread-safe (it wraps per-endpoint {!Client.t}s, which are
    not): give each thread its own cluster handle. *)

type t

val create :
  ?policy:Client.policy -> ?seed:int -> string list -> (t, string) result
(** [create endpoints] parses every endpoint ("HOST:PORT" or
    "unix:PATH") and returns a lazy handle — connections are dialled on
    first use, per endpoint.  [Error] names the first malformed
    endpoint; an empty list is an error. *)

val close : t -> unit
(** Closes every open connection.  Idempotent. *)

val endpoints : t -> string list
(** The current endpoint list — configured plus any learned from
    [Not_primary] leader hints. *)

val leader : t -> string option
(** The endpoint last proven (or hinted) to be the primary, if any. *)

val query : ?timeout_ms:int -> ?max_staleness:int -> t -> string -> int list
(** Matching ids for one XPath, from whichever endpoint answers first
    (round-robin with failover).  With [~max_staleness:n] the read is
    bounded as described above; [n = 0] demands the primary's exact
    watermark.  [timeout_ms] bounds each endpoint attempt.
    @raise Client.Server_error when a server answered an error that is
    not a redirect.
    @raise Failure when every endpoint failed; the message aggregates
    the per-endpoint failures. *)

val insert : ?timeout_ms:int -> t -> string -> int
(** Inserts one XML document on the primary, chasing [Not_primary]
    hints (and polling through a promotion window).  Returns the
    assigned id. *)

val delete : ?timeout_ms:int -> t -> int -> bool
val flush : ?timeout_ms:int -> t -> int

val promote : ?timeout_ms:int -> t -> string -> int
(** [promote t endpoint] makes [endpoint] (added to the group if new)
    the primary; returns the new epoch. *)

val statuses :
  t -> (string * (Client.repl_state, string) result) list
(** One [Repl_status] probe per endpoint — [Error] is the failure
    message for unreachable ones.  Updates the cached leader. *)
