(** The xseq query daemon: a long-lived concurrent service answering
    {!Protocol} frames over TCP and Unix-domain sockets.

    {2 Architecture}

    An event-driven core: [accept_shards] event-loop threads, each
    running an {!Xutil.Evloop} (epoll(7) on Linux, [select] elsewhere)
    and owning its connections outright.  Each connection is a
    non-blocking state machine — reading, executing and writing live
    at once, so clients may {e pipeline}: write N requests before
    reading any response, and responses come back strictly in request
    order.  Incremental frame decoding ({!Protocol.Decoder}) turns
    whatever bytes arrived into requests; cheap ops answer inline on
    the loop; queries and mutations execute on a shared
    {!Xutil.Domain_pool} of worker domains (queries micro-batched per
    tick to amortise the handoff), and workers post completions back
    through an eventfd wakeup.  Responses leave in batched writev(2)
    calls.  TCP listeners shard across loops with [SO_REUSEPORT];
    Unix-domain listeners are shared by every loop.  Everything else
    is bookkeeping:

    - {b Admission control}: at most [max_pending] query requests may be
      in flight (queued or executing) at once.  A request arriving beyond
      that answers an [Overloaded] error frame immediately — connections
      are never silently dropped.  Per-request deadlines ([timeout_ms] in
      the frame, else [default_timeout_ms]) are checked when a worker
      picks the job up: an expired request answers [Timeout] without
      touching the index.
    - {b Plan cache}: query compilation (wildcard instantiation +
      isomorphism expansion) is cached in a {!Plan_cache} LRU keyed by
      the {e normalized} pattern text, stamped with the index generation.
    - {b Hot swap}: the served index lives in an [Atomic.t]; [Reload]
      builds/loads the replacement off to the side and swaps the pointer,
      so concurrent queries answer against a consistent index — old until
      the swap commits, new after — and stale cached plans die on their
      generation stamp.
    - {b Robustness}: garbage, truncated or oversized frames answer an
      error frame (or close the connection) and never raise past the
      connection thread; the accept loop cannot be crashed by a client.
    - {b Graceful shutdown}: {!stop} stops accepting, lets in-flight
      requests finish (bounded by [drain_timeout_s]), closes every
      connection, unlinks Unix socket files, and shuts the worker pool
      down. *)

type addr =
  | Tcp of string * int  (** host (interface to bind), port *)
  | Unix_sock of string  (** filesystem path *)

val addr_to_string : addr -> string

val addr_of_string : string -> (addr, string) result
(** ["unix:PATH"] or a bare path containing ['/'] → {!Unix_sock};
    ["HOST:PORT"] or [":PORT"] (localhost) → {!Tcp}. *)

type source =
  | Static of Xseq.t
      (** a resident index; [Reload None] is a no-op, [Reload (Some p)]
          swaps to the snapshot at [p] *)
  | Snapshot of string
      (** serve the snapshot at this path; [Reload None] re-loads the
          same path (picking up a newly written file), [Reload (Some p)]
          loads and switches to [p] *)
  | Dynamic of Xseq.Dynamic.dyn
      (** base-plus-delta index; [Reload None] flushes the tail and
          serves the rebuilt snapshot.  Deprecated — serve a {!Live}
          store instead. *)
  | Live of Xlog.t
      (** durable ingestion store: queries answer over base + delta
          segments + memtable minus tombstones, and the [Insert] /
          [Delete] / [Flush] wire ops mutate it.  [Reload None] flushes
          the memtable and compacts in place (queries keep answering
          throughout); [Reload (Some p)] switches to the snapshot at
          [p]. *)
  | Sharded of Xshard.t
      (** N-shard live store ([serve --shards N]): inserts hash-route to
          a shard's WAL, queries scatter-gather over every shard.
          [Health]/[Stats] aggregate per-shard state — the server is
          degraded as soon as any shard refuses writes, and the Health
          probe doubles as the per-shard recovery probe (disk re-probe
          for degraded shards, re-open for fail-stopped ones).  [Reload
          None] flushes and compacts every shard in place. *)

(** {2 Replication hooks}

    A replicated node is an ordinary server whose config carries
    {!repl_hooks}.  The server then owns the {e wire} half of
    replication — [Subscribe] turns a connection into a long-lived WAL
    stream (batches and heartbeats pushed under the same write-side
    backpressure as every other response), [Wal_ack] feeds the
    semi-sync ack floor, mutations are gated on role and, with
    [repl_sync_replicas > 0], parked until enough subscribers durably
    hold them — while role, epoch, promotion and leader discovery stay
    with the hook provider ([Xrepl.Node]).  Servers without hooks
    answer [Unsupported] on every replication opcode. *)

type repl_hooks = {
  repl_log : Xlog.t;
      (** the replicated store; must be the server's [Live] source *)
  repl_role : unit -> [ `Primary | `Follower ];
  repl_epoch : unit -> int;  (** current fencing epoch *)
  repl_leader_hint : unit -> string;
      (** endpoint of the known primary, "" if unknown — the payload of
          every [Not_primary] answer *)
  repl_promote : unit -> (int, string) result;
      (** flip to primary, bumping the epoch; [Ok epoch] (idempotent on
          a primary), [Error] if persisting the role failed *)
  repl_observe_epoch : int -> unit;
      (** a subscriber announced this epoch; an implementation must step
          a primary down when it is higher (fencing) *)
  repl_lag : unit -> int * int;
      (** (records, bytes) this node trails its primary; (0,0) on a
          primary — surfaced as [repl_lag_records]/[repl_lag_bytes] in
          [Stats] *)
  repl_sync_replicas : int;
      (** acknowledge mutations only once this many subscribers durably
          hold them; 0 = fully asynchronous replication *)
  repl_ack_timeout_ms : int;
      (** parked mutations answer [Timeout] after this long — the write
          is applied locally, its replication indeterminate *)
}

type config = {
  workers : int;  (** worker domains executing queries (default 2) *)
  max_pending : int;  (** admission bound on in-flight queries (default 64) *)
  plan_cache_capacity : int;  (** 0 disables the prepared-plan cache *)
  default_timeout_ms : int;  (** deadline for requests that carry none; 0 = none *)
  drain_timeout_s : float;  (** graceful-shutdown drain bound (default 5s) *)
  debug_delay_ms : int;
      (** artificial per-query delay before the deadline check — test
          instrumentation for overload/timeout scenarios (default 0) *)
  accept_shards : int;
      (** event-loop threads; TCP listeners get one [SO_REUSEPORT]
          socket per loop, Unix-domain listeners are shared (default 1) *)
  max_pipeline : int;
      (** per-connection cap on decoded-but-unanswered requests; at the
          cap the server stops reading that connection until responses
          flush — backpressure, not an error (default 256) *)
  snapshot_mode : Xstorage.Store.mode;
      (** how {!Snapshot} sources (including reload targets) are opened:
          [Resident] (default) materialises the index, [Paged] serves
          it off disk through the buffer pool — Stats then reports
          [store.page_reads] / [store.page_hits] / [store.pool_pages] *)
  snapshot_pool_pages : int;
      (** buffer-pool capacity for [Paged] snapshot serving
          (default 256) *)
  repl : repl_hooks option;
      (** replication role; [None] (the default) serves a plain node *)
  scrub : Xlog.Scrub.scrubber option;
      (** anti-entropy scrubber to surface in Stats JSON (the [scrub]
          block: passes, bytes, errors, repairs, quarantined).  The
          server only reports its counters; starting and stopping the
          scrubber stays with whoever created it (default [None]) *)
}

val default_config : config

type t

val create : ?config:config -> source -> t

val start : t -> addr list -> unit
(** Binds every address (Unix socket paths are unlinked first, so a
    stale file from a crashed server never blocks a restart), spawns
    the event-loop threads and the shutdown coordinator, and returns
    immediately.  Also installs [SIGTERM] and [SIGINT] handlers that
    trigger {!request_stop}, so a terminated (or Ctrl-C'd) server
    drains, closes its listeners and unlinks its Unix socket files on
    the way out.
    @raise Invalid_argument if [addrs] is empty or the server was
    already started.
    @raise Unix.Unix_error if a bind fails. *)

val request_stop : t -> unit
(** Asks the server to shut down and returns immediately — safe to call
    from a signal handler.  The accept thread performs the actual
    drain/close/unlink sequence. *)

val stop : t -> unit
(** {!request_stop} then {!wait}. *)

val wait : t -> unit
(** Blocks until the server has fully shut down. *)

val metrics : t -> Metrics.t

type plan
(** A cached compiled query: an {!Xseq.prepared} for frozen backends, an
    [Xlog.prepared] for live stores, or an [Xshard.prepared] (one
    sub-plan per shard) for sharded stores.  Generation stamps come from
    one process-wide sequence, so the kinds never collide on a cache key
    — and dispatch still checks the variant defensively. *)

val plan_cache : t -> plan Plan_cache.t

val generation : t -> int
(** Generation of the index currently being served.  For a {!Live}
    source this is the store's structure generation: it advances on
    memtable seals and compaction installs, not on every insert. *)

val pending : t -> int
(** Queries currently admitted (queued or executing). *)

val reload : ?path:string -> t -> int
(** Server-side hot swap (what the [Reload] wire op calls); returns the
    new generation.  Serialised: concurrent reloads queue.
    @raise Invalid_argument / Sys_error as the underlying load does. *)

val stats_json : t -> string
(** What the [Stats] op answers: {!Metrics.to_json} plus generation,
    uptime, plan-cache and admission gauges. *)
