(** A mutex-guarded LRU cache of prepared query plans, keyed by the
    normalized query text and stamped with the index generation the plan
    was compiled for.

    The server wraps [Xseq.prepare]/[Xseq.run_prepared] with this cache
    so repeated query shapes skip wildcard instantiation and isomorphism
    expansion entirely.  Entries are {e generation-checked} on every
    lookup: after a [Reload] hot swap the served index has a new
    {!Xseq.generation}, so every stale plan misses (and is dropped on
    touch) rather than being run against the wrong index — the
    [run_prepared] generation guard backstops this at the execution
    layer.

    The cache is polymorphic in the plan type so the codec-free logic is
    testable without building indexes. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity <= 0] creates a disabled cache: every lookup misses, every
    insert is dropped (that is what [--no-plan-cache] serves with, so hit
    and miss counters still tell the story). *)

val capacity : 'a t -> int

val find : 'a t -> generation:int -> string -> 'a option
(** [find t ~generation key] returns the cached plan and promotes it to
    most-recently-used — but only if it was cached under the same
    [generation]; a stale entry is evicted and counted as a miss. *)

val add : 'a t -> generation:int -> string -> 'a -> unit
(** Inserts (or replaces) the plan for [key], evicting the
    least-recently-used entry when the cache is full. *)

val length : 'a t -> int
val hits : 'a t -> int
val misses : 'a t -> int

val clear : 'a t -> unit
(** Drops every entry (counters are kept). *)
