(* Wire codec.  Encoding goes through Buffer; decoding goes through a
   bounds-checked cursor that raises a private [Malformed] exception,
   converted to [Error] at the two public entry points — so no malformed
   input, whatever its shape, can raise out of the codec. *)

let magic = "xQ"

(* Version 2: document ids (and the doc-count gauge) widened from u32 to
   u64 — a sharded store tags the shard index into bits 52+ of every id. *)
let version = 2
let header_size = 8
let max_payload = 16 * 1024 * 1024

type error_code =
  | Bad_request
  | Overloaded
  | Timeout
  | Server_error
  | Degraded
  | Unsupported
  | Not_primary
  | Pruned

let error_code_to_string = function
  | Bad_request -> "bad_request"
  | Overloaded -> "overloaded"
  | Timeout -> "timeout"
  | Server_error -> "server_error"
  | Degraded -> "degraded"
  | Unsupported -> "unsupported"
  | Not_primary -> "not_primary"
  | Pruned -> "pruned"

type request =
  | Ping
  | Query of { xpath : string; timeout_ms : int }
  | Query_batch of { xpaths : string array; timeout_ms : int }
  | Stats
  | Reload of string option
  | Insert of { xml : string }
  | Delete of { id : int }
  | Flush
  | Health
  | Subscribe of { epoch : int; pos : Xlog.Wal.position }
  | Wal_ack of { pos : Xlog.Wal.position }
  | Promote
  | Repl_status
  | Query_bounded of { xpath : string; timeout_ms : int; min_gen : int }
  | Fetch_snapshot of { token : string; cursor : int }
  | Unknown of { op : int }

type response =
  | Pong
  | Result of { generation : int; ids : int list }
  | Batch_result of { generation : int; ids : int list array }
  | Stats_json of string
  | Reloaded of { generation : int }
  | Error of { code : error_code; message : string }
  | Inserted of { id : int }
  | Deleted of { existed : bool }
  | Flushed of { generation : int }
  | Health_status of {
      degraded : bool;
      reason : string;
      generation : int;
      doc_count : int;
    }
  | Wal_batch of {
      epoch : int;
      from : Xlog.Wal.position;
      next : Xlog.Wal.position;
      count : int;
      records : string;
    }
  | Repl_heartbeat of { epoch : int; durable : Xlog.Wal.position; next_id : int }
  | Promoted of { epoch : int }
  | Repl_state of {
      role : [ `Primary | `Follower ];
      epoch : int;
      durable : Xlog.Wal.position;
      next_id : int;
      leader_hint : string;
      lag_records : int;
      lag_bytes : int;
    }
  | Snapshot_chunk of {
      token : string;
      total : int;
      offset : int;
      last : bool;
      crc : int64;
      data : string;
    }

(* --- opcodes -------------------------------------------------------------- *)

let op_ping = 0x00
let op_query = 0x01
let op_query_batch = 0x02
let op_stats = 0x03
let op_reload = 0x04
let op_insert = 0x05
let op_delete = 0x06
let op_flush = 0x07
let op_health = 0x08
let op_subscribe = 0x09
let op_wal_ack = 0x0a
let op_promote = 0x0b
let op_repl_status = 0x0c
let op_query_bounded = 0x0d
let op_fetch_snapshot = 0x0e
let op_pong = 0x80
let op_result = 0x81
let op_batch_result = 0x82
let op_stats_json = 0x83
let op_reloaded = 0x84
let op_error = 0x85
let op_inserted = 0x86
let op_deleted = 0x87
let op_flushed = 0x88
let op_health_status = 0x89
let op_wal_batch = 0x8a
let op_repl_heartbeat = 0x8b
let op_promoted = 0x8c
let op_repl_state = 0x8d
let op_snapshot_chunk = 0x8e

let code_to_int = function
  | Bad_request -> 0
  | Overloaded -> 1
  | Timeout -> 2
  | Server_error -> 3
  | Degraded -> 4
  | Unsupported -> 5
  | Not_primary -> 6
  | Pruned -> 7

(* --- encoding ------------------------------------------------------------- *)

let add_u32 b v = Buffer.add_int32_le b (Int32.of_int v)
let add_u64 b v = Buffer.add_int64_le b (Int64.of_int v)

(* Raw 64-bit value — checksums use every bit, including the sign. *)
let add_i64 b (v : int64) = Buffer.add_int64_le b v

let add_str b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let add_ids b ids =
  add_u32 b (List.length ids);
  List.iter (fun id -> add_u64 b id) ids

(* WAL positions travel as u32 file sequence + u64 byte offset. *)
let add_pos b (p : Xlog.Wal.position) =
  add_u32 b p.Xlog.Wal.file;
  add_u64 b p.Xlog.Wal.off

(* Iovec-style framing: header and payload stay separate buffers so a
   vectored writer can hand both slices to one writev(2) without the
   concatenation copy.  [frame] is the one-string convenience over it. *)
let frame_iov op payload =
  let n = String.length payload in
  if n > max_payload then
    invalid_arg
      (Printf.sprintf "Protocol: payload of %d bytes exceeds the %d cap" n
         max_payload);
  let h = Bytes.create header_size in
  Bytes.blit_string magic 0 h 0 2;
  Bytes.set_uint8 h 2 version;
  Bytes.set_uint8 h 3 op;
  Bytes.set_int32_le h 4 (Int32.of_int n);
  if n = 0 then [ Bytes.unsafe_to_string h ]
  else [ Bytes.unsafe_to_string h; payload ]

let frame op payload = String.concat "" (frame_iov op payload)

let payload_of f =
  let b = Buffer.create 64 in
  f b;
  Buffer.contents b

let encode_request = function
  | Ping -> frame op_ping ""
  | Query { xpath; timeout_ms } ->
    frame op_query
      (payload_of (fun b ->
           add_u32 b timeout_ms;
           add_str b xpath))
  | Query_batch { xpaths; timeout_ms } ->
    frame op_query_batch
      (payload_of (fun b ->
           add_u32 b timeout_ms;
           add_u32 b (Array.length xpaths);
           Array.iter (add_str b) xpaths))
  | Stats -> frame op_stats ""
  | Reload path ->
    frame op_reload
      (payload_of (fun b ->
           match path with
           | None -> Buffer.add_uint8 b 0
           | Some p ->
             Buffer.add_uint8 b 1;
             add_str b p))
  | Insert { xml } -> frame op_insert (payload_of (fun b -> add_str b xml))
  | Delete { id } -> frame op_delete (payload_of (fun b -> add_u64 b id))
  | Flush -> frame op_flush ""
  | Health -> frame op_health ""
  | Subscribe { epoch; pos } ->
    frame op_subscribe
      (payload_of (fun b ->
           add_u64 b epoch;
           add_pos b pos))
  | Wal_ack { pos } -> frame op_wal_ack (payload_of (fun b -> add_pos b pos))
  | Promote -> frame op_promote ""
  | Repl_status -> frame op_repl_status ""
  | Query_bounded { xpath; timeout_ms; min_gen } ->
    frame op_query_bounded
      (payload_of (fun b ->
           add_u32 b timeout_ms;
           add_u64 b min_gen;
           add_str b xpath))
  | Fetch_snapshot { token; cursor } ->
    frame op_fetch_snapshot
      (payload_of (fun b ->
           add_u64 b cursor;
           add_str b token))
  | Unknown { op } ->
    (* Mostly for tests probing forward-compatibility: a well-formed
       frame carrying an opcode this build does not dispatch. *)
    if op < 0 || op > 0x7f then
      invalid_arg (Printf.sprintf "Protocol: request opcode 0x%x out of range" op);
    frame op ""

let response_parts = function
  | Pong -> (op_pong, "")
  | Result { generation; ids } ->
    ( op_result,
      payload_of (fun b ->
          add_u32 b generation;
          add_ids b ids) )
  | Batch_result { generation; ids } ->
    ( op_batch_result,
      payload_of (fun b ->
          add_u32 b generation;
          add_u32 b (Array.length ids);
          Array.iter (add_ids b) ids) )
  | Stats_json s -> (op_stats_json, payload_of (fun b -> add_str b s))
  | Reloaded { generation } ->
    (op_reloaded, payload_of (fun b -> add_u32 b generation))
  | Error { code; message } ->
    ( op_error,
      payload_of (fun b ->
          Buffer.add_uint8 b (code_to_int code);
          add_str b message) )
  | Inserted { id } -> (op_inserted, payload_of (fun b -> add_u64 b id))
  | Deleted { existed } ->
    (op_deleted, payload_of (fun b -> Buffer.add_uint8 b (if existed then 1 else 0)))
  | Flushed { generation } ->
    (op_flushed, payload_of (fun b -> add_u32 b generation))
  | Health_status { degraded; reason; generation; doc_count } ->
    ( op_health_status,
      payload_of (fun b ->
          Buffer.add_uint8 b (if degraded then 1 else 0);
          add_str b reason;
          add_u32 b generation;
          add_u64 b doc_count) )
  | Wal_batch { epoch; from; next; count; records } ->
    ( op_wal_batch,
      payload_of (fun b ->
          add_u64 b epoch;
          add_pos b from;
          add_pos b next;
          add_u32 b count;
          add_str b records) )
  | Repl_heartbeat { epoch; durable; next_id } ->
    ( op_repl_heartbeat,
      payload_of (fun b ->
          add_u64 b epoch;
          add_pos b durable;
          add_u64 b next_id) )
  | Promoted { epoch } -> (op_promoted, payload_of (fun b -> add_u64 b epoch))
  | Repl_state { role; epoch; durable; next_id; leader_hint; lag_records; lag_bytes } ->
    ( op_repl_state,
      payload_of (fun b ->
          Buffer.add_uint8 b (match role with `Primary -> 0 | `Follower -> 1);
          add_u64 b epoch;
          add_pos b durable;
          add_u64 b next_id;
          add_str b leader_hint;
          add_u64 b lag_records;
          add_u64 b lag_bytes) )
  | Snapshot_chunk { token; total; offset; last; crc; data } ->
    ( op_snapshot_chunk,
      payload_of (fun b ->
          add_str b token;
          add_u64 b total;
          add_u64 b offset;
          Buffer.add_uint8 b (if last then 1 else 0);
          add_i64 b crc;
          add_str b data) )

let encode_response r =
  let op, payload = response_parts r in
  frame op payload

let encode_response_iov r =
  let op, payload = response_parts r in
  frame_iov op payload

(* --- decoding ------------------------------------------------------------- *)

exception Malformed of string

let bad fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

type cursor = { s : string; mutable pos : int; limit : int }

let u8 c =
  if c.pos >= c.limit then bad "truncated frame (u8 at %d)" c.pos;
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let u32 c =
  if c.pos + 4 > c.limit then bad "truncated frame (u32 at %d)" c.pos;
  let v = Int32.to_int (String.get_int32_le c.s c.pos) in
  c.pos <- c.pos + 4;
  (* Int32 sign bit maps to negative OCaml ints: never a valid length,
     count, id, generation or timeout in this protocol. *)
  if v < 0 then bad "negative field %d at %d" v (c.pos - 4);
  v

let u64 c =
  if c.pos + 8 > c.limit then bad "truncated frame (u64 at %d)" c.pos;
  let v = Int64.to_int (String.get_int64_le c.s c.pos) in
  c.pos <- c.pos + 8;
  (* The Int64 sign bit (and bit 62, lost to OCaml's tagged int) can
     only come from a corrupt or hostile frame: ids are non-negative
     and fit 62 bits by construction. *)
  if v < 0 then bad "negative field %d at %d" v (c.pos - 8);
  v

let i64 c =
  if c.pos + 8 > c.limit then bad "truncated frame (i64 at %d)" c.pos;
  let v = String.get_int64_le c.s c.pos in
  c.pos <- c.pos + 8;
  v

let str c =
  let n = u32 c in
  if n > c.limit - c.pos then
    bad "string of %d bytes overruns frame at %d" n c.pos;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let ids c =
  let n = u32 c in
  (* Each id costs 8 bytes: reject lying counts before allocating. *)
  if n > (c.limit - c.pos) / 8 then bad "id count %d overruns frame" n;
  List.init n (fun _ -> u64 c)

let pos_field c =
  let file = u32 c in
  let off = u64 c in
  { Xlog.Wal.file; off }

let check_header ~dir s =
  let len = String.length s in
  if len < header_size then bad "frame shorter than its %d-byte header" header_size;
  if String.sub s 0 2 <> magic then bad "bad magic %S" (String.sub s 0 2);
  let v = Char.code s.[2] in
  if v <> version then bad "unsupported protocol version %d" v;
  let op = Char.code s.[3] in
  (match dir with
   | `Request -> if op >= 0x80 then bad "response opcode 0x%02x in a request" op
   | `Response -> if op < 0x80 then bad "request opcode 0x%02x in a response" op);
  let n = Int32.to_int (String.get_int32_le s 4) in
  if n < 0 || n > max_payload then bad "payload length %d exceeds the cap" n;
  if header_size + n <> len then
    bad "payload length field says %d bytes, frame carries %d" n
      (len - header_size);
  (op, { s; pos = header_size; limit = len })

let finish c v =
  if c.pos <> c.limit then
    bad "%d trailing bytes after a well-formed payload" (c.limit - c.pos);
  v

let decode_request s =
  match
    let op, c = check_header ~dir:`Request s in
    if op = op_ping then finish c Ping
    else if op = op_query then begin
      let timeout_ms = u32 c in
      let xpath = str c in
      finish c (Query { xpath; timeout_ms })
    end
    else if op = op_query_batch then begin
      let timeout_ms = u32 c in
      let n = u32 c in
      (* Each query costs at least its 4-byte length prefix. *)
      if n > (c.limit - c.pos) / 4 then bad "query count %d overruns frame" n;
      let xpaths = Array.init n (fun _ -> str c) in
      finish c (Query_batch { xpaths; timeout_ms })
    end
    else if op = op_stats then finish c Stats
    else if op = op_reload then begin
      match u8 c with
      | 0 -> finish c (Reload None)
      | 1 -> finish c (Reload (Some (str c)))
      | t -> bad "bad option tag %d in Reload" t
    end
    else if op = op_insert then finish c (Insert { xml = str c })
    else if op = op_delete then finish c (Delete { id = u64 c })
    else if op = op_flush then finish c Flush
    else if op = op_health then finish c Health
    else if op = op_subscribe then begin
      let epoch = u64 c in
      let pos = pos_field c in
      finish c (Subscribe { epoch; pos })
    end
    else if op = op_wal_ack then finish c (Wal_ack { pos = pos_field c })
    else if op = op_promote then finish c Promote
    else if op = op_repl_status then finish c Repl_status
    else if op = op_query_bounded then begin
      let timeout_ms = u32 c in
      let min_gen = u64 c in
      let xpath = str c in
      finish c (Query_bounded { xpath; timeout_ms; min_gen })
    end
    else if op = op_fetch_snapshot then begin
      let cursor = u64 c in
      let token = str c in
      finish c (Fetch_snapshot { token; cursor })
    end
    else
      (* Forward compatibility: a well-formed frame with a request
         opcode this build does not know is NOT malformed — the server
         answers [Unsupported] and keeps the connection, so newer
         clients degrade per-operation instead of losing the session.
         The payload is opaque to us and deliberately not validated. *)
      Unknown { op }
  with
  | v -> Ok v
  | exception Malformed m -> Error m

let decode_response s =
  match
    let op, c = check_header ~dir:`Response s in
    if op = op_pong then finish c Pong
    else if op = op_result then begin
      let generation = u32 c in
      let l = ids c in
      finish c (Result { generation; ids = l })
    end
    else if op = op_batch_result then begin
      let generation = u32 c in
      let n = u32 c in
      if n > (c.limit - c.pos) / 4 then bad "result count %d overruns frame" n;
      let arr = Array.init n (fun _ -> ids c) in
      finish c (Batch_result { generation; ids = arr })
    end
    else if op = op_stats_json then finish c (Stats_json (str c))
    else if op = op_reloaded then begin
      let generation = u32 c in
      finish c (Reloaded { generation })
    end
    else if op = op_error then begin
      let code =
        match u8 c with
        | 0 -> Bad_request
        | 1 -> Overloaded
        | 2 -> Timeout
        | 3 -> Server_error
        | 4 -> Degraded
        | 5 -> Unsupported
        | 6 -> Not_primary
        | 7 -> Pruned
        | k -> bad "unknown error code %d" k
      in
      let message = str c in
      finish c (Error { code; message })
    end
    else if op = op_inserted then finish c (Inserted { id = u64 c })
    else if op = op_deleted then begin
      match u8 c with
      | 0 -> finish c (Deleted { existed = false })
      | 1 -> finish c (Deleted { existed = true })
      | t -> bad "bad boolean tag %d in Deleted" t
    end
    else if op = op_flushed then begin
      let generation = u32 c in
      finish c (Flushed { generation })
    end
    else if op = op_health_status then begin
      let degraded =
        match u8 c with
        | 0 -> false
        | 1 -> true
        | t -> bad "bad boolean tag %d in Health_status" t
      in
      let reason = str c in
      let generation = u32 c in
      let doc_count = u64 c in
      finish c (Health_status { degraded; reason; generation; doc_count })
    end
    else if op = op_wal_batch then begin
      let epoch = u64 c in
      let from = pos_field c in
      let next = pos_field c in
      let count = u32 c in
      let records = str c in
      (* A batch's records are opaque here (the follower's store
         re-validates every checksum before applying), but the count
         must at least be plausible: each record costs 13+ bytes. *)
      if count > String.length records / 13 then
        bad "record count %d overruns the batch" count;
      finish c (Wal_batch { epoch; from; next; count; records })
    end
    else if op = op_repl_heartbeat then begin
      let epoch = u64 c in
      let durable = pos_field c in
      let next_id = u64 c in
      finish c (Repl_heartbeat { epoch; durable; next_id })
    end
    else if op = op_promoted then finish c (Promoted { epoch = u64 c })
    else if op = op_repl_state then begin
      let role =
        match u8 c with
        | 0 -> `Primary
        | 1 -> `Follower
        | k -> bad "unknown role tag %d in Repl_state" k
      in
      let epoch = u64 c in
      let durable = pos_field c in
      let next_id = u64 c in
      let leader_hint = str c in
      let lag_records = u64 c in
      let lag_bytes = u64 c in
      finish c
        (Repl_state
           { role; epoch; durable; next_id; leader_hint; lag_records; lag_bytes })
    end
    else if op = op_snapshot_chunk then begin
      let token = str c in
      let total = u64 c in
      let offset = u64 c in
      let last =
        match u8 c with
        | 0 -> false
        | 1 -> true
        | t -> bad "bad boolean tag %d in Snapshot_chunk" t
      in
      let crc = i64 c in
      let data = str c in
      if offset + String.length data > total then
        bad "chunk at %d + %d bytes overruns the announced %d-byte stream"
          offset (String.length data) total;
      finish c (Snapshot_chunk { token; total; offset; last; crc; data })
    end
    else bad "unknown response opcode 0x%02x" op
  with
  | v -> Ok v
  | exception Malformed m -> Error m

(* --- framed I/O ----------------------------------------------------------- *)

type read_error = Eof | Truncated | Bad_header of string

(* Reads exactly [n] bytes, tolerating short reads and EINTR.  [`Eof k]
   reports how many bytes arrived before the stream ended. *)
let really_read fd buf off n =
  let rec go off remaining =
    if remaining = 0 then `Ok
    else
      match Xfault.Io.recv fd buf off remaining with
      | 0 -> `Eof (n - remaining)
      | k -> go (off + k) (remaining - k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off remaining
  in
  go off n

let read_frame fd =
  let header = Bytes.create header_size in
  match really_read fd header 0 header_size with
  | `Eof 0 -> Result.Error Eof
  | `Eof _ -> Result.Error Truncated
  | `Ok ->
    let h = Bytes.to_string header in
    if String.sub h 0 2 <> magic then
      Result.Error (Bad_header (Printf.sprintf "bad magic %S" (String.sub h 0 2)))
    else begin
      let v = Char.code h.[2] in
      if v <> version then
        Result.Error (Bad_header (Printf.sprintf "unsupported version %d" v))
      else begin
        let n = Int32.to_int (String.get_int32_le h 4) in
        if n < 0 || n > max_payload then
          Result.Error
            (Bad_header (Printf.sprintf "payload length %d exceeds the cap" n))
        else begin
          let payload = Bytes.create n in
          match really_read fd payload 0 n with
          | `Eof _ -> Result.Error Truncated
          | `Ok -> Result.Ok (h ^ Bytes.to_string payload)
        end
      end
    end

let write_frame fd s =
  let n = String.length s in
  let rec go off =
    if off < n then begin
      match Xfault.Io.send_substring fd s off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    end
  in
  go 0

(* --- incremental decoding -------------------------------------------------- *)

module Decoder = struct
  type item = Need_more | Frame of string | Corrupt of string

  (* A compacting byte window: live data sits in [buf.[head, tail)].
     [feed] appends; [next] consumes whole frames from the front.  The
     header is validated the moment its 8 bytes are in — a hostile
     length field is rejected before one payload byte is read or
     buffered, exactly like the blocking [read_frame].  Corruption is
     sticky: a framing stream cannot be resynchronised, so after one
     [Corrupt] every later [next] repeats it. *)
  type t = {
    mutable buf : Bytes.t;
    mutable head : int;
    mutable tail : int;
    mutable dead : string option;
  }

  let create () =
    { buf = Bytes.create 4096; head = 0; tail = 0; dead = None }

  let buffered t = t.tail - t.head

  let ensure_room t n =
    let live = buffered t in
    if Bytes.length t.buf - t.tail < n then
      if Bytes.length t.buf - live >= n then begin
        (* Compact in place: enough total room, just badly placed. *)
        Bytes.blit t.buf t.head t.buf 0 live;
        t.head <- 0;
        t.tail <- live
      end
      else begin
        let cap = ref (max 4096 (2 * Bytes.length t.buf)) in
        while !cap - live < n do
          cap := !cap * 2
        done;
        let fresh = Bytes.create !cap in
        Bytes.blit t.buf t.head fresh 0 live;
        t.buf <- fresh;
        t.head <- 0;
        t.tail <- live
      end

  let feed t src off len =
    if off < 0 || len < 0 || off + len > Bytes.length src then
      invalid_arg "Decoder.feed: slice out of bounds";
    if t.dead = None && len > 0 then begin
      ensure_room t len;
      Bytes.blit src off t.buf t.tail len;
      t.tail <- t.tail + len
    end

  let feed_string t src off len =
    feed t (Bytes.unsafe_of_string src) off len

  let fail t fmt =
    Printf.ksprintf
      (fun m ->
        t.dead <- Some m;
        (* Poisoned: drop the window so a huge buffered payload is not
           pinned behind a dead connection. *)
        t.buf <- Bytes.create 0;
        t.head <- 0;
        t.tail <- 0;
        Corrupt m)
      fmt

  let next t =
    match t.dead with
    | Some m -> Corrupt m
    | None ->
      if buffered t < header_size then Need_more
      else begin
        let at k = Bytes.get t.buf (t.head + k) in
        if not (at 0 = magic.[0] && at 1 = magic.[1]) then
          fail t "bad magic %S" (Printf.sprintf "%c%c" (at 0) (at 1))
        else if Char.code (at 2) <> version then
          fail t "unsupported version %d" (Char.code (at 2))
        else begin
          let n = Int32.to_int (Bytes.get_int32_le t.buf (t.head + 4)) in
          if n < 0 || n > max_payload then
            fail t "payload length %d exceeds the cap" n
          else if buffered t < header_size + n then Need_more
          else begin
            let s = Bytes.sub_string t.buf t.head (header_size + n) in
            t.head <- t.head + header_size + n;
            if t.head = t.tail then begin
              t.head <- 0;
              t.tail <- 0
            end;
            Frame s
          end
        end
      end
end
