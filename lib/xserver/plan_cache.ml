(* Classic hash-map + doubly-linked-list LRU, one mutex around the lot.
   Contention is negligible next to query execution, and a single lock
   keeps the promote-on-hit path trivially correct across the server's
   connection threads and worker domains. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable gen : int;
  mutable prev : 'a node option; (* towards most-recently-used *)
  mutable next : 'a node option; (* towards least-recently-used *)
}

type 'a t = {
  cap : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option; (* most recently used *)
  mutable tail : 'a node option; (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  m : Mutex.t;
}

let create ~capacity =
  {
    cap = max 0 capacity;
    table = Hashtbl.create 64;
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    m = Mutex.create ();
  }

let capacity t = t.cap

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* --- intrusive list ------------------------------------------------------- *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let drop t n =
  unlink t n;
  Hashtbl.remove t.table n.key

(* --- public operations ---------------------------------------------------- *)

let find t ~generation key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some n when n.gen = generation ->
        t.hits <- t.hits + 1;
        unlink t n;
        push_front t n;
        Some n.value
      | Some n ->
        (* Compiled for a previous index generation (pre-hot-swap):
           useless now, and keeping it would only delay the rebuild of a
           fresh plan.  Evict on touch. *)
        drop t n;
        t.misses <- t.misses + 1;
        None
      | None ->
        t.misses <- t.misses + 1;
        None)

let add t ~generation key value =
  if t.cap > 0 then
    with_lock t (fun () ->
        (match Hashtbl.find_opt t.table key with
         | Some n -> drop t n
         | None -> ());
        if Hashtbl.length t.table >= t.cap then
          Option.iter (drop t) t.tail;
        let n = { key; value; gen = generation; prev = None; next = None } in
        Hashtbl.replace t.table key n;
        push_front t n)

let length t = with_lock t (fun () -> Hashtbl.length t.table)
let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.table;
      t.head <- None;
      t.tail <- None)
