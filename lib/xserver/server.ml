(* The query daemon.  See server.mli for the architecture overview.

   Thread/domain layout (event-driven core):
   - [config.accept_shards] event-loop systhreads, each running an
     {!Xutil.Evloop} (epoll where available).  Every loop owns a set of
     connections outright: it accepts them, decodes their frames,
     admits their queries and writes their responses.  Nothing about a
     connection is ever touched from another loop;
   - [config.workers] worker domains execute queries (and mutations,
     reloads, health probes) pulled from the shared {!Xutil.Domain_pool}.
     Workers never touch sockets: they fill the request's response slot
     and post a completion to the owning loop, which {!Xutil.Evloop.wakeup}
     nudges out of its wait;
   - one coordinator systhread watches [stop_requested] and runs the
     shutdown sequence (join loops, close listeners, unlink Unix socket
     files, drain the pool).

   Per-connection state machine (reading -> executing -> writing, all
   three phases live at once under pipelining):
   - readable: feed whatever arrived into the incremental
     {!Protocol.Decoder}, then drain complete frames.  Each frame gets a
     response {e slot} appended to the connection's FIFO; cheap ops
     (ping, stats, unsupported) complete inline, queries are admitted
     now (so [Overloaded] reflects true concurrency) and batched to the
     pool, mutations ship to the pool individually;
   - completion: a slot's response arrives (inline or posted by a
     worker).  Responses are flushed strictly in slot order — a later
     request finishing first waits for the head of the queue — which is
     what makes pipelining transparent to clients;
   - writable: encoded responses accumulate in an output queue of
     iovec-style slices and leave in batched writev(2) calls; short
     writes arm write-readiness and resume where the kernel stopped.
     The output queue is bounded by backpressure: once its unsent
     bytes cross a high-water mark the connection stops reading, so a
     peer that pipelines queries but never drains its socket caps the
     memory it can pin rather than growing it without bound.

   Shared state and its discipline:
   - the served index is an [Atomic.t] of an immutable record: readers
     [Atomic.get] once per request and use that snapshot throughout, so a
     concurrent [Reload] can never tear a request across two indexes;
   - the plan cache, metrics registry and admission counter each carry
     their own mutex;
   - a slot's response cell is an [Atomic.t]: the worker fills it, the
     loop reads it — the completion post (mutex + wakeup) publishes it;
   - [stop_requested] is an [Atomic.t bool] so a signal handler can set
     it without taking locks. *)

module Pool = Xutil.Domain_pool
module Ev = Xutil.Evloop
module P = Protocol

type addr = Tcp of string * int | Unix_sock of string

let addr_to_string = function
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p
  | Unix_sock p -> "unix:" ^ p

let addr_of_string s =
  let unix_prefix = "unix:" in
  if String.length s > String.length unix_prefix
     && String.sub s 0 (String.length unix_prefix) = unix_prefix
  then
    Ok (Unix_sock (String.sub s (String.length unix_prefix)
                     (String.length s - String.length unix_prefix)))
  else if String.contains s '/' then Ok (Unix_sock s)
  else
    match String.rindex_opt s ':' with
    | None -> Error (Printf.sprintf "cannot parse address %S (want unix:PATH or HOST:PORT)" s)
    | Some i ->
      let host = if i = 0 then "127.0.0.1" else String.sub s 0 i in
      (match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
       | Some port when port > 0 && port < 65536 -> Ok (Tcp (host, port))
       | _ -> Error (Printf.sprintf "bad port in address %S" s))

type source =
  | Static of Xseq.t
  | Snapshot of string
  | Dynamic of Xseq.Dynamic.dyn
  | Live of Xlog.t
  | Sharded of Xshard.t

(* Replication is wired through a hook record rather than a direct
   dependency on the engine: the server owns the wire mechanics
   (subscription pumping, ack bookkeeping, role gating) while role,
   epoch and promotion live with whoever built the hooks ([Xrepl]) —
   xserver never links against xrepl. *)
type repl_hooks = {
  repl_log : Xlog.t;  (** the replicated store — must be the served source *)
  repl_role : unit -> [ `Primary | `Follower ];
  repl_epoch : unit -> int;
  repl_leader_hint : unit -> string;  (** "" when unknown *)
  repl_promote : unit -> (int, string) result;
  repl_observe_epoch : int -> unit;
      (** a subscriber announced this epoch; a primary seeing a higher
          one was deposed and must step down (fencing) *)
  repl_lag : unit -> int * int;
      (** (records, bytes) this node trails its primary; (0, 0) on a
          primary *)
  repl_sync_replicas : int;
      (** mutations are acknowledged only once this many subscribers
          durably hold them; 0 = asynchronous *)
  repl_ack_timeout_ms : int;
      (** parked mutations answer [Timeout] after this long without
          enough acks (the write {e is} applied locally — the client
          must treat it as indeterminate, exactly like any timeout) *)
}

type config = {
  workers : int;
  max_pending : int;
  plan_cache_capacity : int;
  default_timeout_ms : int;
  drain_timeout_s : float;
  debug_delay_ms : int;
  accept_shards : int;
  max_pipeline : int;
  snapshot_mode : Xstorage.Store.mode;
  snapshot_pool_pages : int;
  repl : repl_hooks option;
  scrub : Xlog.Scrub.scrubber option;
      (** an anti-entropy scrubber whose counters belong in Stats JSON;
          the server only reports it — start/stop stay with the owner *)
}

let default_config =
  {
    workers = 2;
    max_pending = 64;
    plan_cache_capacity = 256;
    default_timeout_ms = 0;
    drain_timeout_s = 5.0;
    debug_delay_ms = 0;
    accept_shards = 1;
    max_pipeline = 256;
    snapshot_mode = Xstorage.Store.Resident;
    snapshot_pool_pages = 256;
    repl = None;
    scrub = None;
  }

(* What a request executes against: one [Atomic.get] pins the backend
   for the whole request.  A frozen backend's generation is fixed at
   swap time; a live store's structure generation moves underneath us
   (seals, compaction installs), so it is read per request. *)
type backend = B_index of Xseq.t | B_live of Xlog.t | B_shard of Xshard.t

type serving = { backend : backend; gen : int }

let serving_gen sv =
  match sv.backend with
  | B_index _ -> sv.gen
  | B_live log -> Xlog.generation log
  | B_shard sh -> Xshard.generation sh

(* Cached plans carry which compiler produced them; generations are
   allocated from one process-wide sequence ({!Xseq.next_generation}),
   so a key collision across backend kinds cannot happen — the variant
   check is defence in depth. *)
type plan =
  | Plan_index of Xseq.prepared
  | Plan_live of Xlog.prepared
  | Plan_shard of Xshard.prepared

(* One pipelined request on one connection.  [sl_op = ""] marks a
   framing-error slot (an error frame owed for input that never decoded
   into a request; it counts as an error, not as a request). *)
type slot = {
  sl_op : string;
  sl_t0 : float;
  sl_resp : P.response option Atomic.t;
}

type conn = {
  c_fd : Unix.file_descr;
  c_dec : P.Decoder.t;
  c_slots : slot Queue.t;  (** responses owed, in request order *)
  c_outq : string Queue.t;  (** encoded slices not yet accepted by the kernel *)
  mutable c_out_off : int;  (** bytes of [Queue.peek c_outq] already written *)
  mutable c_outq_bytes : int;  (** unsent bytes across [c_outq] (backpressure) *)
  mutable c_paused : bool;
      (** reading paused: pipeline cap or output high-water mark reached
          (or draining) *)
  mutable c_want_read : bool;  (** interest bits currently registered *)
  mutable c_want_write : bool;
  mutable c_closed : bool;
  mutable c_close_after_flush : bool;
  mutable c_sub : sub option;
      (** [Some _] once the peer subscribed to the WAL stream: the
          connection has left the request/response model — the server
          pushes batches and heartbeats, the peer sends only acks *)
  mutable c_xfer : xfer option;
      (** [Some _] while a snapshot transfer is streaming out: chunks
          refill the output queue as the kernel drains it, under the
          same high-water mark as every other push *)
  c_loop : loop;
}

(* One outbound snapshot transfer.  Owned by the connection's loop
   thread; the transfer {e list} (WAL retention pinning) is shared and
   guarded by [repl.rp_m]. *)
and xfer = {
  xf_dir : string;
  xf_manifest : Xlog.Transfer.manifest;
  mutable xf_offset : int;  (** next stream byte to ship *)
}

(* One live WAL subscription.  Owned by the connection's loop thread
   like the rest of the connection state; the subscription {e list}
   (membership, retention, ack floor) is shared and guarded by
   [repl.rp_m]. *)
and sub = {
  s_conn : conn;
  mutable s_cursor : Xlog.Wal.position;  (** next byte to ship *)
  mutable s_acked : Xlog.Wal.position;
      (** highest position the subscriber durably applied *)
  mutable s_last_send : float;  (** heartbeat pacing *)
}

and loop = {
  l_id : int;
  l_ev : Ev.t;
  l_listeners : Unix.file_descr list;
  l_conns : (Unix.file_descr, conn) Hashtbl.t;
  l_m : Mutex.t;  (** guards [l_compl] *)
  mutable l_compl : conn list;  (** worker-posted completions, reversed *)
  mutable l_exec : exec_item list;  (** queries admitted this tick, reversed *)
  mutable l_draining : bool;
  l_scratch : Bytes.t;
}

(* A query admitted at decode time, waiting to be micro-batched to the
   pool at the end of the loop tick.  Batching matters on the write
   path: a pipelined burst read in one recv becomes one pool handoff,
   not one mutex/condvar round trip per frame. *)
and exec_item = {
  x_conn : conn;
  x_slot : slot;
  x_patterns : Xquery.Pattern.t array;
  x_batch : bool;
  x_deadline : float option;
}

(* A mutation response parked until [repl_sync_replicas] subscribers
   acknowledge the log position it produced (semi-synchronous
   replication): the client's ack then implies the record survives the
   primary's death. *)
type waiter = {
  w_conn : conn;
  w_slot : slot;
  w_resp : P.response;
  w_pos : Xlog.Wal.position;  (** durable position the record is under *)
  w_deadline : float;
}

type repl = {
  rp_hooks : repl_hooks;
  rp_m : Mutex.t;  (** guards [rp_subs], [rp_waiters] and [rp_xfers] *)
  mutable rp_subs : sub list;
  mutable rp_waiters : waiter list;
  mutable rp_xfers : xfer list;
      (** live snapshot transfers: their manifests pin the WAL file the
          stream still has to read through the retention hook *)
}

type t = {
  config : config;
  mutable source : source; (* guarded by [reload_m] *)
  serving : serving Atomic.t;
  cache : plan Plan_cache.t;
  metrics : Metrics.t;
  pool : Pool.t;
  repl : repl option;
  (* admission *)
  adm_m : Mutex.t;
  mutable in_flight : int;
  (* lifecycle *)
  stop_requested : bool Atomic.t;
  state_m : Mutex.t;
  state_cv : Condition.t;
  mutable started : bool;
  mutable stopped : bool;
  mutable listeners : (Unix.file_descr * addr) list;
  mutable loops : loop array;
  mutable coordinator : Thread.t option;
  reload_m : Mutex.t;
  started_at : float;
}

let serving_of_source config = function
  | Static index -> { backend = B_index index; gen = Xseq.generation index }
  | Snapshot path ->
    let index =
      Xseq.load ~mode:config.snapshot_mode
        ~pool_pages:config.snapshot_pool_pages path
    in
    { backend = B_index index; gen = Xseq.generation index }
  | Dynamic dyn ->
    let index = Xseq.Dynamic.snapshot dyn in
    { backend = B_index index; gen = Xseq.generation index }
  | Live log -> { backend = B_live log; gen = Xlog.generation log }
  | Sharded sh -> { backend = B_shard sh; gen = Xshard.generation sh }

let create ?(config = default_config) source =
  if config.workers < 1 then invalid_arg "Server.create: workers < 1";
  if config.max_pending < 1 then invalid_arg "Server.create: max_pending < 1";
  if config.accept_shards < 1 then invalid_arg "Server.create: accept_shards < 1";
  if config.max_pipeline < 1 then invalid_arg "Server.create: max_pipeline < 1";
  let repl =
    match config.repl with
    | None -> None
    | Some hooks ->
      (* The replicated log must be what the server serves: the
         staleness guard compares the served id watermark, and the
         pump ships the served store's WAL. *)
      (match source with
       | Live log when log == hooks.repl_log -> ()
       | _ ->
         invalid_arg
           "Server.create: replication requires serving the replicated \
            store (Live log)");
      let r =
        { rp_hooks = hooks; rp_m = Mutex.create (); rp_subs = [];
          rp_waiters = []; rp_xfers = [] }
      in
      (* Live subscriptions pin the WAL files they still have to read:
         pruning past a cursor is survivable (Position_pruned + re-seed)
         but never free, so checkpoints keep them.  Snapshot transfers
         pin the file their manifest's WAL prefix lives in — pruning it
         mid-stream would only force the fetcher to restart. *)
      Xlog.set_wal_retention hooks.repl_log (fun () ->
          Mutex.lock r.rp_m;
          let min_opt acc f =
            match acc with None -> Some f | Some g -> Some (min g f)
          in
          let keep =
            List.fold_left
              (fun acc s -> min_opt acc s.s_cursor.Xlog.Wal.file)
              None r.rp_subs
          in
          let keep =
            List.fold_left
              (fun acc x ->
                min_opt acc x.xf_manifest.Xlog.Transfer.x_wal_index)
              keep r.rp_xfers
          in
          Mutex.unlock r.rp_m;
          keep);
      Some r
  in
  {
    config;
    source;
    serving = Atomic.make (serving_of_source config source);
    cache = Plan_cache.create ~capacity:config.plan_cache_capacity;
    metrics = Metrics.create ();
    pool = Pool.create ~domains:config.workers ();
    repl;
    adm_m = Mutex.create ();
    in_flight = 0;
    stop_requested = Atomic.make false;
    state_m = Mutex.create ();
    state_cv = Condition.create ();
    started = false;
    stopped = false;
    listeners = [];
    loops = [||];
    coordinator = None;
    reload_m = Mutex.create ();
    started_at = Unix.gettimeofday ();
  }

let metrics t = t.metrics
let plan_cache t = t.cache
let generation t = serving_gen (Atomic.get t.serving)

let pending t =
  Mutex.lock t.adm_m;
  let n = t.in_flight in
  Mutex.unlock t.adm_m;
  n

(* --- admission ------------------------------------------------------------- *)

(* Admission happens on the loop thread at decode time — not when a
   worker dequeues the job — so [max_pending] bounds true concurrency:
   queued-but-unexecuted requests hold their permit and later arrivals
   answer [Overloaded] immediately. *)
let try_admit t =
  Mutex.lock t.adm_m;
  let ok = t.in_flight < t.config.max_pending in
  if ok then t.in_flight <- t.in_flight + 1;
  Mutex.unlock t.adm_m;
  ok

(* --- query execution ------------------------------------------------------- *)

(* Compile-or-reuse: normalized pattern text keys the LRU; the entry's
   generation stamp guarantees the plan belongs to the backend snapshot.
   Queries whose expansion explodes ([Too_many]) bypass the cache and
   take the exact-scan fallback.  On a live store the structure can seal
   between the cache probe and the run — [Xlog.run_prepared] raises on
   its stamp check and the query falls back to the uncached (always
   current) path rather than answering from a stale plan. *)
let answer_pattern t sv stats pattern =
  let key = Xquery.Pattern.to_string pattern in
  match sv.backend with
  | B_index index ->
    (match Plan_cache.find t.cache ~generation:sv.gen key with
     | Some (Plan_index plans) -> Xseq.run_prepared ~stats index plans
     | Some (Plan_live _) | Some (Plan_shard _) | None ->
       (match Xseq.prepare index pattern with
        | plans ->
          Plan_cache.add t.cache ~generation:sv.gen key (Plan_index plans);
          Xseq.run_prepared ~stats index plans
        | exception Xquery.Instantiate.Too_many _ ->
          Xseq.query ~stats index pattern))
  | B_live log ->
    let gen = Xlog.generation log in
    let run plan =
      try Xlog.run_prepared ~stats log plan
      with Invalid_argument _ -> Xlog.query ~stats log pattern
    in
    (match Plan_cache.find t.cache ~generation:gen key with
     | Some (Plan_live plan) -> run plan
     | Some (Plan_index _) | Some (Plan_shard _) | None ->
       (match Xlog.prepare log pattern with
        | plan ->
          Plan_cache.add t.cache ~generation:gen key (Plan_live plan);
          run plan
        | exception Xquery.Instantiate.Too_many _ ->
          Xlog.query ~stats log pattern))
  | B_shard sh ->
    let gen = Xshard.generation sh in
    let run plan =
      try Xshard.run_prepared ~stats sh plan
      with Invalid_argument _ -> Xshard.query ~stats sh pattern
    in
    (match Plan_cache.find t.cache ~generation:gen key with
     | Some (Plan_shard plan) -> run plan
     | Some (Plan_index _) | Some (Plan_live _) | None ->
       (match Xshard.prepare sh pattern with
        | plan ->
          Plan_cache.add t.cache ~generation:gen key (Plan_shard plan);
          run plan
        | exception Xquery.Instantiate.Too_many _ ->
          Xshard.query ~stats sh pattern))

let parse_xpath xpath =
  match Xquery.Xpath_parser.parse xpath with
  | p -> Ok p
  | exception Xquery.Xpath_parser.Syntax_error { pos; msg } ->
    Error (Printf.sprintf "%s at position %d in %S" msg pos xpath)

let err code fmt =
  Printf.ksprintf (fun message -> P.Error { code; message }) fmt

(* The deadline is fixed when the frame is admitted; workers re-check it
   when they dequeue the job, so a request that starved in the queue
   answers [Timeout] instead of executing late. *)
let deadline_of t timeout_ms =
  let ms = if timeout_ms > 0 then timeout_ms else t.config.default_timeout_ms in
  if ms > 0 then Some (Unix.gettimeofday () +. (float_of_int ms /. 1000.))
  else None

let expired = function
  | Some d -> Unix.gettimeofday () > d
  | None -> false

(* --- reload ---------------------------------------------------------------- *)

let reload ?path t =
  Mutex.lock t.reload_m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.reload_m)
    (fun () ->
      let source =
        match (path, t.source) with
        | Some p, _ -> Snapshot p
        | None, src -> src
      in
      (* Build the replacement entirely off to the side; only the final
         pointer swap is visible to queries.  [Static] with no path keeps
         serving the resident index (nothing to rebuild from); [Live]
         with no path flushes the memtable and compacts the store in
         place — concurrent queries keep answering throughout, against
         whichever view is installed when they pin it. *)
      let sv =
        match source with
        | Static _ when path = None -> Atomic.get t.serving
        | Live log when path = None ->
          Xlog.flush log;
          ignore (Xlog.compact log : bool);
          serving_of_source t.config source
        | Sharded sh when path = None ->
          Xshard.flush sh;
          ignore (Xshard.compact sh : bool);
          serving_of_source t.config source
        | s -> serving_of_source t.config s
      in
      t.source <- source;
      Atomic.set t.serving sv;
      serving_gen sv)

(* --- stats ----------------------------------------------------------------- *)

let stats_json t =
  let sv = Atomic.get t.serving in
  let hits = Plan_cache.hits t.cache and misses = Plan_cache.misses t.cache in
  let looked = hits + misses in
  let page_reads, page_hits, pool_pages =
    match sv.backend with
    | B_index index ->
      (match Xseq.backing_store index with
       | Some s ->
         ( Xstorage.Store.page_reads s,
           Xstorage.Store.page_hits s,
           Xstorage.Store.pool_capacity s )
       | None -> (0, 0, 0))
    | B_live _ | B_shard _ -> (0, 0, 0)
  in
  let live_extra =
    match sv.backend with
    | B_index _ -> []
    | B_shard sh ->
      (* Per-shard state plus the aggregate, so an operator watching
         Stats sees exactly which shard is degraded or down. *)
      let infos = Xshard.shard_infos sh in
      let shard_json (i : Xshard.shard_info) =
        Printf.sprintf
          "{\"shard\": %d, \"doc_count\": %d, \"pending\": %d, \
           \"segments\": %d, \"tombstones\": %d, \"next_local_id\": %d, \
           \"wal_offset\": %d, \"degraded\": %b, \"degraded_reason\": %S, \
           \"down\": %b, \"down_reason\": %S}"
          i.Xshard.shard i.Xshard.docs i.Xshard.pending i.Xshard.segments
          i.Xshard.tombstones i.Xshard.next_local_id i.Xshard.wal_offset
          (i.Xshard.degraded <> None)
          (Option.value i.Xshard.degraded ~default:"")
          (i.Xshard.down <> None)
          (Option.value i.Xshard.down ~default:"")
      in
      let degraded = Xshard.degraded_shards sh in
      [
        ( "sharded",
          Printf.sprintf
            "{\"shards\": %d, \"doc_count\": %d, \"degraded_shards\": %d, \
             \"down_shards\": %d, \"per_shard\": [%s]}"
            (Xshard.shard_count sh) (Xshard.doc_count sh)
            (List.length degraded)
            (List.length (Xshard.down_shards sh))
            (String.concat ", "
               (Array.to_list (Array.map shard_json infos))) );
      ]
    | B_live log ->
      let degraded, reason =
        match Xlog.degraded_reason log with
        | Some r -> (true, r)
        | None -> (false, "")
      in
      [
        ( "live",
          Printf.sprintf
            "{\"doc_count\": %d, \"pending\": %d, \"segments\": %d, \
             \"tombstones\": %d, \"next_id\": %d, \"wal_offset\": %d, \
             \"degraded\": %b, \"degraded_reason\": %S}"
            (Xlog.doc_count log) (Xlog.pending log) (Xlog.segments log)
            (Xlog.tombstones log) (Xlog.next_id log) (Xlog.wal_offset log)
            degraded reason );
      ]
  in
  let repl_extra =
    match t.repl with
    | None -> []
    | Some r ->
      let h = r.rp_hooks in
      let lag_records, lag_bytes = h.repl_lag () in
      Mutex.lock r.rp_m;
      let nsubs = List.length r.rp_subs
      and nwait = List.length r.rp_waiters in
      Mutex.unlock r.rp_m;
      let d = Xlog.wal_durable_position h.repl_log in
      [
        ( "repl",
          Printf.sprintf
            "{\"role\": %S, \"epoch\": %d, \"durable_file\": %d, \
             \"durable_off\": %d, \"next_id\": %d, \"leader_hint\": %S, \
             \"subscribers\": %d, \"parked_mutations\": %d, \
             \"repl_lag_records\": %d, \"repl_lag_bytes\": %d}"
            (match h.repl_role () with
             | `Primary -> "primary"
             | `Follower -> "follower")
            (h.repl_epoch ()) d.Xlog.Wal.file d.Xlog.Wal.off
            (Xlog.next_id h.repl_log) (h.repl_leader_hint ()) nsubs nwait
            lag_records lag_bytes );
      ]
  in
  let scrub_extra =
    match t.config.scrub with
    | None -> []
    | Some sc ->
      let s = Xlog.Scrub.stats sc in
      [
        ( "scrub",
          Printf.sprintf
            "{\"passes\": %d, \"files\": %d, \"bytes\": %d, \
             \"errors_found\": %d, \"repairs\": %d, \"quarantined\": %b, \
             \"last_error\": %S}"
            s.Xlog.Scrub.passes s.Xlog.Scrub.files s.Xlog.Scrub.bytes
            s.Xlog.Scrub.errors_found s.Xlog.Scrub.repairs
            s.Xlog.Scrub.quarantined s.Xlog.Scrub.last_error );
      ]
  in
  let event_backend =
    if Array.length t.loops > 0 then Ev.backend_name t.loops.(0).l_ev
    else "none"
  in
  Metrics.to_json
    ~extra:
      ([
        ("generation", string_of_int (serving_gen sv));
        ("uptime_s",
         Printf.sprintf "%.1f" (Unix.gettimeofday () -. t.started_at));
        ("pending", string_of_int (pending t));
        ("max_pending", string_of_int t.config.max_pending);
        ("workers", string_of_int t.config.workers);
        ("accept_shards", string_of_int (max 1 t.config.accept_shards));
        ("event_backend", Printf.sprintf "%S" event_backend);
        ( "plan_cache",
          Printf.sprintf
            "{\"capacity\": %d, \"entries\": %d, \"hits\": %d, \"misses\": \
             %d, \"hit_rate\": %.4f}"
            (Plan_cache.capacity t.cache)
            (Plan_cache.length t.cache)
            hits misses
            (if looked = 0 then 0. else float_of_int hits /. float_of_int looked) );
        ( "store",
          Printf.sprintf
            "{\"page_reads\": %d, \"page_hits\": %d, \"pool_pages\": %d}"
            page_reads page_hits pool_pages );
      ]
      @ live_extra @ repl_extra @ scrub_extra)
    t.metrics

(* --- non-query dispatch ---------------------------------------------------- *)

(* The two mutable backends behind one face for the Insert/Delete/Flush
   arms.  [Xshard.Shard_down] maps to the same wire code as [Degraded]:
   from the client's point of view both mean "this write is refused
   until the store heals", and the message names the failed shard. *)
type live_backend = L_log of Xlog.t | L_shard of Xshard.t

let live_store t =
  match (Atomic.get t.serving).backend with
  | B_live log -> Some (L_log log)
  | B_shard sh -> Some (L_shard sh)
  | B_index _ -> None

let live_insert lb doc =
  match lb with L_log log -> Xlog.insert log doc | L_shard sh -> Xshard.insert sh doc

let live_remove lb id =
  match lb with L_log log -> Xlog.remove log id | L_shard sh -> Xshard.remove sh id

let live_flush = function
  | L_log log -> Xlog.flush log
  | L_shard sh -> Xshard.flush sh

let live_generation = function
  | L_log log -> Xlog.generation log
  | L_shard sh -> Xshard.generation sh

let op_name : P.request -> string = function
  | P.Ping -> "ping"
  | P.Query _ -> "query"
  | P.Query_batch _ -> "query_batch"
  | P.Stats -> "stats"
  | P.Reload _ -> "reload"
  | P.Insert _ -> "insert"
  | P.Delete _ -> "delete"
  | P.Flush -> "flush"
  | P.Health -> "health"
  | P.Subscribe _ -> "subscribe"
  | P.Wal_ack _ -> "wal_ack"
  | P.Promote -> "promote"
  | P.Repl_status -> "repl_status"
  | P.Query_bounded _ -> "query_bounded"
  | P.Fetch_snapshot _ -> "fetch_snapshot"
  | P.Unknown _ -> "unknown"

(* [Some hint] when this node is a replication follower: mutations are
   refused with [Not_primary] whose message {e is} the leader endpoint
   hint — the client chases it instead of retrying here. *)
let repl_follower t =
  match t.repl with
  | Some r when r.rp_hooks.repl_role () = `Follower ->
    Some (r.rp_hooks.repl_leader_hint ())
  | _ -> None

(* Everything except queries (which go through admission + the batched
   exec path) and the inline ops.  Runs on a pool worker. *)
let run_op t (req : P.request) : P.response =
  match req with
  | P.Ping -> P.Pong
  | P.Stats -> P.Stats_json (stats_json t)
  | P.Query _ | P.Query_batch _ ->
    (* routed through [dispatch_query], never here *)
    err P.Server_error "internal: query reached run_op"
  | P.Reload path ->
    (match reload ?path t with
     | gen -> P.Reloaded { generation = gen }
     | exception Xlog.Degraded reason ->
       err P.Degraded "store is read-only: %s" reason
     | exception e ->
       err P.Server_error "reload failed: %s" (Printexc.to_string e))
  | P.Insert { xml } ->
    (match repl_follower t with
     | Some hint -> err P.Not_primary "%s" hint
     | None ->
     match live_store t with
     | None -> err P.Bad_request "server is not serving a live store"
     | Some lb ->
       (match Xmlcore.Xml_parser.parse_string xml with
        | doc ->
          (match live_insert lb doc with
           | id -> P.Inserted { id }
           | exception Xlog.Degraded reason ->
             err P.Degraded "store is read-only: %s" reason
           | exception Xshard.Shard_down (i, reason) ->
             err P.Degraded "shard %d is down: %s" i reason
           | exception e ->
             err P.Server_error "insert failed: %s" (Printexc.to_string e))
        | exception Xmlcore.Xml_parser.Parse_error { pos; line; msg } ->
          err P.Bad_request "XML parse error at line %d (byte %d): %s" line
            pos msg))
  | P.Delete { id } ->
    (match repl_follower t with
     | Some hint -> err P.Not_primary "%s" hint
     | None ->
     match live_store t with
     | None -> err P.Bad_request "server is not serving a live store"
     | Some lb ->
       (match live_remove lb id with
        | existed -> P.Deleted { existed }
        | exception Xlog.Degraded reason ->
          err P.Degraded "store is read-only: %s" reason
        | exception Xshard.Shard_down (i, reason) ->
          err P.Degraded "shard %d is down: %s" i reason
        | exception e ->
          err P.Server_error "delete failed: %s" (Printexc.to_string e)))
  | P.Flush ->
    (match repl_follower t with
     | Some hint -> err P.Not_primary "%s" hint
     | None ->
     match live_store t with
     | None -> err P.Bad_request "server is not serving a live store"
     | Some lb ->
       (match live_flush lb with
        | () -> P.Flushed { generation = live_generation lb }
        | exception Xlog.Degraded reason ->
          err P.Degraded "store is read-only: %s" reason
        | exception Xshard.Shard_down (i, reason) ->
          err P.Degraded "shard %d is down: %s" i reason
        | exception e ->
          err P.Server_error "flush failed: %s" (Printexc.to_string e)))
  | P.Health ->
    (let sv = Atomic.get t.serving in
     match sv.backend with
     | B_index index ->
       P.Health_status
         {
           degraded = false;
           reason = "";
           generation = sv.gen;
           doc_count = Xseq.doc_count index;
         }
     | B_live log ->
       (* The health probe doubles as the recovery probe: if the store
          is degraded, test the disk and re-arm the write path when it
          has healed — so operators watching Health see the recovery
          happen without waiting for the next write attempt. *)
       (match Xlog.degraded_reason log with
        | Some _ -> ignore (Xlog.try_recover log : bool)
        | None -> ());
       let degraded, reason =
         match Xlog.degraded_reason log with
         | Some reason -> (true, reason)
         | None -> (false, "")
       in
       P.Health_status
         {
           degraded;
           reason;
           generation = Xlog.generation log;
           doc_count = Xlog.doc_count log;
         }
     | B_shard sh ->
       (* Same probe-on-health contract, per shard: degraded shards
          get a disk probe, down shards a re-open attempt, so watching
          Health heals whatever healed underneath.  The report is
          degraded as soon as any single shard refuses writes — the
          reason names them all. *)
       (match Xshard.degraded_shards sh with
        | [] -> ()
        | _ -> ignore (Xshard.try_recover sh : bool));
       let degraded, reason =
         match Xshard.degraded_shards sh with
         | [] -> (false, "")
         | l ->
           ( true,
             String.concat "; "
               (List.map
                  (fun (i, r) -> Printf.sprintf "shard %d: %s" i r)
                  l) )
       in
       P.Health_status
         {
           degraded;
           reason;
           generation = Xshard.generation sh;
           doc_count = Xshard.doc_count sh;
         })
  | P.Promote ->
    (match t.repl with
     | None -> err P.Unsupported "this server has no replication role"
     | Some r ->
       (match r.rp_hooks.repl_promote () with
        | Ok epoch -> P.Promoted { epoch }
        | Error m -> err P.Server_error "promote failed: %s" m
        | exception e ->
          err P.Server_error "promote failed: %s" (Printexc.to_string e)))
  | P.Repl_status ->
    (match t.repl with
     | None -> err P.Unsupported "this server has no replication role"
     | Some r ->
       let h = r.rp_hooks in
       let lag_records, lag_bytes = h.repl_lag () in
       P.Repl_state
         {
           role = h.repl_role ();
           epoch = h.repl_epoch ();
           durable = Xlog.wal_durable_position h.repl_log;
           next_id = Xlog.next_id h.repl_log;
           leader_hint = h.repl_leader_hint ();
           lag_records;
           lag_bytes;
         })
  | P.Subscribe _ | P.Wal_ack _ | P.Query_bounded _ | P.Fetch_snapshot _ ->
    (* handled inline on the loop thread, never here *)
    err P.Server_error "internal: replication op reached run_op"
  | P.Unknown { op } ->
    err P.Unsupported "request opcode 0x%02x is not supported by this server"
      op

(* Which requests change the store — the ones whose completion (with
   replication on) should wake the loops so subscription pumps ship the
   new records without waiting out a tick. *)
let repl_mutation = function
  | P.Insert _ | P.Delete _ | P.Flush -> true
  | _ -> false

let nudge_loops t = Array.iter (fun l -> Ev.wakeup l.l_ev) t.loops

(* Semi-sync parking decision, made on the worker after the mutation
   applied: force the record to stable storage locally (the position a
   follower acks must exist durably on both sides), then hold the
   response until {!release_waiters} sees enough acks.  A failed sync
   skips parking — the response goes out as-is and the local degrade
   machinery has already flipped the store read-only. *)
let repl_parking t req (resp : P.response) =
  match t.repl with
  | Some r
    when r.rp_hooks.repl_sync_replicas > 0
         && repl_mutation req
         && (match resp with P.Error _ -> false | _ -> true)
         && r.rp_hooks.repl_role () = `Primary -> (
    match Xlog.sync r.rp_hooks.repl_log with
    | () -> Some (r, Xlog.wal_durable_position r.rp_hooks.repl_log)
    | exception _ -> None)
  | _ -> None

let park_waiter r c slot resp ~pos =
  let w =
    {
      w_conn = c;
      w_slot = slot;
      w_resp = resp;
      w_pos = pos;
      w_deadline =
        Unix.gettimeofday ()
        +. (float_of_int (max 1 r.rp_hooks.repl_ack_timeout_ms) /. 1000.);
    }
  in
  Mutex.lock r.rp_m;
  r.rp_waiters <- w :: r.rp_waiters;
  Mutex.unlock r.rp_m

(* --- connection state machine ---------------------------------------------- *)

let tick_ms = 250 (* loop wait bound so the stop flag is noticed promptly *)

(* Write-side backpressure high-water mark.  A connection whose unsent
   output exceeds this stops reading — the pipeline cap alone is not
   enough, because a slot is popped the moment its response is encoded,
   so a peer pipelining small queries with large results while never
   draining its socket would otherwise regrow the slot budget forever
   and pin unbounded memory.  Reading resumes once the kernel has
   accepted enough bytes to fall back under the mark.  Worst case a
   connection holds the mark plus the responses of slots already open
   when it tripped: bounded, and only a peer ignoring its own replies
   ever gets near it. *)
let outq_hwm = 1 lsl 20

(* Snapshot-transfer chunk size: a few chunks fit under [outq_hwm], so
   the stream refills in kernel-drain-sized steps without ever parking
   more than the mark. *)
let xfer_chunk = 256 * 1024

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let close_conn t c =
  if not c.c_closed then begin
    c.c_closed <- true;
    (match (c.c_sub, t.repl) with
     | Some sub, Some r ->
       (* Dead subscriber: stop pinning its WAL files and drop its ack
          from the semi-sync floor (parked mutations now waiting on a
          replica that no longer exists time out). *)
       c.c_sub <- None;
       Mutex.lock r.rp_m;
       r.rp_subs <- List.filter (fun s -> s != sub) r.rp_subs;
       Mutex.unlock r.rp_m
     | _ -> ());
    (match c.c_xfer with
     | Some xf ->
       c.c_xfer <- None;
       (match t.repl with
        | Some r ->
          Mutex.lock r.rp_m;
          r.rp_xfers <- List.filter (fun x -> x != xf) r.rp_xfers;
          Mutex.unlock r.rp_m
        | None -> ())
     | None -> ());
    Ev.remove c.c_loop.l_ev c.c_fd;
    Hashtbl.remove c.c_loop.l_conns c.c_fd;
    close_quietly c.c_fd;
    (* Workers still owing completions for this connection post into the
       loop as usual; the flush path sees [c_closed] and drops them.
       Their admission permits were released by the worker already. *)
    Metrics.connection_closed t.metrics
  end

(* Keeps the kernel's interest set in sync with the state machine; only
   issues the syscall when the bits actually changed.  The cached bits
   are updated only after the syscall succeeds: caching an interest the
   kernel never registered would strand the connection (no events ever
   fire, nothing closes it), so a failed modify closes it instead. *)
let update_interest t c =
  if not c.c_closed then begin
    let read = not c.c_paused && not c.c_close_after_flush in
    let write = not (Queue.is_empty c.c_outq) in
    if read <> c.c_want_read || write <> c.c_want_write then
      match Ev.modify c.c_loop.l_ev c.c_fd ~read ~write with
      | () ->
        c.c_want_read <- read;
        c.c_want_write <- write
      | exception Unix.Unix_error _ -> close_conn t c
  end

(* Vectored write of whatever is queued.  Under an active fault
   injector the batched writev is bypassed — each slice goes through
   the {!Xfault.Io} shim one at a time, so schedules targeting [Send]
   still see every server-side socket write. *)
let send_parts fd (parts : (string * int * int) array) =
  match Xfault.active () with
  | None ->
    Ev.writev fd
      (Array.map (fun (s, off, len) -> (Bytes.unsafe_of_string s, off, len))
         parts)
  | Some _ ->
    let s, off, len = parts.(0) in
    Xfault.Io.send_substring fd s off len

let collect_parts c =
  let parts = ref [] and n = ref 0 in
  (try
     Queue.iter
       (fun s ->
         if !n >= Ev.iov_max then raise Exit;
         let off = if !n = 0 then c.c_out_off else 0 in
         parts := (s, off, String.length s - off) :: !parts;
         incr n)
       c.c_outq
   with Exit -> ());
  Array.of_list (List.rev !parts)

let advance_outq c n =
  c.c_outq_bytes <- c.c_outq_bytes - n;
  let left = ref n in
  while !left > 0 do
    let head = Queue.peek c.c_outq in
    let avail = String.length head - c.c_out_off in
    if !left >= avail then begin
      ignore (Queue.pop c.c_outq : string);
      c.c_out_off <- 0;
      left := !left - avail
    end
    else begin
      c.c_out_off <- c.c_out_off + !left;
      left := 0
    end
  done

(* Writes as much of the output queue as the kernel takes right now;
   a short write leaves the rest for the next write-readiness event.
   Mutually recursive with the read side: a write that drains the
   output queue under the backpressure mark resumes reading. *)
let rec try_write t c =
  if not c.c_closed then begin
    let rec go () =
      if Queue.is_empty c.c_outq then begin
        if c.c_close_after_flush && Queue.is_empty c.c_slots then
          close_conn t c
      end
      else begin
        let parts = collect_parts c in
        let want = Array.fold_left (fun a (_, _, l) -> a + l) 0 parts in
        match send_parts c.c_fd parts with
        | n ->
          advance_outq c n;
          if n >= want then go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error _ -> close_conn t c
      end
    in
    go ();
    (* A live snapshot transfer refills the output queue as the kernel
       drains it: produce strictly behind the backpressure mark, write,
       repeat until the mark is hit or the stream ends. *)
    let continue = ref (c.c_xfer <> None) in
    while
      !continue && (not c.c_closed) && c.c_outq_bytes <= outq_hwm
      && c.c_xfer <> None
    do
      if fill_xfer t c then go () else continue := false
    done;
    maybe_resume t c;
    update_interest t c
  end

(* In-order response delivery: flush slots from the head of the queue
   for as long as their responses have arrived.  A later request that
   finished early sits behind the head — pipelining stays transparent.
   Encoded slices go to the output queue; the caller decides when to
   hit the socket ([try_write]), so a burst of completions becomes one
   writev. *)
and flush_ready t c =
  if not c.c_closed then begin
    let continue = ref true in
    while
      !continue
      && (not (Queue.is_empty c.c_slots))
      && Atomic.get (Queue.peek c.c_slots).sl_resp <> None
    do
      let slot = Queue.pop c.c_slots in
      match Atomic.get slot.sl_resp with
      | None -> continue := false (* unreachable: checked above *)
      | Some resp ->
        if slot.sl_op <> "" then
          Metrics.record_request t.metrics ~op:slot.sl_op
            ~latency_s:(Unix.gettimeofday () -. slot.sl_t0);
        (* A response too large to frame (a query matching ~2M+ ids
           overflows [P.max_payload]) must not strand the client or
           leak past this slot: substitute a Server_error response the
           peer can actually receive.  The slot is already popped, so
           in-order delivery is preserved for everything behind it. *)
        let resp, parts =
          match P.encode_response_iov resp with
          | parts -> (resp, parts)
          | exception Invalid_argument _ ->
            let resp =
              err P.Server_error
                "result exceeds the %d byte response payload cap"
                P.max_payload
            in
            (resp, P.encode_response_iov resp)
        in
        (match resp with
         | P.Error { code; _ } ->
           Metrics.record_error t.metrics ~code:(P.error_code_to_string code)
         | _ -> ());
        Metrics.add_bytes t.metrics ~received:0
          ~sent:(List.fold_left (fun a s -> a + String.length s) 0 parts);
        List.iter
          (fun s ->
            c.c_outq_bytes <- c.c_outq_bytes + String.length s;
            Queue.push s c.c_outq)
          parts
    done;
    (* The pipeline cap may have cleared: resume reading (frames may
       already be buffered in the decoder). *)
    maybe_resume t c
  end

(* Resume reading iff every pause reason has cleared: pipeline slots
   below the cap AND queued output back under the backpressure mark
   (and the loop is not draining).  Called from both the completion
   path (slots freed) and the write path (bytes drained). *)
and maybe_resume t c =
  if
    c.c_paused
    && (not c.c_loop.l_draining)
    && Queue.length c.c_slots < t.config.max_pipeline
    && c.c_outq_bytes <= outq_hwm
  then begin
    c.c_paused <- false;
    drain_frames t c
  end

and complete t c slot resp =
  Atomic.set slot.sl_resp (Some resp);
  flush_ready t c

(* Pull complete frames out of the decoder and open a slot for each.
   Stops at the pipeline cap or the output high-water mark (reading
   resumes as responses flush and the peer drains them) and on corrupt
   input (answer one error frame, then close once it has been written —
   the stream cannot be resynchronised). *)
and drain_frames t c =
  let rec go () =
    if c.c_closed || c.c_close_after_flush then ()
    else if
      Queue.length c.c_slots >= t.config.max_pipeline
      || c.c_outq_bytes > outq_hwm
    then c.c_paused <- true
    else
      match P.Decoder.next c.c_dec with
      | P.Decoder.Need_more -> ()
      | P.Decoder.Corrupt msg ->
        let slot =
          { sl_op = ""; sl_t0 = Unix.gettimeofday ();
            sl_resp = Atomic.make None }
        in
        Queue.push slot c.c_slots;
        c.c_close_after_flush <- true;
        complete t c slot (err P.Bad_request "bad frame: %s" msg)
      | P.Decoder.Frame frame ->
        Metrics.add_bytes t.metrics ~received:(String.length frame) ~sent:0;
        handle_frame t c frame;
        go ()
  in
  go ()

and handle_frame t c frame =
  let new_slot op =
    let s =
      { sl_op = op; sl_t0 = Unix.gettimeofday (); sl_resp = Atomic.make None }
    in
    Queue.push s c.c_slots;
    s
  in
  match P.decode_request frame with
  | Error msg ->
    (* A well-framed payload that does not decode: answer and drop the
       connection, exactly like the blocking server did. *)
    let slot = new_slot "" in
    c.c_close_after_flush <- true;
    complete t c slot (err P.Bad_request "bad frame: %s" msg)
  | Ok req -> (
    match req with
    | P.Ping -> complete t c (new_slot "ping") P.Pong
    | P.Stats -> complete t c (new_slot "stats") (P.Stats_json (stats_json t))
    | P.Unknown { op } ->
      complete t c (new_slot "unknown")
        (err P.Unsupported
           "request opcode 0x%02x is not supported by this server" op)
    | P.Query { xpath; timeout_ms } ->
      dispatch_query t c ~timeout_ms ~batch:false [| xpath |]
    | P.Query_batch { xpaths; timeout_ms } ->
      dispatch_query t c ~timeout_ms ~batch:true xpaths
    | P.Subscribe { epoch; pos } -> handle_subscribe t c ~epoch ~pos
    | P.Wal_ack { pos } -> handle_wal_ack t c pos
    | P.Fetch_snapshot { token; cursor } ->
      handle_fetch_snapshot t c ~token ~cursor
    | P.Query_bounded { xpath; timeout_ms; min_gen } -> (
      (* The staleness guard runs on the loop thread — it is one atomic
         id-watermark read; only queries that pass pay admission. *)
      match t.repl with
      | None ->
        complete t c (new_slot "query_bounded")
          (err P.Unsupported
             "this server has no replication role (bounded-staleness \
              reads need one)")
      | Some r ->
        if Xlog.next_id r.rp_hooks.repl_log < min_gen then
          complete t c (new_slot "query_bounded")
            (err P.Not_primary "%s" (r.rp_hooks.repl_leader_hint ()))
        else dispatch_query t c ~timeout_ms ~batch:false [| xpath |])
    | P.Reload _ | P.Insert _ | P.Delete _ | P.Flush | P.Health
    | P.Promote | P.Repl_status ->
      (* Mutations, reloads and health probes do real disk work; they
         run on a worker so the loop never blocks.  Pipelined requests
         behind them may execute concurrently — responses still flush
         in order. *)
      let slot = new_slot (op_name req) in
      Pool.async t.pool (fun () ->
          let resp =
            try run_op t req
            with e -> err P.Server_error "%s" (Printexc.to_string e)
          in
          match repl_parking t req resp with
          | Some (r, pos) ->
            park_waiter r c slot resp ~pos;
            (* Wake the loops twice over: pumps ship the new record to
               subscribers now, and their acks release the parked
               response. *)
            nudge_loops t
          | None ->
            post t c slot resp;
            if t.repl <> None && repl_mutation req then nudge_loops t))

and dispatch_query t c ~timeout_ms ~batch xpaths =
  let op = if batch then "query_batch" else "query" in
  let slot =
    { sl_op = op; sl_t0 = Unix.gettimeofday (); sl_resp = Atomic.make None }
  in
  Queue.push slot c.c_slots;
  (* Parse before admission: a malformed query is a [Bad_request], not
     load. *)
  let patterns = Array.map parse_xpath xpaths in
  match
    Array.find_map (function Error m -> Some m | Ok _ -> None) patterns
  with
  | Some m -> complete t c slot (err P.Bad_request "%s" m)
  | None ->
    let patterns =
      Array.map (function Ok p -> p | Error _ -> assert false) patterns
    in
    if not (try_admit t) then
      complete t c slot
        (err P.Overloaded "server at capacity (%d requests in flight)"
           t.config.max_pending)
    else begin
      let deadline = deadline_of t timeout_ms in
      c.c_loop.l_exec <-
        { x_conn = c; x_slot = slot; x_patterns = patterns; x_batch = batch;
          x_deadline = deadline }
        :: c.c_loop.l_exec
    end

(* Worker side: fill the slot, post the completion, wake the loop. *)
and post t c slot resp =
  ignore t;
  Atomic.set slot.sl_resp (Some resp);
  let l = c.c_loop in
  Mutex.lock l.l_m;
  l.l_compl <- c :: l.l_compl;
  Mutex.unlock l.l_m;
  Ev.wakeup l.l_ev

(* --- replication: subscription pump + semi-sync ---------------------------- *)

(* Encode a pushed (slot-less) frame straight onto the output queue.
   Same oversize fallback as {!flush_ready}; the caller decides when to
   hit the socket. *)
and push_response t c resp =
  let parts =
    match P.encode_response_iov resp with
    | parts -> parts
    | exception Invalid_argument _ ->
      P.encode_response_iov
        (err P.Server_error "result exceeds the %d byte response payload cap"
           P.max_payload)
  in
  Metrics.add_bytes t.metrics ~received:0
    ~sent:(List.fold_left (fun a s -> a + String.length s) 0 parts);
  List.iter
    (fun s ->
      c.c_outq_bytes <- c.c_outq_bytes + String.length s;
      Queue.push s c.c_outq)
    parts

and drop_sub r sub =
  sub.s_conn.c_sub <- None;
  Mutex.lock r.rp_m;
  r.rp_subs <- List.filter (fun s -> s != sub) r.rp_subs;
  Mutex.unlock r.rp_m

(* --- snapshot transfer (sender side) ---------------------------------- *)

and unpin_xfer t xf =
  match t.repl with
  | Some r ->
    Mutex.lock r.rp_m;
    r.rp_xfers <- List.filter (fun x -> x != xf) r.rp_xfers;
    Mutex.unlock r.rp_m
  | None -> ()

(* Enqueue stream chunks up to the backpressure mark.  No socket calls
   here — the caller ([try_write]) owns the write side.  [true] iff
   anything was enqueued. *)
and fill_xfer t c =
  match c.c_xfer with
  | None -> false
  | Some xf ->
    let m = xf.xf_manifest in
    let filled = ref false in
    let continue = ref true in
    while !continue && (not c.c_closed) && c.c_outq_bytes <= outq_hwm do
      let len = min xfer_chunk (m.Xlog.Transfer.x_total - xf.xf_offset) in
      match Xlog.Transfer.read_slice xf.xf_dir m ~off:xf.xf_offset ~len with
      | Error msg ->
        (* The files moved under the manifest (a compaction pruned the
           WAL prefix mid-stream): fail this transfer; the fetcher
           re-requests and restarts under a fresh token. *)
        push_response t c (err P.Server_error "snapshot transfer: %s" msg);
        c.c_xfer <- None;
        unpin_xfer t xf;
        filled := true;
        continue := false
      | Ok data ->
        let dlen = String.length data in
        let last = xf.xf_offset + dlen >= m.Xlog.Transfer.x_total in
        push_response t c
          (P.Snapshot_chunk
             {
               token = m.Xlog.Transfer.x_token;
               total = m.Xlog.Transfer.x_total;
               offset = xf.xf_offset;
               last;
               crc = Xstorage.Store.checksum_string data 0 dlen;
               data;
             });
        xf.xf_offset <- xf.xf_offset + dlen;
        filled := true;
        if last then begin
          c.c_xfer <- None;
          unpin_xfer t xf;
          continue := false
        end
    done;
    !filled

and handle_fetch_snapshot t c ~token ~cursor =
  let answer resp =
    let s =
      { sl_op = "fetch_snapshot"; sl_t0 = Unix.gettimeofday ();
        sl_resp = Atomic.make None }
    in
    Queue.push s c.c_slots;
    complete t c s resp
  in
  if c.c_sub <> None then
    answer (err P.Bad_request "connection is subscribed to the WAL stream")
  else
    match (Atomic.get t.serving).backend with
    | B_index _ | B_shard _ ->
      answer
        (err P.Unsupported "snapshot transfer requires serving a live store")
    | B_live log -> (
      (* A re-request supersedes any transfer already streaming on this
         connection — the resume/restart decision is the client's. *)
      (match c.c_xfer with
       | Some xf ->
         c.c_xfer <- None;
         unpin_xfer t xf
       | None -> ());
      let dir = Xlog.dir log in
      match Xlog.Transfer.manifest_of_dir dir with
      | Error m -> answer (err P.Server_error "snapshot transfer: %s" m)
      | Ok man ->
        (* Resume only when the fetcher holds the current snapshot's
           token and a sane cursor; anything else restarts at 0 under
           the (possibly new) token. *)
        let offset =
          if
            String.equal token man.Xlog.Transfer.x_token
            && cursor >= 0
            && cursor <= man.Xlog.Transfer.x_total
          then cursor
          else 0
        in
        let xf = { xf_dir = dir; xf_manifest = man; xf_offset = offset } in
        c.c_xfer <- Some xf;
        (match t.repl with
         | Some r ->
           Mutex.lock r.rp_m;
           r.rp_xfers <- xf :: r.rp_xfers;
           Mutex.unlock r.rp_m
         | None -> ());
        try_write t c)

and handle_subscribe t c ~epoch ~pos =
  let slot op =
    let s =
      { sl_op = op; sl_t0 = Unix.gettimeofday (); sl_resp = Atomic.make None }
    in
    Queue.push s c.c_slots;
    s
  in
  match t.repl with
  | None ->
    complete t c (slot "subscribe")
      (err P.Unsupported "this server has no replication role")
  | Some r ->
    let h = r.rp_hooks in
    (* Fencing, server side: a subscriber that has seen a higher epoch
       proves this primary was deposed while it was away — step down
       before deciding the role answer below. *)
    h.repl_observe_epoch epoch;
    if h.repl_role () <> `Primary then
      complete t c (slot "subscribe")
        (err P.Not_primary "%s" (h.repl_leader_hint ()))
    else if c.c_sub <> None then
      complete t c (slot "subscribe")
        (err P.Bad_request "connection is already subscribed")
    else begin
      let sub =
        { s_conn = c; s_cursor = pos; s_acked = pos; s_last_send = 0. }
      in
      c.c_sub <- Some sub;
      Mutex.lock r.rp_m;
      r.rp_subs <- sub :: r.rp_subs;
      Mutex.unlock r.rp_m;
      (* One immediate heartbeat — the subscriber learns the primary's
         epoch and durable end before the first batch — then whatever
         the log already holds past its cursor. *)
      push_response t c
        (P.Repl_heartbeat
           {
             epoch = h.repl_epoch ();
             durable = Xlog.wal_durable_position h.repl_log;
             next_id = Xlog.next_id h.repl_log;
           });
      sub.s_last_send <- Unix.gettimeofday ();
      pump_sub t r sub
    end

(* The subscriber durably applied the stream up to [pos]: one-way, no
   response slot.  On a connection that never subscribed the frame is
   meaningless and dropped (a build with no replication at all answers
   [Unsupported] instead, so a misdirected client is not silently
   ignored). *)
and handle_wal_ack t c pos =
  match (t.repl, c.c_sub) with
  | None, _ ->
    let s =
      { sl_op = "wal_ack"; sl_t0 = Unix.gettimeofday ();
        sl_resp = Atomic.make None }
    in
    Queue.push s c.c_slots;
    complete t c s (err P.Unsupported "this server has no replication role")
  | Some r, Some sub ->
    if Xlog.Wal.position_compare pos sub.s_acked > 0 then sub.s_acked <- pos;
    release_waiters t r
  | Some _, None -> ()

(* Ship everything committed past the cursor, bounded by the write-side
   backpressure mark: a slow subscriber pins at most the high-water mark
   of encoded batches, and the pump resumes from its cursor once the
   kernel drains them.  Runs on the connection's owning loop only. *)
and pump_sub t r sub =
  let c = sub.s_conn in
  let still_current () =
    match c.c_sub with Some s -> s == sub | None -> false
  in
  if (not c.c_closed) && still_current () then begin
    let h = r.rp_hooks in
    if h.repl_role () <> `Primary then begin
      (* Deposed mid-stream: the subscriber must chase the new leader. *)
      push_response t c (err P.Not_primary "%s" (h.repl_leader_hint ()));
      drop_sub r sub;
      c.c_close_after_flush <- true;
      try_write t c
    end
    else begin
      let dir = Xlog.dir h.repl_log in
      let continue = ref true in
      let sent = ref false in
      while !continue && (not c.c_closed) && c.c_outq_bytes <= outq_hwm do
        match Xlog.Wal.tail ~dir sub.s_cursor with
        | Ok b ->
          if
            b.Xlog.Wal.b_count > 0
            || Xlog.Wal.position_compare b.Xlog.Wal.b_next sub.s_cursor <> 0
          then begin
            (* A zero-record batch that still advances mirrors a file
               rotation — the follower must replay it as one. *)
            push_response t c
              (P.Wal_batch
                 {
                   epoch = h.repl_epoch ();
                   from = sub.s_cursor;
                   next = b.Xlog.Wal.b_next;
                   count = b.Xlog.Wal.b_count;
                   records = b.Xlog.Wal.b_records;
                 });
            sub.s_cursor <- b.Xlog.Wal.b_next;
            sent := true
          end
          else continue := false
        | Error (Xlog.Wal.Position_pruned { earliest }) ->
          push_response t c
            (err P.Pruned
               "wal pruned past the subscription; earliest retained \
                position is %s"
               (Xlog.Wal.position_to_string earliest));
          drop_sub r sub;
          c.c_close_after_flush <- true;
          continue := false
        | Error (Xlog.Wal.Tail_error m) ->
          push_response t c (err P.Server_error "wal tail: %s" m);
          drop_sub r sub;
          c.c_close_after_flush <- true;
          continue := false
      done;
      let now = Unix.gettimeofday () in
      if !sent then sub.s_last_send <- now
      else if
        (not c.c_closed) && still_current () && now -. sub.s_last_send > 1.0
      then begin
        (* Idle heartbeat: lets the follower tell a quiet primary from a
           dead one, and keeps its staleness watermark fresh. *)
        push_response t c
          (P.Repl_heartbeat
             {
               epoch = h.repl_epoch ();
               durable = Xlog.wal_durable_position h.repl_log;
               next_id = Xlog.next_id h.repl_log;
             });
        sub.s_last_send <- now
      end;
      try_write t c
    end
  end

(* Release parked mutations: the semi-sync floor is the k-th highest
   subscriber ack (k = [repl_sync_replicas]); everything at or under it
   is replicated widely enough to acknowledge.  Expired waiters answer
   [Timeout] — the write applied locally but the replicas are silent,
   the same indeterminate verdict as any timeout. *)
and release_waiters t r =
  let now = Unix.gettimeofday () in
  Mutex.lock r.rp_m;
  let k = r.rp_hooks.repl_sync_replicas in
  let floor =
    let acks =
      List.sort
        (fun a b -> Xlog.Wal.position_compare b a)
        (List.map (fun s -> s.s_acked) r.rp_subs)
    in
    if k > 0 && List.length acks >= k then Some (List.nth acks (k - 1))
    else None
  in
  let ready, expired, keep =
    List.fold_left
      (fun (rd, ex, kp) w ->
        match floor with
        | Some f when Xlog.Wal.position_compare w.w_pos f <= 0 ->
          (w :: rd, ex, kp)
        | _ ->
          if now > w.w_deadline then (rd, w :: ex, kp) else (rd, ex, w :: kp))
      ([], [], []) r.rp_waiters
  in
  r.rp_waiters <- List.rev keep;
  Mutex.unlock r.rp_m;
  List.iter (fun w -> post t w.w_conn w.w_slot w.w_resp) ready;
  List.iter
    (fun w ->
      post t w.w_conn w.w_slot
        (err P.Timeout
           "replicated to fewer than %d replica(s) within %dms (the write \
            is applied locally; its replication is indeterminate)"
           r.rp_hooks.repl_sync_replicas r.rp_hooks.repl_ack_timeout_ms))
    expired

(* Per-tick replication work for one loop: pump the subscriptions this
   loop owns (connection state is loop-affine), and sweep the semi-sync
   waiters for expiry — acks release them promptly from the ack path;
   the tick only bounds how late a timeout verdict can be. *)
let repl_tick t l =
  match t.repl with
  | None -> ()
  | Some r ->
    Mutex.lock r.rp_m;
    let subs = List.filter (fun s -> s.s_conn.c_loop == l) r.rp_subs in
    let have_waiters = r.rp_waiters <> [] in
    Mutex.unlock r.rp_m;
    List.iter (fun sub -> pump_sub t r sub) subs;
    if have_waiters then release_waiters t r

(* Executes one chunk of admitted queries.  Per-response costs are
   amortised over the chunk: matcher stats merge once, admission
   permits release once, and completions post with one mutex round and
   one wakeup per loop — not one per query (a pipelined burst would
   otherwise pay an eventfd write per response). *)
let run_exec t items =
  let stats = Xquery.Matcher.create_stats () in
  List.iter
    (fun x ->
      let resp =
        try
          if t.config.debug_delay_ms > 0 then
            Thread.delay (float_of_int t.config.debug_delay_ms /. 1000.);
          if expired x.x_deadline then
            err P.Timeout "deadline expired before execution"
          else begin
            let sv = Atomic.get t.serving in
            let ids = Array.map (answer_pattern t sv stats) x.x_patterns in
            let generation = serving_gen sv in
            if x.x_batch then P.Batch_result { generation; ids }
            else P.Result { generation; ids = ids.(0) }
          end
        with e -> err P.Server_error "%s" (Printexc.to_string e)
      in
      Atomic.set x.x_slot.sl_resp (Some resp))
    items;
  Metrics.merge_matcher t.metrics stats;
  Mutex.lock t.adm_m;
  t.in_flight <- t.in_flight - List.length items;
  Mutex.unlock t.adm_m;
  let rec post_all = function
    | [] -> ()
    | x :: _ as l ->
      let loop = x.x_conn.c_loop in
      let mine, others =
        List.partition (fun y -> y.x_conn.c_loop == loop) l
      in
      Mutex.lock loop.l_m;
      List.iter (fun y -> loop.l_compl <- y.x_conn :: loop.l_compl) mine;
      Mutex.unlock loop.l_m;
      Ev.wakeup loop.l_ev;
      post_all others
  in
  post_all items

(* Ship this tick's admitted queries to the pool in a few chunks:
   enough jobs to spread over the worker domains, big enough that a
   pipelined burst does not pay one handoff per frame. *)
let submit_exec t l =
  match l.l_exec with
  | [] -> ()
  | items ->
    l.l_exec <- [];
    let items = List.rev items in
    let n = List.length items in
    let chunk_size =
      max 1 (min 32 ((n + t.config.workers - 1) / t.config.workers))
    in
    let rec ship = function
      | [] -> ()
      | rest ->
        let chunk = List.filteri (fun i _ -> i < chunk_size) rest in
        let rest' = List.filteri (fun i _ -> i >= chunk_size) rest in
        Pool.async t.pool (fun () -> run_exec t chunk);
        ship rest'
    in
    ship items

let drain_completions t l =
  Mutex.lock l.l_m;
  let compl = l.l_compl in
  l.l_compl <- [];
  Mutex.unlock l.l_m;
  (* Reverse for FIFO fairness; flush_ready is idempotent, so a
     connection posted twice just flushes once and no-ops after. *)
  List.iter
    (fun c -> if not c.c_closed then (flush_ready t c; try_write t c))
    (List.rev compl)

let conn_read t c =
  let scratch = c.c_loop.l_scratch in
  let cap = Bytes.length scratch in
  let rec go budget =
    if budget > 0 then
      match Xfault.Io.recv c.c_fd scratch 0 cap with
      | 0 -> close_conn t c
      | n ->
        P.Decoder.feed c.c_dec scratch 0 n;
        drain_frames t c;
        if
          (not c.c_closed) && (not c.c_paused)
          && (not c.c_close_after_flush)
          && n = cap
        then go (budget - 1)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go budget
      | exception Unix.Unix_error _ -> close_conn t c
      | exception _ -> close_conn t c
  in
  go 4;
  (* One socket write for everything this readiness produced: inline
     completions and any worker responses that flushed meanwhile. *)
  if not c.c_closed then try_write t c

(* --- accept / event loops -------------------------------------------------- *)

let accept_burst t l lfd =
  let continue = ref true in
  while !continue do
    match Unix.accept ~cloexec:true lfd with
    | fd, _ ->
      Unix.set_nonblock fd;
      (* No-op (EOPNOTSUPP) on Unix-domain sockets. *)
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ | Invalid_argument _ -> ());
      let c =
        {
          c_fd = fd;
          c_dec = P.Decoder.create ();
          c_slots = Queue.create ();
          c_outq = Queue.create ();
          c_out_off = 0;
          c_outq_bytes = 0;
          c_paused = false;
          c_want_read = true;
          c_want_write = false;
          c_closed = false;
          c_close_after_flush = false;
          c_sub = None;
          c_xfer = None;
          c_loop = l;
        }
      in
      (match Ev.add l.l_ev fd ~read:true ~write:false with
       | () ->
         Hashtbl.replace l.l_conns fd c;
         Metrics.connection_opened t.metrics
       | exception Unix.Unix_error _ -> close_quietly fd)
    | exception
        Unix.Unix_error
          ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED | Unix.EINTR),
           _, _) ->
      (* EAGAIN includes losing the race for a shared listener to a
         sibling loop — both are "nothing to accept right now". *)
      continue := false
    | exception Unix.Unix_error _ -> continue := false
  done

(* Answer everything already owed — decoded requests and queued output
   — bounded by [drain_timeout_s], then close what is left. *)
let loop_drain t l =
  l.l_draining <- true;
  Hashtbl.iter
    (fun _ c ->
      if not c.c_closed then begin
        c.c_paused <- true;
        update_interest t c
      end)
    l.l_conns;
  List.iter (fun fd -> Ev.remove l.l_ev fd) l.l_listeners;
  submit_exec t l;
  let owed () =
    Hashtbl.fold
      (fun _ c acc ->
        acc || not (Queue.is_empty c.c_slots && Queue.is_empty c.c_outq))
      l.l_conns false
  in
  let deadline = Unix.gettimeofday () +. t.config.drain_timeout_s in
  while owed () && Unix.gettimeofday () < deadline do
    let evs = Ev.wait l.l_ev ~timeout_ms:50 in
    drain_completions t l;
    List.iter
      (fun (ev : Ev.event) ->
        match Hashtbl.find_opt l.l_conns ev.Ev.fd with
        | Some c when (not c.c_closed) && ev.Ev.writable -> try_write t c
        | _ -> ())
      evs
  done;
  let conns = Hashtbl.fold (fun _ c acc -> c :: acc) l.l_conns [] in
  List.iter (fun c -> close_conn t c) conns

let loop_run t l =
  while not (Atomic.get t.stop_requested) do
    (try
       let evs = Ev.wait l.l_ev ~timeout_ms:tick_ms in
       drain_completions t l;
       List.iter
         (fun (ev : Ev.event) ->
           if List.mem ev.Ev.fd l.l_listeners then begin
             if ev.Ev.readable then accept_burst t l ev.Ev.fd
           end
           else
             match Hashtbl.find_opt l.l_conns ev.Ev.fd with
             | None -> ()
             | Some c ->
               if ev.Ev.writable && not c.c_closed then try_write t c;
               if ev.Ev.readable && not c.c_closed then conn_read t c)
         evs;
       submit_exec t l;
       repl_tick t l
     with e ->
       (* A loop must never die under a connection: drop the tick and
          carry on (individual connection errors close only that
          connection; anything else reaching here is a bug we survive). *)
       ignore e)
  done;
  loop_drain t l

(* --- lifecycle ------------------------------------------------------------- *)

let bind_tcp ~reuseport host port =
  let inet =
    try Unix.inet_addr_of_string host
    with Failure _ ->
      (try (Unix.gethostbyname host).Unix.h_addr_list.(0)
       with Not_found -> Unix.inet_addr_loopback)
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     if reuseport then Unix.setsockopt fd Unix.SO_REUSEPORT true;
     Unix.bind fd (Unix.ADDR_INET (inet, port));
     Unix.listen fd 128;
     Unix.set_nonblock fd
   with e ->
     close_quietly fd;
     raise e);
  fd

let bind_unix path =
  (* A previous unclean shutdown may have left the socket file; binding
     over it is the operator-friendly behaviour. *)
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd 128;
     Unix.set_nonblock fd
   with e ->
     close_quietly fd;
     raise e);
  fd

let request_stop t =
  Atomic.set t.stop_requested true;
  (* Nudge every loop out of its wait; safe from a signal handler. *)
  Array.iter (fun l -> Ev.wakeup l.l_ev) t.loops

let coordinator_run t loop_threads =
  while not (Atomic.get t.stop_requested) do
    Thread.delay 0.05
  done;
  Array.iter (fun l -> Ev.wakeup l.l_ev) t.loops;
  List.iter (fun th -> try Thread.join th with _ -> ()) loop_threads;
  (* Loops are gone: stop accepting, remove Unix socket files so a
     clean shutdown leaves nothing behind. *)
  List.iter (fun (fd, _) -> close_quietly fd) t.listeners;
  List.iter
    (fun (_, addr) ->
      match addr with
      | Unix_sock path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
      | Tcp _ -> ())
    t.listeners;
  (* Let in-pool work finish and join the worker domains; workers may
     still post completions until here, so the loops' event fds close
     only after the pool is down. *)
  Pool.shutdown t.pool;
  Array.iter (fun l -> Ev.close l.l_ev) t.loops;
  Mutex.lock t.state_m;
  t.stopped <- true;
  Condition.broadcast t.state_cv;
  Mutex.unlock t.state_m

let start t addrs =
  if addrs = [] then invalid_arg "Server.start: no addresses";
  (* A peer that vanishes mid-response must surface as EPIPE on the
     write, not kill the process.  Idempotent; no-op off Unix. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (* SIGTERM and SIGINT trigger the same orderly shutdown as
     {!request_stop}: drain, close listeners, unlink Unix socket files —
     an operator's Ctrl-C must not leave stale socket files behind.
     [request_stop] is async-signal-safe (an atomic store + one eventfd
     write). *)
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> request_stop t))
   with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> request_stop t))
   with Invalid_argument _ -> ());
  Mutex.lock t.state_m;
  if t.started then begin
    Mutex.unlock t.state_m;
    invalid_arg "Server.start: already started"
  end;
  t.started <- true;
  Mutex.unlock t.state_m;
  let shards = max 1 t.config.accept_shards in
  (* Unix-domain listeners are shared: one socket registered in every
     loop's readiness set (the kernel wakes whichever loops it likes;
     losers see EAGAIN).  TCP listeners shard with SO_REUSEPORT — one
     socket per loop, kernel-hashed flow steering, no thundering herd —
     falling back to a shared socket where the option is refused. *)
  let shared = ref [] in
  let dedicated = Array.make shards [] in
  let record = ref [] in
  let evs = ref [] in
  (* A bind or loop-setup failure partway through (say the port taken
     between two SO_REUSEPORT binds, or an fd limit hit creating the
     i-th epoll) must not leak the listeners already bound or leave
     [t.started] stuck: release everything acquired so far and return
     the server to its never-started state before re-raising, so the
     caller sees one exception and a still-usable object. *)
  let abort_start e =
    List.iter Ev.close !evs;
    List.iter
      (fun (fd, addr) ->
        close_quietly fd;
        match addr with
        | Unix_sock path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
        | Tcp _ -> ())
      !record;
    t.listeners <- [];
    t.loops <- [||];
    Mutex.lock t.state_m;
    t.started <- false;
    Mutex.unlock t.state_m;
    raise e
  in
  (try
     List.iter
       (fun addr ->
         match addr with
         | Unix_sock path ->
           let fd = bind_unix path in
           shared := fd :: !shared;
           record := (fd, addr) :: !record
         | Tcp (host, port) ->
           if shards = 1 then begin
             let fd = bind_tcp ~reuseport:false host port in
             shared := fd :: !shared;
             record := (fd, addr) :: !record
           end
           else begin
             match bind_tcp ~reuseport:true host port with
             | fd0 ->
               dedicated.(0) <- fd0 :: dedicated.(0);
               record := (fd0, addr) :: !record;
               for i = 1 to shards - 1 do
                 let fd = bind_tcp ~reuseport:true host port in
                 dedicated.(i) <- fd :: dedicated.(i);
                 record := (fd, addr) :: !record
               done
             | exception Unix.Unix_error _ ->
               let fd = bind_tcp ~reuseport:false host port in
               shared := fd :: !shared;
               record := (fd, addr) :: !record
           end)
       addrs
   with e -> abort_start e);
  t.listeners <- List.rev !record;
  (try
     t.loops <-
       Array.init shards (fun i ->
           let ev = Ev.create () in
           evs := ev :: !evs;
           let lfds = !shared @ dedicated.(i) in
           List.iter (fun fd -> Ev.add ev fd ~read:true ~write:false) lfds;
           {
             l_id = i;
             l_ev = ev;
             l_listeners = lfds;
             l_conns = Hashtbl.create 64;
             l_m = Mutex.create ();
             l_compl = [];
             l_exec = [];
             l_draining = false;
             l_scratch = Bytes.create 65536;
           })
   with e -> abort_start e);
  let loop_threads =
    Array.to_list
      (Array.map (fun l -> Thread.create (fun () -> loop_run t l) ()) t.loops)
  in
  t.coordinator <- Some (Thread.create (fun () -> coordinator_run t loop_threads) ())

let wait t =
  match t.coordinator with
  | None -> ()
  | Some th ->
    Mutex.lock t.state_m;
    while not t.stopped do
      Condition.wait t.state_cv t.state_m
    done;
    Mutex.unlock t.state_m;
    (try Thread.join th with _ -> ())

let stop t =
  match t.coordinator with
  | None ->
    (* Never started: there is nothing to drain, but the pool still owns
       worker domains. *)
    request_stop t;
    Pool.shutdown t.pool
  | Some _ ->
    request_stop t;
    wait t
