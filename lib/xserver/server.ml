(* The query daemon.  See server.mli for the architecture overview.

   Thread/domain layout:
   - the accept thread (a systhread on the caller's domain) selects over
     the listener sockets with a short tick so shutdown requests are
     noticed promptly;
   - one systhread per connection reads frames, dispatches, writes
     responses.  Connection threads never execute queries themselves
     (except on a 1-worker pool, where [Domain_pool.async] runs inline);
   - [config.workers] worker domains execute queries pulled from the
     pool's queue.

   Shared state and its discipline:
   - the served index is an [Atomic.t] of an immutable record: readers
     [Atomic.get] once per request and use that snapshot throughout, so a
     concurrent [Reload] can never tear a request across two indexes;
   - the plan cache, metrics registry and admission counter each carry
     their own mutex;
   - [stop_requested] is an [Atomic.t bool] so a signal handler can set
     it without taking locks. *)

module Pool = Xutil.Domain_pool
module P = Protocol

type addr = Tcp of string * int | Unix_sock of string

let addr_to_string = function
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p
  | Unix_sock p -> "unix:" ^ p

let addr_of_string s =
  let unix_prefix = "unix:" in
  if String.length s > String.length unix_prefix
     && String.sub s 0 (String.length unix_prefix) = unix_prefix
  then
    Ok (Unix_sock (String.sub s (String.length unix_prefix)
                     (String.length s - String.length unix_prefix)))
  else if String.contains s '/' then Ok (Unix_sock s)
  else
    match String.rindex_opt s ':' with
    | None -> Error (Printf.sprintf "cannot parse address %S (want unix:PATH or HOST:PORT)" s)
    | Some i ->
      let host = if i = 0 then "127.0.0.1" else String.sub s 0 i in
      (match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
       | Some port when port > 0 && port < 65536 -> Ok (Tcp (host, port))
       | _ -> Error (Printf.sprintf "bad port in address %S" s))

type source =
  | Static of Xseq.t
  | Snapshot of string
  | Dynamic of Xseq.Dynamic.dyn
  | Live of Xlog.t
  | Sharded of Xshard.t

type config = {
  workers : int;
  max_pending : int;
  plan_cache_capacity : int;
  default_timeout_ms : int;
  drain_timeout_s : float;
  debug_delay_ms : int;
}

let default_config =
  {
    workers = 2;
    max_pending = 64;
    plan_cache_capacity = 256;
    default_timeout_ms = 0;
    drain_timeout_s = 5.0;
    debug_delay_ms = 0;
  }

(* What a request executes against: one [Atomic.get] pins the backend
   for the whole request.  A frozen backend's generation is fixed at
   swap time; a live store's structure generation moves underneath us
   (seals, compaction installs), so it is read per request. *)
type backend = B_index of Xseq.t | B_live of Xlog.t | B_shard of Xshard.t

type serving = { backend : backend; gen : int }

let serving_gen sv =
  match sv.backend with
  | B_index _ -> sv.gen
  | B_live log -> Xlog.generation log
  | B_shard sh -> Xshard.generation sh

(* Cached plans carry which compiler produced them; generations are
   allocated from one process-wide sequence ({!Xseq.next_generation}),
   so a key collision across backend kinds cannot happen — the variant
   check is defence in depth. *)
type plan =
  | Plan_index of Xseq.prepared
  | Plan_live of Xlog.prepared
  | Plan_shard of Xshard.prepared

type t = {
  config : config;
  mutable source : source; (* guarded by [reload_m] *)
  serving : serving Atomic.t;
  cache : plan Plan_cache.t;
  metrics : Metrics.t;
  pool : Pool.t;
  (* admission *)
  adm_m : Mutex.t;
  mutable in_flight : int;
  (* lifecycle *)
  stop_requested : bool Atomic.t;
  state_m : Mutex.t;
  state_cv : Condition.t;
  mutable started : bool;
  mutable stopped : bool;
  mutable listeners : (Unix.file_descr * addr) list;
  mutable accept_thread : Thread.t option;
  conns : (int, Unix.file_descr) Hashtbl.t; (* guarded by state_m *)
  mutable conn_seq : int;
  mutable conn_threads : Thread.t list; (* guarded by state_m *)
  reload_m : Mutex.t;
  started_at : float;
}

let serving_of_source = function
  | Static index -> { backend = B_index index; gen = Xseq.generation index }
  | Snapshot path ->
    let index = Xseq.load path in
    { backend = B_index index; gen = Xseq.generation index }
  | Dynamic dyn ->
    let index = Xseq.Dynamic.snapshot dyn in
    { backend = B_index index; gen = Xseq.generation index }
  | Live log -> { backend = B_live log; gen = Xlog.generation log }
  | Sharded sh -> { backend = B_shard sh; gen = Xshard.generation sh }

let create ?(config = default_config) source =
  if config.workers < 1 then invalid_arg "Server.create: workers < 1";
  if config.max_pending < 1 then invalid_arg "Server.create: max_pending < 1";
  {
    config;
    source;
    serving = Atomic.make (serving_of_source source);
    cache = Plan_cache.create ~capacity:config.plan_cache_capacity;
    metrics = Metrics.create ();
    pool = Pool.create ~domains:config.workers ();
    adm_m = Mutex.create ();
    in_flight = 0;
    stop_requested = Atomic.make false;
    state_m = Mutex.create ();
    state_cv = Condition.create ();
    started = false;
    stopped = false;
    listeners = [];
    accept_thread = None;
    conns = Hashtbl.create 32;
    conn_seq = 0;
    conn_threads = [];
    reload_m = Mutex.create ();
    started_at = Unix.gettimeofday ();
  }

let metrics t = t.metrics
let plan_cache t = t.cache
let generation t = serving_gen (Atomic.get t.serving)

let pending t =
  Mutex.lock t.adm_m;
  let n = t.in_flight in
  Mutex.unlock t.adm_m;
  n

(* --- admission ------------------------------------------------------------- *)

let try_admit t =
  Mutex.lock t.adm_m;
  let ok = t.in_flight < t.config.max_pending in
  if ok then t.in_flight <- t.in_flight + 1;
  Mutex.unlock t.adm_m;
  ok

let release t =
  Mutex.lock t.adm_m;
  t.in_flight <- t.in_flight - 1;
  Mutex.unlock t.adm_m

(* --- query execution ------------------------------------------------------- *)

(* Compile-or-reuse: normalized pattern text keys the LRU; the entry's
   generation stamp guarantees the plan belongs to the backend snapshot.
   Queries whose expansion explodes ([Too_many]) bypass the cache and
   take the exact-scan fallback.  On a live store the structure can seal
   between the cache probe and the run — [Xlog.run_prepared] raises on
   its stamp check and the query falls back to the uncached (always
   current) path rather than answering from a stale plan. *)
let answer_pattern t sv stats pattern =
  let key = Xquery.Pattern.to_string pattern in
  match sv.backend with
  | B_index index ->
    (match Plan_cache.find t.cache ~generation:sv.gen key with
     | Some (Plan_index plans) -> Xseq.run_prepared ~stats index plans
     | Some (Plan_live _) | Some (Plan_shard _) | None ->
       (match Xseq.prepare index pattern with
        | plans ->
          Plan_cache.add t.cache ~generation:sv.gen key (Plan_index plans);
          Xseq.run_prepared ~stats index plans
        | exception Xquery.Instantiate.Too_many _ ->
          Xseq.query ~stats index pattern))
  | B_live log ->
    let gen = Xlog.generation log in
    let run plan =
      try Xlog.run_prepared ~stats log plan
      with Invalid_argument _ -> Xlog.query ~stats log pattern
    in
    (match Plan_cache.find t.cache ~generation:gen key with
     | Some (Plan_live plan) -> run plan
     | Some (Plan_index _) | Some (Plan_shard _) | None ->
       (match Xlog.prepare log pattern with
        | plan ->
          Plan_cache.add t.cache ~generation:gen key (Plan_live plan);
          run plan
        | exception Xquery.Instantiate.Too_many _ ->
          Xlog.query ~stats log pattern))
  | B_shard sh ->
    let gen = Xshard.generation sh in
    let run plan =
      try Xshard.run_prepared ~stats sh plan
      with Invalid_argument _ -> Xshard.query ~stats sh pattern
    in
    (match Plan_cache.find t.cache ~generation:gen key with
     | Some (Plan_shard plan) -> run plan
     | Some (Plan_index _) | Some (Plan_live _) | None ->
       (match Xshard.prepare sh pattern with
        | plan ->
          Plan_cache.add t.cache ~generation:gen key (Plan_shard plan);
          run plan
        | exception Xquery.Instantiate.Too_many _ ->
          Xshard.query ~stats sh pattern))

let parse_xpath xpath =
  match Xquery.Xpath_parser.parse xpath with
  | p -> Ok p
  | exception Xquery.Xpath_parser.Syntax_error { pos; msg } ->
    Error (Printf.sprintf "%s at position %d in %S" msg pos xpath)

(* Runs [f] on a pool worker and blocks the calling connection thread
   until the result is back.  The job itself never raises (exceptions are
   materialised into the slot), honouring the pool's job contract. *)
let run_on_pool t f =
  let m = Mutex.create () in
  let cv = Condition.create () in
  let slot = ref None in
  Pool.async t.pool (fun () ->
      let r = match f () with v -> Ok v | exception e -> Error e in
      Mutex.lock m;
      slot := Some r;
      Condition.signal cv;
      Mutex.unlock m);
  Mutex.lock m;
  while Option.is_none !slot do
    Condition.wait cv m
  done;
  Mutex.unlock m;
  match Option.get !slot with Ok v -> v | Error e -> raise e

let err code fmt =
  Printf.ksprintf (fun message -> P.Error { code; message }) fmt

(* The deadline is fixed when the frame is admitted; workers re-check it
   when they dequeue the job, so a request that starved in the queue
   answers [Timeout] instead of executing late. *)
let deadline_of t timeout_ms =
  let ms = if timeout_ms > 0 then timeout_ms else t.config.default_timeout_ms in
  if ms > 0 then Some (Unix.gettimeofday () +. (float_of_int ms /. 1000.))
  else None

let expired = function
  | Some d -> Unix.gettimeofday () > d
  | None -> false

let exec_queries t ~timeout_ms (xpaths : string array) :
    (int * int list array, P.response) result =
  (* Parse before admission: a malformed query is a [Bad_request], not
     load. *)
  let patterns = Array.map parse_xpath xpaths in
  match
    Array.find_map (function Error m -> Some m | Ok _ -> None) patterns
  with
  | Some m -> Error (err P.Bad_request "%s" m)
  | None ->
    let patterns =
      Array.map (function Ok p -> p | Error _ -> assert false) patterns
    in
    if not (try_admit t) then
      Error
        (err P.Overloaded "server at capacity (%d requests in flight)"
           t.config.max_pending)
    else
      Fun.protect ~finally:(fun () -> release t)
        (fun () ->
          let deadline = deadline_of t timeout_ms in
          run_on_pool t (fun () ->
              if t.config.debug_delay_ms > 0 then
                Thread.delay (float_of_int t.config.debug_delay_ms /. 1000.);
              if expired deadline then
                Error (err P.Timeout "deadline expired before execution")
              else begin
                let sv = Atomic.get t.serving in
                let stats = Xquery.Matcher.create_stats () in
                let ids = Array.map (answer_pattern t sv stats) patterns in
                Metrics.merge_matcher t.metrics stats;
                Ok (serving_gen sv, ids)
              end))

(* --- reload ---------------------------------------------------------------- *)

let reload ?path t =
  Mutex.lock t.reload_m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.reload_m)
    (fun () ->
      let source =
        match (path, t.source) with
        | Some p, _ -> Snapshot p
        | None, src -> src
      in
      (* Build the replacement entirely off to the side; only the final
         pointer swap is visible to queries.  [Static] with no path keeps
         serving the resident index (nothing to rebuild from); [Live]
         with no path flushes the memtable and compacts the store in
         place — concurrent queries keep answering throughout, against
         whichever view is installed when they pin it. *)
      let sv =
        match source with
        | Static _ when path = None -> Atomic.get t.serving
        | Live log when path = None ->
          Xlog.flush log;
          ignore (Xlog.compact log : bool);
          serving_of_source source
        | Sharded sh when path = None ->
          Xshard.flush sh;
          ignore (Xshard.compact sh : bool);
          serving_of_source source
        | s -> serving_of_source s
      in
      t.source <- source;
      Atomic.set t.serving sv;
      serving_gen sv)

(* --- stats ----------------------------------------------------------------- *)

let stats_json t =
  let sv = Atomic.get t.serving in
  let hits = Plan_cache.hits t.cache and misses = Plan_cache.misses t.cache in
  let looked = hits + misses in
  let page_reads, page_hits =
    match sv.backend with
    | B_index index ->
      (match Xseq.backing_store index with
       | Some s -> (Xstorage.Store.page_reads s, Xstorage.Store.page_hits s)
       | None -> (0, 0))
    | B_live _ | B_shard _ -> (0, 0)
  in
  let live_extra =
    match sv.backend with
    | B_index _ -> []
    | B_shard sh ->
      (* Per-shard state plus the aggregate, so an operator watching
         Stats sees exactly which shard is degraded or down. *)
      let infos = Xshard.shard_infos sh in
      let shard_json (i : Xshard.shard_info) =
        Printf.sprintf
          "{\"shard\": %d, \"doc_count\": %d, \"pending\": %d, \
           \"segments\": %d, \"tombstones\": %d, \"next_local_id\": %d, \
           \"wal_offset\": %d, \"degraded\": %b, \"degraded_reason\": %S, \
           \"down\": %b, \"down_reason\": %S}"
          i.Xshard.shard i.Xshard.docs i.Xshard.pending i.Xshard.segments
          i.Xshard.tombstones i.Xshard.next_local_id i.Xshard.wal_offset
          (i.Xshard.degraded <> None)
          (Option.value i.Xshard.degraded ~default:"")
          (i.Xshard.down <> None)
          (Option.value i.Xshard.down ~default:"")
      in
      let degraded = Xshard.degraded_shards sh in
      [
        ( "sharded",
          Printf.sprintf
            "{\"shards\": %d, \"doc_count\": %d, \"degraded_shards\": %d, \
             \"down_shards\": %d, \"per_shard\": [%s]}"
            (Xshard.shard_count sh) (Xshard.doc_count sh)
            (List.length degraded)
            (List.length (Xshard.down_shards sh))
            (String.concat ", "
               (Array.to_list (Array.map shard_json infos))) );
      ]
    | B_live log ->
      let degraded, reason =
        match Xlog.degraded_reason log with
        | Some r -> (true, r)
        | None -> (false, "")
      in
      [
        ( "live",
          Printf.sprintf
            "{\"doc_count\": %d, \"pending\": %d, \"segments\": %d, \
             \"tombstones\": %d, \"next_id\": %d, \"wal_offset\": %d, \
             \"degraded\": %b, \"degraded_reason\": %S}"
            (Xlog.doc_count log) (Xlog.pending log) (Xlog.segments log)
            (Xlog.tombstones log) (Xlog.next_id log) (Xlog.wal_offset log)
            degraded reason );
      ]
  in
  Metrics.to_json
    ~extra:
      ([
        ("generation", string_of_int (serving_gen sv));
        ("uptime_s",
         Printf.sprintf "%.1f" (Unix.gettimeofday () -. t.started_at));
        ("pending", string_of_int (pending t));
        ("max_pending", string_of_int t.config.max_pending);
        ("workers", string_of_int t.config.workers);
        ( "plan_cache",
          Printf.sprintf
            "{\"capacity\": %d, \"entries\": %d, \"hits\": %d, \"misses\": \
             %d, \"hit_rate\": %.4f}"
            (Plan_cache.capacity t.cache)
            (Plan_cache.length t.cache)
            hits misses
            (if looked = 0 then 0. else float_of_int hits /. float_of_int looked) );
        ( "store",
          Printf.sprintf "{\"page_reads\": %d, \"page_hits\": %d}" page_reads
            page_hits );
      ]
      @ live_extra)
    t.metrics

(* --- dispatch -------------------------------------------------------------- *)

(* The two mutable backends behind one face for the Insert/Delete/Flush
   arms.  [Xshard.Shard_down] maps to the same wire code as [Degraded]:
   from the client's point of view both mean "this write is refused
   until the store heals", and the message names the failed shard. *)
type live_backend = L_log of Xlog.t | L_shard of Xshard.t

let live_store t =
  match (Atomic.get t.serving).backend with
  | B_live log -> Some (L_log log)
  | B_shard sh -> Some (L_shard sh)
  | B_index _ -> None

let live_insert lb doc =
  match lb with L_log log -> Xlog.insert log doc | L_shard sh -> Xshard.insert sh doc

let live_remove lb id =
  match lb with L_log log -> Xlog.remove log id | L_shard sh -> Xshard.remove sh id

let live_flush = function
  | L_log log -> Xlog.flush log
  | L_shard sh -> Xshard.flush sh

let live_generation = function
  | L_log log -> Xlog.generation log
  | L_shard sh -> Xshard.generation sh

let dispatch t (req : P.request) : string * P.response =
  match req with
  | P.Ping -> ("ping", P.Pong)
  | P.Stats -> ("stats", P.Stats_json (stats_json t))
  | P.Reload path ->
    ( "reload",
      (match reload ?path t with
       | gen -> P.Reloaded { generation = gen }
       | exception Xlog.Degraded reason ->
         err P.Degraded "store is read-only: %s" reason
       | exception e ->
         err P.Server_error "reload failed: %s" (Printexc.to_string e)) )
  | P.Query { xpath; timeout_ms } ->
    ( "query",
      (match exec_queries t ~timeout_ms [| xpath |] with
       | Ok (generation, ids) -> P.Result { generation; ids = ids.(0) }
       | Error e -> e
       | exception e ->
         err P.Server_error "%s" (Printexc.to_string e)) )
  | P.Query_batch { xpaths; timeout_ms } ->
    ( "query_batch",
      (match exec_queries t ~timeout_ms xpaths with
       | Ok (generation, ids) -> P.Batch_result { generation; ids }
       | Error e -> e
       | exception e ->
         err P.Server_error "%s" (Printexc.to_string e)) )
  (* Mutations run on the connection thread: the write path is a WAL
     append under the store's writer lock (plus an occasional bounded
     memtable seal), so shipping it to a worker domain would only add a
     handoff to the serialisation already imposed by the log. *)
  | P.Insert { xml } ->
    ( "insert",
      (match live_store t with
       | None -> err P.Bad_request "server is not serving a live store"
       | Some lb ->
         (match Xmlcore.Xml_parser.parse_string xml with
          | doc ->
            (match live_insert lb doc with
             | id -> P.Inserted { id }
             | exception Xlog.Degraded reason ->
               err P.Degraded "store is read-only: %s" reason
             | exception Xshard.Shard_down (i, reason) ->
               err P.Degraded "shard %d is down: %s" i reason
             | exception e ->
               err P.Server_error "insert failed: %s" (Printexc.to_string e))
          | exception Xmlcore.Xml_parser.Parse_error { pos; line; msg } ->
            err P.Bad_request "XML parse error at line %d (byte %d): %s" line
              pos msg)) )
  | P.Delete { id } ->
    ( "delete",
      (match live_store t with
       | None -> err P.Bad_request "server is not serving a live store"
       | Some lb ->
         (match live_remove lb id with
          | existed -> P.Deleted { existed }
          | exception Xlog.Degraded reason ->
            err P.Degraded "store is read-only: %s" reason
          | exception Xshard.Shard_down (i, reason) ->
            err P.Degraded "shard %d is down: %s" i reason
          | exception e ->
            err P.Server_error "delete failed: %s" (Printexc.to_string e))) )
  | P.Flush ->
    ( "flush",
      (match live_store t with
       | None -> err P.Bad_request "server is not serving a live store"
       | Some lb ->
         (match live_flush lb with
          | () -> P.Flushed { generation = live_generation lb }
          | exception Xlog.Degraded reason ->
            err P.Degraded "store is read-only: %s" reason
          | exception Xshard.Shard_down (i, reason) ->
            err P.Degraded "shard %d is down: %s" i reason
          | exception e ->
            err P.Server_error "flush failed: %s" (Printexc.to_string e))) )
  | P.Health ->
    ( "health",
      (let sv = Atomic.get t.serving in
       match sv.backend with
       | B_index index ->
         P.Health_status
           {
             degraded = false;
             reason = "";
             generation = sv.gen;
             doc_count = Xseq.doc_count index;
           }
       | B_live log ->
         (* The health probe doubles as the recovery probe: if the store
            is degraded, test the disk and re-arm the write path when it
            has healed — so operators watching Health see the recovery
            happen without waiting for the next write attempt. *)
         (match Xlog.degraded_reason log with
          | Some _ -> ignore (Xlog.try_recover log : bool)
          | None -> ());
         let degraded, reason =
           match Xlog.degraded_reason log with
           | Some reason -> (true, reason)
           | None -> (false, "")
         in
         P.Health_status
           {
             degraded;
             reason;
             generation = Xlog.generation log;
             doc_count = Xlog.doc_count log;
           }
       | B_shard sh ->
         (* Same probe-on-health contract, per shard: degraded shards
            get a disk probe, down shards a re-open attempt, so watching
            Health heals whatever healed underneath.  The report is
            degraded as soon as any single shard refuses writes — the
            reason names them all. *)
         (match Xshard.degraded_shards sh with
          | [] -> ()
          | _ -> ignore (Xshard.try_recover sh : bool));
         let degraded, reason =
           match Xshard.degraded_shards sh with
           | [] -> (false, "")
           | l ->
             ( true,
               String.concat "; "
                 (List.map
                    (fun (i, r) -> Printf.sprintf "shard %d: %s" i r)
                    l) )
         in
         P.Health_status
           {
             degraded;
             reason;
             generation = Xshard.generation sh;
             doc_count = Xshard.doc_count sh;
           }) )
  | P.Unknown { op } ->
    ( "unknown",
      err P.Unsupported "request opcode 0x%02x is not supported by this server"
        op )

(* --- connection handling --------------------------------------------------- *)

let tick = 0.25 (* seconds between stop-flag checks in blocking loops *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let send_response t fd resp =
  let frame = P.encode_response resp in
  Metrics.add_bytes t.metrics ~received:0 ~sent:(String.length frame);
  (match resp with
   | P.Error { code; _ } ->
     Metrics.record_error t.metrics ~code:(P.error_code_to_string code)
   | _ -> ());
  P.write_frame fd frame

(* Waits until [fd] is readable, checking the stop flag every [tick]; a
   server shutting down stops waiting for the next request (in-flight
   requests were already answered by the time we are back here). *)
let rec wait_readable t fd =
  if Atomic.get t.stop_requested then `Stop
  else
    match Unix.select [ fd ] [] [] tick with
    | [], _, _ -> wait_readable t fd
    | _ :: _, _, _ -> `Readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable t fd
    | exception Unix.Unix_error (Unix.EBADF, _, _) -> `Stop

let handle_connection t fd =
  Metrics.connection_opened t.metrics;
  let rec loop () =
    match wait_readable t fd with
    | `Stop -> ()
    | `Readable ->
      (match P.read_frame fd with
       | Error P.Eof -> ()
       | Error P.Truncated ->
         (* The peer died mid-frame; nobody is listening for an error. *)
         ()
       | Error (P.Bad_header msg) ->
         (* Garbage or an oversized length field: answer an error frame
            (best effort — the peer may be gone) and drop the connection;
            the stream cannot be resynchronised. *)
         (try send_response t fd (err P.Bad_request "bad frame: %s" msg)
          with Unix.Unix_error _ -> ())
       | Ok frame ->
         Metrics.add_bytes t.metrics ~received:(String.length frame) ~sent:0;
         (match P.decode_request frame with
          | Error msg ->
            (try send_response t fd (err P.Bad_request "bad frame: %s" msg)
             with Unix.Unix_error _ -> ())
          | Ok req ->
            let t0 = Unix.gettimeofday () in
            let op, resp = dispatch t req in
            Metrics.record_request t.metrics ~op
              ~latency_s:(Unix.gettimeofday () -. t0);
            (match send_response t fd resp with
             | () -> loop ()
             | exception Unix.Unix_error _ -> ())))
  in
  (try loop () with _ -> ());
  close_quietly fd;
  Metrics.connection_closed t.metrics

(* --- accept loop / lifecycle ---------------------------------------------- *)

let register_conn t fd =
  Mutex.lock t.state_m;
  let id = t.conn_seq in
  t.conn_seq <- id + 1;
  Hashtbl.replace t.conns id fd;
  Mutex.unlock t.state_m;
  id

let unregister_conn t id =
  Mutex.lock t.state_m;
  Hashtbl.remove t.conns id;
  Condition.broadcast t.state_cv;
  Mutex.unlock t.state_m

let spawn_connection t fd =
  let id = register_conn t fd in
  let th =
    Thread.create
      (fun () ->
        Fun.protect
          ~finally:(fun () -> unregister_conn t id)
          (fun () -> handle_connection t fd))
      ()
  in
  Mutex.lock t.state_m;
  t.conn_threads <- th :: t.conn_threads;
  Mutex.unlock t.state_m

let shutdown_sequence t =
  (* 1. Stop accepting: close every listener. *)
  List.iter (fun (fd, _) -> close_quietly fd) t.listeners;
  (* 2. Drain: connection threads notice [stop_requested] at their next
     tick and exit once their current request is answered.  Bounded by
     [drain_timeout_s]; stragglers get their sockets shut down under
     them, which turns their blocking reads into EOF. *)
  let deadline = Unix.gettimeofday () +. t.config.drain_timeout_s in
  let rec drain () =
    Mutex.lock t.state_m;
    let n = Hashtbl.length t.conns in
    Mutex.unlock t.state_m;
    if n > 0 && Unix.gettimeofday () < deadline then begin
      Thread.delay 0.02;
      drain ()
    end
  in
  drain ();
  Mutex.lock t.state_m;
  let stragglers = Hashtbl.fold (fun _ fd acc -> fd :: acc) t.conns [] in
  let threads = t.conn_threads in
  t.conn_threads <- [];
  Mutex.unlock t.state_m;
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    stragglers;
  List.iter (fun th -> try Thread.join th with _ -> ()) threads;
  (* 3. Unlink Unix socket files so a clean shutdown leaves nothing
     behind (the CI smoke checks exactly this). *)
  List.iter
    (fun (_, addr) ->
      match addr with
      | Unix_sock path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
      | Tcp _ -> ())
    t.listeners;
  (* 4. Let in-pool work finish and join the worker domains. *)
  Pool.shutdown t.pool;
  Mutex.lock t.state_m;
  t.stopped <- true;
  Condition.broadcast t.state_cv;
  Mutex.unlock t.state_m

let accept_loop t =
  let fds = List.map fst t.listeners in
  let rec loop () =
    if Atomic.get t.stop_requested then ()
    else begin
      (match Unix.select fds [] [] tick with
       | ready, _, _ ->
         List.iter
           (fun lfd ->
             match Unix.accept ~cloexec:true lfd with
             | fd, _ -> spawn_connection t fd
             | exception
                 Unix.Unix_error
                   ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN), _, _) ->
               ()
             | exception Unix.Unix_error (Unix.EBADF, _, _) -> ())
           ready
       | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) -> ());
      loop ()
    end
  in
  loop ();
  shutdown_sequence t

let bind_listener addr =
  match addr with
  | Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ ->
        (try (Unix.gethostbyname host).Unix.h_addr_list.(0)
         with Not_found -> Unix.inet_addr_loopback)
    in
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (inet, port));
       Unix.listen fd 128
     with e ->
       close_quietly fd;
       raise e);
    (fd, addr)
  | Unix_sock path ->
    (* A previous unclean shutdown may have left the socket file; binding
       over it is the operator-friendly behaviour. *)
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd 128
     with e ->
       close_quietly fd;
       raise e);
    (fd, addr)

let start t addrs =
  if addrs = [] then invalid_arg "Server.start: no addresses";
  (* A peer that vanishes mid-response must surface as EPIPE on the
     write, not kill the process.  Idempotent; no-op off Unix. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  Mutex.lock t.state_m;
  if t.started then begin
    Mutex.unlock t.state_m;
    invalid_arg "Server.start: already started"
  end;
  t.started <- true;
  Mutex.unlock t.state_m;
  t.listeners <- List.map bind_listener addrs;
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ())

let request_stop t = Atomic.set t.stop_requested true

let wait t =
  match t.accept_thread with
  | None -> ()
  | Some th ->
    Mutex.lock t.state_m;
    while not t.stopped do
      Condition.wait t.state_cv t.state_m
    done;
    Mutex.unlock t.state_m;
    (try Thread.join th with _ -> ())

let stop t =
  (match t.accept_thread with
   | None ->
     (* Never started: there is nothing to drain, but the pool still owns
        worker domains. *)
     request_stop t;
     Pool.shutdown t.pool
   | Some _ ->
     request_stop t;
     wait t)
