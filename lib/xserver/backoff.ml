(* Decorrelated-jitter backoff.  See backoff.mli. *)

type t = { base_ms : int; cap_ms : int; factor : float }

let default = { base_ms = 25; cap_ms = 2000; factor = 3.0 }

let next p st ~prev_ms =
  let base = max 1 p.base_ms in
  let cap = max base p.cap_ms in
  let prev = if prev_ms <= 0 then base else min prev_ms cap in
  let hi = int_of_float (float_of_int prev *. p.factor) in
  let span = max 0 (hi - base) in
  let v = base + if span = 0 then 0 else Random.State.int st (span + 1) in
  min cap v

let schedule p ~seed n =
  let st = Random.State.make [| seed; 0xb4c0 |] in
  let rec go prev k acc =
    if k = 0 then List.rev acc
    else
      let s = next p st ~prev_ms:prev in
      go s (k - 1) (s :: acc)
  in
  go 0 (max 0 n) []

let total_ms = List.fold_left ( + ) 0
