(* All counters live behind one mutex; reads take the same lock so a
   [Stats] response is a consistent snapshot (e.g. the end-to-end test
   reconciles per-op counts against requests it actually sent). *)

module Matcher = Xquery.Matcher

(* Upper bounds of the latency histogram, in milliseconds.  Buckets are
   cumulative like Prometheus's: a 0.7 ms request increments every bucket
   with bound >= 1.0 when rendered, but is stored in the first bucket
   whose bound contains it. *)
let bucket_bounds_ms =
  [| 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0;
     1000.0 |]

type t = {
  m : Mutex.t;
  by_op : (string, int) Hashtbl.t;
  by_error : (string, int) Hashtbl.t;
  buckets : int array; (* length bucket_bounds_ms + 1; last = overflow *)
  mutable latency_sum_s : float;
  mutable bytes_received : int;
  mutable bytes_sent : int;
  mutable connections_opened : int;
  mutable connections_closed : int;
  matcher : Matcher.stats;
  mutable page_reads : int;
  mutable page_hits : int;
}

let create () =
  {
    m = Mutex.create ();
    by_op = Hashtbl.create 8;
    by_error = Hashtbl.create 8;
    buckets = Array.make (Array.length bucket_bounds_ms + 1) 0;
    latency_sum_s = 0.;
    bytes_received = 0;
    bytes_sent = 0;
    connections_opened = 0;
    connections_closed = 0;
    matcher = Matcher.create_stats ();
    page_reads = 0;
    page_hits = 0;
  }

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let bump tbl key by =
  Hashtbl.replace tbl key (by + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let bucket_index latency_ms =
  let n = Array.length bucket_bounds_ms in
  let rec go i = if i >= n || latency_ms <= bucket_bounds_ms.(i) then i else go (i + 1) in
  go 0

let record_request t ~op ~latency_s =
  with_lock t (fun () ->
      bump t.by_op op 1;
      t.latency_sum_s <- t.latency_sum_s +. latency_s;
      let i = bucket_index (latency_s *. 1e3) in
      t.buckets.(i) <- t.buckets.(i) + 1)

let record_error t ~code = with_lock t (fun () -> bump t.by_error code 1)

let add_bytes t ~received ~sent =
  with_lock t (fun () ->
      t.bytes_received <- t.bytes_received + received;
      t.bytes_sent <- t.bytes_sent + sent)

let connection_opened t =
  with_lock t (fun () -> t.connections_opened <- t.connections_opened + 1)

let connection_closed t =
  with_lock t (fun () -> t.connections_closed <- t.connections_closed + 1)

let merge_matcher t s = with_lock t (fun () -> Matcher.merge_stats ~into:t.matcher s)

let add_pager_io t ~reads ~hits =
  with_lock t (fun () ->
      t.page_reads <- t.page_reads + reads;
      t.page_hits <- t.page_hits + hits)

let sum_tbl tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0
let requests_total t = with_lock t (fun () -> sum_tbl t.by_op)
let errors_total t = with_lock t (fun () -> sum_tbl t.by_error)

let sorted_bindings tbl =
  List.sort (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let requests_by_op t = with_lock t (fun () -> sorted_bindings t.by_op)

let active_connections t =
  with_lock t (fun () -> t.connections_opened - t.connections_closed)

let latency_buckets t =
  with_lock t (fun () ->
      let cumulative = ref 0 in
      let n = Array.length bucket_bounds_ms in
      List.init (n + 1) (fun i ->
          cumulative := !cumulative + t.buckets.(i);
          ((if i < n then bucket_bounds_ms.(i) else infinity), !cumulative)))

(* --- JSON ----------------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ?(extra = []) t =
  with_lock t (fun () ->
      let b = Buffer.create 512 in
      let obj fields =
        "{" ^ String.concat ", " fields ^ "}"
      in
      let kv k v = Printf.sprintf "\"%s\": %s" (escape k) v in
      Buffer.add_string b "{\n";
      let total = sum_tbl t.by_op in
      let fields =
        [
          kv "requests_total" (string_of_int total);
          kv "requests_by_op"
            (obj
               (List.map
                  (fun (k, v) -> kv k (string_of_int v))
                  (sorted_bindings t.by_op)));
          kv "errors_total" (string_of_int (sum_tbl t.by_error));
          kv "errors_by_code"
            (obj
               (List.map
                  (fun (k, v) -> kv k (string_of_int v))
                  (sorted_bindings t.by_error)));
          kv "latency_ms_sum" (Printf.sprintf "%.3f" (t.latency_sum_s *. 1e3));
          kv "latency_ms_buckets"
            (obj
               (Array.to_list
                  (Array.mapi
                     (fun i c ->
                       let bound =
                         if i < Array.length bucket_bounds_ms then
                           Printf.sprintf "%g" bucket_bounds_ms.(i)
                         else "+inf"
                       in
                       kv ("le_" ^ bound) (string_of_int c))
                     t.buckets)));
          kv "bytes_received" (string_of_int t.bytes_received);
          kv "bytes_sent" (string_of_int t.bytes_sent);
          kv "connections_opened" (string_of_int t.connections_opened);
          kv "connections_closed" (string_of_int t.connections_closed);
          kv "matcher"
            (obj
               [
                 kv "probes" (string_of_int t.matcher.Matcher.probes);
                 kv "candidates" (string_of_int t.matcher.Matcher.candidates);
                 kv "rejected" (string_of_int t.matcher.Matcher.rejected);
                 kv "matches" (string_of_int t.matcher.Matcher.matches);
               ]);
          kv "pager"
            (obj
               [
                 kv "page_reads" (string_of_int t.page_reads);
                 kv "page_hits" (string_of_int t.page_hits);
               ]);
        ]
        @ List.map (fun (k, v) -> kv k v) extra
      in
      List.iteri
        (fun i f ->
          Buffer.add_string b "  ";
          Buffer.add_string b f;
          if i < List.length fields - 1 then Buffer.add_char b ',';
          Buffer.add_char b '\n')
        fields;
      Buffer.add_string b "}";
      Buffer.contents b)
