(** Retry backoff with decorrelated jitter.

    The schedule follows the "decorrelated jitter" recipe: each sleep is
    drawn uniformly from [[base, prev × factor]] and clamped to [cap],
    so concurrent clients hammered by the same outage spread out instead
    of retrying in lockstep, while the expected sleep still grows
    geometrically.  All randomness comes from an explicit
    [Random.State.t], so a fixed seed yields a fixed schedule — the unit
    tests assert exact sequences and bounded totals. *)

type t = {
  base_ms : int;  (** first / minimum sleep *)
  cap_ms : int;  (** per-sleep clamp *)
  factor : float;  (** upper-bound growth per step (3.0 is canonical) *)
}

val default : t
(** [base 25ms, cap 2000ms, factor 3.0]. *)

val next : t -> Random.State.t -> prev_ms:int -> int
(** The next sleep given the previous one ([prev_ms <= 0] means "this is
    the first retry").  Always within [[base_ms, cap_ms]]. *)

val schedule : t -> seed:int -> int -> int list
(** The first [n] sleeps a client seeded with [seed] would take — a pure
    preview of what {!next} produces, for tests and capacity math. *)

val total_ms : int list -> int
(** Sum of a schedule: the worst-case time spent sleeping (not counting
    the attempts themselves). *)
