(* Topology-aware client: read fan-out with failover, mutation leader
   chasing.  See cluster.mli for the at-most-once contract. *)

module P = Protocol

type member = {
  ep : string;
  addr : Server.addr;
  mutable cli : Client.t option;  (** dialled lazily, dropped on failure *)
}

type t = {
  policy : Client.policy;
  seed : int option;
  rng : Random.State.t;  (** failover-window backoff jitter *)
  mutable prev_ms : int;  (** last failover sleep, 0 = fresh schedule *)
  mutable members : member array;
  mutable rr : int;  (** read fan-out rotation *)
  mutable leader_idx : int option;  (** last proven/hinted primary *)
  mutable closed : bool;
}

let create ?(policy = Client.default_policy) ?seed eps =
  if eps = [] then Error "no endpoints"
  else
    let rec parse acc = function
      | [] -> Ok (List.rev acc)
      | ep :: rest -> (
        match Server.addr_of_string ep with
        | Ok addr -> parse ({ ep; addr; cli = None } :: acc) rest
        | Error m -> Error m)
    in
    match parse [] eps with
    | Error m -> Error m
    | Ok members ->
      let rng =
        match seed with
        | Some s -> Random.State.make [| s; 0x636c7573 |]
        | None ->
          Random.State.make
            [| Hashtbl.hash (Unix.gettimeofday (), Unix.getpid ()) |]
      in
      Ok
        {
          policy;
          seed;
          rng;
          prev_ms = 0;
          members = Array.of_list members;
          rr = 0;
          leader_idx = None;
          closed = false;
        }

let close t =
  if not t.closed then begin
    t.closed <- true;
    Array.iter
      (fun m ->
        match m.cli with
        | Some c ->
          m.cli <- None;
          Client.close c
        | None -> ())
      t.members
  end

let endpoints t = Array.to_list (Array.map (fun m -> m.ep) t.members)

let leader t =
  match t.leader_idx with
  | Some i when i < Array.length t.members -> Some t.members.(i).ep
  | _ -> None

let drop_member m =
  match m.cli with
  | Some c ->
    m.cli <- None;
    Client.close c
  | None -> ()

(* Connect-stage failures are safe to route around — nothing was sent. *)
let member_client t m =
  if t.closed then Error "cluster is closed"
  else
    match m.cli with
    | Some c -> Ok c
    | None -> (
      match Client.connect ~policy:t.policy ?seed:t.seed m.addr with
      | c ->
        m.cli <- Some c;
        Ok c
      | exception e -> Error (Printexc.to_string e))

(* Leader hints may name endpoints the cluster was never configured
   with; learn them on the fly. *)
let find_or_add t ep =
  let n = Array.length t.members in
  let rec scan i =
    if i >= n then None
    else if t.members.(i).ep = ep then Some i
    else scan (i + 1)
  in
  match scan 0 with
  | Some i -> Some i
  | None -> (
    match Server.addr_of_string ep with
    | Error _ -> None
    | Ok addr ->
      t.members <- Array.append t.members [| { ep; addr; cli = None } |];
      Some n)

let transport_failure = function
  | Client.Timeout _ | Client.Protocol_error _ | Unix.Unix_error _ -> true
  | _ -> false

(* --- reads ----------------------------------------------------------------- *)

(* One pass over the members starting at the rotation point; [run]
   performs the read against a connected client.  A [Not_primary]
   answer is a redirect, not a failure of the group — skip and let a
   fresher member answer. *)
let read_over t ~what run =
  let n = Array.length t.members in
  let start = t.rr in
  t.rr <- (t.rr + 1) mod n;
  let failures = ref [] in
  let rec go k =
    if k >= n then
      raise
        (Failure
           (Printf.sprintf "%s failed on every endpoint: %s" what
              (String.concat "; " (List.rev !failures))))
    else
      let m = t.members.((start + k) mod n) in
      match member_client t m with
      | Error msg ->
        failures := Printf.sprintf "%s: %s" m.ep msg :: !failures;
        go (k + 1)
      | Ok c -> (
        match run c with
        | v -> v
        | exception Client.Server_error (P.Not_primary, hint) ->
          failures := Printf.sprintf "%s: not answerable here" m.ep :: !failures;
          (match if hint = "" then None else find_or_add t hint with
           | Some j -> t.leader_idx <- Some j
           | None -> ());
          go (k + 1)
        | exception e when transport_failure e ->
          drop_member m;
          failures :=
            Printf.sprintf "%s: %s" m.ep (Printexc.to_string e) :: !failures;
          go (k + 1))
  in
  go 0

(* The primary's id watermark, for pinning bounded reads.  Prefer the
   cached leader; fall back to probing the group. *)
let primary_watermark t ~timeout_ms =
  let probe m =
    match member_client t m with
    | Error _ -> None
    | Ok c -> (
      match Client.repl_status ~timeout_ms c with
      | st when st.Client.role = `Primary -> Some st.Client.repl_next_id
      | _ -> None
      | exception Client.Server_error _ -> None
      | exception e when transport_failure e ->
        drop_member m;
        None)
  in
  let cached =
    match t.leader_idx with
    | Some i when i < Array.length t.members -> probe t.members.(i)
    | _ -> None
  in
  match cached with
  | Some w -> Some w
  | None ->
    let n = Array.length t.members in
    let rec scan i =
      if i >= n then None
      else
        match probe t.members.(i) with
        | Some w ->
          t.leader_idx <- Some i;
          Some w
        | None -> scan (i + 1)
    in
    scan 0

let query ?(timeout_ms = 0) ?max_staleness t xpath =
  match max_staleness with
  | None -> read_over t ~what:"query" (fun c -> Client.query ~timeout_ms c xpath)
  | Some slack -> (
    let probe_ms = if timeout_ms > 0 then timeout_ms else 2000 in
    match primary_watermark t ~timeout_ms:probe_ms with
    | None -> raise (Failure "bounded read: no reachable primary to pin against")
    | Some watermark ->
      let min_gen = max 0 (watermark - max 0 slack) in
      read_over t ~what:"bounded query" (fun c ->
          snd (Client.query_bounded ~timeout_ms ~min_gen c xpath)))

(* --- mutations ------------------------------------------------------------- *)

(* One pass chasing the leader.  Only two events route a mutation to
   another endpoint: a connect-stage failure (nothing sent) and a
   served [Not_primary] (the mutation did not execute).  Transport
   failures after the send propagate — indeterminate, never replayed. *)
let mutate_round t op =
  let n = Array.length t.members in
  let order =
    match t.leader_idx with
    | Some i when i < n ->
      i :: List.filter (fun j -> j <> i) (List.init n Fun.id)
    | _ -> List.init n (fun k -> (t.rr + k) mod n)
  in
  let rec go hops = function
    | [] -> None
    | i :: rest ->
      if hops > n + 4 then None
      else
        let m = t.members.(i) in
        (match member_client t m with
         | Error _ -> go (hops + 1) rest
         | Ok c -> (
           match op c with
           | v ->
             t.leader_idx <- Some i;
             Some v
           | exception Client.Server_error (P.Not_primary, hint) -> (
             match if hint = "" then None else find_or_add t hint with
             | Some j when j <> i ->
               t.leader_idx <- Some j;
               go (hops + 1) (j :: List.filter (fun k -> k <> j) rest)
             | _ ->
               t.leader_idx <- None;
               go (hops + 1) rest)))
  in
  go 0 order

let mutate ?(timeout_ms = 0) t ~what op =
  let budget_ms = if timeout_ms > 0 then timeout_ms else 10_000 in
  let deadline = Unix.gettimeofday () +. (float_of_int budget_ms /. 1000.) in
  let rec rounds () =
    match mutate_round t op with
    | Some v ->
      t.prev_ms <- 0;
      v
    | None ->
      let now = Unix.gettimeofday () in
      if now >= deadline then
        raise
          (Failure
             (Printf.sprintf
                "%s: no endpoint accepted the mutation within %dms (no \
                 reachable primary)"
                what budget_ms))
      else begin
        (* Failover window: the old primary is gone and nobody has been
           promoted yet.  Back off with jitter (the same decorrelated
           schedule single-endpoint retries use) so a fleet of writers
           doesn't hammer the survivors in lockstep, bounded by the
           remaining deadline. *)
        let sleep_ms =
          Backoff.next t.policy.Client.backoff t.rng ~prev_ms:t.prev_ms
        in
        t.prev_ms <- sleep_ms;
        let remaining_ms = int_of_float ((deadline -. now) *. 1000.) in
        let sleep_ms = max 1 (min sleep_ms remaining_ms) in
        Thread.delay (float_of_int sleep_ms /. 1000.);
        rounds ()
      end
  in
  rounds ()

let insert ?timeout_ms t xml =
  mutate ?timeout_ms t ~what:"insert" (fun c -> Client.insert ?timeout_ms c xml)

let delete ?timeout_ms t id =
  mutate ?timeout_ms t ~what:"delete" (fun c -> Client.delete ?timeout_ms c id)

let flush ?timeout_ms t =
  mutate ?timeout_ms t ~what:"flush" (fun c -> Client.flush ?timeout_ms c)

(* --- control --------------------------------------------------------------- *)

let promote ?timeout_ms t ep =
  match find_or_add t ep with
  | None -> raise (Failure (Printf.sprintf "promote: bad endpoint %S" ep))
  | Some i -> (
    let m = t.members.(i) in
    match member_client t m with
    | Error msg -> raise (Failure (Printf.sprintf "promote: %s: %s" ep msg))
    | Ok c ->
      let epoch = Client.promote ?timeout_ms c in
      t.leader_idx <- Some i;
      epoch)

let statuses t =
  Array.to_list
    (Array.mapi
       (fun i m ->
         match member_client t m with
         | Error msg -> (m.ep, Error msg)
         | Ok c -> (
           match Client.repl_status ~timeout_ms:2000 c with
           | st ->
             if st.Client.role = `Primary then t.leader_idx <- Some i;
             (m.ep, Ok st)
           | exception Client.Server_error (_, msg) -> (m.ep, Error msg)
           | exception e when transport_failure e ->
             drop_member m;
             (m.ep, Error (Printexc.to_string e))))
       t.members)
