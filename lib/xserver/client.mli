(** Blocking client for the xseq query service.

    One connection, synchronous request/response (the closed-loop shape
    the bench's load generator and the CLI both want).  A client is {b
    not} thread-safe: give each thread its own connection. *)

exception Server_error of Protocol.error_code * string
(** The server answered an error frame ([Bad_request], [Overloaded],
    [Timeout], [Server_error]). *)

exception Protocol_error of string
(** The byte stream was not a valid response frame, or the response kind
    did not match the request (a server bug, a version skew, or not an
    xseq server at all). *)

type t

val connect : Server.addr -> t
(** @raise Unix.Unix_error when the endpoint is unreachable. *)

val close : t -> unit
(** Idempotent. *)

val ping : t -> unit

val query : ?timeout_ms:int -> t -> string -> int list
(** Matching document ids for one XPath, sorted (exactly
    [Xseq.query_xpath] against the served index). *)

val query_full : ?timeout_ms:int -> t -> string -> int * int list
(** Like {!query} but also returns the generation of the index that
    answered — the hot-swap consistency tests key on it. *)

val query_batch : ?timeout_ms:int -> t -> string array -> int list array

val stats : t -> string
(** The server's metrics registry as JSON. *)

val reload : ?path:string -> t -> int
(** Asks for a hot swap; returns the new generation. *)

(** {1 Live ingestion}

    Only valid against a server serving an [Xlog] store ([xseq serve
    --live]); other backends answer [Bad_request], raised here as
    {!Server_error}. *)

val insert : t -> string -> int
(** Sends one XML document; returns the stable id it was assigned. *)

val delete : t -> int -> bool
(** Tombstones a document; [false] if the id was unknown or already
    removed. *)

val flush : t -> int
(** Seals the server's memtable and fsyncs its WAL; returns the new
    structure generation. *)

val with_connection : Server.addr -> (t -> 'a) -> 'a
