(** Self-healing blocking client for the xseq query service.

    One connection, synchronous request/response (the closed-loop shape
    the bench's load generator and the CLI both want).  A client is {b
    not} thread-safe: give each thread its own connection.

    {1 Fault handling}

    The client rides through transient transport trouble on its own:

    - {b Connect timeout}: connection establishment uses a non-blocking
      connect bounded by [policy.connect_timeout_ms] instead of the
      kernel's default (minutes).
    - {b Automatic reconnect}: a connection that dies mid-stream
      ([ECONNRESET], [EPIPE], EOF, a truncated frame) is closed and
      discarded — the handle is {e never} left holding an unusable fd —
      and the next eligible attempt dials a fresh one.
    - {b Retries, idempotent only}: a request that failed in transport is
      re-sent only if replaying it is safe ([ping]/[query]/
      [query_batch]/[stats]/[health]) or if the failure happened before
      anything was sent (connection establishment).  [insert], [delete],
      [flush] and [reload] are never re-sent once they may have reached
      the server — at-most-once, enforced here.
    - {b Backoff}: retries sleep per {!Backoff} (decorrelated jitter),
      bounded by [policy.attempts] and by the request deadline.
    - {b Deadlines across retries}: [timeout_ms] (per call, falling back
      to [policy.request_timeout_ms]) bounds the {e total} time spent on
      the call — connects, sends, reads, sleeps, all attempts included —
      raising {!Timeout} when exhausted.

    Server {e answers} are never retried: an error frame (including
    [Degraded] and [Overloaded]) raises {!Server_error} immediately —
    the server is alive and has spoken. *)

exception Server_error of Protocol.error_code * string
(** The server answered an error frame ([Bad_request], [Overloaded],
    [Timeout], [Server_error], [Degraded], [Unsupported]). *)

exception Protocol_error of string
(** The byte stream was not a valid response frame, or the response kind
    did not match the request (a server bug, a version skew, or not an
    xseq server at all); also the final verdict when transport retries
    are exhausted. *)

exception Timeout of string
(** The per-request deadline was exhausted — by a connect, a read/write,
    or the retry loop's sleeps. *)

type policy = {
  attempts : int;  (** max tries per eligible call (>= 1) *)
  connect_timeout_ms : int;  (** per connection attempt; <= 0 = forever *)
  request_timeout_ms : int;
      (** default total budget per call; 0 = none.  Overridden per call
          by [?timeout_ms]. *)
  backoff : Backoff.t;  (** sleep schedule between retries *)
}

val default_policy : policy
(** 4 attempts, 5s connect timeout, no request deadline,
    {!Backoff.default}. *)

type t

type health = {
  degraded : bool;
  reason : string;  (** "" when healthy *)
  generation : int;
  doc_count : int;
}

val connect : ?policy:policy -> ?seed:int -> Server.addr -> t
(** Dials eagerly (single attempt, so "unreachable" is reported here and
    not on the first request).  [seed] fixes the backoff jitter stream —
    tests replay exact schedules with it.
    @raise Unix.Unix_error when the endpoint is unreachable.
    @raise Timeout when the connect timeout expires. *)

val close : t -> unit
(** Closes the connection if one is open.  {b Idempotent}: safe to call
    any number of times, at any point — including after a transport
    failure mid-request or a raised exception — and never raises.  Any
    operation on a closed client raises {!Protocol_error}. *)

val ping : ?timeout_ms:int -> t -> unit

val query : ?timeout_ms:int -> t -> string -> int list
(** Matching document ids for one XPath, sorted (exactly
    [Xseq.query_xpath] against the served index).  [timeout_ms] is both
    the server-side deadline and the client-side total budget. *)

val query_full : ?timeout_ms:int -> t -> string -> int * int list
(** Like {!query} but also returns the generation of the index that
    answered — the hot-swap consistency tests key on it. *)

val query_batch : ?timeout_ms:int -> t -> string array -> int list array

val stats : ?timeout_ms:int -> t -> string
(** The server's metrics registry as JSON. *)

val health : ?timeout_ms:int -> t -> health
(** The server's degradation state: always answered, degraded or not —
    the probe for diagnosing a read-only store. *)

val reload : ?timeout_ms:int -> ?path:string -> t -> int
(** Asks for a hot swap; returns the new generation.  Not retried. *)

(** {1 Live ingestion}

    Only valid against a server serving an [Xlog] store ([xseq serve
    --live]); other backends answer [Bad_request], raised here as
    {!Server_error}.  While the store is degraded (disk fault) these
    raise {!Server_error} with [Protocol.Degraded]; they are {e never}
    replayed by the retry machinery. *)

val insert : ?timeout_ms:int -> t -> string -> int
(** Sends one XML document; returns the stable id it was assigned. *)

val delete : ?timeout_ms:int -> t -> int -> bool
(** Tombstones a document; [false] if the id was unknown or already
    removed. *)

val flush : ?timeout_ms:int -> t -> int
(** Seals the server's memtable and fsyncs its WAL; returns the new
    structure generation. *)

(** {1 Replication}

    Probes and controls for replicated deployments; servers without a
    replication role answer [Unsupported].  For topology-aware fan-out
    (read failover, leader chasing) use {!Cluster} — these are the
    single-endpoint primitives it builds on. *)

type repl_state = {
  role : [ `Primary | `Follower ];
  epoch : int;  (** fencing epoch; grows by one per promotion *)
  durable : Xlog.Wal.position;  (** the node's fsynced log end *)
  repl_next_id : int;  (** id watermark — the staleness generation *)
  leader_hint : string;  (** known primary endpoint, "" if none/self *)
  lag_records : int;
      (** WAL records this node trails its primary's durable position by
          (0 on a primary) — the stalled-subscription gauge *)
  lag_bytes : int;  (** same lag in bytes *)
}

val promote : ?timeout_ms:int -> t -> int
(** Makes the node the primary (bumping the epoch) and returns the new
    epoch.  Idempotent on a primary, hence retried like a read. *)

val repl_status : ?timeout_ms:int -> t -> repl_state

val query_bounded : ?timeout_ms:int -> min_gen:int -> t -> string -> int * int list
(** Bounded-staleness read: the node answers only if it has applied at
    least [min_gen] document ids; otherwise it raises {!Server_error}
    with [Protocol.Not_primary] whose message is the leader hint. *)

val fetch_snapshot : ?timeout_ms:int -> t -> dir:string -> int
(** Streams the server's latest snapshot into [dir]'s staging area
    ([xfer.tmp]), verifies it and commits it to [xfer.ready]
    ({!Xlog.Transfer.recv_finish}); returns the stream bytes received.
    The snapshot is {e not} installed — the next [Xlog.open_] on [dir]
    (or [Xlog.reseed] on a live handle) completes the install, which is
    the crash-safe half of the contract.  Transport failures resume
    from the receiver's cursor (up to [policy.attempts]); a server that
    checkpointed mid-transfer restarts the staging under its new token.
    @raise Server_error when the server refuses (not a live store, or
    the stream raced a compaction — retry from the top). *)

(** {1 Pipelining}

    The event-driven server answers pipelined requests strictly in
    request order, so a client may write a whole burst before reading
    anything — N requests cost one write and one read stream instead of
    N blocking round trips.  Unlike the synchronous calls above, the
    pipelined path makes {b one attempt and never retries}: once part
    of a burst may have reached the server, replaying it could
    duplicate non-idempotent requests, and a half-read response stream
    cannot be resumed.  Any transport failure closes the connection
    (the next synchronous call redials) and raises. *)

val pipeline : ?timeout_ms:int -> t -> Protocol.request list -> Protocol.response list
(** Writes every request as one burst, then reads exactly one response
    per request, in order.  Error frames come back as
    [Protocol.Error { code; message }] {e values} — per-request
    failures ([Overloaded], [Timeout], …) must not tear down the rest
    of the burst.  [timeout_ms] arms the socket deadline for the whole
    burst (and is embedded in any [Query] the caller built with one).
    @raise Protocol_error on malformed responses, EOF mid-burst, or a
    closed client.
    @raise Timeout when the socket deadline expires mid-burst. *)

val query_pipeline : ?timeout_ms:int -> t -> string list -> int list list
(** {!pipeline} over [Query] requests: one id list per XPath, in query
    order.  The first error frame raises {!Server_error} (later
    responses of the burst are discarded with the connection). *)

val with_connection : ?policy:policy -> ?seed:int -> Server.addr -> (t -> 'a) -> 'a
