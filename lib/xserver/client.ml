(* Self-healing blocking client.  See client.mli for the retry and
   idempotency contract. *)

module P = Protocol

exception Server_error of P.error_code * string
exception Protocol_error of string
exception Timeout of string

type policy = {
  attempts : int;
  connect_timeout_ms : int;
  request_timeout_ms : int;
  backoff : Backoff.t;
}

let default_policy =
  {
    attempts = 4;
    connect_timeout_ms = 5000;
    request_timeout_ms = 0;
    backoff = Backoff.default;
  }

type t = {
  addr : Server.addr;
  policy : policy;
  rng : Random.State.t;
  mutable prev_sleep_ms : int;  (** decorrelated-jitter state *)
  mutable fd : Unix.file_descr option;
  mutable closed : bool;
}

type health = {
  degraded : bool;
  reason : string;
  generation : int;
  doc_count : int;
}

(* --- connection plumbing ------------------------------------------------- *)

let now_ms () = Unix.gettimeofday () *. 1000.
let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

let sockaddr_of = function
  | Server.Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_loopback)
    in
    (Unix.PF_INET, Unix.ADDR_INET (inet, port))
  | Server.Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)

let rec retry_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

(* Non-blocking connect + select: a sharp connect timeout instead of the
   kernel's minutes-long default.  [timeout_ms <= 0] waits forever. *)
let connect_fd ~timeout_ms addr =
  let dom, sa = sockaddr_of addr in
  let fd = Unix.socket ~cloexec:true dom Unix.SOCK_STREAM 0 in
  match
    Unix.set_nonblock fd;
    let wait () =
      let tmo = if timeout_ms > 0 then float_of_int timeout_ms /. 1000. else -1. in
      match retry_eintr (fun () -> Unix.select [] [ fd ] [] tmo) with
      | _, [], _ ->
        raise (Timeout (Printf.sprintf "connect: no answer within %dms" timeout_ms))
      | _ -> (
        match Unix.getsockopt_error fd with
        | None -> ()
        | Some err ->
          raise (Unix.Unix_error (err, "connect", Server.addr_to_string addr)))
    in
    (match Xfault.Io.connect fd sa with
    | () -> ()
    | exception
        Unix.Unix_error
          ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
      ->
      wait ());
    Unix.clear_nonblock fd
  with
  | () -> fd
  | exception e ->
    close_fd fd;
    raise e

let kill t =
  match t.fd with
  | None -> ()
  | Some fd ->
    t.fd <- None;
    close_fd fd

let close t =
  if not t.closed then begin
    t.closed <- true;
    kill t
  end

let connect ?(policy = default_policy) ?seed (addr : Server.addr) =
  let rng =
    Random.State.make
      (match seed with
      | Some s -> [| s; 0xc11e |]
      | None -> [| Hashtbl.hash (Unix.gettimeofday (), Unix.getpid ()) |])
  in
  let t = { addr; policy; rng; prev_sleep_ms = 0; fd = None; closed = false } in
  (* Eager and single-shot: an unreachable endpoint raises here, not on
     the first request — callers distinguish "cannot connect" from
     "connection died" (automatic reconnection covers the latter). *)
  t.fd <- Some (connect_fd ~timeout_ms:policy.connect_timeout_ms addr);
  t

(* --- retry machinery ------------------------------------------------------ *)

(* Safe to replay after the request may have reached the server: pure
   reads.  [Unknown] is dispatched to an [Unsupported] answer without
   touching any state, so it rides along.  Everything else (Insert,
   Delete, Flush, Reload) must never be sent twice. *)
let idempotent = function
  | P.Ping | P.Query _ | P.Query_batch _ | P.Stats | P.Health | P.Unknown _
  | P.Repl_status | P.Query_bounded _ -> true
  (* Re-requesting a snapshot stream restarts (or resumes) it — the
     receiver's cursor makes the replay safe. *)
  | P.Fetch_snapshot _ -> true
  (* Promote is idempotent by contract: promoting a primary again just
     answers its current epoch. *)
  | P.Promote -> true
  (* Subscribe/Wal_ack never travel through the request/response path
     (the replication engine drives them over a raw stream); classified
     non-retryable defensively. *)
  | P.Subscribe _ | P.Wal_ack _ -> false
  | P.Reload _ | P.Insert _ | P.Delete _ | P.Flush -> false

(* Transport failures worth a reconnect-and-retry; anything else (bad
   frames, wrong peer) is a protocol bug and propagates immediately. *)
let retryable_errno = function
  | Unix.EPIPE | Unix.ECONNRESET | Unix.ECONNABORTED | Unix.ECONNREFUSED
  | Unix.ENOENT | Unix.ENOTCONN | Unix.ESHUTDOWN | Unix.ETIMEDOUT
  | Unix.EHOSTUNREACH | Unix.ENETUNREACH | Unix.ENETDOWN | Unix.ENETRESET ->
    true
  | _ -> false

exception Transport of string (* internal: mapped before escaping *)

let set_io_timeout fd remaining_ms =
  if remaining_ms < max_int then begin
    let s = float_of_int (max 1 remaining_ms) /. 1000. in
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s
     with Unix.Unix_error _ | Invalid_argument _ -> ());
    try Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
    with Unix.Unix_error _ | Invalid_argument _ -> ()
  end

let roundtrip ?(timeout_ms = 0) t req =
  if t.closed then raise (Protocol_error "connection is closed");
  let timeout_ms =
    if timeout_ms > 0 then timeout_ms else t.policy.request_timeout_ms
  in
  let deadline =
    if timeout_ms > 0 then Some (now_ms () +. float_of_int timeout_ms) else None
  in
  let remaining_ms () =
    match deadline with
    | None -> max_int
    | Some d ->
      let r = int_of_float (d -. now_ms ()) in
      if r <= 0 then begin
        kill t;
        raise
          (Timeout (Printf.sprintf "deadline of %dms exhausted by retries" timeout_ms))
      end;
      r
  in
  let idem = idempotent req in
  let frame = P.encode_request req in
  let rec attempt used =
    let sent = ref false in
    match
      let fd =
        match t.fd with
        | Some fd -> fd
        | None ->
          let budget = min t.policy.connect_timeout_ms (remaining_ms ()) in
          let fd = connect_fd ~timeout_ms:budget t.addr in
          t.fd <- Some fd;
          fd
      in
      set_io_timeout fd (remaining_ms ());
      sent := true;
      P.write_frame fd frame;
      (match P.read_frame fd with
      | Error P.Eof -> raise (Transport "server closed the connection")
      | Error P.Truncated -> raise (Transport "truncated response frame")
      | Error (P.Bad_header m) -> raise (Protocol_error ("bad response frame: " ^ m))
      | Ok resp ->
        (match P.decode_response resp with
        | Error m -> raise (Protocol_error ("malformed response: " ^ m))
        | Ok (P.Error { code; message }) -> raise (Server_error (code, message))
        | Ok resp -> resp))
    with
    | resp ->
      t.prev_sleep_ms <- 0;
      resp
    | exception e -> (
      let retryable, describe =
        match e with
        | Transport msg -> (true, fun () -> Protocol_error msg)
        | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          when deadline <> None ->
          (* The SO_RCVTIMEO/SO_SNDTIMEO we armed from the deadline
             expired mid-frame; the stream position is unknown. *)
          ( false,
            fun () ->
              Timeout (Printf.sprintf "deadline of %dms expired mid-request" timeout_ms)
          )
        | Unix.Unix_error (errno, _, _) when retryable_errno errno -> (true, fun () -> e)
        | _ -> (false, fun () -> e)
      in
      (match e with
      | Transport _ | Unix.Unix_error _ | Timeout _ -> kill t
      | _ -> ());
      let may_retry =
        retryable && (idem || not !sent) && used + 1 < t.policy.attempts
      in
      if not may_retry then raise (describe ())
      else begin
        let sleep = Backoff.next t.policy.backoff t.rng ~prev_ms:t.prev_sleep_ms in
        t.prev_sleep_ms <- sleep;
        let sleep =
          match deadline with
          | None -> sleep
          | Some d -> min sleep (max 0 (int_of_float (d -. now_ms ())))
        in
        if sleep > 0 then Thread.delay (float_of_int sleep /. 1000.);
        ignore (remaining_ms () : int);
        attempt (used + 1)
      end)
  in
  attempt 0

(* --- public operations ----------------------------------------------------- *)

let unexpected what = raise (Protocol_error ("unexpected response to " ^ what))

let ping ?timeout_ms t =
  match roundtrip ?timeout_ms t P.Ping with P.Pong -> () | _ -> unexpected "ping"

let query_full ?(timeout_ms = 0) t xpath =
  match roundtrip ~timeout_ms t (P.Query { xpath; timeout_ms }) with
  | P.Result { generation; ids } -> (generation, ids)
  | _ -> unexpected "query"

let query ?timeout_ms t xpath = snd (query_full ?timeout_ms t xpath)

let query_batch ?(timeout_ms = 0) t xpaths =
  match roundtrip ~timeout_ms t (P.Query_batch { xpaths; timeout_ms }) with
  | P.Batch_result { ids; _ } -> ids
  | _ -> unexpected "query_batch"

let stats ?timeout_ms t =
  match roundtrip ?timeout_ms t P.Stats with
  | P.Stats_json s -> s
  | _ -> unexpected "stats"

let health ?timeout_ms t =
  match roundtrip ?timeout_ms t P.Health with
  | P.Health_status { degraded; reason; generation; doc_count } ->
    { degraded; reason; generation; doc_count }
  | _ -> unexpected "health"

let reload ?timeout_ms ?path t =
  match roundtrip ?timeout_ms t (P.Reload path) with
  | P.Reloaded { generation } -> generation
  | _ -> unexpected "reload"

let insert ?timeout_ms t xml =
  match roundtrip ?timeout_ms t (P.Insert { xml }) with
  | P.Inserted { id } -> id
  | _ -> unexpected "insert"

let delete ?timeout_ms t id =
  match roundtrip ?timeout_ms t (P.Delete { id }) with
  | P.Deleted { existed } -> existed
  | _ -> unexpected "delete"

let flush ?timeout_ms t =
  match roundtrip ?timeout_ms t P.Flush with
  | P.Flushed { generation } -> generation
  | _ -> unexpected "flush"

(* --- replication ----------------------------------------------------------- *)

type repl_state = {
  role : [ `Primary | `Follower ];
  epoch : int;
  durable : Xlog.Wal.position;
  repl_next_id : int;
  leader_hint : string;
  lag_records : int;
  lag_bytes : int;
}

let promote ?timeout_ms t =
  match roundtrip ?timeout_ms t P.Promote with
  | P.Promoted { epoch } -> epoch
  | _ -> unexpected "promote"

let repl_status ?timeout_ms t =
  match roundtrip ?timeout_ms t P.Repl_status with
  | P.Repl_state
      { role; epoch; durable; next_id; leader_hint; lag_records; lag_bytes } ->
    { role; epoch; durable; repl_next_id = next_id; leader_hint; lag_records;
      lag_bytes }
  | _ -> unexpected "repl_status"

(* --- snapshot transfer ----------------------------------------------------- *)

(* Stream the server's snapshot into [dir]'s staging area and commit it
   ([Xlog.Transfer.recv_finish]); the caller (or the next [Xlog.open_])
   installs it.  Resumes across transport failures from the receiver's
   own cursor; a token change (the server checkpointed meanwhile)
   restarts the staging from scratch. *)
let fetch_snapshot ?(timeout_ms = 0) t ~dir =
  if t.closed then raise (Protocol_error "connection is closed");
  let rv = ref (Xlog.Transfer.recv_create dir) in
  let token = ref "" in
  let rec attempt used =
    match
      let fd =
        match t.fd with
        | Some fd -> fd
        | None ->
          let fd = connect_fd ~timeout_ms:t.policy.connect_timeout_ms t.addr in
          t.fd <- Some fd;
          fd
      in
      set_io_timeout fd (if timeout_ms > 0 then timeout_ms else max_int);
      P.write_frame fd
        (P.encode_request
           (P.Fetch_snapshot
              { token = !token; cursor = Xlog.Transfer.recv_got !rv }));
      let rec read_chunks () =
        match P.read_frame fd with
        | Error P.Eof | Error P.Truncated ->
          raise (Transport "connection lost mid-transfer")
        | Error (P.Bad_header m) ->
          raise (Protocol_error ("bad response frame: " ^ m))
        | Ok frame -> (
          match P.decode_response frame with
          | Error m -> raise (Protocol_error ("malformed response: " ^ m))
          | Ok (P.Error { code; message }) ->
            raise (Server_error (code, message))
          | Ok (P.Snapshot_chunk { token = tk; offset; last; crc; data; _ })
            ->
            if not (String.equal tk !token) then begin
              (* A different snapshot than the one we were resuming:
                 discard partial state and restart under the new
                 token. *)
              token := tk;
              if Xlog.Transfer.recv_got !rv > 0 then begin
                Xlog.Transfer.recv_abort !rv;
                rv := Xlog.Transfer.recv_create dir
              end
            end;
            if offset <> Xlog.Transfer.recv_got !rv then
              raise
                (Protocol_error
                   (Printf.sprintf
                      "snapshot chunk at offset %d, expected %d" offset
                      (Xlog.Transfer.recv_got !rv)));
            if
              not
                (Int64.equal crc
                   (Xstorage.Store.checksum_string data 0
                      (String.length data)))
            then raise (Transport "snapshot chunk failed its checksum");
            (match Xlog.Transfer.recv_write !rv data with
            | Ok () -> ()
            | Error m -> raise (Protocol_error ("snapshot stream: " ^ m)));
            if last then
              match Xlog.Transfer.recv_finish !rv with
              | Ok () -> ()
              | Error m -> raise (Protocol_error ("snapshot verify: " ^ m))
            else read_chunks ()
          | Ok _ -> unexpected "fetch_snapshot")
      in
      read_chunks ()
    with
    | () ->
      t.prev_sleep_ms <- 0;
      Xlog.Transfer.recv_got !rv
    | exception e ->
      kill t;
      let retryable =
        match e with
        | Transport _ -> true
        | Unix.Unix_error (errno, _, _) -> retryable_errno errno
        | _ -> false
      in
      if retryable && used + 1 < t.policy.attempts then begin
        let sleep =
          Backoff.next t.policy.backoff t.rng ~prev_ms:t.prev_sleep_ms
        in
        t.prev_sleep_ms <- sleep;
        if sleep > 0 then Thread.delay (float_of_int sleep /. 1000.);
        attempt (used + 1)
      end
      else begin
        Xlog.Transfer.recv_abort !rv;
        match e with
        | Transport msg -> raise (Protocol_error msg)
        | e -> raise e
      end
  in
  attempt 0

let query_bounded ?(timeout_ms = 0) ~min_gen t xpath =
  match roundtrip ~timeout_ms t (P.Query_bounded { xpath; timeout_ms; min_gen }) with
  | P.Result { generation; ids } -> (generation, ids)
  | _ -> unexpected "query_bounded"

(* --- pipelining ------------------------------------------------------------ *)

let pipeline ?(timeout_ms = 0) t reqs =
  if t.closed then raise (Protocol_error "connection is closed");
  match reqs with
  | [] -> []
  | _ ->
    let fd =
      match t.fd with
      | Some fd -> fd
      | None ->
        let fd = connect_fd ~timeout_ms:t.policy.connect_timeout_ms t.addr in
        t.fd <- Some fd;
        fd
    in
    let timeout_ms =
      if timeout_ms > 0 then timeout_ms else t.policy.request_timeout_ms
    in
    set_io_timeout fd (if timeout_ms > 0 then timeout_ms else max_int);
    (* Single attempt, deliberately: once part of a burst may have
       reached the server, replaying it could duplicate non-idempotent
       requests, and a half-read response stream cannot be resumed.
       Any failure kills the connection and raises.  Responses come
       back through the incremental decoder over large reads — a burst
       costs one write and a handful of recvs, not 2 syscalls per
       frame. *)
    (match
       P.write_frame fd (String.concat "" (List.map P.encode_request reqs));
       let dec = P.Decoder.create () in
       let buf = Bytes.create 65536 in
       let rec read_response () =
         match P.Decoder.next dec with
         | P.Decoder.Frame frame -> (
           match P.decode_response frame with
           | Error m -> raise (Protocol_error ("malformed response: " ^ m))
           | Ok resp -> resp)
         | P.Decoder.Corrupt m ->
           raise (Protocol_error ("bad response frame: " ^ m))
         | P.Decoder.Need_more -> (
           match Xfault.Io.recv fd buf 0 (Bytes.length buf) with
           | 0 ->
             raise
               (Transport
                  (if P.Decoder.buffered dec = 0 then
                     "server closed the connection"
                   else "truncated response frame"))
           | n ->
             P.Decoder.feed dec buf 0 n;
             read_response ()
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_response ())
       in
       List.map (fun _ -> read_response ()) reqs
     with
     | resps -> resps
     | exception e ->
       kill t;
       (match e with
        | Transport msg -> raise (Protocol_error msg)
        | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          when timeout_ms > 0 ->
          raise
            (Timeout
               (Printf.sprintf "deadline of %dms expired mid-pipeline"
                  timeout_ms))
        | e -> raise e))

let query_pipeline ?(timeout_ms = 0) t xpaths =
  let reqs = List.map (fun xpath -> P.Query { xpath; timeout_ms }) xpaths in
  List.map
    (function
      | P.Result { ids; _ } -> ids
      | P.Error { code; message } -> raise (Server_error (code, message))
      | _ -> unexpected "query")
    (pipeline ~timeout_ms t reqs)

let with_connection ?policy ?seed addr f =
  let t = connect ?policy ?seed addr in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
