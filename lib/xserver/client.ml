module P = Protocol

exception Server_error of P.error_code * string
exception Protocol_error of string

type t = { fd : Unix.file_descr; mutable closed : bool }

let connect (addr : Server.addr) =
  match addr with
  | Server.Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ ->
        (try (Unix.gethostbyname host).Unix.h_addr_list.(0)
         with Not_found -> Unix.inet_addr_loopback)
    in
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (inet, port))
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    { fd; closed = false }
  | Server.Unix_sock path ->
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    { fd; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let roundtrip t req =
  if t.closed then raise (Protocol_error "connection is closed");
  P.write_frame t.fd (P.encode_request req);
  match P.read_frame t.fd with
  | Error P.Eof -> raise (Protocol_error "server closed the connection")
  | Error P.Truncated -> raise (Protocol_error "truncated response frame")
  | Error (P.Bad_header m) -> raise (Protocol_error ("bad response frame: " ^ m))
  | Ok frame ->
    (match P.decode_response frame with
     | Error m -> raise (Protocol_error ("malformed response: " ^ m))
     | Ok (P.Error { code; message }) -> raise (Server_error (code, message))
     | Ok resp -> resp)

let unexpected what = raise (Protocol_error ("unexpected response to " ^ what))

let ping t = match roundtrip t P.Ping with P.Pong -> () | _ -> unexpected "ping"

let query_full ?(timeout_ms = 0) t xpath =
  match roundtrip t (P.Query { xpath; timeout_ms }) with
  | P.Result { generation; ids } -> (generation, ids)
  | _ -> unexpected "query"

let query ?timeout_ms t xpath = snd (query_full ?timeout_ms t xpath)

let query_batch ?(timeout_ms = 0) t xpaths =
  match roundtrip t (P.Query_batch { xpaths; timeout_ms }) with
  | P.Batch_result { ids; _ } -> ids
  | _ -> unexpected "query_batch"

let stats t =
  match roundtrip t P.Stats with
  | P.Stats_json s -> s
  | _ -> unexpected "stats"

let reload ?path t =
  match roundtrip t (P.Reload path) with
  | P.Reloaded { generation } -> generation
  | _ -> unexpected "reload"

let insert t xml =
  match roundtrip t (P.Insert { xml }) with
  | P.Inserted { id } -> id
  | _ -> unexpected "insert"

let delete t id =
  match roundtrip t (P.Delete { id }) with
  | P.Deleted { existed } -> existed
  | _ -> unexpected "delete"

let flush t =
  match roundtrip t P.Flush with
  | P.Flushed { generation } -> generation
  | _ -> unexpected "flush"

let with_connection addr f =
  let t = connect addr in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
