(** The xseq wire protocol: versioned, length-prefixed binary frames.

    Every message — request or response — is one frame:

    {v
      offset  size  field
      0       2     magic "xQ"
      2       1     protocol version (2)
      3       1     opcode (requests 0x00-0x7F, responses 0x80-0xFF)
      4       4     payload length, u32 LE, at most {!max_payload}
      8       len   payload (opcode-specific, little-endian throughout)
    v}

    Strings serialise as [u32 length + bytes].  Document ids — and the
    doc-count gauge — are [u64] since version 2: a sharded store tags
    the shard index into bits 52+ of every id, far beyond u32 (this is
    the version-1 → 2 change; counts, generations and timeouts remain
    u32).  Id lists serialise as [u32 count + count × u64].  Decoding
    is defensive end to end: every
    read is bounds-checked, every frame must be consumed exactly, and
    malformed input of any shape — bad magic, unknown version or opcode,
    a length field larger than the cap or than the data, truncation at
    any byte, trailing bytes — yields [Error], never an exception.  The
    server answers a [Bad_request]/[Frame_too_large] error frame (or
    closes) on such input; it never lets it reach the accept loop. *)

val magic : string
(** ["xQ"] — two bytes. *)

val version : int
(** Current protocol version (2 — version 1 carried u32 document ids,
    too narrow for shard-tagged ids). *)

val header_size : int
(** Bytes before the payload (8). *)

val max_payload : int
(** Hard cap on a frame payload (16 MiB).  Frames announcing more are
    rejected without allocating. *)

type error_code =
  | Bad_request  (** unparsable frame or XPath *)
  | Overloaded  (** admission control rejected the request *)
  | Timeout  (** the per-request deadline expired before execution *)
  | Server_error  (** unexpected failure while serving the request *)
  | Degraded
      (** the store's write path is out of service (disk fault); queries
          still work — retrying the write without operator action is
          useless until {!response.Health_status} clears *)
  | Unsupported
      (** well-formed frame, but an opcode this build does not dispatch
          — the connection stays open *)
  | Not_primary
      (** a mutation (or bounded-staleness read it cannot satisfy)
          reached a replication follower: the message carries the leader
          endpoint hint ("" if unknown) — chase it, don't retry here *)
  | Pruned
      (** a [Subscribe] position older than the oldest retained WAL
          file: byte replay cannot reach it, the follower must re-seed
          from a snapshot.  The message names the earliest position. *)

val error_code_to_string : error_code -> string

type request =
  | Ping
  | Query of { xpath : string; timeout_ms : int }
      (** [timeout_ms = 0] means no deadline. *)
  | Query_batch of { xpaths : string array; timeout_ms : int }
  | Stats  (** metrics registry as JSON *)
  | Reload of string option
      (** hot-swap the served index: [Some path] loads a new snapshot,
          [None] refreshes the server's configured source *)
  | Insert of { xml : string }
      (** live ingestion: parse one XML document and insert it into the
          served [Xlog] store (an error on frozen backends) *)
  | Delete of { id : int }  (** tombstone a live document *)
  | Flush  (** seal the memtable and fsync the WAL *)
  | Health
      (** liveness + degradation probe: always answered, even (and
          especially) while the write path is down *)
  | Subscribe of { epoch : int; pos : Xlog.Wal.position }
      (** replication: stream committed WAL records from [pos] (the
          follower's own log end).  [epoch] is the highest primary
          epoch the subscriber has seen — a primary receiving a higher
          one knows it was deposed and steps down (fencing).  The
          connection leaves the request/response model: the server
          pushes {!response.Wal_batch} / {!response.Repl_heartbeat}
          frames indefinitely, and the only frame the subscriber may
          send is {!Wal_ack}. *)
  | Wal_ack of { pos : Xlog.Wal.position }
      (** one-way (no response): the subscriber durably applied the
          stream up to [pos] — what semi-synchronous mutation
          acknowledgement waits for *)
  | Promote
      (** make this follower the primary: bump the epoch, flip the role,
          start accepting mutations.  Idempotent on a primary. *)
  | Repl_status  (** replication role/epoch/position probe *)
  | Query_bounded of { xpath : string; timeout_ms : int; min_gen : int }
      (** bounded-staleness read: answer only if this node has applied
          at least [min_gen] document ids (a follower behind that — or
          asked for data it may not have yet — answers
          {!error_code.Not_primary} with the leader hint so the client
          can redirect) *)
  | Fetch_snapshot of { token : string; cursor : int }
      (** snapshot transfer: stream the serving store's latest durable
          snapshot (checkpoint + base files + retained WAL) from byte
          [cursor] of the transfer stream.  The server pushes
          {!response.Snapshot_chunk} frames until the stream ends, under
          the same write-side backpressure as every other push.  [token]
          identifies the snapshot being resumed ([""] on a first fetch);
          a server whose current snapshot differs answers with its own
          token and a chunk at offset 0 — the client must discard
          partial state and restart *)
  | Unknown of { op : int }
      (** a {e well-formed} frame whose request opcode this build does
          not know.  Decoding yields this rather than [Error] so the
          server can answer {!error_code.Unsupported} and keep the
          connection — forward compatibility with newer clients.  The
          payload is opaque and not validated.  [encode_request] on it
          emits an empty payload (test use). *)

type response =
  | Pong
  | Result of { generation : int; ids : int list }
  | Batch_result of { generation : int; ids : int list array }
  | Stats_json of string
  | Reloaded of { generation : int }
  | Error of { code : error_code; message : string }
  | Inserted of { id : int }  (** the stable id the document got *)
  | Deleted of { existed : bool }
      (** [false]: the id was never allocated or already tombstoned *)
  | Flushed of { generation : int }
      (** structure generation after the seal *)
  | Health_status of {
      degraded : bool;
      reason : string;  (** "" when healthy; the failing op + errno else *)
      generation : int;
      doc_count : int;
    }  (** answer to {!request.Health} *)
  | Wal_batch of {
      epoch : int;  (** the sending primary's epoch — a follower refuses
                        batches from a lower epoch than it has seen *)
      from : Xlog.Wal.position;  (** where these records start *)
      next : Xlog.Wal.position;  (** resume position just past them; a
                                     later file than [from] mirrors a
                                     rotation *)
      count : int;  (** records in [records] *)
      records : string;  (** raw WAL record bytes, checksums included *)
    }  (** one {!Xlog.Wal.tail} batch pushed to a subscriber *)
  | Repl_heartbeat of {
      epoch : int;
      durable : Xlog.Wal.position;  (** primary's fsynced log end *)
      next_id : int;  (** primary's id watermark — the generation a
                          bounded-staleness client pins reads to *)
    }  (** pushed on an idle subscription so followers can tell a quiet
          primary from a dead one *)
  | Promoted of { epoch : int }  (** answer to {!request.Promote} *)
  | Repl_state of {
      role : [ `Primary | `Follower ];
      epoch : int;
      durable : Xlog.Wal.position;
      next_id : int;
      leader_hint : string;  (** endpoint of the known primary, "" if
                                 this node is it or none is known *)
      lag_records : int;
          (** WAL records this node trails its primary's durable
              position by (0 on a primary) *)
      lag_bytes : int;  (** same lag in bytes *)
    }  (** answer to {!request.Repl_status} *)
  | Snapshot_chunk of {
      token : string;
          (** identity of the snapshot this chunk belongs to; changes
              when the primary checkpoints mid-transfer — a client
              holding a different token must restart from offset 0 *)
      total : int;  (** total bytes in the transfer stream *)
      offset : int;  (** where [data] sits in the stream *)
      last : bool;  (** final chunk of the stream *)
      crc : int64;  (** FNV-1a 64 of [data] — transport-level check;
                        the installed files re-verify their own
                        checksums end to end *)
      data : string;
    }  (** one slice of a snapshot transfer ({!request.Fetch_snapshot}) *)

(** {1 Codec} *)

val encode_request : request -> string
(** The complete frame, header included. *)

val encode_response : response -> string

val encode_response_iov : response -> string list
(** The same frame as {!encode_response}, but as an iovec-style buffer
    list — header and payload as separate slices, no concatenation copy
    — for vectored writes ({!Xutil.Evloop.writev}).  Invariant:
    [String.concat "" (encode_response_iov r) = encode_response r]. *)

val decode_request : string -> (request, string) result
(** Decodes one complete frame.  [Error msg] describes the first defect
    (bad magic, bad version, response opcode in a request, length lies,
    truncation, trailing bytes, …). *)

val decode_response : string -> (response, string) result

(** {1 Framed I/O}

    Blocking helpers over [Unix] file descriptors, used by both the
    server's connection loops and the client library.  Socket reads and
    writes go through the {!Xfault.Io} shim ([Recv]/[Send] classes), so
    fault schedules can stall, shorten or reset protocol traffic;
    [EINTR] and short counts are absorbed here. *)

type read_error =
  | Eof  (** clean end of stream before any byte of a frame *)
  | Truncated  (** end of stream inside a frame *)
  | Bad_header of string  (** bad magic / version / oversized length *)

val read_frame : Unix.file_descr -> (string, read_error) result
(** Reads exactly one frame (header + payload).  The header is validated
    {e before} the payload is allocated, so a hostile length field never
    costs more than {!header_size} bytes of reading. *)

val write_frame : Unix.file_descr -> string -> unit
(** Writes the whole string, looping over partial writes.
    @raise Unix.Unix_error as the underlying writes do. *)

(** {1 Incremental decoding}

    The event-driven server (and any pipelining peer) cannot block for
    a whole frame: bytes arrive whenever the socket has them, frames
    end wherever the length prefix says.  {!Decoder} is the resumable
    form of {!read_frame}: feed it whatever slice just arrived, then
    pull zero or more complete frames out.  Defensive exactly like the
    one-shot path — the header is validated the moment its 8 bytes are
    buffered (a hostile length field never costs a payload allocation),
    and no input of any shape raises. *)

module Decoder : sig
  type item =
    | Need_more  (** no complete frame buffered; feed more bytes *)
    | Frame of string
        (** one complete frame, header included — exactly what
            {!decode_request} / {!decode_response} consume and what the
            blocking {!read_frame} would have returned *)
    | Corrupt of string
        (** bad magic, unknown version, or a length field beyond
            {!max_payload}: the stream cannot be resynchronised.
            Sticky — every later {!next} repeats it. *)

  type t

  val create : unit -> t

  val feed : t -> Bytes.t -> int -> int -> unit
  (** [feed t buf off len] appends the slice.  Bytes fed after the
      decoder turned [Corrupt] are discarded.
      @raise Invalid_argument on an out-of-bounds slice (caller bug,
      not wire input). *)

  val feed_string : t -> string -> int -> int -> unit

  val next : t -> item
  (** Extract the next complete frame.  Call repeatedly until
      [Need_more] — several frames fed in one slice (a pipelining
      client) come out one by one, byte-for-byte in arrival order. *)

  val buffered : t -> int
  (** Bytes fed but not yet consumed as frames (partial frame tail). *)
end
