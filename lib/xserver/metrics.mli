(** The server-side metrics registry: request counters by operation,
    latency histogram, byte accounting, plan-cache and matcher counters.

    One registry per server, shared by every connection thread and worker
    domain behind a single mutex (counter bumps are nanoseconds next to
    query execution).  The [Stats] wire op and [xseq serve
    --metrics-interval] both render {!to_json}. *)

type t

val create : unit -> t

(** {1 Recording} *)

val record_request : t -> op:string -> latency_s:float -> unit
(** Counts one completed request of kind [op] ("ping", "query",
    "query_batch", "stats", "reload") and files its latency into the
    histogram. *)

val record_error : t -> code:string -> unit
(** Counts one error frame sent, by {!Protocol.error_code_to_string}. *)

val add_bytes : t -> received:int -> sent:int -> unit
val connection_opened : t -> unit
val connection_closed : t -> unit

val merge_matcher : t -> Xquery.Matcher.stats -> unit
(** Folds one request's private matcher counters into the registry via
    {!Xquery.Matcher.merge_stats}. *)

val add_pager_io : t -> reads:int -> hits:int -> unit
(** Buffer-pool page accounting for paged indexes. *)

(** {1 Reading} *)

val requests_total : t -> int
val requests_by_op : t -> (string * int) list
val errors_total : t -> int
val active_connections : t -> int

val latency_buckets : t -> (float * int) list
(** Cumulative [(upper_bound_ms, count)] pairs, last bound is
    [infinity] — Prometheus-style. *)

val to_json :
  ?extra:(string * string) list -> t -> string
(** The whole registry as one JSON object (counters, per-op requests,
    error counts, latency histogram, matcher totals, byte and connection
    accounting).  [extra] appends caller fields — the server injects
    [generation], plan-cache hit/miss counts and uptime; values must
    already be valid JSON. *)
