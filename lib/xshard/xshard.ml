module Pattern = Xquery.Pattern
module Matcher = Xquery.Matcher
module Domain_pool = Xutil.Domain_pool
module F = Xfault

exception Shard_down of int * string

(* ---------- Id encoding ----------------------------------------------- *)

(* Local ids live in the low 52 bits, the shard tag above them.  OCaml's
   native int leaves 62 usable bits, so the tag has 10 of them — 1024
   shards, far beyond what one process wants.  Shard-major encoding is
   what makes scatter-gather merge-free: per-shard answers are sorted in
   local id order, and prefixing the shard tag preserves that order
   while making shard 0's ids all smaller than shard 1's. *)

let local_bits = 52
let shard_bits = 10
let max_shards = 1 lsl shard_bits
let local_mask = (1 lsl local_bits) - 1
let encode_id ~shard ~local = (shard lsl local_bits) lor local
let shard_of_id id = id lsr local_bits
let local_of_id id = id land local_mask

(* ---------- Routing ---------------------------------------------------- *)

(* A murmur-style finalizer over the insert sequence number: stateless,
   deterministic, and avalanching enough that consecutive sequence
   numbers spread evenly over any shard count.  Native-int wraparound is
   fine for a hash. *)
let mix x =
  let x = x lxor (x lsr 33) in
  let x = x * 0xff51afd7ed558cc in
  let x = x lxor (x lsr 29) in
  let x = x * 0xc4ceb9fe1a85ec5 in
  (x lxor (x lsr 32)) land max_int

(* ---------- Store ------------------------------------------------------ *)

type opts = {
  sync_every : int option;
  memtable_limit : int option;
  max_segments : int option;
  config : Xseq.config option;
  probe_interval : float option;
}

type shard_state = {
  index : int;
  mutable log : Xlog.t;
  mutable down : string option;
  mutable gen_cache : int;
      (* last generation observed while live, reported while down *)
}

type t = {
  k : int;
  dir : string;
  shards : shard_state array;
  seq : int Atomic.t; (* routing sequence: one per insert attempt *)
  pool : Domain_pool.t option;
  owned_pool : Domain_pool.t option; (* shut down by [close]/[abandon] *)
  opts : opts;
  recovery : (int * Xlog.recovery) list;
  m : Mutex.t; (* shard up/down transitions only — never held during I/O *)
}

let meta_name = "xshard.meta"
let meta_path dir = Filename.concat dir meta_name
let shard_dir dir i = Filename.concat dir (Printf.sprintf "shard-%03d" i)
let is_sharded_dir dir = Sys.file_exists (meta_path dir)

(* The meta file records the shard count, fixed at creation: routing and
   id decoding both depend on it, so it is written once, durably
   (tmp + fsync + rename), and re-read on every open. *)
let write_meta dir k =
  let tmp = meta_path dir ^ ".tmp" in
  let payload = Printf.sprintf "xshard 1 %d\n" k in
  let fd = F.Io.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let len = String.length payload in
      let written = ref 0 in
      while !written < len do
        written :=
          !written + F.Io.write_substring fd payload !written (len - !written)
      done;
      F.Io.fsync fd);
  F.Io.rename tmp (meta_path dir)

let read_meta dir =
  let fd = F.Io.openfile (meta_path dir) [ O_RDONLY ] 0o644 in
  let buf = Bytes.create 64 in
  let n =
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () -> F.Io.read fd buf 0 (Bytes.length buf))
  in
  let line = String.trim (Bytes.sub_string buf 0 n) in
  match String.split_on_char ' ' line with
  | [ "xshard"; "1"; k ] -> (
    match int_of_string_opt k with
    | Some k when k >= 1 && k <= max_shards -> k
    | _ ->
      invalid_arg
        (Printf.sprintf "Xshard.open_: corrupt shard count in %s: %S"
           (meta_path dir) line))
  | _ ->
    invalid_arg
      (Printf.sprintf "Xshard.open_: unrecognised meta file %s: %S"
         (meta_path dir) line)

let open_ ?shards ?sync_every ?memtable_limit ?max_segments ?domains ?pool
    ?config ?probe_interval dir =
  let opts = { sync_every; memtable_limit; max_segments; config; probe_interval } in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let k =
    if is_sharded_dir dir then begin
      let recorded = read_meta dir in
      (match shards with
      | Some s when s <> recorded ->
        invalid_arg
          (Printf.sprintf
             "Xshard.open_: directory has %d shards, %d requested" recorded s)
      | _ -> ());
      recorded
    end
    else begin
      let k = Option.value shards ~default:1 in
      if k < 1 || k > max_shards then
        invalid_arg
          (Printf.sprintf "Xshard.open_: shards must be in [1, %d]" max_shards);
      write_meta dir k;
      k
    end
  in
  (* One pool shared by every shard: per-shard builds and compactions
     are independent, so a common pool keeps the domain count bounded
     by the machine, not by the shard count. *)
  let owned_pool =
    match (pool, domains) with
    | None, Some d when d > 1 -> Some (Domain_pool.create ~domains:d ())
    | _ -> None
  in
  let pool = match pool with Some _ -> pool | None -> owned_pool in
  let open_shard i =
    Xlog.open_ ?sync_every ?memtable_limit ?max_segments ?pool ?config
      ?probe_interval (shard_dir dir i)
  in
  let shards_arr =
    Array.init k (fun i ->
        let log = open_shard i in
        { index = i; log; down = None; gen_cache = Xlog.generation log })
  in
  let recovery =
    Array.to_list
      (Array.map (fun sh -> (sh.index, Xlog.recovery sh.log)) shards_arr)
  in
  (* The routing sequence is seeded from the total successful inserts
     (= sum of per-shard next ids).  After an in-flight degraded attempt
     the in-memory counter can run ahead of this sum; re-seeding on open
     merely shifts which shard future documents land on, never which
     shard an existing id decodes to. *)
  let seq =
    Array.fold_left (fun acc sh -> acc + Xlog.next_id sh.log) 0 shards_arr
  in
  {
    k;
    dir;
    shards = shards_arr;
    seq = Atomic.make seq;
    pool;
    owned_pool;
    opts;
    recovery;
    m = Mutex.create ();
  }

let shard_count t = t.k
let dir t = t.dir
let recovery t = t.recovery
let next_seq t = Atomic.get t.seq
let route_of_seq t seq = if t.k = 1 then 0 else mix seq mod t.k
let next_route t = route_of_seq t (Atomic.get t.seq)

let mark_down t i reason =
  Mutex.protect t.m (fun () ->
      let sh = t.shards.(i) in
      if sh.down = None then begin
        sh.down <- Some reason;
        (* The handle is a corpse (fail-stop semantics): release its
           fds without any disk I/O, exactly [Xlog.abandon]'s job. *)
        (try Xlog.abandon sh.log with _ -> ())
      end)

(* Run [f] against a live shard, converting a fail-stop into the
   engine-level down state: after [Xfault.Crashed] the shard's handle
   can no longer be trusted with I/O, so it is abandoned and every
   later operation routed to it raises [Shard_down] until
   [recover_shard] re-opens it from disk. *)
let with_shard t i f =
  let sh = t.shards.(i) in
  match sh.down with
  | Some reason -> raise (Shard_down (i, reason))
  | None -> (
    try f sh.log
    with F.Crashed ->
      mark_down t i "fail-stop (crashed)";
      raise F.Crashed)

let insert t doc =
  let seq = Atomic.fetch_and_add t.seq 1 in
  let s = route_of_seq t seq in
  let local = with_shard t s (fun log -> Xlog.insert log doc) in
  encode_id ~shard:s ~local

(* Sequential fallback and pool path share one shape: thunks that never
   raise (they park their exception), so a failing shard never prevents
   the other shards' share of the batch from completing. *)
let run_all ?pool thunks =
  match pool with
  | Some p when Domain_pool.size p > 1 -> ignore (Domain_pool.run p thunks)
  | _ -> Array.iter (fun f -> f ()) thunks

let insert_batch ?pool t docs =
  let pool = match pool with Some _ -> pool | None -> t.pool in
  let n = Array.length docs in
  if n = 0 then [||]
  else begin
    let base = Atomic.fetch_and_add t.seq n in
    let ids = Array.make n (-1) in
    let groups = Array.make t.k [] in
    for i = n - 1 downto 0 do
      let s = route_of_seq t (base + i) in
      groups.(s) <- i :: groups.(s)
    done;
    let errors = Array.make t.k None in
    let thunks =
      Array.of_list
        (List.filter_map
           (fun sh ->
             let positions = groups.(sh.index) in
             if positions = [] then None
             else
               Some
                 (fun () ->
                   try
                     with_shard t sh.index (fun log ->
                         List.iter
                           (fun pos ->
                             ids.(pos) <-
                               encode_id ~shard:sh.index
                                 ~local:(Xlog.insert log docs.(pos)))
                           positions)
                   with e -> errors.(sh.index) <- Some e))
           (Array.to_list t.shards))
    in
    run_all ?pool thunks;
    (match Array.find_map Fun.id errors with Some e -> raise e | None -> ());
    ids
  end

let remove t id =
  let s = shard_of_id id in
  if s < 0 || s >= t.k then false
  else with_shard t s (fun log -> Xlog.remove log (local_of_id id))

let iter_live t f =
  Array.iter (fun sh -> if sh.down = None then f sh) t.shards

let flush t = iter_live t (fun sh -> with_shard t sh.index Xlog.flush)
let sync t = iter_live t (fun sh -> with_shard t sh.index Xlog.sync)

let compact ?wait t =
  let all = ref true in
  iter_live t (fun sh ->
      if not (with_shard t sh.index (fun log -> Xlog.compact ?wait log)) then
        all := false);
  !all

(* ---------- Queries ---------------------------------------------------- *)

type 'a partial = {
  value : 'a;
  complete : bool;
  failed_shards : (int * string) list;
}

let encode_all shard locals =
  List.map (fun local -> encode_id ~shard ~local) locals

(* Scatter-gather core: run [f] against every shard, skipping (and
   reporting) the down ones; a [Crashed] raised mid-query also lands in
   [failed_shards] rather than aborting the surviving shards' answers.
   Answers concatenate in shard order, which is global id order. *)
let gather t f =
  let failed = ref [] in
  let per_shard =
    Array.map
      (fun sh ->
        match sh.down with
        | Some reason ->
          failed := (sh.index, reason) :: !failed;
          None
        | None -> (
          try Some (f sh)
          with F.Crashed ->
            mark_down t sh.index "fail-stop (crashed)";
            failed := (sh.index, "fail-stop (crashed)") :: !failed;
            None))
      t.shards
  in
  let failed = List.rev !failed in
  (per_shard, { value = (); complete = failed = []; failed_shards = failed })

let query_detail ?stats t pat =
  let per_shard, p =
    gather t (fun sh -> encode_all sh.index (Xlog.query ?stats sh.log pat))
  in
  let value =
    List.concat_map (function Some l -> l | None -> []) (Array.to_list per_shard)
  in
  { p with value }

let query ?stats t pat = (query_detail ?stats t pat).value

let query_xpath ?stats t expr =
  query ?stats t (Xquery.Xpath_parser.parse expr)

let query_batch_detail ?pool ?stats t pats =
  let pool = match pool with Some _ -> pool | None -> t.pool in
  let npat = Array.length pats in
  (* One task per shard, not per pattern: a task answers the whole batch
     against its shard with a private stats record, merged once at the
     end — the per-worker-then-merge discipline of [Matcher], with no
     lock anywhere on the per-query path. *)
  let answers : int list array option array = Array.make t.k None in
  let merged : Matcher.stats array = Array.init t.k (fun _ -> Matcher.create_stats ()) in
  let failed = ref [] in
  let fm = Mutex.create () in
  let thunks =
    Array.map
      (fun sh ->
        fun () ->
         match sh.down with
         | Some reason ->
           Mutex.protect fm (fun () ->
               failed := (sh.index, reason) :: !failed)
         | None -> (
           let own = merged.(sh.index) in
           try
             answers.(sh.index) <-
               Some
                 (Array.map
                    (fun pat ->
                      encode_all sh.index (Xlog.query ~stats:own sh.log pat))
                    pats)
           with F.Crashed ->
             mark_down t sh.index "fail-stop (crashed)";
             Mutex.protect fm (fun () ->
                 failed := (sh.index, "fail-stop (crashed)") :: !failed)))
      t.shards
  in
  run_all ?pool thunks;
  (match stats with
  | None -> ()
  | Some into -> Array.iter (fun s -> Matcher.merge_stats ~into s) merged);
  let value =
    Array.init npat (fun q ->
        List.concat_map
          (function Some per_pat -> per_pat.(q) | None -> [])
          (Array.to_list answers))
  in
  let failed = List.sort compare !failed in
  { value; complete = failed = []; failed_shards = failed }

let query_batch ?pool ?stats t pats =
  (query_batch_detail ?pool ?stats t pats).value

(* ---------- Prepared queries ------------------------------------------- *)

let shard_gen sh =
  match sh.down with
  | Some _ -> sh.gen_cache
  | None ->
    let g = Xlog.generation sh.log in
    sh.gen_cache <- g;
    g

let generation t = Array.fold_left (fun acc sh -> acc + shard_gen sh) 0 t.shards

type prepared = { plans : Xlog.prepared option array; gen : int }

let prepare t pat =
  let plans =
    Array.map
      (fun sh ->
        match sh.down with
        | Some _ -> None
        | None -> Some (Xlog.prepare sh.log pat))
      t.shards
  in
  { plans; gen = generation t }

let run_prepared ?stats t prep =
  if prep.gen <> generation t then
    invalid_arg
      "Xshard.run_prepared: store structure changed since prepare \
       (re-prepare the pattern)";
  let per_shard, _ =
    gather t (fun sh ->
        match prep.plans.(sh.index) with
        | None -> []
        | Some plan ->
          encode_all sh.index (Xlog.run_prepared ?stats sh.log plan))
  in
  List.concat_map
    (function Some l -> l | None -> [])
    (Array.to_list per_shard)

(* ---------- Degradation and recovery ----------------------------------- *)

let down_shards t =
  Array.to_list t.shards
  |> List.filter_map (fun sh ->
         Option.map (fun r -> (sh.index, r)) sh.down)

let degraded_shards t =
  Array.to_list t.shards
  |> List.filter_map (fun sh ->
         match sh.down with
         | Some r -> Some (sh.index, "down: " ^ r)
         | None ->
           Option.map
             (fun r -> (sh.index, r))
             (Xlog.degraded_reason sh.log))

let recover_shard t i =
  if i < 0 || i >= t.k then invalid_arg "Xshard.recover_shard: no such shard";
  let sh = t.shards.(i) in
  match sh.down with
  | None -> Xlog.try_recover sh.log
  | Some _ -> (
    (* Re-open from disk: checkpoint load + WAL replay, exactly the
       crash-recovery path — acknowledged synced writes survive. *)
    try
      let log =
        Xlog.open_ ?sync_every:t.opts.sync_every
          ?memtable_limit:t.opts.memtable_limit
          ?max_segments:t.opts.max_segments ?pool:t.pool ?config:t.opts.config
          ?probe_interval:t.opts.probe_interval (shard_dir t.dir i)
      in
      Mutex.protect t.m (fun () ->
          sh.log <- log;
          sh.down <- None;
          sh.gen_cache <- Xlog.generation log);
      true
    with _ -> false)

let try_recover t =
  let ok = ref true in
  Array.iter
    (fun sh -> if not (recover_shard t sh.index) then ok := false)
    t.shards;
  !ok

(* ---------- Introspection / lifecycle ----------------------------------- *)

type shard_info = {
  shard : int;
  docs : int;
  pending : int;
  segments : int;
  tombstones : int;
  next_local_id : int;
  wal_offset : int;
  degraded : string option;
  down : string option;
}

let shard_infos t =
  Array.map
    (fun sh ->
      (* Down shards still answer the in-memory counters (the abandoned
         handle keeps its view); guard anyway so introspection never
         raises. *)
      let read f d = try f sh.log with _ -> d in
      {
        shard = sh.index;
        docs = read Xlog.doc_count 0;
        pending = read Xlog.pending 0;
        segments = read Xlog.segments 0;
        tombstones = read Xlog.tombstones 0;
        next_local_id = read Xlog.next_id 0;
        wal_offset = read Xlog.wal_offset 0;
        degraded = (match sh.down with Some _ -> None | None -> Xlog.degraded_reason sh.log);
        down = sh.down;
      })
    t.shards

let doc_count t =
  Array.fold_left
    (fun acc sh -> acc + (try Xlog.doc_count sh.log with _ -> 0))
    0 t.shards

let close t =
  iter_live t (fun sh -> Xlog.close sh.log);
  match t.owned_pool with Some p -> Domain_pool.shutdown p | None -> ()

let abandon t =
  Array.iter (fun sh -> try Xlog.abandon sh.log with _ -> ()) t.shards;
  match t.owned_pool with Some p -> Domain_pool.shutdown p | None -> ()
