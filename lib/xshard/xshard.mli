(** Shard-parallel engine: N independent {!Xlog} stores behind one
    hash-routed facade.

    A sharded store lives in a directory:

    {v
      xshard.meta      shard count, written once at creation (tmp+rename)
      shard-000/       a full Xlog store: WAL, delta segments, checkpoint
      shard-001/
      ...
    v}

    Each shard is a complete, independent {!Xlog.t} — its own WAL, its
    own memtable and delta segments, its own background compaction, its
    own degraded/read-only state.  Documents are routed to shards by a
    deterministic hash of the global insert sequence number, so load
    spreads evenly and the routing replays identically for a given
    operation history.  Shards are the unit of multicore scaling (each
    shard's write path and per-shard query work parallelise on the
    domain pool with no shared mutable state between shards) and, later,
    of multi-node distribution (ROADMAP item 4).

    {2 Id encoding}

    Global document ids carry the shard in their high bits:

    {v global = (shard lsl 52) lor local v}

    where [local] is the shard's own dense monotone {!Xlog} id.  Local
    ids stay monotone within a shard and the shard tag is the
    most-significant component, so the global id order is shard-major:
    concatenating per-shard sorted answers in shard order yields a
    globally sorted answer — scatter-gather needs no merge, exactly the
    monotone-id + sorted-concat design {!Xlog} uses for its segments.
    Ids are stable forever; a shard's tombstoned local ids are never
    reused, hence neither are global ids.

    {2 Failure semantics}

    A disk fault on one shard's WAL ([ENOSPC], [EIO]) degrades {e that
    shard only}: its mutations raise {!Xlog.Degraded} while its reads —
    and every other shard's reads and writes — keep working, and
    {!try_recover} re-arms it once the disk heals.  A fail-stopped
    shard (simulated power loss, {!Xfault.Crashed}) is marked {e down}:
    queries keep answering from the surviving shards and report the
    gap through the {!partial} flag, mutations routed to it raise
    {!Shard_down}, and {!recover_shard} re-opens it from disk (WAL
    replay) to re-arm it. *)

module Pattern = Xquery.Pattern

type t

exception Shard_down of int * string
(** An operation needed a shard that fail-stopped.  The payload is the
    shard index and the failure diagnostic.  Reads never raise this —
    they skip the shard and set {!partial.complete} to [false]. *)

(** {1 Id encoding} *)

val shard_bits : int
(** Bits reserved for the shard tag (above bit 52). *)

val max_shards : int
val encode_id : shard:int -> local:int -> int
val shard_of_id : int -> int
val local_of_id : int -> int

(** {1 Lifecycle} *)

val open_ :
  ?shards:int ->
  ?sync_every:int ->
  ?memtable_limit:int ->
  ?max_segments:int ->
  ?domains:int ->
  ?pool:Xutil.Domain_pool.t ->
  ?config:Xseq.config ->
  ?probe_interval:float ->
  string ->
  t
(** Opens (creating if needed) a sharded store.  On creation [shards]
    (default 1) fixes the shard count forever and is recorded in
    [xshard.meta]; re-opening reads the recorded count and rejects a
    conflicting explicit [shards] with [Invalid_argument].  The
    remaining options are per-shard {!Xlog.open_} options; [domains]
    (without an explicit [pool]) creates one shared pool that every
    shard's builds and compactions use, closed again by {!close}.
    Recovery opens every shard (checkpoint load + WAL replay). *)

val is_sharded_dir : string -> bool
(** Whether the directory carries an [xshard.meta] (i.e. {!open_}
    rather than {!Xlog.open_} should open it). *)

val shard_count : t -> int
val dir : t -> string

val recovery : t -> (int * Xlog.recovery) list
(** Per-shard recovery reports from {!open_}, shards that replayed
    nothing included. *)

val close : t -> unit
(** Closes every live shard (down shards are skipped).  Idempotent. *)

val abandon : t -> unit
(** Closes every shard handle without any disk I/O — the post-crash
    twin of {!close}, see {!Xlog.abandon}. *)

(** {1 Mutations} *)

val insert : t -> Xmlcore.Xml_tree.t -> int
(** Routes the document to [hash seq mod shards] and appends it to that
    shard's WAL.  Returns the global id.  @raise Xlog.Degraded if the
    target shard is read-only — no id is consumed (local ids are
    allocated by the successful append only; the routing sequence
    number is consumed by the attempt, a load-balancing detail);
    @raise Shard_down if it fail-stopped. *)

val insert_batch : ?pool:Xutil.Domain_pool.t -> t -> Xmlcore.Xml_tree.t array -> int array
(** Routes the whole batch, then appends each shard's share in parallel
    (per-shard WALs are independent).  Returns the global ids in input
    order.  All-or-error per shard: if a shard degrades mid-batch the
    whole call raises after the surviving shards finished their share —
    acknowledged appends are durable, re-inserting the failed documents
    is the caller's retry. *)

val remove : t -> int -> bool
(** Tombstones a global id on its shard.  [false] if the id's shard tag
    or local id was never allocated, or it is already removed.
    @raise Xlog.Degraded / @raise Shard_down as {!insert}. *)

val flush : t -> unit
(** {!Xlog.flush} on every live shard. *)

val sync : t -> unit

val compact : ?wait:bool -> t -> bool
(** Compacts every live shard; [true] if every live shard started (and
    with [wait] finished) one. *)

(** {1 Queries (scatter-gather)} *)

type 'a partial = {
  value : 'a;
  complete : bool;  (** no shard was skipped *)
  failed_shards : (int * string) list;  (** down shards skipped *)
}

val query : ?stats:Xquery.Matcher.stats -> t -> Pattern.t -> int list
(** Scatter to every live shard, gather by sorted concatenation of the
    per-shard answers (global ids, ascending).  Down shards are
    skipped; use {!query_detail} to observe the gap. *)

val query_detail :
  ?stats:Xquery.Matcher.stats -> t -> Pattern.t -> int list partial

val query_xpath : ?stats:Xquery.Matcher.stats -> t -> string -> int list

val query_batch :
  ?pool:Xutil.Domain_pool.t ->
  ?stats:Xquery.Matcher.stats ->
  t ->
  Pattern.t array ->
  int list array
(** Scatter-gather over patterns × shards: one task per shard answers
    the whole batch against that shard with worker-private matcher
    stats, tasks run on [pool] (inline without one), and per-pattern
    answers concatenate in shard order — already globally sorted.  The
    private stats are merged into [stats] once per shard, not per
    query. *)

val query_batch_detail :
  ?pool:Xutil.Domain_pool.t ->
  ?stats:Xquery.Matcher.stats ->
  t ->
  Pattern.t array ->
  int list array partial

(** {1 Prepared queries} *)

type prepared

val prepare : t -> Pattern.t -> prepared
(** One per-shard plan each, stamped with the combined generation.
    @raise Xquery.Instantiate.Too_many as {!Xlog.prepare}. *)

val run_prepared :
  ?stats:Xquery.Matcher.stats -> t -> prepared -> int list
(** @raise Invalid_argument if any shard's sealed structure changed
    since {!prepare} — re-prepare, as with {!Xlog.run_prepared}. *)

val generation : t -> int
(** Sum of the shard generations: strictly monotone, changes whenever
    any shard seals, compacts or re-opens — the plan-cache stamp. *)

(** {1 Degradation and recovery} *)

val degraded_shards : t -> (int * string) list
(** Shards currently refusing writes: read-only (degraded) or down,
    with their diagnostic. *)

val down_shards : t -> (int * string) list
(** Fail-stopped shards only. *)

val mark_down : t -> int -> string -> unit
(** Declares a shard fail-stopped (the engine also does this itself
    when a shard operation raises {!Xfault.Crashed}). *)

val try_recover : t -> bool
(** Probes every degraded shard ({!Xlog.try_recover}) and re-opens
    every down shard from disk.  [true] if every shard accepts writes
    on return. *)

val recover_shard : t -> int -> bool
(** Recovery for one shard: {!Xlog.try_recover} if degraded, re-open
    from disk if down.  [true] if that shard accepts writes. *)

(** {1 Introspection} *)

type shard_info = {
  shard : int;
  docs : int;
  pending : int;
  segments : int;
  tombstones : int;
  next_local_id : int;
  wal_offset : int;
  degraded : string option;
  down : string option;
}

val shard_infos : t -> shard_info array
val doc_count : t -> int  (** Live documents across all shards. *)

val next_seq : t -> int
(** Global insert sequence number the next {!insert} will route by. *)

val next_route : t -> int
(** The shard the next {!insert} will be routed to. *)

val route_of_seq : t -> int -> int
(** The routing function itself (deterministic, stateless). *)
