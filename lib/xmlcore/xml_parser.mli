(** A small, dependency-free XML parser.

    Covers the subset of XML needed for the paper's datasets: elements,
    attributes, character data, comments, CDATA sections, processing
    instructions, a (skipped) DOCTYPE declaration, the five predefined
    entities and numeric character references.

    Attributes become child elements tagged [@name] (see {!Xml_tree.attr});
    whitespace-only text between elements is dropped unless
    [keep_whitespace] is set. *)

exception Parse_error of { pos : int; line : int; msg : string }
(** Raised on malformed input, with a byte offset and 1-based line. *)

val parse_string : ?keep_whitespace:bool -> string -> Xml_tree.t
(** [parse_string s] parses one document and returns its root element.
    @raise Parse_error on malformed input or trailing garbage. *)

val parse_fragments : ?keep_whitespace:bool -> string -> Xml_tree.t list
(** [parse_fragments s] parses a sequence of sibling root elements, as in a
    concatenated record file (DBLP-style). *)
