type t = int

(* The intern table maps namespaced keys to ids.  Keys are the source
   string prefixed with a namespace marker byte: 'T' for tags, 'V' for
   values.  [names] keeps the reverse mapping; [kinds] records whether an
   id denotes a value.

   The table is written by every build and read by every query compile,
   potentially from different domains at once (e.g. `Xlog`'s background
   compaction building while server workers answer queries).  The read
   path is lock-free: lookups go against an immutable persistent-map
   snapshot published through an [Atomic.t], and the reverse arrays are
   themselves atomically published so a concurrent grow can never hand a
   reader a torn or stale-capacity array.  Only interning a genuinely
   new designator takes [m] — and interning is confined to sequential
   phases (DESIGN.md §9), so the hot parallel paths (query compilation's
   [find_value], the encoder's lookups) never contend on a mutex. *)

module SMap = Map.Make (String)

let map : int SMap.t Atomic.t = Atomic.make SMap.empty
let names : string array Atomic.t = Atomic.make (Array.make 1024 "")
let kinds : Bytes.t Atomic.t = Atomic.make (Bytes.make 1024 'T')
let next = Atomic.make 0

(* Serialises writers only; readers never touch it. *)
let m = Mutex.create ()

let grow id =
  let ns = Atomic.get names in
  let cap = Array.length ns in
  if id >= cap then begin
    let names' = Array.make (cap * 2) "" in
    Array.blit ns 0 names' 0 cap;
    Atomic.set names names';
    let kinds' = Bytes.make (cap * 2) 'T' in
    Bytes.blit (Atomic.get kinds) 0 kinds' 0 cap;
    Atomic.set kinds kinds'
  end

let intern kind s =
  let key = String.make 1 kind ^ s in
  (* Lock-free fast path: already interned. *)
  match SMap.find_opt key (Atomic.get map) with
  | Some id -> id
  | None ->
    Mutex.protect m (fun () ->
        (* Re-check under the lock: another writer may have won. *)
        match SMap.find_opt key (Atomic.get map) with
        | Some id -> id
        | None ->
          let id = Atomic.get next in
          grow id;
          (* Element writes land before the map publication below: the
             [Atomic.set] on [map] is a release, and a reader that finds
             [id] in the map acquired it — so it sees the name/kind. *)
          (Atomic.get names).(id) <- s;
          Bytes.set (Atomic.get kinds) id kind;
          Atomic.set map (SMap.add key id (Atomic.get map));
          Atomic.set next (id + 1);
          id)

let tag s = intern 'T' s
let value s = intern 'V' s
let char_value c = intern 'V' (String.make 1 c)
let find_value s = SMap.find_opt ("V" ^ s) (Atomic.get map)
let is_value d = Bytes.get (Atomic.get kinds) d = 'V'
let name d = (Atomic.get names).(d)
let equal (a : int) b = a = b
let compare (a : int) b = Stdlib.compare a b
let hash (d : int) = d
let to_int d = d
let count () = Atomic.get next

let pp ppf d =
  if is_value d then Format.fprintf ppf "v(%s)" (name d)
  else Format.pp_print_string ppf (name d)
