type t = int

(* The intern table maps namespaced keys to ids.  Keys are the source
   string prefixed with a namespace marker byte: 'T' for tags, 'V' for
   values.  [names] keeps the reverse mapping; [kinds] records whether an
   id denotes a value. *)

let table : (string, int) Hashtbl.t = Hashtbl.create 1024
let names : string array ref = ref (Array.make 1024 "")
let kinds : Bytes.t ref = ref (Bytes.make 1024 'T')
let next = ref 0

(* The table is written by every build and read by every query compile,
   potentially from different domains at once (e.g. `Xlog`'s background
   compaction building while server workers answer queries).  All table
   mutation and lookup goes through [m]; the reverse arrays stay
   lock-free on the read side because an id can only reach another
   thread through a synchronising channel (a published index, a compiled
   plan), which orders the array writes before the reads. *)
let m = Mutex.create ()

let locked f =
  Mutex.lock m;
  match f () with
  | v ->
    Mutex.unlock m;
    v
  | exception e ->
    Mutex.unlock m;
    raise e

let grow () =
  let cap = Array.length !names in
  if !next >= cap then begin
    let names' = Array.make (cap * 2) "" in
    Array.blit !names 0 names' 0 cap;
    names := names';
    let kinds' = Bytes.make (cap * 2) 'T' in
    Bytes.blit !kinds 0 kinds' 0 cap;
    kinds := kinds'
  end

let intern kind s =
  let key = String.make 1 kind ^ s in
  locked (fun () ->
      match Hashtbl.find_opt table key with
      | Some id -> id
      | None ->
        grow ();
        let id = !next in
        incr next;
        !names.(id) <- s;
        Bytes.set !kinds id kind;
        Hashtbl.add table key id;
        id)

let tag s = intern 'T' s
let value s = intern 'V' s
let char_value c = intern 'V' (String.make 1 c)
let find_value s = locked (fun () -> Hashtbl.find_opt table ("V" ^ s))
let is_value d = Bytes.get !kinds d = 'V'
let name d = !names.(d)
let equal (a : int) b = a = b
let compare (a : int) b = Stdlib.compare a b
let hash (d : int) = d
let to_int d = d
let count () = !next

let pp ppf d =
  if is_value d then Format.fprintf ppf "v(%s)" (name d)
  else Format.pp_print_string ppf (name d)
