(** Designators: interned symbols naming XML elements, attributes and values.

    The paper designates each element/attribute name by a {e designator}
    (e.g. [P] for [Project]) and each attribute value by a value designator
    derived by a hash function ([v1 = h("boston")], Section 2.1).  We intern
    both into small integers so that paths, sequences and index structures
    manipulate machine words only.

    Tags and values live in disjoint namespaces: [tag "x"] and [value "x"]
    are different designators.  Interning is global and append-only, which
    keeps designator identity stable across every index built in a process.

    {2 Thread-safety}

    Reads are lock-free: lookups ({!find_value}, {!name}, {!is_value},
    …) and re-interning an already-known designator go against an
    immutable snapshot published through an atomic, so query domains
    never contend on a lock.  Interning a {e new} designator serialises
    writers on a private mutex and atomically publishes the extended
    snapshot.  Determinism of the {e id assignment} still requires the
    phase discipline of DESIGN.md §9: [Xseq.build] pre-interns every
    designator in a deterministic sequential pass so that parallel
    phases only perform (now lock-free) lookups and label assignment is
    identical to the sequential build.  See DESIGN.md §14 for the
    snapshot design. *)

type t = private int

val tag : string -> t
(** [tag name] interns an element or attribute name. *)

val value : string -> t
(** [value text] interns an attribute/text value (the paper's [h(·)]
    option for value nodes). *)

val char_value : char -> t
(** [char_value c] interns a single character used by the text-sequence
    value representation (the paper's Index-Fabric-style option, where
    ["boston"] becomes [b,o,s,t,o,n]). *)

val find_value : string -> t option
(** [find_value text] is the designator previously interned by
    {!value}/{!char_value} for [text], or [None].  A pure lookup — never
    interns — so it is safe to call from concurrent query domains (where
    a probed value may legitimately be absent from every document). *)

val is_value : t -> bool
(** [is_value d] is [true] iff [d] was created by {!value} or
    {!char_value}. *)

val name : t -> string
(** [name d] is the source string of [d] (without namespace marker). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_int : t -> int
(** Stable integer identity of [d] within the current process. *)

val count : unit -> int
(** Number of designators interned so far. *)

val pp : Format.formatter -> t -> unit
(** Prints tags verbatim and values as [v(text)]. *)
