(** Designators: interned symbols naming XML elements, attributes and values.

    The paper designates each element/attribute name by a {e designator}
    (e.g. [P] for [Project]) and each attribute value by a value designator
    derived by a hash function ([v1 = h("boston")], Section 2.1).  We intern
    both into small integers so that paths, sequences and index structures
    manipulate machine words only.

    Tags and values live in disjoint namespaces: [tag "x"] and [value "x"]
    are different designators.  Interning is global and append-only, which
    keeps designator identity stable across every index built in a process.

    {2 Thread-safety}

    The intern table is {e not} synchronised: {!tag}, {!value} and
    {!char_value} may mutate it and must only be called while a single
    domain is running (parsing, index construction's sequential phases).
    Parallel phases — [Xseq.build]'s chunked encode and
    [Xseq.query_batch] — are arranged so that they never intern:
    construction pre-interns every designator in a deterministic
    sequential pass, and query instantiation uses the non-interning
    {!find_value} lookup.  Read-only accessors ({!name}, {!is_value},
    {!find_value}, …) are safe from any number of domains as long as no
    interning runs concurrently.  See DESIGN.md §9. *)

type t = private int

val tag : string -> t
(** [tag name] interns an element or attribute name. *)

val value : string -> t
(** [value text] interns an attribute/text value (the paper's [h(·)]
    option for value nodes). *)

val char_value : char -> t
(** [char_value c] interns a single character used by the text-sequence
    value representation (the paper's Index-Fabric-style option, where
    ["boston"] becomes [b,o,s,t,o,n]). *)

val find_value : string -> t option
(** [find_value text] is the designator previously interned by
    {!value}/{!char_value} for [text], or [None].  A pure lookup — never
    interns — so it is safe to call from concurrent query domains (where
    a probed value may legitimately be absent from every document). *)

val is_value : t -> bool
(** [is_value d] is [true] iff [d] was created by {!value} or
    {!char_value}. *)

val name : t -> string
(** [name d] is the source string of [d] (without namespace marker). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_int : t -> int
(** Stable integer identity of [d] within the current process. *)

val count : unit -> int
(** Number of designators interned so far. *)

val pp : Format.formatter -> t -> unit
(** Prints tags verbatim and values as [v(text)]. *)
