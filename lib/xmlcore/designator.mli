(** Designators: interned symbols naming XML elements, attributes and values.

    The paper designates each element/attribute name by a {e designator}
    (e.g. [P] for [Project]) and each attribute value by a value designator
    derived by a hash function ([v1 = h("boston")], Section 2.1).  We intern
    both into small integers so that paths, sequences and index structures
    manipulate machine words only.

    Tags and values live in disjoint namespaces: [tag "x"] and [value "x"]
    are different designators.  Interning is global and append-only, which
    keeps designator identity stable across every index built in a process. *)

type t = private int

val tag : string -> t
(** [tag name] interns an element or attribute name. *)

val value : string -> t
(** [value text] interns an attribute/text value (the paper's [h(·)]
    option for value nodes). *)

val char_value : char -> t
(** [char_value c] interns a single character used by the text-sequence
    value representation (the paper's Index-Fabric-style option, where
    ["boston"] becomes [b,o,s,t,o,n]). *)

val is_value : t -> bool
(** [is_value d] is [true] iff [d] was created by {!value} or
    {!char_value}. *)

val name : t -> string
(** [name d] is the source string of [d] (without namespace marker). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_int : t -> int
(** Stable integer identity of [d] within the current process. *)

val count : unit -> int
(** Number of designators interned so far. *)

val pp : Format.formatter -> t -> unit
(** Prints tags verbatim and values as [v(text)]. *)
