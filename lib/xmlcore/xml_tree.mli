(** The XML data model: ordered labelled trees with value leaves.

    Following the paper (Figure 1), an XML document/record is a tree whose
    internal nodes carry element or attribute designators and whose leaves
    may carry text values.  Attributes are normalised into child elements
    whose tag is the attribute name prefixed with ['@'], and their text
    into a {!Value} leaf, so the whole model is a single tree shape. *)

type t =
  | Element of Designator.t * t list
  | Value of string

val elt : string -> t list -> t
(** [elt name children] is [Element (Designator.tag name, children)]. *)

val attr : string -> string -> t
(** [attr name v] is the normalised form of an attribute:
    [Element (tag ("@" ^ name), [Value v])]. *)

val text : string -> t
(** [text v] is [Value v]. *)

val tag : t -> Designator.t
(** Tag of an element.  @raise Invalid_argument on a [Value]. *)

val children : t -> t list
(** Children of an element, [[]] for a value leaf. *)

val node_count : t -> int
(** Total number of nodes (elements and value leaves). *)

val depth : t -> int
(** Height of the tree; a single node has depth 1. *)

val max_fanout : t -> int
(** Largest number of children of any node. *)

val equal : t -> t -> bool
(** Ordered structural equality. *)

val isomorphic : t -> t -> bool
(** Unordered structural equality: trees are isomorphic when one can be
    obtained from the other by permuting sibling subtrees (Figure 5). *)

val has_identical_siblings : t -> bool
(** [true] iff some node has two children that are elements with the same
    tag — the condition under which set representation is ambiguous and a
    constraint such as {e forward prefix} is required (Section 2.3). *)

val canonical_sort : t -> t
(** Recursively sorts sibling subtrees by a canonical total order, producing
    a representative of the isomorphism class.  [isomorphic a b] iff
    [equal (canonical_sort a) (canonical_sort b)]. *)

val sort_by_tag : t -> t
(** Recursively {e stable}-sorts siblings by their tag designator only
    (value leaves sort before elements, by their text).  Unlike
    {!canonical_sort} the subtree contents do not influence the order, so
    a pattern and any document embedding it sort their common tags the
    same way — the property the depth-first (ViST-style) query pipeline
    relies on. *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over every node of the tree. *)

val compare : t -> t -> int
(** Total order compatible with {!equal}. *)

val pp : Format.formatter -> t -> unit
(** Compact one-line rendering, e.g. [P(R(L("boston")))]. *)
