(** Serialisation of {!Xml_tree.t} back to XML text.

    [@name]-tagged children produced by attribute normalisation are emitted
    as real attributes again, so [parse_string (to_string t)] round-trips
    the tree. *)

val to_string : ?indent:bool -> Xml_tree.t -> string
(** [to_string t] renders [t] as an XML document (no prolog).  With
    [~indent:true], elements are pretty-printed two-space indented. *)

val escape_text : string -> string
(** Escapes [&], [<] and [>] for character data. *)

val escape_attr : string -> string
(** Escapes ampersand, angle brackets and double quote for double-quoted
    attribute values. *)
