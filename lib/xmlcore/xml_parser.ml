exception Parse_error of { pos : int; line : int; msg : string }

type state = { src : string; mutable pos : int }

let line_of state pos =
  let line = ref 1 in
  for i = 0 to min (pos - 1) (String.length state.src - 1) do
    if state.src.[i] = '\n' then incr line
  done;
  !line

let fail state msg =
  raise (Parse_error { pos = state.pos; line = line_of state state.pos; msg })

let eof state = state.pos >= String.length state.src
let peek state = state.src.[state.pos]
let advance state = state.pos <- state.pos + 1

let looking_at state prefix =
  let n = String.length prefix in
  state.pos + n <= String.length state.src
  && String.sub state.src state.pos n = prefix

let expect state prefix =
  if looking_at state prefix then state.pos <- state.pos + String.length prefix
  else fail state (Printf.sprintf "expected %S" prefix)

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_spaces state =
  while (not (eof state)) && is_space (peek state) do
    advance state
  done

let is_name_start c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name state =
  if eof state || not (is_name_start (peek state)) then
    fail state "expected a name";
  let start = state.pos in
  while (not (eof state)) && is_name_char (peek state) do
    advance state
  done;
  String.sub state.src start (state.pos - start)

(* Decode a character or entity reference starting at '&'. *)
let parse_reference state buf =
  expect state "&";
  let start = state.pos in
  while (not (eof state)) && peek state <> ';' do
    advance state
  done;
  if eof state then fail state "unterminated entity reference";
  let ent = String.sub state.src start (state.pos - start) in
  advance state;
  match ent with
  | "lt" -> Buffer.add_char buf '<'
  | "gt" -> Buffer.add_char buf '>'
  | "amp" -> Buffer.add_char buf '&'
  | "apos" -> Buffer.add_char buf '\''
  | "quot" -> Buffer.add_char buf '"'
  | _ ->
    let num =
      if String.length ent > 2 && ent.[0] = '#' && (ent.[1] = 'x' || ent.[1] = 'X')
      then int_of_string_opt ("0x" ^ String.sub ent 2 (String.length ent - 2))
      else if String.length ent > 1 && ent.[0] = '#' then
        int_of_string_opt (String.sub ent 1 (String.length ent - 1))
      else None
    in
    (match num with
     | Some n when n >= 0 && n < 128 -> Buffer.add_char buf (Char.chr n)
     | Some n ->
       (* Encode the code point as UTF-8. *)
       if n < 0x800 then begin
         Buffer.add_char buf (Char.chr (0xC0 lor (n lsr 6)));
         Buffer.add_char buf (Char.chr (0x80 lor (n land 0x3F)))
       end
       else if n < 0x10000 then begin
         Buffer.add_char buf (Char.chr (0xE0 lor (n lsr 12)));
         Buffer.add_char buf (Char.chr (0x80 lor ((n lsr 6) land 0x3F)));
         Buffer.add_char buf (Char.chr (0x80 lor (n land 0x3F)))
       end
       else begin
         Buffer.add_char buf (Char.chr (0xF0 lor (n lsr 18)));
         Buffer.add_char buf (Char.chr (0x80 lor ((n lsr 12) land 0x3F)));
         Buffer.add_char buf (Char.chr (0x80 lor ((n lsr 6) land 0x3F)));
         Buffer.add_char buf (Char.chr (0x80 lor (n land 0x3F)))
       end
     | None -> fail state (Printf.sprintf "unknown entity &%s;" ent))

let parse_attr_value state =
  let quote = peek state in
  if quote <> '"' && quote <> '\'' then fail state "expected a quoted value";
  advance state;
  let buf = Buffer.create 16 in
  let rec loop () =
    if eof state then fail state "unterminated attribute value"
    else if peek state = quote then advance state
    else if peek state = '&' then begin
      parse_reference state buf;
      loop ()
    end
    else begin
      Buffer.add_char buf (peek state);
      advance state;
      loop ()
    end
  in
  loop ();
  Buffer.contents buf

let skip_comment state =
  expect state "<!--";
  let rec loop () =
    if looking_at state "-->" then expect state "-->"
    else if eof state then fail state "unterminated comment"
    else begin
      advance state;
      loop ()
    end
  in
  loop ()

let skip_pi state =
  expect state "<?";
  let rec loop () =
    if looking_at state "?>" then expect state "?>"
    else if eof state then fail state "unterminated processing instruction"
    else begin
      advance state;
      loop ()
    end
  in
  loop ()

let skip_doctype state =
  expect state "<!DOCTYPE";
  (* Skip to the matching '>' allowing one level of bracketed subset. *)
  let depth = ref 0 in
  let rec loop () =
    if eof state then fail state "unterminated DOCTYPE"
    else
      match peek state with
      | '[' ->
        incr depth;
        advance state;
        loop ()
      | ']' ->
        decr depth;
        advance state;
        loop ()
      | '>' when !depth = 0 -> advance state
      | _ ->
        advance state;
        loop ()
  in
  loop ()

let parse_cdata state buf =
  expect state "<![CDATA[";
  let rec loop () =
    if looking_at state "]]>" then expect state "]]>"
    else if eof state then fail state "unterminated CDATA section"
    else begin
      Buffer.add_char buf (peek state);
      advance state;
      loop ()
    end
  in
  loop ()

let is_blank s = String.for_all is_space s

let rec skip_misc state =
  skip_spaces state;
  if looking_at state "<!--" then begin
    skip_comment state;
    skip_misc state
  end
  else if looking_at state "<?" then begin
    skip_pi state;
    skip_misc state
  end
  else if looking_at state "<!DOCTYPE" then begin
    skip_doctype state;
    skip_misc state
  end

let rec parse_element ~keep_whitespace state =
  expect state "<";
  let name = parse_name state in
  let attrs = parse_attributes state [] in
  if looking_at state "/>" then begin
    expect state "/>";
    Xml_tree.Element (Designator.tag name, List.rev attrs)
  end
  else begin
    expect state ">";
    let children = parse_content ~keep_whitespace state [] in
    expect state "</";
    let close = parse_name state in
    if not (String.equal close name) then
      fail state (Printf.sprintf "mismatched close tag </%s> for <%s>" close name);
    skip_spaces state;
    expect state ">";
    Xml_tree.Element (Designator.tag name, attrs @ children)
  end

and parse_attributes state acc =
  skip_spaces state;
  if eof state then fail state "unterminated start tag"
  else if peek state = '>' || looking_at state "/>" then List.rev acc
  else begin
    let name = parse_name state in
    skip_spaces state;
    expect state "=";
    skip_spaces state;
    let v = parse_attr_value state in
    parse_attributes state (Xml_tree.attr name v :: acc)
  end

and parse_content ~keep_whitespace state acc =
  if eof state then fail state "unterminated element content"
  else if looking_at state "</" then List.rev acc
  else if looking_at state "<!--" then begin
    skip_comment state;
    parse_content ~keep_whitespace state acc
  end
  else if looking_at state "<![CDATA[" then begin
    let buf = Buffer.create 16 in
    parse_cdata state buf;
    parse_content ~keep_whitespace state (Xml_tree.Value (Buffer.contents buf) :: acc)
  end
  else if looking_at state "<?" then begin
    skip_pi state;
    parse_content ~keep_whitespace state acc
  end
  else if peek state = '<' then
    parse_content ~keep_whitespace state
      (parse_element ~keep_whitespace state :: acc)
  else begin
    let buf = Buffer.create 16 in
    let rec text_loop () =
      if eof state || peek state = '<' then ()
      else if peek state = '&' then begin
        parse_reference state buf;
        text_loop ()
      end
      else begin
        Buffer.add_char buf (peek state);
        advance state;
        text_loop ()
      end
    in
    text_loop ();
    let s = Buffer.contents buf in
    if (not keep_whitespace) && is_blank s then
      parse_content ~keep_whitespace state acc
    else parse_content ~keep_whitespace state (Xml_tree.Value s :: acc)
  end

let parse_string ?(keep_whitespace = false) src =
  let state = { src; pos = 0 } in
  skip_misc state;
  if eof state || peek state <> '<' then fail state "expected a root element";
  let root = parse_element ~keep_whitespace state in
  skip_misc state;
  if not (eof state) then fail state "trailing content after root element";
  root

let parse_fragments ?(keep_whitespace = false) src =
  let state = { src; pos = 0 } in
  let rec loop acc =
    skip_misc state;
    if eof state then List.rev acc
    else if peek state = '<' then
      loop (parse_element ~keep_whitespace state :: acc)
    else fail state "expected an element"
  in
  loop []
