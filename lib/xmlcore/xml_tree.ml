type t =
  | Element of Designator.t * t list
  | Value of string

let elt name children = Element (Designator.tag name, children)
let attr name v = Element (Designator.tag ("@" ^ name), [ Value v ])
let text v = Value v

let tag = function
  | Element (d, _) -> d
  | Value _ -> invalid_arg "Xml_tree.tag: value leaf"

let children = function
  | Element (_, cs) -> cs
  | Value _ -> []

let rec node_count = function
  | Value _ -> 1
  | Element (_, cs) -> List.fold_left (fun n c -> n + node_count c) 1 cs

let rec depth = function
  | Value _ -> 1
  | Element (_, cs) -> 1 + List.fold_left (fun d c -> max d (depth c)) 0 cs

let rec max_fanout = function
  | Value _ -> 0
  | Element (_, cs) ->
    List.fold_left (fun m c -> max m (max_fanout c)) (List.length cs) cs

let rec equal a b =
  match a, b with
  | Value x, Value y -> String.equal x y
  | Element (da, ca), Element (db, cb) ->
    Designator.equal da db && List.equal equal ca cb
  | Value _, Element _ | Element _, Value _ -> false

let rec compare a b =
  match a, b with
  | Value x, Value y -> String.compare x y
  | Value _, Element _ -> -1
  | Element _, Value _ -> 1
  | Element (da, ca), Element (db, cb) ->
    let c = Designator.compare da db in
    if c <> 0 then c else List.compare compare ca cb

let rec canonical_sort t =
  match t with
  | Value _ -> t
  | Element (d, cs) ->
    Element (d, List.sort compare (List.map canonical_sort cs))

let isomorphic a b = equal (canonical_sort a) (canonical_sort b)

let rec sort_by_tag t =
  match t with
  | Value _ -> t
  | Element (d, cs) ->
    (* Values key on their value designator so that document order agrees
       with the designator-id lexicographic order used by the depth-first
       query pipeline. *)
    let key = function
      | Value s -> Designator.to_int (Designator.value s)
      | Element (cd, _) -> Designator.to_int cd
    in
    let cs = List.map sort_by_tag cs in
    let cs = List.stable_sort (fun a b -> Stdlib.compare (key a) (key b)) cs in
    Element (d, cs)

let rec has_identical_siblings = function
  | Value _ -> false
  | Element (_, cs) ->
    let tags =
      List.filter_map (function Element (d, _) -> Some d | Value _ -> None) cs
    in
    let sorted = List.sort Designator.compare tags in
    let rec dup = function
      | a :: (b :: _ as rest) -> Designator.equal a b || dup rest
      | [ _ ] | [] -> false
    in
    dup sorted || List.exists has_identical_siblings cs

let rec fold f acc t =
  let acc = f acc t in
  match t with
  | Value _ -> acc
  | Element (_, cs) -> List.fold_left (fold f) acc cs

let rec pp ppf = function
  | Value v -> Format.fprintf ppf "%S" v
  | Element (d, []) -> Designator.pp ppf d
  | Element (d, cs) ->
    Format.fprintf ppf "%a(%a)" Designator.pp d
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") pp)
      cs
