let escape buf ~attr s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when attr -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let escape_text s =
  let buf = Buffer.create (String.length s) in
  escape buf ~attr:false s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s) in
  escape buf ~attr:true s;
  Buffer.contents buf

let is_attr_child = function
  | Xml_tree.Element (d, [ Xml_tree.Value _ ]) ->
    let n = Designator.name d in
    String.length n > 0 && n.[0] = '@'
  | _ -> false

let split_attrs children =
  List.partition is_attr_child children

let to_string ?(indent = false) tree =
  let buf = Buffer.create 256 in
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec emit level t =
    match t with
    | Xml_tree.Value v ->
      pad level;
      escape buf ~attr:false v;
      nl ()
    | Xml_tree.Element (d, children) ->
      let attrs, rest = split_attrs children in
      pad level;
      Buffer.add_char buf '<';
      Buffer.add_string buf (Designator.name d);
      List.iter
        (fun a ->
          match a with
          | Xml_tree.Element (ad, [ Xml_tree.Value v ]) ->
            let n = Designator.name ad in
            Buffer.add_char buf ' ';
            Buffer.add_string buf (String.sub n 1 (String.length n - 1));
            Buffer.add_string buf "=\"";
            escape buf ~attr:true v;
            Buffer.add_char buf '"'
          | _ -> assert false)
        attrs;
      (match rest with
       | [] ->
         Buffer.add_string buf "/>";
         nl ()
       | [ Xml_tree.Value v ] when not indent ->
         Buffer.add_char buf '>';
         escape buf ~attr:false v;
         Buffer.add_string buf "</";
         Buffer.add_string buf (Designator.name d);
         Buffer.add_char buf '>'
       | rest ->
         Buffer.add_char buf '>';
         nl ();
         List.iter (emit (level + 1)) rest;
         pad level;
         Buffer.add_string buf "</";
         Buffer.add_string buf (Designator.name d);
         Buffer.add_char buf '>';
         nl ())
  in
  emit 0 tree;
  Buffer.contents buf
