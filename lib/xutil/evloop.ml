(* Readiness abstraction: epoll where available, select fallback.
   See evloop.mli for the contract. *)

external epoll_create : unit -> Unix.file_descr = "xseq_epoll_create"

external epoll_ctl : Unix.file_descr -> int -> Unix.file_descr -> int -> unit
  = "xseq_epoll_ctl"

external epoll_wait_stub :
  Unix.file_descr -> int -> (Unix.file_descr * int) array = "xseq_epoll_wait"

external eventfd : unit -> Unix.file_descr = "xseq_eventfd"

external writev_stub : Unix.file_descr -> (Bytes.t * int * int) array -> int
  = "xseq_writev"

(* Interest / readiness bits; keep in sync with evloop_stubs.c. *)
let bit_read = 1
let bit_write = 2
let bit_error = 4

type event = { fd : Unix.file_descr; readable : bool; writable : bool }

type backend =
  | Epoll of Unix.file_descr
  | Select  (** interests live in [interests] below *)

type t = {
  backend : backend;
  (* The select backend's interest set; also kept for epoll so [modify]
     can be add-or-mod and [remove] idempotent without guessing. *)
  interests : (Unix.file_descr, int) Hashtbl.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;  (** = [wake_r] for an eventfd *)
  wake_is_eventfd : bool;
  mutable closed : bool;
}

let interest_bits ~read ~write =
  (if read then bit_read else 0) lor if write then bit_write else 0

let create ?(force_select = false) () =
  let backend =
    if force_select then Select
    else match epoll_create () with ep -> Epoll ep | exception _ -> Select
  in
  let wake_r, wake_w, wake_is_eventfd =
    match eventfd () with
    | fd -> (fd, fd, true)
    | exception _ ->
      let r, w = Unix.pipe ~cloexec:true () in
      Unix.set_nonblock r;
      Unix.set_nonblock w;
      (r, w, false)
  in
  let t =
    { backend; interests = Hashtbl.create 64; wake_r; wake_w;
      wake_is_eventfd = (match backend with _ -> wake_is_eventfd); closed = false }
  in
  (match backend with
   | Epoll ep -> epoll_ctl ep 0 wake_r bit_read
   | Select -> ());
  t

let backend_name t = match t.backend with Epoll _ -> "epoll" | Select -> "select"

let add t fd ~read ~write =
  let bits = interest_bits ~read ~write in
  (match t.backend with
   | Epoll ep -> epoll_ctl ep 0 fd bits
   | Select -> ());
  Hashtbl.replace t.interests fd bits

let modify t fd ~read ~write =
  let bits = interest_bits ~read ~write in
  (match t.backend with
   | Epoll ep ->
     if Hashtbl.mem t.interests fd then epoll_ctl ep 1 fd bits
     else epoll_ctl ep 0 fd bits
   | Select -> ());
  Hashtbl.replace t.interests fd bits

let remove t fd =
  if Hashtbl.mem t.interests fd then begin
    Hashtbl.remove t.interests fd;
    match t.backend with
    | Epoll ep -> (
      (* The kernel already dropped the fd from the set if it was
         closed; EBADF/ENOENT here are the expected race, not errors. *)
      try epoll_ctl ep 2 fd 0 with Unix.Unix_error _ -> ())
    | Select -> ()
  end

(* Drains the wakeup channel; nonblocking fds, so one loop to EAGAIN. *)
let drain_wakeup t =
  let buf = Bytes.create 8 in
  let rec go () =
    match Unix.read t.wake_r buf 0 8 with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let wakeup t =
  if not t.closed then begin
    let payload =
      if t.wake_is_eventfd then begin
        (* eventfd counters are 8-byte little-endian adds. *)
        let b = Bytes.make 8 '\000' in
        Bytes.set b 0 '\001';
        b
      end
      else Bytes.make 1 '\001'
    in
    try ignore (Unix.write t.wake_w payload 0 (Bytes.length payload) : int)
    with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      () (* a wakeup is already pending: coalesced *)
    | Unix.Unix_error _ -> ()
  end

let wait t ~timeout_ms =
  match t.backend with
  | Epoll ep ->
    let raw = epoll_wait_stub ep timeout_ms in
    let events = ref [] in
    let woken = ref false in
    Array.iter
      (fun (fd, bits) ->
        if fd = t.wake_r then woken := true
        else
          events :=
            {
              fd;
              (* An error condition must surface as readability so the
                 owner's read observes the EOF/errno and reaps the fd. *)
              readable = bits land (bit_read lor bit_error) <> 0;
              writable = bits land bit_write <> 0;
            }
            :: !events)
      raw;
    if !woken then drain_wakeup t;
    List.rev !events
  | Select ->
    let rl = ref [ t.wake_r ] and wl = ref [] in
    Hashtbl.iter
      (fun fd bits ->
        if bits land bit_read <> 0 then rl := fd :: !rl;
        if bits land bit_write <> 0 then wl := fd :: !wl)
      t.interests;
    let tmo = if timeout_ms < 0 then -1. else float_of_int timeout_ms /. 1000. in
    (match Unix.select !rl !wl [] tmo with
     | r, w, _ ->
       if List.memq t.wake_r r then drain_wakeup t;
       let wset = w in
       let events =
         List.filter_map
           (fun fd ->
             if fd = t.wake_r then None
             else
               Some { fd; readable = true; writable = List.memq fd wset })
           r
       in
       let events =
         events
         @ List.filter_map
             (fun fd ->
               if List.memq fd r then None
               else Some { fd; readable = false; writable = true })
             w
       in
       events
     | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
     | exception Unix.Unix_error (Unix.EBADF, _, _) ->
       (* A registered fd was closed behind our back: prune the corpses
          so the next wait survives.  (Owners normally [remove] before
          closing; this is belt and braces.) *)
       let dead =
         Hashtbl.fold
           (fun fd _ acc ->
             match Unix.fstat fd with
             | _ -> acc
             | exception Unix.Unix_error _ -> fd :: acc)
           t.interests []
       in
       List.iter (Hashtbl.remove t.interests) dead;
       [])

let close t =
  if not t.closed then begin
    t.closed <- true;
    (match t.backend with
     | Epoll ep -> (try Unix.close ep with Unix.Unix_error _ -> ())
     | Select -> ());
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    if not t.wake_is_eventfd then
      try Unix.close t.wake_w with Unix.Unix_error _ -> ()
  end

let iov_max = 64

let writev fd parts =
  match writev_stub fd parts with
  | n -> n
  | exception Unix.Unix_error (Unix.ENOSYS, _, _) ->
    (* No writev on this platform: write the first slice only — the
       caller's flush loop carries on from wherever the count lands. *)
    (match parts with
     | [||] -> 0
     | _ ->
       let buf, off, len = parts.(0) in
       Unix.write fd buf off len)
