(** A reusable fixed-size pool of worker domains (OCaml ≥ 5.1).

    The pool owns [size] worker domains that pull jobs from a shared
    queue.  All batch entry points ({!run}, {!map}, {!mapi}, {!iter})
    block the caller until the whole batch has completed, return results
    in input order, and re-raise the exception of the {e lowest-indexed}
    failing task — so a parallel run fails exactly like the equivalent
    sequential loop would, deterministically, regardless of which worker
    ran what and in which order.

    A pool of size 1 spawns no domains at all: every batch runs inline in
    the caller, which makes [~domains:1] a true sequential baseline (used
    by the determinism tests) and keeps single-core deployments
    zero-overhead.

    {2 Thread-safety contract}

    The pool synchronises its own queue and result slots; it does {e not}
    make the task functions safe.  Tasks run concurrently on several
    domains, so they must only touch shared state that is immutable or
    independently synchronised for the duration of the batch.  In this
    codebase the relevant shared structures are the global
    {!Xmlcore.Designator} and [Sequencing.Path] intern tables: parallel
    phases must be arranged so that they only {e read} those tables (see
    [Xseq.build]'s sequential pre-intern pass and DESIGN.md §9).

    {2 Dispatch}

    Batch dispatch is {e self-scheduling}: a batch enqueues at most one
    runner per worker, and runners (including one in the caller, which
    participates in its own batch) claim tasks with a wait-free
    fetch-and-add on a shared cursor.  Queue traffic is O(workers) per
    batch regardless of batch size, and a fast runner keeps claiming
    tasks while slower ones finish — chunked work-stealing without
    per-item handoff.  Because the caller always participates, a batch
    completes even when every worker is busy elsewhere, so nested batch
    submission cannot deadlock (it simply runs with less parallelism). *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] starts a pool of [domains] workers
    (default {!Domain.recommended_domain_count}).
    @raise Invalid_argument if [domains < 1]. *)

val size : t -> int
(** Number of worker slots ([1] means inline execution). *)

val run : t -> (unit -> 'a) array -> 'a array
(** [run t thunks] executes every thunk (in parallel when [size t > 1])
    and returns their results in input order.  If one or more thunks
    raise, the batch still runs to completion and the exception of the
    lowest-indexed failing thunk is re-raised in the caller.
    @raise Invalid_argument if the pool has been {!shutdown}. *)

val map : ?chunks:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f arr] is [Array.map f arr] computed in parallel over
    contiguous chunks.  [chunks] caps the number of chunks (default
    [4 * size t], for load balancing); the result order — and, on
    failure, the raised exception — are those of the sequential map. *)

val mapi : ?chunks:int -> t -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Like {!map} with the element index. *)

val iter : ?chunks:int -> t -> ('a -> unit) -> 'a array -> unit
(** [iter t f arr] applies [f] to every element, in parallel chunks. *)

val async : t -> (unit -> unit) -> unit
(** [async t job] submits a single fire-and-forget job and returns
    immediately.  Exceptions raised by [job] are swallowed (completion
    signalling is the caller's business — see [Xserver.Server], whose
    jobs fill a mutex-guarded response slot).  On a size-1 pool the job
    runs inline in the caller before [async] returns.
    @raise Invalid_argument if the pool has been {!shutdown}. *)

val shutdown : t -> unit
(** Drains nothing: waits only for in-flight jobs, then joins every
    worker.  Idempotent; subsequent batch submissions raise
    [Invalid_argument]. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and always shuts it down. *)
