(** Binary searches over sorted int arrays (ascending, duplicates allowed). *)

val lower_bound : int array -> len:int -> int -> int
(** [lower_bound a ~len x] is the smallest index [i < len] with
    [a.(i) >= x], or [len]. *)

val upper_bound : int array -> len:int -> int -> int
(** Smallest index [i < len] with [a.(i) > x], or [len]. *)

val floor_index : int array -> len:int -> int -> int
(** Largest index [i < len] with [a.(i) <= x], or [-1]. *)

(** {1 Accessor-generic variants}

    The same searches over any indexed int source — columnar flat buffers,
    paged columns — via a [get] function instead of a heap array. *)

val lower_bound_by : get:(int -> int) -> len:int -> int -> int
val upper_bound_by : get:(int -> int) -> len:int -> int -> int
val floor_index_by : get:(int -> int) -> len:int -> int -> int
