/* C stubs for Xutil.Evloop: epoll(7), eventfd(2) and writev(2).

   Everything here is Linux- (epoll, eventfd) or POSIX- (writev)
   specific; on platforms without the call the stub raises ENOSYS and
   the OCaml side falls back to select / a self-pipe / plain writes.
   No opam dependency is involved — only libc. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>
#include <caml/unixsupport.h>

#include <errno.h>
#include <string.h>

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>
#endif

#ifndef _WIN32
#include <sys/uio.h>
#include <limits.h>
#endif

/* Interest / readiness bits shared with evloop.ml.  Keep in sync. */
#define XSEQ_EV_READ 1
#define XSEQ_EV_WRITE 2
#define XSEQ_EV_ERROR 4

CAMLprim value xseq_epoll_create(value unit)
{
  CAMLparam1(unit);
#ifdef __linux__
  int fd = epoll_create1(EPOLL_CLOEXEC);
  if (fd == -1) caml_uerror("epoll_create1", Nothing);
  CAMLreturn(Val_int(fd));
#else
  caml_unix_error(ENOSYS, "epoll_create1", Nothing);
  CAMLreturn(Val_int(-1)); /* not reached */
#endif
}

/* op: 0 = add, 1 = mod, 2 = del; interest: XSEQ_EV_* bits. */
CAMLprim value xseq_epoll_ctl(value vep, value vop, value vfd, value vinterest)
{
  CAMLparam4(vep, vop, vfd, vinterest);
#ifdef __linux__
  struct epoll_event ev;
  int op;
  memset(&ev, 0, sizeof ev);
  ev.data.fd = Int_val(vfd);
  if (Int_val(vinterest) & XSEQ_EV_READ) ev.events |= EPOLLIN | EPOLLRDHUP;
  if (Int_val(vinterest) & XSEQ_EV_WRITE) ev.events |= EPOLLOUT;
  switch (Int_val(vop)) {
  case 0: op = EPOLL_CTL_ADD; break;
  case 1: op = EPOLL_CTL_MOD; break;
  default: op = EPOLL_CTL_DEL; break;
  }
  if (epoll_ctl(Int_val(vep), op, Int_val(vfd), &ev) == -1)
    caml_uerror("epoll_ctl", Nothing);
  CAMLreturn(Val_unit);
#else
  caml_unix_error(ENOSYS, "epoll_ctl", Nothing);
  CAMLreturn(Val_unit); /* not reached */
#endif
}

#define XSEQ_EPOLL_MAX_EVENTS 512

/* Returns an array of (fd, readiness-bits) pairs.  Releases the
   runtime lock for the duration of the wait. */
CAMLprim value xseq_epoll_wait(value vep, value vtimeout_ms)
{
  CAMLparam2(vep, vtimeout_ms);
#ifdef __linux__
  CAMLlocal2(result, pair);
  struct epoll_event evs[XSEQ_EPOLL_MAX_EVENTS];
  int ep = Int_val(vep);
  int timeout = Int_val(vtimeout_ms);
  int n;

  caml_release_runtime_system();
  n = epoll_wait(ep, evs, XSEQ_EPOLL_MAX_EVENTS, timeout);
  caml_acquire_runtime_system();

  if (n == -1) {
    if (errno == EINTR) n = 0;
    else caml_uerror("epoll_wait", Nothing);
  }
  result = caml_alloc(n, 0);
  for (int i = 0; i < n; i++) {
    int bits = 0;
    if (evs[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLPRI))
      bits |= XSEQ_EV_READ;
    if (evs[i].events & EPOLLOUT) bits |= XSEQ_EV_WRITE;
    if (evs[i].events & EPOLLERR) bits |= XSEQ_EV_ERROR;
    pair = caml_alloc_tuple(2);
    Field(pair, 0) = Val_int(evs[i].data.fd);
    Field(pair, 1) = Val_int(bits);
    Store_field(result, i, pair);
  }
  CAMLreturn(result);
#else
  caml_unix_error(ENOSYS, "epoll_wait", Nothing);
  CAMLreturn(Atom(0)); /* not reached */
#endif
}

/* Non-blocking close-on-exec eventfd; ENOSYS off Linux (the OCaml side
   then uses a self-pipe). */
CAMLprim value xseq_eventfd(value unit)
{
  CAMLparam1(unit);
#ifdef __linux__
  int fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (fd == -1) caml_uerror("eventfd", Nothing);
  CAMLreturn(Val_int(fd));
#else
  caml_unix_error(ENOSYS, "eventfd", Nothing);
  CAMLreturn(Val_int(-1)); /* not reached */
#endif
}

#define XSEQ_IOV_MAX 64

/* writev over an array of (string, offset, length) triples.  The
   runtime lock is deliberately NOT released: the strings would move
   under the kernel's feet if the GC ran, and every caller hands in a
   non-blocking fd, so the syscall cannot stall the runtime. */
CAMLprim value xseq_writev(value vfd, value vparts)
{
  CAMLparam2(vfd, vparts);
#ifndef _WIN32
  struct iovec iov[XSEQ_IOV_MAX];
  int n = Wosize_val(vparts);
  ssize_t written;
  if (n > XSEQ_IOV_MAX) n = XSEQ_IOV_MAX;
  for (int i = 0; i < n; i++) {
    value part = Field(vparts, i);
    iov[i].iov_base =
        (char *)Bytes_val(Field(part, 0)) + Long_val(Field(part, 1));
    iov[i].iov_len = Long_val(Field(part, 2));
  }
  written = writev(Int_val(vfd), iov, n);
  if (written == -1) caml_uerror("writev", Nothing);
  CAMLreturn(Val_long(written));
#else
  caml_unix_error(ENOSYS, "writev", Nothing);
  CAMLreturn(Val_long(-1)); /* not reached */
#endif
}
