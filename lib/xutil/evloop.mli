(** A minimal readiness-driven event loop: epoll(7) where the kernel
    offers it, [Unix.select] everywhere else, behind one interface —
    and a thread-safe wakeup channel (eventfd(2), self-pipe fallback)
    so worker domains can nudge a loop blocked in {!wait}.

    This is deliberately {e not} an async runtime: no fibres, no
    promises, no timers.  It answers exactly one question — "which of
    these descriptors are ready?" — and leaves the state machines to
    the caller ({!Xserver.Server} drives per-connection non-blocking
    state machines over it).  No new opam dependency is involved: the
    epoll/eventfd/writev bindings are local C stubs over libc, and on
    platforms without them every entry point degrades to portable
    [Unix] calls.

    Thread-safety: {!wakeup} (and nothing else) may be called from any
    thread or domain, including a signal handler — it is one [write]
    on an eventfd/pipe.  All other operations belong to the single
    thread running the loop. *)

type t

type event = {
  fd : Unix.file_descr;
  readable : bool;  (** data, EOF, hangup or error — reading will not block *)
  writable : bool;
}

val create : ?force_select:bool -> unit -> t
(** A fresh loop.  [force_select] skips the epoll probe (test hook for
    exercising the portable backend on Linux). *)

val backend_name : t -> string
(** ["epoll"] or ["select"], for logs and stats. *)

val add : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Register a descriptor.  The same fd may be registered in several
    loops (accept sharding over one listener relies on this).
    @raise Unix.Unix_error as epoll_ctl does (e.g. on a double add). *)

val modify : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Change the interest set of a registered descriptor. *)

val remove : t -> Unix.file_descr -> unit
(** Deregister; never raises (removing an already-closed or never-added
    fd is a no-op — close(2) already purged it from the kernel set). *)

val wait : t -> timeout_ms:int -> event list
(** Blocks until at least one registered descriptor is ready, the
    timeout elapses ([-1] = forever), or {!wakeup} is called; returns
    the ready events (possibly none).  The wakeup channel is drained
    internally and never surfaces as an event.  [EINTR] yields an empty
    list rather than raising. *)

val wakeup : t -> unit
(** Make the current (or next) {!wait} return promptly.  Safe from any
    thread, domain or signal handler; coalesces — N wakeups before the
    next [wait] cost one return. *)

val close : t -> unit
(** Release the loop's own descriptors (not the registered ones).
    Idempotent. *)

val writev : Unix.file_descr -> (Bytes.t * int * int) array -> int
(** Vectored write: at most 64 [(buffer, offset, length)] slices in one
    writev(2), returning the byte count the kernel took.  Falls back to
    a single-slice [Unix.write] where writev is unavailable.  Intended
    for non-blocking descriptors; raises [Unix.Unix_error] ([EAGAIN],
    [EPIPE], …) exactly like [Unix.write]. *)

val iov_max : int
(** Slices {!writev} consumes per call (64); extra slices are ignored
    (the caller loops). *)
