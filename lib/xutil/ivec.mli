(** Growable int vectors — the workhorse buffer of the index builder. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val push : t -> int -> unit
val get : t -> int -> int
val set : t -> int -> int -> unit
val to_array : t -> int array
(** Fresh array of the current contents. *)

val unsafe_data : t -> int array
(** The backing array (length ≥ {!length}); valid until the next push. *)
