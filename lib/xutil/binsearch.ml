let lower_bound a ~len x =
  let lo = ref 0 and hi = ref len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let upper_bound a ~len x =
  let lo = ref 0 and hi = ref len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let floor_index a ~len x = upper_bound a ~len x - 1

(* Accessor-generic variants: the same searches over any indexed int
   source (flat buffers, paged columns) instead of a heap array. *)

let lower_bound_by ~get ~len x =
  let lo = ref 0 and hi = ref len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if get mid < x then lo := mid + 1 else hi := mid
  done;
  !lo

let upper_bound_by ~get ~len x =
  let lo = ref 0 and hi = ref len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if get mid <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let floor_index_by ~get ~len x = upper_bound_by ~get ~len x - 1
