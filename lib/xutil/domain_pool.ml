(* A fixed-size pool of worker domains fed from one mutex-protected job
   queue.  Results and exceptions are collected into per-batch slot
   arrays indexed by task position, so completion order never leaks into
   the observable outcome: results come back in input order and the
   re-raised exception is the one of the lowest-indexed failing task. *)

type t = {
  size : int;
  jobs : (unit -> unit) Queue.t;
  m : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let rec worker_loop t =
  Mutex.lock t.m;
  while Queue.is_empty t.jobs && not t.closed do
    Condition.wait t.nonempty t.m
  done;
  if Queue.is_empty t.jobs then (* closed *)
    Mutex.unlock t.m
  else begin
    let job = Queue.pop t.jobs in
    Mutex.unlock t.m;
    (* Jobs are wrappers built by [run]; they never raise. *)
    job ();
    worker_loop t
  end

let create ?(domains = Domain.recommended_domain_count ()) () =
  if domains < 1 then invalid_arg "Domain_pool.create: domains < 1";
  let t =
    {
      size = domains;
      jobs = Queue.create ();
      m = Mutex.create ();
      nonempty = Condition.create ();
      closed = false;
      workers = [];
    }
  in
  (* Workers close over [t] itself (not a copy), so the [closed] flag
     they watch is the one [shutdown] sets. *)
  if domains > 1 then
    t.workers <-
      List.init domains (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.size

let run t (thunks : (unit -> 'a) array) : 'a array =
  let n = Array.length thunks in
  if n = 0 then [||]
  else if t.size = 1 || n = 1 then Array.map (fun f -> f ()) thunks
  else begin
    let results : 'a option array = Array.make n None in
    let errors : exn option array = Array.make n None in
    (* Self-scheduling batch: instead of queueing one job per thunk —
       a mutex acquisition and a condition signal per item on the shared
       pool queue — the batch enqueues one {e runner} per worker, and
       runners claim thunks with a wait-free fetch-and-add on a shared
       cursor.  Dispatch cost is O(workers) queue operations per batch
       regardless of batch size, and load balancing is exact: a runner
       that finishes early keeps stealing from the cursor while slower
       runners are still working. *)
    let cursor = Atomic.make 0 in
    let remaining = Atomic.make n in
    let bm = Mutex.create () in
    let done_cv = Condition.create () in
    let runner () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add cursor 1 in
        if i >= n then continue := false
        else begin
          (match thunks.(i) () with
           | v -> results.(i) <- Some v
           | exception e -> errors.(i) <- Some e);
          if Atomic.fetch_and_add remaining (-1) = 1 then begin
            (* Last thunk done: wake the caller.  The mutex pairs with
               the caller's lock so the slot writes above are ordered
               before its reads. *)
            Mutex.lock bm;
            Condition.signal done_cv;
            Mutex.unlock bm
          end
        end
      done
    in
    let runners = min t.size n in
    Mutex.lock t.m;
    if t.closed then begin
      Mutex.unlock t.m;
      invalid_arg "Domain_pool.run: pool is shut down"
    end;
    (* One runner stays in the caller: it participates in the work and
       doubles as the guarantee that the batch drains even if every
       worker is busy with other batches. *)
    for _ = 2 to runners do
      Queue.push runner t.jobs
    done;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.m;
    runner ();
    Mutex.lock bm;
    while Atomic.get remaining > 0 do
      Condition.wait done_cv bm
    done;
    Mutex.unlock bm;
    let first_error = Array.find_map Fun.id errors in
    match first_error with
    | Some e -> raise e
    | None ->
      Array.map
        (function Some v -> v | None -> assert false (* all slots filled *))
        results
  end

(* Contiguous chunk boundaries: [nchunks] ranges differing in length by
   at most one, in input order. *)
let chunk_ranges n nchunks =
  let base = n / nchunks and extra = n mod nchunks in
  Array.init nchunks (fun c ->
      let lo = (c * base) + min c extra in
      let len = base + (if c < extra then 1 else 0) in
      (lo, len))

let mapi ?chunks t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if t.size = 1 then Array.mapi f arr
  else begin
    let nchunks =
      max 1 (min n (match chunks with Some c -> c | None -> 4 * t.size))
    in
    let ranges = chunk_ranges n nchunks in
    let thunks =
      Array.map
        (fun (lo, len) () -> Array.init len (fun k -> f (lo + k) arr.(lo + k)))
        ranges
    in
    Array.concat (Array.to_list (run t thunks))
  end

let map ?chunks t f arr = mapi ?chunks t (fun _ x -> f x) arr

let iter ?chunks t f arr =
  if Array.length arr > 0 then
    ignore (mapi ?chunks t (fun _ x -> f x) arr : unit array)

(* Fire-and-forget submission, used by long-lived services (the query
   server's accept loop feeds connection work into the pool this way).
   The job is wrapped so it can never raise into [worker_loop]; on a
   size-1 pool there are no worker domains and the job runs inline in
   the caller — systhreads on the calling domain still interleave, so a
   single-worker server remains responsive. *)
let async t job =
  let wrapped () = try job () with _ -> () in
  if t.workers = [] then wrapped ()
  else begin
    Mutex.lock t.m;
    if t.closed then begin
      Mutex.unlock t.m;
      invalid_arg "Domain_pool.async: pool is shut down"
    end;
    Queue.push wrapped t.jobs;
    Condition.signal t.nonempty;
    Mutex.unlock t.m
  end

let shutdown t =
  Mutex.lock t.m;
  let was_closed = t.closed in
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.m;
  if not was_closed then List.iter Domain.join t.workers

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
