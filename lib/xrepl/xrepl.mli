(** Primary/follower replication over WAL shipping.

    The engine behind a replicated xseq pair (or group):

    - the {b primary} is an ordinary live server; its WAL doubles as
      the replication stream, shipped record-for-record by the server's
      subscription pump ({!Xserver.Server.repl_hooks});
    - a {b follower} runs {!Node} with [follow = Some primary]: a
      background thread subscribes from its own log end, mirrors every
      batch byte-for-byte at the primary's (file, offset) via
      {!Xlog.replica_apply}, acknowledges durable positions upstream,
      and serves reads from the same store — mutations answer
      [Not_primary] with the leader hint;
    - {b promotion} (manual [xseq promote], or automatic on primary
      silence) bumps a monotonic {e epoch}, persisted in [repl.meta]
      beside the store.  Epochs fence a resurrected old primary: its
      batches carry a stale epoch and followers refuse them, and a
      [Subscribe] announcing a higher epoch steps a deposed primary
      down on the spot.

    Positions are cluster-universal because the mirror is physical:
    the follower's own WAL end {e is} its resume cursor across process
    crashes (recovery truncates any torn half-batch), and promotion
    moves no data — the new primary appends where the mirror ends. *)

module Meta : sig
  type role = [ `Primary | `Follower ]

  type t = { epoch : int; role : role }

  val load : string -> t option
  (** [load dir] reads [dir/repl.meta]; [None] if absent or unreadable
      (a fresh store). *)

  val store : string -> t -> unit
  (** Atomic persist (tmp + fsync + rename): the epoch/role survive
      kill -9 at any point.
      @raise Unix.Unix_error when the disk refuses. *)
end

module Node : sig
  type config = {
    advertise : string;
        (** how peers and clients reach this node — the leader hint a
            promoted node hands out *)
    follow : string option;
        (** primary endpoint to subscribe to; [None] starts as primary
            (unless a persisted [repl.meta] says follower) *)
    peers : string list;
        (** every other node's endpoint — the electorate for automatic
            promotion *)
    sync_replicas : int;
        (** primary: acknowledge mutations only after this many
            followers durably hold them (0 = async) *)
    ack_timeout_ms : int;  (** primary: semi-sync parking bound *)
    heartbeat_timeout_ms : int;
        (** follower: the primary is presumed dead after this much
            silence (no batch, no heartbeat) *)
    auto_promote : bool;
        (** follower: on primary silence, run an election (highest
            durable position wins; advertise-string order breaks ties)
            and promote self if it wins *)
    retry_ms : int;  (** reconnect/election pacing *)
  }

  val default_config : config
  (** advertise "", no follow, no peers, async, 5s ack bound, 3s
      heartbeat timeout, no auto-promotion, 500ms retry. *)

  type t

  val create : config -> Xlog.t -> t
  (** Binds the engine to an open store.  Role and epoch come from
      [repl.meta] when present; otherwise [follow] decides the role
      (and an explicit [follow] {e demotes} a store whose meta says
      primary — the operator's word wins).  The initial state is
      persisted immediately. *)

  val hooks : t -> Xserver.Server.repl_hooks
  (** What to put in {!Xserver.Server.config.repl} — wiring this node's
      role, epoch, fencing and lag into the server. *)

  val start : t -> unit
  (** Spawns the background thread: subscribe/apply/ack while a
      follower, elections on silence (if [auto_promote]), idle while
      primary.  Idempotent. *)

  val stop : t -> unit
  (** Stops and joins the background thread.  Idempotent. *)

  val role : t -> Meta.role
  val epoch : t -> int

  val leader_hint : t -> string
  (** Endpoint of the currently known primary ("" if unknown, or if
      this node is it). *)

  val promote : t -> (int, string) result
  (** Manual promotion: bump the epoch, persist, flip to primary.
      [Ok epoch]; idempotent on a primary.  The server's [Promote] wire
      op lands here via {!hooks}. *)

  val lag : t -> int * int
  (** (records, bytes) behind the primary per its last heartbeat;
      (0, 0) on a primary. *)

  val last_error : t -> string option
  (** Sticky diagnostic of the last replication failure needing an
      operator (e.g. a reseed attempt that could not reach the
      primary). *)

  val request_reseed : t -> unit
  (** Asks the follower thread to replace its store with a fresh
      primary snapshot before the next subscription — the scrub
      repair hook: a quarantined region that re-verification cannot
      clear is healed by re-fetching the whole checkpoint.  No-op on a
      primary (the flag is consumed only while following). *)

  val reseeds : t -> int
  (** Completed snapshot installs over this node's lifetime.  A
      follower whose subscription position was pruned by the primary
      (or that was asked via {!request_reseed}) streams the primary's
      latest checkpoint ({!Xserver.Client.fetch_snapshot}), installs
      it atomically ({!Xlog.reseed}) and resumes WAL tailing from the
      snapshot cut — this counts those round trips. *)
end
