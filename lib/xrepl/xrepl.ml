(* The replication engine.  See xrepl.mli for the architecture. *)

module P = Xserver.Protocol
module Server = Xserver.Server
module Client = Xserver.Client

module Meta = struct
  type role = [ `Primary | `Follower ]

  type t = { epoch : int; role : role }

  let file dir = Filename.concat dir "repl.meta"

  let load dir =
    match open_in_bin (file dir) with
    | exception Sys_error _ -> None
    | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match input_line ic with
          | line -> (
            match String.split_on_char ' ' (String.trim line) with
            | [ "xreplmeta1"; e; r ] -> (
              match (int_of_string_opt e, r) with
              | Some epoch, "primary" -> Some { epoch; role = `Primary }
              | Some epoch, "follower" -> Some { epoch; role = `Follower }
              | _ -> None)
            | _ -> None)
          | exception End_of_file -> None)

  (* tmp + fsync + rename + dir fsync: the epoch/role transition is the
     fencing record — it must not be lost or torn by kill -9. *)
  let store dir t =
    let path = file dir in
    let tmp = path ^ ".tmp" in
    let fd = Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let line =
          Printf.sprintf "xreplmeta1 %d %s\n" t.epoch
            (match t.role with `Primary -> "primary" | `Follower -> "follower")
        in
        let n = Unix.write_substring fd line 0 (String.length line) in
        if n <> String.length line then
          raise (Unix.Unix_error (Unix.EIO, "write", tmp));
        Unix.fsync fd);
    Unix.rename tmp path;
    (match Unix.openfile dir [ O_RDONLY; O_CLOEXEC ] 0 with
     | dfd ->
       (try Unix.fsync dfd with Unix.Unix_error _ -> ());
       (try Unix.close dfd with Unix.Unix_error _ -> ())
     | exception Unix.Unix_error _ -> ())
end

module Node = struct
  type config = {
    advertise : string;
    follow : string option;
    peers : string list;
    sync_replicas : int;
    ack_timeout_ms : int;
    heartbeat_timeout_ms : int;
    auto_promote : bool;
    retry_ms : int;
  }

  let default_config =
    {
      advertise = "";
      follow = None;
      peers = [];
      sync_replicas = 0;
      ack_timeout_ms = 5000;
      heartbeat_timeout_ms = 3000;
      auto_promote = false;
      retry_ms = 500;
    }

  type t = {
    cfg : config;
    log : Xlog.t;
    m : Mutex.t;
    mutable role : Meta.role;
    mutable epoch : int;
    mutable leader : string;  (* known primary endpoint, "" unknown *)
    mutable lag : int * int;  (* (records, bytes) behind the primary *)
    mutable watermark : int * Xlog.Wal.position;
        (* the primary's (next_id, durable) per its last heartbeat —
           lag is recomputed against it after every applied batch, so a
           caught-up follower reads 0 without waiting for the next
           heartbeat *)
    mutable err : string option;
    mutable reseed_req : bool;
        (* a repair (scrub quarantine, operator) asked for a full
           re-seed from the primary before the next subscription *)
    mutable reseeds : int;  (* completed snapshot installs *)
    mutable stop_flag : bool;
    mutable thread : Thread.t option;
    mutable sub_fd : Unix.file_descr option;
        (* live subscription socket; shutdown() from [stop] unblocks the
           reader promptly *)
  }

  let locked t f =
    Mutex.lock t.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

  let persist_locked t =
    Meta.store (Xlog.dir t.log) { Meta.epoch = t.epoch; role = t.role }

  let create cfg log =
    let dir = Xlog.dir log in
    let meta = Meta.load dir in
    let role, epoch =
      match (cfg.follow, meta) with
      (* an explicit --follow demotes whatever the meta says: the
         operator is re-seating this node under a primary *)
      | Some _, Some m -> (`Follower, m.Meta.epoch)
      | Some _, None -> (`Follower, 0)
      | None, Some m -> (m.Meta.role, m.Meta.epoch)
      | None, None -> (`Primary, 0)
    in
    let t =
      {
        cfg;
        log;
        m = Mutex.create ();
        role;
        epoch;
        leader = Option.value cfg.follow ~default:"";
        lag = (0, 0);
        watermark = (0, Xlog.Wal.start_position);
        err = None;
        reseed_req = false;
        reseeds = 0;
        stop_flag = false;
        thread = None;
        sub_fd = None;
      }
    in
    locked t (fun () -> persist_locked t);
    t

  let role t = locked t (fun () -> t.role)
  let epoch t = locked t (fun () -> t.epoch)
  let lag t = locked t (fun () -> t.lag)

  (* [t.m] held.  Distance to the primary's last announced watermark;
     bytes only compare within the same file (cross-file gaps are
     reported in records). *)
  let update_lag_locked t =
    let pn, pd = t.watermark in
    let local = Xlog.wal_durable_position t.log in
    let bytes =
      if pd.Xlog.Wal.file = local.Xlog.Wal.file then
        max 0 (pd.Xlog.Wal.off - local.Xlog.Wal.off)
      else 0
    in
    t.lag <- (max 0 (pn - Xlog.next_id t.log), bytes)
  let last_error t = locked t (fun () -> t.err)
  let reseeds t = locked t (fun () -> t.reseeds)
  let request_reseed t = locked t (fun () -> t.reseed_req <- true)

  let leader_hint t =
    locked t (fun () -> match t.role with `Primary -> "" | `Follower -> t.leader)

  let promote t =
    locked t (fun () ->
        match t.role with
        | `Primary -> Ok t.epoch
        | `Follower -> (
          let epoch = t.epoch + 1 in
          let prev_role, prev_epoch = (t.role, t.epoch) in
          t.role <- `Primary;
          t.epoch <- epoch;
          t.leader <- "";
          t.lag <- (0, 0);
          match persist_locked t with
          | () -> Ok epoch
          | exception e ->
            (* an unpersisted promotion must not take effect: a restart
               would resurrect the old role with a stale epoch *)
            t.role <- prev_role;
            t.epoch <- prev_epoch;
            Error (Printexc.to_string e)))

  (* Fencing: a peer (subscriber or stream) proved a higher epoch
     exists — a primary hearing this was deposed and steps down. *)
  let observe_epoch t e =
    locked t (fun () ->
        if e > t.epoch then begin
          t.epoch <- e;
          if t.role = `Primary then begin
            t.role <- `Follower;
            t.leader <- ""
          end;
          try persist_locked t with _ -> ()
        end)

  let hooks t =
    {
      Server.repl_log = t.log;
      repl_role = (fun () -> role t);
      repl_epoch = (fun () -> epoch t);
      repl_leader_hint = (fun () -> leader_hint t);
      repl_promote = (fun () -> promote t);
      repl_observe_epoch = observe_epoch t;
      repl_lag = (fun () -> lag t);
      repl_sync_replicas = t.cfg.sync_replicas;
      repl_ack_timeout_ms = t.cfg.ack_timeout_ms;
    }

  (* --- the follower stream ------------------------------------------------ *)

  let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

  let connect_to ep =
    match Server.addr_of_string ep with
    | Error m -> Error m
    | Ok addr -> (
      let dom, sa =
        match addr with
        | Server.Tcp (host, port) ->
          let inet =
            try Unix.inet_addr_of_string host
            with Failure _ -> (
              try (Unix.gethostbyname host).Unix.h_addr_list.(0)
              with Not_found -> Unix.inet_addr_loopback)
          in
          (Unix.PF_INET, Unix.ADDR_INET (inet, port))
        | Server.Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
      in
      let fd = Unix.socket ~cloexec:true dom Unix.SOCK_STREAM 0 in
      match Unix.connect fd sa with
      | () -> Ok fd
      | exception e ->
        close_quietly fd;
        Error (Printexc.to_string e))

  (* One subscription session against [ep]; returns why it ended. *)
  let follow_once t ep =
    match connect_to ep with
    | Error _ -> `Dead
    | Ok fd ->
      locked t (fun () -> t.sub_fd <- Some fd);
      let finish verdict =
        locked t (fun () -> t.sub_fd <- None);
        close_quietly fd;
        verdict
      in
      (* The receive timeout doubles as the liveness detector: a healthy
         primary heartbeats about once a second. *)
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO
           (float_of_int (max 1 t.cfg.heartbeat_timeout_ms) /. 1000.)
       with Unix.Unix_error _ | Invalid_argument _ -> ());
      let subscribed =
        try
          P.write_frame fd
            (P.encode_request
               (P.Subscribe
                  { epoch = epoch t; pos = Xlog.wal_position t.log }));
          true
        with _ -> false
      in
      let rec recv_loop () =
        if locked t (fun () -> t.stop_flag) then finish `Stopped
        else if role t = `Primary then finish `Stopped
        else
          match P.read_frame fd with
          | Error (P.Eof | P.Truncated) -> finish `Dead
          | Error (P.Bad_header m) -> finish (`Fatal ("bad stream frame: " ^ m))
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            -> finish `Silent
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv_loop ()
          | exception Unix.Unix_error _ -> finish `Dead
          | Ok frame -> (
            match P.decode_response frame with
            | Error m -> finish (`Fatal ("malformed stream frame: " ^ m))
            | Ok resp -> handle resp)
      and handle = function
        | P.Wal_batch { epoch = e; from; next; count = _; records } ->
          let mine = epoch t in
          if e < mine then
            (* a resurrected old primary: refuse its stream outright *)
            finish `Refused
          else begin
            if e > mine then observe_epoch t e;
            match Xlog.replica_apply t.log ~from ~next records with
            | Ok durable -> (
              locked t (fun () -> update_lag_locked t);
              match
                P.write_frame fd (P.encode_request (P.Wal_ack { pos = durable }))
              with
              | () -> recv_loop ()
              | exception _ -> finish `Dead)
            | Error msg ->
              (* cursor mismatch or a batch that fails validation:
                 resubscribe from the real log end *)
              locked t (fun () ->
                  t.err <- Some (Printf.sprintf "batch refused: %s" msg));
              finish `Dead
            | exception Xlog.Degraded reason ->
              finish (`Fatal ("replica store degraded: " ^ reason))
          end
        | P.Repl_heartbeat { epoch = e; durable; next_id } ->
          let mine = epoch t in
          if e < mine then finish `Refused
          else begin
            if e > mine then observe_epoch t e;
            locked t (fun () ->
                t.watermark <- (next_id, durable);
                update_lag_locked t;
                t.err <- None);
            recv_loop ()
          end
        | P.Error { code = P.Not_primary; message = hint } ->
          finish (`Redirect hint)
        | P.Error { code = P.Pruned; message } ->
          (* the primary compacted past our cursor: WAL replay cannot
             reach us any more — fall back to a snapshot transfer *)
          finish (`Reseed message)
        | P.Error { code; message } ->
          locked t (fun () ->
              t.err <-
                Some
                  (Printf.sprintf "stream error %s: %s"
                     (P.error_code_to_string code)
                     message));
          finish `Dead
        | _ -> recv_loop ()
      in
      if subscribed then recv_loop () else finish `Dead

  (* --- election ----------------------------------------------------------- *)

  let probe_policy =
    {
      Client.default_policy with
      attempts = 1;
      connect_timeout_ms = 500;
      request_timeout_ms = 1000;
    }

  let probe_peer ep =
    match Server.addr_of_string ep with
    | Error _ -> None
    | Ok addr -> (
      match Client.connect ~policy:probe_policy addr with
      | exception _ -> None
      | c ->
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            match Client.repl_status ~timeout_ms:1000 c with
            | st -> Some st
            | exception _ -> None))

  (* The primary went silent: find a live primary to follow, or decide
     whether this node wins the election (highest durable position;
     advertise-string order breaks ties) and promote it. *)
  let try_elect t =
    let peers =
      List.filter (fun ep -> ep <> t.cfg.advertise && ep <> "") t.cfg.peers
    in
    let reachable =
      List.filter_map
        (fun ep -> Option.map (fun st -> (ep, st)) (probe_peer ep))
        peers
    in
    match
      List.find_opt
        (fun (_, st) ->
          st.Client.role = `Primary && st.Client.epoch >= epoch t)
        reachable
    with
    | Some (ep, st) ->
      (* someone is already primary: follow them *)
      observe_epoch t st.Client.epoch;
      locked t (fun () -> t.leader <- ep)
    | None ->
      let mine = Xlog.wal_durable_position t.log in
      let beats (ep, st) =
        let c = Xlog.Wal.position_compare st.Client.durable mine in
        c > 0 || (c = 0 && ep < t.cfg.advertise)
      in
      if List.exists beats reachable then
        (* a better-positioned follower exists; it will promote itself
           and we will find it on the next probe *)
        ()
      else
        match promote t with
        | Ok _ -> ()
        | Error m ->
          locked t (fun () -> t.err <- Some ("auto-promotion failed: " ^ m))

  (* --- snapshot re-seed ---------------------------------------------------- *)

  let reseed_policy =
    {
      Client.default_policy with
      attempts = 5;
      connect_timeout_ms = 2000;
      request_timeout_ms = 0;
    }

  (* Pull the primary's latest checkpoint into the staging area
     ([Client.fetch_snapshot] resumes across transport failures and
     commits to [xfer.ready]), then install it over the live store.
     On success the WAL cursor is the snapshot cut: the next
     subscription resumes tailing exactly where the stream stopped. *)
  let reseed_from t ep =
    match Server.addr_of_string ep with
    | Error m -> Error (Printf.sprintf "reseed: bad endpoint %S: %s" ep m)
    | Ok addr -> (
      match Client.connect ~policy:reseed_policy addr with
      | exception e -> Error ("reseed: " ^ Printexc.to_string e)
      | c ->
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            match Client.fetch_snapshot c ~dir:(Xlog.dir t.log) with
            | exception e -> Error ("reseed fetch: " ^ Printexc.to_string e)
            | _bytes -> (
              match Xlog.reseed t.log with
              | Ok () ->
                locked t (fun () ->
                    t.reseeds <- t.reseeds + 1;
                    t.err <- None);
                Ok ()
              | Error m -> Error ("reseed install: " ^ m))))

  (* --- lifecycle ---------------------------------------------------------- *)

  let run t =
    let retry () =
      (* sleep in small slices so stop stays prompt *)
      let slices = max 1 (t.cfg.retry_ms / 50) in
      let rec nap i =
        if i < slices && not (locked t (fun () -> t.stop_flag)) then begin
          Thread.delay 0.05;
          nap (i + 1)
        end
      in
      nap 0
    in
    while not (locked t (fun () -> t.stop_flag)) do
      match role t with
      | `Primary -> retry ()
      | `Follower -> (
        let target =
          locked t (fun () ->
              if t.leader <> "" then t.leader
              else Option.value t.cfg.follow ~default:"")
        in
        if target = "" then begin
          if t.cfg.auto_promote then try_elect t;
          retry ()
        end
        else
          let wants_reseed =
            locked t (fun () ->
                let w = t.reseed_req in
                t.reseed_req <- false;
                w)
          in
          let verdict =
            if wants_reseed then `Reseed "repair requested"
            else follow_once t target
          in
          match verdict with
          | `Stopped -> ()
          | `Redirect hint ->
            locked t (fun () -> t.leader <- hint);
            if hint = "" then retry ()
          | `Refused ->
            (* stale-epoch stream: forget this leader and rediscover *)
            locked t (fun () -> t.leader <- "");
            if t.cfg.auto_promote then try_elect t;
            retry ()
          | `Silent | `Dead ->
            if t.cfg.auto_promote then try_elect t;
            retry ()
          | `Reseed why -> (
            locked t (fun () ->
                t.err <- Some ("re-seeding from " ^ target ^ ": " ^ why));
            match reseed_from t target with
            | Ok () -> ()  (* loop: resubscribe from the snapshot cut *)
            | Error m ->
              locked t (fun () -> t.err <- Some m);
              retry ();
              retry ())
          | `Fatal msg ->
            locked t (fun () -> t.err <- Some msg);
            retry ();
            retry ())
    done

  let start t =
    locked t (fun () ->
        match t.thread with
        | Some _ -> ()
        | None ->
          t.stop_flag <- false;
          t.thread <- Some (Thread.create run t))

  let stop t =
    let th =
      locked t (fun () ->
          t.stop_flag <- true;
          (match t.sub_fd with
           | Some fd -> (
             try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
           | None -> ());
          let th = t.thread in
          t.thread <- None;
          th)
    in
    match th with None -> () | Some th -> ( try Thread.join th with _ -> ())
end
