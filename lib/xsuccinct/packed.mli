(** Block-wise delta + varint packing of int columns with sampled skip
    pointers.

    A column of [count] ints is cut into blocks of [block] elements.
    The first element of every block is stored verbatim in a [firsts]
    table (the skip pointers: probing element [b * block] touches no
    compressed data at all, and a binary search can narrow to one block
    using only the tables).  The remaining elements are zigzag deltas
    from their predecessor, varint-coded.  A per-block byte-offset
    table makes every block independently decodable, so a paged reader
    fetches and decodes exactly the blocks a probe touches.

    Serialized layout (all fixed-width fields little-endian):

    {v
      u32 count        element count
      u32 block        elements per block
      u32 nblocks      ceil(count / block)
      u32 data_len     bytes of delta stream
      u32 * nblocks    start offset of each block in the delta stream
      i64 * nblocks    first element of each block
      data_len bytes   zigzag varint deltas
    v}

    Decoding never trusts the input: every header field, offset and
    varint is bounds-checked and inconsistencies raise
    [Invalid_argument] naming the column, mirroring the diagnostics
    contract of [Xstorage.Store.open_file]. *)

type t
(** A parsed header: tables resident, delta stream fetched on demand. *)

val default_block : int
(** Elements per block used by {!encode} unless overridden (128). *)

val encode : ?block:int -> int array -> string
(** [encode xs] serializes [xs].  Deltas wrap modulo the int width, so
    arbitrary (unsorted, full-range) values round-trip exactly; sorted
    inputs just compress better.  Raises [Invalid_argument] if [block]
    is outside [1, 2^20]. *)

val parse : name:string -> fetch:(int -> int -> string) -> length:int -> t
(** [parse ~name ~fetch ~length] reads and validates the header of a
    serialized column of [length] total bytes.  [fetch off len] must
    return exactly [len] bytes starting at [off] (offsets relative to
    the start of the serialized form).  Only the header and tables are
    fetched; the delta stream is left on disk.  Raises
    [Invalid_argument] (mentioning [name]) on any inconsistency,
    including a [length] that disagrees with the header. *)

val count : t -> int
val block_size : t -> int
val nblocks : t -> int

val block_of : t -> int -> int
(** Block index holding element [i].  No bounds check. *)

val first : t -> int -> int
(** [first t b] is element [b * block_size t] — served from the
    resident skip table, no fetch.  Raises [Invalid_argument] if [b]
    is out of range. *)

val decode_block : t -> fetch:(int -> int -> string) -> int -> int array
(** [decode_block t ~fetch b] decodes block [b] (its full element
    array, [first] included).  Fetches only that block's byte range.
    Raises [Invalid_argument] on corrupt delta bytes. *)

val decode_all : t -> fetch:(int -> int -> string) -> int array
(** The whole column, decoded block by block. *)

val table_bytes : t -> int
(** Resident footprint of the parsed header and tables, in bytes. *)
