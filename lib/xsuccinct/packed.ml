type t = {
  p_name : string;
  p_count : int;
  p_block : int;
  p_nblocks : int;
  p_data_len : int;
  p_offsets : int array; (* start of each block in the delta stream *)
  p_firsts : int array;
  p_data_off : int; (* where the delta stream starts in the region *)
}

let default_block = 128
let max_block = 1 lsl 20
let header_fixed = 16

let fail name fmt =
  Printf.ksprintf (fun s -> invalid_arg (name ^ ": " ^ s)) fmt

(* Little-endian fixed-width helpers over strings/buffers. *)
let add_u32 buf v =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let add_i64 buf v =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let get_u32 name s off =
  if off < 0 || off + 4 > String.length s then
    fail name "u32 read at %d out of bounds" off;
  let b i = Char.code (String.unsafe_get s (off + i)) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let get_i64 name s off =
  if off < 0 || off + 8 > String.length s then
    fail name "i64 read at %d out of bounds" off;
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor Char.code (String.unsafe_get s (off + i))
  done;
  !v

let encode ?(block = default_block) xs =
  if block < 1 || block > max_block then
    invalid_arg
      (Printf.sprintf "Packed.encode: block size %d outside [1, %d]" block
         max_block);
  let count = Array.length xs in
  if count > 0xFFFF_FFFF then
    invalid_arg "Packed.encode: column too large for u32 header fields";
  let nblocks = (count + block - 1) / block in
  let data = Buffer.create (count * 2) in
  let offsets = Array.make nblocks 0 in
  let firsts = Array.make nblocks 0 in
  for b = 0 to nblocks - 1 do
    let lo = b * block in
    let hi = min count (lo + block) in
    offsets.(b) <- Buffer.length data;
    firsts.(b) <- xs.(lo);
    for i = lo + 1 to hi - 1 do
      (* Subtraction wraps mod the int width; decode re-wraps, so the
         round trip is exact even across min_int/max_int spans. *)
      Varint.add_uvarint data (Varint.zigzag (xs.(i) - xs.(i - 1)))
    done
  done;
  let data_len = Buffer.length data in
  if data_len > 0xFFFF_FFFF then
    invalid_arg "Packed.encode: delta stream too large for u32 header fields";
  let out =
    Buffer.create (header_fixed + (12 * nblocks) + data_len)
  in
  add_u32 out count;
  add_u32 out block;
  add_u32 out nblocks;
  add_u32 out data_len;
  Array.iter (fun o -> add_u32 out o) offsets;
  Array.iter (fun f -> add_i64 out f) firsts;
  Buffer.add_buffer out data;
  Buffer.contents out

let parse ~name ~fetch ~length =
  if length < header_fixed then
    fail name "serialized column of %d bytes is shorter than the %d-byte \
               header"
      length header_fixed;
  let hdr = fetch 0 header_fixed in
  if String.length hdr <> header_fixed then
    fail name "fetch returned %d bytes for the %d-byte header"
      (String.length hdr) header_fixed;
  let count = get_u32 name hdr 0 in
  let block = get_u32 name hdr 4 in
  let nblocks = get_u32 name hdr 8 in
  let data_len = get_u32 name hdr 12 in
  if block < 1 || block > max_block then
    fail name "block size %d outside [1, %d]" block max_block;
  if count < 0 then fail name "negative element count %d" count;
  let expect_nblocks = (count + block - 1) / block in
  if nblocks <> expect_nblocks then
    fail name "header claims %d blocks for %d elements of block size %d \
               (expected %d)"
      nblocks count block expect_nblocks;
  let data_off = header_fixed + (12 * nblocks) in
  if data_len < 0 || data_off + data_len <> length then
    fail name
      "header geometry (%d blocks, %d delta bytes) disagrees with the \
       stored length %d"
      nblocks data_len length;
  let tables =
    if nblocks = 0 then "" else fetch header_fixed (12 * nblocks)
  in
  if String.length tables <> 12 * nblocks then
    fail name "fetch returned %d bytes for the %d-byte tables"
      (String.length tables) (12 * nblocks);
  let offsets = Array.init nblocks (fun b -> get_u32 name tables (4 * b)) in
  let firsts =
    Array.init nblocks (fun b -> get_i64 name tables ((4 * nblocks) + (8 * b)))
  in
  Array.iteri
    (fun b o ->
      let next = if b + 1 < nblocks then offsets.(b + 1) else data_len in
      if o < 0 || o > data_len || next < o then
        fail name "block %d has byte range [%d, %d) outside the %d-byte \
                   delta stream"
          b o next data_len)
    offsets;
  {
    p_name = name;
    p_count = count;
    p_block = block;
    p_nblocks = nblocks;
    p_data_len = data_len;
    p_offsets = offsets;
    p_firsts = firsts;
    p_data_off = data_off;
  }

let count t = t.p_count
let block_size t = t.p_block
let nblocks t = t.p_nblocks
let block_of t i = i / t.p_block

let first t b =
  if b < 0 || b >= t.p_nblocks then
    fail t.p_name "skip-table index %d outside [0, %d)" b t.p_nblocks;
  t.p_firsts.(b)

let decode_block t ~fetch b =
  if b < 0 || b >= t.p_nblocks then
    fail t.p_name "block %d outside [0, %d)" b t.p_nblocks;
  let lo = b * t.p_block in
  let n = min t.p_block (t.p_count - lo) in
  let off = t.p_offsets.(b) in
  let next = if b + 1 < t.p_nblocks then t.p_offsets.(b + 1) else t.p_data_len in
  let len = next - off in
  let s = if len = 0 then "" else fetch (t.p_data_off + off) len in
  if String.length s <> len then
    fail t.p_name "fetch returned %d bytes for block %d's %d-byte range"
      (String.length s) b len;
  let out = Array.make n 0 in
  out.(0) <- t.p_firsts.(b);
  let pos = ref 0 in
  for i = 1 to n - 1 do
    let d = Varint.unzigzag (Varint.uvarint ~name:t.p_name s ~pos ~limit:len) in
    out.(i) <- out.(i - 1) + d
  done;
  if !pos <> len then
    fail t.p_name "block %d has %d trailing delta bytes" b (len - !pos);
  out

let decode_all t ~fetch =
  let out = Array.make t.p_count 0 in
  for b = 0 to t.p_nblocks - 1 do
    let xs = decode_block t ~fetch b in
    Array.blit xs 0 out (b * t.p_block) (Array.length xs)
  done;
  out

let table_bytes t = header_fixed + (12 * t.p_nblocks)
