(** A small self-contained LZ77 byte compressor for blob regions.

    Snapshot blobs (serialized documents, dictionary names) are full of
    repeated tag text; a greedy hash-chained LZ77 with varint-coded
    (literal-run, match) tokens shrinks them several-fold with no
    external dependency.  This is a storage codec, not a competitor to
    real compressors — the point is that blob regions stop dominating
    compressed snapshots.

    Layout: [u32 raw_len] then tokens.  Each token is [uvarint lit_len]
    + literal bytes, followed — unless output is complete — by
    [uvarint (match_len - 4), uvarint distance].  Matches copy from the
    already-produced output (overlap allowed), so decoding is a single
    forward pass, bounds-checked throughout; corrupt input raises
    [Invalid_argument] naming the caller's context. *)

val compress : string -> string
(** Compress [s].  Always decodable by {!decompress}; output may be
    larger than the input for incompressible data (worst case a few
    bytes per 2^15 of input, plus the 4-byte header). *)

val decompress : name:string -> string -> string
(** Inverse of {!compress}.  Raises [Invalid_argument] (mentioning
    [name]) on truncated or inconsistent input. *)
