(** Front coding (incremental encoding) of sorted string lists.

    Consecutive entries of a lexicographically sorted list share long
    prefixes — in a path trie's edge labels, almost all of them.  Each
    entry is stored as (shared-prefix length, fresh suffix), both
    varint-coded, so the dictionary costs roughly one suffix per
    distinct name instead of one full string per trie edge.

    Layout: [u32 count] then per entry [uvarint lcp, uvarint suffix_len,
    suffix bytes].  Decoding bounds-checks everything and raises
    [Invalid_argument] naming the caller's context on corrupt input. *)

val encode : string array -> string
(** [encode names] serializes [names], which must be sorted
    (duplicates allowed).  Raises [Invalid_argument] if unsorted — the
    decoder could not reproduce the order-dependent prefixes. *)

val decode : name:string -> string -> string array
(** Inverse of {!encode}.  Raises [Invalid_argument] (mentioning
    [name]) on truncated, trailing or inconsistent bytes. *)
