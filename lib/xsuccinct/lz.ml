let fail name fmt =
  Printf.ksprintf (fun s -> invalid_arg (name ^ ": " ^ s)) fmt

let min_match = 4
let hash_bits = 15
let hash_size = 1 lsl hash_bits

(* Multiplicative hash of the 4 bytes at [i]. *)
let hash4 s i =
  let b j = Char.code (String.unsafe_get s (i + j)) in
  let w = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  (w * 0x9E3779B1) lsr (31 - hash_bits) land (hash_size - 1)

let add_u32 buf v =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let max_chain = 32

let compress s =
  let n = String.length s in
  let out = Buffer.create (16 + (n / 2)) in
  add_u32 out n;
  (* Hash chains: head.(h) = most recent position hashing to [h],
     prev.(i) = previous position with i's hash — walked up to
     [max_chain] deep to find the longest match, not just the nearest. *)
  let head = Array.make hash_size (-1) in
  let prev = Array.make (max 1 n) (-1) in
  let insert i =
    let h = hash4 s i in
    prev.(i) <- head.(h);
    head.(h) <- i
  in
  let lit_start = ref 0 in
  let emit_literals upto =
    Varint.add_uvarint out (upto - !lit_start);
    Buffer.add_substring out s !lit_start (upto - !lit_start)
  in
  let i = ref 0 in
  while !i + min_match <= n do
    (* Walk the chain for the longest match at [i]. *)
    let best_len = ref 0 and best_pos = ref (-1) in
    let cand = ref head.(hash4 s !i) in
    let tries = ref max_chain in
    while !cand >= 0 && !tries > 0 do
      (* Cheap rejection: a longer match must agree where the current
         best ends.  [cand < i], so [i + best_len < n] bounds both
         probes; at [i + best_len = n] no longer match exists at all. *)
      if
        !best_len = 0
        || (!i + !best_len < n
            && Char.equal s.[!cand + !best_len] s.[!i + !best_len])
      then begin
        let k = ref 0 in
        while !i + !k < n && Char.equal s.[!cand + !k] s.[!i + !k] do
          incr k
        done;
        if !k > !best_len then begin
          best_len := !k;
          best_pos := !cand
        end
      end;
      cand := prev.(!cand);
      decr tries
    done;
    if !best_len >= min_match then begin
      let mlen = !best_len in
      emit_literals !i;
      Varint.add_uvarint out (mlen - min_match);
      Varint.add_uvarint out (!i - !best_pos);
      (* Seed the table across the matched span so later repeats of its
         interior are still found. *)
      let stop = min (!i + mlen) (n - min_match + 1) in
      let j = ref !i in
      while !j < stop do
        insert !j;
        incr j
      done;
      i := !i + mlen;
      lit_start := !i
    end
    else begin
      insert !i;
      incr i
    end
  done;
  (* A trailing empty run would be unread by the decoder (it stops as
     soon as the output is complete), so emit only a non-empty tail. *)
  if n > !lit_start then emit_literals n;
  Buffer.contents out

let decompress ~name s =
  let len = String.length s in
  if len < 4 then fail name "compressed blob of %d bytes lacks a header" len;
  let b i = Char.code (String.unsafe_get s i) in
  let raw_len = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  if raw_len < 0 then fail name "negative raw length";
  let out = Bytes.create raw_len in
  let produced = ref 0 in
  let pos = ref 4 in
  while !produced < raw_len do
    let lit = Varint.uvarint ~name s ~pos ~limit:len in
    if lit > raw_len - !produced then
      fail name "literal run of %d bytes overruns the %d-byte output" lit
        raw_len;
    if !pos + lit > len then
      fail name "literal run of %d bytes overruns the compressed input" lit;
    Bytes.blit_string s !pos out !produced lit;
    pos := !pos + lit;
    produced := !produced + lit;
    if !produced < raw_len then begin
      let mlen = min_match + Varint.uvarint ~name s ~pos ~limit:len in
      let dist = Varint.uvarint ~name s ~pos ~limit:len in
      if dist < 1 || dist > !produced then
        fail name "match distance %d with only %d bytes produced" dist
          !produced;
      if mlen > raw_len - !produced then
        fail name "match of %d bytes overruns the %d-byte output" mlen raw_len;
      (* Byte-by-byte: matches may overlap their own output. *)
      for k = 0 to mlen - 1 do
        Bytes.unsafe_set out (!produced + k)
          (Bytes.unsafe_get out (!produced + k - dist))
      done;
      produced := !produced + mlen
    end
  done;
  if !pos <> len then
    fail name "%d trailing bytes after output complete" (len - !pos);
  Bytes.unsafe_to_string out
