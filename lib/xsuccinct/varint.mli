(** LEB128 variable-length integers and zigzag signed mapping.

    The codecs in this library store non-negative 63-bit quantities as
    little-endian base-128 varints (7 payload bits per byte, high bit =
    continuation), at most 9 bytes per value.  Signed values go through
    the zigzag mapping first so small-magnitude deltas of either sign
    stay short.

    Decoding is fully bounds-checked: a truncated or overlong varint
    raises [Invalid_argument] naming the caller-supplied context — the
    same contract as [Xstorage.Store]'s snapshot validation. *)

val add_uvarint : Buffer.t -> int -> unit
(** [add_uvarint buf v] appends the unsigned LEB128 encoding of [v]'s
    63-bit two's-complement pattern.  Negative [v] is allowed (it
    encodes the full-width bit pattern, 9 bytes). *)

val uvarint : name:string -> string -> pos:int ref -> limit:int -> int
(** [uvarint ~name s ~pos ~limit] decodes one varint from [s] starting
    at [!pos], advancing [pos] past it.  Bytes at or beyond [limit] are
    out of bounds.  Raises [Invalid_argument] (mentioning [name]) on
    truncation or an encoding longer than 9 bytes. *)

val zigzag : int -> int
(** Map a signed int to an unsigned-looking one: 0, -1, 1, -2, ... to
    0, 1, 2, 3, ...  Total and invertible on the full int range. *)

val unzigzag : int -> int
(** Inverse of {!zigzag}. *)
