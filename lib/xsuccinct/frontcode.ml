let fail name fmt =
  Printf.ksprintf (fun s -> invalid_arg (name ^ ": " ^ s)) fmt

let add_u32 buf v =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let lcp a b =
  let n = min (String.length a) (String.length b) in
  let i = ref 0 in
  while !i < n && a.[!i] = b.[!i] do
    incr i
  done;
  !i

let encode names =
  let count = Array.length names in
  let buf = Buffer.create (64 + (count * 8)) in
  add_u32 buf count;
  Array.iteri
    (fun i s ->
      let prev = if i = 0 then "" else names.(i - 1) in
      if i > 0 && String.compare prev s > 0 then
        invalid_arg
          (Printf.sprintf
             "Frontcode.encode: input not sorted at entry %d (%S > %S)" i prev
             s);
      let shared = lcp prev s in
      Varint.add_uvarint buf shared;
      Varint.add_uvarint buf (String.length s - shared);
      Buffer.add_substring buf s shared (String.length s - shared))
    names;
  Buffer.contents buf

let decode ~name s =
  let len = String.length s in
  if len < 4 then fail name "front-coded blob of %d bytes lacks a header" len;
  let b i = Char.code (String.unsafe_get s i) in
  let count = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  if count < 0 || count > len then
    fail name "front-coded entry count %d is implausible for %d bytes" count
      len;
  let pos = ref 4 in
  let out = Array.make count "" in
  for i = 0 to count - 1 do
    let shared = Varint.uvarint ~name s ~pos ~limit:len in
    let fresh = Varint.uvarint ~name s ~pos ~limit:len in
    let prev = if i = 0 then "" else out.(i - 1) in
    if shared > String.length prev then
      fail name "entry %d shares %d bytes with a %d-byte predecessor" i
        shared (String.length prev);
    if fresh < 0 || !pos + fresh > len then
      fail name "entry %d's %d-byte suffix overruns the blob" i fresh;
    out.(i) <- String.sub prev 0 shared ^ String.sub s !pos fresh;
    pos := !pos + fresh
  done;
  if !pos <> len then fail name "%d trailing bytes after last entry" (len - !pos);
  out
