let add_uvarint buf v =
  (* lsr, not asr: treat [v] as its unsigned 63-bit pattern so the loop
     terminates for negative inputs (9 bytes, the worst case). *)
  let v = ref v in
  let continue = ref true in
  while !continue do
    let b = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let uvarint ~name s ~pos ~limit =
  let v = ref 0 and shift = ref 0 and p = ref !pos and fin = ref false in
  while not !fin do
    if !p >= limit || !p >= String.length s then
      invalid_arg (Printf.sprintf "%s: truncated varint at byte %d" name !p);
    if !shift > 56 then
      invalid_arg (Printf.sprintf "%s: varint longer than 9 bytes" name);
    let b = Char.code (String.unsafe_get s !p) in
    incr p;
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then fin := true
  done;
  pos := !p;
  !v

let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag u = (u lsr 1) lxor (-(u land 1))
