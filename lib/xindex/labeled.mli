(** The frozen, labelled index (Section 4.1, "Tree Labeling" and "Path
    Linking").

    Every trie node [n] is labelled with a pair [(n⊢, n⊣)]: its serial
    number in a depth-first traversal and the largest serial number among
    its descendants, so [x] is a descendant of [y] iff
    [x⊢ ∈ (y⊢, y⊣]].  For each distinct path encoding, a {e horizontal
    path link} holds the labels of all nodes with that encoding, in
    ascending serial order, ready for binary search (Figure 8/9).

    Additionally, each link entry stores the link position of its nearest
    same-encoding ancestor ([up]); this is what makes the sibling-cover /
    forward-prefix checks of Section 4.2 O(log) per candidate.

    {2 Columnar representation}

    The index is stored as flat columns (structure of arrays): per-node
    label columns, the concatenated link-entry columns ([l_pre] /
    [l_post] / [l_up] / [l_node], slot-major in deterministic path
    order), the sorted document table, and a small in-memory link
    directory of offsets into them.  Each column is an
    {!Xstorage.Store.column}, so one view serves three physical
    representations: heap [int array]s (the original pointer-rich
    backend, kept for A/B comparison), unboxed flat buffers, and pages
    of an open snapshot file read through the buffer pool.

    For I/O accounting, links and the document table are laid out on a
    {!Xstorage.Pager}-compatible byte layout (8-byte entries, page-aligned
    regions); the layout math is identical across backends. *)

module Path = Sequencing.Path

type t

type link
(** A horizontal path link. *)

type backend =
  | Heap_arrays  (** plain OCaml [int array] columns (the seed layout) *)
  | Columnar  (** unboxed flat buffers (structure of arrays) *)

val of_trie : ?backend:backend -> Trie.t -> t
(** Labels the trie (children visited in ascending path-id order, so the
    labelling is deterministic) and builds links and the document table.
    [backend] (default [Columnar]) picks the physical column
    representation; query answers are identical either way. *)

val remap : ?backend:backend -> t -> t
(** The same index over different physical columns (default [Columnar]).
    Used by the storage benchmarks and backend-equivalence tests. *)

val node_count : t -> int
(** Trie nodes excluding the virtual root (the paper's [N]). *)

val doc_count : t -> int

val root_pre : t -> int
(** Serial of the virtual root (0); its range spans the whole index. *)

val root_post : t -> int

val size_bytes : t -> record_count:int -> int
(** The paper's disk-size estimate [4n + cN] with [c = 8] (Section 6.2). *)

val link : t -> Path.t -> link option
(** The path link for an encoding; [None] if no node carries it. *)

val link_length : link -> int
val link_pre : link -> int -> int
val link_post : link -> int -> int

val link_up : link -> int -> int
(** Link position of the nearest same-encoding proper ancestor, or -1. *)

val link_node : link -> int -> int
(** Trie node id of a link entry. *)

val link_base : link -> int
(** Byte offset of the link's region in the simulated layout. *)

val entry_bytes : int
(** Bytes per link/doc entry in the layout (8). *)

val link_range : link -> lo:int -> hi:int -> int * int
(** [(first, last)] inclusive link positions with [lo <= pre <= hi];
    [first > last] when empty. *)

val link_floor : link -> int -> int
(** Largest position with [pre <= x], or -1. *)

val link_same_desc : link -> int -> bool
(** Whether the entry at this position has a same-encoding descendant —
    i.e. whether it "embeds identical siblings" in the sense of
    Algorithm 1.  Only then can a later match be sibling-covered, so the
    matcher skips the forward-prefix check otherwise. *)

val nearest_in_link : link -> int -> int
(** [nearest_in_link l pre] is the position of the deepest link entry
    whose range contains serial [pre] (the forward prefix of the node with
    that serial at this encoding's level), or -1.  Follows [up] pointers
    from the floor entry. *)

val docs_in_range : t -> lo:int -> hi:int -> f:(int -> unit) -> unit
(** Applies [f] to the id of every document whose sequence ends at a node
    with serial in [lo, hi].  Ids may repeat across calls but not within
    one call. *)

val doc_span : t -> lo:int -> hi:int -> int * int
(** [(first, last)] inclusive positions in the document table covered by
    the serial range — used for I/O accounting of the result fetch. *)

val doc_len : t -> int
(** Entries in the document table. *)

val doc_pre_at : t -> int -> int
(** End-node serial of document-table entry [i] (sorted ascending). *)

val doc_id_at : t -> int -> int
(** Document id of document-table entry [i]. *)

val docs_between : t -> first:int -> last:int -> f:(int -> unit) -> unit
(** Applies [f] to the doc id of every table position in
    [[first, last]] — the iteration half of {!docs_in_range}, for
    callers that located the span themselves (e.g. with instrumented
    probes). *)

val doc_table_base : t -> int
(** Byte offset of the document table region. *)

val layout_bytes : t -> int
(** Total bytes of the layout (links + doc table), page-aligned. *)

val pre_of_node : t -> int -> int
val post_of_node : t -> int -> int
val path_of_node : t -> int -> Path.t

val distinct_paths : t -> int
(** Number of horizontal links. *)

(** {1 Columnar snapshots}

    The index serialises to an {!Xstorage.Store} as a bag of named
    regions (label columns, link columns, link directory, document
    table, and a spelled-out path dictionary), so a snapshot written by
    {!Xstorage.Store.write} re-interns cleanly in any process — and, in
    paged mode, answers queries straight off disk. *)

val add_to_store : ?compact:bool -> t -> Xstorage.Store.t -> unit
(** Registers every index region with the store.  Region names are
    reserved; combine with other regions freely as long as names do not
    clash.  With [~compact:true] the path dictionary is written in its
    compact form — trie edges as (parent, designator id) pairs over a
    deduplicated, front-coded designator name table — the layout
    compressed (xseqcol2) snapshots use; {!of_store} reads either. *)

val of_store : Xstorage.Store.t -> t
(** Rebuilds the index view over the store's regions, re-interning the
    path dictionary into the current process.  Columns keep whatever
    backing the store has — resident buffers, disk pages behind the
    buffer pool, or compressed blocks decoded on probe — so opening a
    snapshot in paged mode yields an index that reads pages on demand.

    @raise Invalid_argument naming the inconsistency if the regions are
    missing, mis-sized, or internally contradictory.  Validation covers
    every cross-region invariant (sizes, dictionary parent order, id
    ranges, link-slice bounds), so a structurally valid file that passed
    checksums cannot produce out-of-bounds reads here. *)

val backing_store : t -> Xstorage.Store.t option
(** The open snapshot behind an index built by {!of_store}, for
    buffer-pool statistics; [None] for in-memory indexes. *)

type portable
(** A process-independent snapshot of the index: interned path ids are
    replaced by a self-contained path dictionary, so the snapshot can be
    marshalled and re-interned by {!of_portable} in a different process
    (where designator/path ids differ).  Superseded by the columnar
    snapshot for persistence; kept for structural fingerprinting in
    tests and benchmarks. *)

val to_portable : t -> portable

val of_portable : ?backend:backend -> portable -> t
(** Re-interns every path of the snapshot into the current process's
    tables and rebuilds the index.  [of_portable (to_portable t)] answers
    every query exactly as [t] does. *)

val path_multiple : t -> Path.t -> bool
(** Whether some indexed document contains the path at least twice
    (equivalently, whether some link entry has a same-encoding
    descendant).  This is the global identical-sibling trigger that query
    compilation must share with document encoding (see
    {!Sequencing.Encoder.encode}'s [ident]). *)
