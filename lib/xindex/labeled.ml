module Path = Sequencing.Path
module Ivec = Xutil.Ivec
module Bs = Xutil.Binsearch
module Store = Xstorage.Store

let entry_bytes = 8
let page_bytes = 4096

type backend = Heap_arrays | Columnar

(* The index is a set of flat columns (structure of arrays): per-node
   label columns, the concatenated link entry columns, the document
   table, and a small in-memory link directory of offsets into them.
   Columns are Store handles, so the very same view serves heap arrays,
   unboxed flat buffers, and disk pages behind the buffer pool. *)
type t = {
  n : int; (* nodes excluding virtual root *)
  pre : Store.column; (* node id -> serial *)
  post : Store.column;
  node_path : Store.column; (* node id -> dictionary index *)
  paths : Path.t array; (* dictionary: index -> interned path, depth order *)
  dir : (Path.t, int) Hashtbl.t; (* path -> link slot *)
  link_path : int array; (* slot -> dictionary index *)
  link_off : int array; (* slot -> first entry position in l_* columns *)
  link_len : int array;
  link_base : int array; (* slot -> byte offset in the simulated layout *)
  l_pre : Store.column; (* concatenated link entries, slot-major *)
  l_post : Store.column;
  l_up : Store.column;
  l_node : Store.column;
  doc_pre : Store.column; (* sorted *)
  doc_id : Store.column;
  doc_base : int;
  total_bytes : int;
  multi : bool array;
      (* Per-slot "some document carries this path twice" flags.  Computed
         eagerly at construction (one linear scan per link) so the frozen
         index is strictly read-only afterwards — query compilation probes
         this table from several domains at once. *)
  source : Store.t option; (* the open snapshot, for paged indexes *)
}

type link = {
  k_pre : Store.column;
  k_post : Store.column;
  k_up : Store.column;
  k_node : Store.column;
  loff : int;
  llen : int;
  lbase : int;
}

(* Link entries are in pre-order, so an entry has a same-encoding
   descendant iff the immediately following entry falls inside its
   range; a link is "multiple" iff any entry does. *)
let has_nested pres posts off len =
  let rec scan i =
    i + 1 < len && (pres.(off + i + 1) <= posts.(off + i) || scan (i + 1))
  in
  scan 0

(* Path dictionary: every path appearing anywhere is a trie-node path and
   the trie is prefix-closed, so the node paths cover the dictionary.
   Depth-then-id order guarantees parents precede children. *)
let build_dict node_paths =
  let seen = Hashtbl.create 256 in
  Array.iter (fun p -> Hashtbl.replace seen p ()) node_paths;
  let ordered =
    List.sort
      (fun a b ->
        match Stdlib.compare (Path.depth a) (Path.depth b) with
        | 0 -> Path.compare a b
        | c -> c)
      (Hashtbl.fold (fun p () acc -> p :: acc) seen [])
  in
  let paths = Array.of_list ordered in
  let index_of = Hashtbl.create (Array.length paths) in
  Array.iteri (fun i p -> Hashtbl.replace index_of p i) paths;
  (paths, index_of)

let freeze backend a =
  match backend with
  | Heap_arrays -> Store.heap a
  | Columnar -> Store.flat_of_array a

(* Mutable link accumulator used during the DFS. *)
type accum = {
  apath : Path.t;
  apres : Ivec.t;
  aposts : Ivec.t;
  aups : Ivec.t;
  anodes : Ivec.t;
}

let of_trie ?(backend = Columnar) trie =
  let nnodes = Trie.node_count trie + 1 in
  (* Adjacency: children of each node, sorted by path id for a
     deterministic labelling. *)
  let children = Array.make nnodes [] in
  Trie.iter_edges trie (fun parent child ->
      children.(parent) <- child :: children.(parent));
  Array.iteri
    (fun i kids ->
      children.(i) <-
        List.sort
          (fun a b -> Path.compare (Trie.path_of trie a) (Trie.path_of trie b))
          kids)
    children;
  let pre = Array.make nnodes 0 in
  let post = Array.make nnodes 0 in
  let node_paths = Array.make nnodes Path.epsilon in
  let accums : (Path.t, accum) Hashtbl.t = Hashtbl.create 1024 in
  let stacks : (Path.t, int list ref) Hashtbl.t = Hashtbl.create 1024 in
  let accum_of p =
    match Hashtbl.find_opt accums p with
    | Some a -> a
    | None ->
      let a =
        {
          apath = p;
          apres = Ivec.create ();
          aposts = Ivec.create ();
          aups = Ivec.create ();
          anodes = Ivec.create ();
        }
      in
      Hashtbl.replace accums p a;
      a
  in
  let stack_of p =
    match Hashtbl.find_opt stacks p with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.replace stacks p s;
      s
  in
  let counter = ref 0 in
  (* Iterative DFS with enter/exit events.  Exit frames carry the link
     position to backfill the post label. *)
  let stack = Stack.create () in
  Stack.push (`Enter 0) stack;
  while not (Stack.is_empty stack) do
    match Stack.pop stack with
    | `Enter node ->
      let serial = !counter in
      incr counter;
      pre.(node) <- serial;
      let p = Trie.path_of trie node in
      node_paths.(node) <- p;
      let link_pos =
        if node = 0 then -1
        else begin
          let a = accum_of p in
          let s = stack_of p in
          let up = match !s with [] -> -1 | top :: _ -> top in
          let pos = Ivec.length a.apres in
          Ivec.push a.apres serial;
          Ivec.push a.aposts 0;
          Ivec.push a.aups up;
          Ivec.push a.anodes node;
          s := pos :: !s;
          pos
        end
      in
      Stack.push (`Exit (node, link_pos)) stack;
      (* Push children reversed so the smallest path id is visited first. *)
      List.iter (fun c -> Stack.push (`Enter c) stack) (List.rev children.(node))
    | `Exit (node, link_pos) ->
      let last = !counter - 1 in
      post.(node) <- last;
      if node <> 0 then begin
        let p = node_paths.(node) in
        let a = accum_of p in
        Ivec.set a.aposts link_pos last;
        let s = stack_of p in
        (match !s with
         | _ :: rest -> s := rest
         | [] -> assert false)
      end
  done;
  (* Freeze links into the columnar layout: concatenated entry columns in
     deterministic path order, page-aligned byte bases per link (the
     paper's cost-model layout, one 8-byte unit per entry). *)
  let next_base = ref 0 in
  let alloc bytes =
    let base = !next_base in
    let pages = (max 1 bytes + page_bytes - 1) / page_bytes in
    next_base := base + (pages * page_bytes);
    base
  in
  let ordered =
    List.sort
      (fun a b -> Path.compare a.apath b.apath)
      (Hashtbl.fold (fun _ a acc -> a :: acc) accums [])
  in
  let nlinks = List.length ordered in
  let total_entries = nnodes - 1 in
  let l_pre = Array.make total_entries 0 in
  let l_post = Array.make total_entries 0 in
  let l_up = Array.make total_entries 0 in
  let l_node = Array.make total_entries 0 in
  let link_off = Array.make nlinks 0 in
  let link_len = Array.make nlinks 0 in
  let link_base = Array.make nlinks 0 in
  let link_path_t = Array.make nlinks Path.epsilon in
  let off = ref 0 in
  List.iteri
    (fun slot a ->
      let len = Ivec.length a.apres in
      link_off.(slot) <- !off;
      link_len.(slot) <- len;
      link_base.(slot) <- alloc (len * entry_bytes);
      link_path_t.(slot) <- a.apath;
      for i = 0 to len - 1 do
        l_pre.(!off + i) <- Ivec.get a.apres i;
        l_post.(!off + i) <- Ivec.get a.aposts i;
        l_up.(!off + i) <- Ivec.get a.aups i;
        l_node.(!off + i) <- Ivec.get a.anodes i
      done;
      off := !off + len)
    ordered;
  let dir = Hashtbl.create nlinks in
  Array.iteri (fun slot p -> Hashtbl.replace dir p slot) link_path_t;
  let multi =
    Array.init nlinks (fun slot ->
        has_nested l_pre l_post link_off.(slot) link_len.(slot))
  in
  (* Document table sorted by end-node serial. *)
  let entries = Trie.doc_entries trie in
  let pairs = Array.map (fun (node, doc) -> (pre.(node), doc)) entries in
  Array.sort (fun (a, _) (b, _) -> Stdlib.compare a b) pairs;
  let doc_pre = Array.map fst pairs in
  let doc_id = Array.map snd pairs in
  let doc_base = alloc (Array.length doc_pre * entry_bytes) in
  (* Dictionary and id-valued node-path column. *)
  let paths, index_of = build_dict node_paths in
  let node_path = Array.map (fun p -> Hashtbl.find index_of p) node_paths in
  let link_path = Array.map (fun p -> Hashtbl.find index_of p) link_path_t in
  let fz = freeze backend in
  {
    n = nnodes - 1;
    pre = fz pre;
    post = fz post;
    node_path = fz node_path;
    paths;
    dir;
    link_path;
    link_off;
    link_len;
    link_base;
    l_pre = fz l_pre;
    l_post = fz l_post;
    l_up = fz l_up;
    l_node = fz l_node;
    doc_pre = fz doc_pre;
    doc_id = fz doc_id;
    doc_base;
    total_bytes = !next_base;
    multi;
    source = None;
  }

let node_count t = t.n
let doc_count t = Store.length t.doc_id
let root_pre t = Store.get t.pre 0
let root_post t = Store.get t.post 0

let size_bytes t ~record_count = (4 * record_count) + (8 * t.n)

let link t p =
  match Hashtbl.find_opt t.dir p with
  | None -> None
  | Some slot ->
    Some
      {
        k_pre = t.l_pre;
        k_post = t.l_post;
        k_up = t.l_up;
        k_node = t.l_node;
        loff = t.link_off.(slot);
        llen = t.link_len.(slot);
        lbase = t.link_base.(slot);
      }

let link_length l = l.llen
let link_pre l i = Store.get l.k_pre (l.loff + i)
let link_post l i = Store.get l.k_post (l.loff + i)
let link_up l i = Store.get l.k_up (l.loff + i)
let link_node l i = Store.get l.k_node (l.loff + i)
let link_base l = l.lbase

let link_range l ~lo ~hi =
  let get i = link_pre l i in
  let first = Bs.lower_bound_by ~get ~len:l.llen lo in
  let last = Bs.upper_bound_by ~get ~len:l.llen hi - 1 in
  (first, last)

let link_floor l x = Bs.floor_index_by ~get:(fun i -> link_pre l i) ~len:l.llen x

(* Link entries are in pre-order, so an entry has a same-encoding
   descendant iff the immediately following entry falls inside its range. *)
let link_same_desc l i = i + 1 < l.llen && link_pre l (i + 1) <= link_post l i

(* Deepest same-encoding ancestor of serial [x]: start from the floor
   entry and climb [up] pointers until the range contains [x]. *)
let nearest_in_link l x =
  let rec climb i =
    if i < 0 then -1 else if link_post l i >= x then i else climb (link_up l i)
  in
  climb (link_floor l x)

let doc_len t = Store.length t.doc_pre
let doc_pre_at t i = Store.get t.doc_pre i
let doc_id_at t i = Store.get t.doc_id i

let doc_span t ~lo ~hi =
  let len = doc_len t in
  let get i = doc_pre_at t i in
  let first = Bs.lower_bound_by ~get ~len lo in
  let last = Bs.upper_bound_by ~get ~len hi - 1 in
  (first, last)

let docs_between t ~first ~last ~f =
  for i = first to last do
    f (doc_id_at t i)
  done

let docs_in_range t ~lo ~hi ~f =
  let first, last = doc_span t ~lo ~hi in
  docs_between t ~first ~last ~f

let doc_table_base t = t.doc_base
let layout_bytes t = t.total_bytes

let path_multiple t p =
  match Hashtbl.find_opt t.dir p with Some slot -> t.multi.(slot) | None -> false

let pre_of_node t id = Store.get t.pre id
let post_of_node t id = Store.get t.post id
let path_of_node t id = t.paths.(Store.get t.node_path id)
let distinct_paths t = Array.length t.link_off
let backing_store t = t.source

(* Rebuild the same index over a different column backend — used by the
   storage benchmarks and the backend-equivalence oracle tests. *)
let remap ?(backend = Columnar) t =
  let fz c = freeze backend (Store.to_array c) in
  {
    t with
    pre = fz t.pre;
    post = fz t.post;
    node_path = fz t.node_path;
    l_pre = fz t.l_pre;
    l_post = fz t.l_post;
    l_up = fz t.l_up;
    l_node = fz t.l_node;
    doc_pre = fz t.doc_pre;
    doc_id = fz t.doc_id;
    source = None;
  }

(* --- snapshot regions ---------------------------------------------------- *)

(* Region names in the columnar snapshot (see Xstorage.Store for the file
   format).  The dictionary spells each path out (kind + name + parent
   entry) so a snapshot re-interns cleanly in any process. *)

let dict_regions t store =
  let names = Buffer.create 1024 in
  let n = Array.length t.paths in
  let parent = Array.make n (-1) in
  let kind = Array.make n 0 in
  let name_off = Array.make (n + 1) 0 in
  let index_of = Hashtbl.create n in
  Array.iteri (fun i p -> Hashtbl.replace index_of p i) t.paths;
  Array.iteri
    (fun i p ->
      name_off.(i) <- Buffer.length names;
      if not (Path.equal p Path.epsilon) then begin
        let d = Path.tag p in
        parent.(i) <- Hashtbl.find index_of (Path.parent p);
        kind.(i) <- (if Xmlcore.Designator.is_value d then 1 else 0);
        Buffer.add_string names (Xmlcore.Designator.name d)
      end)
    t.paths;
  name_off.(n) <- Buffer.length names;
  Store.add_ints store "dict_parent" (Store.heap parent);
  Store.add_ints store "dict_kind" (Store.heap kind);
  Store.add_ints store "dict_name_off" (Store.heap name_off);
  Store.add_blob store "dict_names" (Buffer.contents names)

(* Compact dictionary: trie edges are (parent entry, designator id); the
   designators themselves are deduplicated into a (kind, name) table
   whose names — sorted, hence prefix-heavy — are front-coded.  A DBLP
   trie has thousands of edges over a few dozen distinct tags, so the
   edge cost drops from one spelled-out name per entry to one small
   id. *)
let dict_regions_compact t store =
  let n = Array.length t.paths in
  let parent = Array.make n (-1) in
  let desig = Array.make n (-1) in
  let index_of = Hashtbl.create n in
  Array.iteri (fun i p -> Hashtbl.replace index_of p i) t.paths;
  let uniq = Hashtbl.create 64 in
  Array.iter
    (fun p ->
      if not (Path.equal p Path.epsilon) then begin
        let d = Path.tag p in
        let k = if Xmlcore.Designator.is_value d then 1 else 0 in
        Hashtbl.replace uniq (Xmlcore.Designator.name d, k) ()
      end)
    t.paths;
  let pairs =
    List.sort Stdlib.compare (Hashtbl.fold (fun kv () acc -> kv :: acc) uniq [])
  in
  let id_of = Hashtbl.create (List.length pairs) in
  List.iteri (fun i kv -> Hashtbl.replace id_of kv i) pairs;
  Array.iteri
    (fun i p ->
      if not (Path.equal p Path.epsilon) then begin
        let d = Path.tag p in
        let k = if Xmlcore.Designator.is_value d then 1 else 0 in
        parent.(i) <- Hashtbl.find index_of (Path.parent p);
        desig.(i) <- Hashtbl.find id_of (Xmlcore.Designator.name d, k)
      end)
    t.paths;
  Store.add_ints store "dict_parent" (Store.heap parent);
  Store.add_ints store "dict_desig" (Store.heap desig);
  Store.add_ints store "desig_kind"
    (Store.heap (Array.of_list (List.map snd pairs)));
  Store.add_blob store "desig_names"
    (Xsuccinct.Frontcode.encode (Array.of_list (List.map fst pairs)))

let add_to_store ?(compact = false) t store =
  Store.add_ints store "meta"
    (Store.heap [| t.n; t.doc_base; t.total_bytes |]);
  (if compact then dict_regions_compact else dict_regions) t store;
  Store.add_ints store "node_pre" t.pre;
  Store.add_ints store "node_post" t.post;
  Store.add_ints store "node_path" t.node_path;
  Store.add_ints store "link_path" (Store.heap t.link_path);
  Store.add_ints store "link_off" (Store.heap t.link_off);
  Store.add_ints store "link_len" (Store.heap t.link_len);
  Store.add_ints store "link_base" (Store.heap t.link_base);
  Store.add_ints store "link_multi"
    (Store.heap (Array.map (fun b -> if b then 1 else 0) t.multi));
  Store.add_ints store "l_pre" t.l_pre;
  Store.add_ints store "l_post" t.l_post;
  Store.add_ints store "l_up" t.l_up;
  Store.add_ints store "l_node" t.l_node;
  Store.add_ints store "doc_pre" t.doc_pre;
  Store.add_ints store "doc_id" t.doc_id

let corrupt msg = invalid_arg ("Labeled.of_store: inconsistent snapshot: " ^ msg)

let of_store store =
  let meta = Store.to_array (Store.ints store "meta") in
  if Array.length meta <> 3 then corrupt "meta region size";
  let n = meta.(0) and doc_base = meta.(1) and total_bytes = meta.(2) in
  if n < 0 || doc_base < 0 || total_bytes < 0 then corrupt "negative meta field";
  (* Re-intern the dictionary (parents precede children by construction).
     Compact (xseqcol2) snapshots carry deduplicated designator ids over
     a front-coded name table; legacy snapshots spell each entry out. *)
  let parent = Store.to_array (Store.ints store "dict_parent") in
  let ndict = Array.length parent in
  let paths = Array.make (max 1 ndict) Path.epsilon in
  if Store.mem store "dict_desig" then begin
    let desig = Store.to_array (Store.ints store "dict_desig") in
    let dkind = Store.to_array (Store.ints store "desig_kind") in
    let dnames =
      try
        Xsuccinct.Frontcode.decode
          ~name:"Labeled.of_store: inconsistent snapshot: designator names"
          (Store.blob store "desig_names")
      with Invalid_argument _ -> corrupt "designator name table"
    in
    let ndesig = Array.length dnames in
    if Array.length desig <> ndict || Array.length dkind <> ndesig then
      corrupt "dictionary region sizes";
    let desigs =
      Array.init ndesig (fun i ->
          if dkind.(i) = 1 then Xmlcore.Designator.value dnames.(i)
          else if dkind.(i) = 0 then Xmlcore.Designator.tag dnames.(i)
          else corrupt "designator kind out of range")
    in
    for i = 0 to ndict - 1 do
      if parent.(i) < 0 then begin
        if desig.(i) >= 0 then corrupt "root entry with a designator";
        paths.(i) <- Path.epsilon
      end
      else begin
        if parent.(i) >= i then corrupt "dictionary parent order";
        if desig.(i) < 0 || desig.(i) >= ndesig then
          corrupt "designator id out of range";
        paths.(i) <- Path.child paths.(parent.(i)) desigs.(desig.(i))
      end
    done
  end
  else begin
    let kind = Store.to_array (Store.ints store "dict_kind") in
    let name_off = Store.to_array (Store.ints store "dict_name_off") in
    let names = Store.blob store "dict_names" in
    if Array.length kind <> ndict || Array.length name_off <> ndict + 1 then
      corrupt "dictionary region sizes";
    for i = 0 to ndict - 1 do
      let lo = name_off.(i) and hi = name_off.(i + 1) in
      if lo < 0 || hi < lo || hi > String.length names then
        corrupt "dictionary name offsets";
      if parent.(i) < 0 then paths.(i) <- Path.epsilon
      else begin
        if parent.(i) >= i then corrupt "dictionary parent order";
        let name = String.sub names lo (hi - lo) in
        let d =
          if kind.(i) = 1 then Xmlcore.Designator.value name
          else Xmlcore.Designator.tag name
        in
        paths.(i) <- Path.child paths.(parent.(i)) d
      end
    done
  end;
  let paths = Array.sub paths 0 ndict in
  let pre = Store.ints store "node_pre" in
  let post = Store.ints store "node_post" in
  let node_path = Store.ints store "node_path" in
  if Store.length pre <> n + 1 || Store.length post <> n + 1
     || Store.length node_path <> n + 1
  then corrupt "node column sizes";
  let link_path = Store.to_array (Store.ints store "link_path") in
  let link_off = Store.to_array (Store.ints store "link_off") in
  let link_len = Store.to_array (Store.ints store "link_len") in
  let link_base = Store.to_array (Store.ints store "link_base") in
  let link_multi = Store.to_array (Store.ints store "link_multi") in
  let nlinks = Array.length link_path in
  if
    Array.length link_off <> nlinks
    || Array.length link_len <> nlinks
    || Array.length link_base <> nlinks
    || Array.length link_multi <> nlinks
  then corrupt "link directory sizes";
  let l_pre = Store.ints store "l_pre" in
  let l_post = Store.ints store "l_post" in
  let l_up = Store.ints store "l_up" in
  let l_node = Store.ints store "l_node" in
  let total_entries = Store.length l_pre in
  if
    Store.length l_post <> total_entries
    || Store.length l_up <> total_entries
    || Store.length l_node <> total_entries
  then corrupt "link column sizes";
  let dir = Hashtbl.create nlinks in
  for slot = 0 to nlinks - 1 do
    if link_path.(slot) < 0 || link_path.(slot) >= ndict then
      corrupt "link path id out of range";
    if
      link_off.(slot) < 0 || link_len.(slot) < 0
      || link_off.(slot) + link_len.(slot) > total_entries
    then corrupt "link slice out of range";
    Hashtbl.replace dir paths.(link_path.(slot)) slot
  done;
  let doc_pre = Store.ints store "doc_pre" in
  let doc_id = Store.ints store "doc_id" in
  if Store.length doc_pre <> Store.length doc_id then corrupt "doc table sizes";
  for id = 0 to n do
    let pid = Store.get node_path id in
    if pid < 0 || pid >= ndict then corrupt "node path id out of range"
  done;
  {
    n;
    pre;
    post;
    node_path;
    paths;
    dir;
    link_path;
    link_off;
    link_len;
    link_base;
    l_pre;
    l_post;
    l_up;
    l_node;
    doc_pre;
    doc_id;
    doc_base;
    total_bytes;
    multi = Array.map (fun x -> x <> 0) link_multi;
    source = Some store;
  }

(* --- portability -------------------------------------------------------- *)

(* Paths are referenced through a dictionary whose entries spell out the
   designator (kind + source string) and point at their parent entry, in
   depth order so parents precede children.  Entry 0 is epsilon. *)
type dict_entry = { dparent : int; dkind : char; dname : string }

type portable_link = {
  s_path : int; (* dictionary index *)
  s_pres : int array;
  s_posts : int array;
  s_ups : int array;
  s_nodes : int array;
  s_base : int;
}

type portable = {
  s_version : int;
  s_dict : dict_entry array;
  s_n : int;
  s_pre : int array;
  s_post : int array;
  s_node_paths : int array; (* dictionary indexes *)
  s_links : portable_link array;
  s_doc_pres : int array;
  s_doc_ids : int array;
  s_doc_base : int;
  s_total_bytes : int;
}

let to_portable t =
  let index_of = Hashtbl.create (Array.length t.paths) in
  Array.iteri (fun i p -> Hashtbl.replace index_of p i) t.paths;
  let dict =
    Array.map
      (fun p ->
        if Path.equal p Path.epsilon then { dparent = -1; dkind = 'T'; dname = "" }
        else begin
          let d = Path.tag p in
          {
            dparent = Hashtbl.find index_of (Path.parent p);
            dkind = (if Xmlcore.Designator.is_value d then 'V' else 'T');
            dname = Xmlcore.Designator.name d;
          }
        end)
      t.paths
  in
  let slice col off len = Array.init len (fun i -> Store.get col (off + i)) in
  let links =
    List.sort
      (fun a b -> Stdlib.compare a.s_path b.s_path)
      (List.init (Array.length t.link_off) (fun slot ->
           {
             s_path = t.link_path.(slot);
             s_pres = slice t.l_pre t.link_off.(slot) t.link_len.(slot);
             s_posts = slice t.l_post t.link_off.(slot) t.link_len.(slot);
             s_ups = slice t.l_up t.link_off.(slot) t.link_len.(slot);
             s_nodes = slice t.l_node t.link_off.(slot) t.link_len.(slot);
             s_base = t.link_base.(slot);
           }))
  in
  {
    s_version = 1;
    s_dict = dict;
    s_n = t.n;
    s_pre = Store.to_array t.pre;
    s_post = Store.to_array t.post;
    s_node_paths = Store.to_array t.node_path;
    s_links = Array.of_list links;
    s_doc_pres = Store.to_array t.doc_pre;
    s_doc_ids = Store.to_array t.doc_id;
    s_doc_base = t.doc_base;
    s_total_bytes = t.total_bytes;
  }

let of_portable ?(backend = Columnar) s =
  if s.s_version <> 1 then invalid_arg "Labeled.of_portable: unknown version";
  (* Re-intern the dictionary (parents precede children by construction). *)
  let paths = Array.make (max 1 (Array.length s.s_dict)) Path.epsilon in
  Array.iteri
    (fun i e ->
      if e.dparent < 0 then paths.(i) <- Path.epsilon
      else begin
        let d =
          if e.dkind = 'V' then Xmlcore.Designator.value e.dname
          else Xmlcore.Designator.tag e.dname
        in
        paths.(i) <- Path.child paths.(e.dparent) d
      end)
    s.s_dict;
  let paths = Array.sub paths 0 (Array.length s.s_dict) in
  let nlinks = Array.length s.s_links in
  let total_entries = Array.fold_left (fun a l -> a + Array.length l.s_pres) 0 s.s_links in
  let l_pre = Array.make total_entries 0 in
  let l_post = Array.make total_entries 0 in
  let l_up = Array.make total_entries 0 in
  let l_node = Array.make total_entries 0 in
  let link_path = Array.make nlinks 0 in
  let link_off = Array.make nlinks 0 in
  let link_len = Array.make nlinks 0 in
  let link_base = Array.make nlinks 0 in
  let dir = Hashtbl.create nlinks in
  let off = ref 0 in
  Array.iteri
    (fun slot l ->
      let len = Array.length l.s_pres in
      link_path.(slot) <- l.s_path;
      link_off.(slot) <- !off;
      link_len.(slot) <- len;
      link_base.(slot) <- l.s_base;
      Array.blit l.s_pres 0 l_pre !off len;
      Array.blit l.s_posts 0 l_post !off len;
      Array.blit l.s_ups 0 l_up !off len;
      Array.blit l.s_nodes 0 l_node !off len;
      Hashtbl.replace dir paths.(l.s_path) slot;
      off := !off + len)
    s.s_links;
  let multi =
    Array.init nlinks (fun slot ->
        has_nested l_pre l_post link_off.(slot) link_len.(slot))
  in
  let fz = freeze backend in
  {
    n = s.s_n;
    pre = fz s.s_pre;
    post = fz s.s_post;
    node_path = fz s.s_node_paths;
    paths;
    dir;
    link_path;
    link_off;
    link_len;
    link_base;
    l_pre = fz l_pre;
    l_post = fz l_post;
    l_up = fz l_up;
    l_node = fz l_node;
    doc_pre = fz s.s_doc_pres;
    doc_id = fz s.s_doc_ids;
    doc_base = s.s_doc_base;
    total_bytes = s.s_total_bytes;
    multi;
    source = None;
  }
