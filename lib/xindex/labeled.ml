module Path = Sequencing.Path
module Ivec = Xutil.Ivec
module Bs = Xutil.Binsearch

let entry_bytes = 8
let page_bytes = 4096

type link = {
  lpath : Path.t;
  pres : int array;
  posts : int array;
  ups : int array;
  nodes : int array;
  mutable base : int;
}

type t = {
  n : int; (* nodes excluding virtual root *)
  pre : int array; (* node id -> serial *)
  post : int array;
  node_paths : Path.t array;
  links : (Path.t, link) Hashtbl.t;
  doc_pres : int array; (* sorted *)
  doc_ids : int array;
  doc_base : int;
  total_bytes : int;
  multi : (Path.t, bool) Hashtbl.t;
      (* Precomputed "some document carries this path twice" flags.
         Computed eagerly at construction (one linear scan per link) so
         the frozen index is strictly read-only afterwards — query
         compilation probes this table from several domains at once. *)
}

(* Link entries are in pre-order, so an entry has a same-encoding
   descendant iff the immediately following entry falls inside its
   range; a link is "multiple" iff any entry does. *)
let link_has_nested l =
  let n = Array.length l.pres in
  let rec scan i = i + 1 < n && (l.pres.(i + 1) <= l.posts.(i) || scan (i + 1)) in
  scan 0

let multi_of_links links =
  let multi = Hashtbl.create (Hashtbl.length links) in
  Hashtbl.iter (fun p l -> Hashtbl.replace multi p (link_has_nested l)) links;
  multi

(* Mutable link accumulator used during the DFS. *)
type accum = {
  apath : Path.t;
  apres : Ivec.t;
  aposts : Ivec.t;
  aups : Ivec.t;
  anodes : Ivec.t;
}

let of_trie trie =
  let nnodes = Trie.node_count trie + 1 in
  (* Adjacency: children of each node, sorted by path id for a
     deterministic labelling. *)
  let children = Array.make nnodes [] in
  Trie.iter_edges trie (fun parent child ->
      children.(parent) <- child :: children.(parent));
  Array.iteri
    (fun i kids ->
      children.(i) <-
        List.sort
          (fun a b -> Path.compare (Trie.path_of trie a) (Trie.path_of trie b))
          kids)
    children;
  let pre = Array.make nnodes 0 in
  let post = Array.make nnodes 0 in
  let node_paths = Array.make nnodes Path.epsilon in
  let accums : (Path.t, accum) Hashtbl.t = Hashtbl.create 1024 in
  let stacks : (Path.t, int list ref) Hashtbl.t = Hashtbl.create 1024 in
  let accum_of p =
    match Hashtbl.find_opt accums p with
    | Some a -> a
    | None ->
      let a =
        {
          apath = p;
          apres = Ivec.create ();
          aposts = Ivec.create ();
          aups = Ivec.create ();
          anodes = Ivec.create ();
        }
      in
      Hashtbl.replace accums p a;
      a
  in
  let stack_of p =
    match Hashtbl.find_opt stacks p with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.replace stacks p s;
      s
  in
  let counter = ref 0 in
  (* Iterative DFS with enter/exit events.  Exit frames carry the link
     position to backfill the post label. *)
  let stack = Stack.create () in
  Stack.push (`Enter 0) stack;
  while not (Stack.is_empty stack) do
    match Stack.pop stack with
    | `Enter node ->
      let serial = !counter in
      incr counter;
      pre.(node) <- serial;
      let p = Trie.path_of trie node in
      node_paths.(node) <- p;
      let link_pos =
        if node = 0 then -1
        else begin
          let a = accum_of p in
          let s = stack_of p in
          let up = match !s with [] -> -1 | top :: _ -> top in
          let pos = Ivec.length a.apres in
          Ivec.push a.apres serial;
          Ivec.push a.aposts 0;
          Ivec.push a.aups up;
          Ivec.push a.anodes node;
          s := pos :: !s;
          pos
        end
      in
      Stack.push (`Exit (node, link_pos)) stack;
      (* Push children reversed so the smallest path id is visited first. *)
      List.iter (fun c -> Stack.push (`Enter c) stack) (List.rev children.(node))
    | `Exit (node, link_pos) ->
      let last = !counter - 1 in
      post.(node) <- last;
      if node <> 0 then begin
        let p = node_paths.(node) in
        let a = accum_of p in
        Ivec.set a.aposts link_pos last;
        let s = stack_of p in
        (match !s with
         | _ :: rest -> s := rest
         | [] -> assert false)
      end
  done;
  (* Freeze links and lay them out on pages. *)
  let links = Hashtbl.create (Hashtbl.length accums) in
  let next_base = ref 0 in
  let alloc bytes =
    let base = !next_base in
    let pages = (max 1 bytes + page_bytes - 1) / page_bytes in
    next_base := base + (pages * page_bytes);
    base
  in
  (* Deterministic layout order: by path id. *)
  let ordered =
    List.sort
      (fun a b -> Path.compare a.apath b.apath)
      (Hashtbl.fold (fun _ a acc -> a :: acc) accums [])
  in
  List.iter
    (fun a ->
      let l =
        {
          lpath = a.apath;
          pres = Ivec.to_array a.apres;
          posts = Ivec.to_array a.aposts;
          ups = Ivec.to_array a.aups;
          nodes = Ivec.to_array a.anodes;
          base = 0;
        }
      in
      l.base <- alloc (Array.length l.pres * entry_bytes);
      Hashtbl.replace links a.apath l)
    ordered;
  (* Document table sorted by end-node serial. *)
  let entries = Trie.doc_entries trie in
  let pairs = Array.map (fun (node, doc) -> (pre.(node), doc)) entries in
  Array.sort (fun (a, _) (b, _) -> Stdlib.compare a b) pairs;
  let doc_pres = Array.map fst pairs in
  let doc_ids = Array.map snd pairs in
  let doc_base = alloc (Array.length doc_pres * entry_bytes) in
  {
    n = nnodes - 1;
    pre;
    post;
    node_paths;
    links;
    doc_pres;
    doc_ids;
    doc_base;
    total_bytes = !next_base;
    multi = multi_of_links links;
  }

let node_count t = t.n
let doc_count t = Array.length t.doc_ids
let root_pre t = t.pre.(0)
let root_post t = t.post.(0)

let size_bytes t ~record_count = (4 * record_count) + (8 * t.n)

let link t p = Hashtbl.find_opt t.links p
let link_length l = Array.length l.pres
let link_pre l i = l.pres.(i)
let link_post l i = l.posts.(i)
let link_up l i = l.ups.(i)
let link_node l i = l.nodes.(i)
let link_base l = l.base

let link_range l ~lo ~hi =
  let len = Array.length l.pres in
  let first = Bs.lower_bound l.pres ~len lo in
  let last = Bs.upper_bound l.pres ~len hi - 1 in
  (first, last)

let link_floor l x = Bs.floor_index l.pres ~len:(Array.length l.pres) x

(* Link entries are in pre-order, so an entry has a same-encoding
   descendant iff the immediately following entry falls inside its range. *)
let link_same_desc l i =
  i + 1 < Array.length l.pres && l.pres.(i + 1) <= l.posts.(i)

(* Deepest same-encoding ancestor of serial [x]: start from the floor
   entry and climb [up] pointers until the range contains [x]. *)
let nearest_in_link l x =
  let rec climb i =
    if i < 0 then -1 else if l.posts.(i) >= x then i else climb l.ups.(i)
  in
  climb (link_floor l x)

let doc_span t ~lo ~hi =
  let len = Array.length t.doc_pres in
  let first = Bs.lower_bound t.doc_pres ~len lo in
  let last = Bs.upper_bound t.doc_pres ~len hi - 1 in
  (first, last)

let docs_in_range t ~lo ~hi ~f =
  let first, last = doc_span t ~lo ~hi in
  for i = first to last do
    f t.doc_ids.(i)
  done

let doc_table_base t = t.doc_base
let layout_bytes t = t.total_bytes

(* --- portability -------------------------------------------------------- *)

(* Paths are referenced through a dictionary whose entries spell out the
   designator (kind + source string) and point at their parent entry, in
   depth order so parents precede children.  Entry 0 is epsilon. *)
type dict_entry = { dparent : int; dkind : char; dname : string }

type portable_link = {
  s_path : int; (* dictionary index *)
  s_pres : int array;
  s_posts : int array;
  s_ups : int array;
  s_nodes : int array;
  s_base : int;
}

type portable = {
  s_version : int;
  s_dict : dict_entry array;
  s_n : int;
  s_pre : int array;
  s_post : int array;
  s_node_paths : int array; (* dictionary indexes *)
  s_links : portable_link array;
  s_doc_pres : int array;
  s_doc_ids : int array;
  s_doc_base : int;
  s_total_bytes : int;
}

let to_portable t =
  (* Every path appearing anywhere is a trie-node path, and the trie is
     prefix-closed, so node_paths covers the whole dictionary. *)
  let paths = Hashtbl.create 256 in
  Array.iter (fun p -> Hashtbl.replace paths p ()) t.node_paths;
  Hashtbl.iter (fun p _ -> Hashtbl.replace paths p ()) t.links;
  let ordered =
    List.sort
      (fun a b -> Stdlib.compare (Path.depth a) (Path.depth b))
      (Hashtbl.fold (fun p () acc -> p :: acc) paths [])
  in
  let index_of = Hashtbl.create 256 in
  List.iteri (fun i p -> Hashtbl.replace index_of p i) ordered;
  let dict =
    Array.of_list
      (List.map
         (fun p ->
           if Path.equal p Path.epsilon then
             { dparent = -1; dkind = 'T'; dname = "" }
           else begin
             let d = Path.tag p in
             {
               dparent = Hashtbl.find index_of (Path.parent p);
               dkind = (if Xmlcore.Designator.is_value d then 'V' else 'T');
               dname = Xmlcore.Designator.name d;
             }
           end)
         ordered)
  in
  let idx p = Hashtbl.find index_of p in
  let links =
    List.sort
      (fun a b -> Stdlib.compare a.s_path b.s_path)
      (Hashtbl.fold
         (fun p l acc ->
           {
             s_path = idx p;
             s_pres = l.pres;
             s_posts = l.posts;
             s_ups = l.ups;
             s_nodes = l.nodes;
             s_base = l.base;
           }
           :: acc)
         t.links [])
  in
  {
    s_version = 1;
    s_dict = dict;
    s_n = t.n;
    s_pre = t.pre;
    s_post = t.post;
    s_node_paths = Array.map idx t.node_paths;
    s_links = Array.of_list links;
    s_doc_pres = t.doc_pres;
    s_doc_ids = t.doc_ids;
    s_doc_base = t.doc_base;
    s_total_bytes = t.total_bytes;
  }

let of_portable s =
  if s.s_version <> 1 then invalid_arg "Labeled.of_portable: unknown version";
  (* Re-intern the dictionary (parents precede children by construction). *)
  let paths = Array.make (Array.length s.s_dict) Path.epsilon in
  Array.iteri
    (fun i e ->
      if e.dparent < 0 then paths.(i) <- Path.epsilon
      else begin
        let d =
          if e.dkind = 'V' then Xmlcore.Designator.value e.dname
          else Xmlcore.Designator.tag e.dname
        in
        paths.(i) <- Path.child paths.(e.dparent) d
      end)
    s.s_dict;
  let links = Hashtbl.create (Array.length s.s_links) in
  Array.iter
    (fun l ->
      Hashtbl.replace links paths.(l.s_path)
        {
          lpath = paths.(l.s_path);
          pres = l.s_pres;
          posts = l.s_posts;
          ups = l.s_ups;
          nodes = l.s_nodes;
          base = l.s_base;
        })
    s.s_links;
  {
    n = s.s_n;
    pre = s.s_pre;
    post = s.s_post;
    node_paths = Array.map (fun i -> paths.(i)) s.s_node_paths;
    links;
    doc_pres = s.s_doc_pres;
    doc_ids = s.s_doc_ids;
    doc_base = s.s_doc_base;
    total_bytes = s.s_total_bytes;
    multi = multi_of_links links;
  }

let path_multiple t p =
  match Hashtbl.find_opt t.multi p with Some b -> b | None -> false
let pre_of_node t id = t.pre.(id)
let post_of_node t id = t.post.(id)
let path_of_node t id = t.node_paths.(id)
let distinct_paths t = Hashtbl.length t.links
