module Path = Sequencing.Path
module Ivec = Xutil.Ivec

type t = {
  paths : Ivec.t; (* node id -> path id; node 0 is the virtual root *)
  edges : (int, int) Hashtbl.t; (* (parent << 31) | path  ->  child node *)
  doc_nodes : Ivec.t;
  doc_ids : Ivec.t;
}

let create () =
  let paths = Ivec.create ~capacity:1024 () in
  Ivec.push paths (Path.to_int Path.epsilon);
  { paths; edges = Hashtbl.create 4096; doc_nodes = Ivec.create (); doc_ids = Ivec.create () }

let root _ = 0

let edge_key parent path =
  (* Node and path ids stay well below 2^31 at any realistic scale. *)
  (parent lsl 31) lor path

let child_of t parent path =
  Hashtbl.find_opt t.edges (edge_key parent (Path.to_int path))

let add_child t parent path =
  let id = Ivec.length t.paths in
  Ivec.push t.paths (Path.to_int path);
  Hashtbl.replace t.edges (edge_key parent (Path.to_int path)) id;
  id

let insert t seq ~doc =
  if Array.length seq = 0 then invalid_arg "Trie.insert: empty sequence";
  let node = ref 0 in
  Array.iter
    (fun p ->
      node :=
        (match child_of t !node p with
         | Some c -> c
         | None -> add_child t !node p))
    seq;
  Ivec.push t.doc_nodes !node;
  Ivec.push t.doc_ids doc

let compare_seq (a, _) (b, _) =
  let la = Array.length a and lb = Array.length b in
  let rec loop i =
    if i >= la || i >= lb then Stdlib.compare la lb
    else
      let c = Path.compare a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let bulk_load t seqs =
  let sorted = Array.copy seqs in
  Array.sort compare_seq sorted;
  Array.iter (fun (seq, doc) -> insert t seq ~doc) sorted

let node_count t = Ivec.length t.paths - 1
let doc_count t = Ivec.length t.doc_ids
let path_of t id = Path.of_int (Ivec.get t.paths id)

let iter_edges t f = Hashtbl.iter (fun key child -> f (key lsr 31) child) t.edges

let children_sorted t parent =
  (* Enumerating the edge table per node would be quadratic; [Labeled]
     calls this through a precomputed adjacency built once.  For direct
     use we still provide a correct (if slow) fallback. *)
  let acc = ref [] in
  Hashtbl.iter
    (fun key child -> if key lsr 31 = parent then acc := child :: !acc)
    t.edges;
  List.sort (fun a b -> Stdlib.compare (Ivec.get t.paths a) (Ivec.get t.paths b)) !acc

let doc_entries t =
  Array.init (Ivec.length t.doc_ids) (fun i ->
      (Ivec.get t.doc_nodes i, Ivec.get t.doc_ids i))
