(** The trie of constraint sequences (Section 4.1, "Sequence Insertion").

    Every document's constraint sequence is inserted as a root-to-node
    path; shared prefixes share trie nodes — the extent of sharing is
    exactly what the sequencing strategy optimises (Figure 14).  The
    document id is appended to the id list of the node where its sequence
    ends. *)

module Path = Sequencing.Path

type t

val create : unit -> t

val insert : t -> Path.t array -> doc:int -> unit
(** Inserts one sequence; [doc] is the caller's document/record id.
    @raise Invalid_argument on an empty sequence. *)

val bulk_load : t -> (Path.t array * int) array -> unit
(** Sorts the sequences lexicographically before inserting — the paper's
    static bulk load.  The resulting trie is identical to one built by
    repeated {!insert}. *)

val node_count : t -> int
(** Number of trie nodes, excluding the virtual root. *)

val doc_count : t -> int
(** Number of inserted sequences. *)

(** Internal accessors used by {!Labeled} (stable, but not part of the
    user-facing API). *)

val root : t -> int
val path_of : t -> int -> Path.t
val children_sorted : t -> int -> int list
val iter_edges : t -> (int -> int -> unit) -> unit
(** [iter_edges t f] applies [f parent child] to every trie edge, in no
    particular order. *)

val doc_entries : t -> (int * int) array
(** [(end_node, doc_id)] pairs in insertion order. *)
