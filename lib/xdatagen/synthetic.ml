module Schema = Xschema.Schema
module T = Xmlcore.Xml_tree

type params = { l : int; f : int; a : int; i : int; p : int }

let name { l; f; a; i; p } = Printf.sprintf "L%dF%dA%dI%dP%d" l f a i p

let parse_name s =
  try Scanf.sscanf s "L%dF%dA%dI%dP%d" (fun l f a i p -> { l; f; a; i; p })
  with Scanf.Scan_failure _ | Failure _ | End_of_file ->
    invalid_arg ("Synthetic.parse_name: " ^ s)

(* Plausible value-domain sizes: a handful of enumerations (think US
   states) up to hash ranges (Section 5.2 discusses 1/55 and 1/1000). *)
let domain_sizes = [| 10; 25; 55; 100; 250; 1000 |]

let schema ?(seed = 7) params =
  if params.l < 1 then invalid_arg "Synthetic.schema: height must be >= 1";
  let rng = Random.State.make [| seed; params.l; params.f; params.a; params.i; params.p |] in
  let tag_counter = ref 0 in
  let fresh_tag () =
    incr tag_counter;
    Printf.sprintf "e%d" !tag_counter
  in
  let occurrence () =
    let lo = float_of_int params.p /. 100.0 in
    lo +. Random.State.float rng (1.0 -. lo)
  in
  let pick_domain () = domain_sizes.(Random.State.int rng (Array.length domain_sizes)) in
  let rec gen_element depth =
    let tag = fresh_tag () in
    let exist = occurrence () in
    if depth >= params.l then
      (* Leaf level: give it a value so queries have something to test. *)
      Schema.node ~exist ~value:(Schema.uniform_values (pick_domain ())) tag []
    else begin
      (* Internal schema nodes use the full fanout F; the occurrence
         probabilities (step two) thin the actual documents out.  This
         keeps average sequence lengths in the paper's range (~25 for
         L3F5A25P40). *)
      let fanout = params.f in
      let children = ref [] in
      for _slot = 1 to fanout do
        let child =
          if Random.State.int rng 100 < params.a then
            (* A value child: a leaf element carrying a value. *)
            Schema.node ~exist:(occurrence ())
              ~value:(Schema.uniform_values (pick_domain ()))
              (fresh_tag ()) []
          else gen_element (depth + 1)
        in
        children := child :: !children
      done;
      let children = List.rev !children in
      (* Identical siblings: rename a child (beyond the first) to a random
         earlier sibling's tag with probability I%. *)
      let children =
        List.mapi
          (fun k (c : Schema.t) ->
            if k > 0 && Random.State.int rng 100 < params.i then begin
              let earlier = List.nth children (Random.State.int rng k) in
              { c with tag = earlier.Schema.tag }
            end
            else c)
          children
      in
      Schema.node ~exist tag children
    end
  in
  let root = gen_element 1 in
  { root with exist = 1.0 }

let gen_doc rng (schema : Schema.t) =
  let rec gen (s : Schema.t) =
    let value_leaf =
      match s.value with
      | None -> []
      | Some v ->
        let idx =
          if v.known <> [] then begin
            (* weighted choice over known values, uniform fallback *)
            let u = Random.State.float rng 1.0 in
            let rec pick acc = function
              | (text, p) :: rest ->
                let acc = acc +. p in
                if u < acc then Some text else pick acc rest
              | [] -> None
            in
            match pick 0.0 v.known with
            | Some text -> `Text text
            | None -> `Index (Random.State.int rng (max 1 v.cardinality))
          end
          else `Index (Random.State.int rng (max 1 v.cardinality))
        in
        (match idx with
         | `Text text -> [ T.Value text ]
         | `Index k -> [ T.Value (Printf.sprintf "%s_v%d" s.tag k) ])
    in
    let kids =
      List.filter_map
        (fun (c : Schema.t) ->
          if Random.State.float rng 1.0 < c.exist then Some (gen c) else None)
        s.children
    in
    T.Element (Xmlcore.Designator.tag s.tag, value_leaf @ kids)
  in
  gen schema

let generate ?(seed = 11) ~schema n =
  let rng = Random.State.make [| seed |] in
  Array.init n (fun _ -> gen_doc rng schema)

let dataset ?(schema_seed = 7) ?(data_seed = 11) params n =
  let s = schema ~seed:schema_seed params in
  generate ~seed:data_seed ~schema:s n
