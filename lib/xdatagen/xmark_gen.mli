(** XMark-like auction-site records.

    The paper runs on XMark documents decomposed into sub-structure
    records ([item], [person], [open_auction], [closed_auction]), each
    rooted at [site] so that queries like [/site//item...] apply
    (Section 6.1, Tables 4–7).  This mini-xmlgen reproduces that record
    stream with the same element vocabulary and value dictionaries; the
    [identical_siblings] switch controls whether repeating children
    ([incategory], [mail], [bidder], [interest], [watch]) may occur more
    than once — the distinction between Tables 5 and 6. *)

val generate :
  ?seed:int -> identical_siblings:bool -> int -> Xmlcore.Xml_tree.t array
(** [generate ~identical_siblings n] draws [n] records (≈50% items, 25%
    persons, 12.5% open auctions, 12.5% closed auctions).  Deterministic
    in (seed, n). *)

val a_person_id : int -> string
(** A person id guaranteed to occur as a seller in a dataset of [n]
    records (person references are Zipf-skewed, so this is the most
    popular person) — used to pose Table 4's Q3. *)

val q1_date : string
(** The date literal of Q1 ("07/05/2000"), generated with boosted
    frequency so the query has a small non-empty answer. *)

val q3_date : string
(** The date literal of Q3 ("12/15/1999"). *)
