(** The paper's synthetic tree-structure generator (Section 6.1).

    Generation takes three steps.  First a random DTD schema is built from
    the user parameters; second, each schema node receives an occurrence
    probability uniform in [P%, 1.0]; third, N tree structures are
    generated from the schema, each node's existence decided by its
    probability.  Datasets are named by their parameters, e.g.
    [L3F5A25I0P40]. *)

type params = {
  l : int;  (** maximum tree height *)
  f : int;  (** maximum fanout of a node *)
  a : int;  (** percentage of value child nodes *)
  i : int;  (** percentage of identical sibling nodes *)
  p : int;  (** lower bound (percent) of the occurrence probability *)
}

val name : params -> string
(** E.g. [{l=3; f=5; a=25; i=0; p=40}] is ["L3F5A25I0P40"]. *)

val parse_name : string -> params
(** Inverse of {!name}.  @raise Invalid_argument on malformed input. *)

val schema : ?seed:int -> params -> Xschema.Schema.t
(** The random DTD with occurrence probabilities and value-slot domains.
    Deterministic in (seed, params). *)

val generate : ?seed:int -> schema:Xschema.Schema.t -> int -> Xmlcore.Xml_tree.t array
(** [generate ~schema n] draws [n] documents from the schema.  Documents
    where every optional child happened to be absent still contain the
    root.  Deterministic in (seed, schema). *)

val dataset : ?schema_seed:int -> ?data_seed:int -> params -> int -> Xmlcore.Xml_tree.t array
(** Schema + documents in one call. *)
