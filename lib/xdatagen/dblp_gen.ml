module T = Xmlcore.Xml_tree

let author_pool_size = 2000

(* Author names are "First Last" over the dictionaries, with a stable
   Zipf skew: a few very prolific authors, a long tail.  Index 0 is the
   paper's favourite, "David Maier"-adjacent: we pin a couple of names so
   Table 8's queries ("author David...", book key "Maier") always hit. *)
let author_name k =
  match k with
  | 0 -> "David Maier"
  | 1 -> "David DeWitt"
  | 2 -> "David Johnson"
  | _ ->
    let f = Names.first_names.(k * 7919 mod Array.length Names.first_names) in
    let l = Names.last_names.(k * 104729 mod Array.length Names.last_names) in
    Printf.sprintf "%s %s" f l

let title rng =
  let n = 3 + Random.State.int rng 6 in
  String.concat " " (List.init n (fun _ -> Names.pick rng Names.words))

let authors rng =
  let n = 1 + Names.zipf_index rng ~s:1.6 4 in
  List.init n (fun _ -> author_name (Names.zipf_index rng ~s:1.05 author_pool_size))

let year rng = string_of_int (1970 + Random.State.int rng 36)
let pages rng =
  let first = 1 + Random.State.int rng 800 in
  Printf.sprintf "%d-%d" first (first + 8 + Random.State.int rng 30)

let field name value = T.elt name [ T.text value ]

let record rng id =
  let kind = Random.State.int rng 100 in
  let auth = authors rng in
  let author_elts = List.map (fun a -> field "author" a) auth in
  let last_name a =
    match String.rindex_opt a ' ' with
    | Some i -> String.sub a (i + 1) (String.length a - i - 1)
    | None -> a
  in
  let key_of venue =
    Printf.sprintf "%s/%s%d"
      (String.lowercase_ascii venue)
      (last_name (List.hd auth))
      id
  in
  if kind < 55 then begin
    let venue = Names.pick_zipf rng ~s:0.9 Names.conferences in
    T.elt "inproceedings"
      (field "key" (key_of venue)
       :: author_elts
      @ [
          field "title" (title rng);
          field "booktitle" venue;
          field "year" (year rng);
          field "pages" (pages rng);
        ])
  end
  else if kind < 90 then begin
    let venue = Names.pick_zipf rng ~s:0.9 Names.journals in
    T.elt "article"
      (field "key" (key_of venue)
       :: author_elts
      @ [
          field "title" (title rng);
          field "journal" venue;
          field "volume" (string_of_int (1 + Random.State.int rng 40));
          field "year" (year rng);
          field "pages" (pages rng);
        ])
  end
  else if kind < 97 then
    T.elt "book"
      (field "key" (key_of "books")
       :: author_elts
      @ [
          field "title" (title rng);
          field "publisher" (Names.pick rng [| "Morgan Kaufmann"; "Springer"; "Addison-Wesley"; "Prentice Hall"; "MIT Press" |]);
          field "year" (year rng);
          field "isbn" (Printf.sprintf "0-%05d-%03d-%d" (Random.State.int rng 99999) (Random.State.int rng 999) (Random.State.int rng 9));
        ])
  else
    T.elt "phdthesis"
      (field "key" (Printf.sprintf "phd/%s%d" (last_name (List.hd auth)) id)
       :: author_elts
      @ [
          field "title" (title rng);
          field "school" (Names.pick rng [| "MIT"; "Stanford"; "Berkeley"; "CMU"; "Wisconsin"; "UCSD" |]);
          field "year" (year rng);
        ])

(* A fraction of book records use the literal key "Maier" so that
   Table 8's Q2 (/book[key='Maier']/author) is answerable. *)
let record rng id =
  let r = record rng id in
  match r with
  | T.Element (d, T.Element (kd, _) :: rest)
    when Xmlcore.Designator.name d = "book"
         && Xmlcore.Designator.name kd = "key"
         && Random.State.int rng 10 = 0 ->
    T.Element (d, field "key" "Maier" :: rest)
  | r -> r

let generate ?(seed = 23) n =
  let rng = Random.State.make [| seed; n |] in
  Array.init n (fun id -> record rng id)
