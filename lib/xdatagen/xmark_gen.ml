module T = Xmlcore.Xml_tree

let q1_date = "07/05/2000"
let q3_date = "12/15/1999"

let field name value = T.elt name [ T.text value ]

let date rng =
  (* Dates over 1998–2001, with the two query literals boosted so the
     Table 4 / Table 7 queries return small non-empty answers. *)
  let r = Random.State.int rng 100 in
  if r < 2 then q1_date
  else if r < 4 then q3_date
  else
    Printf.sprintf "%02d/%02d/%d"
      (1 + Random.State.int rng 12)
      (1 + Random.State.int rng 28)
      (1998 + Random.State.int rng 4)

let person_pool n = max 64 (n / 4)

(* References are Zipf-skewed (as in real auction data), so low-numbered
   persons are guaranteed to appear; Q3 asks about the most popular one. *)
let a_person_id _n = "person0"

let person_ref rng n =
  Printf.sprintf "person%d" (Names.zipf_index rng ~s:1.1 (person_pool n))
let item_ref rng n = Printf.sprintf "item%d" (Random.State.int rng (max 64 (n / 2)))
let money rng = Printf.sprintf "%d.%02d" (1 + Random.State.int rng 500) (Random.State.int rng 100)

let repeat rng ~identical_siblings f =
  let k = if identical_siblings then 1 + Random.State.int rng 3 else 1 in
  List.init k (fun _ -> f ())

let regions = [| "namerica"; "europe"; "asia"; "africa"; "australia"; "samerica" |]

let item rng ~identical_siblings n id =
  let mail () =
    T.elt "mail"
      [
        field "from" (person_ref rng n);
        field "to" (person_ref rng n);
        field "date" (date rng);
      ]
  in
  let incategory () = field "incategory" (Names.pick rng Names.categories) in
  T.elt "site"
    [
      T.elt "regions"
        [
          T.elt
            (Names.pick rng regions)
            [
              T.elt "item"
                ([
                   field "id" (Printf.sprintf "item%d" id);
                   field "location" (Names.pick rng Names.countries);
                   field "quantity" (string_of_int (1 + Random.State.int rng 5));
                   field "name"
                     (Printf.sprintf "%s %s" (Names.pick rng Names.words)
                        (Names.pick rng Names.words));
                   field "payment" (Names.pick rng [| "Cash"; "Creditcard"; "Money order"; "Check" |]);
                   field "shipping" (Names.pick rng [| "Will ship internationally"; "Buyer pays fixed shipping charges"; "See description" |]);
                 ]
                @ repeat rng ~identical_siblings incategory
                @ repeat rng ~identical_siblings mail);
            ];
        ];
    ]

let person rng ~identical_siblings n id =
  let interest () = field "interest" (Names.pick rng Names.categories) in
  let watch () = field "watch" (item_ref rng n) in
  T.elt "site"
    [
      T.elt "people"
        [
          T.elt "person"
            [
              field "id" (Printf.sprintf "person%d" (id mod person_pool n));
              field "name"
                (Printf.sprintf "%s %s" (Names.pick rng Names.first_names)
                   (Names.pick rng Names.last_names));
              field "emailaddress"
                (Printf.sprintf "mailto:%s@%s.com"
                   (String.lowercase_ascii (Names.pick rng Names.last_names))
                   (Names.pick rng [| "acme"; "example"; "auction"; "mail" |]));
              field "phone" (Printf.sprintf "+1 (%03d) %07d" (Random.State.int rng 999) (Random.State.int rng 9999999));
              T.elt "address"
                [
                  field "street" (Printf.sprintf "%d %s St" (1 + Random.State.int rng 99) (Names.pick rng Names.last_names));
                  field "city" (Names.pick rng Names.cities);
                  field "country" (Names.pick rng Names.countries);
                  field "zipcode" (string_of_int (10000 + Random.State.int rng 89999));
                ];
              field "creditcard"
                (Printf.sprintf "%04d %04d %04d %04d" (Random.State.int rng 9999)
                   (Random.State.int rng 9999) (Random.State.int rng 9999)
                   (Random.State.int rng 9999));
              T.elt "profile"
                ([
                   field "education" (Names.pick rng [| "High School"; "College"; "Graduate School"; "Other" |]);
                   field "age" (string_of_int (18 + Random.State.int rng 52));
                   field "income" (Printf.sprintf "%d.%02d" (20000 + Random.State.int rng 80000) 0);
                 ]
                @ repeat rng ~identical_siblings interest);
              T.elt "watches" (repeat rng ~identical_siblings watch);
            ];
        ];
    ]

let open_auction rng ~identical_siblings n id =
  let bidder () =
    T.elt "bidder"
      [
        field "date" (date rng);
        field "time" (Printf.sprintf "%02d:%02d:%02d" (Random.State.int rng 24) (Random.State.int rng 60) (Random.State.int rng 60));
        field "increase" (money rng);
      ]
  in
  T.elt "site"
    [
      T.elt "open_auctions"
        [
          T.elt "open_auction"
            ([
               field "id" (Printf.sprintf "open_auction%d" id);
               field "initial" (money rng);
               field "reserve" (money rng);
               field "current" (money rng);
               field "itemref" (item_ref rng n);
               T.elt "seller" [ field "person" (person_ref rng n) ];
               field "quantity" (string_of_int (1 + Random.State.int rng 5));
               field "type" (Names.pick rng [| "Regular"; "Featured"; "Dutch" |]);
             ]
            @ repeat rng ~identical_siblings bidder);
        ];
    ]

let closed_auction rng ~identical_siblings:_ n id =
  T.elt "site"
    [
      T.elt "closed_auctions"
        [
          T.elt "closed_auction"
            [
              field "id" (Printf.sprintf "closed_auction%d" id);
              T.elt "seller" [ field "person" (person_ref rng n) ];
              T.elt "buyer" [ field "person" (person_ref rng n) ];
              field "itemref" (item_ref rng n);
              field "price" (money rng);
              field "date" (date rng);
              field "quantity" (string_of_int (1 + Random.State.int rng 5));
              field "type" (Names.pick rng [| "Regular"; "Featured"; "Dutch" |]);
              T.elt "annotation"
                [
                  T.elt "author" [ field "person" (person_ref rng n) ];
                  field "description"
                    (Printf.sprintf "%s %s %s" (Names.pick rng Names.words)
                       (Names.pick rng Names.words) (Names.pick rng Names.words));
                ];
            ];
        ];
    ]

let generate ?(seed = 31) ~identical_siblings n =
  let rng = Random.State.make [| seed; n; (if identical_siblings then 1 else 0) |] in
  Array.init n (fun id ->
      let r = Random.State.int rng 8 in
      if r < 4 then item rng ~identical_siblings n id
      else if r < 6 then person rng ~identical_siblings n id
      else if r < 7 then open_auction rng ~identical_siblings n id
      else closed_auction rng ~identical_siblings n id)
