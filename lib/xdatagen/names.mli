(** Word and name dictionaries backing the DBLP-like and XMark-like
    generators (the paper's real datasets are unavailable offline, so the
    generators synthesise statistically similar records). *)

val first_names : string array
val last_names : string array
val words : string array
(** Lowercase English words for titles and descriptions. *)

val cities : string array
val countries : string array
(** Includes ["United States"], which XMark makes frequent. *)

val us_states : string array
val journals : string array
val conferences : string array
val categories : string array

val pick : Random.State.t -> string array -> string
(** Uniform choice. *)

val pick_zipf : Random.State.t -> ?s:float -> string array -> string
(** Zipf-distributed choice (exponent [s], default 1.0): early entries are
    chosen far more often — the skew typical of author and venue
    frequencies. *)

val zipf_index : Random.State.t -> ?s:float -> int -> int
(** A Zipf-distributed index in [0, n). *)
