(** DBLP-like bibliography records.

    The paper indexes the real DBLP download (407,417 records, ~21
    elements per constraint sequence, max depth 6).  Offline, we
    synthesise records with the same shape: one publication element per
    record ([article], [inproceedings], [book], [phdthesis]) with the
    usual fields, Zipf-skewed author and venue frequencies, and a unique
    [key].  The four Table 8 queries ([/inproceedings/title],
    [/book\[key='Maier'\]/author], [/*/author\[text='David'\]],
    [//author\[text='David'\]]) all have non-trivial answers. *)

val generate : ?seed:int -> int -> Xmlcore.Xml_tree.t array
(** [generate n] draws [n] records.  Deterministic in (seed, n). *)

val author_pool_size : int
(** Number of distinct author names the generator draws from. *)
