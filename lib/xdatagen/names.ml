let first_names =
  [|
    "James"; "Mary"; "John"; "Patricia"; "Robert"; "Jennifer"; "Michael";
    "Linda"; "William"; "Elizabeth"; "David"; "Barbara"; "Richard"; "Susan";
    "Joseph"; "Jessica"; "Thomas"; "Sarah"; "Charles"; "Karen"; "Christopher";
    "Nancy"; "Daniel"; "Lisa"; "Matthew"; "Margaret"; "Anthony"; "Betty";
    "Mark"; "Sandra"; "Donald"; "Ashley"; "Steven"; "Dorothy"; "Paul";
    "Kimberly"; "Andrew"; "Emily"; "Joshua"; "Donna"; "Kenneth"; "Michelle";
    "Kevin"; "Carol"; "Brian"; "Amanda"; "George"; "Melissa"; "Haixun";
    "Xiaofeng"; "Wei"; "Ling"; "Jun"; "Yan"; "Hong"; "Mei";
  |]

let last_names =
  [|
    "Smith"; "Johnson"; "Williams"; "Brown"; "Jones"; "Garcia"; "Miller";
    "Davis"; "Rodriguez"; "Martinez"; "Hernandez"; "Lopez"; "Gonzalez";
    "Wilson"; "Anderson"; "Thomas"; "Taylor"; "Moore"; "Jackson"; "Martin";
    "Lee"; "Perez"; "Thompson"; "White"; "Harris"; "Sanchez"; "Clark";
    "Ramirez"; "Lewis"; "Robinson"; "Walker"; "Young"; "Allen"; "King";
    "Wright"; "Scott"; "Torres"; "Nguyen"; "Hill"; "Flores"; "Green";
    "Adams"; "Nelson"; "Baker"; "Hall"; "Rivera"; "Campbell"; "Mitchell";
    "Wang"; "Meng"; "Chen"; "Zhang"; "Liu"; "Yang"; "Maier"; "David";
  |]

let words =
  [|
    "adaptive"; "index"; "query"; "structure"; "tree"; "sequence"; "pattern";
    "matching"; "database"; "system"; "efficient"; "dynamic"; "semistructured";
    "data"; "path"; "expression"; "join"; "optimization"; "storage"; "schema";
    "distribution"; "performance"; "holistic"; "twig"; "label"; "encoding";
    "search"; "wildcard"; "document"; "record"; "attribute"; "value"; "node";
    "ancestor"; "descendant"; "prefix"; "suffix"; "probability"; "strategy";
    "constraint"; "equivalence"; "traversal"; "depth"; "breadth"; "random";
    "analysis"; "evaluation"; "scalable"; "processing"; "language";
  |]

let cities =
  [|
    "boston"; "newyork"; "chicago"; "seattle"; "austin"; "denver"; "atlanta";
    "portland"; "sandiego"; "phoenix"; "dallas"; "houston"; "miami";
    "detroit"; "columbus"; "memphis"; "baltimore"; "milwaukee"; "albany";
    "trenton"; "beijing"; "shanghai"; "london"; "paris"; "tokyo"; "berlin";
  |]

let countries =
  [|
    "United States"; "United States"; "United States"; "United States";
    "Germany"; "France"; "United Kingdom"; "China"; "Japan"; "Canada";
    "Italy"; "Spain"; "Australia"; "Brazil"; "India"; "Netherlands";
    "Sweden"; "Switzerland"; "Korea"; "Mexico";
  |]

let us_states =
  [|
    "Alabama"; "Alaska"; "Arizona"; "Arkansas"; "California"; "Colorado";
    "Connecticut"; "Delaware"; "Florida"; "Georgia"; "Hawaii"; "Idaho";
    "Illinois"; "Indiana"; "Iowa"; "Kansas"; "Kentucky"; "Louisiana";
    "Maine"; "Maryland"; "Massachusetts"; "Michigan"; "Minnesota";
    "Mississippi"; "Missouri"; "Montana"; "Nebraska"; "Nevada";
    "NewHampshire"; "NewJersey"; "NewMexico"; "NewYork"; "NorthCarolina";
    "NorthDakota"; "Ohio"; "Oklahoma"; "Oregon"; "Pennsylvania";
    "RhodeIsland"; "SouthCarolina"; "SouthDakota"; "Tennessee"; "Texas";
    "Utah"; "Vermont"; "Virginia"; "Washington"; "WestVirginia";
    "Wisconsin"; "Wyoming"; "PuertoRico"; "Guam"; "AmericanSamoa";
    "USVirginIslands"; "DistrictOfColumbia";
  |]

let journals =
  [|
    "TODS"; "VLDBJ"; "TKDE"; "SIGMOD Record"; "Information Systems";
    "JACM"; "CACM"; "Computer Journal"; "DKE"; "IPL"; "TOIS"; "TOCS";
    "Algorithmica"; "Acta Informatica"; "JCSS"; "Distributed Computing";
  |]

let conferences =
  [|
    "SIGMOD"; "VLDB"; "ICDE"; "PODS"; "EDBT"; "CIKM"; "WWW"; "KDD";
    "SODA"; "STOC"; "FOCS"; "ICDT"; "DASFAA"; "WebDB"; "XSym"; "SSDBM";
  |]

let categories =
  [|
    "antiques"; "books"; "computers"; "electronics"; "jewelry"; "music";
    "photography"; "sports"; "toys"; "travel"; "art"; "coins"; "stamps";
    "clothing"; "furniture"; "garden"; "automotive"; "health";
  |]

let pick rng a = a.(Random.State.int rng (Array.length a))

(* Zipf by inverse-CDF over precomputed harmonic weights would need a
   table per (s, n); rejection-free approximation: draw u uniform and map
   through u^(1/(1-s'))-style skew.  We instead use the simple and exact
   linear scan over cumulative weights, cached per n. *)
let zipf_cache : (int * int, float array) Hashtbl.t = Hashtbl.create 8

let zipf_cdf ~s n =
  let key = (int_of_float (s *. 1000.), n) in
  match Hashtbl.find_opt zipf_cache key with
  | Some c -> c
  | None ->
    let w = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
    let total = Array.fold_left ( +. ) 0.0 w in
    let c = Array.make n 0.0 in
    let acc = ref 0.0 in
    Array.iteri
      (fun i x ->
        acc := !acc +. (x /. total);
        c.(i) <- !acc)
      w;
    Hashtbl.replace zipf_cache key c;
    c

let zipf_index rng ?(s = 1.0) n =
  let c = zipf_cdf ~s n in
  let u = Random.State.float rng 1.0 in
  let rec bisect lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if c.(mid) < u then bisect (mid + 1) hi else bisect lo mid
  in
  bisect 0 (n - 1)

let pick_zipf rng ?s a = a.(zipf_index rng ?s (Array.length a))
