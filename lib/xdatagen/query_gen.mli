(** Random tree-pattern queries drawn from a document corpus.

    Used by the synthetic query-performance experiments (Figure 16): a
    query of length [size] is a random connected sub-pattern of a random
    document, so it is guaranteed to have at least one answer.  Optional
    generalisation replaces tags with [*], contracts edges to [//] and
    drops or keeps value leaves, exercising the full query surface. *)

type opts = {
  size : int;  (** number of pattern nodes (the paper's query length) *)
  star_prob : float;  (** probability of generalising a tag to [*] *)
  desc_prob : float;
      (** probability of contracting a non-root node into a [//] edge *)
  value_prob : float;  (** probability of keeping a value leaf *)
  wide : bool;
      (** grow the sub-pattern breadth-first, yielding bushy twigs — the
          branching queries that stress identical-sibling handling *)
}

val default_opts : opts

val generate :
  ?seed:int -> opts:opts -> Xmlcore.Xml_tree.t array -> int -> Xquery.Pattern.t list
(** [generate ~opts docs n] draws [n] patterns.  Deterministic in
    (seed, opts, docs). *)

val exact_of_doc :
  ?wide:bool ->
  rng:Random.State.t ->
  size:int ->
  Xmlcore.Xml_tree.t ->
  Xquery.Pattern.t
(** One exact (no wildcard) random sub-pattern of a single document. *)
