module T = Xmlcore.Xml_tree
module Pattern = Xquery.Pattern

type opts = {
  size : int;
  star_prob : float;
  desc_prob : float;
  value_prob : float;
  wide : bool;
}

let default_opts =
  { size = 5; star_prob = 0.0; desc_prob = 0.0; value_prob = 0.3; wide = false }

(* Pick a random connected subtree of [size] nodes containing the root:
   grow a frontier from the root, picking uniformly ([wide = false]) or
   first-in-first-out for bushy patterns ([wide = true]). *)
let connected_subset rng ?(wide = false) ~size doc =
  (* Flatten with parents. *)
  let nodes = ref [] in
  let counter = ref 0 in
  let rec walk parent t =
    let me = !counter in
    incr counter;
    nodes := (me, parent, t) :: !nodes;
    List.iter (walk me) (T.children t)
  in
  walk (-1) doc;
  let arr =
    let a = Array.make !counter (-1, T.text "") in
    List.iter (fun (i, p, t) -> a.(i) <- (p, t)) !nodes;
    a
  in
  let children = Array.make !counter [] in
  Array.iteri (fun i (p, _) -> if p >= 0 then children.(p) <- i :: children.(p)) arr;
  let chosen = Hashtbl.create 16 in
  Hashtbl.replace chosen 0 ();
  let frontier = ref children.(0) in
  let steps = ref (size - 1) in
  while !steps > 0 && !frontier <> [] do
    let k =
      if wide then 0 else Random.State.int rng (List.length !frontier)
    in
    let pick = List.nth !frontier k in
    frontier := List.filteri (fun i _ -> i <> k) !frontier;
    Hashtbl.replace chosen pick ();
    (* wide: append children (FIFO = breadth-first); narrow: prepend *)
    if wide then frontier := !frontier @ children.(pick)
    else frontier := children.(pick) @ !frontier;
    decr steps
  done;
  (arr, children, chosen)

let exact_of_doc ?wide ~rng ~size doc =
  let arr, children, chosen = connected_subset rng ?wide ~size doc in
  let rec build i : Pattern.t =
    let _, t = arr.(i) in
    match t with
    | T.Value s -> Pattern.text s
    | T.Element (d, _) ->
      let kids =
        List.filter_map
          (fun c -> if Hashtbl.mem chosen c then Some (build c) else None)
          (List.rev children.(i))
      in
      Pattern.elt (Xmlcore.Designator.name d) kids
  in
  build 0

(* Generalise: values dropped with probability (1 - value_prob); element
   tags starred with star_prob; a non-root element contracted into its
   parent edge with desc_prob (its children move up under a Descendant
   axis). *)
let rec generalize rng opts (p : Pattern.t) : Pattern.t option =
  match p.test with
  | Pattern.Text _ | Pattern.Text_prefix _ ->
    if Random.State.float rng 1.0 < opts.value_prob then Some p else None
  | Pattern.Tag _ | Pattern.Star ->
    let kids = List.filter_map (generalize rng opts) p.children in
    let test =
      match p.test with
      | Pattern.Tag _ when Random.State.float rng 1.0 < opts.star_prob -> Pattern.Star
      | t -> t
    in
    Some { p with test; children = kids }

let rec contract rng opts (p : Pattern.t) : Pattern.t =
  let children = List.map (contract rng opts) p.children in
  let children =
    List.concat_map
      (fun (c : Pattern.t) ->
        match c.test with
        | Pattern.Tag _
          when c.children <> [] && Random.State.float rng 1.0 < opts.desc_prob ->
          (* Drop [c]; its children hang below [p] via //. *)
          List.map
            (fun (g : Pattern.t) -> { g with axis = Pattern.Descendant })
            c.children
        | _ -> [ c ])
      children
  in
  { p with children }

let generate ?(seed = 97) ~opts docs n =
  let rng = Random.State.make [| seed; opts.size; n |] in
  List.init n (fun _ ->
      let doc = docs.(Random.State.int rng (Array.length docs)) in
      let exact = exact_of_doc ~wide:opts.wide ~rng ~size:opts.size doc in
      let g =
        match generalize rng opts exact with
        | Some g -> g
        | None -> exact
      in
      contract rng opts g)
