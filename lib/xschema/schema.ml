module D = Xmlcore.Designator
module Path = Sequencing.Path

type t = {
  tag : string;
  exist : float;
  weight : float;
  value : value option;
  children : t list;
}

and value = { cardinality : int; known : (string * float) list }

let node ?(exist = 1.0) ?(weight = 1.0) ?value tag children =
  { tag; exist; weight; value; children }

let uniform_values k = { cardinality = k; known = [] }

let rec collect parent_path parent_p acc s =
  let path = Path.child parent_path (D.tag s.tag) in
  let p = parent_p *. s.exist in
  let acc = (path, p) :: acc in
  let acc =
    match s.value with
    | None -> acc
    | Some v ->
      List.fold_left
        (fun acc (text, pv) -> (Path.child path (D.value text), p *. pv) :: acc)
        acc v.known
  in
  List.fold_left (collect path p) acc s.children

let p_root s = List.rev (collect Path.epsilon 1.0 [] s)

(* Priority table: weighted probabilities for schema paths, plus the
   per-slot fallback probability for anonymous domain values. *)
type tables = {
  prio : (Path.t, float) Hashtbl.t;
  value_slot : (Path.t, float) Hashtbl.t; (* parent path -> prio of one anon value *)
}

let rec fill tables parent_path parent_p s =
  let path = Path.child parent_path (D.tag s.tag) in
  let p = parent_p *. s.exist in
  Hashtbl.replace tables.prio path (p *. s.weight);
  (match s.value with
   | None -> ()
   | Some v ->
     List.iter
       (fun (text, pv) ->
         Hashtbl.replace tables.prio
           (Path.child path (D.value text))
           (p *. pv *. s.weight))
       v.known;
     let anon = p /. float_of_int (max 1 v.cardinality) in
     Hashtbl.replace tables.value_slot path (anon *. s.weight));
  List.iter (fill tables path p) s.children

let tables_of s =
  let tables = { prio = Hashtbl.create 256; value_slot = Hashtbl.create 64 } in
  fill tables Path.epsilon 1.0 s;
  tables

let to_priority s =
  let tables = tables_of s in
  let memo : (Path.t, float) Hashtbl.t = Hashtbl.create 256 in
  let rec lookup path =
    if Path.equal path Path.epsilon then 1.0
    else
      match Hashtbl.find_opt tables.prio path with
      | Some p -> p
      | None ->
        (match Hashtbl.find_opt memo path with
         | Some p -> p
         | None ->
           let p =
             match Hashtbl.find_opt tables.value_slot (Path.parent path) with
             | Some anon when D.is_value (Path.tag path) -> anon
             | _ -> lookup (Path.parent path) *. 0.1
           in
           Hashtbl.replace memo path p;
           p)
  in
  lookup

let strategy s = Sequencing.Strategy.Probability (to_priority s)
