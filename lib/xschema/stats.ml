module D = Xmlcore.Designator
module Path = Sequencing.Path
module Encoder = Sequencing.Encoder

module PMap = Map.Make (Path)

type t = {
  mutable docs : int;
  freq : (Path.t, int) Hashtbl.t; (* #docs containing the path *)
  weights : (Path.t, float) Hashtbl.t;
  memo : float PMap.t Atomic.t; (* fallback p_root cache *)
      (* [freq] and [weights] are frozen once sequencing starts, but the
         fallback cache is written lazily from whatever domain happens to
         price an unseen path first — during parallel encoding or batched
         query compilation.  It used to be a mutex'd hashtable, which put
         a lock acquisition on every fallback lookup of every query in a
         batch; it is now an immutable map published by CAS, so the
         per-query hot path reads it with a single atomic load and only
         a genuinely new path pays a (retried) publication. *)
}

let create () =
  {
    docs = 0;
    freq = Hashtbl.create 1024;
    weights = Hashtbl.create 16;
    memo = Atomic.make PMap.empty;
  }

let add_document ?value_mode t doc =
  t.docs <- t.docs + 1;
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun p ->
      if not (Hashtbl.mem seen p) then begin
        Hashtbl.replace seen p ();
        let n = try Hashtbl.find t.freq p with Not_found -> 0 in
        Hashtbl.replace t.freq p (n + 1)
      end)
    (Encoder.paths_of_tree ?value_mode doc)

let of_documents ?value_mode docs =
  let t = create () in
  List.iter (add_document ?value_mode t) docs;
  t

let of_documents_array ?value_mode docs =
  let t = create () in
  Array.iter (add_document ?value_mode t) docs;
  t

let sample ?value_mode ~fraction ~seed docs =
  let t = create () in
  let rng = Random.State.make [| seed |] in
  Array.iter
    (fun d ->
      if Random.State.float rng 1.0 < fraction then add_document ?value_mode t d)
    docs;
  if t.docs = 0 && Array.length docs > 0 then add_document ?value_mode t docs.(0);
  t

let doc_count t = t.docs

let rec p_root t path =
  if Path.equal path Path.epsilon then 1.0
  else
    match Hashtbl.find_opt t.freq path with
    | Some n -> float_of_int n /. float_of_int (max 1 t.docs)
    | None ->
      (* Lock-free cache probe; the recursive estimate itself runs
         unsynchronised (a racing domain at worst recomputes the same
         deterministic value), and publication retries by CAS so a
         concurrent writer's entries are never lost. *)
      (match PMap.find_opt path (Atomic.get t.memo) with
       | Some p -> p
       | None ->
         let p = p_root t (Path.parent path) *. 0.1 in
         let rec publish () =
           let cur = Atomic.get t.memo in
           if PMap.mem path cur then ()
           else if not (Atomic.compare_and_set t.memo cur (PMap.add path p cur))
           then publish ()
         in
         publish ();
         p)

let p_parent t path =
  if Path.equal path Path.epsilon then 1.0
  else begin
    let pp = p_root t (Path.parent path) in
    if pp <= 0. then 0. else p_root t path /. pp
  end

let set_weight t path w = Hashtbl.replace t.weights path w

let set_tag_weight t d w =
  Hashtbl.iter
    (fun path _ ->
      if (not (Path.equal path Path.epsilon)) && D.equal (Path.tag path) d then
        Hashtbl.replace t.weights path w)
    t.freq

let weight t path = try Hashtbl.find t.weights path with Not_found -> 1.0
let priority t path = p_root t path *. weight t path
let strategy t = Sequencing.Strategy.Probability (priority t)
let distinct_paths t = Hashtbl.length t.freq
