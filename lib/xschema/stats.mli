(** Data-sampling estimation of node occurrence probabilities
    (Section 5.2: "approximate it by data sampling").

    [p̂(C|root)] is estimated as the fraction of sampled documents that
    contain at least one node with path [C].  A parent's estimate is
    therefore never smaller than a child's, which is the property the
    simple sequencing procedure of Section 2.4 relies on (ancestors come
    out first under the probability strategy).

    Thread-safety: collection ({!of_documents}, {!sample}, {!set_weight},
    …) must run on a single domain.  Once collection is done, {!p_root},
    {!p_parent} and {!priority} may be called from many domains
    concurrently — the internal fallback cache for unseen paths is
    mutex-protected, so pricing is safe during parallel encoding and
    batched query compilation. *)

type t

val of_documents :
  ?value_mode:Sequencing.Encoder.value_mode -> Xmlcore.Xml_tree.t list -> t
(** Collects path document-frequencies over the sample. *)

val of_documents_array :
  ?value_mode:Sequencing.Encoder.value_mode -> Xmlcore.Xml_tree.t array -> t

val sample :
  ?value_mode:Sequencing.Encoder.value_mode ->
  fraction:float -> seed:int -> Xmlcore.Xml_tree.t array -> t
(** Estimates from a Bernoulli sample of the documents (at least one
    document is always taken). *)

val doc_count : t -> int

val p_root : t -> Sequencing.Path.t -> float
(** Estimated [p(C|root)]; unseen paths decay geometrically from their
    longest seen prefix so estimates remain deterministic and
    parent-monotone. *)

val p_parent : t -> Sequencing.Path.t -> float
(** Estimated [p(C|parent)] = [p(C|root) / p(parent|root)] (Figure 12). *)

val set_weight : t -> Sequencing.Path.t -> float -> unit
(** Registers the tunable weight [w(C)] of Eq. 6 for a path; weights
    default to 1. *)

val set_tag_weight : t -> Xmlcore.Designator.t -> float -> unit
(** Applies a weight to every known path ending in the given designator —
    a convenient way to promote "frequently queried and highly selective"
    elements (Impact 2 of Section 5.1). *)

val priority : t -> Sequencing.Path.t -> float
(** [p'(C|root) = p(C|root) × w(C)] (Eq. 6). *)

val strategy : t -> Sequencing.Strategy.t
(** The [gbest] strategy driven by {!priority}. *)

val distinct_paths : t -> int
(** Number of distinct paths observed in the sample. *)
