(** Schema trees with existence probabilities (Section 5.2, Figures 12–13).

    A schema node records [p(C|P)] — the probability that child [C] exists
    given its parent [P] — and, for value slots, the distribution of the
    value itself.  [p(C|root)] is the product of the probabilities along
    the path (Figure 13), and the weighted probability
    [p'(C|root) = p(C|root) × w(C)] (Eq. 6) drives the [gbest] strategy. *)

type t = {
  tag : string;
  exist : float;  (** [p(node | parent)]; the root must have [exist = 1.] *)
  weight : float;  (** [w(C)]: query frequency × selectivity knob, default 1 *)
  value : value option;  (** distribution of the value leaf under this node *)
  children : t list;
}

and value = {
  cardinality : int;
      (** size of the value domain; individual values are assumed uniform
          unless listed in [known] (the paper's "range and distribution of
          the values" factor). *)
  known : (string * float) list;
      (** explicitly weighted values, probabilities within [0,1]. *)
}

val node : ?exist:float -> ?weight:float -> ?value:value -> string -> t list -> t
(** Convenience constructor; [exist] defaults to 1. *)

val uniform_values : int -> value
(** [uniform_values k] is a domain of [k] equiprobable values. *)

val p_root : t -> (Sequencing.Path.t * float) list
(** All concrete element paths of the schema with their [p(C|root)]
    (Figure 13).  Value designator paths are included for [known] values
    only (with probability [exist × p(v)]); anonymous domain values
    contribute through {!to_priority}'s fallback. *)

val to_priority : t -> Sequencing.Path.t -> float
(** The [gbest] priority function: [p'(C|root)] for schema paths;
    unknown-value paths under a value slot get
    [p(slot|root) / cardinality]; paths outside the schema decay
    geometrically from their longest known prefix, so priorities stay
    consistent between data and query sequencing. *)

val strategy : t -> Sequencing.Strategy.t
(** [Probability (to_priority t)]. *)
