(** An XISS-style node index with structural joins — the paper's "query by
    nodes" baseline (Table 8; cf. Li & Moon [11]).

    Every element and value node is posted under its designator as a
    [(doc, pre, post)] triple.  A tree-pattern query is evaluated by
    bottom-up ancestor–descendant / parent–child {e merge joins} over the
    per-designator lists (the paper's "expensive join operations"); the
    surviving documents are then verified against the stored documents,
    since binary joins cannot enforce the injective identical-sibling
    semantics on their own. *)

type t

type query_stats = {
  mutable scanned : int;  (** node-list entries read by the joins *)
  mutable joined : int;  (** join output tuples produced *)
  mutable verified : int;
}

val create_stats : unit -> query_stats

val build : Xmlcore.Xml_tree.t array -> t

val query : ?stats:query_stats -> t -> Xquery.Pattern.t -> int list
(** Exact answers (sorted ids). *)

val element_count : t -> int
(** Total postings. *)

val distinct_designators : t -> int
