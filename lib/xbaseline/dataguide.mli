(** A strong-DataGuide-style path index — the paper's "query by paths"
    baseline (Table 8; cf. Goldman & Widom [7]).

    The index maps every distinct root path to the sorted list of
    documents containing it.  A tree-pattern query is disassembled into
    its root-to-leaf simple paths; the per-path document lists are
    intersected, and — because a path index cannot see branching structure
    (Figure 4's false alarm applies in full) — every surviving candidate
    is verified against the stored document, the expensive per-document
    post-processing the paper's approach avoids. *)

type t

type query_stats = {
  mutable lookups : int;  (** path-list lookups *)
  mutable scanned : int;  (** doc-list entries read during intersection *)
  mutable verified : int;  (** candidate documents run through the oracle *)
}

val create_stats : unit -> query_stats

val build : Xmlcore.Xml_tree.t array -> t
(** Indexes the documents (ids are array indices) and retains them for
    verification. *)

val query : ?stats:query_stats -> t -> Xquery.Pattern.t -> int list
(** Exact answers (sorted ids). *)

val distinct_paths : t -> int
val entry_count : t -> int
(** Total (path, doc) postings. *)
