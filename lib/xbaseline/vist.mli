(** A ViST-style index — depth-first sequencing with naïve subsequence
    matching (Wang et al. [18]), the closest competitor in Figure 16(b).

    Documents are tag-sorted and depth-first sequenced into the same
    trie/labelling machinery as the main index, but queries run in
    {e naïve} mode: no forward-prefix check, so identical siblings produce
    the false alarms of Figure 4, which ViST remedies with join-like
    per-document verification — the cost this baseline exposes.  Results
    are exact. *)

type t

type query_stats = {
  matcher : Xquery.Matcher.stats;
  mutable candidates : int;  (** documents reported by naïve matching *)
  mutable verified : int;  (** candidate documents verified *)
}

val create_stats : unit -> query_stats

val build : Xmlcore.Xml_tree.t array -> t

val query : ?stats:query_stats -> t -> Xquery.Pattern.t -> int list
(** Exact answers (sorted ids). *)

val node_count : t -> int
val labeled : t -> Xindex.Labeled.t
