module D = Xmlcore.Designator
module T = Xmlcore.Xml_tree

type entry = { doc : int; pre : int; post : int; depth : int }

type t = {
  postings : (D.t, entry array) Hashtbl.t;
  element_designators : D.t list; (* tags only, for Star *)
  docs : T.t array;
}

type query_stats = {
  mutable scanned : int;
  mutable joined : int;
  mutable verified : int;
}

let create_stats () = { scanned = 0; joined = 0; verified = 0 }
let no_stats = create_stats ()

let build docs =
  let lists : (D.t, entry list ref) Hashtbl.t = Hashtbl.create 256 in
  let post d e =
    match Hashtbl.find_opt lists d with
    | Some l -> l := e :: !l
    | None -> Hashtbl.replace lists d (ref [ e ])
  in
  Array.iteri
    (fun doc tree ->
      let counter = ref 0 in
      let rec walk depth t =
        let pre = !counter in
        incr counter;
        (match t with
         | T.Element (_, cs) -> List.iter (walk (depth + 1)) cs
         | T.Value _ -> ());
        let post_serial = !counter - 1 in
        let d =
          match t with T.Element (d, _) -> d | T.Value s -> D.value s
        in
        post d { doc; pre; post = post_serial; depth }
      in
      walk 0 tree)
    docs;
  let postings = Hashtbl.create (Hashtbl.length lists) in
  let elements = ref [] in
  Hashtbl.iter
    (fun d l ->
      let arr = Array.of_list !l in
      Array.sort (fun a b -> Stdlib.compare (a.doc, a.pre) (b.doc, b.pre)) arr;
      Hashtbl.replace postings d arr;
      if not (D.is_value d) then elements := d :: !elements)
    lists;
  { postings; element_designators = !elements; docs }

let lookup t d = Option.value ~default:[||] (Hashtbl.find_opt t.postings d)

let star_list t =
  let all = List.concat_map (fun d -> Array.to_list (lookup t d)) t.element_designators in
  let arr = Array.of_list all in
  Array.sort (fun a b -> Stdlib.compare (a.doc, a.pre) (b.doc, b.pre)) arr;
  arr

let base_list t stats (test : Xquery.Pattern.test) =
  match test with
  | Xquery.Pattern.Tag s ->
    let l = lookup t (D.tag s) in
    stats.scanned <- stats.scanned + Array.length l;
    l
  | Xquery.Pattern.Star ->
    let l = star_list t in
    stats.scanned <- stats.scanned + Array.length l;
    l
  | Xquery.Pattern.Text s ->
    let l = lookup t (D.value s) in
    stats.scanned <- stats.scanned + Array.length l;
    l
  | Xquery.Pattern.Text_prefix s ->
    (* A node index has no value-prefix organisation: scan all value
       designators. *)
    let acc = ref [] in
    Hashtbl.iter
      (fun d l ->
        if D.is_value d && String.starts_with ~prefix:s (D.name d) then
          acc := Array.to_list l :: !acc)
      t.postings;
    let arr = Array.of_list (List.concat !acc) in
    Array.sort (fun a b -> Stdlib.compare (a.doc, a.pre) (b.doc, b.pre)) arr;
    stats.scanned <- stats.scanned + Array.length arr;
    arr

(* Keep the ancestors [xs] that have a matching element in [ys] below
   them (ancestor–descendant or parent–child semijoin, merge-style). *)
let semijoin stats ~axis xs ys =
  let ly = Array.length ys in
  let first_after doc pre =
    (* smallest j with (ys.(j).doc, ys.(j).pre) > (doc, pre) *)
    let lo = ref 0 and hi = ref ly in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let y = ys.(mid) in
      if (y.doc, y.pre) <= (doc, pre) then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let keep x =
    let j = ref (first_after x.doc x.pre) in
    let found = ref false in
    let continue = ref true in
    while !continue && !j < ly do
      let y = ys.(!j) in
      stats.scanned <- stats.scanned + 1;
      if y.doc <> x.doc || y.pre > x.post then continue := false
      else begin
        (match axis with
         | Xquery.Pattern.Descendant -> found := true
         | Xquery.Pattern.Child -> if y.depth = x.depth + 1 then found := true);
        if !found then continue := false else incr j
      end
    done;
    !found
  in
  let out = Array.of_list (List.filter keep (Array.to_list xs)) in
  stats.joined <- stats.joined + Array.length out;
  out

let query ?(stats = no_stats) t pattern =
  let rec eval (p : Xquery.Pattern.t) =
    let base = base_list t stats p.test in
    List.fold_left
      (fun acc (c : Xquery.Pattern.t) ->
        let cl = eval c in
        semijoin stats ~axis:c.axis acc cl)
      base p.children
  in
  let roots = eval pattern in
  let roots =
    match pattern.axis with
    | Xquery.Pattern.Child -> Array.of_list (List.filter (fun e -> e.pre = 0) (Array.to_list roots))
    | Xquery.Pattern.Descendant -> roots
  in
  let candidates = Hashtbl.create 64 in
  Array.iter (fun e -> Hashtbl.replace candidates e.doc ()) roots;
  let result =
    Hashtbl.fold
      (fun d () acc ->
        stats.verified <- stats.verified + 1;
        if Xquery.Embedding.matches pattern t.docs.(d) then d :: acc else acc)
      candidates []
  in
  List.sort Stdlib.compare result

let element_count t =
  Hashtbl.fold (fun _ l acc -> acc + Array.length l) t.postings 0

let distinct_designators t = Hashtbl.length t.postings
