module Path = Sequencing.Path
module Encoder = Sequencing.Encoder

type t = {
  postings : (Path.t, int array) Hashtbl.t; (* path -> sorted doc ids *)
  docs : Xmlcore.Xml_tree.t array;
}

type query_stats = {
  mutable lookups : int;
  mutable scanned : int;
  mutable verified : int;
}

let create_stats () = { lookups = 0; scanned = 0; verified = 0 }
let no_stats = create_stats ()

let build docs =
  let lists : (Path.t, int list ref) Hashtbl.t = Hashtbl.create 1024 in
  Array.iteri
    (fun id doc ->
      let seen = Hashtbl.create 64 in
      Array.iter
        (fun p ->
          if not (Hashtbl.mem seen p) then begin
            Hashtbl.replace seen p ();
            match Hashtbl.find_opt lists p with
            | Some l -> l := id :: !l
            | None -> Hashtbl.replace lists p (ref [ id ])
          end)
        (Encoder.paths_of_tree doc))
    docs;
  let postings = Hashtbl.create (Hashtbl.length lists) in
  Hashtbl.iter
    (fun p l -> Hashtbl.replace postings p (Array.of_list (List.rev !l)))
    lists;
  { postings; docs }

(* Root-to-leaf paths of a concrete pattern. *)
let rec leaves (c : Xquery.Instantiate.cnode) =
  match c.kids with [] -> [ c.path ] | kids -> List.concat_map leaves kids

let intersect stats a b =
  let la = Array.length a and lb = Array.length b in
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < la && !j < lb do
    stats.scanned <- stats.scanned + 1;
    if a.(!i) = b.(!j) then begin
      out := a.(!i) :: !out;
      incr i;
      incr j
    end
    else if a.(!i) < b.(!j) then incr i
    else incr j
  done;
  Array.of_list (List.rev !out)

let query ?(stats = no_stats) t pattern =
  let mem p = Hashtbl.mem t.postings p in
  match Xquery.Instantiate.run ~mem ~value_mode:Encoder.Hashed pattern with
  | exception Xquery.Instantiate.Too_many _ ->
    (* Wildcard blow-up: degrade to an exact scan. *)
    Xquery.Embedding.filter pattern t.docs
  | cnodes ->
    let candidates = Hashtbl.create 64 in
    List.iter
      (fun c ->
        let paths = List.sort_uniq Path.compare (leaves c) in
        let lists =
          List.map
            (fun p ->
              stats.lookups <- stats.lookups + 1;
              match Hashtbl.find_opt t.postings p with
              | Some l -> l
              | None -> [||])
            paths
        in
        match lists with
        | [] -> ()
        | first :: rest ->
          let inter = List.fold_left (intersect stats) first rest in
          Array.iter (fun d -> Hashtbl.replace candidates d ()) inter)
      cnodes;
    let result =
      Hashtbl.fold
        (fun d () acc ->
          stats.verified <- stats.verified + 1;
          if Xquery.Embedding.matches pattern t.docs.(d) then d :: acc else acc)
        candidates []
    in
    List.sort Stdlib.compare result

let distinct_paths t = Hashtbl.length t.postings

let entry_count t =
  Hashtbl.fold (fun _ l acc -> acc + Array.length l) t.postings 0
