module T = Xmlcore.Xml_tree
module Encoder = Sequencing.Encoder
module Strategy = Sequencing.Strategy

type t = { labeled : Xindex.Labeled.t; docs : T.t array }

type query_stats = {
  matcher : Xquery.Matcher.stats;
  mutable candidates : int;
  mutable verified : int;
}

let create_stats () =
  { matcher = Xquery.Matcher.create_stats (); candidates = 0; verified = 0 }

let no_stats = create_stats ()

let build docs =
  let trie = Xindex.Trie.create () in
  let seqs =
    Array.mapi
      (fun i doc ->
        (Encoder.encode ~strategy:Strategy.Depth_first (T.sort_by_tag doc), i))
      docs
  in
  Xindex.Trie.bulk_load trie seqs;
  { labeled = Xindex.Labeled.of_trie trie; docs }

let scan t pattern = Xquery.Embedding.filter pattern t.docs

let query_indexed ~stats t pattern =
  let mem p = Option.is_some (Xindex.Labeled.link t.labeled p) in
  let cnodes = Xquery.Instantiate.run ~mem ~value_mode:Encoder.Hashed pattern in
  let flagged = Xindex.Labeled.path_multiple t.labeled in
  let compiled =
    List.concat_map
      (Xquery.Query_seq.compile ~flagged ~strategy:Strategy.Depth_first)
      cnodes
  in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun q ->
      Xquery.Matcher.run ~mode:Xquery.Matcher.Naive ~stats:stats.matcher
        t.labeled q ~on_doc:(fun d ->
          if not (Hashtbl.mem seen d) then begin
            Hashtbl.replace seen d ();
            stats.candidates <- stats.candidates + 1
          end))
    compiled;
  let result =
    Hashtbl.fold
      (fun d () acc ->
        stats.verified <- stats.verified + 1;
        if Xquery.Embedding.matches pattern t.docs.(d) then d :: acc else acc)
      seen []
  in
  List.sort Stdlib.compare result

let query ?(stats = no_stats) t pattern =
  try query_indexed ~stats t pattern
  with Xquery.Instantiate.Too_many _ ->
    (* Expansion blow-up: degrade to an exact scan, like the main index. *)
    scan t pattern

let node_count t = Xindex.Labeled.node_count t.labeled
let labeled t = t.labeled
