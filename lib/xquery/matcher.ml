module Labeled = Xindex.Labeled
module Pager = Xstorage.Pager

type mode = Constraint | Naive

type stats = {
  mutable probes : int;
  mutable candidates : int;
  mutable rejected : int;
  mutable matches : int;
}

let create_stats () = { probes = 0; candidates = 0; rejected = 0; matches = 0 }

let merge_stats ~into s =
  into.probes <- into.probes + s.probes;
  into.candidates <- into.candidates + s.candidates;
  into.rejected <- into.rejected + s.rejected;
  into.matches <- into.matches + s.matches

let run ?(mode = Constraint) ?pager ?stats idx (q : Query_seq.compiled) ~on_doc
    =
  (* A fresh sink per call when the caller does not supply one: a shared
     mutable default would be a data race once queries run on several
     domains. *)
  let stats = match stats with Some s -> s | None -> create_stats () in
  let qlen = Array.length q.paths in
  assert (qlen > 0);
  let links = Array.map (Labeled.link idx) q.paths in
  if Array.for_all Option.is_some links then begin
    let links = Array.map Option.get links in
    let touch_entry l i =
      stats.probes <- stats.probes + 1;
      match pager with
      | Some p ->
        Pager.touch p (Labeled.link_base l + (i * Labeled.entry_bytes))
      | None -> ()
    in
    (* Binary searches instrumented entry by entry. *)
    let lower_bound l x =
      let lo = ref 0 and hi = ref (Labeled.link_length l) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        touch_entry l mid;
        if Labeled.link_pre l mid < x then lo := mid + 1 else hi := mid
      done;
      !lo
    in
    let upper_bound l x =
      let lo = ref 0 and hi = ref (Labeled.link_length l) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        touch_entry l mid;
        if Labeled.link_pre l mid <= x then lo := mid + 1 else hi := mid
      done;
      !lo
    in
    (* Deepest same-encoding ancestor of serial [x] in link [l]. *)
    let nearest l x =
      let rec climb i =
        if i < 0 then -1
        else begin
          touch_entry l i;
          if Labeled.link_post l i >= x then i else climb (Labeled.link_up l i)
        end
      in
      climb (upper_bound l x - 1)
    in
    (* The identical-sibling test reads the entry and its successor — both
       are charged, exactly like any other probe. *)
    let same_desc l i =
      touch_entry l i;
      if i + 1 < Labeled.link_length l then touch_entry l (i + 1);
      Labeled.link_same_desc l i
    in
    (* The document table is located by binary search too, so its probes
       hit the pager entry by entry like link probes do. *)
    let touch_doc i =
      stats.probes <- stats.probes + 1;
      match pager with
      | Some p ->
        Pager.touch p (Labeled.doc_table_base idx + (i * Labeled.entry_bytes))
      | None -> ()
    in
    let doc_lower x =
      let lo = ref 0 and hi = ref (Labeled.doc_len idx) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        touch_doc mid;
        if Labeled.doc_pre_at idx mid < x then lo := mid + 1 else hi := mid
      done;
      !lo
    in
    let doc_upper x =
      let lo = ref 0 and hi = ref (Labeled.doc_len idx) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        touch_doc mid;
        if Labeled.doc_pre_at idx mid <= x then lo := mid + 1 else hi := mid
      done;
      !lo
    in
    let mpos = Array.make qlen (-1) in
    let rec search i lo hi =
      if i = qlen then begin
        stats.matches <- stats.matches + 1;
        (* Documents whose sequence ends under the last matched node:
           serial range [lo - 1, hi]. *)
        let dlo = lo - 1 and dhi = hi in
        let first = doc_lower dlo in
        let last = doc_upper dhi - 1 in
        if first <= last then begin
          (match pager with
           | Some p ->
             (* Result fetch scans the located span: half-open byte range
                over entries [first, last]. *)
             Pager.touch_range p
               (Labeled.doc_table_base idx + (first * Labeled.entry_bytes))
               (Labeled.doc_table_base idx + ((last + 1) * Labeled.entry_bytes))
           | None -> ());
          Labeled.docs_between idx ~first ~last ~f:on_doc
        end
      end
      else begin
        let l = links.(i) in
        let first = lower_bound l lo in
        let stop = Labeled.link_length l in
        let pos = ref first in
        let continue = ref true in
        while !continue && !pos < stop do
          touch_entry l !pos;
          let pre = Labeled.link_pre l !pos in
          if pre > hi then continue := false
          else begin
            stats.candidates <- stats.candidates + 1;
            let ok =
              match mode with
              | Naive -> true
              | Constraint ->
                let pi = q.parents.(i) in
                pi < 0
                ||
                let pl = links.(pi) and ppos = mpos.(pi) in
                (* Only identical siblings can break the forward-prefix
                   relation (Algorithm 1's ins set). *)
                (not (same_desc pl ppos))
                || nearest pl pre = ppos
            in
            if ok then begin
              mpos.(i) <- !pos;
              search (i + 1) (pre + 1) (Labeled.link_post l !pos)
            end
            else stats.rejected <- stats.rejected + 1;
            incr pos
          end
        done
      end
    in
    search 0 1 (Labeled.root_post idx)
  end

let run_collect ?mode ?pager ?stats idx compiled_list =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun q ->
      run ?mode ?pager ?stats idx q ~on_doc:(fun d ->
          if not (Hashtbl.mem seen d) then Hashtbl.replace seen d ()))
    compiled_list;
  List.sort Stdlib.compare (Hashtbl.fold (fun d () acc -> d :: acc) seen [])
