(** Parser for the XPath fragment used throughout the paper (Table 4).

    Supported syntax:
    - location steps separated by [/] (child) or [//] (descendant);
    - name tests and the [*] wildcard;
    - predicates: [\[relpath\]], [\[relpath='literal'\]],
      [\[text='literal'\]] (also [text()='literal']),
      [\[@attr='literal'\]] and the prefix-match extension
      [\[text^='literal'\]];
    - relative paths inside predicates may themselves use [/], [//] and
      [*].

    Since the query interface is {e Tree Pattern → P(Doc Ids)}, the result
    of parsing is just the pattern tree; there is no notion of a selected
    step. *)

exception Syntax_error of { pos : int; msg : string }

val parse : string -> Pattern.t
(** @raise Syntax_error on malformed input. *)
