(** The end-to-end query pipeline: pattern → instantiation → query
    sequences → constraint subsequence matching → document ids.

    This is the paper's query interface, {e Tree Pattern → P(Doc Ids)},
    with no join operations and no per-document post-processing: wildcard
    instantiation and isomorphism expansion happen against schema-sized
    structures (the path trie and the pattern itself), and each compiled
    sequence is answered holistically by {!Matcher}. *)

val query :
  ?mode:Matcher.mode ->
  ?pager:Xstorage.Pager.t ->
  ?stats:Matcher.stats ->
  ?limit:int ->
  ?max_expansions:int ->
  strategy:Sequencing.Strategy.t ->
  value_mode:Sequencing.Encoder.value_mode ->
  Xindex.Labeled.t ->
  Pattern.t ->
  int list
(** Sorted, deduplicated ids of the documents containing the pattern.
    [strategy] and [value_mode] must be the ones the index was built
    with.  @raise Instantiate.Too_many, Instantiate.Unsupported,
    Query_seq.Unsupported_strategy as documented in those modules. *)

val compile :
  ?limit:int ->
  ?max_expansions:int ->
  strategy:Sequencing.Strategy.t ->
  value_mode:Sequencing.Encoder.value_mode ->
  Xindex.Labeled.t ->
  Pattern.t ->
  Query_seq.compiled list
(** The compiled sequences only (for inspection or repeated execution). *)

type explanation = {
  pattern : string;  (** the pattern as parsed *)
  instantiations : int;  (** concrete patterns after wildcard expansion *)
  sequences : int;  (** compiled sequences after isomorphism expansion *)
  sequence_texts : string list;  (** each compiled sequence, rendered *)
  results : int;
  stats : Matcher.stats;  (** probes/candidates/rejections over the run *)
}

val explain :
  ?mode:Matcher.mode ->
  ?limit:int ->
  ?max_expansions:int ->
  strategy:Sequencing.Strategy.t ->
  value_mode:Sequencing.Encoder.value_mode ->
  Xindex.Labeled.t ->
  Pattern.t ->
  explanation
(** Runs the query and reports what the pipeline did — how many concrete
    patterns the wildcards expanded to, how many sequences the
    identical-sibling/junction expansion produced, and the matcher's
    work counters.  Intended for debugging and teaching. *)
