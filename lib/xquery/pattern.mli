(** Tree patterns — the basic query unit (Section 1).

    A pattern is an unordered tree whose nodes test tags (exactly, or with
    the wildcard [*]), whose edges are parent–child ([/]) or
    ancestor–descendant ([//]) axes, and whose leaves may test values.
    A document matches when there is an injective embedding of the
    pattern into the document tree that respects tags, values and axes —
    identical sibling pattern nodes must map to distinct document nodes
    (this is exactly the semantics constraint-sequence matching computes,
    Section 3). *)

type axis =
  | Child  (** [/]: the step's node is a child of its parent's match *)
  | Descendant  (** [//]: a proper descendant *)

type test =
  | Tag of string  (** element or attribute name; attributes are [@name] *)
  | Star  (** [*]: any element (never matches a value leaf) *)
  | Text of string  (** a value leaf equal to the string *)
  | Text_prefix of string
      (** a value leaf whose text starts with the string; supported only
          by indexes built with the {!Sequencing.Encoder.Text} value
          representation *)

type t = { test : test; axis : axis; children : t list }

val elt : ?axis:axis -> string -> t list -> t
(** Element step; [axis] defaults to [Child]. *)

val star : ?axis:axis -> t list -> t

val text : ?axis:axis -> string -> t
(** Value-equality leaf. *)

val text_prefix : ?axis:axis -> string -> t

val of_tree : ?axis:axis -> Xmlcore.Xml_tree.t -> t
(** The exact pattern of a document subtree (all edges [Child], values
    become {!Text} leaves).  [axis] applies to the root step. *)

val size : t -> int
(** Number of pattern nodes — the paper's "query length". *)

val has_identical_siblings : t -> bool
(** Whether two sibling steps carry equal tests — the case requiring
    isomorphism expansion (Section 3.3). *)

val pp : Format.formatter -> t -> unit
(** XPath-like rendering. *)

val to_string : t -> string
