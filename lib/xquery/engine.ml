let compile ?limit ?max_expansions ~strategy ~value_mode idx pattern =
  let mem p = Option.is_some (Xindex.Labeled.link idx p) in
  let flagged = Xindex.Labeled.path_multiple idx in
  let cnodes = Instantiate.run ?limit ~mem ~value_mode pattern in
  List.concat_map (Query_seq.compile ?max_expansions ~flagged ~strategy) cnodes

let query ?mode ?pager ?stats ?limit ?max_expansions ~strategy ~value_mode idx
    pattern =
  let compiled = compile ?limit ?max_expansions ~strategy ~value_mode idx pattern in
  Matcher.run_collect ?mode ?pager ?stats idx compiled

type explanation = {
  pattern : string;
  instantiations : int;
  sequences : int;
  sequence_texts : string list;
  results : int;
  stats : Matcher.stats;
}

let explain ?mode ?limit ?max_expansions ~strategy ~value_mode idx pattern =
  let mem p = Option.is_some (Xindex.Labeled.link idx p) in
  let flagged = Xindex.Labeled.path_multiple idx in
  let cnodes = Instantiate.run ?limit ~mem ~value_mode pattern in
  let compiled =
    List.concat_map (Query_seq.compile ?max_expansions ~flagged ~strategy) cnodes
  in
  let stats = Matcher.create_stats () in
  let results = Matcher.run_collect ?mode ~stats idx compiled in
  let render (q : Query_seq.compiled) =
    String.concat " "
      (List.map Sequencing.Path.to_string (Array.to_list q.paths))
  in
  {
    pattern = Pattern.to_string pattern;
    instantiations = List.length cnodes;
    sequences = List.length compiled;
    sequence_texts = List.map render compiled;
    results = List.length results;
    stats;
  }
