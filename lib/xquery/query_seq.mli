(** Query sequencing: concrete patterns → query sequences (Section 3.1).

    A concrete pattern is sequenced by exactly the same scheduler as the
    documents, so a structure match is always witnessed by a subsequence
    match (completeness).  Because identical sibling subtrees of the
    {e query} may embed into the document's identical siblings in either
    order, each same-path sibling group is expanded into all its distinct
    permutations and the per-permutation results unioned — the paper's
    remedy for false dismissals (Section 3.3).

    Besides the path of every query element, the compiled form records
    each element's pattern parent, which the matcher's forward-prefix
    check needs (the sequence parent can be levels above across a [//]
    edge). *)

type compiled = {
  paths : Sequencing.Path.t array;
  parents : int array;
      (** [parents.(i)] is the sequence position of element [i]'s pattern
          parent, or -1 for the pattern root. *)
}

exception Unsupported_strategy of string

val compile :
  ?max_expansions:int ->
  ?flagged:(Sequencing.Path.t -> bool) ->
  strategy:Sequencing.Strategy.t ->
  Instantiate.cnode ->
  compiled list
(** All query sequences of one concrete pattern (one per identical-sibling
    permutation, deduplicated).  [max_expansions] (default 256) bounds the
    number of permutations.

    [flagged] must be the index's {!Xindex.Labeled.path_multiple}: query
    elements whose path is duplicated somewhere in the data trigger the
    same subtree-contiguity rule that document encoding applies (see
    {!Sequencing.Encoder.encode}'s [ident]), and branches reaching through
    a flagged step are expanded over the possible block assignments
    (junction normalisation); otherwise query order and data order diverge
    and valid matches are missed.  The default treats {e every} path as
    flagged, which is sound but generates more variants than necessary —
    always pass the index's flag in production use.

    Supported strategies: [Probability] (the CS index), [Depth_first] and
    [Breadth_first] (against tag-sorted documents).
    @raise Unsupported_strategy for [Random] — random sequences cannot be
    aligned with query sequences, so a random-strategy index supports
    size measurement but not querying (the paper only sizes it either). *)

