module T = Xmlcore.Xml_tree

type axis = Child | Descendant
type test = Tag of string | Star | Text of string | Text_prefix of string
type t = { test : test; axis : axis; children : t list }

let elt ?(axis = Child) name children = { test = Tag name; axis; children }
let star ?(axis = Child) children = { test = Star; axis; children }
let text ?(axis = Child) s = { test = Text s; axis; children = [] }
let text_prefix ?(axis = Child) s = { test = Text_prefix s; axis; children = [] }

let rec of_tree ?(axis = Child) tree =
  match tree with
  | T.Value s -> { test = Text s; axis; children = [] }
  | T.Element (d, cs) ->
    {
      test = Tag (Xmlcore.Designator.name d);
      axis;
      children = List.map (of_tree ~axis:Child) cs;
    }

let rec size p = List.fold_left (fun n c -> n + size c) 1 p.children

let test_equal a b =
  match a, b with
  | Tag x, Tag y -> String.equal x y
  | Star, Star -> true
  | Text x, Text y -> String.equal x y
  | Text_prefix x, Text_prefix y -> String.equal x y
  | (Tag _ | Star | Text _ | Text_prefix _), _ -> false

let rec has_identical_siblings p =
  let rec dup = function
    | c :: rest -> List.exists (fun c' -> test_equal c.test c'.test) rest || dup rest
    | [] -> false
  in
  dup p.children || List.exists has_identical_siblings p.children

let rec pp ppf p =
  (match p.axis with
   | Child -> Format.pp_print_string ppf "/"
   | Descendant -> Format.pp_print_string ppf "//");
  (match p.test with
   | Tag s -> Format.pp_print_string ppf s
   | Star -> Format.pp_print_string ppf "*"
   | Text s -> Format.fprintf ppf "text()=%S" s
   | Text_prefix s -> Format.fprintf ppf "starts-with(text(),%S)" s);
  match p.children with
  | [] -> ()
  | [ c ] -> pp ppf c
  | cs ->
    Format.pp_print_string ppf "[";
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "][")
      pp ppf cs;
    Format.pp_print_string ppf "]"

let to_string p = Format.asprintf "%a" pp p
