module D = Xmlcore.Designator
module Path = Sequencing.Path
module Encoder = Sequencing.Encoder

exception Too_many of int
exception Unsupported of string

type cnode = { path : Path.t; kids : cnode list }

let rec cnode_size c = List.fold_left (fun n k -> n + cnode_size k) 1 c.kids

let rec cnode_compare a b =
  let c = Path.compare a.path b.path in
  if c <> 0 then c else List.compare cnode_compare a.kids b.kids

(* All element paths strictly below [p] (any depth) that satisfy [mem]. *)
let descendants ~mem p =
  let acc = ref [] in
  let rec walk q =
    List.iter
      (fun c ->
        if mem c then begin
          acc := c :: !acc;
          walk c
        end)
      (Path.element_children q)
  in
  walk p;
  List.rev !acc

let tag_matches test path =
  match test with
  | Pattern.Star -> true
  | Pattern.Tag s -> String.equal (D.name (Path.tag path)) s
  | Pattern.Text _ | Pattern.Text_prefix _ -> assert false

(* Candidate paths for an element step relative to concrete parent [pp]. *)
let element_candidates ~mem test axis pp =
  match axis with
  | Pattern.Child ->
    List.filter (fun c -> mem c && tag_matches test c) (Path.element_children pp)
  | Pattern.Descendant ->
    List.filter (tag_matches test) (descendants ~mem pp)

(* A value leaf under concrete parent [pp]: a single node (hashed) or a
   chain of character nodes (text mode).

   Value designators are resolved with the non-interning
   [D.find_value]: a probed value that no document contains simply has
   no designator and yields no candidate.  This keeps query compilation
   strictly read-only on the global intern tables, which is what makes
   [Xseq.query_batch] safe to run on several domains at once. *)
let find_value_child pp s =
  match D.find_value s with
  | None -> None
  | Some d -> Path.find_child pp d

let value_cnode ~mem ~value_mode pp test =
  match value_mode, test with
  | Encoder.Hashed, Pattern.Text s ->
    (match find_value_child pp s with
     | Some p when mem p -> [ { path = p; kids = [] } ]
     | Some _ | None -> [])
  | Encoder.Hashed, Pattern.Text_prefix _ ->
    raise (Unsupported "Text_prefix requires a Text value-mode index")
  | Encoder.Text, (Pattern.Text s | Pattern.Text_prefix s) ->
    let terminated = match test with Pattern.Text _ -> true | _ -> false in
    let rec chain pp i =
      if i >= String.length s then
        if terminated then
          match Path.find_child pp Encoder.value_end_marker with
          | Some p when mem p -> Some { path = p; kids = [] }
          | Some _ | None -> None
        else None (* prefix query: chain ends at the last character *)
      else begin
        match find_value_child pp (String.make 1 s.[i]) with
        | Some p when mem p ->
          if (not terminated) && i = String.length s - 1 then
            Some { path = p; kids = [] }
          else
            (match chain p (i + 1) with
             | Some k -> Some { path = p; kids = [ k ] }
             | None -> None)
        | Some _ | None -> None
      end
    in
    if String.length s = 0 && not terminated then
      raise (Unsupported "empty Text_prefix")
    else (match chain pp 0 with Some c -> [ c ] | None -> [])
  | _, (Pattern.Tag _ | Pattern.Star) -> assert false

let run ?(limit = 4096) ~mem ~value_mode (pattern : Pattern.t) =
  let count = ref 0 in
  let budget n =
    count := !count + n;
    if !count > limit then raise (Too_many !count)
  in
  (* Instantiate [p] under concrete parent path [pp]; returns all cnodes. *)
  let rec inst pp (p : Pattern.t) =
    match p.test with
    | Pattern.Text _ | Pattern.Text_prefix _ ->
      if p.children <> [] then invalid_arg "Instantiate: value test with children";
      (match p.axis with
       | Pattern.Child -> value_cnode ~mem ~value_mode pp p.test
       | Pattern.Descendant ->
         (* text under // : attach under every descendant slot *)
         List.concat_map
           (fun anc -> value_cnode ~mem ~value_mode anc p.test)
           (pp :: descendants ~mem pp)
         |> fun l ->
         (* also directly under pp's own children slots is included via
            descendants; dedup identical paths *)
         List.sort_uniq (fun a b -> Path.compare a.path b.path) l)
    | Pattern.Tag _ | Pattern.Star ->
      let candidates = element_candidates ~mem p.test p.axis pp in
      List.concat_map
        (fun path ->
          let kid_choices = List.map (inst path) p.children in
          if List.exists (fun l -> l = []) kid_choices then []
          else begin
            (* cartesian product of children instantiations *)
            let product =
              List.fold_left
                (fun acc choices ->
                  List.concat_map
                    (fun partial -> List.map (fun c -> c :: partial) choices)
                    acc)
                [ [] ] kid_choices
            in
            let result =
              List.map (fun rev_kids -> { path; kids = List.rev rev_kids }) product
            in
            budget (List.length result);
            result
          end)
        candidates
  in
  inst Path.epsilon pattern
