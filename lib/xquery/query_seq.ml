module Path = Sequencing.Path
module Strategy = Sequencing.Strategy
module Scheduler = Sequencing.Scheduler

type compiled = { paths : Path.t array; parents : int array }

exception Unsupported_strategy of string

(* --- identical-sibling permutation expansion ------------------------- *)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = ref [] and seen = ref false in
        List.iter
          (fun y -> if (not !seen) && y == x then seen := true else rest := y :: !rest)
          l;
        List.map (fun p -> x :: p) (permutations (List.rev !rest)))
      l

(* All reorderings of [kids] where members of each same-path group permute
   among that group's positions (other positions keep their occupant). *)
let group_permutations kids =
  let arr = Array.of_list kids in
  let groups : (Path.t * int list) list =
    let tbl = Hashtbl.create 8 in
    Array.iteri
      (fun i (c : Instantiate.cnode) ->
        let l = try Hashtbl.find tbl c.path with Not_found -> [] in
        Hashtbl.replace tbl c.path (i :: l))
      arr;
    Hashtbl.fold (fun p l acc -> (p, List.rev l) :: acc) tbl []
  in
  let multi = List.filter (fun (_, l) -> List.length l > 1) groups in
  if multi = [] then [ kids ]
  else begin
    (* For each multi-member group, permute the members over the group's
       positions; combine choices across groups. *)
    let base = Array.copy arr in
    let rec assign groups_left acc =
      match groups_left with
      | [] -> acc
      | (_, positions) :: rest ->
        let members = List.map (fun i -> arr.(i)) positions in
        let acc' =
          List.concat_map
            (fun arrangement ->
              List.map
                (fun (snapshot : Instantiate.cnode array) ->
                  let copy = Array.copy snapshot in
                  List.iteri
                    (fun k pos -> copy.(pos) <- List.nth arrangement k)
                    positions;
                  copy)
                acc)
            (permutations members)
        in
        assign rest acc'
    in
    let results = assign multi [ base ] in
    List.map Array.to_list results
  end

let rec expand_variants ~budget (c : Instantiate.cnode) : Instantiate.cnode list =
  (* Variants of every child, then the cartesian product, then sibling
     group permutations of each product member. *)
  let kid_variant_lists = List.map (expand_variants ~budget) c.kids in
  let products =
    List.fold_left
      (fun acc variants ->
        List.concat_map
          (fun partial -> List.map (fun v -> v :: partial) variants)
          acc)
      [ [] ] kid_variant_lists
  in
  let with_perms =
    List.concat_map (fun rev_kids -> group_permutations (List.rev rev_kids)) products
  in
  let result =
    List.map (fun kids -> { Instantiate.path = c.path; kids }) with_perms
  in
  budget (List.length result);
  result

(* --- junction normalisation ------------------------------------------ *)

(* Documents sequence every subtree rooted at a {e flagged} path (one that
   occurs twice in some document) contiguously — Algorithm 2's recursion.
   A query element whose concrete path passes {e through} such a path must
   therefore be wrapped in an explicit junction node so the query emits it
   inside the corresponding block; and when several branches pass through
   the same flagged step, each way of distributing them over distinct
   blocks (a set partition) is a separate variant whose results are
   unioned.  Parts containing two {e explicit} nodes of that path are
   invalid (injectivity).  Unflagged steps have at most one data node per
   document, so sharing is forced and no ordering deviation exists. *)

(* All set partitions of a list. *)
let rec partitions = function
  | [] -> [ [] ]
  | x :: rest ->
    List.concat_map
      (fun parts ->
        ([ x ] :: parts)
        :: List.mapi
             (fun i _ ->
               List.mapi (fun j p -> if i = j then x :: p else p) parts)
             parts)
      (partitions rest)

let rec normalize ~flagged ~budget (c : Instantiate.cnode) :
    Instantiate.cnode list =
  let cd = Path.depth c.path in
  (* Group children by their first step below [c]. *)
  let step (k : Instantiate.cnode) = Path.ancestor_at_depth k.path (cd + 1) in
  let groups : (Path.t * Instantiate.cnode list) list =
    let tbl = Hashtbl.create 8 in
    let order = ref [] in
    List.iter
      (fun k ->
        let s = step k in
        (match Hashtbl.find_opt tbl s with
         | Some l -> Hashtbl.replace tbl s (k :: l)
         | None ->
           Hashtbl.replace tbl s [ k ];
           order := s :: !order))
      c.kids;
    List.rev_map (fun s -> (s, List.rev (Hashtbl.find tbl s))) !order
  in
  let is_explicit s (k : Instantiate.cnode) = Path.equal k.path s in
  (* Wrap a lone deep child in junctions at every flagged intermediate
     level (shallowest first; recursion handles the rest). *)
  let rec wrap_deep parent_depth (k : Instantiate.cnode) =
    let kd = Path.depth k.path in
    let rec first_flagged d =
      if d >= kd then None
      else begin
        let anc = Path.ancestor_at_depth k.path d in
        if flagged anc then Some anc else first_flagged (d + 1)
      end
    in
    match first_flagged (parent_depth + 1) with
    | Some anc when not (Path.equal anc k.path) ->
      { Instantiate.path = anc; kids = [ wrap_deep (Path.depth anc) k ] }
    | _ -> k
  in
  (* Variants for one sibling group at step [s]. *)
  let group_variants (s, members) : Instantiate.cnode list list =
    let explicit_count = List.length (List.filter (is_explicit s) members) in
    let merge part =
      (* One s-node absorbing the whole part. *)
      let kids =
        List.concat_map
          (fun (k : Instantiate.cnode) ->
            if is_explicit s k then k.kids else [ k ])
          part
      in
      { Instantiate.path = s; kids }
    in
    if flagged s then begin
      let parts_ok part =
        List.length (List.filter (is_explicit s) part) <= 1
      in
      List.filter_map
        (fun parts ->
          if List.for_all parts_ok parts then Some (List.map merge parts)
          else None)
        (partitions members)
    end
    else if explicit_count >= 2 then
      (* Two distinct query nodes on an unflagged path: no document can
         satisfy them. *)
      []
    else begin
      match members with
      | [ k ] when is_explicit s k -> [ [ k ] ]
      | [ k ] -> [ [ wrap_deep cd k ] ]
      | _ -> [ [ merge members ] ]
    end
  in
  let per_group = List.map group_variants groups in
  if List.exists (fun v -> v = []) per_group then []
  else begin
    (* Cartesian product over groups, then recurse into every child. *)
    let combos =
      List.fold_left
        (fun acc variants ->
          List.concat_map
            (fun kids -> List.map (fun prefix -> prefix @ kids) acc)
            variants)
        [ [] ] per_group
    in
    let results =
      List.concat_map
        (fun kids ->
          (* Normalise each child; product of the children's variants. *)
          let kid_variants = List.map (normalize ~flagged ~budget) kids in
          if List.exists (fun v -> v = []) kid_variants then []
          else
            List.map
              (fun rev -> { Instantiate.path = c.path; kids = List.rev rev })
              (List.fold_left
                 (fun acc variants ->
                   List.concat_map
                     (fun v -> List.map (fun prefix -> v :: prefix) acc)
                     variants)
                 [ [] ] kid_variants))
        combos
    in
    budget (List.length results);
    results
  end

(* --- flattening and sequencing --------------------------------------- *)

type flat = {
  fpaths : Path.t array;
  fparents : int array;
  fchildren : int list array;
  fident : bool array;
}

let flatten (c : Instantiate.cnode) =
  let n = Instantiate.cnode_size c in
  let fpaths = Array.make n Path.epsilon in
  let fparents = Array.make n (-1) in
  let fchildren = Array.make n [] in
  let fident = Array.make n false in
  let counter = ref 0 in
  let rec walk parent (node : Instantiate.cnode) =
    let me = !counter in
    incr counter;
    fpaths.(me) <- node.path;
    fparents.(me) <- parent;
    let kid_ids =
      List.rev
        (List.fold_left (fun acc k -> walk me k :: acc) [] node.kids)
    in
    fchildren.(me) <- kid_ids;
    (* identical flags among this node's children *)
    List.iter
      (fun i ->
        fident.(i) <-
          List.exists
            (fun j -> j <> i && Path.equal fpaths.(j) fpaths.(i))
            kid_ids)
      kid_ids;
    me
  in
  ignore (walk (-1) c);
  { fpaths; fparents; fchildren; fident }

(* Dense lexicographic ranks: equal paths share a rank, so the scheduler
   falls through to its rank (document-position) tie-break — which is what
   lets identical-sibling permutations produce distinct sequences. *)
let lex_ranks paths =
  let n = Array.length paths in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Path.lex_compare paths.(a) paths.(b)) order;
  let rank = Array.make n 0 in
  let current = ref 0 in
  Array.iteri
    (fun pos i ->
      if pos > 0 && Path.lex_compare paths.(order.(pos - 1)) paths.(i) <> 0 then
        incr current;
      rank.(i) <- !current)
    order;
  rank

let compile_one ~flagged ~strategy flat =
  let has_identical i = flat.fident.(i) || flagged flat.fpaths.(i) in
  let prio =
    match strategy with
    | Strategy.Probability f -> fun i -> f flat.fpaths.(i)
    | Strategy.Depth_first ->
      let rank = lex_ranks flat.fpaths in
      fun i -> -.float_of_int rank.(i)
    | Strategy.Breadth_first ->
      let rank = lex_ranks flat.fpaths in
      fun i ->
        -.float_of_int ((Path.depth flat.fpaths.(i) * (1 lsl 26)) + rank.(i))
    | Strategy.Random _ ->
      raise (Unsupported_strategy "random sequencing cannot be queried")
  in
  let spec =
    {
      Scheduler.prio;
      path_id = (fun i -> Path.to_int flat.fpaths.(i));
      rank = (fun i -> i);
      children = (fun i -> flat.fchildren.(i));
      has_identical;
    }
  in
  let order = Scheduler.emit spec ~root:0 in
  let n = Array.length flat.fpaths in
  let position = Array.make n 0 in
  List.iteri (fun pos i -> position.(i) <- pos) order;
  let paths = Array.make n Path.epsilon in
  let parents = Array.make n (-1) in
  List.iteri
    (fun pos i ->
      paths.(pos) <- flat.fpaths.(i);
      parents.(pos) <- (if flat.fparents.(i) < 0 then -1 else position.(flat.fparents.(i))))
    order;
  { paths; parents }

let compile ?(max_expansions = 256) ?(flagged = fun _ -> true) ~strategy cnode =
  let count = ref 0 in
  let budget n =
    count := !count + n;
    if !count > max_expansions then raise (Instantiate.Too_many !count)
  in
  let normalized = normalize ~flagged ~budget cnode in
  let variants = List.concat_map (expand_variants ~budget) normalized in
  let compiled =
    List.map (fun v -> compile_one ~flagged ~strategy (flatten v)) variants
  in
  (* Deduplicate sequences that coincide (identical sibling subtrees that
     are themselves equal produce equal permutations). *)
  let module S = Set.Make (struct
    type t = compiled

    let compare a b =
      let c = Stdlib.compare (Array.map Path.to_int a.paths) (Array.map Path.to_int b.paths) in
      if c <> 0 then c else Stdlib.compare a.parents b.parents
  end) in
  S.elements (S.of_list compiled)

