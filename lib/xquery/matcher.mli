(** Constraint subsequence matching over the labelled index
    (Section 4.2, Algorithm 1).

    The matcher walks a compiled query sequence down the trie: candidates
    for element [i] are found by binary search in its horizontal path
    link, restricted to the (pre, post] range of the previously matched
    node.  In {!Constraint} mode every candidate additionally passes the
    forward-prefix check — its nearest same-encoding-as-parent ancestor
    must be exactly the node matched to its pattern parent — which is the
    exact form of Definition 3's second criterion and subsumes the
    sibling-cover test (Definition 4, Theorem 3).  The check is skipped
    when the parent's entry has no same-encoding descendant, mirroring
    Algorithm 1's [ins] set.

    {!Naive} mode omits the check and reproduces the false alarms of
    Figure 4 (it is what the ViST baseline pairs with per-document
    verification).

    When a {!Xstorage.Pager} is supplied, every link-entry probe and
    document-table read is charged to the page layout.

    {2 Thread-safety}

    The index itself is read-only and may be shared across domains, but a
    [stats] record and a {!Xstorage.Pager.t} are single-domain mutable
    accumulators: each concurrent worker must own a private instance and
    the owners' results can be combined afterwards with {!merge_stats}
    (resp. by summing the pager's per-query counters).  [Xseq.query_batch]
    follows exactly this per-worker-then-merge discipline. *)

type mode = Constraint | Naive

type stats = {
  mutable probes : int;  (** link entries examined (binary search + scans) *)
  mutable candidates : int;  (** range candidates considered *)
  mutable rejected : int;  (** candidates failing the forward-prefix check *)
  mutable matches : int;  (** complete query-sequence matches *)
}

val create_stats : unit -> stats

val merge_stats : into:stats -> stats -> unit
(** [merge_stats ~into s] adds every counter of [s] into [into].  Used to
    combine the private per-worker records of a batched run into one
    aggregate; [s] is left unchanged. *)

val run :
  ?mode:mode ->
  ?pager:Xstorage.Pager.t ->
  ?stats:stats ->
  Xindex.Labeled.t ->
  Query_seq.compiled ->
  on_doc:(int -> unit) ->
  unit
(** Calls [on_doc] for every matching document id; a document may be
    reported more than once across search branches — callers deduplicate
    (see {!run_collect}). *)

val run_collect :
  ?mode:mode ->
  ?pager:Xstorage.Pager.t ->
  ?stats:stats ->
  Xindex.Labeled.t ->
  Query_seq.compiled list ->
  int list
(** Union of matches over several compiled sequences, sorted,
    deduplicated. *)
