module T = Xmlcore.Xml_tree
module D = Xmlcore.Designator

(* Flattened document: pre-order arrays with (pre, post) for O(1)
   descendant tests. *)
type doc = {
  tags : D.t option array; (* None for value leaves *)
  values : string option array;
  parent : int array;
  post : int array;
  size : int;
}

let flatten_doc tree =
  let n = T.node_count tree in
  let tags = Array.make n None in
  let values = Array.make n None in
  let parent = Array.make n (-1) in
  let post = Array.make n 0 in
  let counter = ref 0 in
  let rec walk par t =
    let me = !counter in
    incr counter;
    parent.(me) <- par;
    (match t with
     | T.Element (d, cs) ->
       tags.(me) <- Some d;
       List.iter (walk me) cs
     | T.Value s -> values.(me) <- Some s);
    post.(me) <- !counter - 1
  in
  walk (-1) tree;
  { tags; values; parent; post; size = n }

let is_descendant doc ~anc ~desc = desc > anc && desc <= doc.post.(anc)
let is_child doc ~anc ~desc = doc.parent.(desc) = anc

(* Pattern flattened in pre-order with parent links. *)
type pnode = { test : Pattern.test; axis : Pattern.axis; pparent : int }

let flatten_pattern p =
  let acc = ref [] in
  let count = ref 0 in
  let rec walk pparent (node : Pattern.t) =
    let me = !count in
    incr count;
    acc := { test = node.test; axis = node.axis; pparent } :: !acc;
    List.iter (walk me) node.children
  in
  walk (-1) p;
  Array.of_list (List.rev !acc)

let test_ok doc test node =
  match test with
  | Pattern.Star -> doc.tags.(node) <> None
  | Pattern.Tag s ->
    (match doc.tags.(node) with
     | Some d -> String.equal (D.name d) s
     | None -> false)
  | Pattern.Text s ->
    (match doc.values.(node) with Some v -> String.equal v s | None -> false)
  | Pattern.Text_prefix s ->
    (match doc.values.(node) with
     | Some v -> String.length v >= String.length s && String.sub v 0 (String.length s) = s
     | None -> false)

let matches pattern tree =
  let doc = flatten_doc tree in
  let pat = flatten_pattern pattern in
  let np = Array.length pat in
  let assign = Array.make np (-1) in
  let used = Array.make doc.size false in
  let axis_ok i node =
    let p = pat.(i) in
    if p.pparent < 0 then
      match p.axis with Pattern.Child -> node = 0 | Pattern.Descendant -> true
    else begin
      let pn = assign.(p.pparent) in
      match p.axis with
      | Pattern.Child -> is_child doc ~anc:pn ~desc:node
      | Pattern.Descendant -> is_descendant doc ~anc:pn ~desc:node
    end
  in
  let rec solve i =
    if i >= np then true
    else begin
      let found = ref false in
      let node = ref 0 in
      while (not !found) && !node < doc.size do
        let n = !node in
        if (not used.(n)) && test_ok doc pat.(i).test n && axis_ok i n then begin
          assign.(i) <- n;
          used.(n) <- true;
          if solve (i + 1) then found := true
          else begin
            used.(n) <- false;
            assign.(i) <- -1
          end
        end;
        incr node
      done;
      !found
    end
  in
  solve 0

let filter pattern docs =
  let acc = ref [] in
  Array.iteri (fun i d -> if matches pattern d then acc := i :: !acc) docs;
  List.rev !acc
