exception Syntax_error of { pos : int; msg : string }

type state = { src : string; mutable pos : int }

let fail state msg = raise (Syntax_error { pos = state.pos; msg })
let eof state = state.pos >= String.length state.src
let peek state = state.src.[state.pos]

let looking_at state prefix =
  let n = String.length prefix in
  state.pos + n <= String.length state.src
  && String.sub state.src state.pos n = prefix

let eat state prefix =
  if looking_at state prefix then state.pos <- state.pos + String.length prefix
  else fail state (Printf.sprintf "expected %S" prefix)

let skip_spaces state =
  while (not (eof state)) && peek state = ' ' do
    state.pos <- state.pos + 1
  done

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = '@'

let parse_name state =
  let start = state.pos in
  while (not (eof state)) && is_name_char (peek state) do
    state.pos <- state.pos + 1
  done;
  if state.pos = start then fail state "expected a name";
  String.sub state.src start (state.pos - start)

let parse_literal state =
  let quote = if eof state then fail state "expected a literal" else peek state in
  if quote <> '\'' && quote <> '"' then fail state "expected a quoted literal";
  state.pos <- state.pos + 1;
  let start = state.pos in
  while (not (eof state)) && peek state <> quote do
    state.pos <- state.pos + 1
  done;
  if eof state then fail state "unterminated literal";
  let s = String.sub state.src start (state.pos - start) in
  state.pos <- state.pos + 1;
  s

let parse_axis state =
  if looking_at state "//" then begin
    eat state "//";
    Pattern.Descendant
  end
  else begin
    eat state "/";
    Pattern.Child
  end

(* A relative path inside a predicate: returns a single-branch pattern
   chain; [finish] builds the innermost node. *)
let rec parse_relpath state axis finish =
  skip_spaces state;
  if looking_at state "text()" || looking_at state "text" then begin
    if looking_at state "text()" then eat state "text()" else eat state "text";
    skip_spaces state;
    if looking_at state "^=" then begin
      eat state "^=";
      skip_spaces state;
      Pattern.text_prefix ~axis (parse_literal state)
    end
    else begin
      eat state "=";
      skip_spaces state;
      Pattern.text ~axis (parse_literal state)
    end
  end
  else begin
    let test =
      if looking_at state "*" then begin
        eat state "*";
        Pattern.Star
      end
      else Pattern.Tag (parse_name state)
    in
    skip_spaces state;
    if looking_at state "//" || (looking_at state "/" && not (looking_at state "/=")) then begin
      let sub_axis = parse_axis state in
      let child = parse_relpath state sub_axis finish in
      { Pattern.test; axis; children = [ child ] }
    end
    else if looking_at state "^=" then begin
      eat state "^=";
      skip_spaces state;
      let v = parse_literal state in
      { Pattern.test; axis; children = [ Pattern.text_prefix v ] }
    end
    else if looking_at state "=" then begin
      eat state "=";
      skip_spaces state;
      let v = parse_literal state in
      { Pattern.test; axis; children = [ Pattern.text v ] }
    end
    else { Pattern.test; axis; children = finish () }
  end

let parse_predicates state =
  let rec loop acc =
    skip_spaces state;
    if not (eof state) && peek state = '[' then begin
      eat state "[";
      skip_spaces state;
      let axis =
        if looking_at state "//" then begin
          eat state "//";
          Pattern.Descendant
        end
        else if looking_at state "/" then begin
          eat state "/";
          Pattern.Child
        end
        else Pattern.Child
      in
      let p = parse_relpath state axis (fun () -> []) in
      skip_spaces state;
      eat state "]";
      loop (p :: acc)
    end
    else List.rev acc
  in
  loop []

(* Steps of the main path; the innermost step receives the accumulated
   predicates as children. *)
let rec parse_steps state axis =
  skip_spaces state;
  let test =
    if looking_at state "*" then begin
      eat state "*";
      Pattern.Star
    end
    else Pattern.Tag (parse_name state)
  in
  let preds = parse_predicates state in
  skip_spaces state;
  if not (eof state) && peek state = '/' then begin
    let sub_axis = parse_axis state in
    let child = parse_steps state sub_axis in
    { Pattern.test; axis; children = preds @ [ child ] }
  end
  else { Pattern.test; axis; children = preds }

let parse src =
  let state = { src; pos = 0 } in
  skip_spaces state;
  let axis = parse_axis state in
  let p = parse_steps state axis in
  skip_spaces state;
  if not (eof state) then fail state "trailing characters";
  p
