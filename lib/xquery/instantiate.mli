(** Wildcard instantiation: tree patterns → concrete path patterns.

    Wildcard steps ([*], [//]) are resolved against the schema path trie
    (the global {!Sequencing.Path} table) restricted to the paths that
    actually occur in a given index — the same idea as instantiating ['*']
    to symbol [D] in the paper's example of Section 3.1.  The result is a
    set of {e concrete patterns}, trees whose nodes carry exact path
    encodings (possibly skipping levels across [//] edges); each is then
    sequenced and matched independently and the answers unioned. *)

exception Too_many of int
(** Raised when the number of instantiations would exceed the limit. *)

exception Unsupported of string
(** Raised for tests the index's value representation cannot express
    (e.g. {!Pattern.Text_prefix} against a hashed-value index). *)

type cnode = { path : Sequencing.Path.t; kids : cnode list }
(** A concrete pattern node.  [path] is the full encoding from the
    document root; a child's path strictly extends its parent's (by
    exactly one designator across a [Child] edge). *)

val run :
  ?limit:int ->
  mem:(Sequencing.Path.t -> bool) ->
  value_mode:Sequencing.Encoder.value_mode ->
  Pattern.t ->
  cnode list
(** [run ~mem ~value_mode p] enumerates the concrete patterns of [p] whose
    every node path satisfies [mem] (e.g. "has a path link in this
    index").  [limit] (default 4096) bounds the result.

    @raise Too_many when the limit is hit.
    @raise Unsupported for {!Pattern.Text_prefix} with [value_mode =
    Hashed]. *)

val cnode_size : cnode -> int
val cnode_compare : cnode -> cnode -> int
