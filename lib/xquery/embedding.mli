(** Brute-force tree-pattern embedding — the correctness oracle.

    [matches p d] decides whether there is an {e injective} mapping of the
    pattern nodes into the document nodes that respects tests and axes
    (see {!Pattern}).  This is the reference semantics that
    constraint-sequence matching must reproduce exactly (Theorem 2); the
    property-based tests compare every index implementation against it.
    It is also the per-document verification step of the join-based
    baselines (DataGuide, XISS, ViST), which cannot answer twig queries
    with identical siblings on their own. *)

val matches : Pattern.t -> Xmlcore.Xml_tree.t -> bool

val filter : Pattern.t -> Xmlcore.Xml_tree.t array -> int list
(** Ids (array indices) of the documents matching the pattern, ascending. *)
