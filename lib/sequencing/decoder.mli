(** Reconstruction of the unique tree behind a constraint sequence
    (Theorem 1).

    Under constraint [f2], the parent of each sequenced node is the
    nearest preceding occurrence of its parent path, so a single forward
    pass rebuilds the tree.  Children are attached in sequence order; the
    result therefore equals the original document up to sibling
    permutation ([Xml_tree.isomorphic]), and equals it exactly for
    depth-first sequences. *)

exception Invalid_sequence of string

val decode : Path.t array -> Xmlcore.Xml_tree.t
(** [decode seq] rebuilds the tree.  Leaves whose designator is a value
    designator become [Value] nodes; everything else becomes an element.
    @raise Invalid_sequence if [seq] is not a valid ancestor-first
    constraint sequence (see {!Seq_constraint.is_valid}). *)
