(** Constraints over sequences of path-encoded nodes (Section 2.3).

    A constraint [f(·,·)] disambiguates ancestor–descendant relationships
    among sequenced nodes (Definition 1).  Two constraints from the paper:

    - [F1] (Eq. 2): [f1 (p, q) ≡ p ⊂ q] — pure prefix containment, a valid
      constraint only when the tree has no identical sibling nodes;
    - [F2] (Eq. 3): [f2 (p, q) ≡ p] is a {e forward prefix} of [q]
      (Definition 2) — the nearest preceding occurrence of each prefix is
      the ancestor, which disambiguates identical siblings. *)

type kind = F1 | F2

val forward_prefix : Path.t array -> int -> int option
(** [forward_prefix seq i] is the index of the forward prefix of element
    [i]: the nearest [j < i] with [seq.(j) = Path.parent seq.(i)]
    (Definition 2, restricted to ancestor-first sequences, which is what
    {!Encoder} produces and the paper's sequencing procedure guarantees).
    [None] when no such element exists — for the root, or for an invalid
    sequence. *)

val is_valid : Path.t array -> bool
(** [is_valid seq] checks that [seq] is a well-formed ancestor-first
    constraint sequence: it is non-empty, its first element has depth 1,
    and every later element has a forward prefix (so the tree can be
    reconstructed by {!Decoder}). *)

val holds : kind -> Path.t array -> int -> int -> bool
(** [holds k seq i j] evaluates the constraint [f_k(seq.(i), seq.(j))]:
    for {!F1}, strict prefix containment; for {!F2}, whether [i] is the
    forward prefix of [j] at depth [Path.depth seq.(i)].  Indices must be
    valid. *)
